(* Tests driven through the first-class CONCURRENT_SET packaging: the
   same generic battery must pass for every registered structure,
   without this file naming any concrete module. *)

module IS = Set.Make (Int)

let generic_battery (Dset_intf.Packed (module S)) () =
  let t = S.create ~universe:200 () in
  Alcotest.(check bool) (S.name ^ " empty") false (S.member t 10);
  Alcotest.(check bool) (S.name ^ " insert") true (S.insert t 10);
  Alcotest.(check bool) (S.name ^ " dup") false (S.insert t 10);
  Alcotest.(check bool) (S.name ^ " member") true (S.member t 10);
  Alcotest.(check bool) (S.name ^ " delete") true (S.delete t 10);
  Alcotest.(check int) (S.name ^ " size") 0 (S.size t);
  (* model run *)
  let rng = Rng.of_int_seed 31 in
  let model = ref IS.empty in
  for _ = 1 to 20_000 do
    let k = Rng.int rng 200 in
    if Rng.bool rng then begin
      let e = not (IS.mem k !model) in
      if S.insert t k <> e then Alcotest.failf "%s insert %d" S.name k;
      model := IS.add k !model
    end
    else begin
      let e = IS.mem k !model in
      if S.delete t k <> e then Alcotest.failf "%s delete %d" S.name k;
      model := IS.remove k !model
    end
  done;
  Alcotest.(check (list int)) (S.name ^ " final") (IS.elements !model) (S.to_list t)

let generic_concurrent (Dset_intf.Packed (module S)) () =
  let t = S.create ~universe:2_000 () in
  Tutil.join_all
    (Tutil.spawn_n 4 (fun d ->
         for i = d * 500 to (d * 500) + 499 do
           if not (S.insert t i) then Alcotest.failf "%s insert %d" S.name i
         done))
  |> ignore;
  Alcotest.(check int) (S.name ^ " full") 2_000 (S.size t)

let replace_battery (Dset_intf.Packed_replace (module S)) () =
  let t = S.create ~universe:100 () in
  ignore (S.insert t 1);
  Alcotest.(check bool) (S.name ^ " replace") true (S.replace t ~remove:1 ~add:2);
  Alcotest.(check (list int)) (S.name ^ " contents") [ 2 ] (S.to_list t)

let name_of (Dset_intf.Packed (module S)) = S.name

let test_legend_order () =
  Alcotest.(check (list string))
    "legend order"
    [ "PAT"; "4-ST"; "BST"; "AVL"; "SL"; "Ctrie" ]
    (List.map name_of Registry.all)

let () =
  Alcotest.run "registry"
    [
      ( "generic",
        List.concat_map
          (fun p ->
            [
              Alcotest.test_case (name_of p ^ " battery") `Quick (generic_battery p);
              Alcotest.test_case (name_of p ^ " concurrent") `Quick
                (generic_concurrent p);
            ])
          Registry.all );
      ( "replace",
        List.map
          (fun p ->
            let (Dset_intf.Packed_replace (module S)) = p in
            Alcotest.test_case (S.name ^ " replace") `Quick (replace_battery p))
          Registry.with_replace );
      ("order", [ Alcotest.test_case "legend order" `Quick test_legend_order ]);
    ]

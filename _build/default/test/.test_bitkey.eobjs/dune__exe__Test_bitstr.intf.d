test/test_bitstr.mli:

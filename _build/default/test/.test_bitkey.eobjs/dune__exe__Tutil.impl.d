test/tutil.ml: Alcotest Array Avl Core Ctrie Domain Int Kary Linearize List Nbbst Option QCheck2 QCheck_alcotest Rng Set Skiplist

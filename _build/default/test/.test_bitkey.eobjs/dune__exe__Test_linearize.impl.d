test/test_linearize.ml: Alcotest Array Linearize List QCheck2 Recorder Tutil

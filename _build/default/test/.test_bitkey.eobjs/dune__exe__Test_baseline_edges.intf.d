test/test_baseline_edges.mli:

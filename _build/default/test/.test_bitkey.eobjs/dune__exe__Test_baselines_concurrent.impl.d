test/test_baselines_concurrent.ml: Alcotest Array Atomic List Rng Tutil

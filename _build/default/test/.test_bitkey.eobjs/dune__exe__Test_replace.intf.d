test/test_replace.mli:

test/test_baselines_concurrent.mli:

test/test_rng.ml: Alcotest Array Rng

test/test_bitstr.ml: Alcotest Bitkey Fun List QCheck2 String Tutil

test/test_spatial.ml: Alcotest Array Atomic Domain List QCheck2 Rng Spatial Tutil

test/test_patricia_vlk.mli:

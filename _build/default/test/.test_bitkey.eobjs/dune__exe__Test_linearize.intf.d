test/test_linearize.mli:

test/test_baselines.ml: Alcotest Fun Int List QCheck2 Tutil

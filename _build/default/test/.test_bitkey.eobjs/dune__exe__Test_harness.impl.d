test/test_harness.ml: Alcotest Harness List Mix Rng

test/test_spatial.mli:

test/test_patricia.mli:

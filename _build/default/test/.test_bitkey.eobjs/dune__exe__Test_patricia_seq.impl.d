test/test_patricia_seq.ml: Alcotest Core Int List QCheck2 Set Tutil

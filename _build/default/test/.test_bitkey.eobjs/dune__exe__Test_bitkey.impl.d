test/test_bitkey.ml: Alcotest Bitkey Label List Printf QCheck2 Tutil

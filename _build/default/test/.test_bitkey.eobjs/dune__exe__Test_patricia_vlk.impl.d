test/test_patricia_vlk.ml: Alcotest Bitkey Core Fun List Printf QCheck2 Rng Set String Tutil

test/test_bitkey.mli:

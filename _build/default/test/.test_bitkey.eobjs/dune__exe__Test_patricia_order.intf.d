test/test_patricia_order.mli:

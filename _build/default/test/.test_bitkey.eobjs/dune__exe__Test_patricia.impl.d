test/test_patricia.ml: Alcotest Core Fun Int List QCheck2 Rng Set Tutil

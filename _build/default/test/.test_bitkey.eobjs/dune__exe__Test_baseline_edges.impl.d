test/test_baseline_edges.ml: Alcotest Avl Ctrie Int Kary List Nbbst Printf Rng Set Skiplist Tutil

test/test_registry.ml: Alcotest Dset_intf Int List Registry Rng Set Tutil

test/test_patricia_concurrent.ml: Alcotest Array Atomic Core Fun List Rng Tutil

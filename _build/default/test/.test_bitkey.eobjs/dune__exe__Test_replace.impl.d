test/test_replace.ml: Alcotest Atomic Core Domain Fun Linearize List Printf Rng Tutil

test/test_patricia_order.ml: Alcotest Atomic Core Int List QCheck2 Rng Set Tutil

test/test_patricia_concurrent.mli:

test/test_patricia_seq.mli:

(* Tests for the SplitMix64 workload generator. *)

let test_deterministic () =
  let a = Rng.of_int_seed 123 and b = Rng.of_int_seed 123 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_seed_sensitivity () =
  let a = Rng.of_int_seed 1 and b = Rng.of_int_seed 2 in
  let same = ref 0 in
  for _ = 1 to 1000 do
    if Rng.next a = Rng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_int_bounds () =
  let r = Rng.of_int_seed 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 37 in
    if x < 0 || x >= 37 then Alcotest.failf "out of bounds: %d" x
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Splitmix64.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_float_range () =
  let r = Rng.of_int_seed 8 in
  for _ = 1 to 10_000 do
    let x = Rng.float r in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of [0,1): %f" x
  done

let test_uniformity_coarse () =
  (* 10 buckets, 100k draws: each bucket within 20%% of the mean. *)
  let r = Rng.of_int_seed 9 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Rng.int r 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < n / 10 * 8 / 10 || c > n / 10 * 12 / 10 then
        Alcotest.failf "bucket %d has %d hits" i c)
    buckets

let test_bool_balance () =
  let r = Rng.of_int_seed 10 in
  let trues = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bool r then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true
    (!trues > n * 45 / 100 && !trues < n * 55 / 100)

let test_split_independent () =
  let parent = Rng.of_int_seed 11 in
  let c1 = Rng.split parent and c2 = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 1000 do
    if Rng.next c1 = Rng.next c2 then incr same
  done;
  Alcotest.(check bool) "children differ" true (!same < 5)

let test_non_negative () =
  let r = Rng.of_int_seed 12 in
  for _ = 1 to 10_000 do
    if Rng.next r < 0 then Alcotest.fail "negative draw"
  done

let () =
  Alcotest.run "rng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "coarse uniformity" `Quick test_uniformity_coarse;
          Alcotest.test_case "bool balance" `Quick test_bool_balance;
          Alcotest.test_case "split independence" `Quick test_split_independent;
          Alcotest.test_case "non-negative" `Quick test_non_negative;
        ] );
    ]

(* Focused tests for the paper's headline contribution: the atomic
   replace operation, under concurrency. *)

module P = Core.Patricia

let n_domains = 4

let test_token_conservation () =
  (* Each domain owns one "token" key and moves it around with replace.
     Tokens can never be lost or duplicated: at the end there must be
     exactly [n_domains] keys, one per domain's final position. *)
  let universe = 1 lsl 14 in
  let t = P.create ~universe () in
  (* Domain d owns keys with k mod n_domains = d, so replacements never
     collide across domains. *)
  List.iteri (fun d _ -> ignore (P.insert t d)) (List.init n_domains Fun.id);
  let finals =
    Tutil.join_all
      (Tutil.spawn_n n_domains (fun d ->
           let rng = Rng.of_int_seed (2100 + d) in
           let pos = ref d in
           for _ = 1 to 20_000 do
             let next = (Rng.int rng (universe / n_domains) * n_domains) + d in
             if next <> !pos then begin
               if not (P.replace t ~remove:!pos ~add:next) then
                 Alcotest.failf "domain %d lost its token" d;
               pos := next
             end
           done;
           !pos))
  in
  Alcotest.(check int) "one key per domain" n_domains (P.size t);
  List.iter
    (fun pos ->
      if not (P.member t pos) then Alcotest.failf "token at %d missing" pos)
    finals;
  match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_contended_replace_single_winner () =
  (* All domains try to replace the same source key: exactly one wins. *)
  for round = 0 to 19 do
    let t = P.create ~universe:64 () in
    ignore (P.insert t 0);
    let winners = Atomic.make 0 in
    Tutil.join_all
      (Tutil.spawn_n n_domains (fun d ->
           if P.replace t ~remove:0 ~add:(d + 1) then Atomic.incr winners))
    |> ignore;
    Alcotest.(check int)
      (Printf.sprintf "round %d single winner" round)
      1 (Atomic.get winners);
    Alcotest.(check int) "still one key" 1 (P.size t);
    Alcotest.(check bool) "source gone" false (P.member t 0)
  done

let test_replace_chain_race () =
  (* Domains chase each other down a chain: d tries to advance the shared
     token from k to k+1.  Exactly universe-1 advances can succeed. *)
  for _round = 0 to 4 do
    let universe = 32 in
    let t = P.create ~universe () in
    ignore (P.insert t 0);
    let advances = Atomic.make 0 in
    Tutil.join_all
      (Tutil.spawn_n n_domains (fun _ ->
           for k = 0 to universe - 2 do
             if P.replace t ~remove:k ~add:(k + 1) then Atomic.incr advances
           done))
    |> ignore;
    Alcotest.(check int) "advances" (universe - 1) (Atomic.get advances);
    Alcotest.(check (list int)) "token at the end" [ universe - 1 ] (P.to_list t)
  done

let test_replace_vs_delete_race () =
  (* A replace and a delete compete for the same source key: exactly one
     of them may succeed per round. *)
  for round = 0 to 49 do
    let t = P.create ~universe:16 () in
    ignore (P.insert t 3);
    let results =
      Tutil.join_all
        (Tutil.spawn_n 2 (fun d ->
             if d = 0 then P.replace t ~remove:3 ~add:7 else P.delete t 3))
    in
    let successes = List.length (List.filter Fun.id results) in
    Alcotest.(check int) (Printf.sprintf "round %d one winner" round) 1 successes;
    (* If the replace won, 7 is present; if the delete won, nothing is. *)
    let contents = P.to_list t in
    (match results with
    | [ true; false ] -> Alcotest.(check (list int)) "replace won" [ 7 ] contents
    | [ false; true ] -> Alcotest.(check (list int)) "delete won" [] contents
    | _ -> Alcotest.fail "impossible outcome");
    match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e
  done

let test_replace_vs_insert_target_race () =
  (* A replace and an insert compete for the same target key. *)
  for round = 0 to 49 do
    let t = P.create ~universe:16 () in
    ignore (P.insert t 3);
    let results =
      Tutil.join_all
        (Tutil.spawn_n 2 (fun d ->
             if d = 0 then P.replace t ~remove:3 ~add:7 else P.insert t 7))
    in
    (match results with
    | [ true; true ] ->
        (* Insert linearized first, then replace?  Then 7 was present and
           the replace must have failed — contradiction.  So both
           succeeding means replace first (3 -> 7), but then the insert
           must have failed.  Both-true is impossible. *)
        Alcotest.failf "round %d: both replace and insert succeeded" round
    | [ true; false ] ->
        Alcotest.(check (list int)) "replace won" [ 7 ] (P.to_list t)
    | [ false; true ] ->
        Alcotest.(check bool) "insert won; source stays" true (P.member t 3);
        Alcotest.(check bool) "target present" true (P.member t 7)
    | [ false; false ] -> Alcotest.failf "round %d: both failed" round
    | _ -> assert false);
    match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e
  done

let test_no_intermediate_state_observed () =
  (* While one domain bounces a token between two far-apart keys (forcing
     the general two-child-CAS case of replace), readers record member
     observations of both keys.  The combined history must linearize:
     that is exactly the statement that the two structural changes of
     each replace became visible atomically. *)
  let a = 1 and b = 60 in
  for round = 0 to 9 do
    let t = P.create ~universe:62 () in
    ignore (P.insert t a);
    let recorder = Linearize.Recorder.create ~threads:3 in
    let mover () =
      let cur = ref a and other = ref b in
      for _ = 1 to 12 do
        let remove = !cur and add = !other in
        if
          Linearize.Recorder.record recorder ~thread:0
            (Replace (remove, add))
            (fun () -> P.replace t ~remove ~add)
        then begin
          cur := add;
          other := remove
        end
      done
    in
    let reader d () =
      let rng = Rng.of_int_seed ((round * 17) + d) in
      for _ = 1 to 12 do
        let k = if Rng.bool rng then a else b in
        ignore
          (Linearize.Recorder.record recorder ~thread:d (Member k) (fun () ->
               P.member t k))
      done
    in
    let doms =
      Domain.spawn mover :: List.map (fun d -> Domain.spawn (reader d)) [ 1; 2 ]
    in
    List.iter Domain.join doms;
    let history = Linearize.Recorder.history recorder in
    if not (Linearize.check ~initial:(1 lsl a) history) then
      Alcotest.failf "round %d: replace history not linearizable" round;
    Alcotest.(check int) "one key at rest" 1 (P.size t)
  done

let test_replace_returns_false_consistently () =
  (* Concurrent replaces with absent sources must all fail. *)
  let t = P.create ~universe:64 () in
  ignore (P.insert t 1);
  let results =
    Tutil.join_all
      (Tutil.spawn_n n_domains (fun d ->
           P.replace t ~remove:(40 + d) ~add:(50 + d)))
  in
  Alcotest.(check (list bool)) "all fail" [ false; false; false; false ] results;
  Alcotest.(check (list int)) "unchanged" [ 1 ] (P.to_list t)

let test_replace_general_case_leaves_no_flags () =
  let t = P.create ~universe:1024 () in
  ignore (P.insert t 1);
  ignore (P.insert t 1000);
  ignore (P.insert t 500);
  Alcotest.(check bool) "replace" true (P.replace t ~remove:1 ~add:900);
  (* Reachable nodes must be unflagged after completion (the removed
     leaf stays flagged but is unreachable). *)
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "no flags on path of %d" k)
        0
        (P.For_testing.flags_on_path t k))
    [ 900; 500; 1000 ]

let () =
  Alcotest.run "replace"
    [
      ( "atomicity",
        [
          Alcotest.test_case "token conservation" `Slow test_token_conservation;
          Alcotest.test_case "single winner" `Quick test_contended_replace_single_winner;
          Alcotest.test_case "chain race" `Quick test_replace_chain_race;
          Alcotest.test_case "replace vs delete" `Quick test_replace_vs_delete_race;
          Alcotest.test_case "replace vs insert target" `Quick
            test_replace_vs_insert_target_race;
          Alcotest.test_case "no intermediate state" `Slow
            test_no_intermediate_state_observed;
          Alcotest.test_case "absent sources all fail" `Quick
            test_replace_returns_false_consistently;
          Alcotest.test_case "no residual flags" `Quick
            test_replace_general_case_leaves_no_flags;
        ] );
    ]

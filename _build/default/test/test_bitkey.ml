(* Tests for the bit-string key substrate. *)

open Bitkey

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* bit_length / bit / popcount *)

let test_bit_length () =
  check_int "0" 0 (bit_length 0);
  check_int "1" 1 (bit_length 1);
  check_int "2" 2 (bit_length 2);
  check_int "3" 2 (bit_length 3);
  check_int "4" 3 (bit_length 4);
  check_int "255" 8 (bit_length 255);
  check_int "256" 9 (bit_length 256);
  Alcotest.check_raises "negative" (Invalid_argument "Bitkey.bit_length: negative")
    (fun () -> ignore (bit_length (-1)))

let test_bit () =
  (* key 0b1010 over width 4: bits 1..4 are 1,0,1,0 *)
  check_int "b1" 1 (bit ~width:4 0b1010 1);
  check_int "b2" 0 (bit ~width:4 0b1010 2);
  check_int "b3" 1 (bit ~width:4 0b1010 3);
  check_int "b4" 0 (bit ~width:4 0b1010 4);
  Alcotest.check_raises "index 0" (Invalid_argument "Bitkey.bit: index out of range")
    (fun () -> ignore (bit ~width:4 0 0))

let test_popcount () =
  check_int "0" 0 (popcount 0);
  check_int "255" 8 (popcount 255);
  check_int "0b1010101" 4 (popcount 0b1010101);
  check_int "max_int" 62 (popcount max_int)

(* ------------------------------------------------------------------ *)
(* Labels *)

let lbl bits len : Label.t = Label.prefix (Label.of_key ~width:len bits) len

let test_label_of_key () =
  let l = Label.of_key ~width:8 0b10110001 in
  check_int "len" 8 (Label.length l);
  check_str "string" "10110001" (Label.to_string l);
  Alcotest.check_raises "width too big"
    (Invalid_argument "Label.of_key: width") (fun () ->
      ignore (Label.of_key ~width:63 0))

let test_label_prefix () =
  let l = Label.of_key ~width:8 0b10110001 in
  check_str "3-prefix" "101" (Label.to_string (Label.prefix l 3));
  check_str "0-prefix" "" (Label.to_string (Label.prefix l 0));
  check "is_prefix refl" true (Label.is_prefix l l);
  check "proper not refl" false (Label.is_proper_prefix l l);
  check "shorter prefix" true (Label.is_prefix (Label.prefix l 3) l);
  check "proper" true (Label.is_proper_prefix (Label.prefix l 3) l);
  check "non-prefix" false
    (Label.is_prefix (lbl 0b111 3) l)

let test_label_empty () =
  check_int "empty len" 0 (Label.length Label.empty);
  check "empty prefixes all" true
    (Label.is_prefix Label.empty (Label.of_key ~width:8 77))

let test_next_bit () =
  let key = 0b10110001 in
  let l = Label.of_key ~width:8 key in
  for i = 0 to 7 do
    check_int
      (Printf.sprintf "bit after %d-prefix" i)
      (bit ~width:8 key (i + 1))
      (Label.next_bit_of_key ~width:8 (Label.prefix l i) key)
  done

let test_lcp () =
  let a = Label.of_key ~width:8 0b10110001 and b = Label.of_key ~width:8 0b10111101 in
  check_str "lcp" "1011" (Label.to_string (Label.lcp a b));
  check_str "lcp refl" "10110001" (Label.to_string (Label.lcp a a));
  let c = Label.of_key ~width:8 0b00000000 in
  check_str "lcp disjoint" "" (Label.to_string (Label.lcp a c))

let test_extend () =
  let l = Label.empty in
  let l = Label.extend l 1 in
  let l = Label.extend l 0 in
  check_str "extend" "10" (Label.to_string l);
  Alcotest.check_raises "bad bit" (Invalid_argument "Label.extend: bit") (fun () ->
      ignore (Label.extend l 2))

let test_compare_total () =
  let l1 = lbl 0b1 1 and l2 = lbl 0b10 2 and l3 = lbl 0b11 2 in
  check "shorter first" true (Label.compare l1 l2 < 0);
  check "same len by bits" true (Label.compare l2 l3 < 0);
  check_int "equal" 0 (Label.compare l2 l2)

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_key width = QCheck2.Gen.(int_bound ((1 lsl width) - 1))

let prop_lcp_is_prefix =
  Tutil.qtest "lcp is a prefix of both"
    QCheck2.Gen.(pair (gen_key 16) (gen_key 16))
    (fun (a, b) ->
      let la = Label.of_key ~width:16 a and lb = Label.of_key ~width:16 b in
      let l = Label.lcp la lb in
      Label.is_prefix l la && Label.is_prefix l lb)

let prop_lcp_maximal =
  Tutil.qtest "lcp is maximal"
    QCheck2.Gen.(pair (gen_key 16) (gen_key 16))
    (fun (a, b) ->
      let la = Label.of_key ~width:16 a and lb = Label.of_key ~width:16 b in
      let l = Label.lcp la lb in
      a = b
      || Label.length l = 16
      || Label.next_bit l la <> Label.next_bit l lb)

let prop_prefix_transitive =
  Tutil.qtest "prefix relation is transitive via truncation"
    QCheck2.Gen.(triple (gen_key 16) (int_bound 16) (int_bound 16))
    (fun (a, i, j) ->
      let la = Label.of_key ~width:16 a in
      let i, j = (min i j, max i j) in
      Label.is_prefix (Label.prefix la i) (Label.prefix la j))

let prop_interleave_roundtrip =
  Tutil.qtest "interleave2/deinterleave2 round-trip"
    QCheck2.Gen.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (x, y) ->
      let key = interleave2 ~coord_bits:16 x y in
      deinterleave2 ~coord_bits:16 key = (x, y))

let prop_interleave_monotone_box =
  Tutil.qtest "interleaved keys of a quadrant share a prefix"
    QCheck2.Gen.(pair (int_bound 0x7FFF) (int_bound 0x7FFF))
    (fun (x, y) ->
      (* Points in the same half-plane agree on the first interleaved bit. *)
      let k1 = interleave2 ~coord_bits:16 x y in
      let k2 = interleave2 ~coord_bits:16 (x lor 0x8000) y in
      bit ~width:32 k1 1 = 0 && bit ~width:32 k2 1 = 1)

let prop_string_roundtrip =
  Tutil.qtest "encode_string/decode_string round-trip"
    QCheck2.Gen.(string_size ~gen:(map (fun b -> if b then '1' else '0') bool)
                   (int_bound 12))
    (fun s ->
      decode_string ~max_len:12 (encode_string ~max_len:12 s) = s)

let prop_string_injective =
  Tutil.qtest "string encoding is injective"
    QCheck2.Gen.(
      pair
        (string_size ~gen:(map (fun b -> if b then '1' else '0') bool) (int_bound 10))
        (string_size ~gen:(map (fun b -> if b then '1' else '0') bool) (int_bound 10)))
    (fun (s1, s2) ->
      s1 = s2 || encode_string ~max_len:10 s1 <> encode_string ~max_len:10 s2)

let test_string_sentinel_bounds () =
  (* Every encoded key lies strictly between the sentinels (Section VI). *)
  let width = string_width ~max_len:4 in
  let top = (1 lsl width) - 1 in
  List.iter
    (fun s ->
      let k = encode_string ~max_len:4 s in
      if not (k > 0 && k < top) then
        Alcotest.failf "encoded %S = %d escapes (0, %d)" s k top)
    [ ""; "0"; "1"; "0000"; "1111"; "0101"; "1010" ]

let () =
  Alcotest.run "bitkey"
    [
      ( "bits",
        [
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          Alcotest.test_case "bit" `Quick test_bit;
          Alcotest.test_case "popcount" `Quick test_popcount;
        ] );
      ( "labels",
        [
          Alcotest.test_case "of_key" `Quick test_label_of_key;
          Alcotest.test_case "prefix" `Quick test_label_prefix;
          Alcotest.test_case "empty" `Quick test_label_empty;
          Alcotest.test_case "next_bit" `Quick test_next_bit;
          Alcotest.test_case "lcp" `Quick test_lcp;
          Alcotest.test_case "extend" `Quick test_extend;
          Alcotest.test_case "compare total order" `Quick test_compare_total;
        ] );
      ( "properties",
        [
          prop_lcp_is_prefix;
          prop_lcp_maximal;
          prop_prefix_transitive;
          prop_interleave_roundtrip;
          prop_interleave_monotone_box;
          prop_string_roundtrip;
          prop_string_injective;
          Alcotest.test_case "string sentinel bounds" `Quick
            test_string_sentinel_bounds;
        ] );
    ]

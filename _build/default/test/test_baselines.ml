(* Single-threaded tests for the five comparison structures of the
   paper's evaluation (BST, 4-ST, SL, AVL, Ctrie), parameterized over a
   common closure record so every structure gets the same battery. *)

module IS = Tutil.IS

let basic_battery mk () =
  let ops : Tutil.ops = mk ~universe:100 () in
  Alcotest.(check bool) "empty member" false (ops.member 42);
  Alcotest.(check bool) "empty delete" false (ops.delete 42);
  Alcotest.(check int) "empty size" 0 (ops.size ());
  Alcotest.(check bool) "insert" true (ops.insert 42);
  Alcotest.(check bool) "insert dup" false (ops.insert 42);
  Alcotest.(check bool) "member" true (ops.member 42);
  Alcotest.(check bool) "neighbour absent" false (ops.member 41);
  Alcotest.(check bool) "delete" true (ops.delete 42);
  Alcotest.(check bool) "delete again" false (ops.delete 42);
  Tutil.check_ok ops.label ops

let edges_battery mk () =
  let ops : Tutil.ops = mk ~universe:10 () in
  Alcotest.(check bool) "key 0" true (ops.insert 0);
  Alcotest.(check bool) "key 9" true (ops.insert 9);
  Alcotest.(check (list int)) "contents" [ 0; 9 ] (ops.to_list ());
  Alcotest.(check bool) "delete 0" true (ops.delete 0);
  Alcotest.(check bool) "delete 9" true (ops.delete 9);
  Alcotest.(check (list int)) "empty" [] (ops.to_list ())

let fill_drain_battery mk () =
  let n = 512 in
  let ops : Tutil.ops = mk ~universe:n () in
  for k = 0 to n - 1 do
    if not (ops.insert k) then Alcotest.failf "insert %d" k
  done;
  Alcotest.(check int) "full" n (ops.size ());
  Tutil.check_ok ops.label ops;
  Alcotest.(check (list int)) "sorted" (List.init n Fun.id) (ops.to_list ());
  for k = n - 1 downto 0 do
    if not (ops.delete k) then Alcotest.failf "delete %d" k
  done;
  Alcotest.(check int) "drained" 0 (ops.size ());
  Tutil.check_ok ops.label ops

let ascending_battery mk () =
  (* Monotone insertion order is the adversarial case for unbalanced
     trees; everything must stay correct (and AVL reasonably shallow). *)
  let n = 2048 in
  let ops : Tutil.ops = mk ~universe:n () in
  for k = 0 to n - 1 do
    ignore (ops.insert k)
  done;
  Tutil.check_ok ops.label ops;
  for k = 0 to n - 1 do
    if not (ops.member k) then Alcotest.failf "member %d" k
  done

let model_battery mk () =
  let ops : Tutil.ops = mk ~universe:512 () in
  let model = Tutil.model_run ~universe:512 ~steps:60_000 ops in
  Alcotest.(check (list int)) "final contents" (IS.elements model) (ops.to_list ());
  Tutil.check_ok ops.label ops

let sparse_battery mk () =
  (* Large universe, few keys: exercises deep/skewed paths. *)
  let ops : Tutil.ops = mk ~universe:1_000_000 () in
  let keys = [ 0; 1; 999_999; 524_287; 524_288; 3; 77_777 ] in
  List.iter (fun k -> Alcotest.(check bool) "insert" true (ops.insert k)) keys;
  List.iter (fun k -> Alcotest.(check bool) "member" true (ops.member k)) keys;
  Alcotest.(check bool) "absent" false (ops.member 500_000);
  Alcotest.(check (list int)) "sorted" (List.sort Int.compare keys) (ops.to_list ());
  List.iter (fun k -> Alcotest.(check bool) "delete" true (ops.delete k)) keys;
  Alcotest.(check int) "empty" 0 (ops.size ());
  Tutil.check_ok ops.label ops

let prop_model mk =
  Tutil.qtest ~count:40 "random programs match Set semantics"
    QCheck2.Gen.(list_size (int_bound 300) (pair (int_bound 2) (int_bound 63)))
    (fun program ->
      let ops : Tutil.ops = mk ~universe:64 () in
      let model = ref IS.empty in
      List.for_all
        (fun (op, k) ->
          match op with
          | 0 ->
              let e = not (IS.mem k !model) in
              model := IS.add k !model;
              ops.insert k = e
          | 1 ->
              let e = IS.mem k !model in
              model := IS.remove k !model;
              ops.delete k = e
          | _ -> ops.member k = IS.mem k !model)
        program
      && ops.to_list () = IS.elements !model
      && ops.check () = Ok ())

let suite_for name mk =
  ( name,
    [
      Alcotest.test_case "basics" `Quick (basic_battery mk);
      Alcotest.test_case "universe edges" `Quick (edges_battery mk);
      Alcotest.test_case "fill then drain" `Quick (fill_drain_battery mk);
      Alcotest.test_case "ascending keys" `Quick (ascending_battery mk);
      Alcotest.test_case "model run" `Slow (model_battery mk);
      Alcotest.test_case "sparse big universe" `Quick (sparse_battery mk);
      prop_model mk;
    ] )

let () =
  Alcotest.run "baselines"
    [
      suite_for "BST" Tutil.bst_ops;
      suite_for "4-ST" Tutil.kary_ops;
      suite_for "SL" Tutil.sl_ops;
      suite_for "AVL" Tutil.avl_ops;
      suite_for "Ctrie" Tutil.ctrie_ops;
    ]

(* Tests for variable-length bit strings (Section VI key substrate). *)

module B = Bitkey.Bitstr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_basics () =
  check_int "empty length" 0 (B.length B.empty);
  let b = B.of_string "10110" in
  check_int "length" 5 (B.length b);
  check_str "round-trip" "10110" (B.to_string b);
  check_int "get 0" 1 (B.get b 0);
  check_int "get 1" 0 (B.get b 1);
  check_int "get 4" 0 (B.get b 4);
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Bitstr.get: index out of range") (fun () ->
      ignore (B.get b 5));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Bitstr.of_string: not a binary string") (fun () ->
      ignore (B.of_string "102"))

let test_equal_structural () =
  (* Equality must be by bit sequence, however the value was built. *)
  let a = B.of_string "1011" in
  let b = B.prefix (B.of_string "10110111") 4 in
  check "built differently, equal" true (B.equal a b);
  check "different lengths differ" false (B.equal a (B.of_string "10110"));
  check "same length different bits" false (B.equal a (B.of_string "1010"))

let test_long_strings () =
  (* Multi-word labels: the whole point of Section VI. *)
  let s = String.init 1000 (fun i -> if i mod 3 = 0 then '1' else '0') in
  let b = B.of_string s in
  check_int "length 1000" 1000 (B.length b);
  check_str "round-trip" s (B.to_string b);
  check "prefix of itself" true (B.is_prefix b b);
  let p = B.prefix b 500 in
  check "500-prefix" true (B.is_proper_prefix p b);
  check_str "prefix bits" (String.sub s 0 500) (B.to_string p)

let test_prefix_lcp () =
  let a = B.of_string "110010" and b = B.of_string "110111" in
  check_str "lcp" "110" (B.to_string (B.lcp a b));
  check_int "next_bit a" 0 (B.next_bit (B.lcp a b) a);
  check_int "next_bit b" 1 (B.next_bit (B.lcp a b) b);
  check_str "lcp with empty" "" (B.to_string (B.lcp B.empty a));
  check "empty prefixes all" true (B.is_prefix B.empty a);
  Alcotest.check_raises "next_bit needs proper prefix"
    (Invalid_argument "Bitstr.next_bit: not a proper prefix") (fun () ->
      ignore (B.next_bit a a))

let test_append_extend () =
  let a = B.of_string "10" and b = B.of_string "01" in
  check_str "append" "1001" (B.to_string (B.append a b));
  check_str "extend 1" "101" (B.to_string (B.extend a 1));
  check_str "extend empty" "0" (B.to_string (B.extend B.empty 0))

let test_compare_total_order () =
  let a = B.of_string "1" and b = B.of_string "01" and c = B.of_string "10" in
  check "shorter first" true (B.compare a b < 0);
  check "same length lexicographic" true (B.compare b c < 0);
  check_int "reflexive" 0 (B.compare c c)

let test_dollar_encoding () =
  check_str "encode 01" "011011" (B.to_string (B.encode_binary "01"));
  check_str "decode" "01" (B.decode_binary (B.encode_binary "01"));
  check_str "encode 1" "1011" (B.to_string (B.encode_binary "1"));
  Alcotest.check_raises "empty reserved"
    (Invalid_argument "Bitstr.encode_binary: the empty string is reserved")
    (fun () -> ignore (B.encode_binary ""))

let test_sentinel_separation () =
  (* Every encoded key must be prefix-independent of both sentinels. *)
  List.iter
    (fun s ->
      let k = B.encode_binary s in
      check (s ^ " vs lo") false
        (B.is_prefix B.sentinel_lo k || B.is_prefix k B.sentinel_lo);
      check (s ^ " vs hi") false
        (B.is_prefix B.sentinel_hi k || B.is_prefix k B.sentinel_hi))
    [ "0"; "1"; "00"; "11"; "0101"; "111111" ]

let test_bytes_roundtrip () =
  List.iter
    (fun s -> check_str ("bytes " ^ s) s (B.decode_bytes (B.encode_bytes s)))
    [ "a"; "hello"; "\x00\xff"; "unicode-ish \xc3\xa9"; String.make 100 'x' ]

let gen_binary_string =
  QCheck2.Gen.(
    string_size ~gen:(map (fun b -> if b then '1' else '0') bool) (int_range 1 64))

let prop_encode_prefix_free =
  Tutil.qtest "encoded keys are mutually prefix-free"
    QCheck2.Gen.(pair gen_binary_string gen_binary_string)
    (fun (s1, s2) ->
      s1 = s2
      ||
      let k1 = B.encode_binary s1 and k2 = B.encode_binary s2 in
      (not (B.is_prefix k1 k2)) && not (B.is_prefix k2 k1))

let prop_binary_roundtrip =
  Tutil.qtest "encode_binary/decode_binary round-trip" gen_binary_string
    (fun s -> B.decode_binary (B.encode_binary s) = s)

let prop_lcp_symmetric =
  Tutil.qtest "lcp symmetric and maximal"
    QCheck2.Gen.(pair gen_binary_string gen_binary_string)
    (fun (s1, s2) ->
      let a = B.of_string s1 and b = B.of_string s2 in
      let l = B.lcp a b in
      B.equal l (B.lcp b a)
      && B.is_prefix l a && B.is_prefix l b
      && (B.equal a b
         || B.length l = min (B.length a) (B.length b)
         || B.next_bit l a <> B.next_bit l b))

let prop_prefix_get_agreement =
  Tutil.qtest "prefix preserves bits"
    QCheck2.Gen.(pair gen_binary_string (int_bound 64))
    (fun (s, n) ->
      let b = B.of_string s in
      let n = n mod (B.length b + 1) in
      let p = B.prefix b n in
      B.length p = n
      && List.for_all (fun i -> B.get p i = B.get b i) (List.init n Fun.id))

let () =
  Alcotest.run "bitstr"
    [
      ( "operations",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "structural equality" `Quick test_equal_structural;
          Alcotest.test_case "long strings" `Quick test_long_strings;
          Alcotest.test_case "prefix/lcp" `Quick test_prefix_lcp;
          Alcotest.test_case "append/extend" `Quick test_append_extend;
          Alcotest.test_case "total order" `Quick test_compare_total_order;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "dollar encoding" `Quick test_dollar_encoding;
          Alcotest.test_case "sentinel separation" `Quick test_sentinel_separation;
          Alcotest.test_case "byte strings" `Quick test_bytes_roundtrip;
        ] );
      ( "properties",
        [
          prop_encode_prefix_free;
          prop_binary_roundtrip;
          prop_lcp_symmetric;
          prop_prefix_get_agreement;
        ] );
    ]

(* Tests for the ordered-traversal API of the concurrent Patricia trie:
   fold / iter / min_elt / max_elt / fold_range. *)

module P = Core.Patricia
module IS = Set.Make (Int)

let filled universe keys =
  let t = P.create ~universe () in
  List.iter (fun k -> ignore (P.insert t k)) keys;
  t

let test_fold_order () =
  let keys = [ 9; 1; 512; 77; 300; 0; 1023 ] in
  let t = filled 1024 keys in
  Alcotest.(check (list int))
    "ascending" (List.sort Int.compare keys)
    (List.rev (P.fold t ~init:[] ~f:(fun acc k -> k :: acc)))

let test_iter_matches_fold () =
  let t = filled 256 [ 3; 5; 250; 100 ] in
  let seen = ref [] in
  P.iter t ~f:(fun k -> seen := k :: !seen);
  Alcotest.(check (list int)) "same elements" (P.to_list t) (List.rev !seen)

let test_min_max () =
  let t = P.create ~universe:1000 () in
  Alcotest.(check (option int)) "empty min" None (P.min_elt t);
  Alcotest.(check (option int)) "empty max" None (P.max_elt t);
  ignore (P.insert t 500);
  Alcotest.(check (option int)) "single min" (Some 500) (P.min_elt t);
  Alcotest.(check (option int)) "single max" (Some 500) (P.max_elt t);
  ignore (P.insert t 0);
  ignore (P.insert t 999);
  ignore (P.insert t 42);
  Alcotest.(check (option int)) "min" (Some 0) (P.min_elt t);
  Alcotest.(check (option int)) "max" (Some 999) (P.max_elt t);
  ignore (P.delete t 0);
  ignore (P.delete t 999);
  Alcotest.(check (option int)) "min after deletes" (Some 42) (P.min_elt t);
  Alcotest.(check (option int)) "max after deletes" (Some 500) (P.max_elt t)

let test_range_basic () =
  let t = filled 100 [ 5; 10; 15; 20; 25; 30 ] in
  let range lo hi =
    List.rev (P.fold_range t ~lo ~hi ~init:[] ~f:(fun acc k -> k :: acc))
  in
  Alcotest.(check (list int)) "inner" [ 10; 15; 20 ] (range 10 20);
  Alcotest.(check (list int)) "exclusive bounds" [ 15 ] (range 11 19);
  Alcotest.(check (list int)) "all" [ 5; 10; 15; 20; 25; 30 ] (range 0 99);
  Alcotest.(check (list int)) "empty window" [] (range 16 19);
  Alcotest.(check (list int)) "inverted" [] (range 20 10);
  Alcotest.(check (list int)) "clamped" [ 5; 10; 15; 20; 25; 30 ] (range (-5) 5000);
  Alcotest.(check (list int)) "point hit" [ 25 ] (range 25 25);
  Alcotest.(check (list int)) "point miss" [] (range 26 26)

let prop_range_matches_filter =
  Tutil.qtest ~count:120 "fold_range agrees with filtering to_list"
    QCheck2.Gen.(
      triple
        (list_size (int_bound 60) (int_bound 255))
        (int_bound 255) (int_bound 255))
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let t = filled 256 keys in
      let expected = List.filter (fun k -> lo <= k && k <= hi) (P.to_list t) in
      let got =
        List.rev (P.fold_range t ~lo ~hi ~init:[] ~f:(fun acc k -> k :: acc))
      in
      got = expected)

let prop_min_max_match_to_list =
  Tutil.qtest ~count:120 "min_elt/max_elt agree with to_list"
    QCheck2.Gen.(list_size (int_bound 40) (int_bound 511))
    (fun keys ->
      let t = filled 512 keys in
      let l = P.to_list t in
      let expect_min = match l with [] -> None | x :: _ -> Some x in
      let expect_max =
        match List.rev l with [] -> None | x :: _ -> Some x
      in
      P.min_elt t = expect_min && P.max_elt t = expect_max)

let test_range_skips_logically_removed () =
  (* Force a general-case replace and check the removed key never shows
     in a range scan even while its leaf may still be physically
     present. *)
  let t = filled 1024 [ 1; 600; 1000 ] in
  Alcotest.(check bool) "replace" true (P.replace t ~remove:1 ~add:900);
  let got =
    List.rev (P.fold_range t ~lo:0 ~hi:1023 ~init:[] ~f:(fun acc k -> k :: acc))
  in
  Alcotest.(check (list int)) "600 900 1000" [ 600; 900; 1000 ] got

let test_traversal_during_updates () =
  (* Weak consistency under churn: every fold result contains only keys
     that were live at some point, and keys untouched by writers are
     always reported. *)
  let universe = 512 in
  let t = P.create ~universe () in
  (* Stable low half; writers churn the upper half. *)
  for k = 0 to 255 do
    ignore (P.insert t k)
  done;
  let stop = Atomic.make false in
  let writers =
    Tutil.spawn_n 2 (fun d ->
        let rng = Rng.of_int_seed (6100 + d) in
        while not (Atomic.get stop) do
          let k = 256 + Rng.int rng 256 in
          if Rng.bool rng then ignore (P.insert t k) else ignore (P.delete t k)
        done)
  in
  for _ = 1 to 300 do
    let stable =
      P.fold_range t ~lo:0 ~hi:255 ~init:0 ~f:(fun acc _ -> acc + 1)
    in
    Alcotest.(check int) "stable half intact" 256 stable;
    (match P.min_elt t with
    | Some 0 -> ()
    | other ->
        Alcotest.failf "min_elt = %s"
          (match other with None -> "None" | Some k -> string_of_int k));
    List.iter
      (fun k ->
        if k >= universe then Alcotest.failf "fold produced out-of-range %d" k)
      (P.fold t ~init:[] ~f:(fun acc k -> k :: acc))
  done;
  Atomic.set stop true;
  Tutil.join_all writers |> ignore;
  match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let () =
  Alcotest.run "patricia_order"
    [
      ( "ordered traversal",
        [
          Alcotest.test_case "fold order" `Quick test_fold_order;
          Alcotest.test_case "iter" `Quick test_iter_matches_fold;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "range basics" `Quick test_range_basic;
          Alcotest.test_case "range skips removed" `Quick
            test_range_skips_logically_removed;
          prop_range_matches_filter;
          prop_min_max_match_to_list;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "traversal during updates" `Slow
            test_traversal_during_updates;
        ] );
    ]

(* Multi-domain tests for the five comparison structures: deterministic
   disjoint workloads, counting audits, contended stress with invariant
   checks, and linearizability of recorded histories. *)

let n_domains = 4

let disjoint_battery mk () =
  let per = 1000 in
  let ops : Tutil.ops = mk ~universe:(n_domains * per) () in
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         for i = d * per to ((d + 1) * per) - 1 do
           if not (ops.insert i) then Alcotest.failf "insert %d" i
         done))
  |> ignore;
  Alcotest.(check int) "all in" (n_domains * per) (ops.size ());
  Tutil.check_ok ops.label ops;
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         for i = d * per to ((d + 1) * per) - 1 do
           if not (ops.delete i) then Alcotest.failf "delete %d" i
         done))
  |> ignore;
  Alcotest.(check int) "all out" 0 (ops.size ());
  Tutil.check_ok ops.label ops

let single_winner_battery mk () =
  let universe = 64 in
  let ops : Tutil.ops = mk ~universe () in
  let wins = Array.init universe (fun _ -> Atomic.make 0) in
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun _ ->
         for k = 0 to universe - 1 do
           if ops.insert k then Atomic.incr wins.(k)
         done))
  |> ignore;
  Array.iteri
    (fun k w ->
      if Atomic.get w <> 1 then
        Alcotest.failf "key %d won %d times" k (Atomic.get w))
    wins

let counting_battery mk () =
  let universe = 128 in
  let ops : Tutil.ops = mk ~universe () in
  let balance = Atomic.make 0 in
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         let rng = Rng.of_int_seed (3100 + d) in
         for _ = 1 to 20_000 do
           let k = Rng.int rng universe in
           if Rng.bool rng then begin
             if ops.insert k then Atomic.incr balance
           end
           else if ops.delete k then Atomic.decr balance
         done))
  |> ignore;
  Alcotest.(check int) "balance equals size" (Atomic.get balance) (ops.size ());
  Tutil.check_ok ops.label ops

let stress_battery mk () =
  let universe = 100 in
  let ops : Tutil.ops = mk ~universe () in
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         let rng = Rng.of_int_seed (3700 + d) in
         for _ = 1 to 40_000 do
           let k = Rng.int rng universe in
           match Rng.int rng 3 with
           | 0 -> ignore (ops.insert k)
           | 1 -> ignore (ops.delete k)
           | _ -> ignore (ops.member k)
         done))
  |> ignore;
  Tutil.check_ok ops.label ops;
  let l = ops.to_list () in
  List.iter (fun k -> if not (ops.member k) then Alcotest.failf "listed %d absent" k) l

let linearizability_battery mk () =
  for round = 0 to 14 do
    Tutil.linearizable_run ~threads:3 ~ops_per_thread:12 ~universe:8
      ~seed:(round * 211) ~with_replace:false mk
  done

let high_contention_linearizability_battery mk () =
  for round = 0 to 9 do
    Tutil.linearizable_run ~threads:4 ~ops_per_thread:10 ~universe:2
      ~seed:(round * 223) ~with_replace:false mk
  done

let suite_for name (mk : universe:int -> unit -> Tutil.ops) =
  ( name,
    [
      Alcotest.test_case "disjoint determinism" `Quick (disjoint_battery mk);
      Alcotest.test_case "single winner" `Quick (single_winner_battery mk);
      Alcotest.test_case "counting audit" `Slow (counting_battery mk);
      Alcotest.test_case "contended stress" `Slow (stress_battery mk);
      Alcotest.test_case "linearizable histories" `Slow
        (linearizability_battery mk);
      Alcotest.test_case "high-contention histories" `Slow
        (high_contention_linearizability_battery mk);
    ] )

let () =
  Alcotest.run "baselines_concurrent"
    [
      suite_for "BST" Tutil.bst_ops;
      suite_for "4-ST" Tutil.kary_ops;
      suite_for "SL" Tutil.sl_ops;
      suite_for "AVL" Tutil.avl_ops;
      suite_for "Ctrie" Tutil.ctrie_ops;
    ]

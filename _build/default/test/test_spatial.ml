(* Tests for the 2-D point set (GIS application of Section I). *)

let test_basics () =
  let g = Spatial.create ~coord_bits:8 () in
  Alcotest.(check int) "side" 256 (Spatial.side g);
  Alcotest.(check bool) "add" true (Spatial.add g ~x:10 ~y:20);
  Alcotest.(check bool) "add dup" false (Spatial.add g ~x:10 ~y:20);
  Alcotest.(check bool) "mem" true (Spatial.mem g ~x:10 ~y:20);
  Alcotest.(check bool) "mem other" false (Spatial.mem g ~x:20 ~y:10);
  Alcotest.(check bool) "remove" true (Spatial.remove g ~x:10 ~y:20);
  Alcotest.(check int) "empty" 0 (Spatial.size g)

let test_reserved_corners () =
  let g = Spatial.create ~coord_bits:4 () in
  Alcotest.check_raises "origin reserved"
    (Invalid_argument "Spatial: the two extreme corners are reserved")
    (fun () -> ignore (Spatial.add g ~x:0 ~y:0));
  Alcotest.check_raises "far corner reserved"
    (Invalid_argument "Spatial: the two extreme corners are reserved")
    (fun () -> ignore (Spatial.add g ~x:15 ~y:15));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Spatial: coordinate out of range") (fun () ->
      ignore (Spatial.add g ~x:16 ~y:0));
  (* Neighbouring cells are fine. *)
  Alcotest.(check bool) "near origin ok" true (Spatial.add g ~x:0 ~y:1);
  Alcotest.(check bool) "near corner ok" true (Spatial.add g ~x:15 ~y:14)

let test_move_atomic () =
  let g = Spatial.create ~coord_bits:8 () in
  ignore (Spatial.add g ~x:1 ~y:1);
  Alcotest.(check bool) "move" true
    (Spatial.move g ~from_x:1 ~from_y:1 ~to_x:200 ~to_y:3);
  Alcotest.(check bool) "source free" false (Spatial.mem g ~x:1 ~y:1);
  Alcotest.(check bool) "dest occupied" true (Spatial.mem g ~x:200 ~y:3);
  Alcotest.(check bool) "move from empty" false
    (Spatial.move g ~from_x:1 ~from_y:1 ~to_x:5 ~to_y:5);
  ignore (Spatial.add g ~x:5 ~y:5);
  Alcotest.(check bool) "move onto occupied" false
    (Spatial.move g ~from_x:200 ~from_y:3 ~to_x:5 ~to_y:5);
  Alcotest.(check bool) "move in place" false
    (Spatial.move g ~from_x:5 ~from_y:5 ~to_x:5 ~to_y:5);
  Alcotest.(check int) "two points" 2 (Spatial.size g)

let test_rect_query_basic () =
  let g = Spatial.create ~coord_bits:6 () in
  let pts = [ (1, 1); (10, 10); (10, 11); (11, 10); (30, 5); (5, 30) ] in
  List.iter (fun (x, y) -> ignore (Spatial.add g ~x ~y)) pts;
  Alcotest.(check int) "tight box" 3
    (Spatial.count_in_rect g ~x0:10 ~y0:10 ~x1:11 ~y1:11);
  Alcotest.(check int) "all" 6 (Spatial.count_in_rect g ~x0:0 ~y0:0 ~x1:63 ~y1:63);
  Alcotest.(check int) "empty box" 0
    (Spatial.count_in_rect g ~x0:40 ~y0:40 ~x1:50 ~y1:50);
  Alcotest.(check int) "column" 1 (Spatial.count_in_rect g ~x0:5 ~y0:0 ~x1:5 ~y1:63);
  Alcotest.(check (list (pair int int)))
    "points sorted by z-order" [ (10, 10); (10, 11); (11, 10) ]
    (Spatial.points_in_rect g ~x0:10 ~y0:10 ~x1:11 ~y1:11)

let prop_rect_matches_filter =
  Tutil.qtest ~count:100 "rectangle query agrees with filtering all points"
    QCheck2.Gen.(
      pair
        (list_size (int_bound 50) (pair (int_range 0 31) (int_range 0 31)))
        (quad (int_range 0 31) (int_range 0 31) (int_range 0 31) (int_range 0 31)))
    (fun (pts, (a, b, c, d)) ->
      let g = Spatial.create ~coord_bits:5 () in
      List.iter
        (fun (x, y) ->
          if not ((x = 0 && y = 0) || (x = 31 && y = 31)) then
            ignore (Spatial.add g ~x ~y))
        pts;
      let x0 = min a c and x1 = max a c and y0 = min b d and y1 = max b d in
      let expected =
        Spatial.to_points g
        |> List.filter (fun (x, y) -> x0 <= x && x <= x1 && y0 <= y && y <= y1)
        |> List.sort compare
      in
      let got =
        Spatial.points_in_rect g ~x0 ~y0 ~x1 ~y1 |> List.sort compare
      in
      got = expected)

let test_concurrent_movers_and_queries () =
  let g = Spatial.create ~coord_bits:8 () in
  let n = 32 in
  (* Each domain owns a horizontal stripe; queries sweep concurrently. *)
  for i = 1 to n do
    ignore (Spatial.add g ~x:i ~y:(8 * (i mod 4)))
  done;
  let stop = Atomic.make false in
  let query_dom =
    Domain.spawn (fun () ->
        let count = ref 0 in
        while not (Atomic.get stop) do
          ignore (Spatial.count_in_rect g ~x0:0 ~y0:0 ~x1:255 ~y1:255);
          incr count
        done;
        !count)
  in
  Tutil.join_all
    (Tutil.spawn_n 4 (fun d ->
         let rng = Rng.of_int_seed (8800 + d) in
         let owned = List.init 8 (fun i -> (d * 8) + i + 1) in
         let pos = Array.of_list (List.map (fun x -> (x, 8 * (x mod 4))) owned) in
         for _ = 1 to 3_000 do
           let i = Rng.int rng 8 in
           let x, y = pos.(i) in
           (* Targets may collide across domains; a failed move simply
              leaves the token where it was. *)
           let y' = (8 * (x mod 4)) + Rng.int rng 8 in
           let x' = 1 + Rng.int rng 254 in
           if
             (x', y') <> (x, y)
             && Spatial.move g ~from_x:x ~from_y:y ~to_x:x' ~to_y:y'
           then pos.(i) <- (x', y')
         done))
  |> ignore;
  Atomic.set stop true;
  let queries = Domain.join query_dom in
  Alcotest.(check bool) "queries ran" true (queries > 0);
  Alcotest.(check int) "no point lost or duplicated" n (Spatial.size g)

let () =
  Alcotest.run "spatial"
    [
      ( "point set",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "reserved corners" `Quick test_reserved_corners;
          Alcotest.test_case "atomic move" `Quick test_move_atomic;
          Alcotest.test_case "rectangle query" `Quick test_rect_query_basic;
          prop_rect_matches_filter;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "movers and queries" `Slow
            test_concurrent_movers_and_queries;
        ] );
    ]

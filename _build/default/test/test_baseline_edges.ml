(* Structure-specific edge cases for the five comparison structures:
   behaviours at the seams of each algorithm (sprouting and pruning in
   the k-ary tree, tomb compression in the Ctrie, tower/index behaviour
   in the skip list, rotations and routing nodes in the AVL tree, and
   sentinel handling in the BST). *)

module IS = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* 4-ST: sprouting and pruning *)

let test_kary_sprout_boundary () =
  (* k-1 = 3 keys fit in one leaf; the 4th forces a sprout.  All four
     must remain reachable, and the internal node must route properly. *)
  let t = Kary.create ~universe:100 () in
  List.iter (fun k -> assert (Kary.insert t k)) [ 10; 20; 30 ];
  (match Kary.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "4th key sprouts" true (Kary.insert t 25);
  List.iter
    (fun k -> Alcotest.(check bool) (string_of_int k) true (Kary.member t k))
    [ 10; 20; 25; 30 ];
  (match Kary.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check (list int)) "sorted" [ 10; 20; 25; 30 ] (Kary.to_list t)

let test_kary_prune_after_sprout () =
  let t = Kary.create ~universe:100 () in
  List.iter (fun k -> ignore (Kary.insert t k)) [ 10; 20; 30; 25 ];
  (* Remove until the sprouted node's children collapse back. *)
  Alcotest.(check bool) "del 25" true (Kary.delete t 25);
  Alcotest.(check bool) "del 20" true (Kary.delete t 20);
  Alcotest.(check bool) "del 30" true (Kary.delete t 30);
  Alcotest.(check bool) "10 remains" true (Kary.member t 10);
  (match Kary.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "del 10" true (Kary.delete t 10);
  Alcotest.(check int) "empty" 0 (Kary.size t);
  (* The structure must remain fully usable after collapse. *)
  List.iter (fun k -> assert (Kary.insert t k)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "refilled" 5 (Kary.size t);
  match Kary.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_kary_repeated_sprout_cycles () =
  (* Fill/drain cycles across the sprout boundary, checking invariants
     each time; catches stale-leaf and bitmap bugs. *)
  let t = Kary.create ~universe:64 () in
  for round = 1 to 20 do
    for k = 0 to 63 do
      ignore (Kary.insert t k)
    done;
    Alcotest.(check int) (Printf.sprintf "round %d full" round) 64 (Kary.size t);
    for k = 0 to 63 do
      ignore (Kary.delete t k)
    done;
    Alcotest.(check int) (Printf.sprintf "round %d empty" round) 0 (Kary.size t);
    match Kary.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e
  done

let test_kary_arity_variants () =
  (* The algorithm must be correct at any arity, including the binary
     degenerate case; this is the basis of the arity-sweep experiment. *)
  List.iter
    (fun arity ->
      let t = Kary.create_k ~k:arity ~universe:256 () in
      let rng = Rng.of_int_seed (arity * 13) in
      let model = ref IS.empty in
      for _ = 1 to 20_000 do
        let key = Rng.int rng 256 in
        if Rng.bool rng then begin
          let e = not (IS.mem key !model) in
          if Kary.insert t key <> e then
            Alcotest.failf "arity %d: insert %d" arity key;
          model := IS.add key !model
        end
        else begin
          let e = IS.mem key !model in
          if Kary.delete t key <> e then
            Alcotest.failf "arity %d: delete %d" arity key;
          model := IS.remove key !model
        end
      done;
      Alcotest.(check (list int))
        (Printf.sprintf "arity %d contents" arity)
        (IS.elements !model) (Kary.to_list t);
      match Kary.check_invariants t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "arity %d: %s" arity e)
    [ 2; 3; 4; 8; 16 ]

let test_kary_arity_concurrent () =
  List.iter
    (fun arity ->
      let t = Kary.create_k ~k:arity ~universe:2000 () in
      Tutil.join_all
        (Tutil.spawn_n 4 (fun d ->
             for i = d * 500 to (d * 500) + 499 do
               if not (Kary.insert t i) then
                 Alcotest.failf "arity %d insert %d" arity i
             done))
      |> ignore;
      Alcotest.(check int) (Printf.sprintf "arity %d size" arity) 2000 (Kary.size t);
      match Kary.check_invariants t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "arity %d: %s" arity e)
    [ 2; 8 ]

(* ------------------------------------------------------------------ *)
(* Ctrie: tombs and compression *)

let test_ctrie_tomb_compression () =
  (* Two keys that collide in the first hash level force a deep branch;
     deleting one must tomb and fold the branch back. *)
  let t = Ctrie.create ~universe:1_000_000 () in
  ignore (Ctrie.insert t 1);
  ignore (Ctrie.insert t 2);
  ignore (Ctrie.insert t 3);
  ignore (Ctrie.delete t 2);
  (match Ctrie.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check (list int)) "contents" [ 1; 3 ] (Ctrie.to_list t);
  ignore (Ctrie.delete t 1);
  ignore (Ctrie.delete t 3);
  Alcotest.(check int) "empty" 0 (Ctrie.size t);
  match Ctrie.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_ctrie_single_key_levels () =
  (* Insert/delete a sliding singleton across many hash prefixes. *)
  let t = Ctrie.create ~universe:(1 lsl 20) () in
  for k = 0 to 999 do
    Alcotest.(check bool) "ins" true (Ctrie.insert t (k * 1021));
    Alcotest.(check bool) "del" true (Ctrie.delete t (k * 1021));
    Alcotest.(check bool) "gone" false (Ctrie.member t (k * 1021))
  done;
  Alcotest.(check int) "empty" 0 (Ctrie.size t);
  match Ctrie.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_ctrie_member_helps_compression () =
  (* Lookups on a trie full of tombs must still answer correctly (they
     may CAS to help, per the paper's remark). *)
  let t = Ctrie.create ~universe:100_000 () in
  for k = 0 to 999 do
    ignore (Ctrie.insert t k)
  done;
  for k = 0 to 999 do
    if k mod 2 = 0 then ignore (Ctrie.delete t k)
  done;
  for k = 0 to 999 do
    Alcotest.(check bool) (string_of_int k) (k mod 2 = 1) (Ctrie.member t k)
  done;
  match Ctrie.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Skip list: towers and index levels *)

let test_skiplist_index_integrity_after_churn () =
  let t = Skiplist.create ~universe:10_000 () in
  let rng = Rng.of_int_seed 77 in
  let model = ref IS.empty in
  for _ = 1 to 50_000 do
    let k = Rng.int rng 10_000 in
    if Rng.bool rng then begin
      ignore (Skiplist.insert t k);
      model := IS.add k !model
    end
    else begin
      ignore (Skiplist.delete t k);
      model := IS.remove k !model
    end
  done;
  Alcotest.(check (list int)) "model" (IS.elements !model) (Skiplist.to_list t);
  match Skiplist.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_skiplist_duplicate_delete_insert_interleave () =
  let t = Skiplist.create ~universe:10 () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "ins" true (Skiplist.insert t 5);
    Alcotest.(check bool) "dup" false (Skiplist.insert t 5);
    Alcotest.(check bool) "del" true (Skiplist.delete t 5);
    Alcotest.(check bool) "del2" false (Skiplist.delete t 5)
  done;
  Alcotest.(check int) "empty" 0 (Skiplist.size t)

(* ------------------------------------------------------------------ *)
(* AVL: balance under adversarial orders, routing-node behaviour *)

let height_check t = Avl.check_invariants t = Ok ()

let test_avl_ascending_stays_logarithmic () =
  let t = Avl.create ~universe:100_000 () in
  for k = 0 to 9_999 do
    ignore (Avl.insert t k)
  done;
  Alcotest.(check bool) "balanced after 10k ascending" true (height_check t)

let test_avl_descending_stays_logarithmic () =
  let t = Avl.create ~universe:100_000 () in
  for k = 9_999 downto 0 do
    ignore (Avl.insert t k)
  done;
  Alcotest.(check bool) "balanced after 10k descending" true (height_check t)

let test_avl_zigzag_insertion () =
  let t = Avl.create ~universe:100_000 () in
  for i = 0 to 4_999 do
    ignore (Avl.insert t i);
    ignore (Avl.insert t (99_999 - i))
  done;
  Alcotest.(check int) "size" 10_000 (Avl.size t);
  Alcotest.(check bool) "balanced after zigzag" true (height_check t)

let test_avl_routing_node_reinsert () =
  (* Deleting a two-child node leaves it as a routing node; a re-insert
     of the same key must revive it in place. *)
  let t = Avl.create ~universe:100 () in
  List.iter (fun k -> ignore (Avl.insert t k)) [ 50; 25; 75 ];
  Alcotest.(check bool) "delete root-ish" true (Avl.delete t 50);
  Alcotest.(check bool) "children intact" true (Avl.member t 25 && Avl.member t 75);
  Alcotest.(check bool) "revive" true (Avl.insert t 50);
  Alcotest.(check bool) "revived" true (Avl.member t 50);
  Alcotest.(check (list int)) "contents" [ 25; 50; 75 ] (Avl.to_list t)

let test_avl_delete_then_shrink () =
  let t = Avl.create ~universe:1_024 () in
  for k = 0 to 1_023 do
    ignore (Avl.insert t k)
  done;
  (* Remove a whole flank; the tree must rebalance, not just mark. *)
  for k = 0 to 899 do
    ignore (Avl.delete t k)
  done;
  Alcotest.(check int) "size" 124 (Avl.size t);
  Alcotest.(check bool) "still balanced" true (height_check t)

(* ------------------------------------------------------------------ *)
(* BST: sentinel-adjacent behaviour *)

let test_bst_extreme_keys () =
  let t = Nbbst.create ~universe:100 () in
  (* Keys right under the sentinels. *)
  Alcotest.(check bool) "max real key" true (Nbbst.insert t 99);
  Alcotest.(check bool) "min real key" true (Nbbst.insert t 0);
  Alcotest.(check bool) "member 99" true (Nbbst.member t 99);
  Alcotest.(check bool) "member 0" true (Nbbst.member t 0);
  Alcotest.(check bool) "delete 99" true (Nbbst.delete t 99);
  Alcotest.(check bool) "delete 0" true (Nbbst.delete t 0);
  Alcotest.(check int) "empty" 0 (Nbbst.size t);
  match Nbbst.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_bst_single_key_cycle () =
  (* Repeated insert/delete of one key exercises the DFlag/Mark path at
     the same grandparent over and over. *)
  let t = Nbbst.create ~universe:10 () in
  for _ = 1 to 2000 do
    assert (Nbbst.insert t 5);
    assert (Nbbst.delete t 5)
  done;
  Alcotest.(check int) "empty" 0 (Nbbst.size t);
  match Nbbst.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let () =
  Alcotest.run "baseline_edges"
    [
      ( "4-ST",
        [
          Alcotest.test_case "sprout boundary" `Quick test_kary_sprout_boundary;
          Alcotest.test_case "prune after sprout" `Quick test_kary_prune_after_sprout;
          Alcotest.test_case "sprout cycles" `Quick test_kary_repeated_sprout_cycles;
          Alcotest.test_case "arity variants" `Quick test_kary_arity_variants;
          Alcotest.test_case "arity concurrent" `Quick test_kary_arity_concurrent;
        ] );
      ( "Ctrie",
        [
          Alcotest.test_case "tomb compression" `Quick test_ctrie_tomb_compression;
          Alcotest.test_case "singleton levels" `Quick test_ctrie_single_key_levels;
          Alcotest.test_case "member over tombs" `Quick
            test_ctrie_member_helps_compression;
        ] );
      ( "SL",
        [
          Alcotest.test_case "index after churn" `Quick
            test_skiplist_index_integrity_after_churn;
          Alcotest.test_case "same-key cycles" `Quick
            test_skiplist_duplicate_delete_insert_interleave;
        ] );
      ( "AVL",
        [
          Alcotest.test_case "ascending" `Quick test_avl_ascending_stays_logarithmic;
          Alcotest.test_case "descending" `Quick test_avl_descending_stays_logarithmic;
          Alcotest.test_case "zigzag" `Quick test_avl_zigzag_insertion;
          Alcotest.test_case "routing-node revive" `Quick test_avl_routing_node_reinsert;
          Alcotest.test_case "shrink rebalances" `Quick test_avl_delete_then_shrink;
        ] );
      ( "BST",
        [
          Alcotest.test_case "extreme keys" `Quick test_bst_extreme_keys;
          Alcotest.test_case "single-key cycles" `Quick test_bst_single_key_cycle;
        ] );
    ]

(* Tests for the variable-length-key Patricia trie (Section VI). *)

module V = Core.Patricia_vlk
module SS = Set.Make (String)

let inv t =
  match V.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_basics () =
  let t = V.create () in
  Alcotest.(check bool) "empty member" false (V.member t "x");
  Alcotest.(check bool) "insert" true (V.insert t "x");
  Alcotest.(check bool) "insert dup" false (V.insert t "x");
  Alcotest.(check bool) "member" true (V.member t "x");
  Alcotest.(check bool) "delete" true (V.delete t "x");
  Alcotest.(check bool) "delete again" false (V.delete t "x");
  inv t

let test_prefix_keys_coexist () =
  (* The whole point of the $-terminator: a key may be a prefix of
     another key. *)
  let t = V.create () in
  let keys = [ "a"; "ab"; "abc"; "abcd"; "b"; "ba" ] in
  List.iter (fun k -> Alcotest.(check bool) k true (V.insert t k)) keys;
  List.iter (fun k -> Alcotest.(check bool) k true (V.member t k)) keys;
  Alcotest.(check bool) "absent prefix" false (V.member t "abcde");
  Alcotest.(check int) "size" 6 (V.size t);
  Alcotest.(check bool) "delete middle" true (V.delete t "ab");
  Alcotest.(check bool) "outer keys stay" true (V.member t "a" && V.member t "abc");
  inv t

let test_replace_strings () =
  let t = V.create () in
  ignore (V.insert t "old-name");
  Alcotest.(check bool) "replace" true (V.replace t ~remove:"old-name" ~add:"new-name");
  Alcotest.(check bool) "old gone" false (V.member t "old-name");
  Alcotest.(check bool) "new there" true (V.member t "new-name");
  Alcotest.(check bool) "absent source" false
    (V.replace t ~remove:"old-name" ~add:"x");
  ignore (V.insert t "other");
  Alcotest.(check bool) "present target" false
    (V.replace t ~remove:"other" ~add:"new-name");
  Alcotest.(check bool) "same key" false (V.replace t ~remove:"other" ~add:"other");
  inv t

let test_long_keys () =
  let t = V.create () in
  let long = String.make 500 'z' in
  Alcotest.(check bool) "long insert" true (V.insert t long);
  Alcotest.(check bool) "long member" true (V.member t long);
  Alcotest.(check bool) "long prefix absent" false (V.member t (String.make 499 'z'));
  Alcotest.(check bool) "long delete" true (V.delete t long);
  inv t

let test_raw_binary_keys () =
  let t = V.create () in
  let k s = Bitkey.Bitstr.encode_binary s in
  Alcotest.(check bool) "raw insert" true (V.insert_key t (k "0101"));
  Alcotest.(check bool) "raw member" true (V.member_key t (k "0101"));
  Alcotest.(check bool) "raw prefix distinct" false (V.member_key t (k "010"));
  Alcotest.(check bool) "raw replace" true (V.replace_key t (k "0101") (k "1"));
  Alcotest.(check bool) "raw delete" true (V.delete_key t (k "1"));
  Alcotest.(check int) "empty" 0 (V.size t)

let test_sentinel_guard () =
  let t = V.create () in
  Alcotest.check_raises "sentinel-colliding key rejected"
    (Invalid_argument "Patricia_vlk: key collides with a sentinel") (fun () ->
      ignore (V.insert_key t (Bitkey.Bitstr.of_string "00")))

let prop_model_equivalence =
  let gen_key =
    QCheck2.Gen.(map (fun n -> Printf.sprintf "k%d" n) (int_bound 40))
  in
  Tutil.qtest ~count:60 "random programs match Set semantics"
    QCheck2.Gen.(list_size (int_bound 250) (pair (int_bound 3) gen_key))
    (fun program ->
      let t = V.create () in
      let model = ref SS.empty in
      List.for_all
        (fun (op, k) ->
          match op with
          | 0 ->
              let e = not (SS.mem k !model) in
              model := SS.add k !model;
              V.insert t k = e
          | 1 ->
              let e = SS.mem k !model in
              model := SS.remove k !model;
              V.delete t k = e
          | 2 -> V.member t k = SS.mem k !model
          | _ ->
              let k2 = k ^ "x" in
              let e = SS.mem k !model && not (SS.mem k2 !model) in
              if e then model := SS.add k2 (SS.remove k !model);
              V.replace t ~remove:k ~add:k2 = e)
        program
      && SS.equal (SS.of_list (V.to_list t)) !model
      && V.check_invariants t = Ok ())

let n_domains = 4

let test_concurrent_disjoint () =
  let t = V.create () in
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         for i = 0 to 1500 do
           if not (V.insert t (Printf.sprintf "key-%d-%d" d i)) then
             Alcotest.failf "insert %d-%d" d i
         done))
  |> ignore;
  Alcotest.(check int) "all present" (n_domains * 1501) (V.size t);
  inv t;
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         for i = 0 to 1500 do
           if not (V.delete t (Printf.sprintf "key-%d-%d" d i)) then
             Alcotest.failf "delete %d-%d" d i
         done))
  |> ignore;
  Alcotest.(check int) "all gone" 0 (V.size t);
  inv t

let test_concurrent_contended () =
  let t = V.create () in
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         let rng = Rng.of_int_seed (4200 + d) in
         for _ = 1 to 30_000 do
           let k = Printf.sprintf "k%d" (Rng.int rng 60) in
           match Rng.int rng 4 with
           | 0 -> ignore (V.insert t k)
           | 1 -> ignore (V.delete t k)
           | 2 -> ignore (V.member t k)
           | _ ->
               ignore (V.replace t ~remove:k ~add:(Printf.sprintf "k%d" (Rng.int rng 60)))
         done))
  |> ignore;
  inv t;
  let l = V.to_list t in
  List.iter (fun k -> if not (V.member t k) then Alcotest.failf "listed %S absent" k) l

let test_concurrent_token_conservation () =
  let t = V.create () in
  List.iter (fun d -> ignore (V.insert t (Printf.sprintf "tok-%d-0" d)))
    (List.init n_domains Fun.id);
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         let pos = ref 0 in
         let rng = Rng.of_int_seed (5200 + d) in
         for _ = 1 to 5_000 do
           let next = Rng.int rng 1_000_000 in
           if
             next <> !pos
             && V.replace t
                  ~remove:(Printf.sprintf "tok-%d-%d" d !pos)
                  ~add:(Printf.sprintf "tok-%d-%d" d next)
           then pos := next
         done))
  |> ignore;
  Alcotest.(check int) "one token per domain" n_domains (V.size t);
  inv t

let () =
  Alcotest.run "patricia_vlk"
    [
      ( "sequential",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "prefix keys coexist" `Quick test_prefix_keys_coexist;
          Alcotest.test_case "replace" `Quick test_replace_strings;
          Alcotest.test_case "long keys" `Quick test_long_keys;
          Alcotest.test_case "raw binary keys" `Quick test_raw_binary_keys;
          Alcotest.test_case "sentinel guard" `Quick test_sentinel_guard;
          prop_model_equivalence;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "disjoint determinism" `Quick test_concurrent_disjoint;
          Alcotest.test_case "contended stress" `Slow test_concurrent_contended;
          Alcotest.test_case "token conservation" `Slow
            test_concurrent_token_conservation;
        ] );
    ]

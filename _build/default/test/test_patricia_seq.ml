(* Tests for the sequential reference Patricia trie. *)

module IS = Set.Make (Int)
module P = Core.Patricia_seq

let test_empty () =
  let t = P.create ~universe:100 () in
  Alcotest.(check int) "size" 0 (P.size t);
  Alcotest.(check (list int)) "to_list" [] (P.to_list t);
  Alcotest.(check bool) "member" false (P.member t 5)

let test_insert_delete_basic () =
  let t = P.create ~universe:100 () in
  Alcotest.(check bool) "insert new" true (P.insert t 5);
  Alcotest.(check bool) "insert dup" false (P.insert t 5);
  Alcotest.(check bool) "member" true (P.member t 5);
  Alcotest.(check bool) "delete" true (P.delete t 5);
  Alcotest.(check bool) "delete absent" false (P.delete t 5);
  Alcotest.(check bool) "member gone" false (P.member t 5)

let test_universe_edges () =
  let t = P.create ~universe:10 () in
  Alcotest.(check bool) "key 0" true (P.insert t 0);
  Alcotest.(check bool) "key 9" true (P.insert t 9);
  Alcotest.(check bool) "member 0" true (P.member t 0);
  Alcotest.(check bool) "member 9" true (P.member t 9);
  Alcotest.check_raises "key -1" (Invalid_argument "Patricia_seq: key out of the universe")
    (fun () -> ignore (P.insert t (-1)));
  Alcotest.check_raises "key 10" (Invalid_argument "Patricia_seq: key out of the universe")
    (fun () -> ignore (P.insert t 10))

let test_universe_one () =
  let t = P.create ~universe:1 () in
  Alcotest.(check bool) "insert 0" true (P.insert t 0);
  Alcotest.(check (list int)) "contents" [ 0 ] (P.to_list t);
  Alcotest.(check bool) "delete 0" true (P.delete t 0);
  Alcotest.(check (list int)) "empty" [] (P.to_list t)

let test_replace () =
  let t = P.create ~universe:100 () in
  ignore (P.insert t 10);
  Alcotest.(check bool) "replace present->absent" true (P.replace t ~remove:10 ~add:20);
  Alcotest.(check bool) "source gone" false (P.member t 10);
  Alcotest.(check bool) "target there" true (P.member t 20);
  Alcotest.(check bool) "replace absent source" false (P.replace t ~remove:10 ~add:30);
  ignore (P.insert t 10);
  Alcotest.(check bool) "replace present target" false (P.replace t ~remove:10 ~add:20);
  Alcotest.(check bool) "replace same key" false (P.replace t ~remove:10 ~add:10)

let test_full_then_empty () =
  let t = P.create ~universe:256 () in
  for k = 0 to 255 do
    Alcotest.(check bool) "fill" true (P.insert t k)
  done;
  Alcotest.(check int) "full size" 256 (P.size t);
  (match P.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e);
  for k = 255 downto 0 do
    Alcotest.(check bool) "drain" true (P.delete t k)
  done;
  Alcotest.(check int) "empty size" 0 (P.size t)

let test_sorted_to_list () =
  let t = P.create ~universe:1000 () in
  let keys = [ 512; 3; 999; 0; 77; 400; 401 ] in
  List.iter (fun k -> ignore (P.insert t k)) keys;
  Alcotest.(check (list int)) "sorted" (List.sort Int.compare keys) (P.to_list t)

let prop_model_equivalence =
  Tutil.qtest ~count:100 "random op sequences match Set semantics"
    QCheck2.Gen.(list_size (int_bound 300) (pair (int_bound 3) (int_bound 63)))
    (fun ops ->
      let t = P.create ~universe:64 () in
      let model = ref IS.empty in
      List.for_all
        (fun (op, k) ->
          match op with
          | 0 ->
              let r = P.insert t k and e = not (IS.mem k !model) in
              model := IS.add k !model;
              r = e
          | 1 ->
              let r = P.delete t k and e = IS.mem k !model in
              model := IS.remove k !model;
              r = e
          | 2 -> P.member t k = IS.mem k !model
          | _ ->
              let k2 = (k * 7) mod 64 in
              let e = k <> k2 && IS.mem k !model && not (IS.mem k2 !model) in
              let r = P.replace t ~remove:k ~add:k2 in
              if e then model := IS.add k2 (IS.remove k !model);
              r = e)
        ops
      && P.to_list t = IS.elements !model
      && P.check_invariants t = Ok ())

let prop_invariants_after_ops =
  Tutil.qtest ~count:60 "structural invariants hold after random ops"
    QCheck2.Gen.(list_size (int_bound 500) (pair bool (int_bound 255)))
    (fun ops ->
      let t = P.create ~universe:256 () in
      List.iter
        (fun (ins, k) -> if ins then ignore (P.insert t k) else ignore (P.delete t k))
        ops;
      P.check_invariants t = Ok ())

let test_create_width () =
  let t = P.create_width ~width:8 () in
  Alcotest.(check bool) "insert raw 1" true (P.insert t 1);
  Alcotest.(check bool) "insert raw 254" true (P.insert t 254);
  Alcotest.check_raises "sentinel 0 rejected"
    (Invalid_argument "Patricia_seq: key out of the universe") (fun () ->
      ignore (P.insert t 0));
  Alcotest.check_raises "sentinel 255 rejected"
    (Invalid_argument "Patricia_seq: key out of the universe") (fun () ->
      ignore (P.insert t 255))

let () =
  Alcotest.run "patricia_seq"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/delete" `Quick test_insert_delete_basic;
          Alcotest.test_case "universe edges" `Quick test_universe_edges;
          Alcotest.test_case "universe of one" `Quick test_universe_one;
          Alcotest.test_case "replace" `Quick test_replace;
          Alcotest.test_case "fill then drain" `Quick test_full_then_empty;
          Alcotest.test_case "sorted to_list" `Quick test_sorted_to_list;
          Alcotest.test_case "create_width" `Quick test_create_width;
        ] );
      ("properties", [ prop_model_equivalence; prop_invariants_after_ops ]);
    ]

examples/word_set.mli:

examples/quickstart.mli:

examples/word_set.ml: Array Atomic Core Domain List Printf Rng String

examples/quickstart.ml: Core Domain List Printf String

examples/string_keys.mli:

examples/string_keys.ml: Bitkey Core Domain List Printf String

examples/spatial_points.ml: Array Atomic Domain List Printf Rng Spatial

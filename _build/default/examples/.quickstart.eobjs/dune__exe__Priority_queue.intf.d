examples/priority_queue.mli:

examples/spatial_points.mli:

examples/priority_queue.ml: Array Atomic Core Domain Int List Printf Rng

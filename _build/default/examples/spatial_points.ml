(* Moving objects on a map: the Geographic Information System scenario
   from the paper's introduction (Section I), on the Spatial library.

   A point (x, y) is stored under its Morton-interleaved key, which
   makes the Patricia trie behave like a quadtree.  Moving an object is
   one atomic [replace] — an observer can never see the object in two
   places, or in no place at all — and rectangle queries run as pruned
   Z-order range scans concurrently with the movement.

   Run with:  dune exec examples/spatial_points.exe *)

let n_objects = 64
let moves_per_object = 5_000

let () =
  let map = Spatial.create ~coord_bits:10 () in
  let side = Spatial.side map in
  let rng = Rng.of_int_seed 4242 in

  (* Place the objects on distinct cells (corners are reserved). *)
  let objects = Array.make n_objects (0, 0) in
  let placed = ref 0 in
  while !placed < n_objects do
    let x = 1 + Rng.int rng (side - 2) and y = 1 + Rng.int rng (side - 2) in
    if Spatial.add map ~x ~y then begin
      objects.(!placed) <- (x, y);
      incr placed
    end
  done;
  assert (Spatial.size map = n_objects);

  (* Movers random-walk their objects with atomic moves while an
     observer keeps running whole-map rectangle queries.  The traversal
     is weakly consistent (like Ctrie's non-snapshot iterator): a query
     racing moves may count an object at its source *and* later at one of
     its destinations, or at neither, so whole-map counts wobble around
     n_objects while movement is in flight.  Point lookups ([mem]) remain
     individually linearizable throughout, and quiescent queries are
     exact — which the end of this program asserts. *)
  let stop = Atomic.make false in
  let observer =
    Domain.spawn (fun () ->
        let queries = ref 0 and lo = ref max_int and hi = ref 0 in
        while not (Atomic.get stop) do
          let n =
            Spatial.count_in_rect map ~x0:0 ~y0:0 ~x1:(side - 1) ~y1:(side - 1)
          in
          if n < !lo then lo := n;
          if n > !hi then hi := n;
          incr queries
        done;
        (!queries, !lo, !hi))
  in
  let movers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Rng.of_int_seed (7 + d) in
            let per = n_objects / 4 in
            let mine = Array.sub objects (d * per) per in
            for _ = 1 to moves_per_object do
              let i = Rng.int rng per in
              let x, y = mine.(i) in
              let dx = Rng.int rng 3 - 1 and dy = Rng.int rng 3 - 1 in
              let x' = max 1 (min (side - 2) (x + dx))
              and y' = max 1 (min (side - 2) (y + dy)) in
              if
                (x', y') <> (x, y)
                && Spatial.move map ~from_x:x ~from_y:y ~to_x:x' ~to_y:y'
              then mine.(i) <- (x', y')
            done;
            Array.blit mine 0 objects (d * per) per))
  in
  List.iter Domain.join movers;
  Atomic.set stop true;
  let queries, lo, hi = Domain.join observer in

  (* In quiescence everything is exact: no object lost or duplicated. *)
  assert (Spatial.size map = n_objects);
  Array.iter (fun (x, y) -> assert (Spatial.mem map ~x ~y)) objects;
  let x, y = objects.(0) in
  assert (Spatial.count_in_rect map ~x0:x ~y0:y ~x1:x ~y1:y = 1);

  Printf.printf
    "spatial_points: %d objects walked %d steps each; observer ran %d \
     whole-map queries (counts stayed in [%d, %d]); object 0 ended at (%d, %d)\n"
    n_objects moves_per_object queries lo hi x y;
  print_endline "spatial_points: OK"

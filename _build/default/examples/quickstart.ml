(* Quickstart: the public API of the non-blocking Patricia trie.

   Run with:  dune exec examples/quickstart.exe *)

module Pat = Core.Patricia

let () =
  (* A trie over the key universe [0, 1000). *)
  let t = Pat.create ~universe:1000 () in

  (* insert returns true iff the key was absent. *)
  assert (Pat.insert t 42);
  assert (not (Pat.insert t 42));
  assert (Pat.insert t 7);

  (* member (the paper's find) is wait-free and never writes. *)
  assert (Pat.member t 42);
  assert (not (Pat.member t 99));

  (* replace atomically deletes one key and inserts another: the paper's
     distinguishing operation.  Both changes become visible at a single
     linearization point — no concurrent reader can see 42 and 43
     simultaneously absent (or present). *)
  assert (Pat.replace t ~remove:42 ~add:43);
  assert (not (Pat.member t 42));
  assert (Pat.member t 43);

  (* replace fails (and changes nothing) unless the removed key is
     present and the added key absent. *)
  assert (not (Pat.replace t ~remove:42 ~add:44));
  assert (not (Pat.replace t ~remove:43 ~add:7));

  (* delete returns true iff the key was present. *)
  assert (Pat.delete t 7);
  assert (not (Pat.delete t 7));

  (* All operations are safe to call from multiple domains at once; the
     updates are lock-free and searches are wait-free. *)
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = d * 100 to (d * 100) + 99 do
              ignore (Pat.insert t i)
            done))
  in
  List.iter Domain.join domains;
  Printf.printf "contents: %d keys, first few: %s\n" (Pat.size t)
    (Pat.to_list t |> List.filteri (fun i _ -> i < 10)
    |> List.map string_of_int |> String.concat ", ");
  assert (Pat.size t = 400);
  print_endline "quickstart: OK"

(* A concurrent dictionary of words of unbounded length, built on the
   Section-VI variant of the trie (Patricia_vlk): keys are arbitrary
   non-empty strings, stored under the 0->01 / 1->10 / $->11 encoding so
   words that are prefixes of one another ("in", "inn", "inner") coexist.

   Atomic [replace] renames an entry in one step — useful for, say, a
   symbol table where an identifier is renamed while other threads keep
   resolving names and must never observe both or neither spelling.

   Run with:  dune exec examples/word_set.exe *)

module V = Core.Patricia_vlk

let corpus =
  [
    "a"; "an"; "ant"; "anthem"; "in"; "inn"; "inner"; "innermost";
    "pat"; "patricia"; "trie"; "tried"; "tries"; "replace"; "replaced";
  ]

let () =
  let dict = V.create () in
  List.iter (fun w -> assert (V.insert dict w)) corpus;
  assert (V.size dict = List.length corpus);

  (* Prefix words are distinct entries. *)
  assert (V.member dict "in");
  assert (V.member dict "inner");
  assert (not (V.member dict "inne"));

  (* Concurrent renamers: each domain renames its own word back and
     forth; resolvers keep looking words up. *)
  let stop = Atomic.make false in
  let resolvers =
    List.init 2 (fun d ->
        Domain.spawn (fun () ->
            let rng = Rng.of_int_seed (40 + d) in
            let hits = ref 0 in
            let words = Array.of_list corpus in
            while not (Atomic.get stop) do
              let w = words.(Rng.int rng (Array.length words)) in
              if V.member dict w then incr hits
            done;
            !hits))
  in
  let renamers =
    List.init 2 (fun d ->
        Domain.spawn (fun () ->
            let mine = List.nth [ "anthem"; "innermost" ] d in
            let alt = mine ^ "-v2" in
            let cur = ref mine and other = ref alt in
            for _ = 1 to 10_000 do
              if V.replace dict ~remove:!cur ~add:!other then begin
                let tmp = !cur in
                cur := !other;
                other := tmp
              end
            done;
            !cur))
  in
  let finals = List.map Domain.join renamers in
  Atomic.set stop true;
  let lookups = List.fold_left ( + ) 0 (List.map Domain.join resolvers) in

  (* Every rename conserved exactly one spelling of each entry. *)
  assert (V.size dict = List.length corpus);
  List.iter (fun w -> assert (V.member dict w)) finals;
  (match V.check_invariants dict with Ok () -> () | Error e -> failwith e);

  Printf.printf
    "word_set: %d words, renamed entries ended as [%s], resolvers hit %d times\n"
    (V.size dict)
    (String.concat "; " finals)
    lookups;
  print_endline "word_set: OK"

(* Storing variable-length binary strings, the extension described in the
   paper's conclusion (Section VI): encode 0 as 01, 1 as 10 and a
   terminating $ as 11.  Every encoded key then lies strictly between the
   all-zeros and all-ones sentinels, so strings of any length up to a
   fixed maximum coexist in one trie — including strings that are
   prefixes of each other, which a naive encoding could not separate.

   Run with:  dune exec examples/string_keys.exe *)

module Pat = Core.Patricia

let max_len = 12
let width = Bitkey.string_width ~max_len
let key s = Bitkey.encode_string ~max_len s

let () =
  let t = Pat.create_width ~width () in

  (* Prefix-overlapping strings are distinct keys. *)
  let strings = [ ""; "0"; "1"; "01"; "010"; "0101"; "1111"; "000000000000" ] in
  List.iter (fun s -> assert (Pat.insert t (key s))) strings;
  List.iter (fun s -> assert (Pat.member t (key s))) strings;
  assert (not (Pat.member t (key "00")));
  assert (not (Pat.member t (key "0100")));

  (* Round-trip through the stored keys recovers the exact strings. *)
  let stored =
    Pat.to_list t |> List.map (Bitkey.decode_string ~max_len)
  in
  assert (List.sort compare stored = List.sort compare strings);

  (* Atomic rename: replace one string by another in a single step. *)
  assert (Pat.replace t ~remove:(key "0101") ~add:(key "101"));
  assert (not (Pat.member t (key "0101")));
  assert (Pat.member t (key "101"));

  (* Concurrent dictionary updates from several domains. *)
  let bits_of d i =
    (* A distinct binary string per (domain, index): "11" followed by the
       binary expansion of a number in [5, 973), so the total length fits
       in max_len and no string collides with the seed dictionary. *)
    let n = (d * 256) + i + 4 in
    let rec go n acc = if n = 0 then acc else go (n / 2) (string_of_int (n mod 2) ^ acc) in
    "11" ^ go n ""
  in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 200 do
              assert (Pat.insert t (key (bits_of d i)))
            done))
  in
  List.iter Domain.join domains;
  assert (Pat.size t = List.length strings + (4 * 200));

  Printf.printf "string_keys: %d strings stored, e.g. %s\n" (Pat.size t)
    (String.concat ", "
       (Pat.to_list t
       |> List.filteri (fun i _ -> i < 5)
       |> List.map (fun k -> "\"" ^ Bitkey.decode_string ~max_len k ^ "\"")));
  print_endline "string_keys: OK"

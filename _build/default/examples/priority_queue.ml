(* A concurrent priority queue with changeable priorities, the second
   application sketched in the paper's introduction (Section I): "the
   replace operation would also be useful if the Patricia trie were
   adapted to implement a priority queue, so that one can change the
   priority of an element in the queue."

   A queue entry is the key  priority * capacity + task_id,  so ordering
   by key orders by priority first.  Changing a task's priority is one
   atomic [replace]: no scheduler can ever observe the task at two
   priorities, or temporarily missing.

   Run with:  dune exec examples/priority_queue.exe *)

module Pat = Core.Patricia

let n_tasks = 128
let n_priorities = 64
let key ~priority ~task = (priority * n_tasks) + task
let priority_of k = k / n_tasks
let task_of k = k mod n_tasks

let () =
  let q = Pat.create ~universe:(n_priorities * n_tasks) () in
  let rng = Rng.of_int_seed 1 in

  (* Enqueue every task at a random priority. *)
  let prio = Array.init n_tasks (fun _ -> Rng.int rng n_priorities) in
  Array.iteri (fun task priority -> ignore (Pat.insert q (key ~priority ~task))) prio;
  assert (Pat.size q = n_tasks);

  (* Re-prioritizers: each domain owns a slice of tasks and keeps
     adjusting their priorities with atomic replaces. *)
  let reprioritize d =
    let rng = Rng.of_int_seed (100 + d) in
    let per = n_tasks / 4 in
    for _ = 1 to 20_000 do
      let task = (d * per) + Rng.int rng per in
      let old_p = prio.(task) in
      let new_p = Rng.int rng n_priorities in
      if
        new_p <> old_p
        && Pat.replace q ~remove:(key ~priority:old_p ~task)
             ~add:(key ~priority:new_p ~task)
      then prio.(task) <- new_p
    done
  in
  let movers = List.init 4 (fun d -> Domain.spawn (fun () -> reprioritize d)) in

  (* A monitor thread keeps peeking at the globally smallest entry (the
     head of the queue); it must always find a well-formed entry. *)
  let stop = Atomic.make false in
  let monitor =
    Domain.spawn (fun () ->
        let peeks = ref 0 in
        while not (Atomic.get stop) do
          (match Pat.to_list q with
          | [] -> failwith "queue can never be empty here"
          | head :: _ ->
              assert (priority_of head < n_priorities);
              assert (task_of head < n_tasks));
          incr peeks
        done;
        !peeks)
  in
  List.iter Domain.join movers;
  Atomic.set stop true;
  let peeks = Domain.join monitor in

  (* Exactly one entry per task survived all the re-prioritization. *)
  assert (Pat.size q = n_tasks);
  Array.iteri
    (fun task priority -> assert (Pat.member q (key ~priority ~task)))
    prio;

  (* Drain in priority order, like a scheduler would. *)
  let order = Pat.to_list q in
  let sorted = List.sort Int.compare order in
  assert (order = sorted);
  List.iter (fun k -> assert (Pat.delete q k)) order;
  assert (Pat.size q = 0);

  let head = List.hd order in
  Printf.printf
    "priority_queue: %d tasks, head was task %d at priority %d (monitor peeked \
     %d times)\n"
    n_tasks (task_of head) (priority_of head) peeks;
  print_endline "priority_queue: OK"

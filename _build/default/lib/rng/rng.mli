(** Deterministic pseudo-random number generation (SplitMix64).

    The benchmark harness and the tests need generators that are fast,
    seedable per domain (reproducible runs) and independent across
    domains; SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) provides all
    three.  Generators are not thread-safe: create one per domain. *)

type t

val create : ?seed:int64 -> unit -> t
val of_int_seed : int -> t

val next : t -> int
(** A uniformly distributed non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform over [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform over [\[0, 1)]. *)

val bool : t -> bool

val split : t -> t
(** Derive an independent child generator (advances the parent). *)

(** Deterministic pseudo-random number generation for workloads.

    The benchmark harness needs a generator that is (a) fast, (b) seedable per
    domain so runs are reproducible, and (c) independent across domains.
    SplitMix64 satisfies all three and passes BigCrush; it is the standard
    choice for seeding and for cheap per-thread streams. *)

module Splitmix64 = struct
  type t = { mutable state : int64 }

  let create seed = { state = seed }

  let golden = 0x9E3779B97F4A7C15L

  (* One SplitMix64 step: add the golden gamma, then mix with two
     xor-shift-multiply rounds (constants from Steele, Lea & Flood 2014). *)
  let next_int64 t =
    t.state <- Int64.add t.state golden;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* Non-negative 62-bit value, suitable for OCaml's boxed-free int range. *)
  let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

  let int t bound =
    if bound <= 0 then invalid_arg "Splitmix64.int: bound must be positive";
    next t mod bound

  let float t =
    (* 53 random bits mapped to [0, 1). *)
    let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
    float_of_int bits *. (1.0 /. 9007199254740992.0)

  let bool t = Int64.logand (next_int64 t) 1L = 1L

  (* Derive an independent stream: mix the parent's next output so that
     sibling streams started from consecutive seeds do not correlate. *)
  let split t = create (next_int64 t)
end

type t = Splitmix64.t

let create ?(seed = 0x5EED_0F_5EEDL) () = Splitmix64.create seed
let of_int_seed seed = Splitmix64.create (Int64.of_int seed)
let next = Splitmix64.next
let int = Splitmix64.int
let float = Splitmix64.float
let bool = Splitmix64.bool
let split = Splitmix64.split

(** Non-blocking k-ary search tree in the style of Brown & Helga
    (OPODIS 2011), with k = 4 — the "4-ST" baseline of the Patricia-trie
    paper's evaluation.

    Leaf-oriented: an internal node has k children and k-1 routing keys;
    a leaf holds up to k-1 keys.  Inserts replace a leaf by a bigger
    leaf, or "sprout" a full leaf into an internal node; deletes shrink
    a leaf, or "prune" a parent whose children's remaining keys fit in
    one leaf.  Coordination is the Ellen-et-al. flag/mark/help scheme. *)

type t

val k : int
(** Default arity, 4 (found optimal in Brown & Helga's experiments and
    used by the paper). *)

val name : string
(** ["4-ST"]. *)

val create : universe:int -> unit -> t
(** A tree of the default arity {!k}. *)

val create_k : k:int -> universe:int -> unit -> t
(** A tree of arbitrary arity [k >= 2], used by the arity-sweep
    experiment; [k = 2] degenerates to a leaf-oriented binary tree with
    one key per leaf. *)

val insert : t -> int -> bool
val delete : t -> int -> bool
val member : t -> int -> bool
val to_list : t -> int list
val size : t -> int

val check_invariants : t -> (unit, string) result
(** Routing keys sorted; every internal node has exactly k children and
    k-1 keys; every key within its inherited interval. *)

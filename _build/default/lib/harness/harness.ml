(** Concurrent-set benchmark harness reproducing the methodology of the
    paper's Section V:

    - operation mixes are given as percentages (e.g. i5-d5-f90);
    - keys are drawn uniformly from a range, or non-uniformly as runs of
      50 consecutive keys from a random starting point;
    - each data point is the mean of several timed trials on a structure
      prefilled to half-full, after a warm-up run; the standard deviation
      is reported (the paper's error bars);
    - throughput is total completed operations per second across all
      threads (OCaml domains). *)

(** Operation mix in percent; must sum to 100. *)
module Mix = struct
  type t = { insert : int; delete : int; find : int; replace : int }

  let v ?(insert = 0) ?(delete = 0) ?(find = 0) ?(replace = 0) () =
    if insert + delete + find + replace <> 100 then
      invalid_arg "Mix.v: percentages must sum to 100";
    { insert; delete; find; replace }

  let i5_d5_f90 = v ~insert:5 ~delete:5 ~find:90 ()
  let i50_d50_f0 = v ~insert:50 ~delete:50 ()
  let i15_d15_f70 = v ~insert:15 ~delete:15 ~find:70 ()
  let i10_d10_r80 = v ~insert:10 ~delete:10 ~replace:80 ()

  let to_string m =
    let parts =
      List.filter
        (fun (_, p) -> p > 0)
        [ ("i", m.insert); ("d", m.delete); ("f", m.find); ("r", m.replace) ]
    in
    String.concat "-" (List.map (fun (n, p) -> Printf.sprintf "%s%d" n p) parts)
end

(** Key distribution: uniform over the range, or the paper's non-uniform
    workload — operations on runs of [run_length] consecutive keys
    starting from a random key (Section V uses 50). *)
type distribution = Uniform | Clustered of int

type workload = {
  universe : int;
  mix : Mix.t;
  dist : distribution;
}

type config = {
  threads : int;
  seconds : float; (* length of each timed trial *)
  trials : int;
  warmup_seconds : float;
  seed : int;
}

let default_config =
  { threads = 4; seconds = 1.0; trials = 3; warmup_seconds = 0.3; seed = 2013 }

(** The operations of one structure instance, as closures so the runner is
    agnostic to the concrete module (and to whether replace exists). *)
type ops = {
  insert : int -> bool;
  delete : int -> bool;
  member : int -> bool;
  replace : (int -> int -> bool) option; (* remove add *)
}

type datapoint = {
  mean : float; (* ops per second *)
  stddev : float;
  samples : float list;
}

let mean_stddev samples =
  let n = float_of_int (List.length samples) in
  let mean = List.fold_left ( +. ) 0.0 samples /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples /. n
  in
  { mean; stddev = sqrt var; samples }

(* ------------------------------------------------------------------ *)
(* Key generators *)

let key_stream dist universe rng =
  match dist with
  | Uniform -> fun () -> Rng.int rng universe
  | Clustered run_length ->
      let base = ref (Rng.int rng universe) in
      let off = ref 0 in
      fun () ->
        if !off >= run_length then begin
          base := Rng.int rng universe;
          off := 0
        end;
        let k = (!base + !off) mod universe in
        incr off;
        k

(* ------------------------------------------------------------------ *)
(* One timed trial *)

let run_loop ops workload stop rng =
  let next_key = key_stream workload.dist workload.universe rng in
  let m = workload.mix in
  let t_ins = m.Mix.insert in
  let t_del = t_ins + m.Mix.delete in
  let t_find = t_del + m.Mix.find in
  let count = ref 0 in
  while not (Atomic.get stop) do
    let r = Rng.int rng 100 in
    let k = next_key () in
    if r < t_ins then ignore (ops.insert k)
    else if r < t_del then ignore (ops.delete k)
    else if r < t_find then ignore (ops.member k)
    else begin
      match ops.replace with
      | Some replace -> ignore (replace k (next_key ()))
      | None -> ignore (ops.member k)
    end;
    incr count
  done;
  !count

(* Prefill to half-full: insert a uniformly random half of the universe
   in random order — the steady state of the paper's i50-d50 prefill run.
   Insertion order matters: a sorted sweep would degenerate the
   non-rebalancing trees (BST, 4-ST) into linear lists and bias every
   measurement, which is why the paper prefills with random updates. *)
let prefill ops universe rng =
  let perm = Array.init universe Fun.id in
  for i = universe - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  for i = 0 to (universe / 2) - 1 do
    ignore (ops.insert perm.(i))
  done

let run_trial ?(before_timed = fun () -> ()) ~make_ops workload config trial_idx
    =
  let ops = make_ops () in
  let rng = Rng.of_int_seed (config.seed + (trial_idx * 7919)) in
  prefill ops workload.universe rng;
  let run_phase seconds =
    let stop = Atomic.make false in
    let ready = Atomic.make 0 in
    let go = Atomic.make false in
    let worker d =
      Domain.spawn (fun () ->
          let rng = Rng.of_int_seed (config.seed + (trial_idx * 7919) + (d * 104729) + 1) in
          Atomic.incr ready;
          while not (Atomic.get go) do
            Domain.cpu_relax ()
          done;
          run_loop ops workload stop rng)
    in
    let domains = List.init config.threads worker in
    while Atomic.get ready < config.threads do
      Domain.cpu_relax ()
    done;
    let t0 = Unix.gettimeofday () in
    Atomic.set go true;
    Unix.sleepf seconds;
    Atomic.set stop true;
    let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
    let elapsed = Unix.gettimeofday () -. t0 in
    float_of_int total /. elapsed
  in
  if config.warmup_seconds > 0.0 then ignore (run_phase config.warmup_seconds);
  before_timed ();
  run_phase config.seconds

let run ?before_timed ~make_ops workload config =
  let samples =
    List.init config.trials (fun i ->
        run_trial ?before_timed ~make_ops workload config i)
  in
  mean_stddev samples

(* ------------------------------------------------------------------ *)
(* The six structures of the paper's evaluation, packaged uniformly. *)

type subject = { label : string; make : universe:int -> ops }

let pat_subject =
  {
    label = Core.Patricia.name;
    make =
      (fun ~universe ->
        let t = Core.Patricia.create ~universe () in
        {
          insert = Core.Patricia.insert t;
          delete = Core.Patricia.delete t;
          member = Core.Patricia.member t;
          replace =
            Some (fun remove add -> Core.Patricia.replace t ~remove ~add);
        });
  }

let bst_subject =
  {
    label = Nbbst.name;
    make =
      (fun ~universe ->
        let t = Nbbst.create ~universe () in
        {
          insert = Nbbst.insert t;
          delete = Nbbst.delete t;
          member = Nbbst.member t;
          replace = None;
        });
  }

let kary_subject =
  {
    label = Kary.name;
    make =
      (fun ~universe ->
        let t = Kary.create ~universe () in
        {
          insert = Kary.insert t;
          delete = Kary.delete t;
          member = Kary.member t;
          replace = None;
        });
  }

let skiplist_subject =
  {
    label = Skiplist.name;
    make =
      (fun ~universe ->
        let t = Skiplist.create ~universe () in
        {
          insert = Skiplist.insert t;
          delete = Skiplist.delete t;
          member = Skiplist.member t;
          replace = None;
        });
  }

let avl_subject =
  {
    label = Avl.name;
    make =
      (fun ~universe ->
        let t = Avl.create ~universe () in
        {
          insert = Avl.insert t;
          delete = Avl.delete t;
          member = Avl.member t;
          replace = None;
        });
  }

let ctrie_subject =
  {
    label = Ctrie.name;
    make =
      (fun ~universe ->
        let t = Ctrie.create ~universe () in
        {
          insert = Ctrie.insert t;
          delete = Ctrie.delete t;
          member = Ctrie.member t;
          replace = None;
        });
  }

(** In the order the paper's legends list them. *)
let all_subjects =
  [
    pat_subject;
    kary_subject;
    bst_subject;
    avl_subject;
    skiplist_subject;
    ctrie_subject;
  ]

let run_subject subject workload config =
  run ~make_ops:(fun () -> subject.make ~universe:workload.universe) workload config

(* ------------------------------------------------------------------ *)
(* Figure-style reporting *)

let pp_series fmt ~title ~threads_list (rows : (string * datapoint list) list) =
  Format.fprintf fmt "## %s@." title;
  Format.fprintf fmt "%-8s" "threads";
  List.iter (fun t -> Format.fprintf fmt "%14d" t) threads_list;
  Format.fprintf fmt "@.";
  List.iter
    (fun (label, points) ->
      Format.fprintf fmt "%-8s" label;
      List.iter (fun p -> Format.fprintf fmt "%14.0f" p.mean) points;
      Format.fprintf fmt "@.";
      Format.fprintf fmt "%-8s" "  ±";
      List.iter (fun p -> Format.fprintf fmt "%14.0f" p.stddev) points;
      Format.fprintf fmt "@.")
    rows

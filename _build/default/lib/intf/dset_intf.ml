(** Common interface implemented by every concurrent set in this repository.

    All six data structures of the paper's evaluation (PAT, BST, 4-ST, SL,
    AVL, Ctrie) store sets of integer keys drawn from a bounded universe
    [0, universe).  The harness and the benchmarks are written against this
    signature so the same workload code drives every structure. *)

module type CONCURRENT_SET = sig
  type t

  (** Human-readable name used in benchmark output ("PAT", "BST", ...). *)
  val name : string

  (** [create ~universe ()] makes an empty set accepting keys in
      [0, universe).  Raises [Invalid_argument] if [universe < 1]. *)
  val create : universe:int -> unit -> t

  (** [insert t k] adds [k]; returns [true] iff [k] was absent. *)
  val insert : t -> int -> bool

  (** [delete t k] removes [k]; returns [true] iff [k] was present. *)
  val delete : t -> int -> bool

  (** [member t k] — wait-free on PAT; read-only everywhere. *)
  val member : t -> int -> bool

  (** Linearizable snapshot of the current contents, sorted ascending.
      Only required to be accurate in quiescent states; used by tests. *)
  val to_list : t -> int list

  (** Number of keys currently stored (quiescent accuracy suffices). *)
  val size : t -> int
end

(** Structures that additionally support the paper's atomic replace. *)
module type CONCURRENT_SET_WITH_REPLACE = sig
  include CONCURRENT_SET

  (** [replace t ~remove ~add] atomically deletes [remove] and inserts [add].
      Returns [true] iff [remove] was present and [add] absent; in that case
      both changes become visible at a single linearization point. *)
  val replace : t -> remove:int -> add:int -> bool
end

(** First-class packaging so the harness can iterate over structures. *)
type packed = Packed : (module CONCURRENT_SET with type t = 'a) -> packed

type packed_replace =
  | Packed_replace :
      (module CONCURRENT_SET_WITH_REPLACE with type t = 'a)
      -> packed_replace

(** Bit-string keys for Patricia tries.

    The paper stores a set of l-bit binary strings.  We represent an l-bit
    string b1 b2 ... bl (b1 = most significant) as the integer whose binary
    expansion over [width] bits is that string.  Node labels — prefixes of
    keys — are represented by {!Label.t}: the prefix bits right-aligned in an
    int together with the prefix length.

    The module also provides the key encodings discussed in the paper:
    Morton interleaving of 2-D coordinates (Section I, the quadtree-like use
    of the trie for points in R^2) and the [0 -> 01, 1 -> 10, $ -> 11]
    encoding of unbounded-length binary strings (Section VI). *)

let max_width = 62

(** Number of bits needed to represent [n]; [bit_length 0 = 0]. *)
let bit_length n =
  if n < 0 then invalid_arg "Bitkey.bit_length: negative";
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(** [bit ~width k i] is the i-th bit of the width-bit string for [k],
    1-indexed from the most significant bit, as the paper counts bits. *)
let bit ~width k i =
  if i < 1 || i > width then invalid_arg "Bitkey.bit: index out of range";
  (k lsr (width - i)) land 1

let popcount n =
  let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
  go 0 n

module Label = struct
  (** The first [len] bits of some width-bit key, right-aligned in [bits]. *)
  type t = { bits : int; len : int }

  let empty = { bits = 0; len = 0 }

  let length t = t.len

  let of_key ~width k =
    if width < 1 || width > max_width then invalid_arg "Label.of_key: width";
    if k < 0 || k lsr width <> 0 then invalid_arg "Label.of_key: key out of range";
    { bits = k; len = width }

  (** Truncate a label to its first [len] bits. *)
  let prefix t len =
    if len < 0 || len > t.len then invalid_arg "Label.prefix: bad length";
    { bits = t.bits lsr (t.len - len); len }

  (** [is_prefix a b]: is the bit string of [a] a prefix of that of [b]? *)
  let is_prefix a b = a.len <= b.len && b.bits lsr (b.len - a.len) = a.bits

  let is_proper_prefix a b = a.len < b.len && is_prefix a b

  (** [is_prefix_of_key ~width t k]: is [t] a prefix of the width-bit key? *)
  let is_prefix_of_key ~width t k = t.len <= width && k lsr (width - t.len) = t.bits

  (** The bit of [k] that immediately follows prefix [t]: the (len+1)-th bit
      of [k].  This is the child direction the paper uses at an internal node
      whose label has length len (line 82 of the pseudocode). *)
  let next_bit_of_key ~width t k =
    if t.len >= width then invalid_arg "Label.next_bit_of_key: label too long";
    (k lsr (width - t.len - 1)) land 1

  (** The bit of label [b] that immediately follows prefix [t]. *)
  let next_bit t b =
    if t.len >= b.len then invalid_arg "Label.next_bit: not a proper prefix";
    (b.bits lsr (b.len - t.len - 1)) land 1

  (** Longest common prefix of two labels. *)
  let lcp a b =
    let n = min a.len b.len in
    let a' = a.bits lsr (a.len - n) and b' = b.bits lsr (b.len - n) in
    let common = n - bit_length (a' lxor b') in
    { bits = a' lsr (n - common); len = common }

  (** Append one bit to a label. *)
  let extend t b =
    if b <> 0 && b <> 1 then invalid_arg "Label.extend: bit";
    { bits = (t.bits lsl 1) lor b; len = t.len + 1 }

  let equal a b = a.len = b.len && a.bits = b.bits

  (** Order used to sort the nodes an update must flag (line 115): any total
      order works as long as every operation uses the same one; we use
      length-then-bits which is cheap and total on labels of reachable
      nodes (reachable labels are distinct by Lemma 9). *)
  let compare a b =
    match Int.compare a.len b.len with 0 -> Int.compare a.bits b.bits | c -> c

  let to_string t =
    String.init t.len (fun i ->
        if (t.bits lsr (t.len - 1 - i)) land 1 = 1 then '1' else '0')

  let pp fmt t = Format.fprintf fmt "%s" (if t.len = 0 then "ε" else to_string t)
end

(* ------------------------------------------------------------------ *)
(* Morton (Z-order) interleaving: a point (x, y) becomes the key whose
   bits alternate between the bits of x and y, so the trie behaves like
   a quadtree and [replace] moves a point atomically (paper Section I). *)

let interleave2 ~coord_bits x y =
  if coord_bits < 1 || 2 * coord_bits > max_width then
    invalid_arg "Bitkey.interleave2: coord_bits";
  if x < 0 || x lsr coord_bits <> 0 || y < 0 || y lsr coord_bits <> 0 then
    invalid_arg "Bitkey.interleave2: coordinate out of range";
  let rec go acc i =
    if i < 0 then acc
    else
      let acc = (acc lsl 2) lor (((x lsr i) land 1) lsl 1) lor ((y lsr i) land 1) in
      go acc (i - 1)
  in
  go 0 (coord_bits - 1)

let deinterleave2 ~coord_bits key =
  if coord_bits < 1 || 2 * coord_bits > max_width then
    invalid_arg "Bitkey.deinterleave2: coord_bits";
  let rec go x y i =
    if i < 0 then (x, y)
    else
      let pair = (key lsr (2 * i)) land 3 in
      go ((x lsl 1) lor (pair lsr 1)) ((y lsl 1) lor (pair land 1)) (i - 1)
  in
  go 0 0 (coord_bits - 1)

(* ------------------------------------------------------------------ *)
(* Unbounded-length binary strings (paper Section VI): encode 0 as 01,
   1 as 10 and a terminating $ as 11.  Every encoded key is strictly
   between 00...0 and 11...1, so the two sentinel leaves never collide
   with real keys.  For a fixed-width trie we bound the string length
   and zero-pad after the terminator; padding preserves injectivity. *)

let string_width ~max_len = (2 * max_len) + 2

let encode_string ~max_len s =
  let n = String.length s in
  if n > max_len then invalid_arg "Bitkey.encode_string: string too long";
  let width = string_width ~max_len in
  let acc = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '0' -> acc := (!acc lsl 2) lor 0b01
      | '1' -> acc := (!acc lsl 2) lor 0b10
      | _ -> invalid_arg "Bitkey.encode_string: not a binary string")
    s;
  acc := (!acc lsl 2) lor 0b11;
  (* terminator $ *)
  !acc lsl (width - (2 * (n + 1)))

let decode_string ~max_len key =
  let width = string_width ~max_len in
  let buf = Buffer.create max_len in
  let rec go i =
    if i > max_len then invalid_arg "Bitkey.decode_string: missing terminator"
    else
      match (key lsr (width - (2 * (i + 1)))) land 3 with
      | 0b01 ->
          Buffer.add_char buf '0';
          go (i + 1)
      | 0b10 ->
          Buffer.add_char buf '1';
          go (i + 1)
      | 0b11 -> Buffer.contents buf
      | _ -> invalid_arg "Bitkey.decode_string: invalid encoding"
  in
  go 0

(* Re-export the variable-length bit strings of Section VI under the
   library's main module. *)
module Bitstr = Bitstr

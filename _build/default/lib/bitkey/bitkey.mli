(** Bit-string keys for Patricia tries.

    The paper stores sets of [l]-bit binary strings.  This module
    represents such a string [b1 b2 ... bl] ([b1] most significant) as
    the integer with that binary expansion over a fixed [width], and
    provides the prefix arithmetic the trie is built on, plus the two
    key encodings the paper discusses: Morton interleaving of 2-D points
    (Section I) and the [0 -> 01, 1 -> 10, $ -> 11] encoding of
    variable-length strings (Section VI). *)

val max_width : int
(** Maximum supported key width, 62 (OCaml's immediate-int range). *)

val bit_length : int -> int
(** Number of bits needed to represent a non-negative int;
    [bit_length 0 = 0].  @raise Invalid_argument on negatives. *)

val bit : width:int -> int -> int -> int
(** [bit ~width k i] is the [i]-th bit of the width-bit string for [k],
    1-indexed from the most significant bit — the paper's bit numbering.
    @raise Invalid_argument unless [1 <= i <= width]. *)

val popcount : int -> int
(** Number of set bits. *)

(** Prefixes of keys: the node labels of a Patricia trie. *)
module Label : sig
  type t = { bits : int; len : int }
  (** The first [len] bits of some key, right-aligned in [bits]. *)

  val empty : t
  (** The empty string ε — the label of the root. *)

  val length : t -> int

  val of_key : width:int -> int -> t
  (** The full-length label of a key (the label of its leaf). *)

  val prefix : t -> int -> t
  (** [prefix t n] is the first [n] bits of [t].
      @raise Invalid_argument unless [0 <= n <= length t]. *)

  val is_prefix : t -> t -> bool
  (** [is_prefix a b]: is [a]'s bit string a prefix of [b]'s? *)

  val is_proper_prefix : t -> t -> bool

  val is_prefix_of_key : width:int -> t -> int -> bool
  (** Specialization of {!is_prefix} to a full key, used on the trie's
      hot search path (line 79 of the paper's pseudocode). *)

  val next_bit_of_key : width:int -> t -> int -> int
  (** The bit of the key immediately after the prefix: the child
      direction at a node with this label (line 82).
      @raise Invalid_argument if the label is full-length. *)

  val next_bit : t -> t -> int
  (** [next_bit t b] is the bit of label [b] just after prefix [t].
      @raise Invalid_argument unless [t] is a proper prefix of [b]. *)

  val lcp : t -> t -> t
  (** Longest common prefix — the label of a freshly created internal
      node (line 121). *)

  val extend : t -> int -> t
  (** Append one bit.  @raise Invalid_argument unless the bit is 0/1. *)

  val equal : t -> t -> bool

  val compare : t -> t -> int
  (** A total order on labels (length, then bits), used to sort the
      nodes an update flags so that flagging is deadlock-free
      (line 115). *)

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

val interleave2 : coord_bits:int -> int -> int -> int
(** [interleave2 ~coord_bits x y] is the Morton (Z-order) key whose bits
    alternate between those of [x] and [y]; under this encoding the trie
    behaves like a quadtree and [replace] moves a point atomically.
    @raise Invalid_argument if a coordinate needs more than [coord_bits]
    bits or [2 * coord_bits > max_width]. *)

val deinterleave2 : coord_bits:int -> int -> int * int
(** Inverse of {!interleave2}. *)

val string_width : max_len:int -> int
(** Key width needed to store binary strings of length up to [max_len]
    under the Section-VI encoding: [2 * max_len + 2]. *)

val encode_string : max_len:int -> string -> int
(** Encode a string over ['0']/['1'] as [0 -> 01, 1 -> 10] followed by a
    [11] terminator, zero-padded to [string_width ~max_len] bits.  The
    encoding is injective and every encoded key is strictly between the
    all-zeros and all-ones sentinels.
    @raise Invalid_argument on non-binary characters or overlong input. *)

val decode_string : max_len:int -> int -> string
(** Inverse of {!encode_string}.
    @raise Invalid_argument if the key is not a valid encoding. *)

(** Variable-length bit strings (Section VI keys); see {!module:Bitstr}. *)
module Bitstr = Bitstr

lib/bitkey/bitstr.mli: Format

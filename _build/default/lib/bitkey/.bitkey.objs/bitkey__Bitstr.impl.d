lib/bitkey/bitstr.ml: Buffer Bytes Char Format Int String

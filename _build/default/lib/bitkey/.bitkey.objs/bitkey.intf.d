lib/bitkey/bitkey.mli: Bitstr Format

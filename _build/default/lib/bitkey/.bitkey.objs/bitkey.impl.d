lib/bitkey/bitkey.ml: Bitstr Buffer Format Int String

(* Immutable variable-length bit strings, the key/label type for the
   unbounded-key Patricia trie of the paper's Section VI ("since labels
   of nodes never change, they need not fit in a single word").

   Bits are packed MSB-first into bytes; [len] is the exact bit count.
   All operations treat the value as the bit sequence b1 ... b_len. *)

type t = { data : string; len : int }

let empty = { data = ""; len = 0 }

let length t = t.len

let bytes_for len = (len + 7) / 8

(* Invariant: trailing pad bits of the last byte are zero, so structural
   string equality coincides with bit-sequence equality. *)
let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitstr.get: index out of range";
  (Char.code t.data.[i lsr 3] lsr (7 - (i land 7))) land 1

let make len f =
  if len < 0 then invalid_arg "Bitstr.make: negative length";
  let b = Bytes.make (bytes_for len) '\000' in
  for i = 0 to len - 1 do
    if f i <> 0 then
      Bytes.set b (i lsr 3)
        (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (7 - (i land 7)))))
  done;
  { data = Bytes.unsafe_to_string b; len }

let of_string s =
  make (String.length s) (fun i ->
      match s.[i] with
      | '0' -> 0
      | '1' -> 1
      | _ -> invalid_arg "Bitstr.of_string: not a binary string")

let to_string t = String.init t.len (fun i -> if get t i = 1 then '1' else '0')

let equal a b = a.len = b.len && String.equal a.data b.data

(* Number of leading bits the two strings share (up to the shorter). *)
let common_prefix_len a b =
  let n = min a.len b.len in
  let nb = bytes_for n in
  let rec byte_loop i =
    if i >= nb then n
    else
      let xa = Char.code a.data.[i] and xb = Char.code b.data.[i] in
      if xa = xb then byte_loop (i + 1)
      else
        let x = xa lxor xb in
        let rec first_diff bit = if x land (0x80 lsr bit) <> 0 then bit else first_diff (bit + 1) in
        min n ((i * 8) + first_diff 0)
  in
  byte_loop 0

let is_prefix a b = a.len <= b.len && common_prefix_len a b = a.len
let is_proper_prefix a b = a.len < b.len && is_prefix a b

let prefix t n =
  if n < 0 || n > t.len then invalid_arg "Bitstr.prefix: bad length";
  if n = t.len then t
  else begin
    let nb = bytes_for n in
    let b = Bytes.make nb '\000' in
    Bytes.blit_string t.data 0 b 0 nb;
    (* zero the pad bits so equality stays structural *)
    let pad = (nb * 8) - n in
    if pad > 0 then begin
      let last = Char.code (Bytes.get b (nb - 1)) in
      Bytes.set b (nb - 1) (Char.chr (last land (0xFF lsl pad)))
    end;
    { data = Bytes.unsafe_to_string b; len = n }
  end

let lcp a b = prefix a (common_prefix_len a b)

(* The bit of [b] immediately after prefix [t]. *)
let next_bit t b =
  if t.len >= b.len then invalid_arg "Bitstr.next_bit: not a proper prefix";
  get b t.len

let append a b =
  make (a.len + b.len) (fun i -> if i < a.len then get a i else get b (i - a.len))

let extend t bit =
  if bit <> 0 && bit <> 1 then invalid_arg "Bitstr.extend: bit";
  make (t.len + 1) (fun i -> if i < t.len then get t i else bit)

(* Any total order works for the trie's deadlock-free flag ordering;
   length-then-bytes is cheap. *)
let compare a b =
  match Int.compare a.len b.len with
  | 0 -> String.compare a.data b.data
  | c -> c

let pp fmt t = Format.fprintf fmt "%s" (if t.len = 0 then "ε" else to_string t)

(* ------------------------------------------------------------------ *)
(* The Section-VI encoding: 0 -> 01, 1 -> 10 and a terminating 11, so
   every encoded key is strictly between the sentinels 00 and 111 and
   distinct keys are never prefixes of one another. *)

let sentinel_lo = of_string "00"
let sentinel_hi = of_string "111"

let encode_binary s =
  let n = String.length s in
  if n = 0 then
    invalid_arg "Bitstr.encode_binary: the empty string is reserved";
  make ((2 * n) + 2) (fun i ->
      if i >= 2 * n then 1 (* terminator 11 *)
      else
        let c = s.[i / 2] in
        let hi = i land 1 = 0 in
        match c with
        | '0' -> if hi then 0 else 1 (* 01 *)
        | '1' -> if hi then 1 else 0 (* 10 *)
        | _ -> invalid_arg "Bitstr.encode_binary: not a binary string")

let decode_binary t =
  if t.len < 2 || t.len mod 2 <> 0 then
    invalid_arg "Bitstr.decode_binary: invalid encoding";
  let pairs = (t.len / 2) - 1 in
  let buf = Buffer.create pairs in
  for i = 0 to pairs - 1 do
    match (get t (2 * i), get t ((2 * i) + 1)) with
    | 0, 1 -> Buffer.add_char buf '0'
    | 1, 0 -> Buffer.add_char buf '1'
    | _ -> invalid_arg "Bitstr.decode_binary: invalid encoding"
  done;
  if get t (t.len - 2) <> 1 || get t (t.len - 1) <> 1 then
    invalid_arg "Bitstr.decode_binary: missing terminator";
  Buffer.contents buf

(* Arbitrary byte strings ride on the same scheme, one byte = 8 binary
   digits. *)
let encode_bytes s =
  if String.length s = 0 then
    invalid_arg "Bitstr.encode_bytes: the empty string is reserved";
  let n = String.length s in
  make ((16 * n) + 2) (fun i ->
      if i >= 16 * n then 1
      else
        let bit_idx = i / 2 in
        let bit = (Char.code s.[bit_idx / 8] lsr (7 - (bit_idx mod 8))) land 1 in
        let hi = i land 1 = 0 in
        if bit = 0 then if hi then 0 else 1 else if hi then 1 else 0)

let decode_bytes t =
  let bin = decode_binary t in
  let n = String.length bin in
  if n mod 8 <> 0 then invalid_arg "Bitstr.decode_bytes: invalid encoding";
  String.init (n / 8) (fun i ->
      let v = ref 0 in
      for j = 0 to 7 do
        v := (!v lsl 1) lor if bin.[(i * 8) + j] = '1' then 1 else 0
      done;
      Char.chr !v)

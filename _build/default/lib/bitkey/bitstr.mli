(** Immutable variable-length bit strings: the key and label type for
    the unbounded-key Patricia trie of the paper's Section VI, where
    node labels need not fit in a machine word.

    Values are packed bit sequences; all operations are by value (two
    equal bit sequences are {!equal} regardless of how they were
    built). *)

type t

val empty : t
val length : t -> int

val get : t -> int -> int
(** [get t i] is the (0-indexed) i-th bit.
    @raise Invalid_argument when out of range. *)

val make : int -> (int -> int) -> t
val of_string : string -> t
(** From a string over ['0']/['1']. *)

val to_string : t -> string
val equal : t -> t -> bool

val common_prefix_len : t -> t -> int
val is_prefix : t -> t -> bool
val is_proper_prefix : t -> t -> bool

val prefix : t -> int -> t
(** First [n] bits. *)

val lcp : t -> t -> t

val next_bit : t -> t -> int
(** [next_bit p b]: the bit of [b] just after proper prefix [p].
    @raise Invalid_argument unless [length p < length b]. *)

val append : t -> t -> t
val extend : t -> int -> t

val compare : t -> t -> int
(** A total order (length, then content) — used to sort the nodes an
    update must flag, keeping flagging deadlock-free. *)

val pp : Format.formatter -> t -> unit

(** {1 The Section-VI encoding}

    [0 -> 01], [1 -> 10], terminator [$ -> 11].  Encoded keys are
    mutually prefix-free and lie strictly between {!sentinel_lo} ([00])
    and {!sentinel_hi} ([111]), which therefore serve as the trie's two
    permanent dummy leaves.  The empty string is reserved (its encoding
    [11] would prefix [111]). *)

val sentinel_lo : t
val sentinel_hi : t

val encode_binary : string -> t
(** Encode a non-empty string over ['0']/['1'].
    @raise Invalid_argument on the empty string or other characters. *)

val decode_binary : t -> string

val encode_bytes : string -> t
(** Encode a non-empty arbitrary byte string (8 binary digits/byte). *)

val decode_bytes : t -> string

(** Concurrent 2-D point set: the paper's Geographic Information System
    application (Section I).

    Points on a [2^coord_bits x 2^coord_bits] grid are stored in a
    Patricia trie under their Morton (Z-order) keys, so the trie behaves
    like a quadtree.  All operations are safe from any number of
    domains; {!move} is the paper's atomic replace, so a moving object
    is never observed in two places or in none. *)

type t

val create : coord_bits:int -> unit -> t
(** A grid of side [2^coord_bits] ([1 <= coord_bits <= 31]).  The two
    extreme corners [(0,0)] and [(side-1, side-1)] are reserved (they
    are the trie's sentinel keys). *)

val side : t -> int

val add : t -> x:int -> y:int -> bool
(** [true] iff the cell was free.  Lock-free. *)

val remove : t -> x:int -> y:int -> bool
(** [true] iff the cell was occupied.  Lock-free. *)

val mem : t -> x:int -> y:int -> bool
(** Wait-free. *)

val move : t -> from_x:int -> from_y:int -> to_x:int -> to_y:int -> bool
(** Atomically move a point.  [true] iff the source was occupied and
    the destination free; otherwise nothing changes.  Lock-free. *)

val size : t -> int

val to_points : t -> (int * int) list
(** All points, in Z-order (quiescent accuracy). *)

val fold_rect :
  t ->
  x0:int ->
  y0:int ->
  x1:int ->
  y1:int ->
  init:'a ->
  f:('a -> int -> int -> 'a) ->
  'a
(** Fold over the points inside the rectangle [\[x0,x1\] x \[y0,y1\]]
    (inclusive, clamped to the grid), via one pruned Z-order range scan.
    Weakly consistent under concurrent updates, exact in quiescence. *)

val count_in_rect : t -> x0:int -> y0:int -> x1:int -> y1:int -> int
val points_in_rect : t -> x0:int -> y0:int -> x1:int -> y1:int -> (int * int) list

(* Concurrent 2-D point set on the Patricia trie, the Geographic
   Information System application of the paper's introduction.

   A point (x, y) is stored as its Morton (Z-order) key, making the trie
   behave like a quadtree; [move] is the paper's atomic replace, so an
   observer can never see a moving object in two places or in none.
   Rectangle queries walk the trie once over the Z-order interval of the
   rectangle, pruning subtrees whose quadrant misses it, and filter the
   survivors by exact coordinates. *)

module Pat = Core.Patricia

type t = { trie : Pat.t; coord_bits : int; side : int }

let create ~coord_bits () =
  if coord_bits < 1 || 2 * coord_bits > Bitkey.max_width then
    invalid_arg "Spatial.create: coord_bits out of range";
  {
    trie = Pat.create_width ~width:(2 * coord_bits) ();
    coord_bits;
    side = 1 lsl coord_bits;
  }

let side t = t.side

let key t x y =
  if x < 0 || x >= t.side || y < 0 || y >= t.side then
    invalid_arg "Spatial: coordinate out of range";
  let k = Bitkey.interleave2 ~coord_bits:t.coord_bits x y in
  (* The two extreme corners are the trie's sentinels. *)
  if k = 0 || k = (1 lsl (2 * t.coord_bits)) - 1 then
    invalid_arg "Spatial: the two extreme corners are reserved"
  else k

let add t ~x ~y = Pat.insert t.trie (key t x y)
let remove t ~x ~y = Pat.delete t.trie (key t x y)
let mem t ~x ~y = Pat.member t.trie (key t x y)

(** Atomically move a point: fails (returning [false], changing nothing)
    unless the source is present and the destination free. *)
let move t ~from_x ~from_y ~to_x ~to_y =
  let remove = key t from_x from_y and add = key t to_x to_y in
  if remove = add then false else Pat.replace t.trie ~remove ~add

let size t = Pat.size t.trie

let to_points t =
  Pat.fold t.trie ~init:[] ~f:(fun acc k ->
      Bitkey.deinterleave2 ~coord_bits:t.coord_bits k :: acc)
  |> List.rev

(* Rectangle query.  The Z-order keys of a rectangle [x0,x1]x[y0,y1] all
   lie within [interleave(x0,y0), interleave(x1,y1)] (interleaving is
   monotone in each coordinate), so one pruned range scan over that
   interval visits a superset of the answer; exact coordinates filter
   it.  Weakly consistent under concurrency, exact in quiescence. *)
let fold_rect t ~x0 ~y0 ~x1 ~y1 ~init ~f =
  if x0 > x1 || y0 > y1 then init
  else begin
    let clamp v = max 0 (min (t.side - 1) v) in
    let x0 = clamp x0 and x1 = clamp x1 and y0 = clamp y0 and y1 = clamp y1 in
    let lo = Bitkey.interleave2 ~coord_bits:t.coord_bits x0 y0 in
    let hi = Bitkey.interleave2 ~coord_bits:t.coord_bits x1 y1 in
    (* fold_range takes user keys; create_width tries use raw keys
       directly (offset 0), clamped away from the sentinels. *)
    Pat.fold_range t.trie ~lo:(max lo 1)
      ~hi:(min hi ((1 lsl (2 * t.coord_bits)) - 2))
      ~init
      ~f:(fun acc k ->
        let x, y = Bitkey.deinterleave2 ~coord_bits:t.coord_bits k in
        if x0 <= x && x <= x1 && y0 <= y && y <= y1 then f acc x y else acc)
  end

let count_in_rect t ~x0 ~y0 ~x1 ~y1 =
  fold_rect t ~x0 ~y0 ~x1 ~y1 ~init:0 ~f:(fun acc _ _ -> acc + 1)

let points_in_rect t ~x0 ~y0 ~x1 ~y1 =
  List.rev (fold_rect t ~x0 ~y0 ~x1 ~y1 ~init:[] ~f:(fun acc x y -> (x, y) :: acc))

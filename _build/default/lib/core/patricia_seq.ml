(* Sequential Patricia trie over the same key representation as the
   concurrent implementation.  It serves two purposes:

   - a trusted reference model for the concurrent trie's tests (identical
     sequential specification: set of keys with insert/delete/replace/find);
   - the single-threaded baseline the paper's introduction alludes to when
     arguing the concurrent trie is "as simple as an unbalanced search tree".

   The structure mirrors the paper's Figure 1: internal nodes store the
   longest common prefix of their two children; elements live in leaves;
   two permanent sentinel leaves 00...0 and 11...1 hang under the root. *)

module Label = Bitkey.Label

type node = Leaf of int | Internal of { label : Label.t; mutable children : node array }

type t = {
  width : int;
  root : node array ref;
  offset : int;
  bound : int; (* exclusive upper bound on user keys *)
  mutable cardinal : int;
}
(* The root internal node is represented by its child array only: its label
   is always ε and it is never replaced, exactly as in the paper. *)

let create_width ~width () =
  if width < 2 || width > Bitkey.max_width then
    invalid_arg "Patricia_seq.create_width: width must be in [2, 62]";
  {
    width;
    root = ref [| Leaf 0; Leaf ((1 lsl width) - 1) |];
    offset = 0;
    bound = (1 lsl width) - 1;
    cardinal = 0;
  }

let create ~universe () =
  if universe < 1 then invalid_arg "Patricia_seq.create: universe must be >= 1";
  let width = max 2 (Bitkey.bit_length (universe + 1)) in
  { (create_width ~width ()) with offset = 1; bound = universe }

let max_sentinel t = (1 lsl t.width) - 1

let internal_key t k =
  let k' = k + t.offset in
  if k < 0 || k >= t.bound || k' < 1 || k' >= max_sentinel t then
    invalid_arg "Patricia_seq: key out of the universe"
  else k'

let node_label ~width = function
  | Leaf k -> Label.of_key ~width k
  | Internal { label; _ } -> label

(* Descend to where key [v] lives (or would live), returning the child
   array holding the final node, the index within it, and the node. *)
let locate t v =
  let width = t.width in
  let rec go arr idx =
    match arr.(idx) with
    | Internal ({ label; children } as _i) when Label.is_prefix_of_key ~width label v ->
        go children (Label.next_bit_of_key ~width label v)
    | _ -> (arr, idx)
  in
  let arr = !(t.root) in
  go arr (Label.next_bit_of_key ~width Label.empty v)

let member_internal t v =
  let arr, idx = locate t v in
  match arr.(idx) with Leaf k -> k = v | Internal _ -> false

let member t k = member_internal t (internal_key t k)

let join ~width n1 n2 =
  let l1 = node_label ~width n1 and l2 = node_label ~width n2 in
  let lcp = Label.lcp l1 l2 in
  let d1 = Label.next_bit lcp l1 in
  let children = if d1 = 0 then [| n1; n2 |] else [| n2; n1 |] in
  Internal { label = lcp; children }

let insert_internal t v =
  let arr, idx = locate t v in
  match arr.(idx) with
  | Leaf k when k = v -> false
  | node ->
      arr.(idx) <- join ~width:t.width node (Leaf v);
      t.cardinal <- t.cardinal + 1;
      true

let insert t k = insert_internal t (internal_key t k)

(* Delete: replace the leaf's parent by the leaf's sibling.  We re-descend
   tracking the grandparent slot, as the paper's delete does. *)
let delete_internal t v =
  let width = t.width in
  let rec go (gp_arr : node array) gp_idx =
    match gp_arr.(gp_idx) with
    | Leaf _ -> false
    | Internal { label; children } when Label.is_prefix_of_key ~width label v -> (
        let dir = Label.next_bit_of_key ~width label v in
        match children.(dir) with
        | Leaf k when k = v ->
            gp_arr.(gp_idx) <- children.(1 - dir);
            t.cardinal <- t.cardinal - 1;
            true
        | Leaf _ -> false
        | Internal _ -> go children dir)
    | Internal _ -> false
  in
  let arr = !(t.root) in
  go arr (Label.next_bit_of_key ~width Label.empty v)

let delete t k = delete_internal t (internal_key t k)

let replace t ~remove ~add =
  let vd = internal_key t remove and vi = internal_key t add in
  if vd = vi then false
  else if member_internal t vd && not (member_internal t vi) then begin
    ignore (delete_internal t vd);
    ignore (insert_internal t vi);
    true
  end
  else false

let fold_leaves t ~init ~f =
  let rec go acc = function
    | Leaf k -> if k = 0 || k = max_sentinel t then acc else f acc k
    | Internal { children; _ } -> go (go acc children.(0)) children.(1)
  in
  let arr = !(t.root) in
  go (go init arr.(0)) arr.(1)

let to_list t =
  fold_leaves t ~init:[] ~f:(fun acc k -> (k - t.offset) :: acc)
  |> List.sort Int.compare

let size t = t.cardinal

let check_invariants t =
  let width = t.width in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let rec go (path : Label.t) node =
    match node with
    | Leaf k ->
        if not (Label.is_prefix path (Label.of_key ~width k)) then
          err "leaf %d not under path %a" k Label.pp path
    | Internal { label; children } ->
        if not (Label.is_prefix path label) then
          err "internal %a not under path %a" Label.pp label Label.pp path;
        if Array.length children <> 2 then err "internal node without 2 children";
        Array.iteri
          (fun dir c ->
            let expect = Label.extend label dir in
            if not (Label.is_prefix expect (node_label ~width c)) then
              err "child %d of %a mislabelled" dir Label.pp label;
            go expect c)
          children
  in
  let arr = !(t.root) in
  go (Label.extend Label.empty 0) arr.(0);
  go (Label.extend Label.empty 1) arr.(1);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

let name = "SEQ-PAT"

lib/core/patricia_vlk.mli: Bitkey

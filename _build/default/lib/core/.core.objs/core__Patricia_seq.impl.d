lib/core/patricia_seq.ml: Array Bitkey Format Int List String

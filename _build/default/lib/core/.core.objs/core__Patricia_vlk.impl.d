lib/core/patricia_vlk.ml: Array Atomic Bitkey Format List Option String

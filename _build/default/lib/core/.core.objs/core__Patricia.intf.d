lib/core/patricia.mli:

lib/core/patricia.ml: Array Atomic Bitkey Format List Option String

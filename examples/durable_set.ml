(* Durability: the lock-free trie fronted by the write-ahead log and
   checkpoints from lib/persist.

   The store applies every mutation to the in-memory trie first, then
   publishes it to a group-committed WAL; [barrier] blocks until this
   domain's last mutation is fsynced, which is the moment a server may
   acknowledge it.  Reopening the directory recovers the newest valid
   checkpoint plus the log tail — surviving kill -9 mid-write (a torn
   final record is detected by CRC and truncated).

   Run with:  dune exec examples/durable_set.exe *)

module Store = Persist.Store.Make (struct
  include Core.Patricia

  let create ~universe () = Core.Patricia.create ~universe ()
  let snapshot = Core.Patricia.snapshot_capability
end)

let dir = Filename.concat (Filename.get_temp_dir_name ()) "durable_set_example"

let () =
  (* First life: create, mutate, checkpoint, mutate some more. *)
  let s = Store.open_ ~dir ~universe:1024 ~mode:Store.Sync () in
  assert (Store.insert s 42);
  assert (Store.insert s 7);
  assert (Store.replace s ~remove:7 ~add:9);
  Store.barrier s;
  (* <- 42 and 9 are on disk; a server would ack here *)
  let keys, _segments_freed = Store.checkpoint s in
  Printf.printf "checkpointed %d keys\n" keys;
  assert (Store.delete s 42);
  assert (Store.insert s 100);
  Store.barrier s;
  Store.close s;

  (* Second life: recovery = checkpoint image + WAL tail replay. *)
  let s = Store.open_ ~dir ~universe:1024 ~mode:Store.Sync () in
  let ri = Store.recovery_info s in
  Printf.printf "recovered %d keys (checkpoint had %d, replayed %d wal records)\n"
    (Store.size s) ri.Store.checkpoint_keys ri.Store.wal_replayed;
  assert (Store.member s 9);
  assert (Store.member s 100);
  assert (not (Store.member s 42));
  assert (not (Store.member s 7));
  Store.close s;

  (* Clean up the example directory. *)
  Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
  Unix.rmdir dir;
  print_endline "durable_set: ok"

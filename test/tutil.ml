(* Shared helpers for the test suites. *)

module IS = Set.Make (Int)

(* The operations of one concurrent-set implementation, as closures (same
   shape as Harness.ops but without depending on the harness). *)
type ops = {
  label : string;
  insert : int -> bool;
  delete : int -> bool;
  member : int -> bool;
  to_list : unit -> int list;
  size : unit -> int;
  check : unit -> (unit, string) result;
  replace : (remove:int -> add:int -> bool) option;
  scan_bits : (unit -> int) option;
      (* atomic multi-key read: the full key set as a bitmask, drawn
         from a frozen snapshot (in-process view or wire SCAN page);
         [None] for structures without the snapshot capability *)
}

let pat_ops ~universe () =
  let t = Core.Patricia.create ~universe () in
  {
    label = "PAT";
    insert = Core.Patricia.insert t;
    delete = Core.Patricia.delete t;
    member = Core.Patricia.member t;
    to_list = (fun () -> Core.Patricia.to_list t);
    size = (fun () -> Core.Patricia.size t);
    check = (fun () -> Core.Patricia.check_invariants t);
    replace = Some (fun ~remove ~add -> Core.Patricia.replace t ~remove ~add);
    scan_bits =
      Some
        (fun () ->
          let v = Core.Patricia.snapshot t in
          Core.Patricia.View.fold v ~init:0 ~f:(fun acc k ->
              acc lor (1 lsl k)));
  }

let bst_ops ~universe () =
  let t = Nbbst.create ~universe () in
  {
    label = "BST";
    insert = Nbbst.insert t;
    delete = Nbbst.delete t;
    member = Nbbst.member t;
    to_list = (fun () -> Nbbst.to_list t);
    size = (fun () -> Nbbst.size t);
    check = (fun () -> Nbbst.check_invariants t);
    replace = None;
    scan_bits = None;
  }

let kary_ops ~universe () =
  let t = Kary.create ~universe () in
  {
    label = "4-ST";
    insert = Kary.insert t;
    delete = Kary.delete t;
    member = Kary.member t;
    to_list = (fun () -> Kary.to_list t);
    size = (fun () -> Kary.size t);
    check = (fun () -> Kary.check_invariants t);
    replace = None;
    scan_bits = None;
  }

let sl_ops ~universe () =
  let t = Skiplist.create ~universe () in
  {
    label = "SL";
    insert = Skiplist.insert t;
    delete = Skiplist.delete t;
    member = Skiplist.member t;
    to_list = (fun () -> Skiplist.to_list t);
    size = (fun () -> Skiplist.size t);
    check = (fun () -> Skiplist.check_invariants t);
    replace = None;
    scan_bits = None;
  }

let avl_ops ~universe () =
  let t = Avl.create ~universe () in
  {
    label = "AVL";
    insert = Avl.insert t;
    delete = Avl.delete t;
    member = Avl.member t;
    to_list = (fun () -> Avl.to_list t);
    size = (fun () -> Avl.size t);
    check = (fun () -> Avl.check_invariants t);
    replace = None;
    scan_bits = None;
  }

let ctrie_ops ~universe () =
  let t = Ctrie.create ~universe () in
  {
    label = "Ctrie";
    insert = Ctrie.insert t;
    delete = Ctrie.delete t;
    member = Ctrie.member t;
    to_list = (fun () -> Ctrie.to_list t);
    size = (fun () -> Ctrie.size t);
    check = (fun () -> Ctrie.check_invariants t);
    replace = None;
    scan_bits = None;
  }

let all_makers =
  [ pat_ops; bst_ops; kary_ops; sl_ops; avl_ops; ctrie_ops ]

let baseline_makers = [ bst_ops; kary_ops; sl_ops; avl_ops; ctrie_ops ]

(* ------------------------------------------------------------------ *)

let check_ok label ops =
  match ops.check () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s invariants violated: %s" label e

(* Drive [ops] and a reference IntSet through [steps] random operations,
   failing on the first divergence; returns the final model. *)
let model_run ?(seed = 42) ~universe ~steps ops =
  let rng = Rng.of_int_seed seed in
  let model = ref IS.empty in
  for step = 1 to steps do
    let k = Rng.int rng universe in
    match Rng.int rng 3 with
    | 0 ->
        let expect = not (IS.mem k !model) in
        if ops.insert k <> expect then
          Alcotest.failf "%s: insert %d wrong at step %d" ops.label k step;
        model := IS.add k !model
    | 1 ->
        let expect = IS.mem k !model in
        if ops.delete k <> expect then
          Alcotest.failf "%s: delete %d wrong at step %d" ops.label k step;
        model := IS.remove k !model
    | _ ->
        if ops.member k <> IS.mem k !model then
          Alcotest.failf "%s: member %d wrong at step %d" ops.label k step
  done;
  !model

let spawn_n n f = List.init n (fun d -> Domain.spawn (fun () -> f d))
let join_all ds = List.map Domain.join ds

(* Record a small concurrent history against [ops] and check it with the
   linearizability checker. *)
let linearizable_run ?(threads = 3) ?(ops_per_thread = 12) ?(universe = 8)
    ?(seed = 0) ~with_replace (mk : universe:int -> unit -> ops) =
  let ops = mk ~universe () in
  let recorder = Linearize.Recorder.create ~threads in
  (* Structures with a snapshot capability get atomic scans mixed into
     the same history: each records the frozen view's key set, which
     the checker must place at a single linearization point among the
     concurrent mutations. *)
  let with_scan = ops.scan_bits <> None in
  let worker d =
    let rng = Rng.of_int_seed (seed + (d * 31)) in
    for _ = 1 to ops_per_thread do
      let k = Rng.int rng universe in
      let choices =
        (if with_replace then 4 else 3) + if with_scan then 1 else 0
      in
      match Rng.int rng choices with
      | 0 ->
          ignore
            (Linearize.Recorder.record recorder ~thread:d (Insert k) (fun () ->
                 ops.insert k))
      | 1 ->
          ignore
            (Linearize.Recorder.record recorder ~thread:d (Delete k) (fun () ->
                 ops.delete k))
      | 2 ->
          ignore
            (Linearize.Recorder.record recorder ~thread:d (Member k) (fun () ->
                 ops.member k))
      | 3 when with_replace ->
          let k2 = Rng.int rng universe in
          let replace = Option.get ops.replace in
          ignore
            (Linearize.Recorder.record recorder ~thread:d (Replace (k, k2))
               (fun () -> replace ~remove:k ~add:k2))
      | _ ->
          ignore
            (Linearize.Recorder.record_scan recorder ~thread:d ~lo:0
               ~hi:(universe - 1)
               (Option.get ops.scan_bits))
    done
  in
  join_all (spawn_n threads worker) |> ignore;
  let history = Linearize.Recorder.history recorder in
  if not (Linearize.check history) then
    Alcotest.failf "%s: history of %d ops is not linearizable" ops.label
      (Array.length history);
  (* Teardown audit: the structure must also be internally consistent
     once the recorded run is over (no residual flags, ordered leaves). *)
  check_ok ops.label ops

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Structure-forensics tests: the Obs.Shape census against tries of
   known shape, descent-depth accounting bounds, the registry's uniform
   census/descent capability (with its explicit "unsupported" marker),
   and the Obs.Memprof degrade contract on both supported and
   unsupported runtimes. *)

module P = Core.Patricia
module V = Core.Patricia_vlk

let bits_for universe =
  (* PAT's key width: l = ceil(log2 (universe + 2)), as documented on
     [Patricia.create]. *)
  let rec go b = if 1 lsl b >= universe + 2 then b else go (b + 1) in
  go 1

(* ------------------------------------------------------------------ *)
(* Obs.Shape distribution exactness on hand-fed observations *)

let test_dist_exact () =
  let a = Obs.Shape.acc ~structure:"X" in
  (* Ten single-key leaves at depths 1..10 and one sentinel that must
     stay out of every key statistic. *)
  for d = 1 to 10 do
    Obs.Shape.leaf a ~depth:d ~keys:1 ~sentinel:false ~words:5
  done;
  Obs.Shape.leaf a ~depth:12 ~keys:0 ~sentinel:true ~words:5;
  Obs.Shape.internal a ~depth:0 ~prefix_len:3 ~children:2 ~words:7;
  let c = Obs.Shape.finish a in
  Alcotest.(check int) "keys" 10 c.Dset_intf.keys;
  Alcotest.(check int) "sentinels" 1 c.Dset_intf.sentinels;
  Alcotest.(check int) "leaves" 11 c.Dset_intf.leaves;
  Alcotest.(check int) "internals" 1 c.Dset_intf.internals;
  Alcotest.(check int) "depth count" 10 c.Dset_intf.leaf_depth.Dset_intf.d_count;
  Alcotest.(check int) "depth min" 1 c.Dset_intf.leaf_depth.Dset_intf.d_min;
  Alcotest.(check int) "depth max" 10 c.Dset_intf.leaf_depth.Dset_intf.d_max;
  (* Exact percentile: smallest v with cumulative >= ceil(p * n). *)
  Alcotest.(check int) "depth p50" 5 c.Dset_intf.leaf_depth.Dset_intf.d_p50;
  Alcotest.(check int) "depth p90" 9 c.Dset_intf.leaf_depth.Dset_intf.d_p90;
  Alcotest.(check int) "depth p99" 10 c.Dset_intf.leaf_depth.Dset_intf.d_p99;
  Alcotest.(check (float 1e-9))
    "depth mean" 5.5 c.Dset_intf.leaf_depth.Dset_intf.d_mean;
  (* max_depth covers every node, sentinels included. *)
  Alcotest.(check int) "max depth" 12 c.Dset_intf.max_depth;
  Alcotest.(check int) "est words" ((11 * 5) + 7) c.Dset_intf.est_words;
  (* No measured words supplied: bytes/key falls back to the estimate. *)
  Alcotest.(check (float 1e-9))
    "bytes per key"
    (float_of_int (((11 * 5) + 7) * (Sys.word_size / 8)) /. 10.)
    c.Dset_intf.bytes_per_key;
  (* The histogram view agrees with the counts that built it. *)
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 in
  Alcotest.(check int)
    "leaf_depth_hist total" 10
    (total c.Dset_intf.leaf_depth_hist)

(* ------------------------------------------------------------------ *)
(* PAT census on tries of known shape *)

let test_pat_census_empty () =
  let t = P.create ~universe:1024 () in
  match P.census t with
  | None -> Alcotest.fail "PAT census must be supported"
  | Some c ->
      Alcotest.(check int) "keys" 0 c.Dset_intf.keys;
      Alcotest.(check int) "sentinels" 2 c.Dset_intf.sentinels;
      Alcotest.(check int) "leaves" 2 c.Dset_intf.leaves;
      Alcotest.(check int) "internals" 1 c.Dset_intf.internals;
      Alcotest.(check int) "max depth" 1 c.Dset_intf.max_depth;
      Alcotest.(check bool) "measured > 0" true (c.Dset_intf.measured_words > 0)

let test_pat_census_populated () =
  let universe = 4096 in
  let t = P.create ~universe () in
  let rng = Rng.of_int_seed 42 in
  let inserted = ref 0 in
  for _ = 1 to 1000 do
    if P.insert t (Rng.int rng universe) then incr inserted
  done;
  match P.census t with
  | None -> Alcotest.fail "PAT census must be supported"
  | Some c ->
      Alcotest.(check int) "keys = size" (P.size t) c.Dset_intf.keys;
      Alcotest.(check int) "keys = inserted" !inserted c.Dset_intf.keys;
      Alcotest.(check int) "sentinels" 2 c.Dset_intf.sentinels;
      (* A leaf-oriented binary trie: every internal has exactly two
         children, so internals = leaves - 1. *)
      Alcotest.(check int)
        "internals = leaves - 1" (c.Dset_intf.leaves - 1)
        c.Dset_intf.internals;
      Alcotest.(check
                  (float (0.01 *. c.Dset_intf.branching.Dset_intf.d_mean)))
        "branching = 2" 2.0 c.Dset_intf.branching.Dset_intf.d_mean;
      (* Leaf depth is bounded by the key width: each internal consumes
         at least one key bit. *)
      let l = bits_for universe in
      Alcotest.(check bool)
        (Printf.sprintf "max depth %d <= width %d" c.Dset_intf.max_depth l)
        true
        (c.Dset_intf.max_depth <= l);
      (* Layout accounting vs Obj.reachable_words: the PAT estimate is
         word-exact up to the root wrapper, so allow 1%. *)
      let est = float_of_int c.Dset_intf.est_words
      and meas = float_of_int c.Dset_intf.measured_words in
      Alcotest.(check bool)
        (Printf.sprintf "estimate %.0f within 1%% of measured %.0f" est meas)
        true
        (Float.abs (est -. meas) /. meas < 0.01);
      Alcotest.(check bool) "bytes/key > 0" true (c.Dset_intf.bytes_per_key > 0.)

let test_vlk_census () =
  let t = V.create () in
  for k = 0 to 99 do
    ignore (V.insert t (Printf.sprintf "%08x" k))
  done;
  ignore (V.delete t (Printf.sprintf "%08x" 7));
  match V.census t with
  | None -> Alcotest.fail "PAT-VLK census must be supported"
  | Some c ->
      Alcotest.(check int) "keys = size" (V.size t) c.Dset_intf.keys;
      Alcotest.(check int) "keys" 99 c.Dset_intf.keys;
      Alcotest.(check int) "sentinels" 2 c.Dset_intf.sentinels;
      Alcotest.(check int)
        "internals = leaves - 1" (c.Dset_intf.leaves - 1)
        c.Dset_intf.internals

let test_kary_census () =
  let universe = 4096 in
  let t = Kary.create ~universe () in
  let rng = Rng.of_int_seed 7 in
  for _ = 1 to 1000 do
    ignore (Kary.insert t (Rng.int rng universe))
  done;
  match Kary.census t with
  | None -> Alcotest.fail "4-ST census must be supported"
  | Some c ->
      Alcotest.(check int) "keys = size" (Kary.size t) c.Dset_intf.keys;
      Alcotest.(check int) "no sentinels" 0 c.Dset_intf.sentinels;
      (* Leaves hold at most k-1 keys; internals have exactly k children. *)
      Alcotest.(check bool)
        "keys/leaf <= k-1" true
        (c.Dset_intf.keys_per_leaf.Dset_intf.d_max <= Kary.k - 1);
      Alcotest.(check int)
        "branching min" Kary.k c.Dset_intf.branching.Dset_intf.d_min;
      Alcotest.(check int)
        "branching max" Kary.k c.Dset_intf.branching.Dset_intf.d_max

(* ------------------------------------------------------------------ *)
(* Descent-cost accounting *)

let test_pat_descent () =
  let universe = 65_536 in
  let t = P.create ~universe ~record_stats:true () in
  let rng = Rng.of_int_seed 11 in
  for _ = 1 to 2000 do
    ignore (P.insert t (Rng.int rng universe))
  done;
  for _ = 1 to 2000 do
    ignore (P.member t (Rng.int rng universe))
  done;
  ignore (P.delete t 1);
  ignore (P.replace t ~remove:2 ~add:3);
  (match P.descent_stats t with
  | None -> Alcotest.fail "descent_stats must be Some with record_stats"
  | Some alist ->
      let get k = Option.value ~default:0 (List.assoc_opt k alist) in
      Alcotest.(check bool) "find nodes > 0" true (get "descent_nodes_find" > 0);
      Alcotest.(check bool)
        "insert nodes > 0" true
        (get "descent_nodes_insert" > 0);
      Alcotest.(check bool) "searches > 0" true (get "descent_searches" > 0);
      (* Mean depth derived the way the harness does it. *)
      (match Harness.descent_mean alist with
      | None -> Alcotest.fail "descent_mean must derive from the alist"
      | Some m ->
          let l = float_of_int (bits_for universe) in
          Alcotest.(check bool)
            (Printf.sprintf "1 <= mean %.2f <= width %.0f" m l)
            true
            (1.0 <= m && m <= l)));
  match P.descent_summary t with
  | None -> Alcotest.fail "descent_summary must be Some with record_stats"
  | Some s ->
      let l = bits_for universe in
      Alcotest.(check bool) "hist count > 0" true (s.Obs.Histogram.count > 0);
      Alcotest.(check bool)
        (Printf.sprintf "depth min %d >= 1" s.Obs.Histogram.min)
        true
        (s.Obs.Histogram.min >= 1);
      (* The histogram is log-bucketed: the reported max is a bucket
         upper bound, within one 1/32 sub-bucket of the true width. *)
      Alcotest.(check bool)
        (Printf.sprintf "depth max %d <= width %d (+slack)" s.Obs.Histogram.max
           l)
        true
        (s.Obs.Histogram.max <= l + ((l / 32) + 1))

let test_descent_disabled_and_monotone () =
  let t = P.create ~universe:1024 () in
  Alcotest.(check bool) "no stats -> None" true (P.descent_stats t = None);
  Alcotest.(check bool) "no stats -> None" true (P.descent_summary t = None);
  let t = P.create ~universe:1024 ~record_stats:true () in
  ignore (P.insert t 1);
  let s0 = Option.get (P.descent_stats t) in
  ignore (P.member t 1);
  ignore (P.member t 2);
  let s1 = Option.get (P.descent_stats t) in
  List.iter
    (fun (k, v1) ->
      let v0 = Option.value ~default:0 (List.assoc_opt k s0) in
      Alcotest.(check bool) (k ^ " monotone") true (v1 >= v0))
    s1

let test_kary_descent () =
  let universe = 4096 in
  let t = Kary.create ~universe ~record_stats:true () in
  let rng = Rng.of_int_seed 3 in
  for _ = 1 to 500 do
    ignore (Kary.insert t (Rng.int rng universe))
  done;
  for _ = 1 to 500 do
    ignore (Kary.member t (Rng.int rng universe))
  done;
  match Kary.descent_stats t with
  | None -> Alcotest.fail "4-ST descent_stats must be Some with record_stats"
  | Some alist ->
      (match Harness.descent_mean alist with
      | None -> Alcotest.fail "descent_mean must derive"
      | Some m ->
          (* A 4-ary tree over 2^12 keys: descents are strictly shallower
             than the binary key width. *)
          Alcotest.(check bool)
            (Printf.sprintf "mean %.2f within (0, 12]" m)
            true
            (0.0 < m && m <= 12.0));
      Alcotest.(check bool)
        "no replace key" true
        (List.assoc_opt "descent_nodes_replace" alist = None)

(* ------------------------------------------------------------------ *)
(* Registry capability: supported structures answer, baselines carry
   the explicit unsupported marker *)

let test_registry_capability () =
  List.iter
    (fun (Dset_intf.Packed (module S)) ->
      let t = S.create ~universe:256 () in
      for k = 0 to 99 do
        ignore (S.insert t k)
      done;
      match S.census t with
      | Some c ->
          Alcotest.(check string) "census names itself" S.name
            c.Dset_intf.structure;
          Alcotest.(check int) "census keys = size" (S.size t) c.Dset_intf.keys
      | None ->
          (* The explicit unsupported marker: allowed only for the
             uninstrumented baselines, never for PAT or 4-ST. *)
          Alcotest.(check bool)
            (S.name ^ " may be unsupported")
            true
            (not (List.mem S.name [ "PAT"; "4-ST" ])))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Prometheus rendering *)

let test_shape_emit () =
  let t = P.create ~universe:1024 () in
  for k = 1 to 50 do
    ignore (P.insert t k)
  done;
  let c = Option.get (P.census t) in
  let b = Obs.Prometheus.create () in
  Obs.Shape.emit b c;
  let body = Obs.Prometheus.to_string b in
  let samples, errs = Obs.Prometheus.parse_samples body in
  Alcotest.(check int) "no parse errors" 0 (List.length errs);
  let find name labels =
    Obs.Prometheus.find_sample samples ~name ~labels
  in
  Alcotest.(check (option (float 0.)))
    "pat_shape_keys" (Some 50.)
    (find "pat_shape_keys" [ ("structure", "PAT") ]);
  Alcotest.(check (option (float 0.)))
    "pat_shape_nodes sentinel" (Some 2.)
    (find "pat_shape_nodes" [ ("structure", "PAT"); ("kind", "sentinel") ]);
  Alcotest.(check bool)
    "pat_shape_bytes_per_key present" true
    (find "pat_shape_bytes_per_key" [ ("structure", "PAT") ] <> None);
  Alcotest.(check bool)
    "pat_shape_leaf_depth p99 present" true
    (find "pat_shape_leaf_depth" [ ("structure", "PAT"); ("stat", "p99") ]
    <> None)

(* ------------------------------------------------------------------ *)
(* Obs.Memprof: the degrade contract must hold on BOTH kinds of
   runtime — started (families live, up 1) and unsupported (warning
   path: up 0, families still render). *)

let test_memprof_contract () =
  Obs.Memprof.reset ();
  let r1 = Obs.Memprof.region "op:test" in
  let r2 = Obs.Memprof.region "op:test" in
  Alcotest.(check int) "region interning is stable" r1 r2;
  (match Obs.Memprof.start ~sampling_rate:0.1 () with
  | Ok mp ->
      (* Supported runtime: allocate under a labeled region from
         several domains, then expect attributed samples. *)
      let burn () =
        Obs.Memprof.set_region r1;
        let acc = ref [] in
        for i = 0 to 20_000 do
          acc := (i, string_of_int i) :: !acc;
          if i land 1023 = 0 then acc := []
        done;
        ignore (Sys.opaque_identity !acc)
      in
      let doms = List.init 2 (fun _ -> Domain.spawn burn) in
      burn ();
      List.iter Domain.join doms;
      let get k =
        Option.value ~default:0 (List.assoc_opt k (Obs.Memprof.snapshot ()))
      in
      Alcotest.(check int) "up while running" 1 (get "up");
      Alcotest.(check bool) "samples attributed" true (get "samples" > 0);
      Obs.Memprof.stop mp;
      Alcotest.(check int) "up after stop" 0
        (Option.value ~default:1
           (List.assoc_opt "up" (Obs.Memprof.snapshot ())))
  | Error msg ->
      (* Unsupported runtime (OCaml 5.0-5.2 multicore): the failure is
         a value, not an exception, and the metrics stay coherent. *)
      Alcotest.(check bool) "error message non-empty" true
        (String.length msg > 0);
      (* Concurrent region labeling must stay harmless when off. *)
      let doms =
        List.init 2 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 1000 do
                  Obs.Memprof.set_region r1
                done))
      in
      List.iter Domain.join doms;
      let up =
        Option.value ~default:1
          (List.assoc_opt "up" (Obs.Memprof.snapshot ()))
      in
      Alcotest.(check int) "up stays 0" 0 up);
  (* Either way every family renders, with up disambiguating. *)
  let b = Obs.Prometheus.create () in
  Obs.Memprof.emit b;
  let body = Obs.Prometheus.to_string b in
  let samples, errs = Obs.Prometheus.parse_samples body in
  Alcotest.(check int) "no parse errors" 0 (List.length errs);
  Alcotest.(check bool)
    "patserve_alloc_up renders" true
    (Obs.Prometheus.find_sample samples ~name:"patserve_alloc_up" ~labels:[]
    <> None);
  Alcotest.(check bool)
    "patserve_alloc_samples_total renders" true
    (Obs.Prometheus.find_sample samples ~name:"patserve_alloc_samples_total"
       ~labels:[]
    <> None);
  (* The top-sites dump is always well-formed JSON. *)
  ignore (Obs.Json.to_string (Obs.Memprof.sites_json ()))

let () =
  Alcotest.run "shape"
    [
      ( "shape",
        [
          Alcotest.test_case "dist exactness" `Quick test_dist_exact;
          Alcotest.test_case "PAT census empty" `Quick test_pat_census_empty;
          Alcotest.test_case "PAT census populated" `Quick
            test_pat_census_populated;
          Alcotest.test_case "PAT-VLK census" `Quick test_vlk_census;
          Alcotest.test_case "4-ST census" `Quick test_kary_census;
          Alcotest.test_case "emit pat_shape_*" `Quick test_shape_emit;
        ] );
      ( "descent",
        [
          Alcotest.test_case "PAT descent accounting" `Quick test_pat_descent;
          Alcotest.test_case "disabled + monotone" `Quick
            test_descent_disabled_and_monotone;
          Alcotest.test_case "4-ST descent accounting" `Quick
            test_kary_descent;
        ] );
      ( "registry",
        [
          Alcotest.test_case "census capability uniform" `Quick
            test_registry_capability;
        ] );
      ( "memprof",
        [
          Alcotest.test_case "degrade contract" `Quick test_memprof_contract;
        ] );
    ]

(* Multi-domain tests for the concurrent Patricia trie: deterministic
   disjoint workloads, contended stress with invariant audits, progress
   past a stalled update, and linearizability of recorded histories. *)

module P = Core.Patricia

let n_domains = 4

let test_disjoint_inserts () =
  let per = 2000 in
  let t = P.create ~universe:(n_domains * per) () in
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         for i = d * per to ((d + 1) * per) - 1 do
           if not (P.insert t i) then Alcotest.failf "insert %d failed" i
         done))
  |> ignore;
  Alcotest.(check int) "all present" (n_domains * per) (P.size t);
  for i = 0 to (n_domains * per) - 1 do
    if not (P.member t i) then Alcotest.failf "missing %d" i
  done;
  match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_disjoint_deletes () =
  let per = 2000 in
  let t = P.create ~universe:(n_domains * per) () in
  for i = 0 to (n_domains * per) - 1 do
    ignore (P.insert t i)
  done;
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         for i = d * per to ((d + 1) * per) - 1 do
           if not (P.delete t i) then Alcotest.failf "delete %d failed" i
         done))
  |> ignore;
  Alcotest.(check int) "all gone" 0 (P.size t);
  match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_same_key_insert_once () =
  (* All domains race to insert the same keys; for each key exactly one
     insert may report success. *)
  let universe = 64 in
  let t = P.create ~universe () in
  let wins = Array.init universe (fun _ -> Atomic.make 0) in
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun _ ->
         for k = 0 to universe - 1 do
           if P.insert t k then Atomic.incr wins.(k)
         done))
  |> ignore;
  Array.iteri
    (fun k w ->
      if Atomic.get w <> 1 then
        Alcotest.failf "key %d inserted successfully %d times" k (Atomic.get w))
    wins;
  match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_insert_delete_counting () =
  (* Successful inserts minus successful deletes must equal the final
     size — a global atomicity audit under contention. *)
  let universe = 128 in
  let t = P.create ~universe () in
  let balance = Atomic.make 0 in
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         let rng = Rng.of_int_seed (500 + d) in
         for _ = 1 to 30_000 do
           let k = Rng.int rng universe in
           if Rng.bool rng then begin
             if P.insert t k then Atomic.incr balance
           end
           else if P.delete t k then Atomic.decr balance
         done))
  |> ignore;
  Alcotest.(check int) "balance equals size" (Atomic.get balance) (P.size t);
  match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_contended_mixed_stress () =
  let universe = 100 in
  let t = P.create ~universe () in
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         let rng = Rng.of_int_seed (900 + d) in
         for _ = 1 to 50_000 do
           let k = Rng.int rng universe in
           match Rng.int rng 4 with
           | 0 -> ignore (P.insert t k)
           | 1 -> ignore (P.delete t k)
           | 2 -> ignore (P.member t k)
           | _ -> ignore (P.replace t ~remove:k ~add:(Rng.int rng universe))
         done))
  |> ignore;
  (match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e);
  (* Contents must be internally consistent. *)
  let l = P.to_list t in
  Alcotest.(check int) "size matches listing" (List.length l) (P.size t);
  List.iter (fun k -> if not (P.member t k) then Alcotest.failf "listed %d absent" k) l

let test_progress_past_stalled_update () =
  (* A "process" flags nodes and dies; every other operation must keep
     completing (the non-blocking property, Section IV part 4). *)
  let t = P.create ~universe:64 () in
  ignore (P.insert t 10);
  (match P.For_testing.prepare_insert t 11 with
  | None -> Alcotest.fail "prepare_insert failed"
  | Some d -> ignore (P.For_testing.flag_only d));
  (* Concurrent traffic over the whole trie, including the flagged area. *)
  Tutil.join_all
    (Tutil.spawn_n n_domains (fun d ->
         let rng = Rng.of_int_seed (1300 + d) in
         for _ = 1 to 10_000 do
           let k = Rng.int rng 64 in
           match Rng.int rng 3 with
           | 0 -> ignore (P.insert t k)
           | 1 -> ignore (P.delete t k)
           | _ -> ignore (P.member t k)
         done))
  |> ignore;
  (* The stalled insert was completed by some helper. *)
  (match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "no leftover flags" true
    (List.for_all (fun k -> P.For_testing.flags_on_path t k = 0) (List.init 64 Fun.id))

let test_wait_free_members_during_updates () =
  (* Readers run a fixed number of members while writers churn; the test
     passing at all (no hangs) plus result sanity is the point. *)
  let universe = 256 in
  let t = P.create ~universe () in
  for k = 0 to universe - 1 do
    if k mod 2 = 0 then ignore (P.insert t k)
  done;
  let stop = Atomic.make false in
  let writers =
    Tutil.spawn_n 2 (fun d ->
        let rng = Rng.of_int_seed (1700 + d) in
        while not (Atomic.get stop) do
          let k = Rng.int rng universe in
          if Rng.bool rng then ignore (P.insert t k) else ignore (P.delete t k)
        done)
  in
  let readers =
    Tutil.spawn_n 2 (fun d ->
        let rng = Rng.of_int_seed (1800 + d) in
        for _ = 1 to 200_000 do
          ignore (P.member t (Rng.int rng universe))
        done)
  in
  Tutil.join_all readers |> ignore;
  Atomic.set stop true;
  Tutil.join_all writers |> ignore;
  match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_helping_occurs_under_contention () =
  (* Count entries to the internal help routine during a contended run:
     with all domains hammering four keys, operations must sometimes run
     descriptors (their own and each other's).  The hook is global, so
     this test is also a guard against the hook breaking silently. *)
  let helps = Atomic.make 0 in
  P.For_testing.set_help_hook (Some (fun () -> Atomic.incr helps));
  Fun.protect
    ~finally:(fun () -> P.For_testing.set_help_hook None)
    (fun () ->
      let t = P.create ~universe:4 () in
      Tutil.join_all
        (Tutil.spawn_n n_domains (fun d ->
             let rng = Rng.of_int_seed (2500 + d) in
             for _ = 1 to 20_000 do
               let k = Rng.int rng 4 in
               if Rng.bool rng then ignore (P.insert t k)
               else ignore (P.delete t k)
             done))
      |> ignore;
      match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "help ran" true (Atomic.get helps > 0)

let test_linearizable_histories () =
  (* Many small recorded histories, checked exhaustively. *)
  for round = 0 to 19 do
    Tutil.linearizable_run ~threads:3 ~ops_per_thread:12 ~universe:8
      ~seed:(round * 97) ~with_replace:true (fun ~universe () ->
        Tutil.pat_ops ~universe ())
  done

let test_linearizable_high_contention () =
  for round = 0 to 9 do
    Tutil.linearizable_run ~threads:4 ~ops_per_thread:10 ~universe:2
      ~seed:(round * 131) ~with_replace:true (fun ~universe () ->
        Tutil.pat_ops ~universe ())
  done

let () =
  Alcotest.run "patricia_concurrent"
    [
      ( "determinism",
        [
          Alcotest.test_case "disjoint inserts" `Quick test_disjoint_inserts;
          Alcotest.test_case "disjoint deletes" `Quick test_disjoint_deletes;
          Alcotest.test_case "same-key single winner" `Quick test_same_key_insert_once;
          Alcotest.test_case "insert/delete counting" `Quick
            test_insert_delete_counting;
        ] );
      ( "stress",
        [
          Alcotest.test_case "contended mixed ops" `Slow test_contended_mixed_stress;
          Alcotest.test_case "progress past stalled update" `Quick
            test_progress_past_stalled_update;
          Alcotest.test_case "reads during updates" `Slow
            test_wait_free_members_during_updates;
          Alcotest.test_case "helping occurs under contention" `Quick
            test_helping_occurs_under_contention;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "mixed histories" `Slow test_linearizable_histories;
          Alcotest.test_case "high contention histories" `Slow
            test_linearizable_high_contention;
        ] );
    ]

(* Compare two benchmark baseline files (bench/main.exe --baseline-json)
   and fail on throughput regressions.

   CI runners differ in absolute speed from whatever machine wrote the
   committed baseline, so raw thresholds are useless.  Instead the
   median of the per-datapoint new/old throughput ratios is taken as the
   machine-speed factor, and a datapoint regresses only if its own ratio
   fell below [threshold] times that median — i.e. it slowed down
   relative to the rest of the suite, which machine speed cannot
   explain.

   Usage: compare_bench BASELINE.json CURRENT.json [--threshold 0.6]
   Exit codes: 0 ok, 1 regression found, 2 usage or malformed input. *)

module J = Obs.Json

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

type point = { figure : string; structure : string; threads : int; mean : float }

let point_key p = Printf.sprintf "%s | %s | %d" p.figure p.structure p.threads

let load path =
  let doc =
    match J.of_string (In_channel.with_open_bin path In_channel.input_all) with
    | doc -> doc
    | exception Sys_error m -> die "%s" m
    | exception J.Parse_error m -> die "%s: %s" path m
  in
  let str name dp =
    match J.member dp name with
    | Some (J.Str s) -> s
    | _ -> die "%s: datapoint lacks string %S" path name
  in
  let num name dp =
    match J.member dp name with
    | Some (J.Int i) -> float_of_int i
    | Some (J.Float f) -> f
    | _ -> die "%s: datapoint lacks number %S" path name
  in
  match J.member doc "datapoints" with
  | Some (J.Arr dps) ->
      List.map
        (fun dp ->
          {
            figure = str "figure" dp;
            structure = str "structure" dp;
            threads = int_of_float (num "threads" dp);
            mean = num "mean_ops_s" dp;
          })
        dps
  | _ -> die "%s: no \"datapoints\" array" path

let median xs =
  match List.sort compare xs with
  | [] -> die "no comparable datapoints between the two files"
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let () =
  let threshold = ref 0.6 in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t > 0.0 && t <= 1.0 -> threshold := t
        | _ -> die "--threshold wants a float in (0, 1], got %S" v);
        parse rest
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !paths with
    | [ b; c ] -> (b, c)
    | _ -> die "usage: compare_bench BASELINE.json CURRENT.json [--threshold R]"
  in
  let baseline = load baseline_path and current = load current_path in
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace base_tbl (point_key p) p) baseline;
  let pairs =
    List.filter_map
      (fun cur ->
        match Hashtbl.find_opt base_tbl (point_key cur) with
        | Some base when base.mean > 0.0 -> Some (base, cur)
        | Some _ -> None
        | None ->
            Printf.eprintf "note: %s absent from baseline, skipped\n"
              (point_key cur);
            None)
      current
  in
  let ratios = List.map (fun (b, c) -> c.mean /. b.mean) pairs in
  let m = median ratios in
  let floor_ratio = !threshold *. m in
  Printf.printf
    "%d comparable datapoints; median new/old ratio %.3f (machine factor); \
     failing below %.3f\n\n"
    (List.length pairs) m floor_ratio;
  Printf.printf "%-40s %12s %12s %8s %s\n" "datapoint" "baseline" "current"
    "ratio" "verdict";
  let regressions = ref 0 in
  List.iter
    (fun (b, c) ->
      let r = c.mean /. b.mean in
      let bad = r < floor_ratio in
      if bad then incr regressions;
      Printf.printf "%-40s %12.0f %12.0f %8.3f %s\n" (point_key b) b.mean
        c.mean r
        (if bad then "REGRESSED" else "ok"))
    pairs;
  if !regressions > 0 then begin
    Printf.printf
      "\n%d datapoint(s) dropped more than %.0f%% below the suite-wide trend\n"
      !regressions
      ((1.0 -. !threshold) *. 100.0);
    exit 1
  end
  else print_endline "\nno regressions"

(* Atomic snapshots of the Patricia trie: frozen-view semantics,
   generation bookkeeping, and the linearization-point property under
   concurrent storms.  The full history-based check (scan results inside
   mixed-op histories) lives in test_linearize; here we assert the
   structural guarantees directly. *)

module P = Core.Patricia
module V = Core.Patricia_vlk
module IS = Set.Make (Int)
module SS = Set.Make (String)

let view_set v = P.View.fold v ~init:IS.empty ~f:(fun s k -> IS.add k s)

let test_empty_snapshot () =
  let t = P.create ~universe:100 () in
  let v = P.snapshot t in
  Alcotest.(check int) "epoch" 0 (P.View.epoch v);
  Alcotest.(check int) "size" 0 (P.View.size v);
  Alcotest.(check (list int)) "to_list" [] (P.View.to_list v);
  (* the trie is still usable after being snapshotted *)
  Alcotest.(check bool) "insert after snapshot" true (P.insert t 7);
  Alcotest.(check int) "view unmoved" 0 (P.View.size v)

let test_frozen_under_mutation () =
  let t = P.create ~universe:1000 () in
  for i = 0 to 99 do
    assert (P.insert t i)
  done;
  let v = P.snapshot t in
  for i = 0 to 49 do
    assert (P.delete t i)
  done;
  for i = 500 to 599 do
    assert (P.insert t i)
  done;
  assert (P.replace t ~remove:60 ~add:700);
  Alcotest.(check (list int)) "view is the pre-mutation contents"
    (List.init 100 Fun.id) (P.View.to_list v);
  Alcotest.(check int) "live trie moved on" 150 (P.size t);
  (match P.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e);
  let v2 = P.snapshot t in
  Alcotest.(check int) "epochs increment" 1 (P.View.epoch v2);
  Alcotest.(check int) "second view exact" 150 (P.View.size v2)

let test_view_traversals_agree () =
  let t = P.create ~universe:4096 () in
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 600 do
    ignore (P.insert t (Random.State.int st 4096))
  done;
  let v = P.snapshot t in
  let l = P.View.to_list v in
  Alcotest.(check (list int)) "to_seq = to_list" l
    (List.of_seq (P.View.to_seq v));
  Alcotest.(check (list int)) "full-range fold = to_list" l
    (List.rev (P.View.fold_range v ~lo:0 ~hi:4095 ~init:[] ~f:(fun a k -> k :: a)));
  Alcotest.(check int) "size = length" (List.length l) (P.View.size v);
  let sorted = List.sort_uniq compare l in
  Alcotest.(check (list int)) "ascending, duplicate-free" sorted l;
  (* range folds match filtering the full list *)
  List.iter
    (fun (lo, hi) ->
      let expect = List.filter (fun k -> k >= lo && k <= hi) l in
      let got =
        List.rev (P.View.fold_range v ~lo ~hi ~init:[] ~f:(fun a k -> k :: a))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "range [%d,%d]" lo hi)
        expect got)
    [ (0, 100); (1000, 2000); (4000, 4095); (700, 700); (2001, 2000) ]

let test_interleaved_exactness () =
  (* Single mutator: after every operation the snapshot must equal the
     sequential model exactly — there is no concurrency to excuse any
     divergence. *)
  let t = P.create ~universe:512 () in
  let st = Random.State.make [| 7 |] in
  let model = ref IS.empty in
  for _ = 1 to 400 do
    let k = Random.State.int st 512 in
    (match Random.State.int st 3 with
    | 0 -> if P.insert t k then model := IS.add k !model
    | 1 -> if P.delete t k then model := IS.remove k !model
    | _ ->
        let k' = Random.State.int st 512 in
        if P.replace t ~remove:k ~add:k' then
          model := IS.add k' (IS.remove k !model));
    let v = P.snapshot t in
    if not (IS.equal (view_set v) !model) then
      Alcotest.failf "snapshot diverged from sequential model"
  done

let test_abandoned_flag_cannot_commit_across_snapshot () =
  (* A descriptor whose owner "dies" between flagging and the child CAS
     (For_testing.flag_only) sits on nodes *below* the root here, so the
     snapshot neither helps it (the root is unflagged) nor finds it in a
     slot (For_testing bypasses publication).  Once the snapshot has
     moved the generation on, the descriptor's decision CAS must abort:
     the insert can never take effect in a generation it did not search. *)
  let t = P.create ~universe:100 () in
  (* 52/53 share a 5-bit prefix, so inserting 55 flags that deep pair,
     not the root. *)
  assert (P.insert t 52);
  assert (P.insert t 53);
  match P.For_testing.prepare_insert t 55 with
  | None -> Alcotest.fail "prepare_insert returned None"
  | Some d ->
      assert (P.For_testing.flag_only d);
      let v = P.snapshot t in
      Alcotest.(check bool) "view excludes the unapplied key" false
        (IS.mem 55 (view_set v));
      Alcotest.(check bool) "stale descriptor aborts" false
        (P.For_testing.help d);
      Alcotest.(check bool) "key still absent" false (P.member t 55);
      Alcotest.(check bool) "fresh insert succeeds" true (P.insert t 55);
      (match P.check_invariants t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invariants: %s" e)

let test_root_flag_helped_to_commit_by_snapshot () =
  (* The complementary case: the prepared insert flags the root, so the
     snapshot must resolve it to take its own root-level descriptor —
     and resolution before the holder swing is a commit.  The view then
     includes the helped key, and so does the live trie. *)
  let t = P.create ~universe:100 () in
  assert (P.insert t 10);
  assert (P.insert t 20);
  match P.For_testing.prepare_insert t 55 with
  | None -> Alcotest.fail "prepare_insert returned None"
  | Some d ->
      assert (P.For_testing.flag_only d);
      let v = P.snapshot t in
      let in_view = IS.mem 55 (view_set v) in
      let in_trie = P.member t 55 in
      Alcotest.(check bool) "view and trie agree" in_view in_trie;
      ignore (P.For_testing.help d);
      Alcotest.(check bool) "still agree after help" in_trie (P.member t 55);
      (match P.check_invariants t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invariants: %s" e)

let test_storm_stability () =
  (* Snapshots taken during an insert/delete/replace storm: every view
     must be internally stable (re-walking gives the same answer) and
     duplicate-free, and the trie must pass the invariant audit after
     the storm. *)
  let t = P.create ~universe:4096 () in
  let stop = Atomic.make false in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let st = Random.State.make [| d + 1 |] in
            while not (Atomic.get stop) do
              let k = Random.State.int st 4096 in
              match Random.State.int st 3 with
              | 0 -> ignore (P.insert t k)
              | 1 -> ignore (P.delete t k)
              | _ -> ignore (P.replace t ~remove:k ~add:(Random.State.int st 4096))
            done))
  in
  let last_epoch = ref (-1) in
  for _ = 1 to 100 do
    let v = P.snapshot t in
    if P.View.epoch v <= !last_epoch then
      Alcotest.failf "epochs not strictly increasing";
    last_epoch := P.View.epoch v;
    let l = P.View.to_list v in
    if P.View.to_list v <> l then Alcotest.failf "view not frozen";
    if List.sort_uniq compare l <> l then
      Alcotest.failf "view has duplicates or disorder"
  done;
  Atomic.set stop true;
  List.iter Domain.join doms;
  match P.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants after storm: %s" e

let test_storm_linearization_point () =
  (* Key-partitioned storm: domain d inserts keys d, d+4, d+8, ... in
     ascending order, then deletes them in the same order.  At any
     linearization point, each domain's surviving keys form a contiguous
     window [next_delete, next_insert) of its sequence — so every
     snapshot must show exactly such a window per domain.  A torn (non
     linearizable) view would show a gap. *)
  let nd = 4 in
  let per = 2000 in
  let t = P.create ~universe:(nd * per) () in
  let doms =
    List.init nd (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              assert (P.insert t ((i * nd) + d))
            done;
            for i = 0 to per - 1 do
              assert (P.delete t ((i * nd) + d))
            done))
  in
  for _ = 1 to 50 do
    let v = P.snapshot t in
    let by_dom = Array.make nd [] in
    P.View.fold v ~init:() ~f:(fun () k ->
        by_dom.(k mod nd) <- (k / nd) :: by_dom.(k mod nd));
    Array.iteri
      (fun d idxs ->
        match List.rev idxs with
        | [] -> ()
        | first :: _ as l ->
            List.iteri
              (fun j i ->
                if i <> first + j then
                  Alcotest.failf
                    "domain %d window torn: saw index %d expecting %d" d i
                    (first + j))
              l)
      by_dom
  done;
  List.iter Domain.join doms;
  let v = P.snapshot t in
  Alcotest.(check int) "all deleted at the end" 0 (P.View.size v)

let test_storm_scan_checker () =
  (* The acceptance assert, stated through the extended linearizability
     checker: a snapshot taken during an insert/delete/replace storm
     records the frozen view's whole key set ([Keys] bitmask), and the
     checker must find a single linearization point reproducing it
     among the concurrent mutations.  Two mutator domains, one scanner
     domain, several rounds with different seeds. *)
  let universe = 10 in
  for round = 1 to 6 do
    let t = P.create ~universe () in
    let threads = 3 in
    let recorder = Linearize.Recorder.create ~threads in
    let mutator d =
      let rng = Rng.of_int_seed ((round * 7919) + d) in
      for _ = 1 to 14 do
        let k = Rng.int rng universe in
        match Rng.int rng 3 with
        | 0 ->
            ignore
              (Linearize.Recorder.record recorder ~thread:d
                 (Linearize.Insert k)
                 (fun () -> P.insert t k))
        | 1 ->
            ignore
              (Linearize.Recorder.record recorder ~thread:d
                 (Linearize.Delete k)
                 (fun () -> P.delete t k))
        | _ ->
            let add = Rng.int rng universe in
            ignore
              (Linearize.Recorder.record recorder ~thread:d
                 (Linearize.Replace (k, add))
                 (fun () -> P.replace t ~remove:k ~add))
      done
    in
    let scanner () =
      for _ = 1 to 8 do
        ignore
          (Linearize.Recorder.record_scan recorder ~thread:2 ~lo:0
             ~hi:(universe - 1)
             (fun () ->
               let v = P.snapshot t in
               P.View.fold v ~init:0 ~f:(fun acc k -> acc lor (1 lsl k)))
            : int)
      done
    in
    let doms =
      [
        Domain.spawn (fun () -> mutator 0);
        Domain.spawn (fun () -> mutator 1);
        Domain.spawn scanner;
      ]
    in
    List.iter Domain.join doms;
    let history = Linearize.Recorder.history recorder in
    if not (Linearize.check history) then
      Alcotest.failf
        "round %d: snapshot under storm is not a linearization point (%d-op \
         history rejected)"
        round (Array.length history)
  done

let test_concurrent_snapshots () =
  (* Many domains snapshotting the same trie while one mutates: every
     snapshot call must return a stable view, and epochs observed by any
     single domain must be strictly increasing. *)
  let t = P.create ~universe:1024 () in
  for i = 0 to 511 do
    assert (P.insert t i)
  done;
  let stop = Atomic.make false in
  let mutator =
    Domain.spawn (fun () ->
        let st = Random.State.make [| 99 |] in
        while not (Atomic.get stop) do
          let k = Random.State.int st 1024 in
          if Random.State.bool st then ignore (P.insert t k)
          else ignore (P.delete t k)
        done)
  in
  let snappers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let last = ref (-1) in
            for _ = 1 to 100 do
              let v = P.snapshot t in
              if P.View.epoch v <= !last then failwith "epoch regressed";
              last := P.View.epoch v;
              let l = P.View.to_list v in
              if List.sort_uniq compare l <> l then failwith "unstable view"
            done))
  in
  List.iter Domain.join snappers;
  Atomic.set stop true;
  Domain.join mutator;
  match P.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let test_vlk_frozen () =
  let t = V.create () in
  let keys = [ "alpha"; "beta"; "gamma"; "delta"; "epsilon" ] in
  List.iter (fun k -> assert (V.insert t k)) keys;
  let v = V.snapshot t in
  Alcotest.(check int) "epoch" 0 (V.View.epoch v);
  Alcotest.(check int) "size" 5 (V.View.size v);
  assert (V.delete t "beta");
  assert (V.insert t "zeta");
  assert (V.replace t ~remove:"gamma" ~add:"eta");
  Alcotest.(check bool) "view still has beta" true
    (SS.mem "beta" (SS.of_list (V.View.to_list v)));
  Alcotest.(check int) "view unmoved" 5 (V.View.size v);
  let v2 = V.snapshot t in
  Alcotest.(check int) "epoch bumped" 1 (V.View.epoch v2);
  Alcotest.(check bool) "new view reflects mutations" true
    (SS.equal
       (SS.of_list (V.View.to_list v2))
       (SS.of_list [ "alpha"; "delta"; "epsilon"; "zeta"; "eta" ]));
  match V.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let test_vlk_storm () =
  let t = V.create () in
  let stop = Atomic.make false in
  let doms =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            let st = Random.State.make [| d + 11 |] in
            while not (Atomic.get stop) do
              let k = Printf.sprintf "key-%d" (Random.State.int st 500) in
              match Random.State.int st 3 with
              | 0 -> ignore (V.insert t k)
              | 1 -> ignore (V.delete t k)
              | _ ->
                  ignore
                    (V.replace t ~remove:k
                       ~add:(Printf.sprintf "key-%d" (Random.State.int st 500)))
            done))
  in
  let last = ref (-1) in
  for _ = 1 to 60 do
    let v = V.snapshot t in
    if V.View.epoch v <= !last then Alcotest.failf "epoch regressed";
    last := V.View.epoch v;
    let l = V.View.to_list v in
    if V.View.to_list v <> l then Alcotest.failf "view not frozen";
    if List.length (List.sort_uniq compare l) <> List.length l then
      Alcotest.failf "view has duplicates"
  done;
  Atomic.set stop true;
  List.iter Domain.join doms;
  match V.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants after storm: %s" e

let () =
  Alcotest.run "snapshot"
    [
      ( "views",
        [
          Alcotest.test_case "empty snapshot" `Quick test_empty_snapshot;
          Alcotest.test_case "frozen under mutation" `Quick
            test_frozen_under_mutation;
          Alcotest.test_case "traversals agree" `Quick
            test_view_traversals_agree;
          Alcotest.test_case "interleaved exactness" `Quick
            test_interleaved_exactness;
          Alcotest.test_case "abandoned flag aborts across snapshot" `Quick
            test_abandoned_flag_cannot_commit_across_snapshot;
          Alcotest.test_case "root flag helped to commit" `Quick
            test_root_flag_helped_to_commit_by_snapshot;
        ] );
      ( "storms",
        [
          Alcotest.test_case "stability" `Slow test_storm_stability;
          Alcotest.test_case "storm scans pass the checker" `Slow
            test_storm_scan_checker;
          Alcotest.test_case "linearization point" `Slow
            test_storm_linearization_point;
          Alcotest.test_case "concurrent snapshots" `Slow
            test_concurrent_snapshots;
        ] );
      ( "vlk",
        [
          Alcotest.test_case "frozen views" `Quick test_vlk_frozen;
          Alcotest.test_case "storm stability" `Slow test_vlk_storm;
        ] );
    ]

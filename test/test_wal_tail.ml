(* The Tail cursor — the replication read path over WAL segments:
   offline reads over sealed logs, rotation-straddling cursors, torn
   final segments, loud errors when the requested history was
   checkpointed away, the [keep_from] retention low-water mark that an
   attached cursor pins, and live cursors that follow group commit
   without ever delivering past the durable horizon. *)

module Wal = Persist.Wal

let tmpdir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "wal_tail_test_%d_%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let append_file path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let last_segment dir =
  match List.rev (Sys.readdir dir |> Array.to_list |> List.sort compare
                  |> List.filter (fun n -> Filename.check_suffix n ".seg"))
  with
  | seg :: _ -> Filename.concat dir seg
  | [] -> Alcotest.fail "no wal segment found"

let segment_count dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".seg")
  |> List.length

(* Drain an offline cursor to the end of the log. *)
let drain t =
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    match Wal.Tail.next_batch t ~max_records:64 ~timeout_s:0.0 with
    | [] -> continue := false
    | batch -> acc := List.rev_append batch !acc
  done;
  List.rev !acc

let open_tail ?writer ~dir ~from_seq () =
  match Wal.Tail.open_ ~dir ?writer ~from_seq () with
  | Result.Ok t -> t
  | Result.Error m -> Alcotest.fail ("Tail.open_: " ^ m)

let write_log ?segment_bytes ~dir ~start_seq n =
  let w = Wal.Writer.create ~dir ~start_seq ?segment_bytes ~fsync:false () in
  for k = 0 to n - 1 do
    (* Per-append wait keeps batches small so tiny segments rotate. *)
    Wal.Writer.wait_durable w (Wal.Writer.append w (Wal.Insert k))
  done;
  Wal.Writer.stop w

let check_seqs name expected got =
  Alcotest.(check (list int)) name expected (List.map fst got)

(* ------------------------------------------------------------------ *)

let test_offline_sealed_log () =
  let dir = tmpdir () in
  write_log ~dir ~start_seq:1 20;
  let t = open_tail ~dir ~from_seq:1 () in
  let got = drain t in
  check_seqs "all records in order" (List.init 20 (fun i -> i + 1)) got;
  List.iteri
    (fun i (_, r) ->
      if r <> Wal.Insert i then Alcotest.fail "record payload mismatch")
    got;
  (* Cursor position is one past the last delivered record. *)
  Alcotest.(check int) "pos_seq" 21 (Wal.Tail.pos_seq t);
  Alcotest.(check int) "nothing left unread" 0 (Wal.Tail.lag_bytes t);
  Wal.Tail.close t;
  (* Mid-log start: delivery begins at the first seq >= from_seq. *)
  let t2 = open_tail ~dir ~from_seq:13 () in
  check_seqs "suffix from 13" (List.init 8 (fun i -> i + 13)) (drain t2);
  Wal.Tail.close t2

let test_cursor_straddles_rotation () =
  let dir = tmpdir () in
  (* Tiny segments force many rotations (same size as the writer's own
     rotation test). *)
  write_log ~segment_bytes:8192 ~dir ~start_seq:1 2000;
  if segment_count dir < 3 then Alcotest.fail "expected several segments";
  let t = open_tail ~dir ~from_seq:1 () in
  let got = drain t in
  check_seqs "every record across rotations"
    (List.init 2000 (fun i -> i + 1))
    got;
  Wal.Tail.close t;
  (* A cursor opened mid-log lands in an interior segment and still
     follows the remaining rotations. *)
  let t2 = open_tail ~dir ~from_seq:1234 () in
  check_seqs "mid-log start follows rotations"
    (List.init 767 (fun i -> i + 1234))
    (drain t2);
  Wal.Tail.close t2

let test_torn_final_segment () =
  let dir = tmpdir () in
  write_log ~dir ~start_seq:1 20;
  (* A crash mid-write leaves a prefix of a frame at the tail; an
     offline cursor must stop quietly at exactly the bytes scan would
     truncate. *)
  append_file (last_segment dir) "\000\000\000\017\222\173\190\239partial";
  let t = open_tail ~dir ~from_seq:1 () in
  check_seqs "intact prefix only" (List.init 20 (fun i -> i + 1)) (drain t);
  Wal.Tail.close t;
  (* A cursor positioned inside the torn region delivers nothing rather
     than garbage. *)
  let t2 = open_tail ~dir ~from_seq:21 () in
  Alcotest.(check int) "nothing from the torn tail" 0
    (List.length (drain t2));
  Wal.Tail.close t2

let test_from_seq_checkpointed_away () =
  let dir = tmpdir () in
  write_log ~segment_bytes:8192 ~dir ~start_seq:1 2000;
  ignore (Wal.delete_obsolete_segments ~dir ~upto:2000 () : int);
  let oldest_base =
    match Sys.readdir dir |> Array.to_list |> List.sort compare
          |> List.filter (fun n -> Filename.check_suffix n ".seg")
    with
    | seg :: _ ->
        Scanf.sscanf seg "wal-%x.seg" (fun b -> b)
    | [] -> Alcotest.fail "no segment"
  in
  if oldest_base <= 1 then Alcotest.fail "GC removed nothing";
  (* Streaming from a seq whose history is gone must be a loud error —
     a silent empty diff would lose acknowledged operations. *)
  (match Wal.Tail.open_ ~dir ~from_seq:1 () with
  | Result.Ok t ->
      Wal.Tail.close t;
      Alcotest.fail "cursor into checkpointed-away history accepted"
  | Result.Error m ->
      Alcotest.(check bool) "error says resync" true
        (let has sub =
           let n = String.length sub and len = String.length m in
           let rec go i = i + n <= len && (String.sub m i n = sub || go (i + 1)) in
           go 0
         in
         has "resync"));
  (* Exactly the oldest retained base is still streamable. *)
  let t = open_tail ~dir ~from_seq:oldest_base () in
  check_seqs "oldest retained onward"
    (List.init (2000 - oldest_base + 1) (fun i -> i + oldest_base))
    (drain t);
  Wal.Tail.close t

let test_retention_floor_keeps_segments () =
  let dir = tmpdir () in
  write_log ~segment_bytes:8192 ~dir ~start_seq:1 2000;
  let before = segment_count dir in
  if before < 3 then Alcotest.fail "expected several segments";
  (* A checkpoint at the head would normally release everything, but an
     attached cursor at seq 900 pins its segment and all later ones. *)
  let deleted = Wal.delete_obsolete_segments ~dir ~upto:2000 ~keep_from:900 () in
  let t = open_tail ~dir ~from_seq:900 () in
  check_seqs "pinned history still streams"
    (List.init 1101 (fun i -> i + 900))
    (drain t);
  Wal.Tail.close t;
  (* With the floor lifted, the rest of the prefix goes too. *)
  let deleted2 = Wal.delete_obsolete_segments ~dir ~upto:2000 () in
  if deleted2 = 0 && deleted < before - 1 then
    Alcotest.fail "lifting keep_from released nothing";
  Alcotest.(check int) "only the active segment survives" 1 (segment_count dir)

let test_live_cursor_follows_writer () =
  let dir = tmpdir () in
  let w = Wal.Writer.create ~dir ~start_seq:1 ~fsync:false () in
  for k = 1 to 10 do ignore (Wal.Writer.append w (Wal.Insert k) : int) done;
  Wal.Writer.wait_durable w 10;
  let t = open_tail ~writer:w ~dir ~from_seq:1 () in
  let first = Wal.Tail.next_batch t ~max_records:100 ~timeout_s:0.5 in
  check_seqs "initial durable prefix" (List.init 10 (fun i -> i + 1)) first;
  (* Nothing new yet: a live cursor blocks (bounded) and returns []. *)
  Alcotest.(check int) "drained head returns empty" 0
    (List.length (Wal.Tail.next_batch t ~max_records:100 ~timeout_s:0.01));
  (* Records appended after the cursor opened are delivered once
     durable. *)
  for k = 11 to 15 do ignore (Wal.Writer.append w (Wal.Insert k) : int) done;
  Wal.Writer.wait_durable w 15;
  let more = Wal.Tail.next_batch t ~max_records:100 ~timeout_s:0.5 in
  check_seqs "records appended after open" (List.init 5 (fun i -> i + 11)) more;
  Wal.Writer.stop w;
  Wal.Tail.close t

let test_live_cursor_never_passes_durable () =
  let dir = tmpdir () in
  let w = Wal.Writer.create ~dir ~start_seq:1 ~fsync:false () in
  let stop = Atomic.make false in
  let writer_dom =
    Domain.spawn (fun () ->
        let k = ref 0 in
        while not (Atomic.get stop) do
          ignore (Wal.Writer.append w (Wal.Insert !k) : int);
          incr k
        done)
  in
  let t = open_tail ~writer:w ~dir ~from_seq:1 () in
  (* Race the cursor against the writer: every delivered record must be
     durable at the moment the batch returns, in order, gap-free. *)
  let next_expected = ref 1 in
  let deadline = Unix.gettimeofday () +. 1.0 in
  while Unix.gettimeofday () < deadline do
    let batch = Wal.Tail.next_batch t ~max_records:256 ~timeout_s:0.05 in
    let durable_now = Wal.Writer.durable_upto w in
    List.iter
      (fun (seq, _) ->
        if seq <> !next_expected then
          Alcotest.failf "gap: expected %d got %d" !next_expected seq;
        if seq > durable_now then
          Alcotest.failf "seq %d delivered beyond durable %d" seq durable_now;
        incr next_expected)
      batch
  done;
  Atomic.set stop true;
  Domain.join writer_dom;
  if !next_expected < 100 then Alcotest.fail "cursor made no progress";
  Wal.Writer.stop w;
  Wal.Tail.close t

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "wal_tail"
    [
      ( "offline",
        [
          Alcotest.test_case "sealed log, full + mid-log start" `Quick
            test_offline_sealed_log;
          Alcotest.test_case "cursor straddles rotation" `Quick
            test_cursor_straddles_rotation;
          Alcotest.test_case "torn final segment stops quietly" `Quick
            test_torn_final_segment;
          Alcotest.test_case "checkpointed-away history errors loudly" `Quick
            test_from_seq_checkpointed_away;
          Alcotest.test_case "keep_from pins segments" `Quick
            test_retention_floor_keeps_segments;
        ] );
      ( "live",
        [
          Alcotest.test_case "follows group commit" `Quick
            test_live_cursor_follows_writer;
          Alcotest.test_case "never delivers past durable" `Quick
            test_live_cursor_never_passes_durable;
        ] );
    ]

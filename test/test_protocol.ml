(* Wire-codec tests for the patserve protocol: every opcode round-trips
   through the framing layer, and hostile bytes — truncations, oversized
   length prefixes, garbage — come back as clean protocol errors, never
   as an exception (a decode exception would escape into a server worker
   domain and take every connection it serves down with it). *)

module P = Server.Protocol

let encode_frame encode v =
  let b = Buffer.create 64 in
  encode b v;
  Buffer.to_bytes b

(* Feed [bytes] to a fresh reader in [chunk]-sized pieces and collect
   every decoded payload via [decode]. *)
let decode_stream ?(chunk = max_int) decode bytes =
  let r = P.Reader.create () in
  let n = Bytes.length bytes in
  let out = ref [] in
  let bad = ref None in
  let rec drain () =
    match P.Reader.next_payload r with
    | `None -> ()
    | `Bad msg -> bad := Some msg
    | `Payload (buf, off, len) ->
        out := decode buf ~off ~len :: !out;
        drain ()
  in
  let pos = ref 0 in
  while !pos < n && !bad = None do
    let len = min chunk (n - !pos) in
    P.Reader.feed r (Bytes.sub bytes !pos len) len;
    pos := !pos + len;
    drain ()
  done;
  (List.rev !out, !bad)

let roundtrip_request req =
  match decode_stream P.decode_request (encode_frame P.encode_request req) with
  | [ Ok got ], None -> got
  | [ Error m ], None -> Alcotest.failf "decode error: %s" m
  | _, Some m -> Alcotest.failf "framing error: %s" m
  | l, None -> Alcotest.failf "expected 1 frame, got %d" (List.length l)

let roundtrip_response resp =
  match decode_stream P.decode_response (encode_frame P.encode_response resp) with
  | [ Ok got ], None -> got
  | [ Error m ], None -> Alcotest.failf "decode error: %s" m
  | _, Some m -> Alcotest.failf "framing error: %s" m
  | l, None -> Alcotest.failf "expected 1 frame, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Round trips *)

let test_request_roundtrips () =
  List.iter
    (fun op ->
      let req = { P.seq = 7; op } in
      if roundtrip_request req <> req then
        Alcotest.failf "%s did not round-trip" (P.op_name op))
    [
      P.Insert 0;
      P.Insert max_int;
      P.Delete 42;
      P.Member 123456789;
      P.Replace { remove = 1; add = 2 };
      P.Size;
      P.Batch [ P.Insert 1; P.Delete 2; P.Member 3; P.Replace { remove = 4; add = 5 } ];
      P.Batch [];
      P.Subscribe { from_seq = 0 };
      P.Subscribe { from_seq = max_int };
      P.Logack { applied_seq = 0 };
      P.Logack { applied_seq = 123456789 };
      P.Hashcheck { prefix = 0; len = 0 };
      P.Hashcheck { prefix = 0x3FF; len = 10 };
      P.Promote;
      P.Scan { cursor = -1; count = 1 };
      P.Scan { cursor = 123456789; count = P.max_page_keys };
      P.Range { lo = 0; hi = max_int; cursor = -1; count = 512 };
      P.Range { lo = 17; hi = 17; cursor = 16; count = 1 };
    ]

let test_response_roundtrips () =
  List.iter
    (fun result ->
      let resp = { P.seq = 99; result } in
      if roundtrip_response resp <> resp then Alcotest.fail "response round-trip")
    [
      P.Bool true;
      P.Bool false;
      P.Count 0;
      P.Count max_int;
      P.Many [];
      P.Many [ true; false; true ];
      P.Busy { retry_after_ms = 0 };
      P.Busy { retry_after_ms = 50 };
      P.Busy { retry_after_ms = 0xFFFFFFFF };
      P.Error "no such thing";
      P.Error "";
      P.Logrecs { head_seq = 0; recs = [] };
      P.Logrecs
        {
          head_seq = 77;
          recs =
            [
              { P.rseq = 75; rop = P.Insert 1 };
              { P.rseq = 76; rop = P.Delete 2 };
              { P.rseq = 77; rop = P.Replace { remove = 3; add = 4 } };
            ];
        };
      P.Hashes { node = 0; left = 0; right = 0 };
      P.Hashes
        {
          node = 0x3FFFFFFFFFFFFFFF;
          left = 0x123456789ABCDEF;
          right = 0x2AAAAAAAAAAAAAAA;
        };
      P.Page { cut = -1; next_cursor = -1; complete = true; keys = [] };
      P.Page { cut = 0; next_cursor = 41; complete = false; keys = [ 41 ] };
      P.Page
        {
          cut = 987654321;
          next_cursor = 1023;
          complete = false;
          keys = List.init 100 (fun i -> (i * 10) + 33);
        };
    ]

let test_seq_bounds () =
  List.iter
    (fun seq ->
      let req = { P.seq; op = P.Size } in
      Alcotest.(check int) "seq" seq (roundtrip_request req).P.seq)
    [ 0; 1; 0xFFFFFFFF ];
  List.iter
    (fun seq ->
      match encode_frame P.encode_request { P.seq; op = P.Size } with
      | _ -> Alcotest.failf "seq %d accepted" seq
      | exception Invalid_argument _ -> ())
    [ -1; 0x100000000 ]

let test_encode_rejects_bad_batches () =
  List.iter
    (fun op ->
      match encode_frame P.encode_request { P.seq = 1; op } with
      | _ -> Alcotest.fail "bad batch accepted"
      | exception Invalid_argument _ -> ())
    [ P.Batch [ P.Size ]; P.Batch [ P.Batch [] ] ]

let test_encode_rejects_bad_scans () =
  (* Count bounds are enforced on both sides of the wire; the encoder
     is the caller-bug side. *)
  List.iter
    (fun op ->
      match encode_frame P.encode_request { P.seq = 1; op } with
      | _ -> Alcotest.fail "bad scan count accepted"
      | exception Invalid_argument _ -> ())
    [
      P.Scan { cursor = -1; count = 0 };
      P.Scan { cursor = -1; count = P.max_page_keys + 1 };
      P.Range { lo = 0; hi = 10; cursor = -1; count = 0 };
      P.Range { lo = 0; hi = 10; cursor = -1; count = 70_000 };
    ];
  match
    encode_frame P.encode_response
      {
        P.seq = 1;
        result =
          P.Page
            {
              cut = 0;
              next_cursor = 0;
              complete = false;
              keys = List.init (P.max_page_keys + 1) Fun.id;
            };
      }
  with
  | _ -> Alcotest.fail "oversized PAGE accepted"
  | exception Invalid_argument _ -> ()

(* qcheck: arbitrary op trees (bounded) survive the full stack, even
   when the stream arrives one byte at a time. *)
let gen_simple_op =
  QCheck2.Gen.(
    oneof
      [
        map (fun k -> P.Insert k) (int_bound 1_000_000);
        map (fun k -> P.Delete k) (int_bound 1_000_000);
        map (fun k -> P.Member k) (int_bound 1_000_000);
        map2
          (fun remove add -> P.Replace { remove; add })
          (int_bound 1_000_000) (int_bound 1_000_000);
      ])

let gen_op =
  QCheck2.Gen.(
    oneof
      [
        gen_simple_op;
        return P.Size;
        map (fun l -> P.Batch l) (list_size (int_bound 20) gen_simple_op);
        map2
          (fun cursor count -> P.Scan { cursor; count = count + 1 })
          (int_range (-1) 1_000_000)
          (int_bound (P.max_page_keys - 1));
        map
          (fun (lo, hi, cursor, count) ->
            P.Range { lo; hi; cursor; count = count + 1 })
          (quad (int_bound 1_000_000) (int_bound 1_000_000)
             (int_range (-1) 1_000_000)
             (int_bound (P.max_page_keys - 1)));
      ])

(* Arbitrary PAGE responses round-trip, including the empty and the
   full page. *)
let gen_page =
  QCheck2.Gen.(
    map
      (fun (cut, start, complete, keys) ->
        (* ascending, as the server produces them *)
        let keys = List.sort_uniq compare keys in
        let next_cursor =
          match List.rev keys with [] -> start | k :: _ -> k
        in
        P.Page { cut; next_cursor; complete; keys })
      (quad (int_range (-1) 1_000_000) (int_range (-1) 100) bool
         (list_size (int_bound 200) (int_bound 1_000_000))))

let prop_page_roundtrip =
  Tutil.qtest ~count:100 "PAGE responses round-trip bytewise" gen_page
    (fun result ->
      let resp = { P.seq = 3; result } in
      let got, bad =
        decode_stream ~chunk:1 P.decode_response
          (encode_frame P.encode_response resp)
      in
      bad = None && got = [ Ok resp ])

let prop_pipeline_roundtrip =
  Tutil.qtest ~count:100 "pipelined frames round-trip bytewise"
    QCheck2.Gen.(list_size (int_bound 10) gen_op)
    (fun ops ->
      let reqs = List.mapi (fun i op -> { P.seq = i + 1; op }) ops in
      let b = Buffer.create 256 in
      List.iter (P.encode_request b) reqs;
      let got, bad = decode_stream ~chunk:1 P.decode_request (Buffer.to_bytes b) in
      bad = None && got = List.map (fun r -> Ok r) reqs)

(* ------------------------------------------------------------------ *)
(* Hostile input *)

let test_truncation_never_decodes () =
  (* Every strict prefix of a valid frame must yield nothing (waiting
     for more bytes), not a bogus decode and not an exception. *)
  let frame =
    encode_frame P.encode_request
      { P.seq = 5; op = P.Replace { remove = 9; add = 10 } }
  in
  for cut = 0 to Bytes.length frame - 1 do
    match decode_stream P.decode_request (Bytes.sub frame 0 cut) with
    | [], None -> ()
    | _, Some m -> Alcotest.failf "prefix of %d bytes: framing error %s" cut m
    | l, None -> Alcotest.failf "prefix of %d bytes decoded %d frames" cut (List.length l)
  done

let bad_frame bytes =
  match decode_stream P.decode_request bytes with
  | _, Some _ -> ()
  | l, None ->
      Alcotest.failf "hostile frame accepted (%d payloads, %d buffered)"
        (List.length l) (Bytes.length bytes)

let u32_frame_header n rest =
  let b = Buffer.create 16 in
  Buffer.add_int32_be b (Int32.of_int n);
  Buffer.add_string b rest;
  Buffer.to_bytes b

let test_hostile_prefixes () =
  (* Oversized length prefix: rejected before any allocation. *)
  bad_frame (u32_frame_header (P.max_frame_payload + 1) "");
  bad_frame (u32_frame_header 0xFFFFFFFF "");
  (* Undersized: a payload cannot even hold seq + opcode. *)
  bad_frame (u32_frame_header 0 "");
  bad_frame (u32_frame_header 4 "xxxx")

let decode_err payload =
  let bytes = u32_frame_header (String.length payload) payload in
  match decode_stream P.decode_request bytes with
  | [ Error _ ], None -> ()
  | [ Ok _ ], None -> Alcotest.fail "garbage payload decoded"
  | _, Some m -> Alcotest.failf "framing (not decode) error: %s" m
  | _ -> Alcotest.fail "unexpected decode outcome"

let test_garbage_payloads () =
  decode_err "\x00\x00\x00\x01\xC8";           (* unknown opcode 200 *)
  decode_err "\x00\x00\x00\x01\x01\x00\x00";   (* INSERT with truncated key *)
  decode_err "\x00\x00\x00\x01\x04\x00\x00\x00\x00\x00\x00\x00\x01"; (* REPLACE missing add *)
  decode_err "\x00\x00\x00\x01\x05\xFF";       (* SIZE with trailing bytes *)
  decode_err "\x00\x00\x00\x01\x06\x00\x01\x06\x00\x00"; (* nested BATCH *)
  decode_err "\x00\x00\x00\x01\x06\x00\x01\x05";         (* SIZE inside BATCH *)
  decode_err "\x00\x00\x00\x01\x06\x00\x02\x03\x00\x00\x00\x00\x00\x00\x00\x01"; (* BATCH count beyond body *)
  (* i64 that does not fit a 63-bit OCaml int *)
  decode_err "\x00\x00\x00\x01\x01\x80\x00\x00\x00\x00\x00\x00\x00";
  (* SCAN with truncated cursor *)
  decode_err "\x00\x00\x00\x01\x0B\x00\x00";
  (* SCAN with zero count *)
  decode_err
    "\x00\x00\x00\x01\x0B\x00\x00\x00\x00\x00\x00\x00\x05\x00\x00";
  (* RANGE missing its cursor+count *)
  decode_err
    "\x00\x00\x00\x01\x0C\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x09";
  (* SCAN inside BATCH: the batch decoder only admits simple opcodes *)
  decode_err
    "\x00\x00\x00\x01\x06\x00\x01\x0B\x00\x00\x00\x00\x00\x00\x00\x00\x00\x10"

let test_garbage_response_payloads () =
  let err payload =
    let bytes = u32_frame_header (String.length payload) payload in
    match decode_stream P.decode_response bytes with
    | [ Error _ ], None -> ()
    | _ -> Alcotest.fail "garbage response accepted"
  in
  err "\x00\x00\x00\x01\x07";                  (* unknown status 7 *)
  err "\x00\x00\x00\x01\x02\x00";              (* COUNT with truncated value *)
  err "\x00\x00\x00\x01\x03\x00\x02\x01";      (* MANY count beyond body *)
  err "\x00\x00\x00\x01\x03\x00\x01\x02";      (* MANY element not a boolean *)
  err "\x00\x00\x00\x01\x00\xFF";              (* FALSE with trailing bytes *)
  (* PAGE: truncated header (cut only) *)
  err "\x00\x00\x00\x01\x06\x00\x00\x00\x00\x00\x00\x00\x01";
  (* PAGE: complete flag that is not a boolean *)
  err
    "\x00\x00\x00\x01\x06\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x02\x07\x00\x00";
  (* PAGE: key count pointing beyond the body *)
  err
    "\x00\x00\x00\x01\x06\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x02\x01\x00\x03\x00\x00\x00\x00\x00\x00\x00\x09"

(* The stream stays synchronized across an app-level error: a valid
   frame after a garbage-payload frame still decodes. *)
let test_resync_after_decode_error () =
  let b = Buffer.create 64 in
  Buffer.add_bytes b (u32_frame_header 5 "\x00\x00\x00\x01\xC8");
  P.encode_request b { P.seq = 2; op = P.Size };
  match decode_stream P.decode_request (Buffer.to_bytes b) with
  | [ Error _; Ok { P.seq = 2; op = P.Size } ], None -> ()
  | _ -> Alcotest.fail "stream did not resynchronize after a bad payload"

let test_reader_compaction () =
  (* Many frames through a reader fed in odd-sized chunks: exercises
     compaction and growth of the internal buffer. *)
  let b = Buffer.create 4096 in
  let reqs =
    List.init 200 (fun i ->
        { P.seq = i + 1; op = P.Batch (List.init 30 (fun j -> P.Insert (i + j))) })
  in
  List.iter (P.encode_request b) reqs;
  let got, bad = decode_stream ~chunk:7 P.decode_request (Buffer.to_bytes b) in
  Alcotest.(check bool) "no framing error" true (bad = None);
  Alcotest.(check bool) "all frames" true (got = List.map (fun r -> Ok r) reqs)

let () =
  Alcotest.run "protocol"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "requests" `Quick test_request_roundtrips;
          Alcotest.test_case "responses" `Quick test_response_roundtrips;
          Alcotest.test_case "seq bounds" `Quick test_seq_bounds;
          Alcotest.test_case "encode rejects bad batches" `Quick
            test_encode_rejects_bad_batches;
          Alcotest.test_case "encode rejects bad scans" `Quick
            test_encode_rejects_bad_scans;
          prop_pipeline_roundtrip;
          prop_page_roundtrip;
        ] );
      ( "hostile",
        [
          Alcotest.test_case "truncation" `Quick test_truncation_never_decodes;
          Alcotest.test_case "length prefixes" `Quick test_hostile_prefixes;
          Alcotest.test_case "garbage requests" `Quick test_garbage_payloads;
          Alcotest.test_case "garbage responses" `Quick
            test_garbage_response_payloads;
          Alcotest.test_case "resync after bad payload" `Quick
            test_resync_after_decode_error;
          Alcotest.test_case "reader compaction" `Quick test_reader_compaction;
        ] );
    ]

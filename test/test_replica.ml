(* End-to-end tests of the replication subsystem: a primary streaming
   its WAL to a follower that applies through the normal store path,
   sync-ack convergence, the staleness-bounded follower read gate (BUSY
   + /healthz degraded: repl_lag, driven by a chaos stall on the apply
   loop), watermark persistence and resubscription, and HASHCHECK
   anti-entropy locating a seeded divergence in O(log n) round trips
   over a real connection. *)

module IS = Set.Make (Int)
module P = Server.Protocol
module Wal = Persist.Wal

module Pstore = Persist.Store.Make (struct
  include Core.Patricia

  let create ~universe () = Core.Patricia.create ~universe ()
  let snapshot = Core.Patricia.snapshot_capability
end)

let tmpdir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "replica_test_%d_%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let sorted_keys store = List.sort compare (Pstore.to_list store)

let await ?(timeout_s = 15.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let universe = 1 lsl 10

let hash_width =
  let w = ref 0 in
  while 1 lsl !w < universe do incr w done;
  !w

let store_ops store =
  Server.
    {
      insert = (fun k -> Pstore.insert store k);
      delete = (fun k -> Pstore.delete store k);
      member = (fun k -> Pstore.member store k);
      replace = (fun ~remove ~add -> Pstore.replace store ~remove ~add);
      size = (fun () -> Pstore.size store);
      snapshot = (fun () -> Pstore.snapshot store);
      scan_cut = (fun () -> Pstore.scan_cut store);
    }

let follower_ops store =
  Replica.Follower.
    {
      apply_insert = (fun k -> ignore (Pstore.insert store k : bool));
      apply_delete = (fun k -> ignore (Pstore.delete store k : bool));
      wal_sync =
        (fun () ->
          match Pstore.wal_writer store with
          | Some w ->
              let last = Pstore.last_logged_here store in
              if last >= 0 then Wal.Writer.wait_durable w last
          | None -> ());
    }

let pstore_fold store ~lo ~hi ~init ~f =
  Core.Patricia.fold_range (Pstore.underlying store) ~lo ~hi ~init ~f

let repl_hooks_for primary store =
  Server.
    {
      subscribe = (fun ~fd ~seq ~from_seq ->
          Replica.Primary.subscribe primary ~fd ~seq ~from_seq);
      hashcheck = (fun ~prefix ~len ->
          Replica.Hash.hashes (pstore_fold store) ~width:hash_width ~prefix ~len);
      promote = (fun () -> Result.Ok ());
    }

let start_follower ~port ~from_seq ?watermark_dir store =
  match
    Replica.Follower.start ~port ~from_seq ?watermark_dir ~watermark_every:16
      (follower_ops store)
  with
  | Result.Ok f -> f
  | Result.Error msg -> Alcotest.fail ("Follower.start: " ^ msg)

let check_not_failed f =
  match Replica.Follower.failure f with
  | None -> ()
  | Some msg -> Alcotest.fail ("follower failed: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Converge under sync-ack, watermark persistence, resubscription *)

let test_converge_sync_ack () =
  let pdir = tmpdir () and fdir = tmpdir () in
  let pstore = Pstore.open_ ~dir:pdir ~universe ~mode:Pstore.Sync () in
  let writer = Option.get (Pstore.wal_writer pstore) in
  let prim = Replica.Primary.create ~dir:pdir ~writer ~sync_ack:true () in
  Pstore.set_retention_hook pstore (Replica.Primary.retention_floor prim);
  let barrier () =
    Pstore.barrier pstore;
    Replica.Primary.wait_acked prim (Pstore.last_logged_here pstore)
  in
  let srv =
    Server.start ~port:0 ~domains:2 ~barrier
      ~repl:(repl_hooks_for prim pstore)
      (store_ops pstore)
  in
  let port = Server.port srv in
  Fun.protect
    ~finally:(fun () ->
      Replica.Primary.stop prim;
      Server.stop ~drain_s:0.5 srv;
      Pstore.close pstore)
  @@ fun () ->
  let fstore = Pstore.open_ ~dir:fdir ~universe ~mode:Pstore.Sync () in
  let f = start_follower ~port ~from_seq:0 ~watermark_dir:fdir fstore in
  Alcotest.(check int) "follower registered" 1
    (Replica.Primary.subscriber_count prim);
  (* Mutate through the served path: every acknowledgement now waits
     for both the primary's fsync and the follower's applied ack. *)
  let c = Server.Client.connect ~port () in
  let model = ref IS.empty in
  let rng = Rng.of_int_seed 4242 in
  for _ = 1 to 400 do
    let k = Rng.int rng universe in
    match Rng.int rng 3 with
    | 0 ->
        if Server.Client.insert c k then model := IS.add k !model
    | 1 ->
        if Server.Client.delete c k then model := IS.remove k !model
    | _ ->
        let add = Rng.int rng universe in
        if Server.Client.replace c ~remove:k ~add then
          model := IS.add add (IS.remove k !model)
  done;
  Server.Client.close c;
  (* Sync-ack means the last acknowledged operation is already applied
     on the follower: no settling loop, the states must match now. *)
  check_not_failed f;
  Alcotest.(check int) "applied = assigned"
    (Wal.Writer.last_assigned writer)
    (Replica.Follower.applied_seq f);
  Alcotest.(check int) "lag_records 0" 0 (Replica.Follower.lag_records f);
  Alcotest.(check (list int)) "follower state = primary state"
    (sorted_keys pstore) (sorted_keys fstore);
  Alcotest.(check (list int)) "both = client model"
    (IS.elements !model) (sorted_keys fstore);
  (* Detach: the final watermark covers everything applied... *)
  let applied = Replica.Follower.applied_seq f in
  Replica.Follower.stop f;
  Pstore.close fstore;
  (match Replica.Watermark.read ~dir:fdir with
  | Some w -> Alcotest.(check int) "watermark = applied" applied w
  | None -> Alcotest.fail "no watermark after detach");
  (* ...so a restarted follower resubscribes mid-log from watermark+1
     (the overlap is harmless: application is forced), recovers its own
     WAL, and converges on the post-restart mutations too. *)
  let fstore2 = Pstore.open_ ~dir:fdir ~universe ~mode:Pstore.Sync () in
  Alcotest.(check (list int)) "follower recovery restores state"
    (sorted_keys pstore) (sorted_keys fstore2);
  let f2 = start_follower ~port ~from_seq:(applied + 1) ~watermark_dir:fdir fstore2 in
  let c2 = Server.Client.connect ~port () in
  for k = 0 to 9 do ignore (Server.Client.insert c2 k : bool) done;
  Server.Client.close c2;
  check_not_failed f2;
  Alcotest.(check (list int)) "converged after resubscribe"
    (sorted_keys pstore) (sorted_keys fstore2);
  Replica.Follower.stop f2;
  Pstore.close fstore2

(* ------------------------------------------------------------------ *)
(* Staleness bound: a chaos stall freezes the apply loop, reads on the
   follower decline BUSY, /healthz reports degraded: repl_lag, and
   everything recovers once the stall releases. *)

let test_staleness_busy_and_healthz () =
  let pdir = tmpdir () and fdir = tmpdir () in
  let staleness = 4 in
  let pstore = Pstore.open_ ~dir:pdir ~universe ~mode:Pstore.Sync () in
  let writer = Option.get (Pstore.wal_writer pstore) in
  let prim = Replica.Primary.create ~dir:pdir ~writer () in
  let psrv =
    Server.start ~port:0 ~domains:1
      ~repl:(repl_hooks_for prim pstore)
      (store_ops pstore)
  in
  (* Durable history before the follower attaches, so the whole backlog
     arrives as one push and the stalled apply loop leaves a lag well
     past the bound. *)
  for k = 0 to 63 do ignore (Pstore.insert pstore k : bool) done;
  Pstore.barrier pstore;
  let fstore = Pstore.open_ ~dir:fdir ~universe ~mode:Pstore.Sync () in
  let fref = ref None in
  let lag () =
    match !fref with Some f -> Replica.Follower.lag_records f | None -> 0
  in
  let wd = Obs.Watchdog.create () in
  Obs.Watchdog.gauge wd ~name:"repl_lag" ~degraded_above:staleness lag;
  let fsrv =
    Server.start ~port:0 ~domains:1 ~watchdog:wd
      ~gate:(Replica.Gate.follower ~staleness ~lag ~retry_after_ms:7)
      (store_ops fstore)
  in
  let stall = Chaos.Stall.install Chaos.Repl_apply in
  let cleanup () =
    Chaos.Stall.release stall;
    (match !fref with Some f -> Replica.Follower.stop f | None -> ());
    Replica.Primary.stop prim;
    Server.stop ~drain_s:0.5 fsrv;
    Server.stop ~drain_s:0.5 psrv;
    Pstore.close fstore;
    Pstore.close pstore
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Chaos.with_policy ~name:"repl-apply-stall" (Chaos.Stall.hook stall)
  @@ fun () ->
  let f = start_follower ~port:(Server.port psrv) ~from_seq:0 fstore in
  fref := Some f;
  if not (Chaos.Stall.wait_stalled ~timeout_s:10.0 stall) then
    Alcotest.fail "apply loop never reached the Repl_apply site";
  if lag () <= staleness then
    Alcotest.failf "lag %d not past the staleness bound" (lag ());
  let c = Server.Client.connect ~port:(Server.port fsrv) () in
  (* Reads decline BUSY with the configured hint while the bound is
     exceeded; mutations are refused outright on any follower. *)
  (match Server.Client.member c 1 with
  | _ -> Alcotest.fail "stale read served"
  | exception Server.Client.Busy { retry_after_ms } ->
      Alcotest.(check int) "retry-after hint" 7 retry_after_ms);
  (match Server.Client.insert c 999 with
  | _ -> Alcotest.fail "mutation accepted by a follower"
  | exception Server.Client.Protocol_error msg ->
      Alcotest.(check bool) "refusal names the role" true
        (contains msg "read-only follower"));
  (match Obs.Watchdog.healthz wd () with
  | 200, body when contains body "degraded" && contains body "repl_lag" -> ()
  | code, body ->
      Alcotest.failf "expected degraded: repl_lag, got %d %S" code body);
  (* Release: the backlog drains, reads resume, health recovers. *)
  Chaos.Stall.release stall;
  await "follower catches up" (fun () -> lag () = 0);
  check_not_failed f;
  Alcotest.(check bool) "read served after catch-up" true
    (Server.Client.member c 1);
  (match Obs.Watchdog.healthz wd () with
  | 200, "ok\n" -> ()
  | code, body -> Alcotest.failf "expected ok, got %d %S" code body);
  Server.Client.close c

(* ------------------------------------------------------------------ *)
(* Anti-entropy: HASHCHECK over a live connection locates a seeded
   single-key divergence, in at most width+1 = O(log n) round trips. *)

let test_hashcheck_locates_divergence () =
  let local = Core.Patricia.create ~universe () in
  let remote_trie = Core.Patricia.create ~universe () in
  let rng = Rng.of_int_seed 1313 in
  for _ = 1 to 300 do
    let k = Rng.int rng universe in
    ignore (Core.Patricia.insert local k : bool);
    ignore (Core.Patricia.insert remote_trie k : bool)
  done;
  (* Seed the divergence: one key present only on the remote. *)
  let d = ref 0 in
  while Core.Patricia.member remote_trie !d do incr d done;
  let d = !d in
  ignore (Core.Patricia.insert remote_trie d : bool);
  let trie_ops t =
    Server.
      {
        insert = Core.Patricia.insert t;
        delete = Core.Patricia.delete t;
        member = Core.Patricia.member t;
        replace = (fun ~remove ~add -> Core.Patricia.replace t ~remove ~add);
        size = (fun () -> Core.Patricia.size t);
        snapshot = (fun () -> Core.Patricia.snapshot_capability t);
        scan_cut = (fun () -> -1);
      }
  in
  let remote_fold ~lo ~hi ~init ~f =
    Core.Patricia.fold_range remote_trie ~lo ~hi ~init ~f
  in
  let srv =
    Server.start ~port:0 ~domains:1
      ~repl:
        Server.
          {
            subscribe = (fun ~fd ~seq ~from_seq ->
                Replica.reject_subscribe ~reason:"not a primary" ~fd ~seq
                  ~from_seq);
            hashcheck = (fun ~prefix ~len ->
                Replica.Hash.hashes remote_fold ~width:hash_width ~prefix ~len);
            promote = (fun () -> Result.Ok ());
          }
      (trie_ops remote_trie)
  in
  Fun.protect ~finally:(fun () -> Server.stop ~drain_s:0.5 srv) @@ fun () ->
  let c = Server.Client.connect ~port:(Server.port srv) () in
  Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
  let local_fold ~lo ~hi ~init ~f =
    Core.Patricia.fold_range local ~lo ~hi ~init ~f
  in
  let remote ~prefix ~len = Server.Client.hashcheck c ~prefix ~len in
  (match Replica.Hash.locate local_fold ~width:hash_width ~remote with
  | Some (lo, hi), rts ->
      Alcotest.(check int) "narrowed to the divergent key (lo)" d lo;
      Alcotest.(check int) "narrowed to the divergent key (hi)" d hi;
      (* The acceptance bound: one round trip per level of the keyspace
         plus the root — O(log n). *)
      if rts > hash_width + 1 then
        Alcotest.failf "%d round trips for a %d-bit keyspace" rts hash_width
  | None, _ -> Alcotest.fail "seeded divergence not found");
  (* Repair it and the replicas hash equal at the root: one round trip. *)
  ignore (Core.Patricia.insert local d : bool);
  (match Replica.Hash.locate local_fold ~width:hash_width ~remote with
  | None, rts -> Alcotest.(check int) "root agreement is one RT" 1 rts
  | Some (lo, hi), _ -> Alcotest.failf "phantom divergence [%d, %d]" lo hi);
  (* Malformed prefixes are application-level errors, not stream
     killers: the connection stays usable. *)
  (match Server.Client.hashcheck c ~prefix:0 ~len:(hash_width + 1) with
  | _ -> Alcotest.fail "out-of-range prefix length accepted"
  | exception Server.Client.Protocol_error _ -> ());
  Alcotest.(check bool) "connection survives the error" true
    (Server.Client.member c d)

(* ------------------------------------------------------------------ *)
(* Snapshot-bootstrap: a primary that checkpointed its history away
   rejects SUBSCRIBE from seq 0 with "resync required"; a fresh
   follower bootstraps from frozen SCAN pages instead and then streams
   the live suffix from the pages' WAL cut. *)

let test_snapshot_bootstrap () =
  let pdir = tmpdir () and fdir = tmpdir () in
  (* Tiny segments so the checkpoint actually deletes sealed history. *)
  let pstore =
    Pstore.open_ ~dir:pdir ~universe ~mode:Pstore.Sync ~segment_bytes:16384 ()
  in
  let writer = Option.get (Pstore.wal_writer pstore) in
  let prim = Replica.Primary.create ~dir:pdir ~writer ~sync_ack:true () in
  Pstore.set_retention_hook pstore (Replica.Primary.retention_floor prim);
  let barrier () =
    Pstore.barrier pstore;
    Replica.Primary.wait_acked prim (Pstore.last_logged_here pstore)
  in
  let srv =
    Server.start ~port:0 ~domains:2 ~barrier
      ~repl:(repl_hooks_for prim pstore)
      (store_ops pstore)
  in
  let port = Server.port srv in
  Fun.protect
    ~finally:(fun () ->
      Replica.Primary.stop prim;
      Server.stop ~drain_s:0.5 srv;
      Pstore.close pstore)
  @@ fun () ->
  let rng = Rng.of_int_seed 2718 in
  for _ = 1 to 4000 do
    let k = Rng.int rng universe in
    match Rng.int rng 3 with
    | 0 -> ignore (Pstore.insert pstore k : bool)
    | 1 -> ignore (Pstore.delete pstore k : bool)
    | _ ->
        ignore (Pstore.replace pstore ~remove:k ~add:(Rng.int rng universe) : bool)
  done;
  Pstore.barrier pstore;
  let _, deleted = Pstore.checkpoint pstore in
  if deleted = 0 then Alcotest.fail "checkpoint deleted no segments";
  (* The checkpointed-away prefix is gone: subscribing from 0 must fail
     loudly with the resync marker the patserve exit path matches on. *)
  let fstore = Pstore.open_ ~dir:fdir ~universe ~mode:Pstore.Sync () in
  (match
     Replica.Follower.start ~port ~from_seq:0 ~watermark_dir:fdir
       (follower_ops fstore)
   with
  | Result.Ok f ->
      Replica.Follower.stop f;
      Alcotest.fail "subscribe from deleted history was accepted"
  | Result.Error msg ->
      Alcotest.(check bool) "error says resync" true (contains msg "resync"));
  (* Bootstrap instead: frozen SCAN pages into the fresh store, then
     subscribe from the returned cut and converge on live traffic. *)
  let bs_from, loaded =
    match Replica.Follower.bootstrap ~port (follower_ops fstore) with
    | Result.Ok r -> r
    | Result.Error msg -> Alcotest.fail ("bootstrap: " ^ msg)
  in
  Alcotest.(check int) "bootstrap streamed the primary's keys"
    (Pstore.size pstore) loaded;
  Alcotest.(check (list int)) "bootstrapped state = primary state"
    (sorted_keys pstore) (sorted_keys fstore);
  if bs_from <= 0 then Alcotest.failf "bootstrap cut %d not past 0" bs_from;
  let f = start_follower ~port ~from_seq:bs_from ~watermark_dir:fdir fstore in
  let c = Server.Client.connect ~port () in
  for _ = 1 to 100 do
    let k = Rng.int rng universe in
    if Rng.int rng 2 = 0 then ignore (Server.Client.insert c k : bool)
    else ignore (Server.Client.delete c k : bool)
  done;
  Server.Client.close c;
  check_not_failed f;
  Alcotest.(check (list int)) "converged after bootstrap + subscribe"
    (sorted_keys pstore) (sorted_keys fstore);
  Replica.Follower.stop f;
  Pstore.close fstore

(* ------------------------------------------------------------------ *)
(* Watermark file: atomic, absent reads as None, survives rewrites. *)

let test_watermark_roundtrip () =
  let dir = tmpdir () in
  (match Replica.Watermark.read ~dir with
  | None -> ()
  | Some w -> Alcotest.failf "fresh dir has watermark %d" w);
  Replica.Watermark.write ~dir 42;
  Alcotest.(check (option int)) "roundtrip" (Some 42)
    (Replica.Watermark.read ~dir);
  Replica.Watermark.write ~dir 7;
  Alcotest.(check (option int)) "rewrite" (Some 7)
    (Replica.Watermark.read ~dir)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "replica"
    [
      ( "streaming",
        [
          Alcotest.test_case "sync-ack converge + watermark + resubscribe"
            `Quick test_converge_sync_ack;
          Alcotest.test_case "staleness bound: BUSY + degraded healthz" `Quick
            test_staleness_busy_and_healthz;
          Alcotest.test_case "snapshot-bootstrap after resync required" `Quick
            test_snapshot_bootstrap;
        ] );
      ( "anti-entropy",
        [
          Alcotest.test_case "hashcheck locates divergence in O(log n)" `Quick
            test_hashcheck_locates_divergence;
        ] );
      ( "watermark",
        [ Alcotest.test_case "roundtrip" `Quick test_watermark_roundtrip ] );
    ]

(* Tests for the Obs observability library: bucket math and percentile
   bracketing properties for the histogram, cross-domain correctness of
   the striped counters, ring semantics of the tracer, JSON round-trips,
   and the Instrument functor over a real structure. *)

module H = Obs.Histogram
module C = Obs.Counter
module T = Obs.Trace
module J = Obs.Json

(* ------------------------------------------------------------------ *)
(* Histogram bucket math *)

(* Every value lands in a bucket that brackets it, and the bucket is
   narrow: 32 sub-buckets per power of two bound the width at v/32. *)
let prop_bucket_brackets =
  QCheck.Test.make ~count:2000 ~name:"bucket brackets value, width <= v/32"
    QCheck.(int_range 0 (1 lsl 50))
    (fun v ->
      let lo, hi = H.bucket_bounds (H.bucket_of_value v) in
      lo <= v && v <= hi && (hi - lo + 1) * 32 <= max 32 v)

(* Distinct buckets cover disjoint ranges in order, up to the last
   index any representable value can map to (higher indices exist only
   as slack in the array and would overflow bucket_bounds). *)
let test_bucket_bounds_contiguous () =
  for idx = 0 to H.bucket_of_value max_int do
    let lo, hi = H.bucket_bounds idx in
    Alcotest.(check bool) "lo <= hi" true (lo <= hi);
    if idx > 0 then begin
      let _, prev_hi = H.bucket_bounds (idx - 1) in
      Alcotest.(check int) "contiguous" (prev_hi + 1) lo
    end
  done

(* ------------------------------------------------------------------ *)
(* Histogram percentiles bracket the recorded samples *)

let exact_percentile sorted n p =
  let rank =
    let r = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    if r < 1 then 1 else if r > n then n else r
  in
  List.nth sorted (rank - 1)

let prop_percentiles_bracket =
  QCheck.Test.make ~count:300
    ~name:"percentiles within one bucket of the exact order statistic"
    QCheck.(list_of_size Gen.(1 -- 200) (int_range 0 (1 lsl 40)))
    (fun samples ->
      QCheck.assume (samples <> []);
      let h = H.create () in
      List.iter (H.record h) samples;
      let s = H.snapshot h in
      let sorted = List.sort compare samples in
      let n = List.length samples in
      let ok p reported =
        let exact = exact_percentile sorted n p in
        (* The reported value is the bucket's upper bound clamped by the
           exact max, so it is >= the true order statistic and at most
           one bucket width (~v/32) above it. *)
        reported >= exact && reported <= exact + (exact / 32) + 1
      in
      s.H.count = n
      && s.H.min = List.hd sorted
      && s.H.max = List.nth sorted (n - 1)
      && s.H.sum = List.fold_left ( + ) 0 samples
      && ok 50.0 s.H.p50 && ok 90.0 s.H.p90 && ok 99.0 s.H.p99
      && ok 99.9 s.H.p999)

let test_empty_histogram () =
  let s = H.snapshot (H.create ()) in
  Alcotest.(check int) "count" 0 s.H.count;
  Alcotest.(check int) "p99" 0 s.H.p99;
  Alcotest.(check int) "min" 0 s.H.min

(* ------------------------------------------------------------------ *)
(* Sharding: recording split across domains equals single-domain
   recording, and merge_into concatenates histograms. *)

let chunks k xs =
  let n = List.length xs in
  let size = max 1 ((n + k - 1) / k) in
  let rec go acc cur count = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
        if count = size then go (List.rev cur :: acc) [ x ] 1 tl
        else go acc (x :: cur) (count + 1) tl
  in
  go [] [] 0 xs

let test_shard_merge_equals_single () =
  let rng = Rng.of_int_seed 7 in
  let samples = List.init 5_000 (fun _ -> Rng.int rng 1_000_000) in
  let single = H.create () in
  List.iter (H.record single) samples;
  let sharded = H.create () in
  (* Each chunk is recorded by a different domain, hence (modulo domain-id
     wrap) a different stripe; domains run one at a time so even a wrap
     collision stays single-writer. *)
  List.iter
    (fun chunk ->
      Domain.join
        (Domain.spawn (fun () -> List.iter (H.record sharded) chunk)))
    (chunks 4 samples);
  Alcotest.(check bool)
    "snapshots equal" true
    (H.snapshot single = H.snapshot sharded);
  (* merge_into: pouring the sharded histogram into a third one changes
     nothing about the summary. *)
  let merged = H.create () in
  H.merge_into ~into:merged sharded;
  Alcotest.(check bool)
    "merge_into preserves summary" true
    (H.snapshot merged = H.snapshot single);
  (* Merging a second copy doubles the counts. *)
  H.merge_into ~into:merged single;
  let s = H.snapshot merged in
  Alcotest.(check int) "doubled count" (2 * List.length samples) s.H.count

(* ------------------------------------------------------------------ *)
(* Counter: exact under true parallelism *)

let test_counter_concurrent_sum () =
  let domains = max 2 (Domain.recommended_domain_count ()) in
  let per_domain = 50_000 in
  let c = C.create () in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              C.incr c
            done))
  in
  List.iter Domain.join workers;
  (* Stripes use fetch-and-add, so the total is exact even if domain ids
     collide on a stripe. *)
  Alcotest.(check int) "exact total" (domains * per_domain) (C.sum c)

let test_counter_add_reset () =
  let c = C.create () in
  C.add c 41;
  C.incr c;
  Alcotest.(check int) "sum" 42 (C.sum c);
  C.reset c;
  Alcotest.(check int) "reset" 0 (C.sum c)

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_trace_ring_wraps () =
  let t = T.create ~capacity:1000 () in
  Alcotest.(check int) "capacity rounded to pow2" 1024 (T.capacity t);
  let total = 1024 + 200 in
  for i = 0 to total - 1 do
    T.emit t T.Insert ~key:i ~ok:true ~retries:0
  done;
  let events = T.dump t in
  Alcotest.(check int) "retains capacity events" 1024 (List.length events);
  (* Oldest retained event is the one the 200 overflow writes stopped
     short of; order is oldest-first. *)
  Alcotest.(check int) "oldest key" 200 (List.hd events).T.key;
  Alcotest.(check int) "newest key" (total - 1)
    (List.nth events 1023).T.key;
  let rec nondecreasing = function
    | a :: (b :: _ as tl) -> a.T.t_ns <= b.T.t_ns && nondecreasing tl
    | _ -> true
  in
  Alcotest.(check bool) "timestamps sorted" true (nondecreasing events);
  T.clear t;
  Alcotest.(check int) "clear empties" 0 (List.length (T.dump t))

let test_trace_json () =
  let t = T.create ~capacity:8 () in
  T.emit t T.Delete ~key:5 ~ok:false ~retries:3;
  let doc = T.to_json t in
  Alcotest.(check bool)
    "dropped counted" true
    (J.member doc "dropped" = Some (J.Int 0));
  match J.member doc "events" with
  | Some (J.Arr [ e ]) ->
      Alcotest.(check bool) "op" true (J.member e "op" = Some (J.Str "delete"));
      Alcotest.(check bool) "key" true (J.member e "key" = Some (J.Int 5));
      Alcotest.(check bool)
        "retries" true
        (J.member e "retries" = Some (J.Int 3));
      (* Instant events carry no span fields. *)
      Alcotest.(check bool) "no dur" true (J.member e "dur_ns" = None)
  | _ -> Alcotest.fail "expected one-event array under \"events\""

(* Ring overflow is counted per overwrite, never silent. *)
let test_trace_dropped () =
  let t = T.create ~capacity:8 () in
  Alcotest.(check int) "starts at zero" 0 (T.dropped t);
  for i = 0 to 7 do
    T.emit t T.Insert ~key:i ~ok:true ~retries:0
  done;
  Alcotest.(check int) "full ring, nothing dropped" 0 (T.dropped t);
  for i = 8 to 19 do
    T.emit t T.Insert ~key:i ~ok:true ~retries:0
  done;
  Alcotest.(check int) "12 overwrites counted" 12 (T.dropped t);
  Alcotest.(check bool)
    "surfaced in json" true
    (J.member (T.to_json t) "dropped" = Some (J.Int 12));
  T.clear t;
  Alcotest.(check int) "clear resets" 0 (T.dropped t)

(* Attempt spans: closed spans with attempt number, site and duration. *)
let test_trace_spans () =
  let t = T.create ~capacity:8 () in
  let t0 = Obs.Clock.now_ns () in
  T.emit_span t T.Replace ~key:9 ~ok:false ~retries:1 ~attempt:2
    ~site:"flag_cas_lost" ~t0_ns:t0;
  match T.dump t with
  | [ e ] ->
      Alcotest.(check bool) "is_span" true (T.is_span e);
      Alcotest.(check int) "attempt" 2 e.T.attempt;
      Alcotest.(check string) "site" "flag_cas_lost" e.T.site;
      Alcotest.(check bool) "positive duration" true (e.T.dur_ns >= 1);
      Alcotest.(check int) "span starts at t0" t0 e.T.t_ns
  | _ -> Alcotest.fail "expected exactly one span"

(* The global recorder wires the instrumented tries to a ring: every
   completed update attempt produces at least one span. *)
let test_trace_recorder () =
  Alcotest.(check bool) "no recorder initially" true (T.recorder () = None);
  let t = T.create ~capacity:4096 () in
  T.set_recorder (Some t);
  Fun.protect ~finally:(fun () -> T.set_recorder None) @@ fun () ->
  Alcotest.(check bool) "active" true (Atomic.get T.active);
  let trie = Core.Patricia.create ~universe:1024 () in
  for k = 0 to 99 do
    ignore (Core.Patricia.insert trie k)
  done;
  for k = 0 to 49 do
    ignore (Core.Patricia.delete trie k)
  done;
  let events = T.dump t in
  let spans = List.filter T.is_span events in
  Alcotest.(check bool)
    "one span per completed attempt" true
    (List.length spans >= 150);
  let applied =
    List.filter (fun e -> e.T.site = "applied" && e.T.ok) spans
  in
  Alcotest.(check int) "all uncontended attempts applied" 150
    (List.length applied);
  List.iter
    (fun e -> Alcotest.(check bool) "attempt >= 1" true (e.T.attempt >= 1))
    spans;
  T.set_recorder None;
  Alcotest.(check bool) "inactive after unset" false (Atomic.get T.active);
  let before = List.length (T.dump t) in
  ignore (Core.Patricia.insert trie 1000);
  Alcotest.(check int)
    "no recording once unset" before
    (List.length (T.dump t))

(* ------------------------------------------------------------------ *)
(* JSON round-trip *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("schema_version", J.Int 1);
        ("name", J.Str "quote\" back\\slash\nnewline\ttab");
        ("pi", J.Float 3.25);
        ("neg", J.Int (-42));
        ("flags", J.Arr [ J.Bool true; J.Bool false; J.Null ]);
        ("empty_arr", J.Arr []);
        ("empty_obj", J.Obj []);
        ("nested", J.Obj [ ("xs", J.Arr [ J.Int 1; J.Int 2; J.Int 3 ]) ]);
      ]
  in
  Alcotest.(check bool)
    "round-trips" true
    (J.of_string (J.to_string doc) = doc)

let test_json_specials () =
  Alcotest.(check string) "nan is null" "null" (J.to_string (J.Float nan));
  Alcotest.(check string)
    "inf is null" "null"
    (J.to_string (J.Float infinity));
  (* Floats keep a decimal point so they read back as floats. *)
  Alcotest.(check bool)
    "float stays float" true
    (J.of_string (J.to_string (J.Float 2.0)) = J.Float 2.0)

let test_json_parse_errors () =
  let fails s =
    match J.of_string s with
    | exception J.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unterminated obj" true (fails "{");
  Alcotest.(check bool) "trailing garbage" true (fails "1 2");
  Alcotest.(check bool) "bad literal" true (fails "trve");
  Alcotest.(check bool) "unterminated string" true (fails "\"abc")

(* Parser edge cases: escape sequences, deeply nested arrays, and
   exponent-form numbers — shapes other tools may emit even though our
   own emitter does not. *)
let test_json_escapes () =
  Alcotest.(check bool)
    "control escapes" true
    (J.of_string "\"a\\nb\\tc\\rd\\be\\ff\"" = J.Str "a\nb\tc\rd\be\012f");
  Alcotest.(check bool)
    "solidus and backslash" true
    (J.of_string "\"a\\/b\\\\c\\\"d\"" = J.Str "a/b\\c\"d");
  Alcotest.(check bool)
    "unicode escape below 0x80" true
    (J.of_string "\"\\u0041\\u005a\"" = J.Str "AZ");
  Alcotest.(check bool)
    "two-byte UTF-8 from \\u escape" true
    (J.of_string "\"\\u00e9\"" = J.Str "\xc3\xa9");
  Alcotest.(check bool)
    "three-byte UTF-8 from \\u escape" true
    (J.of_string "\"\\u20ac\"" = J.Str "\xe2\x82\xac");
  Alcotest.(check bool)
    "surrogate pair combines to four-byte UTF-8" true
    (J.of_string "\"\\ud83d\\ude00\"" = J.Str "\xf0\x9f\x98\x80");
  let fails label input =
    match J.of_string input with
    | exception J.Parse_error _ -> ()
    | _ -> Alcotest.fail (label ^ " must fail")
  in
  fails "truncated \\u escape" "\"\\u00";
  fails "truncated \\u escape before quote" "\"\\u00e\"";
  fails "non-hex in \\u escape" "\"\\uzzzz\"";
  fails "sign accepted by int_of_string" "\"\\u-123\"";
  fails "underscore accepted by int_of_string" "\"\\u12_3\"";
  fails "lone high surrogate" "\"\\ud83d\"";
  fails "high surrogate + non-escape" "\"\\ud83dxx\"";
  fails "high surrogate + non-surrogate escape" "\"\\ud83d\\u0041\"";
  fails "lone low surrogate" "\"\\ude00\"";
  fails "unknown escape" "\"\\x41\"";
  (* Our emitter escapes control characters so they round-trip. *)
  let s = "line1\nline2\ttab \"quoted\" back\\slash" in
  Alcotest.(check bool)
    "escape round-trip" true
    (J.of_string (J.to_string (J.Str s)) = J.Str s)

let test_json_nested_arrays () =
  let deep = J.Arr [ J.Arr [ J.Arr [ J.Arr [ J.Int 1; J.Arr [] ] ] ] ] in
  Alcotest.(check bool)
    "nested array round-trip" true
    (J.of_string (J.to_string deep) = deep);
  Alcotest.(check bool)
    "mixed nesting parses" true
    (J.of_string "[[1,[2,[3]]],[],[[[]]]]"
    = J.Arr
        [
          J.Arr [ J.Int 1; J.Arr [ J.Int 2; J.Arr [ J.Int 3 ] ] ];
          J.Arr [];
          J.Arr [ J.Arr [ J.Arr [] ] ];
        ])

let test_json_exponent_numbers () =
  Alcotest.(check bool) "1e3" true (J.of_string "1e3" = J.Float 1000.0);
  Alcotest.(check bool) "1E3" true (J.of_string "1E3" = J.Float 1000.0);
  Alcotest.(check bool)
    "negative exponent" true
    (J.of_string "25e-2" = J.Float 0.25);
  Alcotest.(check bool)
    "signed mantissa" true
    (J.of_string "-1.5e2" = J.Float (-150.0));
  Alcotest.(check bool)
    "plus exponent" true
    (J.of_string "2.5e+1" = J.Float 25.0);
  Alcotest.(check bool)
    "int stays int" true
    (J.of_string "1000" = J.Int 1000)

(* Round-trip a metrics-shaped document through an actual file, the way
   the benchmark drivers write them. *)
let test_json_file_roundtrip () =
  let doc =
    J.Obj
      [
        ("schema_version", J.Int 1);
        ("benchmark", J.Str "test");
        ( "datapoints",
          J.Arr
            [
              J.Obj
                [
                  ("figure", J.Str "Figure 8 (top)");
                  ("structure", J.Str "PAT");
                  ("threads", J.Int 2);
                  ("mean_ops_s", J.Float 123456.75);
                  ("stddev_ops_s", J.Float 0.5);
                ];
            ] );
      ]
  in
  let path = Filename.temp_file "obs_test" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  J.to_file path doc;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Alcotest.(check bool) "file round-trips" true (J.of_string contents = doc)

(* ------------------------------------------------------------------ *)
(* Perfetto export *)

module P = Obs.Perfetto

(* Fill a trace from two concurrent domains plus the main one, so the
   export must produce several tracks. *)
let make_busy_trace () =
  let t = T.create ~capacity:1024 () in
  T.set_recorder (Some t);
  Fun.protect ~finally:(fun () -> T.set_recorder None) @@ fun () ->
  let work seed () =
    let trie = Core.Patricia.create ~universe:256 () in
    for k = 0 to 99 do
      ignore (Core.Patricia.insert trie ((k + seed) mod 250))
    done
  in
  let d1 = Domain.spawn (work 0) and d2 = Domain.spawn (work 50) in
  work 100 ();
  Domain.join d1;
  Domain.join d2;
  t

let test_perfetto_schema () =
  let t = make_busy_trace () in
  let doc = P.to_json t in
  (* The export validates against our own schema checker... *)
  (match P.validate doc with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("validate rejected own output: " ^ m));
  (* ...and the serialized form is real JSON (timestamps are printed at
     %.12g, so value equality is not expected — parseability is). *)
  (match J.of_string (J.to_string doc) with
  | J.Obj _ -> ()
  | _ -> Alcotest.fail "serialized trace is not a JSON object");
  let events =
    match J.member doc "traceEvents" with
    | Some (J.Arr es) -> es
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let ph e =
    match J.member e "ph" with Some (J.Str s) -> s | _ -> "?"
  in
  let spans = List.filter (fun e -> ph e = "X") events in
  let metas = List.filter (fun e -> ph e = "M") events in
  Alcotest.(check bool)
    "one span per completed attempt" true
    (List.length spans >= 300);
  (* One thread_name metadata record per domain that emitted events;
     three domains emitted, and every span's tid has a track. *)
  let tids =
    List.sort_uniq compare
      (List.filter_map (fun e -> J.member e "tid") spans)
  in
  let meta_tids =
    List.sort_uniq compare
      (List.filter_map (fun e -> J.member e "tid") metas)
  in
  Alcotest.(check bool) "three or more tracks" true (List.length tids >= 3);
  Alcotest.(check bool) "metadata names every track" true (tids = meta_tids);
  List.iter
    (fun e ->
      (match J.member e "dur" with
      | Some (J.Float d) -> Alcotest.(check bool) "dur > 0" true (d > 0.0)
      | Some (J.Int d) -> Alcotest.(check bool) "dur > 0" true (d > 0)
      | _ -> Alcotest.fail "span without dur");
      match J.member e "args" with
      | Some (J.Obj _) -> ()
      | _ -> Alcotest.fail "span without args")
    spans

let test_perfetto_validate_rejects () =
  let bad shape = P.validate shape <> Ok () in
  Alcotest.(check bool) "not an object" true (bad (J.Int 3));
  Alcotest.(check bool)
    "traceEvents not an array" true
    (bad (J.Obj [ ("traceEvents", J.Int 1) ]));
  Alcotest.(check bool)
    "event without ph" true
    (bad (J.Obj [ ("traceEvents", J.Arr [ J.Obj [ ("name", J.Str "x") ] ]) ]));
  Alcotest.(check bool)
    "unknown phase" true
    (bad
       (J.Obj
          [
            ( "traceEvents",
              J.Arr
                [
                  J.Obj
                    [
                      ("name", J.Str "x");
                      ("ph", J.Str "Z");
                      ("pid", J.Int 0);
                      ("tid", J.Int 0);
                      ("ts", J.Int 1);
                    ];
                ] );
          ]))

(* ------------------------------------------------------------------ *)
(* Retry attribution *)

module A = Obs.Attribution

let test_attribution_mechanics () =
  A.set_enabled true;
  Fun.protect ~finally:(fun () -> A.set_enabled false) @@ fun () ->
  A.mark A.Flag_cas_lost ~attempt:1;
  A.mark A.Flag_cas_lost ~attempt:3;
  A.mark A.Child_cas_lost ~attempt:0;
  A.mark A.Flagged_ancestor ~attempt:2;
  A.mark A.Flagged_ancestor ~attempt:2;
  A.op_complete ();
  Alcotest.(check int) "total" 5 (A.total ());
  let by_name name =
    List.find (fun (s : A.summary) -> s.A.name = name) (A.snapshot ())
  in
  Alcotest.(check int) "flag_cas_lost" 2 (by_name "flag_cas_lost").A.count;
  Alcotest.(check int) "child_cas_lost" 1 (by_name "child_cas_lost").A.count;
  Alcotest.(check int) "backtrack" 0 (by_name "backtrack").A.count;
  Alcotest.(check int)
    "attempt histogram populated" 2
    (by_name "flag_cas_lost").A.attempts.H.count;
  (* The two Flagged_ancestor marks belong to the one completed op:
     help-chain depth 2. *)
  let hd = A.help_depth_summary () in
  Alcotest.(check int) "one chain recorded" 1 hd.H.count;
  Alcotest.(check int) "chain depth" 2 hd.H.max;
  (* Re-enabling from disabled resets. *)
  A.set_enabled false;
  A.set_enabled true;
  Alcotest.(check int) "reset on re-enable" 0 (A.total ())

let test_attribution_disabled_is_noop () =
  A.set_enabled false;
  A.mark A.Backtrack ~attempt:1;
  A.op_complete ();
  Alcotest.(check int) "nothing recorded" 0 (A.total ())

(* End-to-end: a contended workload attributes every lost CAS to some
   cause, and the JSON snapshot is well-formed. *)
let test_attribution_concurrent () =
  A.set_enabled true;
  Fun.protect ~finally:(fun () -> A.set_enabled false) @@ fun () ->
  let trie = Core.Patricia.create ~universe:64 ~record_stats:true () in
  let worker seed =
    Domain.spawn (fun () ->
        let rng = Rng.of_int_seed seed in
        for _ = 1 to 20_000 do
          let k = Rng.int rng 64 in
          if Rng.int rng 2 = 0 then ignore (Core.Patricia.insert trie k)
          else ignore (Core.Patricia.delete trie k)
        done)
  in
  let ds = List.init 2 worker in
  List.iter Domain.join ds;
  (* Whatever contention materialized, the books must balance: snapshot
     counts sum to total, and the JSON form parses back. *)
  let total =
    List.fold_left (fun acc (s : A.summary) -> acc + s.A.count) 0 (A.snapshot ())
  in
  Alcotest.(check int) "by-cause counts sum to total" (A.total ()) total;
  (match J.of_string (J.to_string (A.to_json ())) with
  | J.Obj kvs ->
      Alcotest.(check bool) "enabled field" true (List.mem_assoc "enabled" kvs);
      Alcotest.(check bool) "by_cause field" true (List.mem_assoc "by_cause" kvs)
  | _ -> Alcotest.fail "attribution json not an object");
  (* On a 64-key universe with two domains, some retries should exist;
     don't require a specific cause, just consistency with the trie's
     own counters: flag failures it counted appear as flag_cas_lost. *)
  match Core.Patricia.stats_snapshot trie with
  | Some st ->
      let flag_lost =
        (List.find (fun (s : A.summary) -> s.A.name = "flag_cas_lost")
           (A.snapshot ()))
          .A.count
      in
      Alcotest.(check int)
        "flag_cas_lost mirrors trie flag_failures"
        st.Core.Patricia.flag_failures flag_lost
  | None -> Alcotest.fail "stats requested but absent"

(* ------------------------------------------------------------------ *)
(* Instrument functor over a real structure *)

module IPat = Obs.Instrument (Registry.Pat)

let test_instrument_counts () =
  let t = IPat.create ~universe:1024 () in
  Alcotest.(check string) "keeps the name" "PAT" IPat.name;
  for k = 0 to 99 do
    ignore (IPat.insert t k)
  done;
  for k = 0 to 49 do
    ignore (IPat.member t k)
  done;
  ignore (IPat.delete t 0);
  Alcotest.(check int) "behaves as a set" 99 (IPat.size t);
  let summaries = IPat.latency_summaries t in
  Alcotest.(check int)
    "insert samples" 100
    (List.assoc "insert" summaries).H.count;
  Alcotest.(check int)
    "member samples" 50
    (List.assoc "member" summaries).H.count;
  Alcotest.(check int)
    "delete samples" 1
    (List.assoc "delete" summaries).H.count;
  let ins = List.assoc "insert" summaries in
  Alcotest.(check bool) "percentiles ordered" true
    (ins.H.min <= ins.H.p50 && ins.H.p50 <= ins.H.p99
   && ins.H.p99 <= ins.H.max);
  (* Direct timings through the underlying structure still work. *)
  Alcotest.(check bool)
    "inner reachable" true
    (Core.Patricia.member (IPat.inner t) 1);
  IPat.reset_latencies t;
  Alcotest.(check int)
    "reset zeroes" 0
    (IPat.latency_summary t `Insert).H.count

(* ------------------------------------------------------------------ *)
(* Slowlog: lock-free exact top-K of slowest requests *)

let slow_entry total =
  Obs.Slowlog.
    {
      op = "insert";
      key = total;
      conn = 0;
      seq = total;
      start_ns = 0;
      total_ns = total;
      stages = [ ("queue", 1); ("trie", total - 1) ];
    }

let test_slowlog_topk_sequential () =
  let sl = Obs.Slowlog.create ~k:4 () in
  Alcotest.(check int) "capacity" 4 (Obs.Slowlog.capacity sl);
  Alcotest.(check int) "floor starts open" (-1) (Obs.Slowlog.admission_floor sl);
  for total = 1 to 10 do
    Obs.Slowlog.note sl (slow_entry total)
  done;
  let totals =
    List.map (fun e -> e.Obs.Slowlog.total_ns) (Obs.Slowlog.dump sl)
  in
  Alcotest.(check (list int)) "exact top-4, slowest first" [ 10; 9; 8; 7 ]
    totals;
  Alcotest.(check bool) "floor reached the min retained" true
    (Obs.Slowlog.admission_floor sl >= 6);
  (* Below-floor entries are rejected without touching the table. *)
  let before = Obs.Slowlog.inserted sl in
  Obs.Slowlog.note sl (slow_entry 2);
  Alcotest.(check int) "below floor not admitted" before
    (Obs.Slowlog.inserted sl);
  Obs.Slowlog.clear sl;
  Alcotest.(check (list int)) "clear empties" []
    (List.map (fun e -> e.Obs.Slowlog.total_ns) (Obs.Slowlog.dump sl))

let test_slowlog_concurrent_exact () =
  (* 4 domains insert disjoint totals; at quiescence the table must hold
     exactly the K globally largest — the replacement CAS only ever
     evicts a current global minimum, so no admitted larger entry can be
     lost to a race. *)
  let k = 8 and domains = 4 and per = 2_000 in
  let sl = Obs.Slowlog.create ~k () in
  let worker d () =
    let rng = Rng.of_int_seed (0xD00D + d) in
    let order = Array.init per (fun i -> (d * per) + i + 1) in
    (* Shuffle so admissions are not monotone per domain. *)
    for i = per - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let t = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- t
    done;
    Array.iter (fun total -> Obs.Slowlog.note sl (slow_entry total)) order
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let expected = List.init k (fun i -> (domains * per) - i) in
  let got =
    List.map (fun e -> e.Obs.Slowlog.total_ns) (Obs.Slowlog.dump sl)
  in
  Alcotest.(check (list int)) "concurrent top-K exact" expected got

let test_slowlog_json () =
  let sl = Obs.Slowlog.create ~k:2 () in
  Obs.Slowlog.note sl (slow_entry 5);
  let j = Obs.Slowlog.to_json sl in
  (* Round-trips through the parser and carries the stage breakdown. *)
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | exception Obs.Json.Parse_error m ->
      Alcotest.failf "slowlog json unparseable: %s" m
  | Obs.Json.Obj fields ->
      Alcotest.(check bool) "has entries" true (List.mem_assoc "entries" fields);
      Alcotest.(check bool) "has capacity" true
        (List.mem_assoc "capacity" fields)
  | _ -> Alcotest.fail "slowlog json not an object"

(* ------------------------------------------------------------------ *)
(* Watchdog: fake-clock state machine *)

let wd_status wd =
  let code, body = Obs.Watchdog.healthz wd () in
  (code, body)

let test_watchdog_state_machine () =
  let now = ref 0 in
  let wd =
    Obs.Watchdog.create ~degraded_after_s:1.0 ~stalled_after_s:5.0
      ~now:(fun () -> !now)
      ()
  in
  let beat = Obs.Watchdog.heartbeat wd ~name:"loop" in
  Alcotest.(check (pair int string)) "fresh heartbeat ok" (200, "ok\n")
    (wd_status wd);
  Alcotest.(check int) "no warnings yet" 0 (Obs.Watchdog.warnings wd);
  now := 2_000_000_000;
  let code, body = wd_status wd in
  Alcotest.(check int) "degraded stays 200" 200 code;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "degraded names the source" true
    (String.length body >= 9
    && String.sub body 0 9 = "degraded:"
    && contains body "loop");
  Alcotest.(check int) "transition warned" 1 (Obs.Watchdog.warnings wd);
  now := 6_000_000_000;
  let code, body = wd_status wd in
  Alcotest.(check int) "stalled is 503" 503 code;
  Alcotest.(check bool) "stalled names the source" true
    (String.sub body 0 8 = "stalled:");
  Alcotest.(check int) "second transition warned" 2 (Obs.Watchdog.warnings wd);
  (* Re-evaluating in the same state does not re-warn. *)
  ignore (wd_status wd);
  Alcotest.(check int) "steady state silent" 2 (Obs.Watchdog.warnings wd);
  beat ();
  Alcotest.(check (pair int string)) "recovery flips back" (200, "ok\n")
    (wd_status wd);
  Alcotest.(check int) "recovery does not warn" 2 (Obs.Watchdog.warnings wd)

let test_watchdog_gauge_thresholds () =
  let now = ref 0 in
  let depth = ref 0 in
  let wd = Obs.Watchdog.create ~now:(fun () -> !now) () in
  Obs.Watchdog.gauge wd ~name:"wal-queue" ~degraded_above:10 ~stalled_above:100
    (fun () -> !depth);
  Alcotest.(check int) "below thresholds ok" 200 (fst (wd_status wd));
  depth := 50;
  let code, body = wd_status wd in
  Alcotest.(check int) "above degraded" 200 code;
  Alcotest.(check bool) "reason carries value" true
    (String.sub body 0 9 = "degraded:");
  depth := 500;
  Alcotest.(check int) "above stalled is 503" 503 (fst (wd_status wd));
  depth := 0;
  Alcotest.(check int) "gauge recovery" 200 (fst (wd_status wd));
  (* A probe that throws is a stall, not a crash. *)
  let wd2 = Obs.Watchdog.create ~now:(fun () -> !now) () in
  Obs.Watchdog.gauge wd2 ~name:"sick" ~stalled_above:1 (fun () ->
      failwith "probe boom");
  Alcotest.(check int) "throwing probe stalls" 503 (fst (wd_status wd2))

(* ------------------------------------------------------------------ *)
(* Perfetto fusion: request/stage/runtime spans share one document *)

let test_perfetto_track_names () =
  Alcotest.(check string) "domain track" "domain-3" (Obs.Perfetto.track_name 3);
  Alcotest.(check string) "conn track" "conn-7"
    (Obs.Perfetto.track_name (Obs.Trace.conn_track_base + 7));
  Alcotest.(check string) "runtime track" "runtime-2"
    (Obs.Perfetto.track_name (Obs.Trace.runtime_track_base + 2))

let test_perfetto_fused_layers_validate () =
  let t = Obs.Trace.create ~capacity:64 () in
  (* Layer 1: a trie attempt span on the writer's domain track. *)
  Obs.Trace.emit_span t Obs.Trace.Insert ~key:1 ~ok:true ~retries:0 ~attempt:1
    ~site:"flag_cas" ~t0_ns:1_000;
  (* Layer 2: a request plus stage spans on a connection track. *)
  let conn = Obs.Trace.conn_track_base + 1 in
  Obs.Trace.add_span t Obs.Trace.Insert ~track:conn ~key:1 ~ok:true ~retries:0
    ~attempt:0 ~site:"request" ~t0_ns:1_000 ~dur_ns:5_000;
  Obs.Trace.add_span t (Obs.Trace.Custom "queue") ~track:conn ~key:1 ~ok:true
    ~retries:0 ~attempt:0 ~site:"stage:queue" ~t0_ns:1_000 ~dur_ns:500;
  (* Layer 3: a GC span on a runtime track. *)
  Obs.Trace.add_span t (Obs.Trace.Custom "minor")
    ~track:(Obs.Trace.runtime_track_base + 1)
    ~key:0 ~ok:true ~retries:0 ~attempt:0 ~site:"rt:minor" ~t0_ns:2_000
    ~dur_ns:300;
  let doc = Obs.Perfetto.to_json t in
  (match Obs.Perfetto.validate doc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "fused doc rejected: %s" m);
  (* The three layers land in their own categories. *)
  let cats = ref [] in
  (match doc with
  | Obs.Json.Obj fields -> (
      match List.assoc "traceEvents" fields with
      | Obs.Json.Arr evs ->
          List.iter
            (function
              | Obs.Json.Obj e -> (
                  match List.assoc_opt "cat" e with
                  | Some (Obs.Json.Str c) ->
                      if not (List.mem c !cats) then cats := c :: !cats
                  | _ -> ())
              | _ -> ())
            evs
      | _ -> Alcotest.fail "traceEvents not an array")
  | _ -> Alcotest.fail "doc not an object");
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " category present") true (List.mem c !cats))
    [ "attempt"; "request"; "stage"; "runtime" ]

(* ------------------------------------------------------------------ *)
(* Runtime-events collector: live smoke (skipped if unavailable) *)

let test_runtime_collector_smoke () =
  match Obs.Runtime.start ~poll_interval_s:0.001 () with
  | Error m ->
      (* Environment without runtime-events support: degrading, never
         failing, is exactly the contract. *)
      Printf.printf "runtime-events unavailable (%s), skipping\n%!" m
  | Ok rt ->
      Obs.Runtime.reset ();
      for _ = 1 to 5 do
        ignore (Sys.opaque_identity (Array.init 200_000 string_of_int));
        Gc.full_major ()
      done;
      Unix.sleepf 0.05;
      Obs.Runtime.stop rt;
      let snap = Obs.Runtime.snapshot () in
      let activity =
        List.assoc "minor_collections" snap
        + List.assoc "major_slices" snap
        + List.assoc "stw_pauses" snap
      in
      Alcotest.(check bool) "collector observed GC activity" true (activity > 0);
      (* The exposition renders without violating family contiguity. *)
      let b = Obs.Prometheus.create () in
      Obs.Runtime.emit b;
      let text = Obs.Prometheus.to_string b in
      let _, errors = Obs.Prometheus.parse_samples text in
      Alcotest.(check (list string)) "gc families parse clean" [] errors

(* ------------------------------------------------------------------ *)
(* Prometheus exposition parser *)

let test_prometheus_parser () =
  let text =
    "# HELP x_total help text\n# TYPE x_total counter\nx_total 41\n\
     lat{op=\"insert\",quantile=\"0.99\"} 1.5e3\n\
     esc{msg=\"a\\\"b\\\\c\"} 2 1712345678\n"
  in
  let samples, errors = Obs.Prometheus.parse_samples text in
  Alcotest.(check (list string)) "no parse errors" [] errors;
  Alcotest.(check (option (float 0.001))) "bare sample" (Some 41.0)
    (Obs.Prometheus.find_sample samples ~name:"x_total" ~labels:[]);
  Alcotest.(check (option (float 0.001))) "labelled sample" (Some 1500.0)
    (Obs.Prometheus.find_sample samples ~name:"lat"
       ~labels:[ ("op", "insert"); ("quantile", "0.99") ]);
  Alcotest.(check (option (float 0.001))) "escapes and timestamp" (Some 2.0)
    (Obs.Prometheus.find_sample samples ~name:"esc"
       ~labels:[ ("msg", "a\"b\\c") ]);
  Alcotest.(check (option (float 0.001))) "label subset match" (Some 1500.0)
    (Obs.Prometheus.find_sample samples ~name:"lat" ~labels:[ ("op", "insert") ]);
  Alcotest.(check (option (float 0.001))) "missing is None" None
    (Obs.Prometheus.find_sample samples ~name:"lat"
       ~labels:[ ("op", "delete") ]);
  let _, errs = Obs.Prometheus.parse_samples "broken{ 12\n" in
  Alcotest.(check bool) "malformed line reported" true (errs <> [])

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          qt prop_bucket_brackets;
          Alcotest.test_case "bucket bounds contiguous" `Quick
            test_bucket_bounds_contiguous;
          qt prop_percentiles_bracket;
          Alcotest.test_case "empty histogram" `Quick test_empty_histogram;
          Alcotest.test_case "shard merge equals single-domain" `Quick
            test_shard_merge_equals_single;
        ] );
      ( "counter",
        [
          Alcotest.test_case "concurrent sum exact" `Quick
            test_counter_concurrent_sum;
          Alcotest.test_case "add and reset" `Quick test_counter_add_reset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraps, dump ordered" `Quick
            test_trace_ring_wraps;
          Alcotest.test_case "event json" `Quick test_trace_json;
          Alcotest.test_case "overflow counted, never silent" `Quick
            test_trace_dropped;
          Alcotest.test_case "attempt spans" `Quick test_trace_spans;
          Alcotest.test_case "global recorder wires the trie" `Quick
            test_trace_recorder;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "specials" `Quick test_json_specials;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "escape sequences" `Quick test_json_escapes;
          Alcotest.test_case "nested arrays" `Quick test_json_nested_arrays;
          Alcotest.test_case "exponent numbers" `Quick
            test_json_exponent_numbers;
          Alcotest.test_case "file round-trip" `Quick test_json_file_roundtrip;
        ] );
      ( "perfetto",
        [
          Alcotest.test_case "schema-valid multi-track export" `Quick
            test_perfetto_schema;
          Alcotest.test_case "validate rejects malformed docs" `Quick
            test_perfetto_validate_rejects;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "mark, snapshot, reset" `Quick
            test_attribution_mechanics;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_attribution_disabled_is_noop;
          Alcotest.test_case "concurrent workload balances" `Quick
            test_attribution_concurrent;
        ] );
      ( "instrument",
        [
          Alcotest.test_case "functor over PAT" `Quick test_instrument_counts;
        ] );
      ( "slowlog",
        [
          Alcotest.test_case "sequential top-K and floor" `Quick
            test_slowlog_topk_sequential;
          Alcotest.test_case "concurrent top-K exact" `Quick
            test_slowlog_concurrent_exact;
          Alcotest.test_case "json dump" `Quick test_slowlog_json;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "heartbeat state machine" `Quick
            test_watchdog_state_machine;
          Alcotest.test_case "gauge thresholds and sick probes" `Quick
            test_watchdog_gauge_thresholds;
        ] );
      ( "forensics",
        [
          Alcotest.test_case "track namespaces" `Quick
            test_perfetto_track_names;
          Alcotest.test_case "fused layers validate" `Quick
            test_perfetto_fused_layers_validate;
          Alcotest.test_case "runtime collector smoke" `Quick
            test_runtime_collector_smoke;
          Alcotest.test_case "prometheus parser" `Quick test_prometheus_parser;
        ] );
    ]

(* Tests for the Obs observability library: bucket math and percentile
   bracketing properties for the histogram, cross-domain correctness of
   the striped counters, ring semantics of the tracer, JSON round-trips,
   and the Instrument functor over a real structure. *)

module H = Obs.Histogram
module C = Obs.Counter
module T = Obs.Trace
module J = Obs.Json

(* ------------------------------------------------------------------ *)
(* Histogram bucket math *)

(* Every value lands in a bucket that brackets it, and the bucket is
   narrow: 32 sub-buckets per power of two bound the width at v/32. *)
let prop_bucket_brackets =
  QCheck.Test.make ~count:2000 ~name:"bucket brackets value, width <= v/32"
    QCheck.(int_range 0 (1 lsl 50))
    (fun v ->
      let lo, hi = H.bucket_bounds (H.bucket_of_value v) in
      lo <= v && v <= hi && (hi - lo + 1) * 32 <= max 32 v)

(* Distinct buckets cover disjoint ranges in order, up to the last
   index any representable value can map to (higher indices exist only
   as slack in the array and would overflow bucket_bounds). *)
let test_bucket_bounds_contiguous () =
  for idx = 0 to H.bucket_of_value max_int do
    let lo, hi = H.bucket_bounds idx in
    Alcotest.(check bool) "lo <= hi" true (lo <= hi);
    if idx > 0 then begin
      let _, prev_hi = H.bucket_bounds (idx - 1) in
      Alcotest.(check int) "contiguous" (prev_hi + 1) lo
    end
  done

(* ------------------------------------------------------------------ *)
(* Histogram percentiles bracket the recorded samples *)

let exact_percentile sorted n p =
  let rank =
    let r = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    if r < 1 then 1 else if r > n then n else r
  in
  List.nth sorted (rank - 1)

let prop_percentiles_bracket =
  QCheck.Test.make ~count:300
    ~name:"percentiles within one bucket of the exact order statistic"
    QCheck.(list_of_size Gen.(1 -- 200) (int_range 0 (1 lsl 40)))
    (fun samples ->
      QCheck.assume (samples <> []);
      let h = H.create () in
      List.iter (H.record h) samples;
      let s = H.snapshot h in
      let sorted = List.sort compare samples in
      let n = List.length samples in
      let ok p reported =
        let exact = exact_percentile sorted n p in
        (* The reported value is the bucket's upper bound clamped by the
           exact max, so it is >= the true order statistic and at most
           one bucket width (~v/32) above it. *)
        reported >= exact && reported <= exact + (exact / 32) + 1
      in
      s.H.count = n
      && s.H.min = List.hd sorted
      && s.H.max = List.nth sorted (n - 1)
      && s.H.sum = List.fold_left ( + ) 0 samples
      && ok 50.0 s.H.p50 && ok 90.0 s.H.p90 && ok 99.0 s.H.p99
      && ok 99.9 s.H.p999)

let test_empty_histogram () =
  let s = H.snapshot (H.create ()) in
  Alcotest.(check int) "count" 0 s.H.count;
  Alcotest.(check int) "p99" 0 s.H.p99;
  Alcotest.(check int) "min" 0 s.H.min

(* ------------------------------------------------------------------ *)
(* Sharding: recording split across domains equals single-domain
   recording, and merge_into concatenates histograms. *)

let chunks k xs =
  let n = List.length xs in
  let size = max 1 ((n + k - 1) / k) in
  let rec go acc cur count = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
        if count = size then go (List.rev cur :: acc) [ x ] 1 tl
        else go acc (x :: cur) (count + 1) tl
  in
  go [] [] 0 xs

let test_shard_merge_equals_single () =
  let rng = Rng.of_int_seed 7 in
  let samples = List.init 5_000 (fun _ -> Rng.int rng 1_000_000) in
  let single = H.create () in
  List.iter (H.record single) samples;
  let sharded = H.create () in
  (* Each chunk is recorded by a different domain, hence (modulo domain-id
     wrap) a different stripe; domains run one at a time so even a wrap
     collision stays single-writer. *)
  List.iter
    (fun chunk ->
      Domain.join
        (Domain.spawn (fun () -> List.iter (H.record sharded) chunk)))
    (chunks 4 samples);
  Alcotest.(check bool)
    "snapshots equal" true
    (H.snapshot single = H.snapshot sharded);
  (* merge_into: pouring the sharded histogram into a third one changes
     nothing about the summary. *)
  let merged = H.create () in
  H.merge_into ~into:merged sharded;
  Alcotest.(check bool)
    "merge_into preserves summary" true
    (H.snapshot merged = H.snapshot single);
  (* Merging a second copy doubles the counts. *)
  H.merge_into ~into:merged single;
  let s = H.snapshot merged in
  Alcotest.(check int) "doubled count" (2 * List.length samples) s.H.count

(* ------------------------------------------------------------------ *)
(* Counter: exact under true parallelism *)

let test_counter_concurrent_sum () =
  let domains = max 2 (Domain.recommended_domain_count ()) in
  let per_domain = 50_000 in
  let c = C.create () in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              C.incr c
            done))
  in
  List.iter Domain.join workers;
  (* Stripes use fetch-and-add, so the total is exact even if domain ids
     collide on a stripe. *)
  Alcotest.(check int) "exact total" (domains * per_domain) (C.sum c)

let test_counter_add_reset () =
  let c = C.create () in
  C.add c 41;
  C.incr c;
  Alcotest.(check int) "sum" 42 (C.sum c);
  C.reset c;
  Alcotest.(check int) "reset" 0 (C.sum c)

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_trace_ring_wraps () =
  let t = T.create ~capacity:1000 () in
  Alcotest.(check int) "capacity rounded to pow2" 1024 (T.capacity t);
  let total = 1024 + 200 in
  for i = 0 to total - 1 do
    T.emit t T.Insert ~key:i ~ok:true ~retries:0
  done;
  let events = T.dump t in
  Alcotest.(check int) "retains capacity events" 1024 (List.length events);
  (* Oldest retained event is the one the 200 overflow writes stopped
     short of; order is oldest-first. *)
  Alcotest.(check int) "oldest key" 200 (List.hd events).T.key;
  Alcotest.(check int) "newest key" (total - 1)
    (List.nth events 1023).T.key;
  let rec nondecreasing = function
    | a :: (b :: _ as tl) -> a.T.t_ns <= b.T.t_ns && nondecreasing tl
    | _ -> true
  in
  Alcotest.(check bool) "timestamps sorted" true (nondecreasing events);
  T.clear t;
  Alcotest.(check int) "clear empties" 0 (List.length (T.dump t))

let test_trace_json () =
  let t = T.create ~capacity:8 () in
  T.emit t T.Delete ~key:5 ~ok:false ~retries:3;
  match T.to_json t with
  | J.Arr [ e ] ->
      Alcotest.(check bool) "op" true (J.member e "op" = Some (J.Str "delete"));
      Alcotest.(check bool) "key" true (J.member e "key" = Some (J.Int 5));
      Alcotest.(check bool)
        "retries" true
        (J.member e "retries" = Some (J.Int 3))
  | _ -> Alcotest.fail "expected one-event array"

(* ------------------------------------------------------------------ *)
(* JSON round-trip *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("schema_version", J.Int 1);
        ("name", J.Str "quote\" back\\slash\nnewline\ttab");
        ("pi", J.Float 3.25);
        ("neg", J.Int (-42));
        ("flags", J.Arr [ J.Bool true; J.Bool false; J.Null ]);
        ("empty_arr", J.Arr []);
        ("empty_obj", J.Obj []);
        ("nested", J.Obj [ ("xs", J.Arr [ J.Int 1; J.Int 2; J.Int 3 ]) ]);
      ]
  in
  Alcotest.(check bool)
    "round-trips" true
    (J.of_string (J.to_string doc) = doc)

let test_json_specials () =
  Alcotest.(check string) "nan is null" "null" (J.to_string (J.Float nan));
  Alcotest.(check string)
    "inf is null" "null"
    (J.to_string (J.Float infinity));
  (* Floats keep a decimal point so they read back as floats. *)
  Alcotest.(check bool)
    "float stays float" true
    (J.of_string (J.to_string (J.Float 2.0)) = J.Float 2.0)

let test_json_parse_errors () =
  let fails s =
    match J.of_string s with
    | exception J.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unterminated obj" true (fails "{");
  Alcotest.(check bool) "trailing garbage" true (fails "1 2");
  Alcotest.(check bool) "bad literal" true (fails "trve");
  Alcotest.(check bool) "unterminated string" true (fails "\"abc")

(* ------------------------------------------------------------------ *)
(* Instrument functor over a real structure *)

module IPat = Obs.Instrument (Registry.Pat)

let test_instrument_counts () =
  let t = IPat.create ~universe:1024 () in
  Alcotest.(check string) "keeps the name" "PAT" IPat.name;
  for k = 0 to 99 do
    ignore (IPat.insert t k)
  done;
  for k = 0 to 49 do
    ignore (IPat.member t k)
  done;
  ignore (IPat.delete t 0);
  Alcotest.(check int) "behaves as a set" 99 (IPat.size t);
  let summaries = IPat.latency_summaries t in
  Alcotest.(check int)
    "insert samples" 100
    (List.assoc "insert" summaries).H.count;
  Alcotest.(check int)
    "member samples" 50
    (List.assoc "member" summaries).H.count;
  Alcotest.(check int)
    "delete samples" 1
    (List.assoc "delete" summaries).H.count;
  let ins = List.assoc "insert" summaries in
  Alcotest.(check bool) "percentiles ordered" true
    (ins.H.min <= ins.H.p50 && ins.H.p50 <= ins.H.p99
   && ins.H.p99 <= ins.H.max);
  (* Direct timings through the underlying structure still work. *)
  Alcotest.(check bool)
    "inner reachable" true
    (Core.Patricia.member (IPat.inner t) 1);
  IPat.reset_latencies t;
  Alcotest.(check int)
    "reset zeroes" 0
    (IPat.latency_summary t `Insert).H.count

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          qt prop_bucket_brackets;
          Alcotest.test_case "bucket bounds contiguous" `Quick
            test_bucket_bounds_contiguous;
          qt prop_percentiles_bracket;
          Alcotest.test_case "empty histogram" `Quick test_empty_histogram;
          Alcotest.test_case "shard merge equals single-domain" `Quick
            test_shard_merge_equals_single;
        ] );
      ( "counter",
        [
          Alcotest.test_case "concurrent sum exact" `Quick
            test_counter_concurrent_sum;
          Alcotest.test_case "add and reset" `Quick test_counter_add_reset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraps, dump ordered" `Quick
            test_trace_ring_wraps;
          Alcotest.test_case "event json" `Quick test_trace_json;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "specials" `Quick test_json_specials;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "instrument",
        [
          Alcotest.test_case "functor over PAT" `Quick test_instrument_counts;
        ] );
    ]

(* Crash-recovery fuzzer for the durable patserve server.

   Each trial forks this binary as a patserve child (--server mode)
   with sync durability on a fresh data directory, drives it with the
   journaled closed-loop load generator, kills it with SIGKILL at a
   random moment (optionally with chaos delays at the WAL's
   append/fsync/rotate sites to widen the crash windows, and optionally
   with concurrent checkpoints), then recovers the directory and checks
   the central durability promise:

     every synchronously-acknowledged operation is in the recovered
     set, and the recovered state is exactly the acknowledged history
     plus some prefix of each connection's in-flight (sent but
     unacknowledged) operations.

   The load generator partitions the key universe per connection, so
   each connection's journal totally orders the operations on its keys
   and the check is exact, not heuristic.  Recovery is also performed
   twice to confirm replay is deterministic and idempotent.

   Usage: crash_fuzzer.exe [--trials 50] [--seed 2013] [--universe 4096]
                           [--keep]   (keep data dirs of passing trials)

   Exits non-zero on the first violated trial, keeping its data
   directory for post-mortem. *)

module IS = Set.Make (Int)
module P = Server.Protocol

module Pstore = Persist.Store.Make (struct
  include Core.Patricia

  let create ~universe () = Core.Patricia.create ~universe ()
  let snapshot = Core.Patricia.snapshot_capability
end)

(* ------------------------------------------------------------------ *)
(* Minimal argv plumbing (shared by parent and --server child). *)

let arg_value name =
  let n = Array.length Sys.argv in
  let rec go i =
    if i + 1 >= n then None
    else if Sys.argv.(i) = "--" ^ name then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let arg_int name default =
  match arg_value name with Some v -> int_of_string v | None -> default

let arg_float name default =
  match arg_value name with Some v -> float_of_string v | None -> default

let arg_string name default =
  match arg_value name with Some v -> v | None -> default

let has_flag name = Array.exists (( = ) ("--" ^ name)) Sys.argv

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* ------------------------------------------------------------------ *)
(* Child: a durable patserve that runs until killed. *)

let server_mode () =
  let dir = arg_string "dir" "" in
  let universe = arg_int "universe" 4096 in
  let domains = arg_int "server-domains" 2 in
  let chaos_us = arg_int "chaos-us" 0 in
  let checkpoint_s = arg_float "checkpoint-s" 0. in
  let repl = has_flag "repl" in
  let segment_bytes =
    match arg_int "segment-bytes" 0 with 0 -> None | n -> Some n
  in
  if dir = "" then failwith "--server requires --dir";
  if chaos_us > 0 then
    Chaos.set_policy ~name:"wal-delay"
      (Some
         (function
         | Chaos.Wal_append | Chaos.Wal_fsync | Chaos.Wal_rotate ->
             Unix.sleepf (float_of_int chaos_us *. 1e-6)
         | _ -> ()));
  let store = Pstore.open_ ~dir ~universe ~mode:Pstore.Sync ?segment_bytes () in
  let ops =
    Server.
      {
        insert = Pstore.insert store;
        delete = Pstore.delete store;
        member = Pstore.member store;
        replace = (fun ~remove ~add -> Pstore.replace store ~remove ~add);
        size = (fun () -> Pstore.size store);
        snapshot = (fun () -> Pstore.snapshot store);
        scan_cut = (fun () -> Pstore.scan_cut store);
      }
  in
  (* With --repl the child is a sync-ack replication primary: followers
     may SUBSCRIBE, and every acknowledgement waits until each attached
     follower has applied the mutation — the property the failover
     trials verify across a SIGKILL. *)
  let primary, barrier, repl_hooks =
    if not repl then (None, (fun () -> Pstore.barrier store), None)
    else begin
      let writer = Option.get (Pstore.wal_writer store) in
      let p = Replica.Primary.create ~dir ~writer ~sync_ack:true () in
      Pstore.set_retention_hook store (Replica.Primary.retention_floor p);
      ( Some p,
        (fun () ->
          Pstore.barrier store;
          Replica.Primary.wait_acked p (Pstore.last_logged_here store)),
        Some
          Server.
            {
              subscribe = Replica.Primary.subscribe p;
              hashcheck =
                (fun ~prefix:_ ~len:_ -> Result.Error "no hashes here");
              promote = (fun () -> Result.Ok ());
            } )
    end
  in
  ignore (primary : Replica.Primary.t option);
  let srv = Server.start ~port:0 ~domains ~barrier ?repl:repl_hooks ops in
  (* The parent parses this line; everything else goes to stderr. *)
  Printf.printf "PORT=%d\n%!" (Server.port srv);
  let last = ref (Unix.gettimeofday ()) in
  while true do
    Unix.sleepf 0.005;
    if checkpoint_s > 0. && Unix.gettimeofday () -. !last >= checkpoint_s then begin
      ignore (Pstore.checkpoint store : int * int);
      last := Unix.gettimeofday ()
    end
  done

(* ------------------------------------------------------------------ *)
(* Child: a replication follower that can be promoted. *)

let follower_mode () =
  let dir = arg_string "dir" "" in
  let universe = arg_int "universe" 4096 in
  let follow_port = arg_int "follow-port" 0 in
  if dir = "" || follow_port = 0 then
    failwith "--follower requires --dir and --follow-port";
  let store = ref (Pstore.open_ ~dir ~universe ~mode:Pstore.Sync ()) in
  let follower = ref None in
  let primary = ref None in
  let repl_mu = Mutex.create () in
  let fops =
    Replica.Follower.
      {
        apply_insert = (fun k -> ignore (Pstore.insert !store k : bool));
        apply_delete = (fun k -> ignore (Pstore.delete !store k : bool));
        wal_sync =
          (fun () ->
            match Pstore.wal_writer !store with
            | Some w ->
                let last = Pstore.last_logged_here !store in
                if last >= 0 then Persist.Wal.Writer.wait_durable w last
            | None -> ());
      }
  in
  let from_seq =
    match Replica.Watermark.read ~dir with Some w -> w + 1 | None -> 0
  in
  (match
     Replica.Follower.start ~port:follow_port ~from_seq ~watermark_dir:dir fops
   with
  | Result.Ok f -> follower := Some f
  | Result.Error msg -> failwith ("follower subscribe: " ^ msg));
  let ops =
    Server.
      {
        insert = (fun k -> Pstore.insert !store k);
        delete = (fun k -> Pstore.delete !store k);
        member = (fun k -> Pstore.member !store k);
        replace = (fun ~remove ~add -> Pstore.replace !store ~remove ~add);
        size = (fun () -> Pstore.size !store);
        snapshot = (fun () -> Pstore.snapshot !store);
        scan_cut = (fun () -> Pstore.scan_cut !store);
      }
  in
  let repl_hooks =
    Server.
      {
        subscribe =
          (fun ~fd ~seq ~from_seq ->
            match !primary with
            | Some p -> Replica.Primary.subscribe p ~fd ~seq ~from_seq
            | None ->
                Replica.reject_subscribe ~reason:"not a primary" ~fd ~seq
                  ~from_seq);
        hashcheck = (fun ~prefix:_ ~len:_ -> Result.Error "no hashes here");
        promote =
          (fun () ->
            Mutex.lock repl_mu;
            Fun.protect ~finally:(fun () -> Mutex.unlock repl_mu) @@ fun () ->
            match !follower with
            | None -> Result.Ok () (* double promotion: idempotent *)
            | Some f ->
                Replica.Follower.stop f;
                follower := None;
                Pstore.close !store;
                store := Pstore.open_ ~dir ~universe ~mode:Pstore.Sync ();
                (match Pstore.wal_writer !store with
                | Some w ->
                    let p = Replica.Primary.create ~dir ~writer:w () in
                    Pstore.set_retention_hook !store
                      (Replica.Primary.retention_floor p);
                    primary := Some p
                | None -> ());
                Result.Ok ());
      }
  in
  let gate op =
    match !follower with
    | None -> `Proceed
    | Some f ->
        Replica.Gate.follower ~staleness:1_000_000
          ~lag:(fun () -> Replica.Follower.lag_records f)
          ~retry_after_ms:25 op
  in
  let barrier () =
    Pstore.barrier !store;
    match !primary with
    | Some p -> Replica.Primary.wait_acked p (Pstore.last_logged_here !store)
    | None -> ()
  in
  let srv =
    Server.start ~port:0 ~domains:2 ~barrier ~repl:repl_hooks ~gate ops
  in
  Printf.printf "PORT=%d\n%!" (Server.port srv);
  while true do
    Unix.sleepf 0.05
  done

(* ------------------------------------------------------------------ *)
(* Model: replay a connection's journal over its slice of the keyspace. *)

exception Violation of string

let violate fmt = Printf.ksprintf (fun m -> raise (Violation m)) fmt

(* Blind application: what the server does to the set if it executes
   [op], independent of what was acknowledged. *)
let apply_blind set op =
  match op with
  | P.Insert k -> IS.add k set
  | P.Delete k -> IS.remove k set
  | P.Member _ -> set
  | P.Replace { remove; add } ->
      if IS.mem remove set && (not (IS.mem add set)) && remove <> add then
        IS.add add (IS.remove remove set)
      else set
  | _ -> set

(* Acknowledged application: additionally check the acked result against
   the model — per-connection pipelining means every earlier operation
   of this connection was acknowledged first, and the keyspace is
   partitioned, so the expected result is exact. *)
let apply_acked conn set ((op, r) : P.op * bool) =
  let expect_bool what expected =
    if r <> expected then
      violate "conn %d: %s acked %b, model says %b" conn what r expected
  in
  (match op with
  | P.Insert k -> expect_bool (Printf.sprintf "INSERT %d" k) (not (IS.mem k set))
  | P.Delete k -> expect_bool (Printf.sprintf "DELETE %d" k) (IS.mem k set)
  | P.Member k -> expect_bool (Printf.sprintf "MEMBER %d" k) (IS.mem k set)
  | P.Replace { remove; add } ->
      expect_bool
        (Printf.sprintf "REPLACE %d->%d" remove add)
        (IS.mem remove set && (not (IS.mem add set)) && remove <> add)
  | _ -> ());
  if r then apply_blind set op else set

(* The recovered slice must equal the acked state extended by some
   prefix of the in-flight operations: SIGKILL preserves completed
   writes, so the durable suffix cuts the per-connection order at an
   arbitrary — but prefix-closed — point. *)
let check_connection ~conn ~recovered ~lo ~hi (j : Server.Loadgen.journal) =
  let slice = IS.filter (fun k -> k >= lo && k < hi) recovered in
  let acked_state = List.fold_left (apply_acked conn) IS.empty j.Server.Loadgen.acked in
  let ok = ref (IS.equal slice acked_state) in
  let s = ref acked_state in
  List.iter
    (fun op ->
      s := apply_blind !s op;
      if IS.equal slice !s then ok := true)
    j.Server.Loadgen.in_flight;
  if not !ok then begin
    let show set =
      String.concat "," (List.map string_of_int (IS.elements set))
    in
    violate
      "conn %d (keys [%d,%d)): recovered slice {%s} matches no prefix state; \
       acked state {%s} (+%d in-flight), lost {%s}, extra {%s}"
      conn lo hi (show slice) (show acked_state)
      (List.length j.Server.Loadgen.in_flight)
      (show (IS.diff acked_state slice))
      (show (IS.diff slice acked_state))
  end

(* ------------------------------------------------------------------ *)
(* Parent: one trial. *)

let read_port ic =
  match input_line ic with
  | line -> (
      match String.index_opt line '=' with
      | Some i when String.sub line 0 i = "PORT" ->
          int_of_string (String.sub line (i + 1) (String.length line - i - 1))
      | _ -> failwith ("unexpected server output: " ^ line))
  | exception End_of_file -> failwith "server child died before printing PORT"

let run_trial ~seed ~trial ~universe ~keep =
  let rng = Rng.of_int_seed (seed + (trial * 7919)) in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crashfuzz_%d_%d" (Unix.getpid ()) trial)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  (* Randomized trial shape: when the kill lands, whether the WAL sites
     are artificially widened, whether checkpoints race the crash. *)
  let kill_delay = 0.08 +. (float_of_int (Rng.int rng 400) /. 1000.) in
  let chaos_us = [| 0; 0; 200; 1500 |].(Rng.int rng 4) in
  let checkpoint_s = [| 0.; 0.; 0.07; 0.2 |].(Rng.int rng 4) in
  (* Tiny segments in some trials put rotations (and, with checkpoints,
     segment deletion) inside the crash window. *)
  let segment_bytes = [| 0; 0; 16384; 65536 |].(Rng.int rng 4) in
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process Sys.executable_name
      [|
        Sys.executable_name;
        "--server";
        "--dir";
        dir;
        "--universe";
        string_of_int universe;
        "--chaos-us";
        string_of_int chaos_us;
        "--checkpoint-s";
        string_of_float checkpoint_s;
        "--segment-bytes";
        string_of_int segment_bytes;
      |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  Fun.protect ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
      (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
       with Unix.Unix_error (_, _, _) -> ());
      close_in_noerr ic)
  @@ fun () ->
  let port = read_port ic in
  let load_domains = 3 in
  let cfg =
    {
      Server.Loadgen.default_config with
      port;
      domains = load_domains;
      depth = 8;
      seconds = 60.0 (* the kill, not the clock, ends the run *);
      universe;
      seed = seed + trial;
      mix = Harness.Mix.v ~insert:40 ~delete:20 ~find:10 ~replace:30 ();
      journal = true;
      tolerate_disconnect = true;
      partition = true;
    }
  in
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf kill_delay;
        try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ())
  in
  let r = Server.Loadgen.run cfg in
  Domain.join killer;
  ignore (Unix.waitpid [] pid : int * Unix.process_status);
  (* Recover twice: once to verify against the journals, once to verify
     determinism/idempotence of replay. *)
  let s1 = Pstore.open_ ~dir ~universe ~mode:Pstore.Ephemeral () in
  let s2 = Pstore.open_ ~dir ~universe ~mode:Pstore.Ephemeral () in
  let ri = Pstore.recovery_info s1 in
  let recovered = IS.of_list (Pstore.to_list s1) in
  let recovered2 = IS.of_list (Pstore.to_list s2) in
  if not (IS.equal recovered recovered2) then
    violate "second replay diverged: %d keys vs %d keys" (IS.cardinal recovered)
      (IS.cardinal recovered2);
  (match Core.Patricia.check_invariants (Pstore.underlying s1) with
  | Result.Ok () -> ()
  | Result.Error m -> violate "recovered trie violates invariants: %s" m);
  (* Snapshot-checkpoint trial: image each recovered store through its
     frozen view (the only checkpoint path — forced tail replay is
     gone), require the two independent recoveries to write
     byte-identical images, and reopen from the image alone. *)
  let image_bytes () =
    match Persist.Checkpoint.list_checkpoints dir with
    | [] -> violate "no image on disk after snapshot checkpoint"
    | l ->
        let _, path = List.nth l (List.length l - 1) in
        In_channel.with_open_bin path In_channel.input_all
  in
  ignore (Pstore.checkpoint s1 : int * int);
  let img1 = image_bytes () in
  ignore (Pstore.checkpoint s2 : int * int);
  let img2 = image_bytes () in
  if img1 <> img2 then
    violate "snapshot checkpoints of identical recoveries are not \
             byte-identical (%d vs %d bytes)"
      (String.length img1) (String.length img2);
  let s3 = Pstore.open_ ~dir ~universe ~mode:Pstore.Ephemeral () in
  let recovered3 = IS.of_list (Pstore.to_list s3) in
  if not (IS.equal recovered recovered3) then
    violate "reopen from the snapshot checkpoint diverged: %d keys vs %d"
      (IS.cardinal recovered) (IS.cardinal recovered3);
  let span = max 1 (universe / load_domains) in
  (* Keys no connection could have written must not appear. *)
  let ghost = IS.filter (fun k -> k >= load_domains * span) recovered in
  if not (IS.is_empty ghost) then
    violate "recovered keys outside every partition: %d of them"
      (IS.cardinal ghost);
  List.iteri
    (fun conn (j : Server.Loadgen.journal) ->
      check_connection ~conn ~recovered ~lo:(conn * span)
        ~hi:((conn + 1) * span) j)
    r.Server.Loadgen.journals;
  let acked = r.Server.Loadgen.ops in
  let in_flight =
    List.fold_left
      (fun a (j : Server.Loadgen.journal) ->
        a + List.length j.Server.Loadgen.in_flight)
      0 r.Server.Loadgen.journals
  in
  Printf.eprintf
    "trial %3d: kill@%.3fs chaos=%dus ckpt=%.2fs | acked=%d in-flight=%d \
     recovered=%d segs=%d%s%s\n%!"
    trial kill_delay chaos_us checkpoint_s acked in_flight
    (IS.cardinal recovered) ri.Pstore.wal_segments
    (if ri.Pstore.torn_tail then " torn-tail" else "")
    (match ri.Pstore.checkpoint_seq with
    | Some s -> Printf.sprintf " ckpt@%d" s
    | None -> "");
  if not keep then rm_rf dir

(* ------------------------------------------------------------------ *)
(* Parent: one failover trial — SIGKILL the sync-ack primary mid-stream,
   promote the follower (twice: the second must be an idempotent
   success), and verify over the wire that the promoted follower serves
   exactly the acknowledged history plus a prefix-closed cut of each
   connection's in-flight operations. *)

let spawn_child args =
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process Sys.executable_name
      (Array.append [| Sys.executable_name |] args)
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  (pid, Unix.in_channel_of_descr out_r)

let run_failover_trial ~seed ~trial ~universe ~keep =
  let rng = Rng.of_int_seed (seed + (trial * 6977)) in
  let mkdir_fresh d =
    rm_rf d;
    Unix.mkdir d 0o755;
    d
  in
  let pdir =
    mkdir_fresh
      (Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "crashfuzz_fo_%d_%d_p" (Unix.getpid ()) trial))
  in
  let fdir =
    mkdir_fresh
      (Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "crashfuzz_fo_%d_%d_f" (Unix.getpid ()) trial))
  in
  let kill_delay = 0.08 +. (float_of_int (Rng.int rng 400) /. 1000.) in
  let segment_bytes = [| 0; 0; 16384; 65536 |].(Rng.int rng 4) in
  let ppid, pic =
    spawn_child
      [|
        "--server"; "--repl";
        "--dir"; pdir;
        "--universe"; string_of_int universe;
        "--segment-bytes"; string_of_int segment_bytes;
      |]
  in
  let fpid = ref (-1) in
  let fic = ref None in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun pid ->
          if pid > 0 then begin
            (try Unix.kill pid Sys.sigkill
             with Unix.Unix_error (_, _, _) -> ());
            try ignore (Unix.waitpid [] pid : int * Unix.process_status)
            with Unix.Unix_error (_, _, _) -> ()
          end)
        [ ppid; !fpid ];
      close_in_noerr pic;
      Option.iter close_in_noerr !fic)
  @@ fun () ->
  let pport = read_port pic in
  (* The follower child only prints its PORT after its subscription is
     confirmed — from then on the primary's sync-ack barrier gates every
     acknowledgement on this follower having applied the mutation. *)
  let fpid', fic' =
    spawn_child
      [|
        "--follower";
        "--dir"; fdir;
        "--universe"; string_of_int universe;
        "--follow-port"; string_of_int pport;
      |]
  in
  fpid := fpid';
  fic := Some fic';
  let fport = read_port fic' in
  let load_domains = 3 in
  let cfg =
    {
      Server.Loadgen.default_config with
      port = pport;
      domains = load_domains;
      depth = 8;
      seconds = 60.0 (* the kill, not the clock, ends the run *);
      universe;
      seed = seed + trial;
      mix = Harness.Mix.v ~insert:40 ~delete:20 ~find:10 ~replace:30 ();
      journal = true;
      tolerate_disconnect = true;
      partition = true;
    }
  in
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf kill_delay;
        try Unix.kill ppid Sys.sigkill with Unix.Unix_error (_, _, _) -> ())
  in
  let r = Server.Loadgen.run cfg in
  Domain.join killer;
  ignore (Unix.waitpid [] ppid : int * Unix.process_status);
  (* Promote the survivor — twice.  Both must succeed: promotion is
     keyed on "am I still a follower", so the second is a no-op. *)
  let c = Server.Client.connect ~port:fport ~retries:5 () in
  if not (Server.Client.promote c) then violate "first PROMOTE refused";
  if not (Server.Client.promote c) then
    violate "second PROMOTE refused: promotion is not idempotent";
  (* The promoted follower must now serve reads (it no longer lags
     anything) and the served state must be the acked history plus a
     prefix-closed cut of the in-flight suffix per connection. *)
  let recovered = ref IS.empty in
  let chunk = 1024 in
  let k = ref 0 in
  while !k < universe do
    let n = min chunk (universe - !k) in
    let ops = List.init n (fun i -> P.Member (!k + i)) in
    List.iteri
      (fun i b -> if b then recovered := IS.add (!k + i) !recovered)
      (Server.Client.batch c ops);
    k := !k + n
  done;
  let recovered = !recovered in
  Server.Client.close c;
  let span = max 1 (universe / load_domains) in
  let ghost = IS.filter (fun k -> k >= load_domains * span) recovered in
  if not (IS.is_empty ghost) then
    violate "promoted follower serves keys outside every partition: %d"
      (IS.cardinal ghost);
  List.iteri
    (fun conn (j : Server.Loadgen.journal) ->
      check_connection ~conn ~recovered ~lo:(conn * span)
        ~hi:((conn + 1) * span) j)
    r.Server.Loadgen.journals;
  let acked = r.Server.Loadgen.ops in
  let in_flight =
    List.fold_left
      (fun a (j : Server.Loadgen.journal) ->
        a + List.length j.Server.Loadgen.in_flight)
      0 r.Server.Loadgen.journals
  in
  Printf.eprintf
    "failover %3d: kill@%.3fs | acked=%d in-flight=%d promoted-serves=%d\n%!"
    trial kill_delay acked in_flight (IS.cardinal recovered);
  if not keep then begin
    (* The follower child still holds the dir; reap it first. *)
    (try Unix.kill !fpid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
    (try ignore (Unix.waitpid [] !fpid : int * Unix.process_status)
     with Unix.Unix_error (_, _, _) -> ());
    fpid := -1;
    rm_rf pdir;
    rm_rf fdir
  end

let () =
  if has_flag "server" then server_mode ()
  else if has_flag "follower" then follower_mode ()
  else begin
    let trials = arg_int "trials" 50 in
    let seed = arg_int "seed" 2013 in
    let universe = arg_int "universe" 4096 in
    let keep = has_flag "keep" in
    (* A worker blocked on a vanished peer can get SIGPIPE on write. *)
    ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore : Sys.signal_behavior);
    let failover = has_flag "failover" in
    let failures = ref 0 in
    (try
       for trial = 1 to trials do
         try
           if failover then run_failover_trial ~seed ~trial ~universe ~keep
           else run_trial ~seed ~trial ~universe ~keep
         with Violation m ->
           incr failures;
           Printf.eprintf
             "trial %3d: DURABILITY VIOLATION: %s\n\
              data dir kept: %s\n%!"
             trial m
             (Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf
                   (if failover then "crashfuzz_fo_%d_%d_f"
                    else "crashfuzz_%d_%d")
                   (Unix.getpid ()) trial));
           raise Exit
       done
     with Exit -> ());
    if !failures = 0 then
      Printf.printf
        "crash_fuzzer: %d %strials, zero synchronously-acknowledged \
         operations lost\n%!"
        trials
        (if failover then "failover " else "")
    else begin
      Printf.printf "crash_fuzzer: FAILED\n%!";
      exit 1
    end
  end

(* Crash-recovery fuzzer for the durable patserve server.

   Each trial forks this binary as a patserve child (--server mode)
   with sync durability on a fresh data directory, drives it with the
   journaled closed-loop load generator, kills it with SIGKILL at a
   random moment (optionally with chaos delays at the WAL's
   append/fsync/rotate sites to widen the crash windows, and optionally
   with concurrent checkpoints), then recovers the directory and checks
   the central durability promise:

     every synchronously-acknowledged operation is in the recovered
     set, and the recovered state is exactly the acknowledged history
     plus some prefix of each connection's in-flight (sent but
     unacknowledged) operations.

   The load generator partitions the key universe per connection, so
   each connection's journal totally orders the operations on its keys
   and the check is exact, not heuristic.  Recovery is also performed
   twice to confirm replay is deterministic and idempotent.

   Usage: crash_fuzzer.exe [--trials 50] [--seed 2013] [--universe 4096]
                           [--keep]   (keep data dirs of passing trials)

   Exits non-zero on the first violated trial, keeping its data
   directory for post-mortem. *)

module IS = Set.Make (Int)
module P = Server.Protocol

module Pstore = Persist.Store.Make (struct
  include Core.Patricia

  let create ~universe () = Core.Patricia.create ~universe ()
end)

(* ------------------------------------------------------------------ *)
(* Minimal argv plumbing (shared by parent and --server child). *)

let arg_value name =
  let n = Array.length Sys.argv in
  let rec go i =
    if i + 1 >= n then None
    else if Sys.argv.(i) = "--" ^ name then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let arg_int name default =
  match arg_value name with Some v -> int_of_string v | None -> default

let arg_float name default =
  match arg_value name with Some v -> float_of_string v | None -> default

let arg_string name default =
  match arg_value name with Some v -> v | None -> default

let has_flag name = Array.exists (( = ) ("--" ^ name)) Sys.argv

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* ------------------------------------------------------------------ *)
(* Child: a durable patserve that runs until killed. *)

let server_mode () =
  let dir = arg_string "dir" "" in
  let universe = arg_int "universe" 4096 in
  let domains = arg_int "server-domains" 2 in
  let chaos_us = arg_int "chaos-us" 0 in
  let checkpoint_s = arg_float "checkpoint-s" 0. in
  let segment_bytes =
    match arg_int "segment-bytes" 0 with 0 -> None | n -> Some n
  in
  if dir = "" then failwith "--server requires --dir";
  if chaos_us > 0 then
    Chaos.set_policy ~name:"wal-delay"
      (Some
         (function
         | Chaos.Wal_append | Chaos.Wal_fsync | Chaos.Wal_rotate ->
             Unix.sleepf (float_of_int chaos_us *. 1e-6)
         | _ -> ()));
  let store = Pstore.open_ ~dir ~universe ~mode:Pstore.Sync ?segment_bytes () in
  let ops =
    Server.
      {
        insert = Pstore.insert store;
        delete = Pstore.delete store;
        member = Pstore.member store;
        replace = (fun ~remove ~add -> Pstore.replace store ~remove ~add);
        size = (fun () -> Pstore.size store);
      }
  in
  let srv =
    Server.start ~port:0 ~domains ~barrier:(fun () -> Pstore.barrier store) ops
  in
  (* The parent parses this line; everything else goes to stderr. *)
  Printf.printf "PORT=%d\n%!" (Server.port srv);
  let last = ref (Unix.gettimeofday ()) in
  while true do
    Unix.sleepf 0.005;
    if checkpoint_s > 0. && Unix.gettimeofday () -. !last >= checkpoint_s then begin
      ignore (Pstore.checkpoint store : int * int);
      last := Unix.gettimeofday ()
    end
  done

(* ------------------------------------------------------------------ *)
(* Model: replay a connection's journal over its slice of the keyspace. *)

exception Violation of string

let violate fmt = Printf.ksprintf (fun m -> raise (Violation m)) fmt

(* Blind application: what the server does to the set if it executes
   [op], independent of what was acknowledged. *)
let apply_blind set op =
  match op with
  | P.Insert k -> IS.add k set
  | P.Delete k -> IS.remove k set
  | P.Member _ -> set
  | P.Replace { remove; add } ->
      if IS.mem remove set && (not (IS.mem add set)) && remove <> add then
        IS.add add (IS.remove remove set)
      else set
  | _ -> set

(* Acknowledged application: additionally check the acked result against
   the model — per-connection pipelining means every earlier operation
   of this connection was acknowledged first, and the keyspace is
   partitioned, so the expected result is exact. *)
let apply_acked conn set ((op, r) : P.op * bool) =
  let expect_bool what expected =
    if r <> expected then
      violate "conn %d: %s acked %b, model says %b" conn what r expected
  in
  (match op with
  | P.Insert k -> expect_bool (Printf.sprintf "INSERT %d" k) (not (IS.mem k set))
  | P.Delete k -> expect_bool (Printf.sprintf "DELETE %d" k) (IS.mem k set)
  | P.Member k -> expect_bool (Printf.sprintf "MEMBER %d" k) (IS.mem k set)
  | P.Replace { remove; add } ->
      expect_bool
        (Printf.sprintf "REPLACE %d->%d" remove add)
        (IS.mem remove set && (not (IS.mem add set)) && remove <> add)
  | _ -> ());
  if r then apply_blind set op else set

(* The recovered slice must equal the acked state extended by some
   prefix of the in-flight operations: SIGKILL preserves completed
   writes, so the durable suffix cuts the per-connection order at an
   arbitrary — but prefix-closed — point. *)
let check_connection ~conn ~recovered ~lo ~hi (j : Server.Loadgen.journal) =
  let slice = IS.filter (fun k -> k >= lo && k < hi) recovered in
  let acked_state = List.fold_left (apply_acked conn) IS.empty j.Server.Loadgen.acked in
  let ok = ref (IS.equal slice acked_state) in
  let s = ref acked_state in
  List.iter
    (fun op ->
      s := apply_blind !s op;
      if IS.equal slice !s then ok := true)
    j.Server.Loadgen.in_flight;
  if not !ok then begin
    let show set =
      String.concat "," (List.map string_of_int (IS.elements set))
    in
    violate
      "conn %d (keys [%d,%d)): recovered slice {%s} matches no prefix state; \
       acked state {%s} (+%d in-flight), lost {%s}, extra {%s}"
      conn lo hi (show slice) (show acked_state)
      (List.length j.Server.Loadgen.in_flight)
      (show (IS.diff acked_state slice))
      (show (IS.diff slice acked_state))
  end

(* ------------------------------------------------------------------ *)
(* Parent: one trial. *)

let read_port ic =
  match input_line ic with
  | line -> (
      match String.index_opt line '=' with
      | Some i when String.sub line 0 i = "PORT" ->
          int_of_string (String.sub line (i + 1) (String.length line - i - 1))
      | _ -> failwith ("unexpected server output: " ^ line))
  | exception End_of_file -> failwith "server child died before printing PORT"

let run_trial ~seed ~trial ~universe ~keep =
  let rng = Rng.of_int_seed (seed + (trial * 7919)) in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crashfuzz_%d_%d" (Unix.getpid ()) trial)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  (* Randomized trial shape: when the kill lands, whether the WAL sites
     are artificially widened, whether checkpoints race the crash. *)
  let kill_delay = 0.08 +. (float_of_int (Rng.int rng 400) /. 1000.) in
  let chaos_us = [| 0; 0; 200; 1500 |].(Rng.int rng 4) in
  let checkpoint_s = [| 0.; 0.; 0.07; 0.2 |].(Rng.int rng 4) in
  (* Tiny segments in some trials put rotations (and, with checkpoints,
     segment deletion) inside the crash window. *)
  let segment_bytes = [| 0; 0; 16384; 65536 |].(Rng.int rng 4) in
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process Sys.executable_name
      [|
        Sys.executable_name;
        "--server";
        "--dir";
        dir;
        "--universe";
        string_of_int universe;
        "--chaos-us";
        string_of_int chaos_us;
        "--checkpoint-s";
        string_of_float checkpoint_s;
        "--segment-bytes";
        string_of_int segment_bytes;
      |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  Fun.protect ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
      (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
       with Unix.Unix_error (_, _, _) -> ());
      close_in_noerr ic)
  @@ fun () ->
  let port = read_port ic in
  let load_domains = 3 in
  let cfg =
    {
      Server.Loadgen.default_config with
      port;
      domains = load_domains;
      depth = 8;
      seconds = 60.0 (* the kill, not the clock, ends the run *);
      universe;
      seed = seed + trial;
      mix = Harness.Mix.v ~insert:40 ~delete:20 ~find:10 ~replace:30 ();
      journal = true;
      tolerate_disconnect = true;
      partition = true;
    }
  in
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf kill_delay;
        try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ())
  in
  let r = Server.Loadgen.run cfg in
  Domain.join killer;
  ignore (Unix.waitpid [] pid : int * Unix.process_status);
  (* Recover twice: once to verify against the journals, once to verify
     determinism/idempotence of replay. *)
  let s1 = Pstore.open_ ~dir ~universe ~mode:Pstore.Ephemeral () in
  let s2 = Pstore.open_ ~dir ~universe ~mode:Pstore.Ephemeral () in
  let ri = Pstore.recovery_info s1 in
  let recovered = IS.of_list (Pstore.to_list s1) in
  let recovered2 = IS.of_list (Pstore.to_list s2) in
  if not (IS.equal recovered recovered2) then
    violate "second replay diverged: %d keys vs %d keys" (IS.cardinal recovered)
      (IS.cardinal recovered2);
  (match Core.Patricia.check_invariants (Pstore.underlying s1) with
  | Result.Ok () -> ()
  | Result.Error m -> violate "recovered trie violates invariants: %s" m);
  let span = max 1 (universe / load_domains) in
  (* Keys no connection could have written must not appear. *)
  let ghost = IS.filter (fun k -> k >= load_domains * span) recovered in
  if not (IS.is_empty ghost) then
    violate "recovered keys outside every partition: %d of them"
      (IS.cardinal ghost);
  List.iteri
    (fun conn (j : Server.Loadgen.journal) ->
      check_connection ~conn ~recovered ~lo:(conn * span)
        ~hi:((conn + 1) * span) j)
    r.Server.Loadgen.journals;
  let acked = r.Server.Loadgen.ops in
  let in_flight =
    List.fold_left
      (fun a (j : Server.Loadgen.journal) ->
        a + List.length j.Server.Loadgen.in_flight)
      0 r.Server.Loadgen.journals
  in
  Printf.eprintf
    "trial %3d: kill@%.3fs chaos=%dus ckpt=%.2fs | acked=%d in-flight=%d \
     recovered=%d segs=%d%s%s\n%!"
    trial kill_delay chaos_us checkpoint_s acked in_flight
    (IS.cardinal recovered) ri.Pstore.wal_segments
    (if ri.Pstore.torn_tail then " torn-tail" else "")
    (match ri.Pstore.checkpoint_seq with
    | Some s -> Printf.sprintf " ckpt@%d" s
    | None -> "");
  if not keep then rm_rf dir

let () =
  if has_flag "server" then server_mode ()
  else begin
    let trials = arg_int "trials" 50 in
    let seed = arg_int "seed" 2013 in
    let universe = arg_int "universe" 4096 in
    let keep = has_flag "keep" in
    (* A worker blocked on a vanished peer can get SIGPIPE on write. *)
    ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore : Sys.signal_behavior);
    let failures = ref 0 in
    (try
       for trial = 1 to trials do
         try run_trial ~seed ~trial ~universe ~keep
         with Violation m ->
           incr failures;
           Printf.eprintf
             "trial %3d: DURABILITY VIOLATION: %s\n\
              data dir kept: %s\n%!"
             trial m
             (Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf "crashfuzz_%d_%d" (Unix.getpid ()) trial));
           raise Exit
       done
     with Exit -> ());
    if !failures = 0 then
      Printf.printf
        "crash_fuzzer: %d trials, zero synchronously-acknowledged operations \
         lost\n%!"
        trials
    else begin
      Printf.printf "crash_fuzzer: FAILED\n%!";
      exit 1
    end
  end

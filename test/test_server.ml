(* End-to-end tests of the patserve server: semantics against a model
   over a real loopback connection, pipelining, batch, error handling
   (application-level errors leave the stream usable, framing-level
   errors close it without hurting other connections), graceful stop,
   the closed-loop load generator's size accounting, and a
   linearizability check where every operation is a network round
   trip. *)

module IS = Set.Make (Int)
module P = Server.Protocol

let pat_server ?(domains = 2) ~universe () =
  let trie = Core.Patricia.create ~universe () in
  let ops =
    Server.
      {
        insert = Core.Patricia.insert trie;
        delete = Core.Patricia.delete trie;
        member = Core.Patricia.member trie;
        replace = (fun ~remove ~add -> Core.Patricia.replace trie ~remove ~add);
        size = (fun () -> Core.Patricia.size trie);
        snapshot = (fun () -> Core.Patricia.snapshot_capability trie);
        scan_cut = (fun () -> -1);
      }
  in
  (trie, Server.start ~port:0 ~domains ops)

let with_server ?domains ~universe f =
  let trie, srv = pat_server ?domains ~universe () in
  Fun.protect ~finally:(fun () -> Server.stop ~drain_s:0.5 srv) @@ fun () ->
  f trie (Server.port srv)

let with_client port f =
  let c = Server.Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () -> f c

(* ------------------------------------------------------------------ *)

let test_model_over_network () =
  with_server ~universe:256 @@ fun _ port ->
  with_client port @@ fun c ->
  let rng = Rng.of_int_seed 7 in
  let model = ref IS.empty in
  for step = 1 to 5_000 do
    let k = Rng.int rng 256 in
    match Rng.int rng 4 with
    | 0 ->
        let e = not (IS.mem k !model) in
        if Server.Client.insert c k <> e then
          Alcotest.failf "insert %d wrong at step %d" k step;
        model := IS.add k !model
    | 1 ->
        let e = IS.mem k !model in
        if Server.Client.delete c k <> e then
          Alcotest.failf "delete %d wrong at step %d" k step;
        model := IS.remove k !model
    | 2 ->
        if Server.Client.member c k <> IS.mem k !model then
          Alcotest.failf "member %d wrong at step %d" k step
    | _ ->
        let add = Rng.int rng 256 in
        let e = IS.mem k !model && not (IS.mem add !model) in
        if Server.Client.replace c ~remove:k ~add <> e then
          Alcotest.failf "replace %d->%d wrong at step %d" k add step;
        if e then model := IS.add add (IS.remove k !model)
  done;
  Alcotest.(check int) "final size" (IS.cardinal !model) (Server.Client.size c)

let test_pipelining_order () =
  with_server ~universe:1_024 @@ fun _ port ->
  with_client port @@ fun c ->
  (* A full window sent before any response is read; responses must
     come back in request order with matching tags, and the effects
     must chain (insert k answered before member k). *)
  let ops =
    List.concat_map (fun k -> [ P.Insert k; P.Member k; P.Delete k ])
      (List.init 100 Fun.id)
  in
  let results = Server.Client.pipeline c ops in
  Alcotest.(check int) "response count" (List.length ops) (List.length results);
  List.iteri
    (fun i r ->
      match r with
      | P.Bool b ->
          if not b then Alcotest.failf "pipelined op %d answered false" i
      | _ -> Alcotest.failf "pipelined op %d: unexpected result" i)
    results

let test_batch () =
  with_server ~universe:512 @@ fun _ port ->
  with_client port @@ fun c ->
  let keys = List.init 300 (fun i -> i) in
  let r1 = Server.Client.batch c (List.map (fun k -> P.Insert k) keys) in
  Alcotest.(check bool) "all inserted" true (List.for_all Fun.id r1);
  let r2 = Server.Client.batch c (List.map (fun k -> P.Member k) keys) in
  Alcotest.(check bool) "all present" true (List.for_all Fun.id r2);
  Alcotest.(check int) "size" 300 (Server.Client.size c)

(* SCAN/RANGE over the wire: paging with resumable cursors against a
   quiescent server, then pipelined scans racing concurrent mutations
   from a second connection — every page must honor the cursor
   contract, and quiescent full scans must equal the trie exactly. *)
let test_scan_pages () =
  with_server ~universe:4_096 @@ fun trie port ->
  with_client port @@ fun c ->
  (* Empty server: one complete, empty page. *)
  let p0 = Server.Client.scan_page ~count:16 c ~cursor:(-1) in
  Alcotest.(check bool) "empty complete" true p0.Server.Client.complete;
  Alcotest.(check (list int)) "empty keys" [] p0.Server.Client.keys;
  (* Populate with a known pattern and page through with a small page
     size; the concatenation must be exactly the contents, ascending. *)
  let keys = List.init 500 (fun i -> (i * 7) mod 4_096) |> List.sort_uniq compare in
  List.iter (fun k -> assert (Server.Client.insert c k)) keys;
  let pages = ref 0 in
  let got = Server.Client.scan ~count:64 ~f:(fun _ -> incr pages) c in
  Alcotest.(check (list int)) "scan equals contents" keys got;
  Alcotest.(check bool) "paged, not one shot" true (!pages >= 7);
  (* Resumable by hand: a page starting past cursor k returns keys > k
     only, and the advertised next_cursor resumes without overlap. *)
  let p1 = Server.Client.scan_page ~count:10 c ~cursor:(-1) in
  let p2 =
    Server.Client.scan_page ~count:10 c ~cursor:p1.Server.Client.next_cursor
  in
  (match (p1.Server.Client.keys, p2.Server.Client.keys) with
  | _ :: _, k2 :: _ ->
      Alcotest.(check bool) "no overlap" true
        (k2 > p1.Server.Client.next_cursor)
  | _ -> Alcotest.fail "expected non-empty pages");
  (* RANGE restricts the walk. *)
  let lo, hi = (100, 900) in
  let want = List.filter (fun k -> k >= lo && k <= hi) keys in
  let got = Server.Client.scan ~count:64 ~range:(lo, hi) c in
  Alcotest.(check (list int)) "range equals filtered contents" want got;
  (* A single page covering the whole universe is atomic: equals the
     trie's to_list at the snapshot point — quiescent, so now. *)
  let p = Server.Client.scan_page ~count:4_096 c ~cursor:(-1) in
  Alcotest.(check bool) "one-page complete" true p.Server.Client.complete;
  Alcotest.(check (list int))
    "one page equals trie" (Core.Patricia.to_list trie) p.Server.Client.keys

let test_scan_interleaved_with_mutations () =
  with_server ~domains:2 ~universe:8_192 @@ fun _ port ->
  with_client port @@ fun scanner ->
  with_client port @@ fun mutator ->
  (* Seed half the universe. *)
  let seeded = List.init 2_048 (fun i -> i * 4) in
  ignore (Server.Client.batch mutator (List.map (fun k -> P.Insert k) seeded));
  (* Pipeline scans from one connection while a second connection
     mutates between pages.  Checks: every page sorted and past its
     cursor (the loadgen verification, inlined), scans terminate, and
     keys never scanned twice within one logical scan. *)
  let stop = Atomic.make false in
  let mut =
    Domain.spawn (fun () ->
        let rng = Rng.of_int_seed 11 in
        let n = ref 0 in
        while not (Atomic.get stop) do
          let k = Rng.int rng 8_192 in
          (match Rng.int rng 3 with
          | 0 -> ignore (Server.Client.insert mutator k)
          | 1 -> ignore (Server.Client.delete mutator k)
          | _ ->
              ignore (Server.Client.replace mutator ~remove:k ~add:(8_191 - k)));
          incr n
        done;
        !n)
  in
  let scans = ref 0 in
  Fun.protect ~finally:(fun () ->
      Atomic.set stop true;
      let muts = Domain.join mut in
      Alcotest.(check bool) "mutator made progress" true (muts > 0))
  @@ fun () ->
  for _ = 1 to 20 do
    let last = ref (-1) in
    let total = ref 0 in
    let keys =
      Server.Client.scan ~count:256
        ~f:(fun p ->
          List.iter
            (fun k ->
              if k <= !last then
                Alcotest.failf "page key %d not past cursor %d" k !last;
              last := k)
            p.Server.Client.keys;
          total := !total + List.length p.Server.Client.keys)
        scanner
    in
    Alcotest.(check int) "no key scanned twice" (List.length keys) !total;
    incr scans
  done;
  Alcotest.(check int) "all scans completed" 20 !scans

let test_app_error_keeps_stream () =
  with_server ~universe:16 @@ fun _ port ->
  with_client port @@ fun c ->
  (* Key 1000 is outside the trie's universe: the operation raises on
     the server, which must answer this request with ERROR and keep
     serving the connection. *)
  let results =
    Server.Client.pipeline c [ P.Insert 3; P.Insert 1000; P.Insert 5 ]
  in
  (match results with
  | [ P.Bool true; P.Error _; P.Bool true ] -> ()
  | _ -> Alcotest.fail "expected Bool/Error/Bool");
  Alcotest.(check int) "stream still usable" 2 (Server.Client.size c)

let read_until_eof fd =
  let buf = Bytes.create 4096 in
  let out = Buffer.create 64 in
  let rec go () =
    match Unix.read fd buf 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes out buf 0 n;
        go ()
  in
  (try go () with Unix.Unix_error (_, _, _) -> ());
  Buffer.to_bytes out

let test_framing_error_closes_connection () =
  with_server ~universe:16 @@ fun _ port ->
  (* Raw socket with a hostile 4 GiB length prefix: the server must
     answer with an ERROR frame tagged seq 0 and close — and other
     connections must be unaffected. *)
  with_client port @@ fun healthy ->
  ignore (Server.Client.insert healthy 1);
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let garbage = Bytes.of_string "\xFF\xFF\xFF\xFF\x00\x00\x00\x00" in
  ignore (Unix.write fd garbage 0 (Bytes.length garbage));
  let answer = read_until_eof fd in
  Unix.close fd;
  (* One well-formed ERROR response frame, tagged seq 0. *)
  let r = P.Reader.create () in
  P.Reader.feed r answer (Bytes.length answer);
  (match P.Reader.next_payload r with
  | `Payload (buf, off, len) -> (
      match P.decode_response buf ~off ~len with
      | Ok { P.seq = 0; result = P.Error _ } -> ()
      | Ok _ -> Alcotest.fail "expected an ERROR response tagged seq 0"
      | Error m -> Alcotest.failf "undecodable error frame: %s" m)
  | `None -> Alcotest.fail "connection closed without an error frame"
  | `Bad m -> Alcotest.failf "server sent an unframeable answer: %s" m);
  (* The healthy connection never noticed. *)
  Alcotest.(check bool) "other connection fine" true
    (Server.Client.member healthy 1)

let test_garbage_bytes_never_kill_workers () =
  with_server ~universe:16 @@ fun _ port ->
  (* A volley of differently-garbled connections, then a real one: if
     any worker domain had died on an exception, the final client
     would hang or fail. *)
  let volleys =
    [
      "\x00\x00\x00\x01\xC8";                         (* short frame, bad opcode *)
      "\x00\x00\x00\x05\x00\x00\x00\x01\xC8";         (* framed, unknown opcode *)
      "\x00\x00\x00\x05\x00\x00\x00\x01\x01";         (* framed, truncated body *)
      "\xFF\xFF\xFF\xFF";                             (* absurd length prefix *)
      "\x00\x00\x00\x00";                             (* zero length prefix *)
      "\x00";                                         (* sub-prefix dribble *)
    ]
  in
  List.iter
    (fun s ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      ignore (Unix.write fd (Bytes.of_string s) 0 (String.length s));
      (* Half-close, so the dribble cases (no complete frame, hence no
         error answer) still reach EOF instead of deadlocking. *)
      (try Unix.shutdown fd Unix.SHUTDOWN_SEND
       with Unix.Unix_error (_, _, _) -> ());
      ignore (read_until_eof fd);
      Unix.close fd)
    volleys;
  with_client port @@ fun c ->
  Alcotest.(check bool) "workers alive" true (Server.Client.insert c 3)

let test_stop_is_graceful_and_idempotent () =
  let _trie, srv = pat_server ~universe:64 () in
  let port = Server.port srv in
  let c = Server.Client.connect ~port () in
  ignore (Server.Client.insert c 1);
  (* In-flight pipelined requests are answered during the drain. *)
  let seqs = Server.Client.send_many c [ P.Member 1; P.Size ] in
  Server.stop ~drain_s:0.5 srv;
  (match List.map (fun s -> Server.Client.expect_seq s (Server.Client.recv c)) seqs with
  | [ P.Bool true; P.Count 1 ] -> ()
  | _ -> Alcotest.fail "drain did not answer in-flight requests");
  Server.Client.close c;
  (* Idempotent. *)
  Server.stop srv;
  (* The port is released: binding it again succeeds. *)
  let sock, port' = Obs.Net.listen_tcp ~addr:"127.0.0.1" ~port ~backlog:1 () in
  Obs.Net.close_noerr sock;
  Alcotest.(check int) "port released" port port'

let test_loadgen_size_accounting () =
  with_server ~domains:3 ~universe:2_048 @@ fun trie port ->
  let prefilled =
    Server.Loadgen.prefill ~port ~universe:2_048 ~seed:11 ()
  in
  Alcotest.(check int) "prefill half" 1_024 prefilled;
  let cfg =
    Server.Loadgen.
      {
        default_config with
        port;
        domains = 3;
        depth = 8;
        seconds = 0.4;
        universe = 2_048;
        mix = Harness.Mix.v ~insert:25 ~delete:25 ~find:25 ~replace:25 ();
        seed = 13;
      }
  in
  let r = Server.Loadgen.run cfg in
  Alcotest.(check int) "no errors" 0 r.Server.Loadgen.errors;
  Alcotest.(check bool) "made progress" true (r.Server.Loadgen.ops > 0);
  (* The whole point of the delta accounting: acknowledged effects add
     up to the observable size, and the server's size agrees with the
     structure underneath it. *)
  with_client port @@ fun c ->
  let final = Server.Client.size c in
  Alcotest.(check int) "size = prefill + delta"
    (prefilled + r.Server.Loadgen.size_delta)
    final;
  Alcotest.(check int) "served size = trie size" (Core.Patricia.size trie) final

(* Linearizability with every operation a network round trip.  The ops
   record hands each recording domain its own connection (the client is
   not domain-safe); [check] audits the trie behind the server. *)
let leaked_servers : Server.t list ref = ref []

let served_pat_ops ~universe () =
  let trie, srv = pat_server ~universe () in
  leaked_servers := srv :: !leaked_servers;
  let port = Server.port srv in
  let key = Domain.DLS.new_key (fun () -> Server.Client.connect ~port ()) in
  let c () = Domain.DLS.get key in
  Tutil.
    {
      label = "PAT/net";
      insert = (fun k -> Server.Client.insert (c ()) k);
      delete = (fun k -> Server.Client.delete (c ()) k);
      member = (fun k -> Server.Client.member (c ()) k);
      to_list = (fun () -> Core.Patricia.to_list trie);
      size = (fun () -> Server.Client.size (c ()));
      check = (fun () -> Core.Patricia.check_invariants trie);
      replace =
        Some (fun ~remove ~add -> Server.Client.replace (c ()) ~remove ~add);
      (* A single SCAN page covering the whole universe is answered
         from one frozen server-side snapshot, so the wire read is
         atomic and the battery checks it as a linearization point. *)
      scan_bits =
        Some
          (fun () ->
            let p =
              Server.Client.scan_page ~count:universe (c ()) ~cursor:(-1)
            in
            if not p.Server.Client.complete then
              Alcotest.fail "universe-sized SCAN page came back incomplete";
            List.fold_left
              (fun acc k -> acc lor (1 lsl k))
              0 p.Server.Client.keys);
    }

let test_linearizable_over_network () =
  Fun.protect ~finally:(fun () ->
      List.iter (Server.stop ~drain_s:0.1) !leaked_servers;
      leaked_servers := [])
  @@ fun () ->
  for round = 1 to 5 do
    Tutil.linearizable_run ~threads:3 ~ops_per_thread:10 ~universe:8
      ~seed:(round * 37) ~with_replace:true served_pat_ops
  done

(* ------------------------------------------------------------------ *)
(* Latency forensics: stage decomposition and the progress watchdog *)

let scrape_server_stages () =
  let b = Obs.Prometheus.create () in
  Server.Metrics.emit b;
  let samples, errors = Obs.Prometheus.parse_samples (Obs.Prometheus.to_string b) in
  Alcotest.(check (list string)) "exposition parses clean" [] errors;
  samples

let stage_sample samples ~op ~stage suffix =
  match
    Obs.Prometheus.find_sample samples
      ~name:("patserve_request_stage_ns" ^ suffix)
      ~labels:[ ("op", op); ("stage", stage) ]
  with
  | Some v -> v
  | None -> Alcotest.failf "missing stage sample %s/%s%s" op stage suffix

let test_stage_decomposition_bounds () =
  Server.Metrics.reset ();
  with_server ~domains:1 ~universe:1_024 @@ fun _ port ->
  with_client port @@ fun c ->
  let n = 200 in
  let t0 = Obs.Clock.now_ns () in
  for k = 0 to n - 1 do
    ignore (Server.Client.insert c k)
  done;
  (* Stages are finalized just after the reply is flushed, so the last
     request can land in the histograms a beat after the client reads
     its response — scrape until it does.  The wall-clock endpoint is
     taken after that settle: the worker's final [w1] stamp races the
     client's last read by a scheduling quantum, so closing the
     interval only once the sample is visible keeps the bound exact
     rather than true-up-to-preemption. *)
  let rec settle tries =
    let samples = scrape_server_stages () in
    if
      stage_sample samples ~op:"insert" ~stage:"total" "_count"
      >= float_of_int n
      || tries = 0
    then samples
    else begin
      Unix.sleepf 0.02;
      settle (tries - 1)
    end
  in
  let samples = settle 100 in
  let wall = Obs.Clock.now_ns () - t0 in
  let count stage = stage_sample samples ~op:"insert" ~stage "_count" in
  let sum stage = stage_sample samples ~op:"insert" ~stage "_sum" in
  Alcotest.(check (float 0.5)) "every request decomposed" (float_of_int n)
    (count "total");
  (* Each stage is recorded exactly once per request. *)
  List.iter
    (fun s ->
      Alcotest.(check (float 0.5)) (s ^ " count matches") (count "total")
        (count s))
    [ "queue"; "decode"; "trie"; "barrier"; "write" ];
  (* The decomposition never accounts for more than the request spent
     in the server, and the server never accounts for more than the
     client measured around the whole run. *)
  let stage_total =
    sum "queue" +. sum "decode" +. sum "trie" +. sum "barrier" +. sum "write"
  in
  if stage_total > sum "total" +. 1.0 then
    Alcotest.failf "stages sum %.0f exceeds total %.0f" stage_total
      (sum "total");
  if sum "total" > float_of_int wall then
    Alcotest.failf
      "server total %.0f exceeds client wall clock %d (stages sum %.0f)"
      (sum "total") wall stage_total

let test_stage_counters_monotone_pipelined () =
  Server.Metrics.reset ();
  with_server ~domains:2 ~universe:4_096 @@ fun _ port ->
  with_client port @@ fun c ->
  let window ks = List.concat_map (fun k -> [ P.Insert k; P.Member k ]) ks in
  ignore (Server.Client.pipeline c (window (List.init 64 Fun.id)));
  let s1 = scrape_server_stages () in
  ignore (Server.Client.pipeline c (window (List.init 64 (fun i -> 64 + i))));
  let rec settle tries =
    let samples = scrape_server_stages () in
    if
      stage_sample samples ~op:"insert" ~stage:"total" "_count" >= 128.0
      || tries = 0
    then samples
    else begin
      Unix.sleepf 0.02;
      settle (tries - 1)
    end
  in
  let s2 = settle 100 in
  List.iter
    (fun op ->
      List.iter
        (fun stage ->
          let c1 = stage_sample s1 ~op ~stage "_count" in
          let c2 = stage_sample s2 ~op ~stage "_count" in
          if c2 < c1 then
            Alcotest.failf "stage counter %s/%s went backwards: %f -> %f" op
              stage c1 c2)
        [ "queue"; "decode"; "trie"; "barrier"; "write"; "total" ])
    [ "insert"; "member" ];
  Alcotest.(check (float 0.5)) "pipelined requests all decomposed" 128.0
    (stage_sample s2 ~op:"insert" ~stage:"total" "_count")

let test_watchdog_stall_and_recovery () =
  (* One worker domain, aggressive thresholds: wedge the worker inside
     the read path with a chaos stall, watch /healthz flip to stalled
     naming the worker, release, watch it recover. *)
  let wd =
    Obs.Watchdog.create ~degraded_after_s:0.1 ~stalled_after_s:0.3 ()
  in
  let trie = Core.Patricia.create ~universe:64 () in
  let ops =
    Server.
      {
        insert = Core.Patricia.insert trie;
        delete = Core.Patricia.delete trie;
        member = Core.Patricia.member trie;
        replace = (fun ~remove ~add -> Core.Patricia.replace trie ~remove ~add);
        size = (fun () -> Core.Patricia.size trie);
        snapshot = (fun () -> Core.Patricia.snapshot_capability trie);
        scan_cut = (fun () -> -1);
      }
  in
  let srv = Server.start ~port:0 ~domains:1 ~watchdog:wd ops in
  let st = Chaos.Stall.install Chaos.Net_read in
  Chaos.set_policy ~name:"stall-worker" (Some (Chaos.Stall.hook st));
  Fun.protect
    ~finally:(fun () ->
      Chaos.Stall.release st;
      Chaos.set_policy None;
      Server.stop ~drain_s:0.2 srv)
  @@ fun () ->
  (* Trigger the read path so the stall captures the worker; the
     connect alone is not enough (the stall sits on Net_read). *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Server.port srv));
  ignore (Unix.write fd (Bytes.make 1 'x') 0 1);
  if not (Chaos.Stall.wait_stalled ~timeout_s:30.0 st) then
    Alcotest.fail "worker never reached the stall point";
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let rec await what pred deadline =
    let code, body = Obs.Watchdog.healthz wd () in
    if pred code body then (code, body)
    else if Obs.Clock.now_ns () > deadline then
      Alcotest.failf "timed out waiting for %s (last: %d %s)" what code body
    else begin
      Unix.sleepf 0.02;
      await what pred deadline
    end
  in
  let deadline () = Obs.Clock.now_ns () + 10_000_000_000 in
  let code, body =
    await "stalled verdict"
      (fun code body -> code = 503 && contains body "worker-")
      (deadline ())
  in
  Alcotest.(check int) "stalled is 503" 503 code;
  Alcotest.(check bool) "verdict names the wedged worker" true
    (contains body "stalled:" && contains body "worker-");
  Alcotest.(check bool) "transition counted" true (Obs.Watchdog.warnings wd > 0);
  Chaos.Stall.release st;
  let code, body =
    await "recovery" (fun code body -> code = 200 && body = "ok\n") (deadline ())
  in
  Alcotest.(check (pair int string)) "recovered" (200, "ok\n") (code, body)

let () =
  Alcotest.run "server"
    [
      ( "semantics",
        [
          Alcotest.test_case "model over network" `Quick test_model_over_network;
          Alcotest.test_case "pipelining order" `Quick test_pipelining_order;
          Alcotest.test_case "batch" `Quick test_batch;
          Alcotest.test_case "scan pages" `Quick test_scan_pages;
          Alcotest.test_case "scan interleaved with mutations" `Quick
            test_scan_interleaved_with_mutations;
        ] );
      ( "errors",
        [
          Alcotest.test_case "app error keeps stream" `Quick
            test_app_error_keeps_stream;
          Alcotest.test_case "framing error closes connection" `Quick
            test_framing_error_closes_connection;
          Alcotest.test_case "garbage never kills workers" `Quick
            test_garbage_bytes_never_kill_workers;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "graceful idempotent stop" `Quick
            test_stop_is_graceful_and_idempotent;
        ] );
      ( "load",
        [
          Alcotest.test_case "stage decomposition bounds" `Quick
            test_stage_decomposition_bounds;
          Alcotest.test_case "stage counters monotone pipelined" `Quick
            test_stage_counters_monotone_pipelined;
          Alcotest.test_case "watchdog stall and recovery" `Quick
            test_watchdog_stall_and_recovery;
          Alcotest.test_case "loadgen size accounting" `Quick
            test_loadgen_size_accounting;
          Alcotest.test_case "linearizable over network" `Quick
            test_linearizable_over_network;
        ] );
    ]

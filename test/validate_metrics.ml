(* Schema validator for the observability artifacts the CI smoke steps
   produce:

     validate_metrics FILE
       metrics JSON written by bench/main.exe and bin/patbench.exe
       (--metrics-json / REPRO_METRICS_JSON): exits 0 iff the file
       parses and every data point carries the documented fields with
       sane values.

     validate_metrics --prometheus FILE [--require FAMILY]...
       a scraped Prometheus exposition: every sample line must parse,
       and each --require'd family must have at least one sample.

     validate_metrics --trace FILE
       a Perfetto/Chrome trace-event file: must parse as JSON and pass
       Obs.Perfetto.validate (schema, clock monotonicity, track
       metadata).

   Exit codes: 0 ok, 1 validation failure, 2 usage/IO error. *)

let errors = ref 0

let err fmt =
  Printf.ksprintf
    (fun m ->
      incr errors;
      Printf.eprintf "validate_metrics: %s\n" m)
    fmt

let require_key obj ctx key =
  match Obs.Json.member obj key with
  | Some v -> Some v
  | None ->
      err "%s: missing key %S" ctx key;
      None

let require_num ctx key = function
  | Some (Obs.Json.Int _ | Obs.Json.Float _) -> ()
  | Some _ -> err "%s: %S is not a number" ctx key
  | None -> ()

let nonneg_num ctx key = function
  | Some (Obs.Json.Int i) when i < 0 -> err "%s: %S is negative" ctx key
  | Some (Obs.Json.Float f) when f < 0.0 -> err "%s: %S is negative" ctx key
  | j -> require_num ctx key j

let check_latency ctx = function
  | Obs.Json.Null -> () (* latency recording was off for this run *)
  | Obs.Json.Obj _ as l ->
      List.iter
        (fun k -> nonneg_num ctx k (require_key l ctx k))
        [ "count"; "min_ns"; "max_ns"; "mean_ns"; "p50_ns"; "p90_ns";
          "p99_ns"; "p999_ns" ];
      (* Percentiles of a latency distribution must be ordered. *)
      (match
         ( Obs.Json.member l "p50_ns",
           Obs.Json.member l "p99_ns",
           Obs.Json.member l "max_ns" )
       with
      | Some (Obs.Json.Int p50), Some (Obs.Json.Int p99), Some (Obs.Json.Int mx)
        ->
          if not (p50 <= p99 && p99 <= mx) then
            err "%s: latency percentiles out of order (%d, %d, %d)" ctx p50
              p99 mx
      | _ -> ())
  | _ -> err "%s: \"latency\" is neither null nor an object" ctx

let check_counters ctx = function
  | Obs.Json.Obj kvs ->
      List.iter
        (fun (k, v) -> nonneg_num ctx ("counters." ^ k) (Some v))
        kvs;
      (* PAT's counter set is emitted whole: a snapshot that has
         "attempts" must also carry the backoff counter added with the
         fault-injection layer. *)
      if List.mem_assoc "attempts" kvs && not (List.mem_assoc "backoff_waits" kvs)
      then err "%s: counters with \"attempts\" lack \"backoff_waits\"" ctx
  | _ -> err "%s: \"counters\" is not an object" ctx

let check_gc ctx = function
  | Obs.Json.Obj _ as g ->
      List.iter
        (fun k -> require_num ctx k (require_key g ctx k))
        [ "minor_words"; "promoted_words"; "major_words";
          "minor_collections"; "major_collections" ]
  | _ -> err "%s: \"gc\" is not an object" ctx

let check_datapoint i dp =
  let ctx = Printf.sprintf "datapoints[%d]" i in
  match dp with
  | Obs.Json.Obj _ ->
      List.iter
        (fun k -> ignore (require_key dp ctx k))
        [ "figure"; "structure"; "mix"; "distribution"; "universe"; "threads";
          "trials"; "throughput_mean_ops_s"; "throughput_stddev_ops_s";
          "throughput_samples_ops_s"; "latency"; "counters"; "gc" ];
      nonneg_num ctx "throughput_mean_ops_s"
        (Obs.Json.member dp "throughput_mean_ops_s");
      (match Obs.Json.member dp "threads" with
      | Some (Obs.Json.Int t) when t >= 1 -> ()
      | Some _ -> err "%s: \"threads\" is not a positive int" ctx
      | None -> ());
      (match Obs.Json.member dp "throughput_samples_ops_s" with
      | Some (Obs.Json.Arr (_ :: _)) -> ()
      | Some (Obs.Json.Arr []) -> err "%s: no throughput samples" ctx
      | Some _ -> err "%s: samples not an array" ctx
      | None -> ());
      Option.iter (check_latency ctx) (Obs.Json.member dp "latency");
      Option.iter (check_counters ctx) (Obs.Json.member dp "counters");
      Option.iter (check_gc ctx) (Obs.Json.member dp "gc")
  | _ -> err "%s: not an object" ctx

let read_file path =
  match open_in_bin path with
  | exception Sys_error m ->
      Printf.eprintf "validate_metrics: %s\n" m;
      exit 2
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))

(* --prometheus FILE [--require FAMILY]... *)
let validate_prometheus path required =
  let text = read_file path in
  let samples, parse_errors = Obs.Prometheus.parse_samples text in
  List.iter (fun m -> err "%s: %s" path m) parse_errors;
  if samples = [] then err "%s: exposition has no samples" path;
  List.iter
    (fun family ->
      let present =
        List.exists
          (fun s ->
            let n = s.Obs.Prometheus.s_name in
            n = family
            || n = family ^ "_count"
            || n = family ^ "_sum"
            || n = family ^ "_total")
          samples
      in
      if not present then err "%s: required family %S has no samples" path family)
    required;
  if !errors > 0 then begin
    Printf.eprintf "validate_metrics: %s: %d error(s)\n" path !errors;
    exit 1
  end;
  Printf.printf "validate_metrics: %s ok (%d samples, %d families required)\n"
    path (List.length samples) (List.length required)

(* --trace FILE *)
let validate_trace path =
  let doc =
    match Obs.Json.of_string (read_file path) with
    | doc -> doc
    | exception Obs.Json.Parse_error m ->
        Printf.eprintf "validate_metrics: %s does not parse: %s\n" path m;
        exit 1
  in
  match Obs.Perfetto.validate doc with
  | Error m ->
      Printf.eprintf "validate_metrics: %s: invalid trace: %s\n" path m;
      exit 1
  | Ok () ->
      let events =
        match Obs.Json.member doc "traceEvents" with
        | Some (Obs.Json.Arr evs) -> List.length evs
        | _ -> 0
      in
      Printf.printf "validate_metrics: %s ok (%d trace events)\n" path events

let () =
  let path =
    match Array.to_list Sys.argv with
    | [ _; "--trace"; p ] ->
        validate_trace p;
        exit 0
    | _ :: "--prometheus" :: p :: rest ->
        let rec requires = function
          | [] -> []
          | "--require" :: f :: tl -> f :: requires tl
          | _ ->
              prerr_endline
                "usage: validate_metrics --prometheus FILE [--require \
                 FAMILY]...";
              exit 2
        in
        validate_prometheus p (requires rest);
        exit 0
    | [ _; p ] -> p
    | _ ->
        prerr_endline
          "usage: validate_metrics FILE\n\
          \       validate_metrics --prometheus FILE [--require FAMILY]...\n\
          \       validate_metrics --trace FILE";
        exit 2
  in
  let contents = read_file path in
  let doc =
    match Obs.Json.of_string contents with
    | doc -> doc
    | exception Obs.Json.Parse_error m ->
        Printf.eprintf "validate_metrics: %s does not parse: %s\n" path m;
        exit 1
  in
  (match Obs.Json.member doc "schema_version" with
  | Some (Obs.Json.Int 1) -> ()
  | Some _ -> err "schema_version is not 1"
  | None -> err "missing schema_version");
  (match Obs.Json.member doc "benchmark" with
  | Some (Obs.Json.Str _) -> ()
  | _ -> err "missing or non-string \"benchmark\"");
  (match Obs.Json.member doc "config" with
  | Some (Obs.Json.Obj _ as cfg) ->
      (* Chaos-mode metadata: a metrics file must say whether retry
         backoff or fault injection was live, so runs with and without
         are never compared by accident. *)
      List.iter
        (fun k ->
          match Obs.Json.member cfg k with
          | Some (Obs.Json.Bool _) -> ()
          | Some _ -> err "config: %S is not a boolean" k
          | None -> err "config: missing key %S" k)
        [ "backoff"; "chaos_injection" ]
  | _ -> err "missing or non-object \"config\"");
  let n =
    match Option.bind (Obs.Json.member doc "datapoints") Obs.Json.to_list_opt
    with
    | Some dps ->
        List.iteri check_datapoint dps;
        List.length dps
    | None ->
        err "missing \"datapoints\" array";
        0
  in
  if n = 0 then err "metrics file has no datapoints";
  if !errors > 0 then begin
    Printf.eprintf "validate_metrics: %s: %d error(s)\n" path !errors;
    exit 1
  end;
  Printf.printf "validate_metrics: %s ok (%d datapoints)\n" path n

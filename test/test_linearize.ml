(* Tests for the linearizability checker itself: it must accept exactly
   the histories that have a valid sequential witness. *)

open Linearize

let ok name h = Alcotest.(check bool) name true (check h)
let bad name h = Alcotest.(check bool) name false (check h)

let test_empty () = ok "empty history" [||]

let test_sequential_valid () =
  ok "insert, member, delete"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Member 1; result = Bool true; invoke = 2; return = 3 };
      { kind = Delete 1; result = Bool true; invoke = 4; return = 5 };
      { kind = Member 1; result = Bool false; invoke = 6; return = 7 };
    |]

let test_sequential_invalid () =
  bad "member false after insert"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Member 1; result = Bool false; invoke = 2; return = 3 };
    |];
  bad "double insert both true"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Insert 1; result = Bool true; invoke = 2; return = 3 };
    |];
  bad "delete absent returns true"
    [| { kind = Delete 5; result = Bool true; invoke = 0; return = 1 } |]

let test_overlap_reorders () =
  (* The member overlaps the insert, so it may linearize before it. *)
  ok "overlapping member may miss insert"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 3 };
      { kind = Member 1; result = Bool false; invoke = 1; return = 2 };
    |];
  ok "overlapping member may see insert"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 3 };
      { kind = Member 1; result = Bool true; invoke = 1; return = 2 };
    |];
  (* But a member that starts after the insert returned must see it. *)
  bad "real-time order enforced"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Member 1; result = Bool false; invoke = 2; return = 3 };
    |]

let test_concurrent_inserts () =
  (* Two overlapping inserts of the same key: exactly one may win. *)
  ok "one winner"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 3 };
      { kind = Insert 1; result = Bool false; invoke = 1; return = 2 };
    |];
  bad "two winners"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 3 };
      { kind = Insert 1; result = Bool true; invoke = 1; return = 2 };
    |]

let test_replace_semantics () =
  ok "replace moves the key"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Replace (1, 2); result = Bool true; invoke = 2; return = 3 };
      { kind = Member 1; result = Bool false; invoke = 4; return = 5 };
      { kind = Member 2; result = Bool true; invoke = 6; return = 7 };
    |];
  bad "replace with absent source"
    [| { kind = Replace (1, 2); result = Bool true; invoke = 0; return = 1 } |];
  bad "replace onto present target"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Insert 2; result = Bool true; invoke = 2; return = 3 };
      { kind = Replace (1, 2); result = Bool true; invoke = 4; return = 5 };
    |];
  bad "replace same key never succeeds"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Replace (1, 1); result = Bool true; invoke = 2; return = 3 };
    |]

let test_replace_atomicity () =
  (* A read concurrent with a replace may see the old state or the new
     state, but never "both keys" or "neither key": both members below
     run strictly inside the replace window yet strictly after each
     other cannot... they are sequential with each other, so seeing
     (1 absent) then (2 absent) would require a moment with neither key. *)
  bad "no intermediate state visible"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Replace (1, 2); result = Bool true; invoke = 2; return = 9 };
      { kind = Member 1; result = Bool false; invoke = 3; return = 4 };
      { kind = Member 2; result = Bool false; invoke = 5; return = 6 };
    |];
  bad "both keys never visible"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Replace (1, 2); result = Bool true; invoke = 2; return = 9 };
      { kind = Member 2; result = Bool true; invoke = 3; return = 4 };
      { kind = Member 1; result = Bool true; invoke = 5; return = 6 };
    |]

let test_scan_semantics () =
  (* A scan after a sequential prefix must report exactly the masked
     state at some moment. *)
  ok "scan sees the settled state"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Insert 3; result = Bool true; invoke = 2; return = 3 };
      { kind = Scan (0, 7); result = Keys 0b1010; invoke = 4; return = 5 };
    |];
  bad "scan missing a settled key"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Insert 3; result = Bool true; invoke = 2; return = 3 };
      { kind = Scan (0, 7); result = Keys 0b1000; invoke = 4; return = 5 };
    |];
  bad "scan with a phantom key"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Scan (0, 7); result = Keys 0b110; invoke = 2; return = 3 };
    |];
  (* Range masking: keys outside [lo, hi] are invisible to the scan. *)
  ok "scan masks to its range"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Insert 5; result = Bool true; invoke = 2; return = 3 };
      { kind = Scan (4, 7); result = Keys 0b100000; invoke = 4; return = 5 };
    |]

let test_scan_atomicity () =
  (* A scan concurrent with replace(1 -> 2) may report the old state or
     the new state... *)
  ok "scan sees pre-replace state"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Replace (1, 2); result = Bool true; invoke = 2; return = 7 };
      { kind = Scan (0, 7); result = Keys 0b010; invoke = 3; return = 4 };
    |];
  ok "scan sees post-replace state"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Replace (1, 2); result = Bool true; invoke = 2; return = 7 };
      { kind = Scan (0, 7); result = Keys 0b100; invoke = 3; return = 4 };
    |];
  (* ...but never the torn intermediate states a non-atomic walk could
     produce: both keys, or neither. *)
  bad "scan never sees both replace keys"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Replace (1, 2); result = Bool true; invoke = 2; return = 7 };
      { kind = Scan (0, 7); result = Keys 0b110; invoke = 3; return = 4 };
    |];
  bad "scan never sees neither replace key"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Replace (1, 2); result = Bool true; invoke = 2; return = 7 };
      { kind = Scan (0, 7); result = Keys 0; invoke = 3; return = 4 };
    |];
  (* The non-atomic signature of a weakly-consistent walk racing two
     inserts: reporting the later key but not the earlier one has no
     witness moment. *)
  bad "torn walk across two inserts"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Insert 2; result = Bool true; invoke = 2; return = 3 };
      { kind = Scan (0, 7); result = Keys 0b100; invoke = 4; return = 5 };
    |];
  (* A scan strictly between two settled mutations pins its moment. *)
  ok "scan between mutations"
    [|
      { kind = Insert 1; result = Bool true; invoke = 0; return = 1 };
      { kind = Scan (0, 7); result = Keys 0b10; invoke = 2; return = 3 };
      { kind = Delete 1; result = Bool true; invoke = 4; return = 5 };
      { kind = Scan (0, 7); result = Keys 0; invoke = 6; return = 7 };
    |]

let test_initial_state () =
  Alcotest.(check bool) "initial contents honoured" true
    (check ~initial:0b10
       [| { kind = Member 1; result = Bool true; invoke = 0; return = 1 } |]);
  Alcotest.(check bool) "initial contents honoured (negative)" false
    (check ~initial:0
       [| { kind = Member 1; result = Bool true; invoke = 0; return = 1 } |])

let test_limits () =
  Alcotest.check_raises "too many keys"
    (Invalid_argument "Linearize: key too large") (fun () ->
      ignore (check [| { kind = Member 62; result = Bool true; invoke = 0; return = 1 } |]))

let test_interleaving_search () =
  (* Pairwise-overlapping operations whose only witness interleaves them
     in a non-obvious order: insert(1)=false must come while 1 is still
     present, i.e. before the delete. *)
  Alcotest.(check bool) "witness exists" true
    (check ~initial:0b10
       [|
         { kind = Delete 1; result = Bool true; invoke = 0; return = 10 };
         { kind = Member 1; result = Bool false; invoke = 1; return = 9 };
         { kind = Insert 1; result = Bool false; invoke = 2; return = 8 };
       |]);
  (* Without a delete, key 1 stays present and member(1)=false has no
     witness even though insert(1)=false is individually consistent. *)
  Alcotest.(check bool) "no witness" false
    (check ~initial:0b10
       [|
         { kind = Member 1; result = Bool false; invoke = 1; return = 9 };
         { kind = Insert 1; result = Bool false; invoke = 2; return = 8 };
       |])

let test_recorder () =
  let r = Recorder.create ~threads:2 in
  ignore (Recorder.record r ~thread:0 (Insert 3) (fun () -> true));
  ignore (Recorder.record r ~thread:1 (Member 3) (fun () -> true));
  let h = Recorder.history r in
  Alcotest.(check int) "two ops" 2 (Array.length h);
  Array.iter
    (fun op ->
      Alcotest.(check bool) "invoke before return" true (op.invoke < op.return))
    h;
  Alcotest.(check bool) "recorded history checks" true (check h)

let prop_sequential_histories_always_ok =
  (* Any history generated by running ops sequentially against the spec
     itself must be accepted. *)
  Tutil.qtest ~count:300 "sequential spec histories accepted"
    QCheck2.Gen.(list_size (int_bound 20) (pair (int_bound 4) (int_bound 7)))
    (fun ops ->
      let state = ref 0 in
      let clock = ref 0 in
      let hist =
        List.map
          (fun (op, k) ->
            let kind =
              match op with
              | 0 -> Insert k
              | 1 -> Delete k
              | 2 -> Member k
              | 3 -> Replace (k, (k + 3) mod 8)
              | _ -> Scan (min k 4, 7)
            in
            let result, state' = Linearize.apply !state kind in
            state := state';
            let invoke = !clock in
            incr clock;
            let return = !clock in
            incr clock;
            { kind; result; invoke; return })
          ops
      in
      check (Array.of_list hist))

let () =
  Alcotest.run "linearize"
    [
      ( "checker",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "sequential valid" `Quick test_sequential_valid;
          Alcotest.test_case "sequential invalid" `Quick test_sequential_invalid;
          Alcotest.test_case "overlap reorders" `Quick test_overlap_reorders;
          Alcotest.test_case "concurrent inserts" `Quick test_concurrent_inserts;
          Alcotest.test_case "replace semantics" `Quick test_replace_semantics;
          Alcotest.test_case "replace atomicity" `Quick test_replace_atomicity;
          Alcotest.test_case "scan semantics" `Quick test_scan_semantics;
          Alcotest.test_case "scan atomicity" `Quick test_scan_atomicity;
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "limits" `Quick test_limits;
          Alcotest.test_case "interleaving search" `Quick test_interleaving_search;
          Alcotest.test_case "recorder" `Quick test_recorder;
          prop_sequential_histories_always_ok;
        ] );
    ]

(* The CRC-32 implementations against published check vectors, plus the
   algebraic properties the WAL relies on (incremental composition,
   sensitivity to any single-bit flip). *)

module Crc = Persist.Crc

let hex = Printf.sprintf "0x%08X"

let check_vec name f s expected () =
  Alcotest.(check string) (name ^ " of " ^ String.escaped s) (hex expected)
    (hex (f s))

(* The canonical "check" value every CRC catalogue publishes is the CRC
   of the ASCII string "123456789". *)
let vectors =
  [
    ("crc32 check", Crc.crc32_string, "123456789", 0xCBF43926);
    ("crc32c check", Crc.crc32c_string, "123456789", 0xE3069283);
    ("crc32 empty", Crc.crc32_string, "", 0);
    ("crc32c empty", Crc.crc32c_string, "", 0);
    (* zlib's documented example vector. *)
    ( "crc32 fox",
      Crc.crc32_string,
      "The quick brown fox jumps over the lazy dog",
      0x414FA339 );
    ( "crc32c fox",
      Crc.crc32c_string,
      "The quick brown fox jumps over the lazy dog",
      0x22620404 );
    ("crc32 a", Crc.crc32_string, "a", 0xE8B7BE43);
    ("crc32c a", Crc.crc32c_string, "a", 0xC1D04330);
    ("crc32 zeros", Crc.crc32_string, String.make 32 '\000', 0x190A55AD);
    ("crc32c zeros", Crc.crc32c_string, String.make 32 '\000', 0x8A9136AA);
    ("crc32 ones", Crc.crc32_string, String.make 32 '\255', 0xFF6CAB0B);
    ("crc32c ones", Crc.crc32c_string, String.make 32 '\255', 0x62A8AB43);
  ]

let test_incremental () =
  let rng = Rng.of_int_seed 11 in
  for _ = 1 to 100 do
    let len = Rng.int rng 200 in
    let b = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    let cut = if len = 0 then 0 else Rng.int rng (len + 1) in
    let whole = Crc.crc32c b ~off:0 ~len in
    let part =
      Crc.crc32c
        ~crc:(Crc.crc32c b ~off:0 ~len:cut)
        b ~off:cut ~len:(len - cut)
    in
    Alcotest.(check string) "split = whole" (hex whole) (hex part);
    let whole32 = Crc.crc32 b ~off:0 ~len in
    let part32 =
      Crc.crc32 ~crc:(Crc.crc32 b ~off:0 ~len:cut) b ~off:cut ~len:(len - cut)
    in
    Alcotest.(check string) "split = whole (ieee)" (hex whole32) (hex part32)
  done

let test_bit_flip_detected () =
  let rng = Rng.of_int_seed 12 in
  for _ = 1 to 100 do
    let len = 1 + Rng.int rng 100 in
    let b = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    let c0 = Crc.crc32c b ~off:0 ~len in
    let i = Rng.int rng len and bit = Rng.int rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    let c1 = Crc.crc32c b ~off:0 ~len in
    if c0 = c1 then Alcotest.fail "single-bit flip not detected"
  done

let test_range () =
  let b = Bytes.make 8 'x' in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | (_ : int) -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Crc.crc32c b ~off:(-1) ~len:4);
  expect_invalid (fun () -> Crc.crc32c b ~off:0 ~len:9);
  expect_invalid (fun () -> Crc.crc32c b ~off:6 ~len:3);
  expect_invalid (fun () -> Crc.crc32c b ~off:2 ~len:(-1));
  (* In-range sub-slices are fine, including the empty one at the end. *)
  ignore (Crc.crc32c b ~off:8 ~len:0 : int);
  ignore (Crc.crc32c b ~off:3 ~len:5 : int)

let test_result_range () =
  let rng = Rng.of_int_seed 13 in
  for _ = 1 to 200 do
    let len = Rng.int rng 64 in
    let b = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    let c = Crc.crc32c b ~off:0 ~len in
    if c < 0 || c > 0xFFFFFFFF then
      Alcotest.failf "crc out of [0, 2^32): %d" c
  done

let () =
  Alcotest.run "crc"
    [
      ( "vectors",
        List.map
          (fun (name, f, s, exp) ->
            Alcotest.test_case name `Quick (check_vec name f s exp))
          vectors );
      ( "properties",
        [
          Alcotest.test_case "incremental composition" `Quick test_incremental;
          Alcotest.test_case "bit flips detected" `Quick test_bit_flip_detected;
          Alcotest.test_case "offset/length validation" `Quick test_range;
          Alcotest.test_case "result in range" `Quick test_result_range;
        ] );
    ]

(* Tests for the live scrape endpoint (Obs.Serve + Harness.Live): an
   ephemeral-port server scraped by a raw-socket HTTP client while a
   concurrent trie workload runs, plus routing and shutdown behavior. *)

module S = Obs.Serve
module A = Obs.Attribution

(* ------------------------------------------------------------------ *)
(* Minimal HTTP/1.1 client over stdlib Unix, mirroring what curl or a
   Prometheus scraper sends. *)

let http_request ?(meth = "GET") ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req =
    Printf.sprintf "%s %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
      meth path
  in
  let b = Bytes.of_string req in
  let rec send off =
    if off < Bytes.length b then
      send (off + Unix.write fd b off (Bytes.length b - off))
  in
  send 0;
  let buf = Bytes.create 65536 in
  let out = Buffer.create 65536 in
  let rec recv () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes out buf 0 n;
        recv ()
  in
  recv ();
  let raw = Buffer.contents out in
  (* Split status line + headers from body at the blank line. *)
  let headers, body =
    let rec find i =
      if i + 3 >= String.length raw then (raw, "")
      else if String.sub raw i 4 = "\r\n\r\n" then
        (String.sub raw 0 i, String.sub raw (i + 4) (String.length raw - i - 4))
      else find (i + 1)
    in
    find 0
  in
  let status =
    match String.split_on_char ' ' headers with
    | _ :: code :: _ -> int_of_string code
    | _ -> 0
  in
  (status, headers, body)

(* Value of a un-labelled sample line, e.g. "repro_ops_total 42". *)
let sample_value body name =
  let prefix = name ^ " " in
  let lines = String.split_on_char '\n' body in
  match
    List.find_opt
      (fun l ->
        String.length l > String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      lines
  with
  | Some l ->
      float_of_string
        (String.sub l (String.length prefix)
           (String.length l - String.length prefix))
  | None -> Alcotest.fail (Printf.sprintf "no sample %S in exposition" name)

(* Structural check of the text exposition: every non-empty line is a
   comment or "name[{labels}] value" with a parseable float value, and
   each metric family's samples are contiguous (HELP/TYPE declared once,
   before first use). *)
let check_exposition body =
  let family_of line =
    match String.index_opt line '{' with
    | Some i -> String.sub line 0 i
    | None -> (
        match String.index_opt line ' ' with
        | Some i -> String.sub line 0 i
        | None -> line)
  in
  (* A summary's quantile samples share the family of their _count/_sum. *)
  let base f =
    let strip suffix f =
      if Filename.check_suffix f suffix then Filename.chop_suffix f suffix
      else f
    in
    strip "_count" (strip "_sum" f)
  in
  let seen = Hashtbl.create 32 in
  let last = ref "" in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then begin
        (match String.rindex_opt line ' ' with
        | None -> Alcotest.fail (Printf.sprintf "sample without value: %S" line)
        | Some i -> (
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            match float_of_string_opt v with
            | Some _ -> ()
            | None ->
                Alcotest.fail (Printf.sprintf "unparseable value in %S" line)));
        let fam = base (family_of line) in
        if fam <> !last then begin
          if Hashtbl.mem seen fam then
            Alcotest.fail
              (Printf.sprintf "family %S not contiguous in exposition" fam);
          Hashtbl.add seen fam ();
          last := fam
        end
      end)
    (String.split_on_char '\n' body)

(* ------------------------------------------------------------------ *)
(* Routing, status codes, shutdown *)

let test_serve_routing () =
  let srv = S.start ~port:0 (fun () -> "# scrape\nup 1\n") in
  Fun.protect ~finally:(fun () -> S.stop srv) @@ fun () ->
  let port = S.port srv in
  Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
  let status, headers, body = http_request ~port "/metrics" in
  Alcotest.(check int) "metrics 200" 200 status;
  Alcotest.(check string) "producer body" "# scrape\nup 1\n" body;
  Alcotest.(check bool)
    "prometheus content type" true
    (let ct = "text/plain; version=0.0.4" in
     let rec contains i =
       i + String.length ct <= String.length headers
       && (String.sub headers i (String.length ct) = ct || contains (i + 1))
     in
     contains 0);
  let status, _, _ = http_request ~port "/metrics?debug=1" in
  Alcotest.(check int) "query string stripped" 200 status;
  let status, _, body = http_request ~port "/healthz" in
  Alcotest.(check int) "healthz 200" 200 status;
  Alcotest.(check string) "healthz body" "ok\n" body;
  let status, _, _ = http_request ~port "/nope" in
  Alcotest.(check int) "unknown path 404" 404 status;
  let status, _, _ = http_request ~meth:"POST" ~port "/metrics" in
  Alcotest.(check int) "non-GET 405" 405 status

let test_serve_producer_failure_is_500 () =
  let srv = S.start ~port:0 (fun () -> failwith "snapshot exploded") in
  Fun.protect ~finally:(fun () -> S.stop srv) @@ fun () ->
  let status, _, _ = http_request ~port:(S.port srv) "/metrics" in
  Alcotest.(check int) "producer exception is 500" 500 status;
  (* The listener survives a producer failure. *)
  let status, _, _ = http_request ~port:(S.port srv) "/healthz" in
  Alcotest.(check int) "still serving" 200 status

let test_serve_stop () =
  let srv = S.start ~port:0 (fun () -> "x\n") in
  let port = S.port srv in
  let status, _, _ = http_request ~port "/healthz" in
  Alcotest.(check int) "serving before stop" 200 status;
  S.stop srv;
  S.stop srv;
  (* idempotent *)
  Alcotest.(check bool)
    "connection refused after stop" true
    (let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     Fun.protect
       ~finally:(fun () ->
         try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
     @@ fun () ->
     match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
     | () -> false
     | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> true)

(* ------------------------------------------------------------------ *)
(* Scraping the real Harness.Live exposition during a concurrent trie
   workload: counters are present, the exposition is well-formed, and
   repro_ops_total is monotone across two scrapes. *)

let run_batch trie =
  let worker seed =
    Domain.spawn (fun () ->
        let rng = Rng.of_int_seed seed in
        for _ = 1 to 10_000 do
          let k = Rng.int rng 512 in
          (if Rng.int rng 2 = 0 then ignore (Core.Patricia.insert trie k)
           else ignore (Core.Patricia.delete trie k));
          Harness.Live.tick ()
        done)
  in
  let ds = [ worker 11; worker 23 ] in
  List.iter Domain.join ds

let test_serve_live_scrape () =
  Harness.Live.set_enabled true;
  A.set_enabled true;
  let srv = S.start ~port:0 Harness.Live.prometheus in
  Fun.protect
    ~finally:(fun () ->
      S.stop srv;
      A.set_enabled false;
      Harness.Live.set_enabled false)
  @@ fun () ->
  let port = S.port srv in
  let trie = Core.Patricia.create ~universe:512 () in
  (* First batch runs concurrently with the first scrape; the second
     scrape happens after both batches completed, so it must observe
     every tick the first scrape observed, and then some. *)
  let batch1 = Domain.spawn (fun () -> run_batch trie) in
  let status, _, body1 = http_request ~port "/metrics" in
  Alcotest.(check int) "mid-run scrape 200" 200 status;
  Domain.join batch1;
  run_batch trie;
  let status, _, body2 = http_request ~port "/metrics" in
  Alcotest.(check int) "second scrape 200" 200 status;
  check_exposition body1;
  check_exposition body2;
  Alcotest.(check bool) "up" true (sample_value body2 "repro_up" = 1.0);
  let ops1 = sample_value body1 "repro_ops_total" in
  let ops2 = sample_value body2 "repro_ops_total" in
  Alcotest.(check bool)
    "ops_total monotone across scrapes" true
    (ops2 >= ops1);
  (* After both batches joined, the striped counter sum is exact. *)
  Alcotest.(check (float 0.0)) "ops_total exact" 40_000.0 ops2;
  (* The attribution families are exposed (five causes, zero or not). *)
  List.iter
    (fun c ->
      let line =
        Printf.sprintf "repro_retry_cause_total{cause=\"%s\"}" (A.cause_name c)
      in
      let rec contains i =
        i + String.length line <= String.length body2
        && (String.sub body2 i (String.length line) = line || contains (i + 1))
      in
      Alcotest.(check bool) line true (contains 0))
    [ A.Flag_cas_lost; A.Child_cas_lost; A.Flagged_ancestor; A.Backtrack;
      A.Conflict ]

(* ------------------------------------------------------------------ *)
(* Health hook and custom routes (the watchdog/slowlog wiring) *)

let test_serve_health_hook () =
  (* The /healthz body is whatever the hook says, with its status code:
     degraded stays 200 (scrape keeps working), stalled is 503 (load
     balancers drain), a throwing hook is a 500, and the default
     hook-less endpoint still answers ok. *)
  let verdict = ref (200, "ok\n") in
  let s =
    S.start ~port:0 ~health:(fun () -> !verdict) (fun () -> "x 1\n")
  in
  Fun.protect ~finally:(fun () -> S.stop s) @@ fun () ->
  let port = S.port s in
  let code, _, body = http_request ~port "/healthz" in
  Alcotest.(check (pair int string)) "ok" (200, "ok\n") (code, body);
  verdict := (200, "degraded: wal-queue=12 above degraded threshold 10\n");
  let code, _, body = http_request ~port "/healthz" in
  Alcotest.(check int) "degraded stays 200" 200 code;
  Alcotest.(check string) "degraded body" (snd !verdict) body;
  verdict := (503, "stalled: worker-1 stalled for 6.0s\n");
  let code, _, body = http_request ~port "/healthz" in
  Alcotest.(check int) "stalled is 503" 503 code;
  Alcotest.(check string) "stalled body" (snd !verdict) body

let test_serve_health_hook_exception () =
  let s =
    S.start ~port:0 ~health:(fun () -> failwith "probe boom") (fun () -> "x 1\n")
  in
  Fun.protect ~finally:(fun () -> S.stop s) @@ fun () ->
  let code, _, _ = http_request ~port:(S.port s) "/healthz" in
  Alcotest.(check int) "throwing hook is 500" 500 code

let test_serve_custom_routes () =
  let hits = Atomic.make 0 in
  let routes =
    [
      ( "/debug/slowlog",
        fun () ->
          Atomic.incr hits;
          ("application/json", "{\"entries\": []}\n") );
    ]
  in
  let s = S.start ~port:0 ~routes (fun () -> "x 1\n") in
  Fun.protect ~finally:(fun () -> S.stop s) @@ fun () ->
  let port = S.port s in
  let code, headers, body = http_request ~port "/debug/slowlog" in
  Alcotest.(check int) "route answers 200" 200 code;
  Alcotest.(check string) "route body" "{\"entries\": []}\n" body;
  let rec contains hay i =
    i + 16 <= String.length hay
    && (String.sub hay i 16 = "application/json" || contains hay (i + 1))
  in
  Alcotest.(check bool) "content type honoured" true (contains headers 0);
  Alcotest.(check int) "handler ran once" 1 (Atomic.get hits);
  (* Routes do not shadow the built-ins, and misses still 404. *)
  let code, _, _ = http_request ~port "/metrics" in
  Alcotest.(check int) "metrics still served" 200 code;
  let code, _, _ = http_request ~port "/debug/other" in
  Alcotest.(check int) "unknown path 404s" 404 code

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "serve",
        [
          Alcotest.test_case "routing and status codes" `Quick
            test_serve_routing;
          Alcotest.test_case "producer failure is 500" `Quick
            test_serve_producer_failure_is_500;
          Alcotest.test_case "stop is clean and idempotent" `Quick
            test_serve_stop;
          Alcotest.test_case "live scrape under concurrent workload" `Quick
            test_serve_live_scrape;
          Alcotest.test_case "health hook verdicts" `Quick
            test_serve_health_hook;
          Alcotest.test_case "health hook exception is 500" `Quick
            test_serve_health_hook_exception;
          Alcotest.test_case "custom routes" `Quick test_serve_custom_routes;
        ] );
    ]

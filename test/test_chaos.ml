(* Fault-injection suite: stalled-domain scenarios, chaos schedules and
   the contention-backoff counter (lib/chaos).

   The stall tests freeze one domain ("the victim") at a labeled point
   inside an update — after flagging but before the child CAS, between
   the two child CASes of a replace, or after the child CAS but before
   unflagging — and then let other domains run.  Lock-freedom (paper
   Section IV, part 4) demands that the other domains finish the frozen
   update themselves; we assert that they did *before* the victim is
   released, so the victim cannot have contributed.

   CHAOS_SEED seeds every randomized schedule in this file; the CI chaos
   job runs once with the default and once with a random seed, printing
   it for reproduction. *)

module P = Core.Patricia
module V = Core.Patricia_vlk

let chaos_seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> int_of_string s
  | None -> 2013

let () = Printf.printf "test_chaos: CHAOS_SEED=%d\n%!" chaos_seed

let check_ok ?(ctx = "") t =
  match P.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants violated%s: %s" ctx e

(* ------------------------------------------------------------------ *)
(* Stalled-domain scenarios *)

(* Keys are chosen by their internal representation (external key + 1,
   width 5 for universe 16): 11 and 12 map to the sibling bit-strings
   01100/01101, 9 maps to 01010 (same top subtree, so updates on 9 flag
   an ancestor of 11/12's leaves), and 15 maps to 10000 (the opposite
   top subtree, making replace 9 -> 15 take the general two-child-CAS
   path).  Workers hammer 11 and 12: their deletes must flag the very
   nodes the victim left flagged, which forces them to help. *)
let scenario ~name ~prefill ~op ~site ~after ~watch ~expect () =
  let t = P.create ~universe:16 ~record_stats:true () in
  List.iter (fun k -> ignore (P.insert t k)) prefill;
  let st = Chaos.Stall.install ~after site in
  Chaos.set_policy ~name (Some (Chaos.Stall.hook st));
  let stop = Atomic.make false in
  let result = Atomic.make false in
  Fun.protect
    ~finally:(fun () ->
      (* On any failure path: unpark everyone so no domain spins forever,
         then uninstall the policy for the next test. *)
      Atomic.set stop true;
      Chaos.Stall.release st;
      Chaos.set_policy None)
  @@ fun () ->
  let victim = Domain.spawn (fun () -> Atomic.set result (op t)) in
  if not (Chaos.Stall.wait_stalled ~timeout_s:60.0 st) then begin
    ignore (Domain.join victim);
    Alcotest.failf "%s: victim never reached the stall point" name
  end;
  let workers =
    Tutil.spawn_n 3 (fun d ->
        let keys = [| 11; 12 |] in
        let i = ref d in
        while not (Atomic.get stop) do
          let k = keys.(!i mod 2) in
          incr i;
          ignore (P.delete t k);
          ignore (P.insert t k)
        done)
  in
  let helped () =
    match P.stats_snapshot t with
    | Some s -> s.helps_received > 0
    | None -> false
  in
  (* [helps_received] can also be bumped by the workers helping *each
     other*, so on its own it does not prove the victim's descriptor was
     completed.  Additionally require the watched paths to be flag-free:
     the frozen victim cannot clear its own flag, so observing zero
     flags there means a helper ran the frozen update to completion
     (worker flags on the same path are transient and drain; the
     victim's is permanent until helped, so polling eventually sees a
     clean moment iff the help happened). *)
  let flags_drained () =
    List.for_all (fun k -> P.For_testing.flags_on_path t k = 0) watch
  in
  let completed =
    Chaos.Backoff.wait_until ~timeout_s:60.0 (fun () ->
        expect t && helped () && flags_drained ())
  in
  Atomic.set stop true;
  Tutil.join_all workers |> ignore;
  if not completed then
    Alcotest.failf "%s: helpers did not complete the frozen update (helped=%b)"
      name (helped ());
  (* The victim is still frozen at this point and the workers have
     drained, so the trie is quiescent except for the spinning victim:
     only helpers can have run the frozen descriptor to completion. *)
  List.iter
    (fun k ->
      let f = P.For_testing.flags_on_path t k in
      if f <> 0 then
        Alcotest.failf "%s: %d residual flag(s) on the path of %d" name f k)
    watch;
  if not (expect t) then
    Alcotest.failf "%s: update effect lost after workers drained" name;
  (match P.stats_snapshot t with
  | Some s ->
      if s.helps_received = 0 then
        Alcotest.failf "%s: no helping recorded for the frozen update" name
  | None -> Alcotest.fail "stats not recorded");
  check_ok ~ctx:(" in " ^ name ^ " with the victim frozen") t;
  Chaos.Stall.release st;
  ignore (Domain.join victim);
  if not (Atomic.get result) then
    Alcotest.failf "%s: released victim did not report success" name;
  check_ok ~ctx:(" in " ^ name ^ " after release") t

let test_stall_insert_before_child_cas () =
  scenario ~name:"insert stalled before child CAS" ~prefill:[ 11; 12 ]
    ~op:(fun t -> P.insert t 9)
    ~site:Chaos.Child_cas ~after:0 ~watch:[ 9 ]
    ~expect:(fun t -> P.member t 9)
    ()

let test_stall_delete_before_child_cas () =
  scenario ~name:"delete stalled before child CAS" ~prefill:[ 9; 11; 12 ]
    ~op:(fun t -> P.delete t 9)
    ~site:Chaos.Child_cas ~after:0 ~watch:[ 9 ]
    ~expect:(fun t -> not (P.member t 9))
    ()

let test_stall_replace_before_first_cas () =
  scenario ~name:"replace stalled before first child CAS"
    ~prefill:[ 9; 11; 12 ]
    ~op:(fun t -> P.replace t ~remove:9 ~add:15)
    ~site:Chaos.Child_cas ~after:0 ~watch:[ 9; 15 ]
    ~expect:(fun t -> (not (P.member t 9)) && P.member t 15)
    ()

let test_stall_replace_between_cases () =
  (* after:1 lets the first child CAS (the linearization point) through
     and freezes the victim on its way to the second one. *)
  scenario ~name:"replace stalled between its two child CASes"
    ~prefill:[ 9; 11; 12 ]
    ~op:(fun t -> P.replace t ~remove:9 ~add:15)
    ~site:Chaos.Child_cas ~after:1 ~watch:[ 9; 15 ]
    ~expect:(fun t -> (not (P.member t 9)) && P.member t 15)
    ()

let test_stall_insert_before_unflag () =
  scenario ~name:"insert stalled before unflag" ~prefill:[ 11; 12 ]
    ~op:(fun t -> P.insert t 9)
    ~site:Chaos.Unflag ~after:0 ~watch:[ 9 ]
    ~expect:(fun t -> P.member t 9)
    ()

(* ------------------------------------------------------------------ *)
(* Figure 6 special cases of replace *)

(* Exhaustive sequential sweep over a tiny universe: every (remove, add)
   pair against several trie shapes hits each of the paper's Figure 6
   configurations — remove-parent = add-parent, remove adjacent to the
   add position, and the general case — plus the trivial failures. *)
let replace_pairs_sweep () =
  let universe = 8 in
  let shapes a b =
    [
      [ a ];
      [ b; a ];
      [ a; a lxor 1 ];
      List.filter (fun k -> k <> b) (List.init universe Fun.id);
    ]
  in
  for a = 0 to universe - 1 do
    for b = 0 to universe - 1 do
      if a <> b then
        List.iter
          (fun prefill ->
            let t = P.create ~universe () in
            List.iter (fun k -> ignore (P.insert t k)) prefill;
            let had_a = P.member t a and had_b = P.member t b in
            let before = P.to_list t in
            let ok = P.replace t ~remove:a ~add:b in
            if ok <> (had_a && not had_b) then
              Alcotest.failf "replace %d->%d: returned %b (a:%b b:%b)" a b ok
                had_a had_b;
            if ok then begin
              if P.member t a then
                Alcotest.failf "replace %d->%d: %d still present" a b a;
              if not (P.member t b) then
                Alcotest.failf "replace %d->%d: %d absent" a b b
            end
            else if P.to_list t <> before then
              Alcotest.failf "failed replace %d->%d changed the set" a b;
            check_ok ~ctx:(Printf.sprintf " after replace %d->%d" a b) t)
          (shapes a b)
    done
  done

let test_replace_special_cases_seq () = replace_pairs_sweep ()

let test_replace_special_cases_delayed () =
  (* Same sweep under a delay schedule: every labeled site may burst-spin,
     perturbing nothing semantically (single domain) but proving the
     instrumented paths tolerate arbitrary pauses at every site. *)
  Chaos.with_policy ~name:"delays"
    (Chaos.Policy.delays ~prob_per_mille:400 ~max_spins:50 ~seed:chaos_seed ())
    replace_pairs_sweep

let test_replace_linearizable_chaos () =
  (* Concurrent replaces on tiny universes are dominated by the Figure 6
     special cases (remove and add share a parent or are adjacent); the
     recorded histories must stay linearizable under chaos schedules and
     the teardown audit inside linearizable_run must pass. *)
  List.iter
    (fun universe ->
      for i = 0 to 2 do
        let seed = chaos_seed + (universe * 100) + i in
        Chaos.with_policy ~name:"delays"
          (Chaos.Policy.delays ~prob_per_mille:400 ~max_spins:200 ~seed ())
          (fun () ->
            Tutil.linearizable_run ~threads:3 ~ops_per_thread:10 ~universe
              ~seed ~with_replace:true Tutil.pat_ops)
      done)
    [ 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Contention backoff *)

(* Deterministic retry: leave a flag behind with the For_testing hooks
   (a "crashed" delete), then insert a key whose flag target is the
   flagged node.  The insert must help, retry, and — with backoff on —
   pause in Chaos.Backoff, bumping the backoff_waits counter. *)
let forced_retry ~backoff =
  let t = P.create ~universe:16 ~record_stats:true () in
  ignore (P.insert t 11);
  ignore (P.insert t 12);
  (match P.For_testing.prepare_delete t 11 with
  | None -> Alcotest.fail "prepare_delete unexpectedly conflicted"
  | Some d -> ignore (P.For_testing.flag_only d : bool));
  let was = Chaos.Backoff.enabled () in
  Chaos.Backoff.set_enabled backoff;
  Fun.protect ~finally:(fun () -> Chaos.Backoff.set_enabled was) (fun () ->
      if not (P.insert t 9) then Alcotest.fail "insert 9 failed");
  (* Helping completed the crashed delete before the insert retried. *)
  Alcotest.(check bool) "crashed delete completed" false (P.member t 11);
  Alcotest.(check bool) "insert landed" true (P.member t 9);
  check_ok t;
  match P.stats_snapshot t with
  | None -> Alcotest.fail "stats not recorded"
  | Some s ->
      Alcotest.(check bool) "helped" true (s.helps_given > 0);
      Alcotest.(check bool) "retried" true (s.attempts > 1);
      s

let test_backoff_counter () =
  let off = forced_retry ~backoff:false in
  Alcotest.(check int) "no backoff waits when disabled" 0 off.P.backoff_waits;
  let on = forced_retry ~backoff:true in
  Alcotest.(check bool) "backoff waits recorded" true (on.P.backoff_waits > 0)

let test_backoff_primitive () =
  (* wait's cap doubles up to the bound; wait_until honours deadlines. *)
  let cap = ref Chaos.Backoff.init in
  for _ = 1 to 20 do
    let next = Chaos.Backoff.wait !cap in
    if next < !cap then Alcotest.fail "backoff cap shrank";
    cap := next
  done;
  Alcotest.(check bool) "cap bounded" true (!cap <= 4096);
  Alcotest.(check bool) "immediate predicate" true
    (Chaos.Backoff.wait_until (fun () -> true));
  Alcotest.(check bool) "deadline expires" false
    (Chaos.Backoff.wait_until ~timeout_s:0.05 (fun () -> false))

(* ------------------------------------------------------------------ *)
(* Crossing counters and the PAT-VLK instrumentation *)

let test_crossing_counters () =
  Chaos.with_policy ~name:"delays"
    (Chaos.Policy.delays ~prob_per_mille:1000 ~max_spins:5 ~seed:chaos_seed ())
    (fun () ->
      let t = P.create ~universe:8 () in
      for k = 0 to 7 do
        ignore (P.insert t k)
      done;
      for k = 0 to 7 do
        ignore (P.delete t k)
      done);
  Alcotest.(check string) "policy uninstalled" "none" (Chaos.policy_name ());
  Alcotest.(check bool) "points crossed" true (Chaos.points_crossed () > 0);
  let xs = Chaos.site_crossings () in
  List.iter
    (fun site ->
      match List.assoc_opt site xs with
      | Some n when n > 0 -> ()
      | Some _ -> Alcotest.failf "site %s never crossed" site
      | None -> Alcotest.failf "site %s missing from crossings" site)
    [ "flag_cas"; "child_cas"; "after_child_cas"; "unflag" ]

let test_vlk_under_delays () =
  Chaos.with_policy ~name:"delays"
    (Chaos.Policy.delays ~prob_per_mille:300 ~max_spins:100 ~seed:chaos_seed ())
  @@ fun () ->
  let t = V.create () in
  let key d i = Printf.sprintf "k%d-%02d" d i in
  Tutil.join_all
    (Tutil.spawn_n 3 (fun d ->
         for i = 0 to 15 do
           ignore (V.insert t (key d i))
         done;
         for i = 0 to 15 do
           if i mod 2 = 0 then ignore (V.delete t (key d i))
         done))
  |> ignore;
  for d = 0 to 2 do
    for i = 0 to 15 do
      Alcotest.(check bool) (key d i) (i mod 2 = 1) (V.member t (key d i))
    done
  done;
  match V.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "vlk invariants violated: %s" e

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chaos"
    [
      ( "stalled domain",
        [
          Alcotest.test_case "insert: before child CAS" `Quick
            test_stall_insert_before_child_cas;
          Alcotest.test_case "delete: before child CAS" `Quick
            test_stall_delete_before_child_cas;
          Alcotest.test_case "replace: before first child CAS" `Quick
            test_stall_replace_before_first_cas;
          Alcotest.test_case "replace: between child CASes" `Quick
            test_stall_replace_between_cases;
          Alcotest.test_case "insert: before unflag" `Quick
            test_stall_insert_before_unflag;
        ] );
      ( "figure 6 replace",
        [
          Alcotest.test_case "exhaustive pairs, sequential" `Quick
            test_replace_special_cases_seq;
          Alcotest.test_case "exhaustive pairs, delay schedule" `Quick
            test_replace_special_cases_delayed;
          Alcotest.test_case "linearizable under chaos" `Quick
            test_replace_linearizable_chaos;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "counter" `Quick test_backoff_counter;
          Alcotest.test_case "primitive" `Quick test_backoff_primitive;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "crossing counters" `Quick test_crossing_counters;
          Alcotest.test_case "vlk under delays" `Quick test_vlk_under_delays;
        ] );
    ]

(* The durability layer: WAL framing and group commit, checkpoint
   images, and the recovery edge cases — empty directory, checkpoint
   with no log tail, torn final record, double-replay idempotence,
   valid-header/truncated-body segments, and checkpointing beside live
   concurrent traffic. *)

module Wal = Persist.Wal
module Checkpoint = Persist.Checkpoint

module Pstore = Persist.Store.Make (struct
  include Core.Patricia

  let create ~universe () = Core.Patricia.create ~universe ()
  let snapshot = Core.Patricia.snapshot_capability
end)

let tmpdir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "persist_test_%d_%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let scan_all ~dir =
  let acc = ref [] in
  match Wal.scan ~dir ~replay_from:(-1) ~f:(fun ~seq r -> acc := (seq, r) :: !acc) with
  | Result.Ok s -> (s, List.rev !acc)
  | Result.Error m -> Alcotest.fail ("scan: " ^ m)

let sorted_keys store = List.sort compare (Pstore.to_list store)

let append_file path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let last_segment dir =
  match List.rev (Sys.readdir dir |> Array.to_list |> List.sort compare
                  |> List.filter (fun n -> Filename.check_suffix n ".seg"))
  with
  | seg :: _ -> Filename.concat dir seg
  | [] -> Alcotest.fail "no wal segment found"

(* ------------------------------------------------------------------ *)
(* WAL *)

let test_wal_roundtrip () =
  let dir = tmpdir () in
  let w = Wal.Writer.create ~dir ~start_seq:1 ~fsync:false () in
  let recs =
    [ Wal.Insert 42; Wal.Delete 42; Wal.Replace { remove = 7; add = 9 };
      Wal.Insert 0; Wal.Insert max_int ]
  in
  let seqs = List.map (Wal.Writer.append w) recs in
  Wal.Writer.wait_durable w (List.nth seqs 4);
  Wal.Writer.stop w;
  let s, got = scan_all ~dir in
  Alcotest.(check (list int)) "dense seqs" [ 1; 2; 3; 4; 5 ] seqs;
  Alcotest.(check int) "last_seq" 5 s.Wal.last_seq;
  Alcotest.(check bool) "not torn" false s.Wal.torn;
  Alcotest.(check int) "records" 5 s.Wal.records;
  List.iter2
    (fun (seq, r) (seq', r') ->
      Alcotest.(check int) "seq" seq' seq;
      if r <> r' then Alcotest.fail "record mismatch")
    got
    (List.combine seqs recs)

let test_wal_replay_from () =
  let dir = tmpdir () in
  let w = Wal.Writer.create ~dir ~start_seq:1 ~fsync:false () in
  for k = 1 to 10 do ignore (Wal.Writer.append w (Wal.Insert k) : int) done;
  Wal.Writer.wait_durable w 10;
  Wal.Writer.stop w;
  let n = ref 0 in
  (match Wal.scan ~dir ~replay_from:7 ~f:(fun ~seq:_ _ -> incr n) with
  | Result.Ok s ->
      Alcotest.(check int) "replayed" 3 s.Wal.replayed;
      Alcotest.(check int) "records" 10 s.Wal.records
  | Result.Error m -> Alcotest.fail m);
  Alcotest.(check int) "f called for tail only" 3 !n

let test_group_commit_multidomain () =
  let dir = tmpdir () in
  let w = Wal.Writer.create ~dir ~start_seq:100 ~fsync:false () in
  let per = 500 and doms = 4 in
  let workers =
    List.init doms (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              let seq = Wal.Writer.append w (Wal.Insert ((d * per) + i)) in
              if i mod 50 = 0 then Wal.Writer.wait_durable w seq
            done))
  in
  List.iter Domain.join workers;
  Wal.Writer.wait_durable w (Wal.Writer.last_assigned w);
  Alcotest.(check int) "durable = assigned"
    (Wal.Writer.last_assigned w)
    (Wal.Writer.durable_upto w);
  Wal.Writer.stop w;
  let s, got = scan_all ~dir in
  Alcotest.(check int) "all records" (per * doms) s.Wal.records;
  Alcotest.(check int) "last_seq" (100 + (per * doms) - 1) s.Wal.last_seq;
  (* Every published record is in the log exactly once. *)
  let keys = List.map (function _, Wal.Insert k -> k | _ -> -1) got in
  Alcotest.(check (list int)) "every mutation logged once"
    (List.init (per * doms) Fun.id)
    (List.sort compare keys)

let test_wal_rotation () =
  let dir = tmpdir () in
  (* Tiny segments force many rotations. *)
  let w =
    Wal.Writer.create ~dir ~start_seq:1 ~segment_bytes:8192 ~fsync:false ()
  in
  (* Waiting per append keeps batches small — a batch is never split
     across segments, so rotation only happens between batches. *)
  for k = 1 to 2000 do
    Wal.Writer.wait_durable w (Wal.Writer.append w (Wal.Insert k))
  done;
  Wal.Writer.stop w;
  let s, _ = scan_all ~dir in
  Alcotest.(check int) "records survive rotation" 2000 s.Wal.records;
  if s.Wal.segments < 2 then Alcotest.fail "expected multiple segments";
  (* A checkpoint cut at the end releases all but the active segment. *)
  let deleted = Wal.delete_obsolete_segments ~dir ~upto:2000 () in
  Alcotest.(check int) "all but last deleted" (s.Wal.segments - 1) deleted;
  let s', _ = scan_all ~dir in
  Alcotest.(check int) "survivor still scans" 1 s'.Wal.segments

let test_torn_tail_truncated () =
  let dir = tmpdir () in
  let w = Wal.Writer.create ~dir ~start_seq:1 ~fsync:false () in
  for k = 1 to 20 do ignore (Wal.Writer.append w (Wal.Insert k) : int) done;
  Wal.Writer.wait_durable w 20;
  Wal.Writer.stop w;
  (* A crash mid-write leaves a prefix of a frame at the tail. *)
  append_file (last_segment dir) "\000\000\000\017\222\173\190\239partial";
  let s, _ = scan_all ~dir in
  Alcotest.(check bool) "torn detected" true s.Wal.torn;
  Alcotest.(check int) "intact prefix kept" 20 s.Wal.records;
  (* The scan physically truncated the tail: a second scan is clean. *)
  let s', _ = scan_all ~dir in
  Alcotest.(check bool) "tail gone after truncation" false s'.Wal.torn;
  Alcotest.(check int) "same records" 20 s'.Wal.records

let test_short_frame_tail () =
  let dir = tmpdir () in
  let w = Wal.Writer.create ~dir ~start_seq:1 ~fsync:false () in
  for k = 1 to 5 do ignore (Wal.Writer.append w (Wal.Insert k) : int) done;
  Wal.Writer.wait_durable w 5;
  Wal.Writer.stop w;
  (* Fewer bytes than even a frame header. *)
  append_file (last_segment dir) "\000\000\000";
  let s, _ = scan_all ~dir in
  Alcotest.(check bool) "torn" true s.Wal.torn;
  Alcotest.(check int) "records" 5 s.Wal.records

let test_header_only_segment () =
  let dir = tmpdir () in
  let w = Wal.Writer.create ~dir ~start_seq:1 ~fsync:false () in
  for k = 1 to 5 do ignore (Wal.Writer.append w (Wal.Insert k) : int) done;
  Wal.Writer.wait_durable w 5;
  Wal.Writer.stop w;
  (* A rotation that died right after writing the new segment's header:
     valid header, truncated (empty) body. *)
  let seg1 = Filename.concat dir (Wal.segment_name 6) in
  let w2 = Wal.Writer.create ~dir ~start_seq:6 ~fsync:false () in
  Wal.Writer.stop w2;
  Alcotest.(check bool) "second segment exists" true (Sys.file_exists seg1);
  let s, _ = scan_all ~dir in
  Alcotest.(check bool) "not torn" false s.Wal.torn;
  Alcotest.(check int) "records" 5 s.Wal.records;
  Alcotest.(check int) "segments" 2 s.Wal.segments;
  (* Same, but the header itself is cut short: the last segment is
     unreadable garbage and is deleted outright. *)
  Unix.truncate seg1 10;
  let s', _ = scan_all ~dir in
  Alcotest.(check bool) "torn (header)" true s'.Wal.torn;
  Alcotest.(check bool) "deleted" false (Sys.file_exists seg1);
  let s'', _ = scan_all ~dir in
  Alcotest.(check bool) "clean after delete" false s''.Wal.torn;
  Alcotest.(check int) "records intact" 5 s''.Wal.records

let test_mid_log_corruption_is_error () =
  let dir = tmpdir () in
  let w =
    Wal.Writer.create ~dir ~start_seq:1 ~segment_bytes:8192 ~fsync:false ()
  in
  for k = 1 to 2000 do
    Wal.Writer.wait_durable w (Wal.Writer.append w (Wal.Insert k))
  done;
  Wal.Writer.stop w;
  (* Flip a byte in the FIRST segment — not a tail, so this is data
     loss and must be a loud error, never a silent truncation. *)
  let first =
    match Sys.readdir dir |> Array.to_list |> List.sort compare
          |> List.filter (fun n -> Filename.check_suffix n ".seg")
    with
    | seg :: _ -> Filename.concat dir seg
    | [] -> Alcotest.fail "no segment"
  in
  let fd = Unix.openfile first [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd 100 Unix.SEEK_SET : int);
  ignore (Unix.write_substring fd "\255" 0 1 : int);
  Unix.close fd;
  match Wal.scan ~dir ~replay_from:(-1) ~f:(fun ~seq:_ _ -> ()) with
  | Result.Ok _ -> Alcotest.fail "mid-log corruption not reported"
  | Result.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Store recovery *)

let mk_store ?(mode = Pstore.Sync) ?(universe = 1 lsl 12) dir =
  Pstore.open_ ~dir ~universe ~mode ()

let test_empty_dir () =
  let dir = tmpdir () in
  let s = mk_store ~mode:Pstore.Ephemeral dir in
  let ri = Pstore.recovery_info s in
  Alcotest.(check int) "size" 0 (Pstore.size s);
  Alcotest.(check int) "segments" 0 ri.Pstore.wal_segments;
  Alcotest.(check bool) "no checkpoint" true (ri.Pstore.checkpoint_seq = None);
  Pstore.close s;
  (* Even a directory that does not exist yet. *)
  let s2 = mk_store (Filename.concat dir "a/b/c") in
  Alcotest.(check int) "fresh nested dir" 0 (Pstore.size s2);
  ignore (Pstore.insert s2 1 : bool);
  Pstore.barrier s2;
  Pstore.close s2

let test_wal_only_recovery () =
  let dir = tmpdir () in
  let s = mk_store dir in
  ignore (Pstore.insert s 1 : bool);
  ignore (Pstore.insert s 2 : bool);
  ignore (Pstore.delete s 1 : bool);
  ignore (Pstore.replace s ~remove:2 ~add:3 : bool);
  ignore (Pstore.insert s 2 : bool);
  (* A no-op mutation must not be logged. *)
  Alcotest.(check bool) "dup insert refused" false (Pstore.insert s 2);
  Pstore.barrier s;
  Pstore.close s;
  let s2 = mk_store ~mode:Pstore.Ephemeral dir in
  let ri = Pstore.recovery_info s2 in
  Alcotest.(check (list int)) "state" [ 2; 3 ] (sorted_keys s2);
  Alcotest.(check int) "five acked mutations logged" 5 ri.Pstore.wal_records;
  Pstore.close s2

let test_checkpoint_no_tail () =
  let dir = tmpdir () in
  let s = mk_store dir in
  for k = 1 to 100 do ignore (Pstore.insert s k : bool) done;
  let keys0 = sorted_keys s in
  let _keys, _deleted = Pstore.checkpoint s in
  Pstore.close s;
  (* Remove every WAL segment: the checkpoint alone must carry the
     state (the "no tail" case). *)
  Array.iter
    (fun n ->
      if Filename.check_suffix n ".seg" then Sys.remove (Filename.concat dir n))
    (Sys.readdir dir);
  let s2 = mk_store ~mode:Pstore.Ephemeral dir in
  let ri = Pstore.recovery_info s2 in
  Alcotest.(check (list int)) "checkpoint alone restores" keys0 (sorted_keys s2);
  Alcotest.(check int) "nothing replayed" 0 ri.Pstore.wal_replayed;
  Alcotest.(check bool) "checkpoint loaded" true (ri.Pstore.checkpoint_seq <> None);
  Pstore.close s2

let test_double_replay_idempotent () =
  let dir = tmpdir () in
  let s = mk_store dir in
  let rng = Rng.of_int_seed 99 in
  for _ = 1 to 2000 do
    let k = Rng.int rng 512 in
    match Rng.int rng 3 with
    | 0 -> ignore (Pstore.insert s k : bool)
    | 1 -> ignore (Pstore.delete s k : bool)
    | _ -> ignore (Pstore.replace s ~remove:k ~add:(Rng.int rng 512) : bool)
  done;
  (* Checkpoint mid-history so recovery is image + tail. *)
  let _ = Pstore.checkpoint s in
  for _ = 1 to 500 do ignore (Pstore.insert s (Rng.int rng 512) : bool) done;
  let final = sorted_keys s in
  Pstore.barrier s;
  Pstore.close s;
  let r1 = mk_store ~mode:Pstore.Ephemeral dir in
  let r2 = mk_store ~mode:Pstore.Ephemeral dir in
  Alcotest.(check (list int)) "replay = live state" final (sorted_keys r1);
  Alcotest.(check (list int)) "second replay identical" (sorted_keys r1)
    (sorted_keys r2);
  (match Core.Patricia.check_invariants (Pstore.underlying r1) with
  | Result.Ok () -> ()
  | Result.Error m -> Alcotest.fail ("invariants after recovery: " ^ m));
  Pstore.close r1;
  Pstore.close r2

let test_torn_tail_store_recovery () =
  let dir = tmpdir () in
  let s = mk_store dir in
  for k = 1 to 50 do ignore (Pstore.insert s k : bool) done;
  Pstore.barrier s;
  Pstore.close s;
  append_file (last_segment dir) "\000\000\000\017torn-bytes-here!!";
  let r = mk_store ~mode:Pstore.Ephemeral dir in
  let ri = Pstore.recovery_info r in
  Alcotest.(check bool) "torn reported" true ri.Pstore.torn_tail;
  Alcotest.(check (list int)) "acked prefix intact"
    (List.init 50 (fun i -> i + 1))
    (sorted_keys r);
  Pstore.close r;
  (* Recovery truncated the tail; a durable reopen appends after it. *)
  let s2 = mk_store dir in
  ignore (Pstore.insert s2 1000 : bool);
  Pstore.barrier s2;
  Pstore.close s2;
  let r2 = mk_store ~mode:Pstore.Ephemeral dir in
  Alcotest.(check bool) "clean after truncation"
    false (Pstore.recovery_info r2).Pstore.torn_tail;
  Alcotest.(check (list int)) "old + new state"
    (List.init 50 (fun i -> i + 1) @ [ 1000 ])
    (sorted_keys r2);
  Pstore.close r2

let test_universe_mismatch () =
  let dir = tmpdir () in
  let s = mk_store ~universe:1024 dir in
  ignore (Pstore.insert s 1 : bool);
  let _ = Pstore.checkpoint s in
  Pstore.close s;
  match Pstore.open_ ~dir ~universe:2048 ~mode:Pstore.Ephemeral () with
  | exception Failure _ -> ()
  | s' ->
      Pstore.close s';
      Alcotest.fail "checkpoint for another universe accepted"

let test_checkpoint_under_traffic () =
  let dir = tmpdir () in
  let universe = 1 lsl 10 in
  let s = mk_store ~universe dir in
  let stop = Atomic.make false in
  let workers =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            let rng = Rng.of_int_seed (700 + d) in
            while not (Atomic.get stop) do
              let k = Rng.int rng universe in
              (match Rng.int rng 3 with
              | 0 -> ignore (Pstore.insert s k : bool)
              | 1 -> ignore (Pstore.delete s k : bool)
              | _ ->
                  ignore (Pstore.replace s ~remove:k ~add:(Rng.int rng universe)
                          : bool));
              Pstore.barrier s
            done))
  in
  (* Checkpoints race the mutators: each image must still recover to a
     state consistent with the log. *)
  for _ = 1 to 5 do
    ignore (Pstore.checkpoint s : int * int);
    Unix.sleepf 0.02
  done;
  Atomic.set stop true;
  List.iter Domain.join workers;
  let final = sorted_keys s in
  Pstore.close s;
  let r1 = mk_store ~mode:Pstore.Ephemeral ~universe dir in
  let r2 = mk_store ~mode:Pstore.Ephemeral ~universe dir in
  Alcotest.(check (list int)) "checkpoint+tail = final state" final
    (sorted_keys r1);
  Alcotest.(check (list int)) "idempotent" final (sorted_keys r2);
  (match Core.Patricia.check_invariants (Pstore.underlying r1) with
  | Result.Ok () -> ()
  | Result.Error m -> Alcotest.fail ("invariants: " ^ m));
  Pstore.close r1;
  Pstore.close r2

let test_chaos_sites_crossed () =
  let dir = tmpdir () in
  Chaos.with_policy ~name:"count" (fun _ -> ()) @@ fun () ->
  let s = mk_store dir in
  for k = 1 to 100 do
    ignore (Pstore.insert s k : bool);
    Pstore.barrier s
  done;
  let _ = Pstore.checkpoint s in
  Pstore.close s;
  let crossings = Chaos.site_crossings () in
  let count name = try List.assoc name crossings with Not_found -> 0 in
  if count "wal_append" = 0 then Alcotest.fail "wal_append never crossed";
  if count "wal_fsync" = 0 then Alcotest.fail "wal_fsync never crossed"

let test_async_mode_drains_on_close () =
  let dir = tmpdir () in
  let s = mk_store ~mode:Pstore.Async dir in
  for k = 1 to 500 do ignore (Pstore.insert s k : bool) done;
  (* No barrier: async acks never wait.  Close must still drain. *)
  Pstore.close s;
  let r = mk_store ~mode:Pstore.Ephemeral dir in
  Alcotest.(check int) "all mutations on disk" 500 (Pstore.size r);
  Pstore.close r

(* A crash-consistency smoke that needs no processes: copy the data
   directory while the store is being mutated (what a kill would leave),
   then recover the copy.  The copy is taken file-at-a-time like a
   crash leaves it — tail possibly torn mid-frame. *)
let test_dirty_copy_recovers () =
  let src = tmpdir () in
  let dst = tmpdir () in
  let s = mk_store ~mode:Pstore.Async src in
  let stop = Atomic.make false in
  let mutator =
    Domain.spawn (fun () ->
        let rng = Rng.of_int_seed 31 in
        while not (Atomic.get stop) do
          ignore (Pstore.insert s (Rng.int rng 4096) : bool)
        done)
  in
  Unix.sleepf 0.05;
  (* Racy copy of every file, byte-ranged like a crash image. *)
  Array.iter
    (fun n ->
      let b =
        let ic = open_in_bin (Filename.concat src n) in
        let len = in_channel_length ic in
        let b = really_input_string ic len in
        close_in ic; b
      in
      let oc = open_out_bin (Filename.concat dst n) in
      output_string oc b;
      close_out oc)
    (Sys.readdir src);
  Atomic.set stop true;
  Domain.join mutator;
  Pstore.close s;
  let r = mk_store ~mode:Pstore.Ephemeral dst in
  (* Whatever was captured must recover without error and double-replay
     to the same state. *)
  let r2 = mk_store ~mode:Pstore.Ephemeral dst in
  Alcotest.(check (list int)) "dirty image replays deterministically"
    (sorted_keys r) (sorted_keys r2);
  (match Core.Patricia.check_invariants (Pstore.underlying r) with
  | Result.Ok () -> ()
  | Result.Error m -> Alcotest.fail ("invariants: " ^ m));
  Pstore.close r;
  Pstore.close r2

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "persist"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "replay_from filter" `Quick test_wal_replay_from;
          Alcotest.test_case "group commit, 4 domains" `Quick
            test_group_commit_multidomain;
          Alcotest.test_case "rotation + obsolete segments" `Quick
            test_wal_rotation;
          Alcotest.test_case "torn tail truncated" `Quick
            test_torn_tail_truncated;
          Alcotest.test_case "short frame tail" `Quick test_short_frame_tail;
          Alcotest.test_case "header-only / truncated segment" `Quick
            test_header_only_segment;
          Alcotest.test_case "mid-log corruption is an error" `Quick
            test_mid_log_corruption_is_error;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "empty dir" `Quick test_empty_dir;
          Alcotest.test_case "wal only" `Quick test_wal_only_recovery;
          Alcotest.test_case "checkpoint, no tail" `Quick
            test_checkpoint_no_tail;
          Alcotest.test_case "double replay idempotent" `Quick
            test_double_replay_idempotent;
          Alcotest.test_case "torn tail" `Quick test_torn_tail_store_recovery;
          Alcotest.test_case "universe mismatch rejected" `Quick
            test_universe_mismatch;
          Alcotest.test_case "checkpoint under live traffic" `Quick
            test_checkpoint_under_traffic;
          Alcotest.test_case "chaos sites crossed" `Quick
            test_chaos_sites_crossed;
          Alcotest.test_case "async close drains" `Quick
            test_async_mode_drains_on_close;
          Alcotest.test_case "dirty copy recovers" `Quick
            test_dirty_copy_recovers;
        ] );
    ]

(* Single-threaded tests for the concurrent Patricia trie: sequential
   specification, structural invariants, edge cases, and deterministic
   exercises of the helping machinery through the For_testing interface. *)

module IS = Set.Make (Int)
module P = Core.Patricia
module PS = Core.Patricia_seq

let test_empty () =
  let t = P.create ~universe:100 () in
  Alcotest.(check int) "size" 0 (P.size t);
  Alcotest.(check (list int)) "to_list" [] (P.to_list t);
  Alcotest.(check bool) "member" false (P.member t 42);
  Alcotest.(check bool) "delete on empty" false (P.delete t 42);
  Alcotest.(check bool) "replace on empty" false (P.replace t ~remove:1 ~add:2)

let test_insert_delete_basic () =
  let t = P.create ~universe:100 () in
  Alcotest.(check bool) "insert new" true (P.insert t 5);
  Alcotest.(check bool) "insert dup" false (P.insert t 5);
  Alcotest.(check bool) "member" true (P.member t 5);
  Alcotest.(check bool) "other absent" false (P.member t 4);
  Alcotest.(check bool) "delete" true (P.delete t 5);
  Alcotest.(check bool) "delete again" false (P.delete t 5)

let test_universe_edges () =
  let t = P.create ~universe:10 () in
  Alcotest.(check bool) "key 0" true (P.insert t 0);
  Alcotest.(check bool) "key 9" true (P.insert t 9);
  Alcotest.check_raises "key -1" (Invalid_argument "Patricia: key out of the universe")
    (fun () -> ignore (P.insert t (-1)));
  Alcotest.check_raises "key 10" (Invalid_argument "Patricia: key out of the universe")
    (fun () -> ignore (P.member t 10))

let test_bad_universe () =
  Alcotest.check_raises "universe 0"
    (Invalid_argument "Patricia.create: universe must be >= 1") (fun () ->
      ignore (P.create ~universe:0 ()));
  Alcotest.check_raises "width 1"
    (Invalid_argument "Patricia.create_width: width must be in [2, 62]")
    (fun () -> ignore (P.create_width ~width:1 ()));
  Alcotest.check_raises "width 63"
    (Invalid_argument "Patricia.create_width: width must be in [2, 62]")
    (fun () -> ignore (P.create_width ~width:63 ()))

let test_create_width_raw_keys () =
  let t = P.create_width ~width:10 () in
  Alcotest.(check bool) "min raw key" true (P.insert t 1);
  Alcotest.(check bool) "max raw key" true (P.insert t 1022);
  Alcotest.check_raises "sentinel low" (Invalid_argument "Patricia: key out of the universe")
    (fun () -> ignore (P.insert t 0));
  Alcotest.check_raises "sentinel high" (Invalid_argument "Patricia: key out of the universe")
    (fun () -> ignore (P.insert t 1023))

let test_fill_drain () =
  let t = P.create ~universe:1024 () in
  for k = 0 to 1023 do
    if not (P.insert t k) then Alcotest.failf "insert %d" k
  done;
  Alcotest.(check int) "full" 1024 (P.size t);
  (match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e);
  for k = 0 to 1023 do
    if not (P.member t k) then Alcotest.failf "member %d" k
  done;
  for k = 1023 downto 0 do
    if not (P.delete t k) then Alcotest.failf "delete %d" k
  done;
  Alcotest.(check int) "drained" 0 (P.size t);
  match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_replace_cases () =
  (* Drive replace through its general case and every special case of
     Figure 6 by controlling the trie shape with known keys. *)
  let t = P.create ~universe:256 () in
  ignore (P.insert t 0b0000);
  ignore (P.insert t 0b0001);
  ignore (P.insert t 0b1000);
  (* Case noded = nodei: replace a key by one landing on the same leaf
     slot is impossible for distinct keys, but replacing a leaf whose
     search for the new key ends at the same leaf exercises case 1:
     remove 0b1000, add 0b1001 — search(0b1001) ends at leaf 0b1000. *)
  Alcotest.(check bool) "special case 1" true
    (P.replace t ~remove:0b1000 ~add:0b1001);
  Alcotest.(check bool) "c1 source gone" false (P.member t 0b1000);
  Alcotest.(check bool) "c1 target in" true (P.member t 0b1001);
  (* General case: far-apart keys. *)
  Alcotest.(check bool) "general case" true (P.replace t ~remove:0b0000 ~add:0b11110000);
  Alcotest.(check bool) "gc source gone" false (P.member t 0b0000);
  Alcotest.(check bool) "gc target in" true (P.member t 0b11110000);
  (* Sibling-adjacent cases: remove a key and add one under its sibling
     subtree (exercises the pd = pi / nodei = pd / nodei = gpd cases). *)
  ignore (P.insert t 0b0100);
  ignore (P.insert t 0b0101);
  Alcotest.(check bool) "adjacent replace" true
    (P.replace t ~remove:0b0101 ~add:0b0110);
  Alcotest.(check bool) "adjacent replace 2" true
    (P.replace t ~remove:0b0110 ~add:0b0111);
  Alcotest.(check bool) "adjacent replace 3" true
    (P.replace t ~remove:0b0100 ~add:0b0101);
  (match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e);
  (* Failure cases. *)
  Alcotest.(check bool) "absent source" false (P.replace t ~remove:0b0000 ~add:0b1111);
  Alcotest.(check bool) "present target" false
    (P.replace t ~remove:0b0101 ~add:0b0111);
  Alcotest.(check bool) "same key" false (P.replace t ~remove:0b0101 ~add:0b0101)

let test_replace_is_total_move () =
  let t = P.create ~universe:4096 () in
  let rng = Rng.of_int_seed 17 in
  ignore (P.insert t 0);
  let current = ref 0 in
  for _ = 1 to 2000 do
    let next = Rng.int rng 4096 in
    if next <> !current then begin
      Alcotest.(check bool) "move ok" true (P.replace t ~remove:!current ~add:next);
      current := next
    end
  done;
  Alcotest.(check int) "exactly one key" 1 (P.size t);
  Alcotest.(check (list int)) "the right key" [ !current ] (P.to_list t)

let prop_model_equivalence =
  Tutil.qtest ~count:80 "matches the sequential trie on random programs"
    QCheck2.Gen.(list_size (int_bound 400) (pair (int_bound 3) (int_bound 127)))
    (fun ops ->
      let t = P.create ~universe:128 () in
      let m = PS.create ~universe:128 () in
      List.for_all
        (fun (op, k) ->
          match op with
          | 0 -> P.insert t k = PS.insert m k
          | 1 -> P.delete t k = PS.delete m k
          | 2 -> P.member t k = PS.member m k
          | _ ->
              let k2 = (k * 31) mod 128 in
              P.replace t ~remove:k ~add:k2 = PS.replace m ~remove:k ~add:k2)
        ops
      && P.to_list t = PS.to_list m
      && P.check_invariants t = Ok ())

let prop_size_consistent =
  Tutil.qtest ~count:60 "size equals successful inserts minus deletes"
    QCheck2.Gen.(list_size (int_bound 300) (pair bool (int_bound 63)))
    (fun ops ->
      let t = P.create ~universe:64 () in
      let balance = ref 0 in
      List.iter
        (fun (ins, k) ->
          if ins then (if P.insert t k then incr balance)
          else if P.delete t k then decr balance)
        ops;
      P.size t = !balance)

let prop_no_flags_when_quiescent =
  Tutil.qtest ~count:40 "no residual flags on search paths after ops"
    QCheck2.Gen.(list_size (int_bound 200) (pair bool (int_bound 63)))
    (fun ops ->
      let t = P.create ~universe:64 () in
      List.iter
        (fun (ins, k) ->
          if ins then ignore (P.insert t k) else ignore (P.delete t k))
        ops;
      (* Deletes permanently flag removed nodes, but nodes still *in* the
         trie must be unflagged once operations complete.  Exception: the
         leaf of a general-case replace stays flagged; none occur here. *)
      List.for_all (fun k -> P.For_testing.flags_on_path t k = 0)
        (List.init 64 Fun.id))

(* ------------------------------------------------------------------ *)
(* Helping machinery (paper Section IV part 4): an update that stalls
   after flagging must be completable by anyone. *)

let test_help_completes_stalled_insert () =
  let t = P.create ~universe:64 () in
  ignore (P.insert t 10);
  match P.For_testing.prepare_insert t 33 with
  | None -> Alcotest.fail "prepare_insert unexpectedly failed"
  | Some d ->
      (* The preparing process flags and then "crashes". *)
      Alcotest.(check bool) "flagging succeeded" true (P.For_testing.flag_only d);
      Alcotest.(check bool) "33 not yet inserted" false (P.member t 33);
      Alcotest.(check bool) "path is flagged" true
        (P.For_testing.flags_on_path t 33 > 0);
      (* Any helper can finish the stalled update. *)
      Alcotest.(check bool) "help completes it" true (P.For_testing.help d);
      Alcotest.(check bool) "33 now present" true (P.member t 33);
      Alcotest.(check int) "flags cleaned" 0 (P.For_testing.flags_on_path t 33);
      match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_other_ops_help_stalled_insert () =
  let t = P.create ~universe:64 () in
  ignore (P.insert t 10);
  match P.For_testing.prepare_insert t 11 with
  | None -> Alcotest.fail "prepare_insert unexpectedly failed"
  | Some d ->
      ignore (P.For_testing.flag_only d);
      (* An insert landing on the flagged node must help the stalled
         update rather than block: afterwards *both* keys are present. *)
      Alcotest.(check bool) "conflicting insert succeeds" true (P.insert t 12);
      Alcotest.(check bool) "stalled insert completed by helper" true
        (P.member t 11);
      Alcotest.(check bool) "new insert applied" true (P.member t 12);
      match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_delete_helps_stalled_insert () =
  let t = P.create ~universe:64 () in
  ignore (P.insert t 10);
  ignore (P.insert t 20);
  match P.For_testing.prepare_insert t 21 with
  | None -> Alcotest.fail "prepare_insert unexpectedly failed"
  | Some d ->
      ignore (P.For_testing.flag_only d);
      Alcotest.(check bool) "delete through flagged region" true (P.delete t 20);
      Alcotest.(check bool) "stalled insert completed" true (P.member t 21);
      Alcotest.(check bool) "delete applied" false (P.member t 20);
      match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_double_help_is_idempotent () =
  let t = P.create ~universe:64 () in
  match P.For_testing.prepare_insert t 7 with
  | None -> Alcotest.fail "prepare_insert unexpectedly failed"
  | Some d ->
      Alcotest.(check bool) "first help" true (P.For_testing.help d);
      Alcotest.(check bool) "second help also true" true (P.For_testing.help d);
      Alcotest.(check bool) "present once" true (P.member t 7);
      Alcotest.(check int) "size 1" 1 (P.size t)

let test_stale_descriptor_fails_cleanly () =
  let t = P.create ~universe:64 () in
  match P.For_testing.prepare_insert t 7 with
  | None -> Alcotest.fail "prepare_insert unexpectedly failed"
  | Some d ->
      (* The world changes before the stalled update resumes: its flag
         CAS expects an info value that is no longer there. *)
      ignore (P.insert t 7);
      Alcotest.(check bool) "stale descriptor returns false" false
        (P.For_testing.help d);
      Alcotest.(check bool) "7 present exactly once" true (P.member t 7);
      Alcotest.(check int) "size" 1 (P.size t);
      match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_help_completes_stalled_delete () =
  let t = P.create ~universe:64 () in
  ignore (P.insert t 8);
  ignore (P.insert t 9);
  match P.For_testing.prepare_delete t 8 with
  | None -> Alcotest.fail "prepare_delete unexpectedly failed"
  | Some d ->
      Alcotest.(check bool) "flagging succeeded" true (P.For_testing.flag_only d);
      Alcotest.(check bool) "8 still present (logical view)" true (P.member t 8);
      Alcotest.(check bool) "help completes it" true (P.For_testing.help d);
      Alcotest.(check bool) "8 deleted" false (P.member t 8);
      Alcotest.(check bool) "9 untouched" true (P.member t 9);
      match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_backtrack_on_flag_conflict () =
  (* Two descriptors with overlapping footprints: 8 and 9 share a parent
     P; the stalled insert of 10 flags exactly P, while the delete of 8
     flags (gp, P) in label order.  Applying the delete must flag gp,
     fail on P, and *backtrack* — unflagging gp and returning false with
     the trie unchanged (paper lines 103-106). *)
  let t = P.create ~universe:64 () in
  ignore (P.insert t 8);
  ignore (P.insert t 9);
  let d_delete =
    match P.For_testing.prepare_delete t 8 with
    | Some d -> d
    | None -> Alcotest.fail "prepare_delete failed"
  in
  let d_insert =
    match P.For_testing.prepare_insert t 10 with
    | Some d -> d
    | None -> Alcotest.fail "prepare_insert failed"
  in
  (* The insert's flag goes in first and stalls. *)
  Alcotest.(check bool) "insert flags P" true (P.For_testing.flag_only d_insert);
  (* The delete now cannot complete: it must back its gp flag out. *)
  Alcotest.(check bool) "delete backtracks" false (P.For_testing.help d_delete);
  Alcotest.(check bool) "8 still present" true (P.member t 8);
  Alcotest.(check bool) "9 still present" true (P.member t 9);
  (* Only the stalled insert's flag remains on the path. *)
  Alcotest.(check int) "one residual flag" 1 (P.For_testing.flags_on_path t 8);
  (* Completing the stalled insert clears the last flag. *)
  Alcotest.(check bool) "insert completes" true (P.For_testing.help d_insert);
  Alcotest.(check bool) "10 present" true (P.member t 10);
  Alcotest.(check int) "no flags left" 0 (P.For_testing.flags_on_path t 8);
  (* And the aborted delete can be redone normally. *)
  Alcotest.(check bool) "delete succeeds now" true (P.delete t 8);
  match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_stale_delete_descriptor () =
  let t = P.create ~universe:64 () in
  ignore (P.insert t 8);
  ignore (P.insert t 9);
  match P.For_testing.prepare_delete t 8 with
  | None -> Alcotest.fail "prepare_delete failed"
  | Some d ->
      (* The world moves on before the stalled delete resumes. *)
      ignore (P.insert t 10);
      Alcotest.(check bool) "stale delete fails" false (P.For_testing.help d);
      Alcotest.(check bool) "8 still present" true (P.member t 8);
      Alcotest.(check int) "three keys" 3 (P.size t);
      match P.check_invariants t with Ok () -> () | Error e -> Alcotest.fail e

let test_stats_recording () =
  let t = P.create ~universe:64 ~record_stats:true () in
  for k = 0 to 63 do
    ignore (P.insert t k)
  done;
  match P.stats_snapshot t with
  | None -> Alcotest.fail "stats expected"
  | Some snap ->
      Alcotest.(check bool)
        "attempts counted" true
        (snap.P.attempts >= 64);
      (* Single-threaded: nobody to help or be helped by. *)
      Alcotest.(check int) "no helps given" 0 snap.P.helps_given;
      Alcotest.(check int) "no helps received" 0 snap.P.helps_received;
      Alcotest.(check int) "no backtracks" 0 snap.P.backtracks;
      let alist = P.stats_to_alist snap in
      Alcotest.(check (list string))
        "alist field order"
        [
          "attempts";
          "helps_given";
          "helps_received";
          "flag_failures";
          "backtracks";
          "backoff_waits";
          "descent_nodes_find";
          "descent_nodes_insert";
          "descent_nodes_delete";
          "descent_nodes_replace";
          "descent_searches";
        ]
        (List.map fst alist);
      Alcotest.(check int)
        "alist attempts matches" snap.P.attempts
        (List.assoc "attempts" alist)

let test_no_stats_by_default () =
  let t = P.create ~universe:64 () in
  Alcotest.(check bool) "no stats" true (P.stats_snapshot t = None)

let () =
  Alcotest.run "patricia"
    [
      ( "sequential",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/delete" `Quick test_insert_delete_basic;
          Alcotest.test_case "universe edges" `Quick test_universe_edges;
          Alcotest.test_case "bad parameters" `Quick test_bad_universe;
          Alcotest.test_case "raw width keys" `Quick test_create_width_raw_keys;
          Alcotest.test_case "fill then drain" `Quick test_fill_drain;
          Alcotest.test_case "replace cases" `Quick test_replace_cases;
          Alcotest.test_case "replace chain keeps one key" `Quick
            test_replace_is_total_move;
        ] );
      ( "properties",
        [ prop_model_equivalence; prop_size_consistent; prop_no_flags_when_quiescent ]
      );
      ( "helping",
        [
          Alcotest.test_case "help completes stalled insert" `Quick
            test_help_completes_stalled_insert;
          Alcotest.test_case "ops help stalled insert" `Quick
            test_other_ops_help_stalled_insert;
          Alcotest.test_case "delete helps stalled insert" `Quick
            test_delete_helps_stalled_insert;
          Alcotest.test_case "double help idempotent" `Quick
            test_double_help_is_idempotent;
          Alcotest.test_case "stale descriptor fails cleanly" `Quick
            test_stale_descriptor_fails_cleanly;
          Alcotest.test_case "help completes stalled delete" `Quick
            test_help_completes_stalled_delete;
          Alcotest.test_case "backtrack on flag conflict" `Quick
            test_backtrack_on_flag_conflict;
          Alcotest.test_case "stale delete fails cleanly" `Quick
            test_stale_delete_descriptor;
        ] );
      ( "stats",
        [
          Alcotest.test_case "recording" `Quick test_stats_recording;
          Alcotest.test_case "off by default" `Quick test_no_stats_by_default;
        ] );
    ]

(* Tests for the benchmark harness: mixes, key streams, statistics, and
   a short end-to-end throughput run per structure. *)

let test_mix_validation () =
  Alcotest.check_raises "must sum to 100"
    (Invalid_argument "Mix.v: percentages must sum to 100") (fun () ->
      ignore (Harness.Mix.v ~insert:50 ~delete:49 ()));
  let m = Harness.Mix.v ~insert:5 ~delete:5 ~find:90 () in
  Alcotest.(check string) "label" "i5-d5-f90" (Harness.Mix.to_string m);
  Alcotest.(check string) "replace label" "i10-d10-r80"
    (Harness.Mix.to_string Harness.Mix.i10_d10_r80)

let test_paper_mixes () =
  let open Harness.Mix in
  Alcotest.(check int) "i5-d5-f90 find" 90 i5_d5_f90.find;
  Alcotest.(check int) "i50-d50-f0 insert" 50 i50_d50_f0.insert;
  Alcotest.(check int) "i15-d15-f70 delete" 15 i15_d15_f70.delete;
  Alcotest.(check int) "i10-d10-r80 replace" 80 i10_d10_r80.replace

let test_uniform_stream_bounds () =
  let rng = Rng.of_int_seed 5 in
  let next = Harness.key_stream Harness.Uniform 1000 rng in
  for _ = 1 to 10_000 do
    let k = next () in
    if k < 0 || k >= 1000 then Alcotest.failf "key %d out of range" k
  done

let test_clustered_stream_runs () =
  (* The paper's non-uniform workload: runs of 50 consecutive keys. *)
  let rng = Rng.of_int_seed 6 in
  let next = Harness.key_stream (Harness.Clustered 50) 100_000 rng in
  let k0 = next () in
  for i = 1 to 49 do
    let k = next () in
    Alcotest.(check int) "consecutive" ((k0 + i) mod 100_000) k
  done;
  (* Next run starts somewhere fresh but stays in range. *)
  let k' = next () in
  if k' < 0 || k' >= 100_000 then Alcotest.failf "key %d out of range" k'

let test_clustered_wraps () =
  let rng = Rng.of_int_seed 7 in
  let universe = 60 in
  let next = Harness.key_stream (Harness.Clustered 50) universe rng in
  for _ = 1 to 500 do
    let k = next () in
    if k < 0 || k >= universe then Alcotest.failf "key %d escaped [0,%d)" k universe
  done

let test_mean_stddev () =
  let d = Harness.mean_stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 d.Harness.mean;
  Alcotest.(check (float 1e-9)) "stddev" 2.0 d.Harness.stddev;
  let single = Harness.mean_stddev [ 42.0 ] in
  Alcotest.(check (float 1e-9)) "single mean" 42.0 single.Harness.mean;
  Alcotest.(check (float 1e-9)) "single stddev" 0.0 single.Harness.stddev

let test_prefill_half_full () =
  let present = ref 0 in
  let ops =
    Harness.
      {
        insert =
          (fun _ ->
            incr present;
            true);
        delete = (fun _ -> true);
        member = (fun _ -> true);
        replace = None;
        stats = None;
      }
  in
  let rng = Rng.of_int_seed 11 in
  Harness.prefill ops 10_000 rng;
  Alcotest.(check bool) "about half"
    true
    (!present > 4_500 && !present < 5_500)

let test_throughput_run_all_subjects () =
  (* End to end: every structure completes a short trial and reports a
     positive throughput. *)
  let workload =
    Harness.{ universe = 500; mix = Mix.i5_d5_f90; dist = Uniform }
  in
  let config =
    Harness.
      {
        default_config with
        threads = 2;
        seconds = 0.05;
        trials = 2;
        warmup_seconds = 0.0;
      }
  in
  List.iter
    (fun s ->
      let dp = Harness.run_subject s workload config in
      if dp.Harness.mean <= 0.0 then
        Alcotest.failf "%s reported non-positive throughput" s.Harness.label;
      Alcotest.(check int) "two samples" 2 (List.length dp.Harness.samples))
    Harness.all_subjects

let test_replace_workload_runs () =
  let workload =
    Harness.{ universe = 500; mix = Mix.i10_d10_r80; dist = Uniform }
  in
  let config =
    Harness.
      {
        default_config with
        threads = 2;
        seconds = 0.05;
        trials = 1;
        warmup_seconds = 0.0;
      }
  in
  let dp = Harness.run_subject Harness.pat_subject workload config in
  Alcotest.(check bool) "positive" true (dp.Harness.mean > 0.0)

let test_clustered_workload_runs () =
  let workload =
    Harness.{ universe = 2000; mix = Mix.i15_d15_f70; dist = Clustered 50 }
  in
  let config =
    Harness.
      {
        default_config with
        threads = 2;
        seconds = 0.05;
        trials = 1;
        warmup_seconds = 0.0;
      }
  in
  List.iter
    (fun s ->
      let dp = Harness.run_subject s workload config in
      if dp.Harness.mean <= 0.0 then
        Alcotest.failf "%s clustered run failed" s.Harness.label)
    Harness.all_subjects

let test_subject_labels () =
  Alcotest.(check (list string))
    "paper legend order"
    [ "PAT"; "4-ST"; "BST"; "AVL"; "SL"; "Ctrie" ]
    (List.map (fun s -> s.Harness.label) Harness.all_subjects)

let () =
  Alcotest.run "harness"
    [
      ( "workloads",
        [
          Alcotest.test_case "mix validation" `Quick test_mix_validation;
          Alcotest.test_case "paper mixes" `Quick test_paper_mixes;
          Alcotest.test_case "uniform stream" `Quick test_uniform_stream_bounds;
          Alcotest.test_case "clustered runs of 50" `Quick test_clustered_stream_runs;
          Alcotest.test_case "clustered wraps" `Quick test_clustered_wraps;
          Alcotest.test_case "prefill half-full" `Quick test_prefill_half_full;
        ] );
      ( "statistics",
        [ Alcotest.test_case "mean/stddev" `Quick test_mean_stddev ] );
      ( "end-to-end",
        [
          Alcotest.test_case "all subjects run" `Slow test_throughput_run_all_subjects;
          Alcotest.test_case "replace workload" `Slow test_replace_workload_runs;
          Alcotest.test_case "clustered workload" `Slow test_clustered_workload_runs;
          Alcotest.test_case "subject labels" `Quick test_subject_labels;
        ] );
    ]

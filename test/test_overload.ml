(* Overload-protection tests for patserve: accept-time shedding at
   --max-conns (BUSY frame then close), per-request queue deadlines,
   the slow-reader soft cap (stall, then resume once the client
   drains) and hard cap (counted eviction), the idle reaper, the
   client's retry layer surviving a shed, the watchdog's
   ok -> degraded:overload -> ok cycle, and survival of abrupt client
   disconnects.  All counters come from [Server.Metrics.snapshot]
   in-process; every test resets them first. *)

module P = Server.Protocol

let pat_server ?(domains = 2) ?watchdog ~limits ~universe () =
  Server.Metrics.reset ();
  let trie = Core.Patricia.create ~universe () in
  let ops =
    Server.
      {
        insert = Core.Patricia.insert trie;
        delete = Core.Patricia.delete trie;
        member = Core.Patricia.member trie;
        replace = (fun ~remove ~add -> Core.Patricia.replace trie ~remove ~add);
        size = (fun () -> Core.Patricia.size trie);
        snapshot = (fun () -> Core.Patricia.snapshot_capability trie);
        scan_cut = (fun () -> -1);
      }
  in
  Server.start ~port:0 ~domains ?watchdog ~limits ops

let with_server ?domains ?watchdog ~limits ~universe f =
  let srv = pat_server ?domains ?watchdog ~limits ~universe () in
  Fun.protect ~finally:(fun () -> Server.stop ~drain_s:0.5 srv) @@ fun () ->
  f (Server.port srv)

let with_client ?retries port f =
  let c = Server.Client.connect ~port ?retries () in
  Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () -> f c

let counter name =
  match List.assoc_opt name (Server.Metrics.snapshot ()) with
  | Some v -> v
  | None -> Alcotest.failf "no metrics counter %S" name

(* Poll [pred] until it holds or [timeout_s] elapses. *)
let await ?(timeout_s = 10.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let raw_connect ?rcvbuf port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match rcvbuf with
  | Some n -> Unix.setsockopt_int fd Unix.SO_RCVBUF n
  | None -> ());
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  fd

let read_until_eof fd =
  let buf = Bytes.create 4096 in
  let out = Buffer.create 64 in
  let rec go () =
    match Unix.read fd buf 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes out buf 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.to_bytes out

(* Decode every complete response frame in [bytes]. *)
let decode_responses bytes =
  let r = P.Reader.create () in
  P.Reader.feed r bytes (Bytes.length bytes);
  let rec drain acc =
    match P.Reader.next_payload r with
    | `None -> List.rev acc
    | `Bad msg -> Alcotest.failf "framing error: %s" msg
    | `Payload (buf, off, len) -> (
        match P.decode_response buf ~off ~len with
        | Result.Ok resp -> drain (resp :: acc)
        | Result.Error msg -> Alcotest.failf "decode error: %s" msg)
  in
  drain []

(* ------------------------------------------------------------------ *)
(* Accept-time admission: the (max_conns + 1)-th connection gets one
   seq-0 BUSY frame carrying the configured retry-after hint, then
   EOF; closing an admitted connection frees the slot. *)

let test_shed_at_max_conns () =
  let limits =
    { Server.default_limits with
      Server.max_conns = Some 2;
      retry_after_ms = 77 }
  in
  let srv = pat_server ~limits ~universe:64 () in
  Fun.protect ~finally:(fun () -> Server.stop ~drain_s:0.5 srv) @@ fun () ->
  let port = Server.port srv in
  with_client port @@ fun c1 ->
  with_client port @@ fun c2 ->
  ignore (Server.Client.insert c1 1);
  ignore (Server.Client.insert c2 2);
  Alcotest.(check int) "both registered" 2 (Server.live_conns srv);
  let fd = raw_connect port in
  let answer = read_until_eof fd in
  Unix.close fd;
  (match decode_responses answer with
  | [ { P.seq = 0; result = P.Busy { retry_after_ms = 77 } } ] -> ()
  | [ { P.seq = 0; result = P.Busy { retry_after_ms = h } } ] ->
      Alcotest.failf "BUSY with wrong retry-after hint %d" h
  | rs ->
      Alcotest.failf "expected one seq-0 BUSY frame, got %d" (List.length rs));
  Alcotest.(check bool) "shed counted" true (counter "shed" >= 1);
  Alcotest.(check bool) "shedding reports overload" true (Server.overloaded srv);
  (* Freeing a slot readmits: close one admitted connection, then a
     fresh client (with retries to absorb the close-detection lag)
     succeeds. *)
  Server.Client.close c1;
  await "slot freed" (fun () -> Server.live_conns srv <= 1);
  with_client ~retries:5 port @@ fun c3 ->
  Alcotest.(check bool) "readmitted" true (Server.Client.insert c3 9)

(* ------------------------------------------------------------------ *)
(* Queue deadline: with a zero budget every pipelined request is
   declined with a seq-tagged BUSY — counted, not executed — and the
   stream stays synchronized. *)

let test_queue_deadline_busy () =
  let limits =
    { Server.default_limits with
      Server.queue_deadline_ns = Some 0;
      retry_after_ms = 9 }
  in
  with_server ~domains:1 ~limits ~universe:64 @@ fun port ->
  with_client port @@ fun c ->
  let results =
    Server.Client.pipeline c (List.init 16 (fun i -> P.Insert (i mod 32)))
  in
  Alcotest.(check int) "every request answered" 16 (List.length results);
  let busy =
    List.length
      (List.filter (function P.Busy _ -> true | _ -> false) results)
  in
  Alcotest.(check bool) "pipeline declined under zero budget" true (busy >= 1);
  List.iter
    (function
      | P.Busy { retry_after_ms } ->
          Alcotest.(check int) "hint" 9 retry_after_ms
      | P.Bool _ -> () (* clock granularity can let a frame through *)
      | _ -> Alcotest.fail "unexpected result under queue deadline")
    results;
  Alcotest.(check bool) "busy replies counted" true
    (counter "busy_replies" >= busy);
  (* Declined requests did not execute: the insert counter moved only
     for the requests that came back Bool. *)
  let executed =
    List.length (List.filter (function P.Bool _ -> true | _ -> false) results)
  in
  Alcotest.(check int) "declines not executed" executed (counter "insert")

(* ------------------------------------------------------------------ *)
(* Slow reader, soft cap: once the per-connection output buffer passes
   the soft cap the server stops reading that fd, so the request
   counter plateaus below the offered load; draining the responses
   un-stalls it and every request is eventually answered. *)

let size_requests n =
  let b = Buffer.create (n * 9) in
  for _ = 1 to n do
    P.encode_request b { P.seq = 1; op = P.Size }
  done;
  Buffer.to_bytes b

let sends_done fd bytes off =
  (* Push as much of [bytes] from [off] as the socket accepts. *)
  let n = Bytes.length bytes in
  let rec go off =
    if off >= n then off
    else
      match Unix.write fd bytes off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          off
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go off

let test_soft_cap_stalls_then_resumes () =
  let limits =
    { Server.default_limits with
      Server.soft_buffer_bytes = 2 * 1024;
      hard_buffer_bytes = 8 * 1024 * 1024 }
  in
  with_server ~domains:1 ~limits ~universe:64 @@ fun port ->
  (* The response volume must beat the kernel's send-buffer autotuning
     ceiling (tcp_wmem max, typically 4 MiB) or the flood never backs
     up into the server's userspace buffer and the cap stays inert. *)
  let total = 500_000 in
  let bytes = size_requests total in
  let fd = raw_connect ~rcvbuf:4096 port in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.set_nonblock fd;
  (* Phase 1: flood without reading.  The server must stop absorbing
     requests well short of [total]. *)
  let off = ref (sends_done fd bytes 0) in
  let stable = ref (-1) and stable_since = ref 0. in
  await ~timeout_s:15.0 "request counter plateau" (fun () ->
      off := sends_done fd bytes !off;
      let served = counter "size" in
      if served >= total then
        Alcotest.fail "server absorbed the whole flood; soft cap inert";
      if served <> !stable then begin
        stable := served;
        stable_since := Unix.gettimeofday ();
        false
      end
      else served > 0 && Unix.gettimeofday () -. !stable_since > 0.5);
  Alcotest.(check bool) "stalled below offered load" true (!stable < total);
  (* Phase 2: drain responses while finishing the writes; the server
     resumes reading and answers every request. *)
  let answered = ref 0 in
  let buf = Bytes.create 65536 in
  let reader = P.Reader.create () in
  let deadline = Unix.gettimeofday () +. 30.0 in
  while !answered < total do
    if Unix.gettimeofday () > deadline then
      Alcotest.failf "drain stuck at %d/%d responses" !answered total;
    off := sends_done fd bytes !off;
    (match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> Alcotest.fail "server closed a merely-slow connection"
    | n ->
        P.Reader.feed reader buf n;
        let rec drain () =
          match P.Reader.next_payload reader with
          | `None -> ()
          | `Bad msg -> Alcotest.failf "framing error: %s" msg
          | `Payload (_, _, _) ->
              incr answered;
              drain ()
        in
        drain ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Unix.sleepf 0.002
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  done;
  Alcotest.(check int) "all requests eventually answered" total !answered;
  Alcotest.(check int) "no eviction at the soft cap" 0 (counter "evicted_slow");
  await "buffer gauge drains" (fun () -> counter "conn_buffer_bytes" = 0)

(* ------------------------------------------------------------------ *)
(* Slow reader, hard cap: a client that never reads is evicted once
   its buffered responses pass the hard cap; the server stays up. *)

let test_hard_cap_evicts () =
  let limits =
    { Server.default_limits with
      Server.soft_buffer_bytes = 4 * 1024;
      hard_buffer_bytes = 8 * 1024 }
  in
  with_server ~domains:1 ~limits ~universe:64 @@ fun port ->
  (* Enough responses to overflow kernel buffering (see the soft-cap
     test) and then blow the 8 KiB hard cap. *)
  let bytes = size_requests 800_000 in
  let fd = raw_connect ~rcvbuf:4096 port in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.set_nonblock fd;
  let off = ref 0 in
  await ~timeout_s:20.0 "slow-reader eviction" (fun () ->
      off := sends_done fd bytes !off;
      counter "evicted_slow" >= 1);
  (* The evicted fd reaches EOF (or reset) once the kernel buffers are
     consumed; meanwhile the server keeps serving other clients. *)
  with_client port @@ fun c ->
  Alcotest.(check bool) "server alive after eviction" true
    (Server.Client.insert c 3)

(* ------------------------------------------------------------------ *)
(* Idle reaper: a connection with no traffic and no pending output is
   closed after idle_timeout_s; the next use of it fails. *)

let test_idle_reaper () =
  let limits =
    { Server.default_limits with Server.idle_timeout_s = Some 0.2 }
  in
  with_server ~domains:1 ~limits ~universe:64 @@ fun port ->
  with_client port @@ fun c ->
  Alcotest.(check bool) "live before idling" true (Server.Client.insert c 1);
  await "idle connection reaped" (fun () -> counter "idle_reaped" >= 1);
  (match Server.Client.insert c 2 with
  | _ -> Alcotest.fail "request on a reaped connection succeeded"
  | exception Server.Client.Protocol_error _ -> ());
  (* A fresh, active connection is not reaped mid-conversation. *)
  with_client port @@ fun c2 ->
  for i = 0 to 9 do
    ignore (Server.Client.member c2 i);
    Unix.sleepf 0.05
  done;
  Alcotest.(check bool) "active connection survives" true
    (Server.Client.insert c2 5)

(* ------------------------------------------------------------------ *)
(* Client retry layer: with max_conns = 1 and the slot hogged, a
   client with a retry budget blocks in bounded backoff and succeeds
   once the hog disconnects. *)

let test_client_retries_through_shed () =
  let limits =
    { Server.default_limits with
      Server.max_conns = Some 1;
      retry_after_ms = 10 }
  in
  let srv = pat_server ~limits ~universe:64 () in
  Fun.protect ~finally:(fun () -> Server.stop ~drain_s:0.5 srv) @@ fun () ->
  let port = Server.port srv in
  let hog = Server.Client.connect ~port () in
  ignore (Server.Client.insert hog 1);
  let release =
    Domain.spawn (fun () ->
        Unix.sleepf 0.25;
        Server.Client.close hog)
  in
  Fun.protect ~finally:(fun () -> Domain.join release) @@ fun () ->
  with_client ~retries:10 port @@ fun c ->
  Alcotest.(check bool) "retried insert lands" true (Server.Client.insert c 7);
  Alcotest.(check bool) "at least one shed happened" true (counter "shed" >= 1)

(* Reconnect-and-resend: the server closes the connection while the
   client still has a pipelined window outstanding (the idle reaper
   stands in for any server-side close).  The dead window is forgotten
   — its replies can never be matched — but the next synchronous helper
   on the same client must transparently reconnect and resend. *)

let test_reconnect_resend_mid_window () =
  let limits =
    { Server.default_limits with Server.idle_timeout_s = Some 0.2 }
  in
  with_server ~domains:1 ~limits ~universe:256 @@ fun port ->
  with_client ~retries:3 port @@ fun c ->
  (* A full window in flight, responses deliberately not drained... *)
  ignore
    (Server.Client.send_many c (List.init 8 (fun i -> P.Insert i)) : int list);
  (* ...while the server closes the connection under the client. *)
  let base = counter "idle_reaped" in
  await "connection closed mid-window" (fun () -> counter "idle_reaped" > base);
  (* The first attempt trips over the dead connection (stale responses
     or EOF); the retry layer reconnects and resends.  Key 100 was not
     in the lost window, so [true] proves the resend executed. *)
  Alcotest.(check bool) "reconnect-and-resend lands" true
    (Server.Client.insert c 100);
  Alcotest.(check bool) "resent connection stays usable" true
    (Server.Client.member c 100)

(* Without a retry budget the same shed surfaces as Busy with the
   server's hint. *)
let test_client_no_retries_raises_busy () =
  let limits =
    { Server.default_limits with
      Server.max_conns = Some 1;
      retry_after_ms = 33 }
  in
  with_server ~limits ~universe:64 @@ fun port ->
  with_client port @@ fun hog ->
  ignore (Server.Client.insert hog 1);
  with_client port @@ fun c ->
  match Server.Client.insert c 2 with
  | _ -> Alcotest.fail "insert through a full server succeeded"
  | exception Server.Client.Busy { retry_after_ms } ->
      Alcotest.(check int) "hint surfaced" 33 retry_after_ms

(* ------------------------------------------------------------------ *)
(* Watchdog integration: /healthz is ok before overload, reports
   degraded:overload while shedding, and recovers to ok after the
   hysteresis window. *)

let test_healthz_overload_cycle () =
  let wd = Obs.Watchdog.create () in
  let limits =
    { Server.default_limits with
      Server.max_conns = Some 1;
      overload_hold_s = 0.4 }
  in
  with_server ~watchdog:wd ~limits ~universe:64 @@ fun port ->
  let health () = Obs.Watchdog.healthz wd () in
  (match health () with
  | 200, "ok\n" -> ()
  | code, body -> Alcotest.failf "expected ok, got %d %S" code body);
  with_client port @@ fun hog ->
  ignore (Server.Client.insert hog 1);
  (* Trip the admission limit. *)
  let fd = raw_connect port in
  ignore (read_until_eof fd);
  Unix.close fd;
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  (match health () with
  | 200, body when contains body "degraded" && contains body "overload" -> ()
  | code, body ->
      Alcotest.failf "expected degraded:overload, got %d %S" code body);
  await "overload clears after hysteresis" (fun () ->
      match health () with 200, "ok\n" -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Abrupt disconnects: a client that pipelines a window and vanishes
   (RST via SO_LINGER 0) must cost at most its own connection. *)

let test_abrupt_close_is_contained () =
  with_server ~limits:Server.default_limits ~universe:256 @@ fun port ->
  for _ = 1 to 10 do
    let fd = raw_connect port in
    let b = Buffer.create 1024 in
    for i = 1 to 50 do
      P.encode_request b { P.seq = i; op = P.Insert (i mod 256) }
    done;
    let bytes = Buffer.to_bytes b in
    ignore (Unix.write fd bytes 0 (Bytes.length bytes));
    Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
    Unix.close fd
  done;
  with_client port @@ fun c ->
  (* Key 77 was in none of the aborted pipelines, so a true insert
     proves the server both survived and stayed consistent. *)
  Alcotest.(check bool) "server alive after abrupt closes" true
    (Server.Client.insert c 77)

(* ------------------------------------------------------------------ *)
(* Stop with idle connections: the drain loop must not wait out the
   full drain budget on connections with nothing in flight. *)

let test_stop_closes_idle_quickly () =
  let srv = pat_server ~limits:Server.default_limits ~universe:64 () in
  let port = Server.port srv in
  let c = Server.Client.connect ~port () in
  ignore (Server.Client.insert c 1);
  let t0 = Unix.gettimeofday () in
  Server.stop ~drain_s:10.0 srv;
  let dt = Unix.gettimeofday () -. t0 in
  Server.Client.close c;
  if dt > 3.0 then
    Alcotest.failf "stop took %.1fs with only an idle connection" dt

let () =
  Alcotest.run "overload"
    [
      ( "admission",
        [
          Alcotest.test_case "shed at max-conns" `Quick test_shed_at_max_conns;
          Alcotest.test_case "queue deadline declines" `Quick
            test_queue_deadline_busy;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "soft cap stalls then resumes" `Slow
            test_soft_cap_stalls_then_resumes;
          Alcotest.test_case "hard cap evicts" `Slow test_hard_cap_evicts;
          Alcotest.test_case "idle reaper" `Quick test_idle_reaper;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "client retries through shed" `Quick
            test_client_retries_through_shed;
          Alcotest.test_case "reconnect-and-resend mid window" `Quick
            test_reconnect_resend_mid_window;
          Alcotest.test_case "client surfaces busy" `Quick
            test_client_no_retries_raises_busy;
          Alcotest.test_case "healthz overload cycle" `Quick
            test_healthz_overload_cycle;
          Alcotest.test_case "abrupt close contained" `Quick
            test_abrupt_close_is_contained;
          Alcotest.test_case "stop closes idle quickly" `Quick
            test_stop_closes_idle_quickly;
        ] );
    ]

(* patbench — full-control benchmark CLI for the Patricia-trie repro.

   Where bench/main.exe regenerates every figure with one command and
   environment-variable knobs, this tool exposes each experiment as a
   subcommand with proper flags, adds the paper's mentioned-but-not-
   plotted configurations, and adds our ablations:

     patbench figure --id 8 --threads 1,2,4 --seconds 2 --trials 4
     patbench extra  --which medium-contention
     patbench custom --insert 20 --delete 20 --find 60 --range 1000 \
                     --clustered 50
     patbench ablation --which replace|helping|width
*)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Common options *)

let threads_arg =
  let doc = "Comma-separated list of thread counts to sweep." in
  Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "threads" ] ~doc)

let seconds_arg =
  let doc = "Seconds per timed trial." in
  Arg.(value & opt float 1.0 & info [ "seconds" ] ~doc)

let trials_arg =
  let doc = "Trials per data point (mean and stddev are reported)." in
  Arg.(value & opt int 3 & info [ "trials" ] ~doc)

let seed_arg =
  let doc = "Base random seed for workloads and prefill." in
  Arg.(value & opt int 2013 & info [ "seed" ] ~doc)

let csv_arg =
  let doc = "Also print data points as CSV rows (structure,threads,mean,stddev)." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let metrics_arg =
  let doc =
    "Write a machine-readable metrics file (JSON): per data point latency \
     percentiles, PAT's contention counters, GC deltas, and raw throughput \
     samples.  Same schema as bench/main.exe (see EXPERIMENTS.md, \
     \"Observability\")."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~doc ~docv:"PATH")

let backoff_arg =
  let doc =
    "Enable bounded exponential backoff with jitter in the retry loops of \
     the structures under test (PAT and PAT-VLK).  Off by default so the \
     paper's figures are reproduced with the unmodified algorithm; see \
     EXPERIMENTS.md, \"Fault injection & progress\"."
  in
  Arg.(value & flag & info [ "backoff" ] ~doc)

let trace_out_arg =
  let doc =
    "Record every trie update attempt as a span in per-domain ring buffers \
     and write the merged timeline as Chrome trace-event JSON to $(docv) at \
     exit — open it in Perfetto (ui.perfetto.dev) or chrome://tracing, one \
     track per domain.  Ring overflow keeps the most recent attempts and is \
     reported, never silent."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"PATH")

let serve_arg =
  let doc =
    "Serve live metrics over HTTP on 127.0.0.1:$(docv) for the whole run: \
     GET /metrics returns Prometheus text (throughput counter, latency \
     quantiles, retry attribution, GC state), GET /healthz returns ok.  \
     Port 0 binds an ephemeral port (printed at startup).  Implies \
     latency recording and retry attribution."
  in
  Arg.(value & opt (some int) None & info [ "serve" ] ~doc ~docv:"PORT")

let attribution_arg =
  let doc =
    "Profile CAS-retry attribution: histogram every update retry by cause \
     (flag CAS lost, child CAS lost, flagged-ancestor help, backtrack, \
     structural conflict) and by the attempt depth at which it struck; \
     print the decomposition table at exit."
  in
  Arg.(value & flag & info [ "attribution" ] ~doc)

let set_backoff b = Chaos.Backoff.set_enabled b

(* Install the flight recorder around one subcommand invocation: the
   attempt-span trace ring (--trace-out), the retry-attribution profiler
   (--attribution, implied by --serve) and the live scrape endpoint
   (--serve).  Teardown always runs — the trace file and attribution
   table survive a failing sweep. *)
let with_flight_recorder ~trace_out ~serve ~attribution f =
  let tr =
    Option.map (fun _ -> Obs.Trace.create ~capacity:16384 ()) trace_out
  in
  Option.iter (fun t -> Obs.Trace.set_recorder (Some t)) tr;
  let profile = attribution || serve <> None in
  if profile then Obs.Attribution.set_enabled true;
  let server =
    Option.map
      (fun port ->
        Harness.Live.set_enabled true;
        let s = Obs.Serve.start ~port Harness.Live.prometheus in
        Format.printf "serving metrics on http://127.0.0.1:%d/metrics@."
          (Obs.Serve.port s);
        Format.print_flush ();
        s)
      serve
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Obs.Serve.stop server;
      Harness.Live.set_enabled false;
      Obs.Trace.set_recorder None;
      (match (tr, trace_out) with
      | Some t, Some path ->
          Obs.Perfetto.write ~path t;
          Format.printf
            "@.perfetto trace written to %s (%d events retained, %d dropped)@."
            path
            (List.length (Obs.Trace.dump t))
            (Obs.Trace.dropped t)
      | _ -> ());
      if profile then begin
        Format.printf "@.=== Retry attribution ===@.";
        Obs.Attribution.pp Format.std_formatter ();
        Obs.Attribution.set_enabled false
      end;
      Format.print_flush ())
    f

let config ~seconds ~trials ~seed threads =
  Harness.
    { threads; seconds; trials; warmup_seconds = min 0.3 (seconds /. 2.0); seed }

(* Metrics collection is per-invocation state: each subcommand's run
   flips [collect_metrics] through [with_metrics], every [run_sweep]
   appends its data points, and the file is written once at the end. *)
let collect_metrics = ref false
let metrics_acc : Obs.Json.t list ref = ref []

let write_metrics ~threads_list ~seconds ~trials ~seed path =
  let open Obs.Json in
  let doc =
    Obj
      [
        ("schema_version", Int 1);
        ("benchmark", Str "bin/patbench.exe");
        ( "config",
          Obj
            [
              ("seconds_per_trial", Float seconds);
              ("trials", Int trials);
              ("threads", Arr (List.map (fun t -> Int t) threads_list));
              ("seed", Int seed);
              ("available_cores", Int (Domain.recommended_domain_count ()));
              ("backoff", Bool (Chaos.Backoff.enabled ()));
              ("chaos_injection", Bool (Chaos.enabled ()));
            ] );
        ("datapoints", Arr (List.rev !metrics_acc));
      ]
  in
  match to_file path doc with
  | () ->
      Format.printf "@.metrics written to %s (%d datapoints)@." path
        (List.length !metrics_acc)
  | exception Sys_error m ->
      Format.eprintf "@.cannot write metrics file: %s@." m;
      exit 1

let with_metrics ~threads_list ~seconds ~trials ~seed metrics f =
  collect_metrics := metrics <> None;
  metrics_acc := [];
  let r = f () in
  Option.iter (write_metrics ~threads_list ~seconds ~trials ~seed) metrics;
  r

let run_sweep ~threads_list ~seconds ~trials ~seed ~csv ~title subjects workload =
  Format.printf "@.=== %s ===@." title;
  (* Metrics files and the live endpoint both want latency recording and
     PAT's internal counters; the bare sweep stays uninstrumented. *)
  let instrumented = !collect_metrics || Harness.Live.enabled () in
  let subjects =
    (* With metrics on, swap PAT for its counter-enabled twin so the
       "counters" object is populated. *)
    if instrumented then
      List.map
        (fun s ->
          if s.Harness.label = Core.Patricia.name then Harness.pat_subject_stats
          else s)
        subjects
    else subjects
  in
  let rows =
    List.map
      (fun subject ->
        ( subject.Harness.label,
          List.map
            (fun threads ->
              let full =
                Harness.run_subject_full ~record_latency:instrumented
                  subject workload
                  (config ~seconds ~trials ~seed threads)
              in
              if !collect_metrics then
                metrics_acc :=
                  Harness.datapoint_full_to_json ~section:title
                    ~label:subject.Harness.label workload ~threads full
                  :: !metrics_acc;
              full.Harness.dp)
            threads_list ))
      subjects
  in
  Harness.pp_series Format.std_formatter ~title ~threads_list rows;
  if csv then
    List.iter
      (fun (label, points) ->
        List.iter2
          (fun threads dp ->
            Format.printf "csv,%s,%d,%.0f,%.0f@." label threads dp.Harness.mean
              dp.Harness.stddev)
          threads_list points)
      rows;
  Format.print_flush ()

(* ------------------------------------------------------------------ *)
(* figure subcommand *)

let figure_cmd =
  let id_arg =
    let doc = "Which figure to regenerate (8, 9, 10 or 11)." in
    Arg.(required & opt (some int) None & info [ "id" ] ~doc)
  in
  let range_arg =
    let doc = "Override the key range (defaults to the paper's)." in
    Arg.(value & opt (some int) None & info [ "range" ] ~doc)
  in
  let run id range threads_list seconds trials seed csv metrics backoff
      trace_out serve attribution =
    set_backoff backoff;
    let sweep = run_sweep ~threads_list ~seconds ~trials ~seed ~csv in
    with_flight_recorder ~trace_out ~serve ~attribution @@ fun () ->
    with_metrics ~threads_list ~seconds ~trials ~seed metrics @@ fun () ->
    match id with
    | 8 ->
        let universe = Option.value range ~default:1_000_000 in
        sweep ~title:"Figure 8 (top): uniform i5-d5-f90" Harness.all_subjects
          Harness.{ universe; mix = Mix.i5_d5_f90; dist = Uniform };
        sweep ~title:"Figure 8 (bottom): uniform i50-d50-f0" Harness.all_subjects
          Harness.{ universe; mix = Mix.i50_d50_f0; dist = Uniform };
        `Ok ()
    | 9 ->
        let universe = Option.value range ~default:100 in
        sweep ~title:"Figure 9 (top): uniform i5-d5-f90, high contention"
          Harness.all_subjects
          Harness.{ universe; mix = Mix.i5_d5_f90; dist = Uniform };
        sweep ~title:"Figure 9 (bottom): uniform i50-d50-f0, high contention"
          Harness.all_subjects
          Harness.{ universe; mix = Mix.i50_d50_f0; dist = Uniform };
        `Ok ()
    | 10 ->
        let universe = Option.value range ~default:1_000_000 in
        sweep ~title:"Figure 10: PAT replace i10-d10-r80"
          [ Harness.pat_subject ]
          Harness.{ universe; mix = Mix.i10_d10_r80; dist = Uniform };
        `Ok ()
    | 11 ->
        let universe = Option.value range ~default:1_000_000 in
        sweep ~title:"Figure 11: non-uniform (runs of 50) i15-d15-f70"
          Harness.all_subjects
          Harness.{ universe; mix = Mix.i15_d15_f70; dist = Clustered 50 };
        `Ok ()
    | n -> `Error (false, Printf.sprintf "no figure %d in the paper's evaluation" n)
  in
  let doc = "Regenerate one of the paper's evaluation figures." in
  Cmd.v (Cmd.info "figure" ~doc)
    Term.(
      ret
        (const run $ id_arg $ range_arg $ threads_arg $ seconds_arg $ trials_arg
       $ seed_arg $ csv_arg $ metrics_arg $ backoff_arg $ trace_out_arg
       $ serve_arg $ attribution_arg))

(* ------------------------------------------------------------------ *)
(* extra subcommand: configurations the paper mentions without plotting *)

let extra_cmd =
  let which_arg =
    let doc =
      "Which extra experiment: medium-contention (range 10^3, the paper says \
       it resembles low contention), i15-d15-f70-uniform (ditto), or \
       clustered-runs (longer run lengths degrade BST/4-ST further)."
    in
    Arg.(
      value
      & opt (enum
               [
                 ("medium-contention", `Medium);
                 ("i15-d15-f70-uniform", `I15);
                 ("clustered-runs", `Runs);
                 ("kary-arity", `Arity);
               ])
          `Medium
      & info [ "which" ] ~doc)
  in
  let run which threads_list seconds trials seed csv metrics backoff trace_out
      serve attribution =
    set_backoff backoff;
    let sweep = run_sweep ~threads_list ~seconds ~trials ~seed ~csv in
    with_flight_recorder ~trace_out ~serve ~attribution @@ fun () ->
    with_metrics ~threads_list ~seconds ~trials ~seed metrics @@ fun () ->
    match which with
    | `Medium ->
        sweep ~title:"Extra: uniform i5-d5-f90, range 10^3 (medium contention)"
          Harness.all_subjects
          Harness.{ universe = 1_000; mix = Mix.i5_d5_f90; dist = Uniform };
        sweep ~title:"Extra: uniform i50-d50-f0, range 10^3" Harness.all_subjects
          Harness.{ universe = 1_000; mix = Mix.i50_d50_f0; dist = Uniform }
    | `I15 ->
        sweep ~title:"Extra: uniform i15-d15-f70, range 10^6" Harness.all_subjects
          Harness.
            { universe = 1_000_000; mix = Mix.i15_d15_f70; dist = Uniform }
    | `Runs ->
        List.iter
          (fun len ->
            sweep
              ~title:
                (Printf.sprintf "Extra: non-uniform runs of %d, i15-d15-f70" len)
              Harness.all_subjects
              Harness.
                {
                  universe = 1_000_000;
                  mix = Mix.i15_d15_f70;
                  dist = Clustered len;
                })
          [ 50; 200; 1000 ]
    | `Arity ->
        (* Re-check Brown & Helga's finding (which the paper adopts) that
           k = 4 is the sweet spot for the k-ary search tree. *)
        let subjects =
          List.map
            (fun arity ->
              Harness.
                {
                  label = Printf.sprintf "%d-ST" arity;
                  make =
                    (fun ~universe ->
                      let t = Kary.create_k ~k:arity ~universe () in
                      {
                        insert = Kary.insert t;
                        delete = Kary.delete t;
                        member = Kary.member t;
                        replace = None;
                        stats = None;
                      });
                })
            [ 2; 4; 8; 16; 32 ]
        in
        sweep ~title:"Extra: k-ary arity sweep, uniform i50-d50-f0, range 10^6"
          subjects
          Harness.{ universe = 1_000_000; mix = Mix.i50_d50_f0; dist = Uniform }
  in
  let doc = "Run configurations the paper mentions but does not plot." in
  Cmd.v (Cmd.info "extra" ~doc)
    Term.(
      const run $ which_arg $ threads_arg $ seconds_arg $ trials_arg $ seed_arg
      $ csv_arg $ metrics_arg $ backoff_arg $ trace_out_arg $ serve_arg
      $ attribution_arg)

(* ------------------------------------------------------------------ *)
(* custom subcommand *)

let custom_cmd =
  let pct name = Arg.(value & opt int 0 & info [ name ] ~doc:(name ^ " percentage")) in
  let range_arg =
    Arg.(value & opt int 1_000_000 & info [ "range" ] ~doc:"Key range (universe).")
  in
  let clustered_arg =
    let doc = "Use the non-uniform distribution with runs of this length." in
    Arg.(value & opt (some int) None & info [ "clustered" ] ~doc)
  in
  let run insert delete find replace range clustered threads_list seconds trials
      seed csv metrics backoff trace_out serve attribution =
    set_backoff backoff;
    match Harness.Mix.v ~insert ~delete ~find ~replace () with
    | exception Invalid_argument m -> `Error (false, m)
    | mix ->
        let dist =
          match clustered with
          | None -> Harness.Uniform
          | Some len -> Harness.Clustered len
        in
        let subjects =
          if replace > 0 then [ Harness.pat_subject ] else Harness.all_subjects
        in
        with_flight_recorder ~trace_out ~serve ~attribution @@ fun () ->
        with_metrics ~threads_list ~seconds ~trials ~seed metrics @@ fun () ->
        run_sweep ~threads_list ~seconds ~trials ~seed ~csv
          ~title:
            (Printf.sprintf "Custom: %s, range (0, %d)%s" (Harness.Mix.to_string mix)
               range
               (match clustered with
               | None -> ""
               | Some l -> Printf.sprintf ", runs of %d" l))
          subjects
          Harness.{ universe = range; mix; dist };
        `Ok ()
  in
  let doc = "Run a custom operation mix / distribution / range." in
  Cmd.v (Cmd.info "custom" ~doc)
    Term.(
      ret
        (const run $ pct "insert" $ pct "delete" $ pct "find" $ pct "replace"
       $ range_arg $ clustered_arg $ threads_arg $ seconds_arg $ trials_arg
       $ seed_arg $ csv_arg $ metrics_arg $ backoff_arg $ trace_out_arg
       $ serve_arg $ attribution_arg))

(* ------------------------------------------------------------------ *)
(* ablation subcommand *)

(* Replace vs non-atomic delete+insert on PAT: quantifies what the atomic
   operation costs (or saves) relative to the naive composition. *)
let ablation_replace ~threads_list ~seconds ~trials ~seed ~csv =
  let composed_subject =
    Harness.
      {
        label = "del+ins";
        make =
          (fun ~universe ->
            let t = Core.Patricia.create ~universe () in
            {
              insert = Core.Patricia.insert t;
              delete = Core.Patricia.delete t;
              member = Core.Patricia.member t;
              replace =
                Some
                  (fun remove add ->
                    (* Non-atomic composition: the pair of states is
                       transiently visible, unlike the real replace. *)
                    if Core.Patricia.delete t remove then begin
                      ignore (Core.Patricia.insert t add);
                      true
                    end
                    else false);
              stats = None;
            });
      }
  in
  run_sweep ~threads_list ~seconds ~trials ~seed ~csv
    ~title:"Ablation: atomic replace vs delete+insert, i10-d10-r80, range 10^6"
    [ Harness.pat_subject; composed_subject ]
    Harness.{ universe = 1_000_000; mix = Mix.i10_d10_r80; dist = Uniform }

(* Help-rate: how often updates retry, abandon flagging, help each other
   or back out as contention rises; uses the trie's internal counters. *)
let ablation_helping ~threads_list ~seconds ~trials ~seed ~csv =
  ignore csv;
  let zero =
    Core.Patricia.
      {
        attempts = 0;
        helps_given = 0;
        helps_received = 0;
        flag_failures = 0;
        backtracks = 0;
        backoff_waits = 0;
        descent_nodes_find = 0;
        descent_nodes_insert = 0;
        descent_nodes_delete = 0;
        descent_nodes_replace = 0;
        descent_searches = 0;
      }
  in
  Format.printf
    "@.=== Ablation: PAT coordination overhead vs contention (i50-d50-f0) ===@.";
  Format.printf "%-10s %8s %12s %12s %12s %12s %12s@." "range" "threads"
    "ops/s" "attempts/op" "flagfail/op" "helps/op" "backtrk/op";
  List.iter
    (fun universe ->
      List.iter
        (fun threads ->
          let t = ref None in
          let baseline = ref zero in
          let make_ops () =
            let trie = Core.Patricia.create ~universe ~record_stats:true () in
            t := Some trie;
            Harness.
              {
                insert = Core.Patricia.insert trie;
                delete = Core.Patricia.delete trie;
                member = Core.Patricia.member trie;
                replace = None;
                stats = None;
              }
          in
          (* Snapshot the counters after prefill and warm-up so the ratios
             reflect only the timed window. *)
          let before_timed () =
            baseline :=
              Option.value
                (Option.bind !t Core.Patricia.stats_snapshot)
                ~default:zero
          in
          let workload =
            Harness.{ universe; mix = Mix.i50_d50_f0; dist = Uniform }
          in
          let cfg = config ~seconds ~trials:1 ~seed threads in
          let dp = Harness.run ~before_timed ~make_ops workload cfg in
          let delta =
            match Option.bind !t Core.Patricia.stats_snapshot with
            | Some s ->
                let b = !baseline in
                Core.Patricia.
                  {
                    attempts = s.attempts - b.attempts;
                    helps_given = s.helps_given - b.helps_given;
                    helps_received = s.helps_received - b.helps_received;
                    flag_failures = s.flag_failures - b.flag_failures;
                    backtracks = s.backtracks - b.backtracks;
                    backoff_waits = s.backoff_waits - b.backoff_waits;
                    descent_nodes_find =
                      s.descent_nodes_find - b.descent_nodes_find;
                    descent_nodes_insert =
                      s.descent_nodes_insert - b.descent_nodes_insert;
                    descent_nodes_delete =
                      s.descent_nodes_delete - b.descent_nodes_delete;
                    descent_nodes_replace =
                      s.descent_nodes_replace - b.descent_nodes_replace;
                    descent_searches = s.descent_searches - b.descent_searches;
                  }
            | None -> zero
          in
          let ops_total = dp.Harness.mean *. seconds in
          let per c = float_of_int c /. ops_total in
          Format.printf "%-10d %8d %12.0f %12.3f %12.5f %12.5f %12.5f@."
            universe threads dp.Harness.mean
            (per delta.Core.Patricia.attempts)
            (per delta.Core.Patricia.flag_failures)
            (per delta.Core.Patricia.helps_given)
            (per delta.Core.Patricia.backtracks))
        threads_list)
    [ 100; 10_000; 1_000_000 ];
  ignore trials;
  Format.print_flush ()

(* Key-width sweep: same live key count, growing universe — longer keys
   mean longer trie paths; quantifies the height-vs-width tradeoff. *)
let ablation_width ~threads_list ~seconds ~trials ~seed ~csv =
  List.iter
    (fun universe ->
      run_sweep ~threads_list ~seconds ~trials ~seed ~csv
        ~title:
          (Printf.sprintf "Ablation: PAT key-width, range (0, %d), i50-d50-f0"
             universe)
        [ Harness.pat_subject ]
        Harness.{ universe; mix = Mix.i50_d50_f0; dist = Uniform })
    [ 1 lsl 8; 1 lsl 12; 1 lsl 16; 1 lsl 20; 1 lsl 24 ]

(* The price of lock-freedom: the concurrent trie vs the plain sequential
   trie, single-threaded.  The gap is the flag/descriptor machinery. *)
let ablation_seq ~threads_list ~seconds ~trials ~seed ~csv =
  ignore threads_list;
  let seq_subject =
    Harness.
      {
        label = "SEQ-PAT";
        make =
          (fun ~universe ->
            let t = Core.Patricia_seq.create ~universe () in
            {
              insert = Core.Patricia_seq.insert t;
              delete = Core.Patricia_seq.delete t;
              member = Core.Patricia_seq.member t;
              replace = None;
              stats = None;
            });
      }
  in
  List.iter
    (fun universe ->
      run_sweep ~threads_list:[ 1 ] ~seconds ~trials ~seed ~csv
        ~title:
          (Printf.sprintf
             "Ablation: coordination cost, 1 thread, range (0, %d), i50-d50-f0"
             universe)
        [ Harness.pat_subject; seq_subject ]
        Harness.{ universe; mix = Mix.i50_d50_f0; dist = Uniform })
    [ 1_000; 1_000_000 ]

(* Unbounded-length keys (Section VI) vs fixed-width keys carrying the
   same information: the cost of multi-word labels. *)
let ablation_vlk ~threads_list ~seconds ~trials ~seed ~csv =
  let universe = 65_536 in
  let vlk_subject =
    Harness.
      {
        label = "PAT-VLK";
        make =
          (fun ~universe:_ ->
            let t = Core.Patricia_vlk.create () in
            let key k = Printf.sprintf "%08x" k in
            {
              insert = (fun k -> Core.Patricia_vlk.insert t (key k));
              delete = (fun k -> Core.Patricia_vlk.delete t (key k));
              member = (fun k -> Core.Patricia_vlk.member t (key k));
              replace =
                Some
                  (fun remove add ->
                    Core.Patricia_vlk.replace t ~remove:(key remove)
                      ~add:(key add));
              stats = None;
            });
      }
  in
  run_sweep ~threads_list ~seconds ~trials ~seed ~csv
    ~title:
      (Printf.sprintf
         "Ablation: fixed-width vs unbounded keys, range (0, %d), i50-d50-f0"
         universe)
    [ Harness.pat_subject; vlk_subject ]
    Harness.{ universe; mix = Mix.i50_d50_f0; dist = Uniform }

(* Contention cliff: PAT with and without bounded exponential backoff on
   small universes, where retry storms are the dominant cost.  The same
   binary runs both arms so the comparison shares code and seeds. *)
let ablation_backoff ~threads_list ~seconds ~trials ~seed ~csv =
  let was = Chaos.Backoff.enabled () in
  Fun.protect ~finally:(fun () -> Chaos.Backoff.set_enabled was) @@ fun () ->
  List.iter
    (fun universe ->
      List.iter
        (fun backoff ->
          Chaos.Backoff.set_enabled backoff;
          run_sweep ~threads_list ~seconds ~trials ~seed ~csv
            ~title:
              (Printf.sprintf
                 "Ablation: backoff %s, range (0, %d), i50-d50-f0"
                 (if backoff then "on" else "off")
                 universe)
            [ Harness.pat_subject ]
            Harness.{ universe; mix = Mix.i50_d50_f0; dist = Uniform })
        [ false; true ])
    [ 100; 1_000 ]

let ablation_cmd =
  let which_arg =
    let doc = "Which ablation: replace, helping, width, seq, vlk, or backoff." in
    Arg.(
      value
      & opt
          (enum
             [
               ("replace", `Replace);
               ("helping", `Helping);
               ("width", `Width);
               ("seq", `Seq);
               ("vlk", `Vlk);
               ("backoff", `Backoff);
             ])
          `Replace
      & info [ "which" ] ~doc)
  in
  let run which threads_list seconds trials seed csv metrics backoff trace_out
      serve attribution =
    set_backoff backoff;
    with_flight_recorder ~trace_out ~serve ~attribution @@ fun () ->
    with_metrics ~threads_list ~seconds ~trials ~seed metrics @@ fun () ->
    match which with
    | `Replace -> ablation_replace ~threads_list ~seconds ~trials ~seed ~csv
    | `Helping -> ablation_helping ~threads_list ~seconds ~trials ~seed ~csv
    | `Width -> ablation_width ~threads_list ~seconds ~trials ~seed ~csv
    | `Seq -> ablation_seq ~threads_list ~seconds ~trials ~seed ~csv
    | `Vlk -> ablation_vlk ~threads_list ~seconds ~trials ~seed ~csv
    | `Backoff -> ablation_backoff ~threads_list ~seconds ~trials ~seed ~csv
  in
  let doc = "Run an ablation study on the Patricia trie's design choices." in
  Cmd.v (Cmd.info "ablation" ~doc)
    Term.(
      const run $ which_arg $ threads_arg $ seconds_arg $ trials_arg $ seed_arg
      $ csv_arg $ metrics_arg $ backoff_arg $ trace_out_arg $ serve_arg
      $ attribution_arg)

(* ------------------------------------------------------------------ *)
(* serve subcommand: the trie behind the patserve binary protocol *)

(* [Patricia.create]'s optional [?record_stats] keeps it out of
   [CONCURRENT_SET_WITH_REPLACE] verbatim; the ref lets the serve
   path switch descent accounting on for the recovered trie too
   (set before [Pstore.open_], read once at create). *)
let pstore_record_stats = ref false

module Pstore = Persist.Store.Make (struct
  include Core.Patricia

  let create ~universe () =
    Core.Patricia.create ~universe ~record_stats:!pstore_record_stats ()

  let snapshot = Core.Patricia.snapshot_capability
end)

let pp_recovery ppf (ri : Pstore.recovery_info) =
  Format.fprintf ppf
    "recovered: checkpoint %s (%d keys%s), wal %d segments / %d records / %d \
     replayed%s, last seq %d"
    (match ri.Pstore.checkpoint_seq with
    | Some s -> Printf.sprintf "@%d" s
    | None -> "none")
    ri.Pstore.checkpoint_keys
    (if ri.Pstore.checkpoints_skipped > 0 then
       Printf.sprintf ", %d corrupt skipped" ri.Pstore.checkpoints_skipped
     else "")
    ri.Pstore.wal_segments ri.Pstore.wal_records ri.Pstore.wal_replayed
    (if ri.Pstore.torn_tail then ", torn tail truncated" else "")
    ri.Pstore.last_seq

let serve_cmd =
  let port_arg =
    let doc = "TCP port to serve the set protocol on (0 = ephemeral)." in
    Arg.(value & opt int 7113 & info [ "port" ] ~doc)
  in
  let range_arg =
    Arg.(
      value & opt int 65_536
      & info [ "range" ] ~doc:"Key range (universe) of the served trie.")
  in
  let domains_arg =
    let doc = "Worker domains sharing the listening socket." in
    Arg.(value & opt int 4 & info [ "domains" ] ~doc)
  in
  let metrics_port_arg =
    let doc =
      "Also serve Prometheus metrics over HTTP on 127.0.0.1:$(docv): the \
       harness live families plus per-opcode patserve request counters and \
       latency histograms.  Port 0 binds an ephemeral port."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~doc ~docv:"PORT")
  in
  let seconds_opt_arg =
    let doc = "Stop (with a graceful drain) after this many seconds; \
               without it, serve until SIGINT/SIGTERM." in
    Arg.(value & opt (some float) None & info [ "seconds" ] ~doc)
  in
  let data_dir_arg =
    let doc =
      "Durable state directory (WAL segments + checkpoints).  On startup the \
       newest valid checkpoint is loaded and the log tail replayed; without \
       this flag the served set is purely in-memory."
    in
    Arg.(value & opt (some string) None & info [ "data-dir" ] ~doc ~docv:"DIR")
  in
  let durability_arg =
    let doc =
      "With --data-dir: $(b,none) recovers but logs nothing, $(b,async) logs \
       every mutation without fsync (crash loses the unwritten tail), \
       $(b,sync) group-commits — acknowledgements wait for the batch fsync, \
       so every acked mutation survives kill -9 and power loss."
    in
    Arg.(
      value
      & opt (enum [ ("none", `None); ("async", `Async); ("sync", `Sync) ]) `Sync
      & info [ "durability" ] ~doc)
  in
  let checkpoint_s_arg =
    let doc =
      "Write a checkpoint of the live trie every $(docv) seconds (beside \
       traffic, no pause) and delete WAL segments it supersedes."
    in
    Arg.(
      value & opt (some float) None & info [ "checkpoint-s" ] ~doc ~docv:"SECS")
  in
  let serve_trace_arg =
    let doc =
      "Record the fused server timeline — trie update attempts, per-request \
       stage spans on one Perfetto track per connection, and (with \
       --runtime-events) GC/STW spans on runtime tracks — and write it as \
       Chrome trace-event JSON to $(docv) at shutdown."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"PATH")
  in
  let runtime_events_arg =
    let doc =
      "Subscribe a collector domain to OCaml runtime events: GC pause and \
       STW spans are fused into the --trace-out timeline and exported as \
       patserve_gc_* metric families.  If the runtime-events subsystem \
       cannot start, the server logs a warning and keeps serving."
    in
    Arg.(value & flag & info [ "runtime-events" ] ~doc)
  in
  let memprof_arg =
    let doc =
      "Start the Gc.Memprof sampling allocation profiler: sampled \
       allocations are attributed to the operation/stage region being \
       executed and exported as patserve_alloc_* metric families plus the \
       /debug/allocs top-sites dump.  If the runtime does not support \
       memprof (OCaml 5.0-5.2 multicore), the server logs a warning, \
       exports patserve_alloc_up 0 and keeps serving."
    in
    Arg.(value & flag & info [ "memprof" ] ~doc)
  in
  let max_conns_arg =
    let doc =
      "Admission control: accept at most $(docv) simultaneous connections \
       across all workers; beyond it a new connection gets one BUSY frame \
       (with a retry-after hint) and is closed.  Without it, no limit."
    in
    Arg.(value & opt (some int) None & info [ "max-conns" ] ~doc ~docv:"N")
  in
  let idle_timeout_arg =
    let doc =
      "Reap connections with no traffic and no pending output for $(docv) \
       seconds.  Without it, idle connections are kept forever."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-timeout-s" ] ~doc ~docv:"SECS")
  in
  let queue_deadline_arg =
    let doc =
      "Per-request queue deadline: a request that waited more than $(docv) \
       milliseconds behind earlier frames of its pipeline window is answered \
       BUSY instead of executed.  Without it, no deadline."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "queue-deadline-ms" ] ~doc ~docv:"MS")
  in
  let soft_buffer_arg =
    let doc =
      "Per-connection output-buffer soft cap in KiB: above it the \
       connection is no longer read from, so the client's pipelining stalls \
       instead of growing the buffer (backpressure)."
    in
    Arg.(value & opt int 256 & info [ "soft-buffer-kb" ] ~doc ~docv:"KIB")
  in
  let hard_buffer_arg =
    let doc =
      "Per-connection output-buffer hard cap in KiB: a connection still \
       above it after a flush attempt is evicted (counted and logged)."
    in
    Arg.(value & opt int 4096 & info [ "hard-buffer-kb" ] ~doc ~docv:"KIB")
  in
  let follow_arg =
    let doc =
      "Start as a replication follower of the primary at $(docv): subscribe \
       to its WAL stream from the persisted watermark, apply every record \
       through the normal store path (re-logged into this server's own WAL), \
       serve reads within --staleness, and refuse mutations until PROMOTE.  \
       Requires --data-dir with --durability async or sync."
    in
    let parse s =
      match String.rindex_opt s ':' with
      | Some i -> (
          let host = String.sub s 0 i in
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some p when p > 0 && host <> "" -> Ok (host, p)
          | _ -> Error (`Msg ("expected HOST:PORT, got " ^ s)))
      | None -> Error (`Msg ("expected HOST:PORT, got " ^ s))
    in
    let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ "follow" ] ~doc ~docv:"HOST:PORT")
  in
  let bootstrap_arg =
    let doc =
      "With --follow: if subscribing from the persisted watermark is \
       rejected because the primary checkpointed that history away \
       (\"resync required\"), snapshot-bootstrap instead of exiting — \
       stream the primary's contents as frozen SCAN pages into this \
       (fresh, empty) store, then subscribe from the pages' WAL cut.  \
       Refused on a store that recovered any keys: bootstrap pages only \
       insert, so stale local keys would survive."
    in
    Arg.(value & flag & info [ "bootstrap" ] ~doc)
  in
  let staleness_arg =
    let doc =
      "Follower read staleness bound: MEMBER/SIZE are served while this \
       replica's applied position is within $(docv) records of the \
       primary's head, and declined BUSY past it (the watchdog reports \
       degraded: repl_lag at the same threshold)."
    in
    Arg.(value & opt int 1024 & info [ "staleness" ] ~doc ~docv:"RECORDS")
  in
  let repl_sync_arg =
    let doc =
      "Sync-ack replication (primary side): a mutation's acknowledgement \
       additionally waits until every attached follower has applied it, so \
       an acked write survives losing the primary outright.  Without it \
       followers trail asynchronously."
    in
    Arg.(value & flag & info [ "repl-sync" ] ~doc)
  in
  let run port range domains metrics_port seconds data_dir durability
      checkpoint_s trace_out runtime_events memprof max_conns idle_timeout_s
      queue_deadline_ms soft_buffer_kb hard_buffer_kb follow bootstrap
      staleness repl_sync =
    (* Anti-entropy hash tree width: enough prefix bits to cover the
       whole key universe, so a HASHCHECK descent bottoms out at a
       single key after [width] levels — the O(log n) bound. *)
    let hash_width =
      let w = ref 0 in
      while 1 lsl !w < range do
        incr w
      done;
      !w
    in
    (* Assemble the served operations, the ack barrier, the periodic-tick
       work, the teardown, the live trie handle (for the shape census
       and descent histogram) and the replication hooks from the
       durability configuration. *)
    let ops, get_trie, barrier, tick, teardown, durability_banner, repl, gate =
      match data_dir with
      | None ->
          (* Descent accounting rides on the metrics endpoint: striped
             per domain, so it does not serialize the served trie. *)
          let trie =
            Core.Patricia.create ~universe:range
              ~record_stats:(metrics_port <> None) ()
          in
          if follow <> None then
            failwith "patserve: --follow requires --data-dir (replication \
                      streams the WAL)";
          ( Server.
              {
                insert = Core.Patricia.insert trie;
                delete = Core.Patricia.delete trie;
                member = Core.Patricia.member trie;
                replace =
                  (fun ~remove ~add -> Core.Patricia.replace trie ~remove ~add);
                size = (fun () -> Core.Patricia.size trie);
                snapshot =
                  (fun () -> Core.Patricia.snapshot_capability trie);
                scan_cut = (fun () -> -1);
              },
            (fun () -> trie),
            (fun () -> ()),
            (fun () -> ()),
            (fun () -> ()),
            "in-memory",
            None,
            None )
      | Some dir ->
          let mode =
            match durability with
            | `None -> Pstore.Ephemeral
            | `Async -> Pstore.Async
            | `Sync -> Pstore.Sync
          in
          if follow <> None && mode = Pstore.Ephemeral then
            failwith "patserve: --follow requires --durability async or sync \
                      (the follower re-logs applied records)";
          pstore_record_stats := metrics_port <> None;
          (* Behind a ref: PROMOTE swaps in a freshly recovered store
             (seal the WAL, re-run open-time recovery, start a new
             writer) while the serving closures stay in place. *)
          let store = ref (Pstore.open_ ~dir ~universe:range ~mode ()) in
          Persist.Metrics.set_queue_depth_source
            (Some (fun () -> Pstore.queue_depth !store));
          Format.printf "patserve: %a@." pp_recovery
            (Pstore.recovery_info !store);
          (* Replication roles.  A durable server is always willing to
             be a primary (it has a WAL to stream); with --follow it
             starts as a follower instead and becomes a primary only
             through PROMOTE. *)
          let primary : Replica.Primary.t option ref = ref None in
          let follower : Replica.Follower.t option ref = ref None in
          let repl_mu = Mutex.create () in
          let wire_primary () =
            match Pstore.wal_writer !store with
            | None -> ()
            | Some w ->
                let p =
                  Replica.Primary.create ~dir ~writer:w ~sync_ack:repl_sync ()
                in
                Pstore.set_retention_hook !store
                  (Replica.Primary.retention_floor p);
                primary := Some p
          in
          let follower_ops =
            (* Forced application through the normal store path: the
               result-conditional logging means every effect that
               changed the trie lands in the follower's own WAL, so
               crash recovery is the ordinary open path, verbatim. *)
            Replica.Follower.
              {
                apply_insert =
                  (fun k -> ignore (Pstore.insert !store k : bool));
                apply_delete =
                  (fun k -> ignore (Pstore.delete !store k : bool));
                wal_sync =
                  (fun () ->
                    match Pstore.wal_writer !store with
                    | Some w ->
                        let last = Pstore.last_logged_here !store in
                        if last >= 0 then
                          Persist.Wal.Writer.wait_durable w last
                    | None -> ());
              }
          in
          (match follow with
          | None -> wire_primary ()
          | Some (fhost, fport) -> (
              let subscribe from_seq =
                Replica.Follower.start ~addr:fhost ~port:fport ~from_seq
                  ~watermark_dir:dir follower_ops
              in
              let contains_resync msg =
                let n = String.length msg in
                let rec go i =
                  i + 6 <= n && (String.sub msg i 6 = "resync" || go (i + 1))
                in
                go 0
              in
              let from_seq =
                match Replica.Watermark.read ~dir with
                | Some w -> w + 1
                | None -> 0
              in
              let started =
                match subscribe from_seq with
                | Result.Error msg when contains_resync msg && not bootstrap ->
                    (* Distinct exit code: the follower is not broken, it
                       is stale past the primary's retained history.  An
                       orchestrator matches on 3 to trigger the resync
                       remedy instead of a blind restart loop. *)
                    Format.eprintf
                      "patserve: cannot follow %s:%d: %s@.patserve: the \
                       primary no longer retains WAL history back to seq %d \
                       — snapshot-bootstrap this follower instead: wipe its \
                       --data-dir and re-run with --bootstrap to stream the \
                       primary's frozen SCAN pages and subscribe from their \
                       WAL cut.@."
                      fhost fport msg from_seq;
                    Format.pp_print_flush Format.err_formatter ();
                    exit 3
                | Result.Error msg when contains_resync msg ->
                    if Pstore.size !store > 0 then begin
                      Format.eprintf
                        "patserve: --bootstrap needs a fresh store, but %s \
                         recovered %d keys; wipe the --data-dir first \
                         (bootstrap pages only insert, so stale local keys \
                         would survive).@."
                        dir (Pstore.size !store);
                      Format.pp_print_flush Format.err_formatter ();
                      exit 3
                    end;
                    (match
                       Replica.Follower.bootstrap ~addr:fhost ~port:fport
                         follower_ops
                     with
                    | Result.Error bmsg ->
                        failwith ("patserve: snapshot-bootstrap: " ^ bmsg)
                    | Result.Ok (bs_from, keys) ->
                        Format.printf
                          "patserve: snapshot-bootstrap streamed %d keys \
                           from %s:%d; subscribing from seq %d@."
                          keys fhost fport bs_from;
                        (* Stamp the watermark before subscribing so a
                           crash in the gap re-subscribes from the cut,
                           not from seq 0. *)
                        Replica.Watermark.write ~dir (bs_from - 1);
                        subscribe bs_from)
                | r -> r
              in
              match started with
              | Result.Error msg ->
                  failwith ("patserve: cannot follow: " ^ msg)
              | Result.Ok f ->
                  Format.printf
                    "patserve: following %s:%d (staleness bound %d \
                     records%s)@."
                    fhost fport staleness
                    (if repl_sync then ", will sync-ack after promotion"
                     else "");
                  follower := Some f));
          Replica.Metrics.set_lag_sources
            ~records:
              (Some
                 (fun () ->
                   match (!follower, !primary) with
                   | Some f, _ -> Replica.Follower.lag_records f
                   | None, Some p -> Replica.Primary.lag_records p
                   | None, None -> 0))
            ~bytes:
              (Some
                 (fun () ->
                   match (!follower, !primary) with
                   | Some f, _ -> Replica.Follower.lag_bytes f
                   | None, Some p -> Replica.Primary.lag_bytes p
                   | None, None -> 0));
          let repl_hooks =
            Server.
              {
                subscribe =
                  (fun ~fd ~seq ~from_seq ->
                    match !primary with
                    | Some p -> Replica.Primary.subscribe p ~fd ~seq ~from_seq
                    | None ->
                        Replica.reject_subscribe
                          ~reason:
                            "not a primary: followers do not serve \
                             subscriptions"
                          ~fd ~seq ~from_seq);
                hashcheck =
                  (fun ~prefix ~len ->
                    let trie = Pstore.underlying !store in
                    let fold ~lo ~hi ~init ~f =
                      Core.Patricia.fold_range trie ~lo ~hi ~init ~f
                    in
                    Replica.Hash.hashes fold ~width:hash_width ~prefix ~len);
                promote =
                  (fun () ->
                    Mutex.lock repl_mu;
                    Fun.protect
                      ~finally:(fun () -> Mutex.unlock repl_mu)
                    @@ fun () ->
                    match !follower with
                    | None ->
                        (* Already a primary (or promoted concurrently):
                           PROMOTE is idempotent by design — the crash
                           fuzzer promotes twice on purpose. *)
                        Result.Ok ()
                    | Some f ->
                        (* Detach (final watermark persisted), seal the
                           follower's WAL, and flip to primary through
                           the ordinary open-time recovery. *)
                        Replica.Follower.stop f;
                        follower := None;
                        Pstore.close !store;
                        store := Pstore.open_ ~dir ~universe:range ~mode ();
                        wire_primary ();
                        Obs.Counter.incr Replica.Metrics.promotions;
                        Format.printf "patserve: promoted to primary: %a@."
                          pp_recovery
                          (Pstore.recovery_info !store);
                        Format.print_flush ();
                        Result.Ok ());
              }
          in
          let gate op =
            match !follower with
            | None -> `Proceed
            | Some f ->
                Replica.Gate.follower ~staleness
                  ~lag:(fun () -> Replica.Follower.lag_records f)
                  ~retry_after_ms:25 op
          in
          let ops =
            Server.
              {
                insert = (fun k -> Pstore.insert !store k);
                delete = (fun k -> Pstore.delete !store k);
                member = (fun k -> Pstore.member !store k);
                replace =
                  (fun ~remove ~add -> Pstore.replace !store ~remove ~add);
                size = (fun () -> Pstore.size !store);
                snapshot = (fun () -> Pstore.snapshot !store);
                scan_cut = (fun () -> Pstore.scan_cut !store);
              }
          in
          let run_checkpoint () =
            let keys, deleted = Pstore.checkpoint !store in
            Format.printf "patserve: checkpoint (%d keys, %d segments freed)@."
              keys deleted;
            Format.print_flush ()
          in
          let last_ckpt = ref (Unix.gettimeofday ()) in
          let tick () =
            match checkpoint_s with
            | Some every
              when mode <> Pstore.Ephemeral
                   && Unix.gettimeofday () -. !last_ckpt >= every ->
                run_checkpoint ();
                last_ckpt := Unix.gettimeofday ()
            | _ -> ()
          in
          let teardown () =
            (* Detach replication first: the follower's stop persists a
               final watermark, the primary's joins its streamers. *)
            (match !follower with
            | Some f ->
                Replica.Follower.stop f;
                follower := None
            | None -> ());
            (match !primary with
            | Some p ->
                Replica.Primary.stop p;
                primary := None
            | None -> ());
            Replica.Metrics.set_lag_sources ~records:None ~bytes:None;
            (* Final image makes the next open cheap; the writer must
               still be running (checkpoint awaits durability). *)
            if mode <> Pstore.Ephemeral then run_checkpoint ();
            Pstore.close !store
          in
          ( ops,
            (fun () -> Pstore.underlying !store),
            (fun () ->
              Pstore.barrier !store;
              (* Sync-ack: the acknowledgement additionally waits until
                 every attached follower has applied this domain's last
                 logged record. *)
              match !primary with
              | Some p ->
                  Replica.Primary.wait_acked p (Pstore.last_logged_here !store)
              | None -> ()),
            tick,
            teardown,
            Printf.sprintf "durability=%s dir=%s%s" (Pstore.mode_name mode) dir
              (match follow with
              | Some (h, p) -> Printf.sprintf " follower-of=%s:%d" h p
              | None -> ""),
            Some repl_hooks,
            Some gate )
    in
    (* Flight recorder: the same trace ring collects trie attempt spans,
       per-connection request/stage spans and (below) runtime-events
       GC spans, so one Perfetto file shows all three layers aligned. *)
    let recorder =
      Option.map (fun _ -> Obs.Trace.create ~capacity:65536 ()) trace_out
    in
    Option.iter (fun t -> Obs.Trace.set_recorder (Some t)) recorder;
    let runtime =
      if not runtime_events then None
      else
        match Obs.Runtime.start () with
        | Ok rt ->
            Format.printf "patserve: runtime-events collector attached@.";
            Some rt
        | Error m ->
            (* Never fatal: degraded observability beats a dead server. *)
            Format.printf
              "patserve: warning: runtime-events unavailable (%s), \
               continuing without GC telemetry@."
              m;
            None
    in
    let memprof_t =
      if not memprof then None
      else
        match Obs.Memprof.start () with
        | Ok mp ->
            Format.printf "patserve: memprof allocation profiler attached@.";
            Some mp
        | Error m ->
            (* Same contract as runtime-events: degraded observability
               beats a dead server; patserve_alloc_up stays 0. *)
            Format.printf
              "patserve: warning: memprof unavailable (%s), continuing \
               without allocation profiling@."
              m;
            None
    in
    let wd = Obs.Watchdog.create () in
    Obs.Watchdog.gauge wd ~name:"wal-queue" ~degraded_above:10_000
      ~stalled_above:100_000 Persist.Metrics.queue_depth;
    (* Replication lag rides the same watchdog: past the staleness
       bound /healthz reports "degraded: repl_lag".  Reads 0 on an
       unreplicated server (no lag sources installed). *)
    Obs.Watchdog.gauge wd ~name:"repl_lag" ~degraded_above:staleness
      Replica.Metrics.lag_records;
    Obs.Watchdog.start_monitor wd;
    let limits =
      {
        Server.default_limits with
        Server.max_conns;
        idle_timeout_s = idle_timeout_s;
        queue_deadline_ns =
          Option.map (fun ms -> int_of_float (ms *. 1e6)) queue_deadline_ms;
        soft_buffer_bytes = soft_buffer_kb * 1024;
        hard_buffer_bytes = hard_buffer_kb * 1024;
      }
    in
    let srv =
      Server.start ~port ~domains ~barrier ~watchdog:wd ~limits ?repl ?gate ops
    in
    Format.printf "patserve: %d domains on 127.0.0.1:%d, range (0, %d), %s@."
      domains (Server.port srv) range durability_banner;
    (match max_conns with
    | Some m -> Format.printf "patserve: admission limit %d connections@." m
    | None -> ());
    let metrics =
      Option.map
        (fun p ->
          Harness.Live.set_enabled true;
          Harness.Live.clear_extra_producers ();
          Harness.Live.add_extra_producer Server.Metrics.emit;
          Harness.Live.add_extra_producer Persist.Metrics.emit;
          Harness.Live.add_extra_producer Replica.Metrics.emit;
          Harness.Live.add_extra_producer (Obs.Watchdog.emit wd);
          if runtime <> None then
            Harness.Live.add_extra_producer Obs.Runtime.emit;
          (* Structure forensics: the shape census (pat_shape_*; an O(n)
             read-only walk per scrape), the descent-depth histogram
             when the trie records stats, and the allocation-profiler
             families (patserve_alloc_up 0 when memprof is off or
             unsupported). *)
          Harness.Live.add_extra_producer (fun b ->
              match Core.Patricia.census (get_trie ()) with
              | Some c -> Obs.Shape.emit b c
              | None -> ());
          Harness.Live.add_extra_producer (fun b ->
              match Core.Patricia.descent_summary (get_trie ()) with
              | Some s ->
                  Obs.Prometheus.histogram_summary b ~name:"pat_descent_depth"
                    ~help:"Nodes visited per search (descent depth)" s
              | None -> ());
          Harness.Live.add_extra_producer Obs.Memprof.emit;
          let routes =
            [
              ( "/debug/slowlog",
                fun () ->
                  ( "application/json",
                    Obs.Json.to_string (Obs.Slowlog.to_json Server.slowlog)
                    ^ "\n" ) );
              ( "/debug/shape",
                fun () ->
                  ( "application/json",
                    (match Core.Patricia.census (get_trie ()) with
                    | Some c -> Obs.Json.to_string (Obs.Shape.to_json c)
                    | None -> "null")
                    ^ "\n" ) );
              ( "/debug/allocs",
                fun () ->
                  ( "application/json",
                    Obs.Json.to_string (Obs.Memprof.sites_json ()) ^ "\n" ) );
            ]
          in
          let s =
            Obs.Serve.start ~port:p ~routes
              ~health:(Obs.Watchdog.healthz wd)
              Harness.Live.prometheus
          in
          Format.printf "serving metrics on http://127.0.0.1:%d/metrics@."
            (Obs.Serve.port s);
          s)
        metrics_port
    in
    Format.print_flush ();
    let stopping = Atomic.make false in
    let request_stop _ = Atomic.set stopping true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    let deadline =
      Option.map (fun s -> Unix.gettimeofday () +. s) seconds
    in
    let expired () =
      match deadline with
      | Some d -> Unix.gettimeofday () >= d
      | None -> false
    in
    while not (Atomic.get stopping || expired ()) do
      (try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      tick ()
    done;
    Format.printf "patserve: draining and stopping@.";
    Format.print_flush ();
    Server.stop ~drain_s:1.0 srv;
    teardown ();
    Obs.Watchdog.stop_monitor wd;
    Option.iter Obs.Runtime.stop runtime;
    Option.iter Obs.Memprof.stop memprof_t;
    (* Write the trace only after the runtime collector's final drain so
       the last GC spans make it into the file. *)
    Obs.Trace.set_recorder None;
    (match (recorder, trace_out) with
    | Some t, Some path ->
        Obs.Perfetto.write ~path t;
        Format.printf
          "patserve: fused trace written to %s (%d events retained, %d \
           dropped)@."
          path
          (List.length (Obs.Trace.dump t))
          (Obs.Trace.dropped t)
    | _ -> ());
    (match Obs.Slowlog.dump Server.slowlog with
    | [] -> ()
    | entries ->
        let shown = List.filteri (fun i _ -> i < 10) entries in
        Format.printf
          "patserve: slowest requests (top %d of %d admitted, %d slots)@."
          (List.length shown)
          (Obs.Slowlog.inserted Server.slowlog)
          (Obs.Slowlog.capacity Server.slowlog);
        List.iter
          (fun e -> Format.printf "  %a@." Obs.Slowlog.pp_entry e)
          shown);
    Option.iter Obs.Serve.stop metrics;
    Harness.Live.clear_extra_producers ();
    Harness.Live.set_enabled false;
    Persist.Metrics.set_queue_depth_source None;
    Format.print_flush ()
  in
  let doc = "Serve the Patricia trie over the patserve binary protocol." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ port_arg $ range_arg $ domains_arg $ metrics_port_arg
      $ seconds_opt_arg $ data_dir_arg $ durability_arg $ checkpoint_s_arg
      $ serve_trace_arg $ runtime_events_arg $ memprof_arg $ max_conns_arg
      $ idle_timeout_arg $ queue_deadline_arg $ soft_buffer_arg
      $ hard_buffer_arg $ follow_arg $ bootstrap_arg $ staleness_arg
      $ repl_sync_arg)

(* ------------------------------------------------------------------ *)
(* recover subcommand: offline recovery / inspection of a data dir *)

let recover_cmd =
  let data_dir_arg =
    let doc = "Durable state directory to recover." in
    Arg.(
      required
      & opt (some string) None
      & info [ "data-dir" ] ~doc ~docv:"DIR")
  in
  let range_arg =
    Arg.(
      value & opt int 65_536
      & info [ "range" ]
          ~doc:"Key range (universe) the directory was served with.")
  in
  let compact_arg =
    let doc =
      "After recovering, write a fresh checkpoint of the recovered state and \
       delete the WAL segments it supersedes."
    in
    Arg.(value & flag & info [ "compact" ] ~doc)
  in
  let run dir range compact =
    match Pstore.open_ ~dir ~universe:range ~mode:Pstore.Ephemeral () with
    | exception Failure m -> `Error (false, m)
    | store -> (
        Format.printf "%a@." pp_recovery (Pstore.recovery_info store);
        Format.printf "recovered set: %d keys@." (Pstore.size store);
        match Core.Patricia.check_invariants (Pstore.underlying store) with
        | Result.Error m ->
            `Error (false, "recovered trie violates invariants: " ^ m)
        | Result.Ok () ->
            if compact then begin
              let keys, deleted = Pstore.checkpoint store in
              Format.printf "compacted: checkpoint with %d keys, %d segments \
                             deleted@."
                keys deleted
            end;
            Format.print_flush ();
            `Ok ())
  in
  let doc =
    "Recover a --data-dir offline: load the newest valid checkpoint, replay \
     the WAL tail (truncating a torn tail), verify the trie's structural \
     invariants and report what was recovered."
  in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(ret (const run $ data_dir_arg $ range_arg $ compact_arg))

(* ------------------------------------------------------------------ *)
(* load subcommand: closed-loop load generator against a running server *)

let load_cmd =
  let addr_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "addr" ] ~doc:"Server address.")
  in
  let port_arg =
    Arg.(value & opt int 7113 & info [ "port" ] ~doc:"Server port.")
  in
  let domains_arg =
    let doc = "Generator domains (one connection each)." in
    Arg.(value & opt int 4 & info [ "domains" ] ~doc)
  in
  let depth_arg =
    let doc = "Pipeline window: requests kept in flight per connection." in
    Arg.(value & opt int 16 & info [ "depth" ] ~doc)
  in
  let seconds_arg' =
    Arg.(value & opt float 5.0 & info [ "seconds" ] ~doc:"Load duration.")
  in
  let pct name dflt =
    Arg.(value & opt int dflt & info [ name ] ~doc:(name ^ " percentage"))
  in
  let range_arg =
    Arg.(
      value & opt int 65_536
      & info [ "range" ] ~doc:"Key range (must match the server's).")
  in
  let scrape_port_arg =
    let doc =
      "Scrape the server's Prometheus endpoint on 127.0.0.1:$(docv) at the \
       end of the run and embed the server-side per-opcode stage p50/p99 and \
       WAL fsync p99 in the report — the cross-check that client-observed \
       tail latency matches what the server accounted for."
    in
    Arg.(
      value & opt (some int) None & info [ "scrape-port" ] ~doc ~docv:"PORT")
  in
  let open_loop_arg =
    let doc =
      "Open-loop mode: offer $(docv) requests per second (total across \
       domains) on a fixed schedule instead of the closed loop — the \
       instrument for measuring overload.  Reports offered vs acked \
       (goodput), BUSY sheds/declines, lost requests and disconnects; \
       never fails on server overload, that is what it measures."
    in
    Arg.(
      value & opt (some float) None & info [ "open-loop" ] ~doc ~docv:"RATE")
  in
  let scan_every_arg =
    let doc =
      "Mix one SCAN page per $(docv) generated requests into the workload \
       (closed loop only; 0 = never).  Each generator runs a resumable \
       cursor and verifies every page against the cursor contract."
    in
    Arg.(value & opt int 0 & info [ "scan-every" ] ~doc ~docv:"N")
  in
  let scan_count_arg =
    Arg.(
      value & opt int 256
      & info [ "scan-count" ] ~doc:"Page size for generated SCANs.")
  in
  let run_open_loop ~addr ~port ~domains ~seconds ~mix ~range ~seed ~metrics
      rate =
    let cfg =
      Server.Loadgen.
        {
          addr;
          port;
          domains;
          rate;
          seconds;
          mix;
          universe = range;
          dist = Harness.Uniform;
          seed;
          reconnect_s = 0.05;
        }
    in
    Format.printf
      "load: open loop, offering %.0f req/s (%s) for %.1fs on %d domains@."
      rate (Harness.Mix.to_string mix) seconds domains;
    Format.print_flush ();
    let r = Server.Loadgen.run_open cfg in
    let l = r.Server.Loadgen.latency in
    Format.printf
      "load: offered %d, sent %d, acked %d in %.2fs = %.0f ops/s goodput@.\
       load: busy %d (shed rate %.3f), errors %d, lost %d, disconnects %d@.\
       load: ack latency ns p50=%d p90=%d p99=%d p99.9=%d max=%d@."
      r.Server.Loadgen.offered r.Server.Loadgen.sent r.Server.Loadgen.acked
      r.Server.Loadgen.elapsed_s r.Server.Loadgen.goodput
      r.Server.Loadgen.busy r.Server.Loadgen.shed_rate
      r.Server.Loadgen.errors r.Server.Loadgen.lost
      r.Server.Loadgen.disconnects l.Obs.Histogram.p50 l.Obs.Histogram.p90
      l.Obs.Histogram.p99 l.Obs.Histogram.p999 l.Obs.Histogram.max;
    Option.iter
      (fun path ->
        Obs.Json.to_file path (Server.Loadgen.open_report_to_json cfg r);
        Format.printf "load: report written to %s@." path)
      metrics;
    Format.print_flush ();
    `Ok ()
  in
  let run addr port domains depth seconds insert delete find replace range seed
      metrics scrape open_loop scan_every scan_count =
    match Harness.Mix.v ~insert ~delete ~find ~replace () with
    | exception Invalid_argument m -> `Error (false, m)
    | mix when open_loop <> None -> (
        match
          run_open_loop ~addr ~port ~domains ~seconds ~mix ~range ~seed
            ~metrics (Option.get open_loop)
        with
        | r -> r
        | exception Unix.Unix_error (e, fn, _) ->
            `Error
              (false, Printf.sprintf "%s failed: %s" fn (Unix.error_message e)))
    | mix -> (
        let cfg =
          Server.Loadgen.
            {
              addr;
              port;
              domains;
              depth;
              seconds;
              mix;
              universe = range;
              dist = Harness.Uniform;
              seed;
              journal = false;
              tolerate_disconnect = false;
              partition = false;
              scrape_port = scrape;
              scan_every;
              scan_count;
            }
        in
        try
          (* Size accounting baseline: works against a non-empty server
             too, the expectation is relative to what we found. *)
          let c0 = Server.Client.connect ~addr ~port () in
          let size_before = Server.Client.size c0 in
          Server.Client.close c0;
          let prefilled =
            Server.Loadgen.prefill ~addr ~port ~universe:range ~seed ()
          in
          Format.printf
            "load: prefilled %d keys (server had %d), running %s for %.1fs on \
             %d domains, depth %d@."
            prefilled size_before (Harness.Mix.to_string mix) seconds domains
            depth;
          Format.print_flush ();
          let r = Server.Loadgen.run cfg in
          let c1 = Server.Client.connect ~addr ~port () in
          let final = Server.Client.size c1 in
          Server.Client.close c1;
          let expected = size_before + prefilled + r.Server.Loadgen.size_delta in
          let l = r.Server.Loadgen.latency in
          Format.printf
            "load: %d ops in %.2fs = %.0f ops/s, %d errors@.\
             load: latency ns p50=%d p90=%d p99=%d p99.9=%d max=%d@.\
             load: final size %d, expected %d (replay of acknowledged ops)@."
            r.Server.Loadgen.ops r.Server.Loadgen.elapsed_s
            r.Server.Loadgen.throughput r.Server.Loadgen.errors
            l.Obs.Histogram.p50 l.Obs.Histogram.p90 l.Obs.Histogram.p99
            l.Obs.Histogram.p999 l.Obs.Histogram.max final expected;
          if r.Server.Loadgen.scan_pages > 0 then
            Format.printf
              "load: %d scan pages verified (%d keys streamed)@."
              r.Server.Loadgen.scan_pages r.Server.Loadgen.scan_keys;
          (match r.Server.Loadgen.server_metrics with
          | [] -> ()
          | kv ->
              Format.printf "load: server-side (scraped):";
              List.iter
                (fun (k, v) -> Format.printf " %s=%.0f" k v)
                kv;
              Format.printf "@.");
          Option.iter
            (fun path ->
              Obs.Json.to_file path (Server.Loadgen.report_to_json cfg r);
              Format.printf "load: report written to %s@." path)
            metrics;
          Format.print_flush ();
          if r.Server.Loadgen.errors > 0 then
            `Error (false, "load completed with application-level errors")
          else if final <> expected then
            `Error
              ( false,
                Printf.sprintf
                  "SIZE mismatch: server says %d, replay of acknowledged \
                   operations says %d — an acknowledged update was lost"
                  final expected )
          else `Ok ()
        with
        | Server.Client.Protocol_error m -> `Error (false, "protocol error: " ^ m)
        | Unix.Unix_error (e, fn, _) ->
            `Error
              (false, Printf.sprintf "%s failed: %s" fn (Unix.error_message e)))
  in
  let doc =
    "Drive a running patserve server with a multi-domain closed-loop \
     pipelined workload and verify the final SIZE against a replay of the \
     acknowledged operations."
  in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(
      ret
        (const run $ addr_arg $ port_arg $ domains_arg $ depth_arg
       $ seconds_arg' $ pct "insert" 10 $ pct "delete" 10 $ pct "find" 0
       $ pct "replace" 80 $ range_arg $ seed_arg $ metrics_arg
       $ scrape_port_arg $ open_loop_arg $ scan_every_arg $ scan_count_arg))

(* ------------------------------------------------------------------ *)
(* analyze subcommand: structure forensics — shape census, bytes/key
   and descent-cost accounting for PAT vs PAT-VLK vs 4-ST on the same
   seeded half-full key set, or the census of a recovered --data-dir.
   This is the instrument behind EXPERIMENTS.md's "Anatomy of the
   raw-speed gap": it turns the PAT-vs-4-ST throughput difference into
   measured pointer dereferences per operation. *)

let analyze_cmd =
  let range_arg =
    Arg.(
      value & opt int 65_536
      & info [ "range" ] ~doc:"Key range (universe) of the analyzed stores.")
  in
  let seed_arg =
    Arg.(
      value & opt int 2013
      & info [ "seed" ] ~doc:"Seed of the half-fill permutation and probes.")
  in
  let probes_arg =
    Arg.(
      value & opt int 100_000
      & info [ "probes" ]
          ~doc:
            "Single-thread member probes per structure for the descent/time \
             micro-measure.")
  in
  let data_dir_arg =
    let doc =
      "Census a recovered durable store instead of fresh synthetic \
       structures: load the newest checkpoint + WAL tail (read-only, \
       durability none) and report the live trie's census."
    in
    Arg.(value & opt (some string) None & info [ "data-dir" ] ~doc ~docv:"DIR")
  in
  let json_arg =
    let doc = "Write the full census/descent document as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"PATH")
  in
  let pp_census (c : Dset_intf.census) =
    Format.printf
      "%-8s %8d keys  %8d internal  %8d leaf  %d sentinel  depth \
       mean %.2f p99 %d max %d@."
      c.Dset_intf.structure c.Dset_intf.keys c.Dset_intf.internals
      c.Dset_intf.leaves c.Dset_intf.sentinels c.Dset_intf.leaf_depth.d_mean
      c.Dset_intf.leaf_depth.d_p99 c.Dset_intf.max_depth;
    Format.printf
      "%-8s %8.1f bytes/key measured  (%d words measured, %d words \
       estimated)@."
      "" c.Dset_intf.bytes_per_key c.Dset_intf.measured_words
      c.Dset_intf.est_words
  in
  let census_json label census descent =
    Obs.Json.Obj
      (("structure", Obs.Json.Str label)
       ::
       (match census with
       | Some c -> [ ("census", Obs.Shape.to_json c) ]
       | None -> [ ("census", Obs.Json.Null) ])
      @ descent)
  in
  let run range seed probes data_dir json_path =
    let write_json doc =
      match json_path with
      | None -> ()
      | Some path ->
          Obs.Json.to_file path doc;
          Format.printf "analysis written to %s@." path
    in
    match data_dir with
    | Some dir -> (
        match Pstore.open_ ~dir ~universe:range ~mode:Pstore.Ephemeral () with
        | exception Failure m -> `Error (false, m)
        | store ->
            Format.printf "%a@." pp_recovery (Pstore.recovery_info store);
            let trie = Pstore.underlying store in
            (match Core.Patricia.census trie with
            | Some c ->
                pp_census c;
                write_json
                  (Obs.Json.Obj
                     [
                       ("schema", Obs.Json.Str "analyze/1");
                       ("range", Obs.Json.Int range);
                       ("data_dir", Obs.Json.Str dir);
                       ( "structures",
                         Obs.Json.Arr
                           [ census_json Core.Patricia.name (Some c) [] ] );
                     ])
            | None -> ());
            Format.print_flush ();
            `Ok ())
    | None ->
        (* The three structures the raw-speed question is about, all
           holding the same random half of the key range. *)
        let pat = Core.Patricia.create ~universe:range ~record_stats:true () in
        let vlk = Core.Patricia_vlk.create ~record_stats:true () in
        let kary = Kary.create ~universe:range ~record_stats:true () in
        let hex k = Printf.sprintf "%08x" k in
        let subjects =
          [
            ( Core.Patricia.name,
              Core.Patricia.insert pat,
              Core.Patricia.member pat,
              (fun () -> Core.Patricia.census pat),
              (fun () -> Core.Patricia.descent_stats pat),
              fun () -> Core.Patricia.descent_summary pat );
            ( Core.Patricia_vlk.name,
              (fun k -> Core.Patricia_vlk.insert vlk (hex k)),
              (fun k -> Core.Patricia_vlk.member vlk (hex k)),
              (fun () -> Core.Patricia_vlk.census vlk),
              (fun () -> Core.Patricia_vlk.descent_stats vlk),
              fun () -> Core.Patricia_vlk.descent_summary vlk );
            ( Kary.name,
              Kary.insert kary,
              Kary.member kary,
              (fun () -> Kary.census kary),
              (fun () -> Kary.descent_stats kary),
              fun () -> Kary.descent_summary kary );
          ]
        in
        (* Same half-full steady state as the harness prefill: a random
           half of the universe, in random order. *)
        let perm = Array.init range Fun.id in
        let rng = Rng.of_int_seed seed in
        for i = range - 1 downto 1 do
          let j = Rng.int rng (i + 1) in
          let tmp = perm.(i) in
          perm.(i) <- perm.(j);
          perm.(j) <- tmp
        done;
        Format.printf
          "structure forensics: range (0, %d), %d keys (half-full), seed %d, \
           %d member probes@."
          range (range / 2) seed probes;
        let results =
          List.map
            (fun (label, insert, member, census, dstats, dsummary) ->
              for i = 0 to (range / 2) - 1 do
                ignore (insert perm.(i))
              done;
              let delta before after key =
                match
                  (List.assoc_opt key before, List.assoc_opt key after)
                with
                | Some b, Some a -> a - b
                | _ -> 0
              in
              let d0 = Option.value ~default:[] (dstats ()) in
              let rng = Rng.of_int_seed (seed + 1) in
              let t0 = Obs.Clock.now_ns () in
              for _ = 1 to probes do
                ignore (member (Rng.int rng range))
              done;
              let elapsed = Obs.Clock.now_ns () - t0 in
              let d1 = Option.value ~default:[] (dstats ()) in
              let nodes = delta d0 d1 "descent_nodes_find" in
              let searches = delta d0 d1 "descent_searches" in
              let probe_mean =
                if searches > 0 then
                  float_of_int nodes /. float_of_int searches
                else 0.0
              in
              let ns_per_probe = float_of_int elapsed /. float_of_int probes in
              let c = census () in
              (match c with Some c -> pp_census c | None -> ());
              Format.printf
                "%-8s %8.1f ns/probe  %.2f nodes/search (probe window)@.@."
                label ns_per_probe probe_mean;
              ( label,
                c,
                [
                  ( "descent",
                    Obs.Json.Obj
                      [
                        ("probes", Obs.Json.Int probes);
                        ("ns_per_probe", Obs.Json.Float ns_per_probe);
                        ("probe_mean_nodes", Obs.Json.Float probe_mean);
                        ( "depth",
                          match dsummary () with
                          | Some s -> Obs.Histogram.summary_to_json s
                          | None -> Obs.Json.Null );
                      ] );
                ] ))
            subjects
        in
        write_json
          (Obs.Json.Obj
             [
               ("schema", Obs.Json.Str "analyze/1");
               ("range", Obs.Json.Int range);
               ("seed", Obs.Json.Int seed);
               ("keys", Obs.Json.Int (range / 2));
               ( "structures",
                 Obs.Json.Arr
                   (List.map
                      (fun (label, c, descent) -> census_json label c descent)
                      results) );
             ]);
        Format.print_flush ();
        `Ok ()
  in
  let doc =
    "Structure forensics: shape census (node counts, depth and label \
     distributions, bytes per key) and single-thread descent cost for PAT, \
     PAT-VLK and 4-ST over the same seeded half-full key set — or the \
     census of a recovered --data-dir."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      ret
        (const run $ range_arg $ seed_arg $ probes_arg $ data_dir_arg
       $ json_arg))

(* ------------------------------------------------------------------ *)
(* promote subcommand: failover — flip a follower to primary *)

let promote_cmd =
  let addr_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "addr" ] ~doc:"Server address.")
  in
  let port_arg =
    Arg.(value & opt int 7113 & info [ "port" ] ~doc:"Server port.")
  in
  let run addr port =
    match Server.Client.connect ~addr ~port () with
    | exception Unix.Unix_error (e, fn, _) ->
        `Error (false, Printf.sprintf "%s failed: %s" fn (Unix.error_message e))
    | c -> (
        match Server.Client.promote c with
        | true ->
            Server.Client.close c;
            Format.printf "promote: %s:%d is now a primary@." addr port;
            Format.print_flush ();
            `Ok ()
        | false ->
            Server.Client.close c;
            `Error (false, "server refused promotion")
        | exception Server.Client.Protocol_error m ->
            Server.Client.close c;
            `Error (false, "promote failed: " ^ m))
  in
  let doc =
    "Promote a running replication follower to primary: it detaches from \
     its stream, seals its WAL and flips through open-time recovery.  \
     Idempotent — promoting a primary succeeds without effect."
  in
  Cmd.v (Cmd.info "promote" ~doc) Term.(ret (const run $ addr_arg $ port_arg))

(* ------------------------------------------------------------------ *)
(* replicate subcommand: the cost of a copy — in-process primary plus
   0..N followers under load, async vs sync-ack, with convergence,
   verifiable-sync (root hash) and failover-time measurements.  This is
   the instrument behind EXPERIMENTS.md's "The cost of a copy". *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error (_, _, _) -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | exception Unix.Unix_error (_, _, _) -> ()

let replicate_cmd =
  let range_arg =
    Arg.(
      value & opt int 65_536
      & info [ "range" ] ~doc:"Key range (universe) of the replicated trie.")
  in
  let seconds_arg' =
    Arg.(value & opt float 5.0 & info [ "seconds" ] ~doc:"Load duration.")
  in
  let followers_arg =
    Arg.(
      value & opt int 1
      & info [ "followers" ] ~doc:"Followers attached to the primary (0..8).")
  in
  let sync_arg =
    let doc =
      "Sync-ack mode: client acknowledgements wait for every follower's \
       LOGACK (default: async, followers trail)."
    in
    Arg.(value & flag & info [ "sync" ] ~doc)
  in
  let seed_arg' =
    Arg.(value & opt int 2013 & info [ "seed" ] ~doc:"Workload seed.")
  in
  let keep_arg =
    Arg.(
      value & flag
      & info [ "keep" ] ~doc:"Keep the scratch data directories (default: \
                              delete them at exit).")
  in
  let run range seconds followers sync seed keep =
    if followers < 0 || followers > 8 then
      `Error (false, "replicate: --followers must be in 0..8")
    else begin
      let hash_width =
        let w = ref 0 in
        while 1 lsl !w < range do
          incr w
        done;
        !w
      in
      let base =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "patbench-replicate-%d" (Unix.getpid ()))
      in
      rm_rf base;
      let pdir = Filename.concat base "primary" in
      let fdir i = Filename.concat base (Printf.sprintf "follower%d" i) in
      let root_hash store =
        let trie = Pstore.underlying store in
        let fold ~lo ~hi ~init ~f =
          Core.Patricia.fold_range trie ~lo ~hi ~init ~f
        in
        Replica.Hash.range fold ~lo:0 ~hi:((1 lsl hash_width) - 1)
      in
      let pstore = Pstore.open_ ~dir:pdir ~universe:range ~mode:Pstore.Sync () in
      let writer = Option.get (Pstore.wal_writer pstore) in
      let prim = Replica.Primary.create ~dir:pdir ~writer ~sync_ack:sync () in
      Pstore.set_retention_hook pstore (Replica.Primary.retention_floor prim);
      let ops =
        Server.
          {
            insert = Pstore.insert pstore;
            delete = Pstore.delete pstore;
            member = Pstore.member pstore;
            replace = (fun ~remove ~add -> Pstore.replace pstore ~remove ~add);
            size = (fun () -> Pstore.size pstore);
            snapshot = (fun () -> Pstore.snapshot pstore);
            scan_cut = (fun () -> Pstore.scan_cut pstore);
          }
      in
      let barrier () =
        Pstore.barrier pstore;
        Replica.Primary.wait_acked prim (Pstore.last_logged_here pstore)
      in
      let repl =
        Server.
          {
            subscribe = Replica.Primary.subscribe prim;
            hashcheck =
              (fun ~prefix ~len ->
                let trie = Pstore.underlying pstore in
                let fold ~lo ~hi ~init ~f =
                  Core.Patricia.fold_range trie ~lo ~hi ~init ~f
                in
                Replica.Hash.hashes fold ~width:hash_width ~prefix ~len);
            promote = (fun () -> Result.Ok ());
          }
      in
      let srv = Server.start ~port:0 ~domains:2 ~barrier ~repl ops in
      let port = Server.port srv in
      let fstores =
        List.init followers (fun i ->
            Pstore.open_ ~dir:(fdir i) ~universe:range ~mode:Pstore.Sync ())
      in
      let fls =
        List.mapi
          (fun i st ->
            let fops =
              Replica.Follower.
                {
                  apply_insert = (fun k -> ignore (Pstore.insert st k : bool));
                  apply_delete = (fun k -> ignore (Pstore.delete st k : bool));
                  wal_sync =
                    (fun () ->
                      match Pstore.wal_writer st with
                      | Some w ->
                          let last = Pstore.last_logged_here st in
                          if last >= 0 then Persist.Wal.Writer.wait_durable w last
                      | None -> ());
                }
            in
            match
              Replica.Follower.start ~port ~from_seq:0
                ~watermark_dir:(fdir i) fops
            with
            | Result.Ok f -> f
            | Result.Error msg ->
                failwith (Printf.sprintf "follower %d: %s" i msg))
          fstores
      in
      Format.printf
        "replicate: %d follower(s), %s acks, range (0, %d), %.1fs load@."
        followers
        (if sync then "sync (wait for LOGACK)" else "async")
        range seconds;
      Format.print_flush ();
      (* Lag sampler: peak and mean primary-side lag during the load —
         the steady-state number the experiment is after. *)
      let sampling = Atomic.make true in
      let peak_lag = Atomic.make 0 in
      let lag_sum = Atomic.make 0 in
      let lag_n = Atomic.make 0 in
      let sampler =
        Domain.spawn (fun () ->
            while Atomic.get sampling do
              let l = Replica.Primary.lag_records prim in
              if l > Atomic.get peak_lag then Atomic.set peak_lag l;
              ignore (Atomic.fetch_and_add lag_sum l);
              ignore (Atomic.fetch_and_add lag_n 1);
              Unix.sleepf 0.01
            done)
      in
      let prefilled =
        Server.Loadgen.prefill ~addr:"127.0.0.1" ~port ~universe:range ~seed ()
      in
      let cfg =
        Server.Loadgen.
          {
            addr = "127.0.0.1";
            port;
            domains = 4;
            depth = 16;
            seconds;
            mix = Harness.Mix.v ~insert:10 ~delete:10 ~find:0 ~replace:80 ();
            universe = range;
            dist = Harness.Uniform;
            seed;
            journal = false;
            tolerate_disconnect = false;
            partition = false;
            scrape_port = None;
            scan_every = 0;
            scan_count = 256;
          }
      in
      let r = Server.Loadgen.run cfg in
      Atomic.set sampling false;
      Domain.join sampler;
      let l = r.Server.Loadgen.latency in
      Format.printf
        "replicate: prefill %d, %d ops in %.2fs = %.0f ops/s, %d errors@.\
         replicate: ack latency ns p50=%d p99=%d max=%d@."
        prefilled r.Server.Loadgen.ops r.Server.Loadgen.elapsed_s
        r.Server.Loadgen.throughput r.Server.Loadgen.errors l.Obs.Histogram.p50
        l.Obs.Histogram.p99 l.Obs.Histogram.max;
      (if followers > 0 then
         let mean =
           if Atomic.get lag_n > 0 then
             float_of_int (Atomic.get lag_sum) /. float_of_int (Atomic.get lag_n)
           else 0.0
         in
         Format.printf
           "replicate: steady-state lag mean %.1f records, peak %d records@."
           mean (Atomic.get peak_lag));
      (* Convergence: how long after the last acked write until every
         follower has applied the whole history. *)
      let head = Persist.Wal.Writer.last_assigned writer in
      let t0 = Obs.Clock.now_ns () in
      let deadline = Unix.gettimeofday () +. 30.0 in
      let rec settle () =
        if
          List.for_all (fun f -> Replica.Follower.applied_seq f >= head) fls
          || Unix.gettimeofday () >= deadline
        then ()
        else begin
          Unix.sleepf 0.001;
          settle ()
        end
      in
      settle ();
      let converge_ms =
        float_of_int (Obs.Clock.now_ns () - t0) /. 1e6
      in
      List.iter
        (fun f ->
          match Replica.Follower.failure f with
          | Some m -> failwith ("follower failed: " ^ m)
          | None -> ())
        fls;
      if followers > 0 then
        Format.printf "replicate: convergence after last ack: %.1f ms@."
          converge_ms;
      (* Verifiable sync: equal key sets must hash equal (the trie is
         history-independent, so this is exactly set equality). *)
      let ph = root_hash pstore in
      let psize = Pstore.size pstore in
      let all_equal =
        List.for_all2
          (fun st _ -> root_hash st = ph && Pstore.size st = psize)
          fstores fls
      in
      Format.printf "replicate: primary %d keys, root hash %x; %s@." psize ph
        (if followers = 0 then "no followers to compare"
         else if all_equal then
           Printf.sprintf "all %d follower(s) hash-identical" followers
         else "FOLLOWER DIVERGENCE — root hashes differ");
      (* Failover budget: detach follower 0, seal its WAL, reopen via
         recovery — the exact PROMOTE path — and time it. *)
      let failover_ms =
        match (fls, fstores) with
        | f :: _, st :: _ ->
            let t0 = Obs.Clock.now_ns () in
            Replica.Follower.stop f;
            Pstore.close st;
            let promoted =
              Pstore.open_ ~dir:(fdir 0) ~universe:range ~mode:Pstore.Sync ()
            in
            let ms = float_of_int (Obs.Clock.now_ns () - t0) /. 1e6 in
            let ok = Pstore.size promoted = psize && root_hash promoted = ph in
            Pstore.close promoted;
            Format.printf
              "replicate: failover (seal + open-time recovery): %.1f ms, \
               promoted state %s@."
              ms
              (if ok then "identical to primary" else "DIVERGED");
            if not ok then failwith "promoted follower diverged from primary";
            Some ms
        | _ -> None
      in
      ignore (failover_ms : float option);
      (* Teardown: remaining followers, server, primary, stores. *)
      List.iteri (fun i f -> if i > 0 then Replica.Follower.stop f) fls;
      Server.stop ~drain_s:0.5 srv;
      Replica.Primary.stop prim;
      Pstore.close pstore;
      List.iteri (fun i st -> if i > 0 then Pstore.close st) fstores;
      if not keep then rm_rf base
      else Format.printf "replicate: data kept under %s@." base;
      Format.print_flush ();
      if followers > 0 && not all_equal then
        `Error (false, "follower divergence detected")
      else `Ok ()
    end
  in
  let doc =
    "Measure the cost of a copy: run a pipelined load against an in-process \
     replicated primary with 0..N followers (async or --sync acks), report \
     throughput, steady-state and convergence lag, verify the replicas \
     hash-identical, and time the failover (promotion) path."
  in
  Cmd.v (Cmd.info "replicate" ~doc)
    Term.(
      ret
        (const run $ range_arg $ seconds_arg' $ followers_arg $ sync_arg
       $ seed_arg' $ keep_arg))

(* ------------------------------------------------------------------ *)
(* scan subcommand: what a frozen view costs — snapshot cost vs trie
   size (the O(1) claim), scan goodput vs range width, and writer
   throughput with a continuous scanner attached (the copy-on-descent
   overhead on the write path).  In-process measurements of lib/core's
   snapshot machinery; the served SCAN path is exercised by
   `load --scan-every` and the bench driver's "scan" section. *)

let scan_cmd =
  let universe_arg =
    let doc = "Key universe; the trie is prefilled to half of it." in
    Arg.(value & opt int 65_536 & info [ "universe" ] ~doc)
  in
  let widths_arg =
    let doc = "Comma-separated range widths for the goodput sweep." in
    Arg.(value & opt (list int) [ 1_024; 8_192; 65_536 ] & info [ "widths" ] ~doc)
  in
  let writers_arg =
    let doc = "Churning writer domains attached during the measurements." in
    Arg.(value & opt int 2 & info [ "writers" ] ~doc)
  in
  let run universe widths writers seconds trials seed csv =
    if universe < 2 then `Error (false, "--universe must be at least 2")
    else if writers < 1 then `Error (false, "--writers must be at least 1")
    else begin
      let mean_stddev = function
        | [] -> (0.0, 0.0)
        | xs ->
            let n = float_of_int (List.length xs) in
            let mean = List.fold_left ( +. ) 0.0 xs /. n in
            let var =
              List.fold_left
                (fun a x -> a +. ((x -. mean) *. (x -. mean)))
                0.0 xs
              /. n
            in
            (mean, sqrt var)
      in
      let prefilled () =
        let t = Core.Patricia.create ~universe () in
        let rng = Rng.of_int_seed seed in
        for _ = 1 to universe / 2 do
          ignore (Core.Patricia.insert t (Rng.int rng universe) : bool)
        done;
        t
      in
      let churn t rng =
        let k = Rng.int rng universe in
        match Rng.int rng 3 with
        | 0 -> ignore (Core.Patricia.insert t k : bool)
        | 1 -> ignore (Core.Patricia.delete t k : bool)
        | _ ->
            ignore
              (Core.Patricia.replace t ~remove:k ~add:(Rng.int rng universe)
                : bool)
      in
      (* One rate sample: run [step] (returning a unit count) on the
         main domain for ~[seconds] with [bg] churning writer domains
         and, when [scanner], a domain folding whole frozen views in a
         loop.  All side domains are stopped and joined before the
         sample is returned, so trials don't bleed into each other. *)
      let rate ~bg ~scanner t step =
        let stop = Atomic.make false in
        let doms =
          List.init bg (fun i ->
              Domain.spawn (fun () ->
                  let rng = Rng.of_int_seed (seed + 17 + i) in
                  while not (Atomic.get stop) do
                    churn t rng
                  done))
          @
          if not scanner then []
          else
            [
              Domain.spawn (fun () ->
                  while not (Atomic.get stop) do
                    let v = Core.Patricia.snapshot t in
                    ignore
                      (Core.Patricia.View.fold v ~init:0 ~f:(fun n _ -> n + 1)
                        : int)
                  done);
            ]
        in
        let t0 = Unix.gettimeofday () in
        let deadline = t0 +. seconds in
        let count = ref 0.0 in
        while Unix.gettimeofday () < deadline do
          count := !count +. step ()
        done;
        let elapsed = Unix.gettimeofday () -. t0 in
        Atomic.set stop true;
        List.iter Domain.join doms;
        !count /. elapsed
      in
      let samples ~bg ~scanner t step =
        List.init trials (fun _ -> rate ~bg ~scanner t step)
      in
      let csv_rows = ref [] in
      let report name xs unit_ =
        let mean, stddev = mean_stddev xs in
        Printf.printf "  %-44s %14.1f ±%10.1f %s\n%!" name mean stddev unit_;
        csv_rows := (name, mean, stddev) :: !csv_rows
      in
      Printf.printf
        "What a frozen view costs (universe %d, %d writer domain(s), %.1fs × \
         %d trials)\n"
        universe writers seconds trials;
      (* 1. Snapshot cost: O(1) in the number of keys, so empty vs
         half-full must land in the same ballpark; churn adds only the
         cost of resolving in-flight descriptors. *)
      Printf.printf "\nSnapshot cost (ns per snapshot):\n";
      let snap_step t () =
        for _ = 1 to 64 do
          ignore (Core.Patricia.snapshot t)
        done;
        64.0
      in
      let ns rates = List.map (fun r -> 1e9 /. r) rates in
      let empty = Core.Patricia.create ~universe () in
      report "empty trie, quiesced"
        (ns (samples ~bg:0 ~scanner:false empty (snap_step empty)))
        "ns";
      let t = prefilled () in
      report
        (Printf.sprintf "%d keys, quiesced" (Core.Patricia.size t))
        (ns (samples ~bg:0 ~scanner:false t (snap_step t)))
        "ns";
      report
        (Printf.sprintf "%d keys, %d writers churning" (Core.Patricia.size t)
           writers)
        (ns (samples ~bg:writers ~scanner:false t (snap_step t)))
        "ns";
      (* 2. Goodput vs range width: each step freezes a fresh view and
         folds [0, width) out of it while the writers churn. *)
      Printf.printf "\nScan goodput under churn (keys streamed per second):\n";
      List.iter
        (fun w ->
          let w = min w universe in
          let step () =
            let v = Core.Patricia.snapshot t in
            float_of_int
              (Core.Patricia.View.fold_range v ~lo:0 ~hi:(w - 1) ~init:0
                 ~f:(fun n _ -> n + 1))
          in
          report
            (Printf.sprintf "width %d" w)
            (samples ~bg:writers ~scanner:false t step)
            "keys/s")
        widths;
      (* 3. The write path's side of the bargain: one measured writer
         (plus --writers-1 background ones) with and without a
         continuous whole-view scanner attached. *)
      Printf.printf "\nWriter throughput (measured domain, ops/s):\n";
      let writer_step t =
        let rng = Rng.of_int_seed (seed + 5) in
        fun () ->
          churn t rng;
          1.0
      in
      let quiet =
        let t = prefilled () in
        samples ~bg:(writers - 1) ~scanner:false t (writer_step t)
      in
      let scanned =
        let t = prefilled () in
        samples ~bg:(writers - 1) ~scanner:true t (writer_step t)
      in
      report "no scanner" quiet "ops/s";
      report "continuous scanner attached" scanned "ops/s";
      let mq, _ = mean_stddev quiet and ms, _ = mean_stddev scanned in
      if mq > 0.0 then
        Printf.printf "  scanner overhead on the write path: %.1f%%\n"
          ((1.0 -. (ms /. mq)) *. 100.0);
      if csv then begin
        Printf.printf "\ndatapoint,mean,stddev\n";
        List.iter
          (fun (n, m, s) -> Printf.printf "%S,%f,%f\n" n m s)
          (List.rev !csv_rows)
      end;
      `Ok ()
    end
  in
  let doc =
    "Measure what a frozen view costs: snapshot latency vs trie size (the \
     O(1) claim), scan goodput vs range width under writer churn, and \
     writer throughput with a continuous scanner attached."
  in
  Cmd.v (Cmd.info "scan" ~doc)
    Term.(
      ret
        (const run $ universe_arg $ widths_arg $ writers_arg $ seconds_arg
       $ trials_arg $ seed_arg $ csv_arg))

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "Benchmarks for the non-blocking Patricia trie reproduction (ICDCS 2013)."
  in
  let info = Cmd.info "patbench" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figure_cmd;
            extra_cmd;
            custom_cmd;
            ablation_cmd;
            serve_cmd;
            load_cmd;
            recover_cmd;
            analyze_cmd;
            promote_cmd;
            replicate_cmd;
            scan_cmd;
          ]))

(* Non-blocking k-ary search tree in the style of

     T. Brown and J. Helga, "Non-blocking k-ary search trees",
     OPODIS 2011,

   the "4-ST" baseline of the Patricia-trie paper's evaluation (the paper
   uses k = 4, found optimal in Brown & Helga's experiments; so do we).

   The tree is leaf-oriented.  An internal node has k children and k-1
   sorted routing keys; a leaf holds up to k-1 sorted keys.  Updates use
   the Ellen-et-al. flag/mark/help coordination, generalized:

   - inserts replace a non-full leaf by a bigger leaf (one child CAS), or
     "sprout" a full leaf into an internal node with k singleton-leaf
     children;
   - deletes replace a leaf by a smaller leaf (one child CAS), or, when
     the parent's children are all leaves whose remaining keys fit in a
     single leaf, "prune" the parent: mark it and swing the grandparent's
     child pointer to a consolidated leaf (exactly the BST delete shape).

   As in the BST, the per-internal-node [update] field holds a
   (state, info) record CASed by physical identity; fresh records per
   write rule out ABA. *)

let k = 4
(* [k] is the default arity (the paper's 4-ST); [create_k] builds trees of
   any arity >= 2, used by the arity-sweep experiment that re-checks Brown
   & Helga's finding that k = 4 is a sweet spot. *)

type node = Leaf of int array (* sorted, length <= k-1 *) | Node of internal

and internal = {
  keys : int array; (* sorted, length k-1 *)
  children : node Atomic.t array; (* length k *)
  update : update Atomic.t;
}

and update = { state : state; info : info }

and state = Clean | IFlag | DFlag | Mark

and info = No_info | I of iinfo | D of dinfo

(* Replace leaf [il] (child [islot] of [ip]) by [inew]. *)
and iinfo = { ip : internal; islot : int; il : node; inew : node }

(* Prune: replace child [dslot] of [dgp] (which is the internal [dp],
   boxed as [dp_node]) by the consolidated leaf [dnew]; [pupdate] was read
   from dp.update before flagging dgp. *)
and dinfo = {
  dgp : internal;
  dslot : int;
  dp : internal;
  dp_node : node;
  dnew : node;
  pupdate : update;
}

(* Descent-cost accounting, comparable across the registry: one count
   per child pointer followed (the root's child is depth 1).  Striped
   per domain like every hot-path counter; disabled cost is one
   branch. *)
type stats = {
  descent_find : Obs.Counter.t;
  descent_insert : Obs.Counter.t;
  descent_delete : Obs.Counter.t;
  descent_searches : Obs.Counter.t;
  descent_depth : Obs.Histogram.t;
}

type t = { root : internal; universe : int; arity : int; stats : stats option }

let name = "4-ST"

let make_stats () =
  {
    descent_find = Obs.Counter.create ();
    descent_insert = Obs.Counter.create ();
    descent_delete = Obs.Counter.create ();
    descent_searches = Obs.Counter.create ();
    descent_depth = Obs.Histogram.create ();
  }

let[@inline] descent (stats : stats option) (field : stats -> Obs.Counter.t) d =
  match stats with
  | None -> ()
  | Some s ->
      Obs.Counter.add (field s) d;
      Obs.Counter.incr s.descent_searches;
      Obs.Histogram.record s.descent_depth d

let clean () = { state = Clean; info = No_info }

let new_internal keys children =
  { keys; children = Array.map Atomic.make children; update = Atomic.make (clean ()) }

let create_k ~k:arity ?(record_stats = false) ~universe () =
  if universe < 1 then invalid_arg "Kary.create: universe must be >= 1";
  if arity < 2 then invalid_arg "Kary.create_k: arity must be >= 2";
  (* Sentinel routing keys >= universe push every real key into child 0;
     the root is never replaced. *)
  let keys = Array.init (arity - 1) (fun i -> universe + i) in
  let children = Array.init arity (fun _ -> Leaf [||]) in
  {
    root = new_internal keys children;
    universe;
    arity;
    stats = (if record_stats then Some (make_stats ()) else None);
  }

let create ~universe ?record_stats () = create_k ~k ?record_stats ~universe ()

(* Child slot a key routes to: the number of routing keys <= key. *)
let child_slot (keys : int array) key =
  let rec go i = if i < Array.length keys && keys.(i) <= key then go (i + 1) else i in
  go 0

let leaf_mem (a : int array) key =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = key then true else if a.(mid) < key then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let leaf_add a key =
  let n = Array.length a in
  let b = Array.make (n + 1) key in
  let rec go i j =
    if i < n then
      if a.(i) < key then begin
        b.(j) <- a.(i);
        go (i + 1) (j + 1)
      end
      else begin
        b.(j) <- key;
        Array.blit a i b (j + 1) (n - i)
      end
    else b.(j) <- key
  in
  go 0 0;
  b

let leaf_remove a key =
  let n = Array.length a in
  let b = Array.make (n - 1) 0 in
  let j = ref 0 in
  Array.iter
    (fun x ->
      if x <> key then begin
        b.(!j) <- x;
        incr j
      end)
    a;
  b

type search_result = {
  gp : internal option;
  gpslot : int;
  p : internal;
  p_node : node;
  pslot : int;
  l : int array;
  l_node : node;
  pupdate : update;
  gpupdate : update option;
  depth : int; (* child pointers followed to reach [l_node]; root's child = 1 *)
}

let search t key =
  let rec go gp gpslot gpupdate (p : internal) p_node pupdate d =
    let slot = child_slot p.keys key in
    let child = Atomic.get p.children.(slot) in
    match child with
    | Node i ->
        go (Some p) slot (Some pupdate) i child (Atomic.get i.update) (d + 1)
    | Leaf a ->
        {
          gp;
          gpslot;
          p;
          p_node;
          pslot = slot;
          l = a;
          l_node = child;
          pupdate;
          gpupdate;
          depth = d + 1;
        }
  in
  go None 0 None t.root (Node t.root) (Atomic.get t.root.update) 0

let member t key =
  let r = search t key in
  descent t.stats (fun s -> s.descent_find) r.depth;
  leaf_mem r.l key

let help_insert_u (u : update) =
  match u.info with
  | I op ->
      ignore (Atomic.compare_and_set op.ip.children.(op.islot) op.il op.inew);
      ignore
        (Atomic.compare_and_set op.ip.update u { state = Clean; info = I op })
  | _ -> assert false

let help_marked (u_dflag : update) (op : dinfo) =
  ignore (Atomic.compare_and_set op.dgp.children.(op.dslot) op.dp_node op.dnew);
  ignore
    (Atomic.compare_and_set op.dgp.update u_dflag { state = Clean; info = D op })

let rec help_delete (u_dflag : update) (op : dinfo) =
  ignore
    (Atomic.compare_and_set op.dp.update op.pupdate { state = Mark; info = D op });
  let result = Atomic.get op.dp.update in
  match result with
  | { state = Mark; info = D op' } when op' == op ->
      help_marked u_dflag op;
      true
  | _ ->
      help result;
      ignore
        (Atomic.compare_and_set op.dgp.update u_dflag
           { state = Clean; info = D op });
      false

and help (u : update) =
  match (u.state, u.info) with
  | IFlag, I _ -> help_insert_u u
  | DFlag, D op -> ignore (help_delete u op)
  | Mark, D op -> (
      match Atomic.get op.dgp.update with
      | { state = DFlag; info = D op' } as u' when op' == op -> help_marked u' op
      | _ -> ())
  | _ -> ()

(* Sprout a full leaf plus one new key into an internal node: the k sorted
   keys become k singleton-leaf children separated by the k-1 largest. *)
let sprout ~arity sorted_keys =
  let seps = Array.sub sorted_keys 1 (arity - 1) in
  let children = Array.map (fun key -> Leaf [| key |]) sorted_keys in
  Node (new_internal seps children)

let insert t key =
  if key < 0 || key >= t.universe then invalid_arg "Kary.insert: key out of universe";
  let rec attempt () =
    let r = search t key in
    descent t.stats (fun s -> s.descent_insert) r.depth;
    if leaf_mem r.l key then false
    else if r.pupdate.state <> Clean then begin
      help r.pupdate;
      attempt ()
    end
    else begin
      let inew =
        if Array.length r.l < t.arity - 1 then Leaf (leaf_add r.l key)
        else sprout ~arity:t.arity (leaf_add r.l key)
      in
      let op = { ip = r.p; islot = r.pslot; il = r.l_node; inew } in
      let u = { state = IFlag; info = I op } in
      if Atomic.compare_and_set r.p.update r.pupdate u then begin
        help_insert_u u;
        true
      end
      else begin
        help (Atomic.get r.p.update);
        attempt ()
      end
    end
  in
  attempt ()

(* A delete prunes when every child of p is a leaf and the keys remaining
   after the deletion fit in one leaf.  The children are read *after*
   p.update (via the search's pupdate), so a successful DFlag/Mark pair
   certifies they did not change in between. *)
let prune_candidate (p : internal) key =
  let arity = Array.length p.children in
  let rec go i acc =
    if i >= arity then Some (List.rev acc)
    else
      match Atomic.get p.children.(i) with
      | Node _ -> None
      | Leaf a -> go (i + 1) (a :: acc)
  in
  match go 0 [] with
  | None -> None
  | Some leaves ->
      (* The children are re-read here and may be newer than the search's
         snapshot (in which case the later flag/mark CASes fail and the
         delete restarts), so make no assumption that [key] is present. *)
      let remaining =
        List.concat_map
          (fun a -> Array.to_list a |> List.filter (fun x -> x <> key))
          leaves
        |> List.sort Int.compare
      in
      if List.length remaining > arity - 1 then None
      else Some (Leaf (Array.of_list remaining))

let delete t key =
  if key < 0 || key >= t.universe then invalid_arg "Kary.delete: key out of universe";
  let rec attempt () =
    let r = search t key in
    descent t.stats (fun s -> s.descent_delete) r.depth;
    if not (leaf_mem r.l key) then false
    else if r.pupdate.state <> Clean then begin
      help r.pupdate;
      attempt ()
    end
    else begin
      match (r.gp, r.gpupdate) with
      | Some _, Some gpupdate when gpupdate.state <> Clean ->
          help gpupdate;
          attempt ()
      | Some gp, Some gpupdate -> (
          match prune_candidate r.p key with
          | Some merged ->
              (* Pruning delete: DFlag gp, mark p, swing gp's child. *)
              let op =
                {
                  dgp = gp;
                  dslot = r.gpslot;
                  dp = r.p;
                  dp_node = r.p_node;
                  dnew = merged;
                  pupdate = r.pupdate;
                }
              in
              let u = { state = DFlag; info = D op } in
              if Atomic.compare_and_set gp.update gpupdate u then begin
                if help_delete u op then true else attempt ()
              end
              else begin
                help (Atomic.get gp.update);
                attempt ()
              end
          | None -> simple_delete r)
      | _ -> simple_delete r
    end
  and simple_delete r =
    (* Simple delete: replace the leaf by a smaller leaf (IFlag shape). *)
    let op =
      {
        ip = r.p;
        islot = r.pslot;
        il = r.l_node;
        inew = Leaf (leaf_remove r.l key);
      }
    in
    let u = { state = IFlag; info = I op } in
    if Atomic.compare_and_set r.p.update r.pupdate u then begin
      help_insert_u u;
      true
    end
    else begin
      help (Atomic.get r.p.update);
      attempt ()
    end
  in
  attempt ()

let fold_leaves t ~init ~f =
  (* Sentinel keys exist only as routing keys, never in leaves, so every
     leaf key is a real element. *)
  let rec go acc = function
    | Leaf a -> Array.fold_left f acc a
    | Node i -> Array.fold_left (fun acc c -> go acc (Atomic.get c)) acc i.children
  in
  go init (Node t.root)

let to_list t = fold_leaves t ~init:[] ~f:(fun acc x -> x :: acc) |> List.sort Int.compare
let size t = fold_leaves t ~init:0 ~f:(fun acc _ -> acc + 1)

let check_invariants t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let sorted a =
    Array.iteri (fun i x -> if i > 0 && a.(i - 1) >= x then err "unsorted keys") a
  in
  let rec go lo hi = function
    | Leaf a ->
        sorted a;
        Array.iter
          (fun x -> if not (lo <= x && x < hi) then err "leaf key %d outside [%d,%d)" x lo hi)
          a
    | Node i ->
        sorted i.keys;
        let arity = Array.length i.children in
        if Array.length i.keys <> arity - 1 then
          err "internal with %d keys for %d children" (Array.length i.keys) arity;
        Array.iteri
          (fun slot c ->
            let lo' = if slot = 0 then lo else i.keys.(slot - 1) in
            let hi' = if slot = Array.length i.keys then hi else i.keys.(slot) in
            go lo' hi' (Atomic.get c))
          i.children
  in
  go min_int max_int (Node t.root);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

(* ------------------------------------------------------------------ *)
(* Structure forensics *)

(* 64-bit layout, in words.  Internal: [Node] wrapper 2, record header +
   3 fields, routing-key array [arity] (k-1 elems + header), children
   array [arity + 1], one 2-word Atomic box per child, update Atomic 2,
   Clean update record 3 — [12 + 4*arity] total.  A leaf of [n] keys:
   [Leaf] wrapper 2 + int array [n + 1]. *)
let internal_words arity = 12 + (4 * arity)
let leaf_words n = n + 3

let census t =
  let a = Obs.Shape.acc ~structure:name in
  (* Routing keys carry no key-prefix; internals enter the prefix-length
     distribution as 0-bit labels. *)
  let rec go depth node =
    match node with
    | Leaf keys ->
        Obs.Shape.leaf a ~depth ~keys:(Array.length keys) ~sentinel:false
          ~words:(leaf_words (Array.length keys))
    | Node i ->
        let arity = Array.length i.children in
        Obs.Shape.internal a ~depth ~prefix_len:0 ~children:arity
          ~words:(internal_words arity);
        Array.iter (fun c -> go (depth + 1) (Atomic.get c)) i.children
  in
  go 0 (Node t.root);
  let measured_words = Obj.reachable_words (Obj.repr t.root) in
  Some (Obs.Shape.finish ~measured_words a)

let descent_stats t =
  match t.stats with
  | None -> None
  | Some s ->
      Some
        [
          ("descent_nodes_find", Obs.Counter.sum s.descent_find);
          ("descent_nodes_insert", Obs.Counter.sum s.descent_insert);
          ("descent_nodes_delete", Obs.Counter.sum s.descent_delete);
          ("descent_searches", Obs.Counter.sum s.descent_searches);
        ]

let descent_summary t =
  match t.stats with
  | None -> None
  | Some s -> Some (Obs.Histogram.snapshot s.descent_depth)

let snapshot _ = None

(** Non-blocking k-ary search tree in the style of Brown & Helga
    (OPODIS 2011), with k = 4 — the "4-ST" baseline of the Patricia-trie
    paper's evaluation.

    Leaf-oriented: an internal node has k children and k-1 routing keys;
    a leaf holds up to k-1 keys.  Inserts replace a leaf by a bigger
    leaf, or "sprout" a full leaf into an internal node; deletes shrink
    a leaf, or "prune" a parent whose children's remaining keys fit in
    one leaf.  Coordination is the Ellen-et-al. flag/mark/help scheme. *)

type t

val k : int
(** Default arity, 4 (found optimal in Brown & Helga's experiments and
    used by the paper). *)

val name : string
(** ["4-ST"]. *)

val create : universe:int -> ?record_stats:bool -> unit -> t
(** A tree of the default arity {!k}.  [record_stats] enables the
    descent-cost counters behind {!descent_stats} and
    {!descent_summary} (striped per domain, one untaken branch when
    disabled). *)

val create_k : k:int -> ?record_stats:bool -> universe:int -> unit -> t
(** A tree of arbitrary arity [k >= 2], used by the arity-sweep
    experiment; [k = 2] degenerates to a leaf-oriented binary tree with
    one key per leaf. *)

val insert : t -> int -> bool
val delete : t -> int -> bool
val member : t -> int -> bool
val to_list : t -> int list
val size : t -> int

val check_invariants : t -> (unit, string) result
(** Routing keys sorted; every internal node has exactly k children and
    k-1 keys; every key within its inherited interval. *)

(** {1 Structure forensics} *)

val census : t -> Dset_intf.census option
(** Shape census: node counts, exact leaf-depth / branching /
    keys-per-leaf distributions (a leaf holds up to k-1 keys), and
    footprint from per-node layout accounting cross-checked by
    [Obj.reachable_words].  Internal nodes carry no label, so they
    enter the prefix-length distribution as 0.  Always [Some] for
    4-ST; weakly consistent under concurrency, exact in quiescence. *)

val descent_stats : t -> (string * int) list option
(** Cumulative nodes visited per opcode (one count per child pointer
    followed; the root's child is depth 1) plus the completed-search
    count; [None] without [~record_stats:true].  No [replace] entry —
    the structure does not offer one. *)

val descent_summary : t -> Obs.Histogram.summary option
(** Depth histogram of all recorded searches; [None] without
    [~record_stats:true]. *)

val snapshot : t -> Dset_intf.view option
(** Always [None] — the explicit "unsupported" marker of the atomic
    snapshot capability; 4-ST has no snapshot mechanism. *)

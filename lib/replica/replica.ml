(** Primary/follower replication with verifiable sync.

    The WAL ({!Persist.Wal}) already totally orders every acknowledged
    mutation of a store; this module ships that order over the patserve
    wire protocol and keeps the copies honest:

    - {!Primary}: accepts [SUBSCRIBE] connections handed off by the
      server ({!Server.repl}), streams WAL records as [LOGRECS] pushes
      from a per-subscription {!Persist.Wal.Tail} cursor (blocking on
      group-commit progress, so a push never carries bytes that could
      still be torn), consumes [LOGACK] progress acknowledgements, and
      — in sync-ack mode — lets the serving barrier wait until every
      attached follower has applied a given sequence number before the
      client's acknowledgement is released.  Attached cursors pin their
      WAL segments against checkpoint GC through the store's retention
      hook.
    - {!Follower}: subscribes from its persisted watermark and applies
      records through the {e normal store mutation path} with forced
      semantics — every applied record re-logs into the follower's own
      WAL, so the follower's crash recovery is the ordinary
      {!Persist.Store} open path, verbatim.  The watermark (highest
      applied {e primary} sequence) is only persisted after the
      follower's own log caught up, so a recovered watermark never
      overstates durable state and the re-subscribed suffix replays
      idempotently (insert means present, delete means absent — the
      same argument that makes recovery replay idempotent).
    - {!Hash}: order-dependent range hashing over any ascending key
      fold.  Because the Patricia trie is history-independent (one
      canonical shape per key set), two replicas with equal key sets
      hash equal on every prefix, and a [HASHCHECK] descent locates a
      divergent subtree in one round trip per trie level — O(log n)
      total ({!Hash.locate}).
    - {!Watermark}, {!Gate}, {!Metrics}: watermark file plumbing, the
      follower's read-staleness/read-only admission gate, and the
      [patserve_repl_*] metric families. *)

module Protocol = Server.Protocol

let write_all fd b off len =
  let rec go off remaining =
    if remaining > 0 then
      match Unix.write fd b off remaining with
      | n -> go (off + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off remaining
  in
  go off len

let send_response fd ~seq result =
  let b = Buffer.create 64 in
  Protocol.encode_response b { Protocol.seq; result };
  let bb = Buffer.to_bytes b in
  write_all fd bb 0 (Bytes.length bb)

(* ------------------------------------------------------------------ *)
(* Metrics *)

module Metrics = struct
  let records_streamed = Obs.Counter.create ()
  let records_applied = Obs.Counter.create ()
  let acks = Obs.Counter.create ()
  let subscriptions = Obs.Counter.create ()
  let subscribe_rejects = Obs.Counter.create ()
  let hashchecks = Obs.Counter.create ()
  let promotions = Obs.Counter.create ()
  let sync_ack_waits = Obs.Counter.create ()

  (* Lag is instantaneous state of the live primary/follower, not a
     cumulative counter; whichever role is active registers sampling
     closures (same pattern as [Persist.Metrics.queue_depth]). *)
  let lag_records_source : (unit -> int) option Atomic.t = Atomic.make None
  let lag_bytes_source : (unit -> int) option Atomic.t = Atomic.make None

  let set_lag_sources ~records ~bytes =
    Atomic.set lag_records_source records;
    Atomic.set lag_bytes_source bytes

  let sample src =
    match Atomic.get src with Some f -> ( try f () with _ -> 0) | None -> 0

  let lag_records () = sample lag_records_source
  let lag_bytes () = sample lag_bytes_source

  let reset () =
    List.iter Obs.Counter.reset
      [
        records_streamed;
        records_applied;
        acks;
        subscriptions;
        subscribe_rejects;
        hashchecks;
        promotions;
        sync_ack_waits;
      ]

  let snapshot () =
    [
      ("records_streamed", Obs.Counter.sum records_streamed);
      ("records_applied", Obs.Counter.sum records_applied);
      ("acks", Obs.Counter.sum acks);
      ("subscriptions", Obs.Counter.sum subscriptions);
      ("subscribe_rejects", Obs.Counter.sum subscribe_rejects);
      ("hashchecks", Obs.Counter.sum hashchecks);
      ("promotions", Obs.Counter.sum promotions);
      ("sync_ack_waits", Obs.Counter.sum sync_ack_waits);
      ("lag_records", lag_records ());
      ("lag_bytes", lag_bytes ());
    ]

  (** Append the [patserve_repl_*] families to an exposition; the shape
      [Harness.Live.add_extra_producer] expects. *)
  let emit b =
    let open Obs.Prometheus in
    let c name help v =
      counter b ~name ~help (float_of_int (Obs.Counter.sum v))
    in
    c "patserve_repl_records_streamed_total"
      "WAL records streamed to followers (LOGRECS pushes)" records_streamed;
    c "patserve_repl_records_applied_total"
      "Replicated records applied by this follower" records_applied;
    c "patserve_repl_acks_total"
      "LOGACK progress acknowledgements (received by a primary or sent \
       by a follower)"
      acks;
    c "patserve_repl_subscriptions_total"
      "SUBSCRIBE streams accepted by this primary" subscriptions;
    c "patserve_repl_subscribe_rejects_total"
      "SUBSCRIBE requests rejected (history no longer retained, \
       stopping, or not a primary)"
      subscribe_rejects;
    c "patserve_repl_hashchecks_total" "HASHCHECK subtree hash requests"
      hashchecks;
    c "patserve_repl_promotions_total"
      "PROMOTE operations executed (seal WAL, flip to primary)" promotions;
    c "patserve_repl_sync_ack_waits_total"
      "Serving barriers that waited for follower acknowledgements \
       (sync-ack mode)"
      sync_ack_waits;
    gauge b ~name:"patserve_repl_lag_records"
      ~help:
        "Replication lag in records (primary: head minus slowest \
         attached follower ack; follower: primary head minus applied)"
      (float_of_int (lag_records ()));
    gauge b ~name:"patserve_repl_lag_bytes"
      ~help:"Replication lag in WAL bytes not yet consumed"
      (float_of_int (lag_bytes ()))
end

(* ------------------------------------------------------------------ *)
(* Anti-entropy range hashing *)

module Hash = struct
  (* Hash values live in 62 bits: the wire's i64 fields reject values
     that do not round-trip through OCaml's 63-bit int, and keeping the
     sign bit clear sidesteps negative-literal surprises. *)
  let mask = 0x3FFFFFFFFFFFFFFF
  let empty = 0x243F6A8885A308D lor 1 (* pi digits; any fixed nonzero seed *)

  (* SplitMix64-style avalanche of one key, folded in sequentially:
     order-dependent, so equal ascending folds hash equal — which is
     the only property needed, since both sides fold the same canonical
     ascending order. *)
  let mix acc k =
    let z = (k + 0x1E3779B97F4A7C15) land max_int in
    let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
    let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
    let z = z lxor (z lsr 31) in
    ((acc * 0x100000001B3) lxor z) land mask

  (* Deterministic combiner for an internal node from its two child
     hashes: the node hash carries no information beyond the children,
     but sending all three lets the checker compare the node in the
     same round trip it uses to pick the divergent child. *)
  let combine l r = (((l * 0x100000001B3) lxor r) + 0x9E3779B9) land mask

  (** Ascending fold over stored keys in [\[lo, hi\]], monomorphic in
      the accumulator — the one capability a served structure must
      provide for anti-entropy ([Patricia.fold_range] pruned descent,
      or any sorted iteration). *)
  type fold = lo:int -> hi:int -> init:int -> f:(int -> int -> int) -> int

  let range (fold : fold) ~lo ~hi =
    if lo > hi then empty else fold ~lo ~hi ~init:empty ~f:mix

  (** Key range covered by the [len]-bit prefix [prefix] of a
      [width]-bit keyspace. *)
  let prefix_range ~width ~prefix ~len =
    let span = width - len in
    let lo = prefix lsl span in
    (lo, lo + (1 lsl span) - 1)

  (** The [(node, left, right)] hashes HASHCHECK answers: [left]/[right]
      are the child prefixes' range hashes, [node] their combination —
      except at full depth, where the range is a single key and the
      node hash is the range hash itself (children report [0]). *)
  let hashes (fold : fold) ~width ~prefix ~len =
    if len < 0 || len > width then
      Result.Error (Printf.sprintf "prefix length %d outside [0, %d]" len width)
    else if prefix < 0 || (len < 62 && prefix >= 1 lsl len) then
      Result.Error (Printf.sprintf "prefix %d wider than %d bits" prefix len)
    else begin
      Obs.Counter.incr Metrics.hashchecks;
      if len = width then begin
        let lo, hi = prefix_range ~width ~prefix ~len in
        Result.Ok (range fold ~lo ~hi, 0, 0)
      end
      else begin
        let llo, lhi = prefix_range ~width ~prefix:(2 * prefix) ~len:(len + 1) in
        let rlo, rhi =
          prefix_range ~width ~prefix:((2 * prefix) + 1) ~len:(len + 1)
        in
        let l = range fold ~lo:llo ~hi:lhi in
        let r = range fold ~lo:rlo ~hi:rhi in
        Result.Ok (combine l r, l, r)
      end
    end

  (** Descend from the root comparing local subtree hashes against a
      remote replica's, one [HASHCHECK] round trip per level.  Returns
      [(divergent_key_range, round_trips)]: [None] when the replicas
      hash equal at the root, [Some (lo, hi)] the unit (or narrowest
      divergent) key range otherwise.  Round trips are [<= width + 1 =
      O(log n)] — the acceptance criterion the test asserts. *)
  let locate (fold : fold) ~width ~(remote : prefix:int -> len:int -> int * int * int) =
    let rec go prefix len rts =
      let rnode, rleft, rright = remote ~prefix ~len in
      match hashes fold ~width ~prefix ~len with
      | Result.Error msg -> failwith ("Replica.Hash.locate: " ^ msg)
      | Result.Ok (lnode, lleft, lright) ->
          if lnode = rnode then (None, rts)
          else if len = width then (Some (prefix_range ~width ~prefix ~len), rts)
          else if lleft <> rleft then go (2 * prefix) (len + 1) (rts + 1)
          else if lright <> rright then go ((2 * prefix) + 1) (len + 1) (rts + 1)
          else
            (* node differs but both children agree: impossible for the
               deterministic combiner; treat as divergence here. *)
            (Some (prefix_range ~width ~prefix ~len), rts)
    in
    go 0 0 1
end

(* ------------------------------------------------------------------ *)
(* Watermark: the follower's persisted replication position *)

module Watermark = struct
  let filename = "REPL_WATERMARK"
  let path ~dir = Filename.concat dir filename

  (** Highest primary sequence number known applied {e and} covered by
      the follower's own durable log; [None] if never written. *)
  let read ~dir =
    match open_in (path ~dir) with
    | ic ->
        Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
        (try int_of_string_opt (String.trim (input_line ic))
         with End_of_file -> None)
    | exception Sys_error _ -> None

  (** Atomic write (tmp + fsync + rename), same discipline as
      checkpoint images: a torn watermark must never be readable. *)
  let write ~dir seq =
    let tmp = path ~dir ^ ".tmp" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    (Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
    @@ fun () ->
     let s = Bytes.of_string (string_of_int seq ^ "\n") in
     write_all fd s 0 (Bytes.length s);
     Unix.fsync fd);
    Unix.rename tmp (path ~dir)
end

(* ------------------------------------------------------------------ *)
(* Primary: stream the WAL to subscribed followers *)

module Primary = struct
  type sub = {
    id : int;
    fd : Unix.file_descr;
    sub_seq : int;  (** every push is tagged with the SUBSCRIBE seq *)
    acked : int Atomic.t;  (** highest LOGACK applied_seq received *)
    tail_pos : int Atomic.t;  (** next WAL seq the cursor will deliver *)
    lag_b : int Atomic.t;  (** unconsumed WAL bytes behind the cursor *)
    alive : bool Atomic.t;
    mutable dom : unit Domain.t option;
  }

  type t = {
    dir : string;
    writer : Persist.Wal.Writer.t;
    sync_ack : bool;
    ack_timeout_s : float;
    mu : Mutex.t;
    acked_cond : Condition.t;
    mutable subs : sub list;
    mutable next_id : int;
    mutable stopping : bool;
  }

  let create ~dir ~writer ?(sync_ack = false) ?(ack_timeout_s = 10.0) () =
    {
      dir;
      writer;
      sync_ack;
      ack_timeout_s;
      mu = Mutex.create ();
      acked_cond = Condition.create ();
      subs = [];
      next_id = 0;
      stopping = false;
    }

  let live_subs t =
    Mutex.lock t.mu;
    let subs = List.filter (fun s -> Atomic.get s.alive) t.subs in
    Mutex.unlock t.mu;
    subs

  let subscriber_count t = List.length (live_subs t)

  (** Checkpoint-GC floor for {!Persist.Store.Make.set_retention_hook}:
      the earliest WAL position some attached cursor still needs. *)
  let retention_floor t () =
    match live_subs t with
    | [] -> None
    | subs ->
        Some
          (List.fold_left
             (fun acc s -> min acc (Atomic.get s.tail_pos))
             max_int subs)

  (** Primary-side lag of the slowest attached follower, in records:
      newest assigned sequence minus the slowest acknowledged one.  0
      with no followers attached — an unreplicated primary is not
      "lagging", it is alone. *)
  let lag_records t =
    match live_subs t with
    | [] -> 0
    | subs ->
        let head = Persist.Wal.Writer.last_assigned t.writer in
        List.fold_left
          (fun acc s -> max acc (head - Atomic.get s.acked))
          0 subs

  let lag_bytes t =
    List.fold_left (fun acc s -> max acc (Atomic.get s.lag_b)) 0 (live_subs t)

  let mark_dead t s =
    if Atomic.compare_and_set s.alive true false then begin
      Mutex.lock t.mu;
      t.subs <- List.filter (fun s' -> s'.id <> s.id) t.subs;
      (* Sync-ack waiters must re-evaluate: a dead follower no longer
         gates acknowledgements (availability over blocking forever on
         a vanished replica). *)
      Condition.broadcast t.acked_cond;
      Mutex.unlock t.mu;
      (try Unix.shutdown s.fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error (_, _, _) -> ());
      Obs.Net.close_noerr s.fd
    end

  let record_to_op = function
    | Persist.Wal.Insert k -> Protocol.Insert k
    | Persist.Wal.Delete k -> Protocol.Delete k
    | Persist.Wal.Replace { remove; add } -> Protocol.Replace { remove; add }

  (* Drain whatever LOGACKs the follower has sent without blocking; the
     streamer polls this between pushes.  Returns [false] when the
     connection is gone. *)
  let drain_acks t s reader scratch =
    let rec read_ready ok =
      if not ok then false
      else
        match Unix.select [ s.fd ] [] [] 0.0 with
        | [], _, _ -> true
        | _ :: _, _, _ -> (
            match Unix.read s.fd scratch 0 (Bytes.length scratch) with
            | 0 -> false
            | n ->
                Protocol.Reader.feed reader scratch n;
                read_ready (decode_frames ())
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_ready ok
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                true
            | exception Unix.Unix_error (_, _, _) -> false)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_ready ok
        | exception Unix.Unix_error (_, _, _) -> false
    and decode_frames () =
      match Protocol.Reader.next_payload reader with
      | `None -> true
      | `Bad _ -> false
      | `Payload (buf, off, len) -> (
          match Protocol.decode_request buf ~off ~len with
          | Result.Ok { Protocol.op = Protocol.Logack { applied_seq }; _ } ->
              Obs.Counter.incr Metrics.acks;
              let rec raise_to v =
                let cur = Atomic.get s.acked in
                if v > cur && not (Atomic.compare_and_set s.acked cur v) then
                  raise_to v
              in
              raise_to applied_seq;
              Mutex.lock t.mu;
              Condition.broadcast t.acked_cond;
              Mutex.unlock t.mu;
              decode_frames ()
          | Result.Ok _ | Result.Error _ ->
              (* Anything but LOGACK on a subscription stream is a
                 protocol violation; drop the stream. *)
              false)
    in
    read_ready true

  let stream_loop t s tail =
    let reader = Protocol.Reader.create () in
    let scratch = Bytes.create 65536 in
    let buf = Buffer.create 65536 in
    let rec loop () =
      if Atomic.get s.alive && not t.stopping then
        if not (drain_acks t s reader scratch) then mark_dead t s
        else begin
          (* Short wait: this loop is the only reader of both event
             sources (new durable WAL records, incoming LOGACKs on the
             socket), so its cycle time bounds the sync-ack latency a
             barrier-blocked worker sees.  2ms keeps that bound tight
             at the cost of an idle poll per subscription. *)
          let batch =
            Persist.Wal.Tail.next_batch tail ~max_records:4096 ~timeout_s:0.002
          in
          Atomic.set s.tail_pos (Persist.Wal.Tail.pos_seq tail);
          Atomic.set s.lag_b (Persist.Wal.Tail.lag_bytes tail);
          (match batch with
          | [] -> ()
          | recs ->
              let head_seq = Persist.Wal.Writer.last_assigned t.writer in
              Buffer.clear buf;
              Protocol.encode_response buf
                {
                  Protocol.seq = s.sub_seq;
                  result =
                    Protocol.Logrecs
                      {
                        head_seq;
                        recs =
                          List.map
                            (fun (rseq, r) ->
                              { Protocol.rseq; rop = record_to_op r })
                            recs;
                      };
                };
              let bb = Buffer.to_bytes buf in
              (match write_all s.fd bb 0 (Bytes.length bb) with
              | () -> Obs.Counter.add Metrics.records_streamed (List.length recs)
              | exception Unix.Unix_error (_, _, _) -> mark_dead t s));
          loop ()
        end
    in
    (match loop () with
    | () -> ()
    | exception _ -> ());
    mark_dead t s;
    Persist.Wal.Tail.close tail

  (** The {!Server.repl} [subscribe] hook: takes ownership of a
      handed-off connection, answers the SUBSCRIBE request, and serves
      it from a dedicated streamer domain. *)
  let subscribe t ~fd ~seq ~from_seq =
    let reject msg =
      Obs.Counter.incr Metrics.subscribe_rejects;
      (try send_response fd ~seq (Protocol.Error msg)
       with Unix.Unix_error (_, _, _) -> ());
      Obs.Net.close_noerr fd
    in
    Mutex.lock t.mu;
    let stopping = t.stopping in
    Mutex.unlock t.mu;
    if stopping then reject "primary is shutting down"
    else begin
      (* Nagle + delayed ACK would add ~40ms to every push/ack round
         trip, which the sync-ack barrier would eat in full. *)
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error (_, _, _) -> ());
      match
        Persist.Wal.Tail.open_ ~dir:t.dir ~writer:t.writer ~from_seq ()
      with
      | Result.Error msg -> reject msg
      | Result.Ok tail -> (
          let s =
            {
              id = 0;
              fd;
              sub_seq = seq;
              acked = Atomic.make (from_seq - 1);
              tail_pos = Atomic.make from_seq;
              lag_b = Atomic.make 0;
              alive = Atomic.make true;
              dom = None;
            }
          in
          (* Register before confirming: once the follower sees the
             confirmation it may rely on sync-ack gating, so the sub
             must already be in the barrier's sight. *)
          Mutex.lock t.mu;
          let s = { s with id = t.next_id } in
          t.next_id <- t.next_id + 1;
          t.subs <- s :: t.subs;
          Mutex.unlock t.mu;
          match send_response fd ~seq (Protocol.Bool true) with
          | exception Unix.Unix_error (_, _, _) ->
              mark_dead t s;
              Persist.Wal.Tail.close tail
          | () ->
              Obs.Counter.incr Metrics.subscriptions;
              s.dom <- Some (Domain.spawn (fun () -> stream_loop t s tail)))
    end

  (** Sync-ack barrier tail: block until every follower attached {e at
      entry} has acknowledged applying [seq] (their in-memory state
      contains it; its effects are queued in their own logs).  Bounded
      by [ack_timeout_s] — a wedged follower degrades to async
      replication rather than wedging the primary's serving path; dead
      followers stop gating immediately.  No-op with [seq < 0], in
      async mode, or with no followers attached. *)
  let wait_acked t seq =
    if t.sync_ack && seq >= 0 then begin
      let gating = live_subs t in
      if gating <> [] then begin
        Obs.Counter.incr Metrics.sync_ack_waits;
        let deadline = Unix.gettimeofday () +. t.ack_timeout_s in
        let caught_up () =
          List.for_all
            (fun s -> (not (Atomic.get s.alive)) || Atomic.get s.acked >= seq)
            gating
        in
        Mutex.lock t.mu;
        let rec wait () =
          if (not (caught_up ())) && Unix.gettimeofday () < deadline then begin
            (* Timed wakeups: OCaml's Condition has no deadline, so the
               broadcast path is the fast wakeup and this bounds the
               slow one. *)
            Condition.broadcast t.acked_cond;
            Mutex.unlock t.mu;
            Unix.sleepf 0.0005;
            Mutex.lock t.mu;
            wait ()
          end
        in
        wait ();
        Mutex.unlock t.mu
      end
    end

  let stop t =
    Mutex.lock t.mu;
    t.stopping <- true;
    let subs = t.subs in
    Condition.broadcast t.acked_cond;
    Mutex.unlock t.mu;
    List.iter (fun s -> mark_dead t s) subs;
    List.iter (fun s -> Option.iter Domain.join s.dom) subs
end

(* ------------------------------------------------------------------ *)
(* Follower: subscribe, apply through the store, acknowledge *)

module Follower = struct
  (** How the follower touches its local store: forced application (the
      record's effect must hold afterwards, result booleans are
      irrelevant) plus the durability wait that gates watermark
      persistence. *)
  type store_ops = {
    apply_insert : int -> unit;
    apply_delete : int -> unit;
    wal_sync : unit -> unit;
        (** wait until the follower's own WAL covers everything applied
            so far (its group commit caught up) *)
  }

  type t = {
    addr : string;
    port : int;
    ops : store_ops;
    watermark_dir : string option;
    fd : Unix.file_descr;
    applied : int Atomic.t;  (** highest primary seq applied *)
    head : int Atomic.t;  (** primary head_seq from the last push *)
    unapplied_bytes : int Atomic.t;
        (** received-but-unapplied payload bytes — nonzero while the
            apply loop is stalled mid-batch *)
    stopping : bool Atomic.t;
    failed : string option Atomic.t;
    mutable dom : unit Domain.t option;
    watermark_every : int;
  }

  let applied_seq t = Atomic.get t.applied
  let head_seq t = Atomic.get t.head
  let lag_records t = max 0 (Atomic.get t.head - Atomic.get t.applied)
  let lag_bytes t = Atomic.get t.unapplied_bytes
  let failure t = Atomic.get t.failed

  (* Approximate wire size of one replicated record, for the
     unapplied-bytes gauge. *)
  let rec_bytes = function
    | Protocol.Replace _ -> 8 + 1 + 16
    | _ -> 8 + 1 + 8

  let persist_watermark t =
    match t.watermark_dir with
    | None -> ()
    | Some dir ->
        (* Order matters: the follower's own log must cover every
           applied record before the watermark claims them, so a
           recovered watermark never points past recoverable state. *)
        t.ops.wal_sync ();
        Watermark.write ~dir (Atomic.get t.applied)

  let apply_batch t ~head_seq recs =
    Atomic.set t.head (max head_seq (Atomic.get t.head));
    Atomic.set t.unapplied_bytes
      (List.fold_left (fun a { Protocol.rop; _ } -> a + rec_bytes rop) 0 recs);
    let applied_since = ref 0 in
    List.iter
      (fun { Protocol.rseq; rop } ->
        Chaos.point Chaos.Repl_apply;
        (match rop with
        | Protocol.Insert k -> t.ops.apply_insert k
        | Protocol.Delete k -> t.ops.apply_delete k
        | Protocol.Replace { remove; add } ->
            (* Forced semantics, exactly like recovery replay: the
               record asserts [remove] absent and [add] present. *)
            t.ops.apply_delete remove;
            t.ops.apply_insert add
        | _ -> ());
        Atomic.set t.applied rseq;
        Obs.Counter.incr Metrics.records_applied;
        incr applied_since;
        Atomic.set t.unapplied_bytes
          (max 0 (Atomic.get t.unapplied_bytes - rec_bytes rop)))
      recs;
    !applied_since

  let recv_loop t reader =
    let scratch = Bytes.create 65536 in
    let since_watermark = ref 0 in
    let fail msg = Atomic.set t.failed (Some msg) in
    let rec frames () =
      if Atomic.get t.stopping then ()
      else
        match Protocol.Reader.next_payload reader with
        | `Bad msg -> fail ("subscription stream desynchronized: " ^ msg)
        | `Payload (buf, off, len) -> (
            match Protocol.decode_response buf ~off ~len with
            | Result.Error msg -> fail ("bad frame from primary: " ^ msg)
            | Result.Ok { Protocol.result = Protocol.Logrecs { head_seq; recs }; _ }
              ->
                let n = apply_batch t ~head_seq recs in
                since_watermark := !since_watermark + n;
                (* Acknowledge applied progress; the primary's sync-ack
                   barrier blocks on exactly this number. *)
                let ack = Buffer.create 32 in
                Protocol.encode_request ack
                  {
                    Protocol.seq = 2;
                    op = Protocol.Logack { applied_seq = Atomic.get t.applied };
                  };
                let bb = Buffer.to_bytes ack in
                (match write_all t.fd bb 0 (Bytes.length bb) with
                | () -> Obs.Counter.incr Metrics.acks
                | exception Unix.Unix_error (e, _, _) ->
                    fail ("ack write: " ^ Unix.error_message e));
                if !since_watermark >= t.watermark_every then begin
                  since_watermark := 0;
                  persist_watermark t
                end;
                frames ()
            | Result.Ok { Protocol.result = Protocol.Error msg; _ } ->
                fail ("primary error: " ^ msg)
            | Result.Ok _ -> frames ())
        | `None -> (
            match Unix.read t.fd scratch 0 (Bytes.length scratch) with
            | 0 ->
                if not (Atomic.get t.stopping) then
                  fail "primary closed the subscription"
            | n ->
                Protocol.Reader.feed reader scratch n;
                frames ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> frames ()
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                (* recv timeout: re-check stopping, then keep waiting *)
                frames ()
            | exception Unix.Unix_error (e, _, _) ->
                if not (Atomic.get t.stopping) then
                  fail ("subscription read: " ^ Unix.error_message e))
    in
    frames ();
    persist_watermark t

  (** Connect to the primary and stream from [from_seq] (typically
      [Watermark.read + 1]; the overlap with already-applied state is
      harmless because application is forced).  The subscription is
      confirmed synchronously — an [Error] (history no longer retained,
      not a primary) surfaces here, loudly — then applied on a
      dedicated domain. *)
  let start ?(addr = "127.0.0.1") ~port ~from_seq ?watermark_dir
      ?(watermark_every = 512) ops =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      (* Bounded reads so stop requests are noticed within 200ms even
         with an idle primary. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.2
    with
    | exception Unix.Unix_error (e, _, _) ->
        Obs.Net.close_noerr fd;
        Result.Error ("connect to primary: " ^ Unix.error_message e)
    | () -> (
        let sub = Buffer.create 32 in
        Protocol.encode_request sub
          { Protocol.seq = 1; op = Protocol.Subscribe { from_seq } };
        let bb = Buffer.to_bytes sub in
        match write_all fd bb 0 (Bytes.length bb) with
        | exception Unix.Unix_error (e, _, _) ->
            Obs.Net.close_noerr fd;
            Result.Error ("subscribe: " ^ Unix.error_message e)
        | () -> (
            (* Synchronous confirmation read: one response frame. *)
            let reader = Protocol.Reader.create () in
            let scratch = Bytes.create 4096 in
            let rec confirm () =
              match Protocol.Reader.next_payload reader with
              | `Bad msg -> Result.Error msg
              | `Payload (buf, off, len) -> Protocol.decode_response buf ~off ~len
              | `None -> (
                  match Unix.read fd scratch 0 (Bytes.length scratch) with
                  | 0 -> Result.Error "primary closed before confirming"
                  | n ->
                      Protocol.Reader.feed reader scratch n;
                      confirm ()
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> confirm ()
                  | exception
                      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                    ->
                      confirm ()
                  | exception Unix.Unix_error (e, _, _) ->
                      Result.Error (Unix.error_message e))
            in
            match confirm () with
            | Result.Error msg ->
                Obs.Net.close_noerr fd;
                Result.Error ("subscribe: " ^ msg)
            | Result.Ok { Protocol.result = Protocol.Error msg; _ } ->
                Obs.Net.close_noerr fd;
                Result.Error ("subscribe rejected: " ^ msg)
            | Result.Ok { Protocol.result = Protocol.Bool true; _ } ->
                let t =
                  {
                    addr;
                    port;
                    ops;
                    watermark_dir;
                    fd;
                    applied = Atomic.make (from_seq - 1);
                    head = Atomic.make (from_seq - 1);
                    unapplied_bytes = Atomic.make 0;
                    stopping = Atomic.make false;
                    failed = Atomic.make None;
                    dom = None;
                    watermark_every;
                  }
                in
                (* The apply domain inherits the confirmation reader:
                   any stream bytes that arrived in the same read as
                   the confirmation are already buffered in it. *)
                t.dom <- Some (Domain.spawn (fun () -> recv_loop t reader));
                Result.Ok t
            | Result.Ok _ ->
                Obs.Net.close_noerr fd;
                Result.Error "subscribe: unexpected confirmation"))

  (** Snapshot-bootstrap: populate a {e fresh} follower store from a
      live primary's frozen SCAN pages instead of replaying its whole
      WAL history — the remedy when {!start} is rejected with "resync
      required" (the subscription position was checkpointed away on the
      primary).

      Streams the primary's contents page by page (each page drawn
      from an atomic frozen snapshot on the primary), applies every key
      through [apply_insert] (re-logging into the follower's own WAL as
      usual), and returns [(from_seq, keys_loaded)] where [from_seq] is
      the position to pass to {!start}: the {e first} page's [cut] + 1.
      Every mutation the primary logged at or before that cut is inside
      its page's snapshot (pages after the first are newer snapshots,
      so their cuts are at least as high), and every record past it is
      replayed by the subscription with the follower's forced
      application — the same half-seen-then-overwritten argument that
      makes watermark-overlap replay idempotent.  The caller must only
      run this against a store with no other writers (a fresh or
      wiped data directory). *)
  let bootstrap ?(addr = "127.0.0.1") ~port ops =
    match Server.Client.connect ~addr ~port () with
    | exception e ->
        Result.Error ("bootstrap connect: " ^ Printexc.to_string e)
    | c -> (
        Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
        let cut = ref None in
        let loaded = ref 0 in
        match
          Server.Client.scan
            ~f:(fun p ->
              if !cut = None then cut := Some p.Server.Client.cut;
              List.iter ops.apply_insert p.Server.Client.keys;
              loaded := !loaded + List.length p.Server.Client.keys)
            c
        with
        | (_ : int list) -> (
            ops.wal_sync ();
            match !cut with
            | Some cut -> Result.Ok (cut + 1, !loaded)
            | None -> Result.Error "bootstrap scan returned no pages")
        | exception e ->
            Result.Error ("bootstrap scan: " ^ Printexc.to_string e))

  (** Detach: stop the apply domain, close the socket, persist a final
      watermark.  Idempotent. *)
  let stop t =
    if not (Atomic.exchange t.stopping true) then begin
      (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error (_, _, _) -> ())
    end;
    (match t.dom with
    | Some d ->
        t.dom <- None;
        Domain.join d
    | None -> ());
    Obs.Net.close_noerr t.fd
end

(* ------------------------------------------------------------------ *)
(* Follower admission gate *)

module Gate = struct
  (** The follower's per-request verdict for {!Server.start}'s [?gate]:
      mutations are refused (a follower is a read-only replica — the
      primary owns the write order), reads are served while the
      follower's applied position is within [staleness] records of the
      primary's head and declined BUSY past it. *)
  let follower ~staleness ~lag ~retry_after_ms : Protocol.op -> _ = function
    | Protocol.Member _ | Protocol.Size | Protocol.Hashcheck _
    | Protocol.Scan _ | Protocol.Range _ ->
        if lag () > staleness then `Busy_gate retry_after_ms else `Proceed
    | Protocol.Batch ops
      when List.for_all
             (function Protocol.Member _ -> true | _ -> false)
             ops ->
        if lag () > staleness then `Busy_gate retry_after_ms else `Proceed
    | Protocol.Insert _ | Protocol.Delete _ | Protocol.Replace _
    | Protocol.Batch _ ->
        `Refuse "read-only follower: send mutations to the primary"
    | Protocol.Subscribe _ ->
        `Refuse "followers do not serve subscriptions"
    | Protocol.Logack _ | Protocol.Promote -> `Proceed
end

(** A {!Server.repl} [subscribe] hook for nodes that are not primaries:
    answer with an error and close — a follower must reject SUBSCRIBE
    without wedging the handed-off socket. *)
let reject_subscribe ~reason ~fd ~seq ~from_seq:_ =
  Obs.Counter.incr Metrics.subscribe_rejects;
  (try send_response fd ~seq (Protocol.Error reason)
   with Unix.Unix_error (_, _, _) -> ());
  Obs.Net.close_noerr fd

(** Concurrent-set benchmark harness reproducing the methodology of the
    paper's Section V:

    - operation mixes are given as percentages (e.g. i5-d5-f90);
    - keys are drawn uniformly from a range, or non-uniformly as runs of
      50 consecutive keys from a random starting point;
    - each data point is the mean of several timed trials on a structure
      prefilled to half-full, after a warm-up run; the standard deviation
      is reported (the paper's error bars);
    - throughput is total completed operations per second across all
      threads (OCaml domains). *)

(** Operation mix in percent; must sum to 100. *)
module Mix = struct
  type t = { insert : int; delete : int; find : int; replace : int }

  let v ?(insert = 0) ?(delete = 0) ?(find = 0) ?(replace = 0) () =
    if insert + delete + find + replace <> 100 then
      invalid_arg "Mix.v: percentages must sum to 100";
    { insert; delete; find; replace }

  let i5_d5_f90 = v ~insert:5 ~delete:5 ~find:90 ()
  let i50_d50_f0 = v ~insert:50 ~delete:50 ()
  let i15_d15_f70 = v ~insert:15 ~delete:15 ~find:70 ()
  let i10_d10_r80 = v ~insert:10 ~delete:10 ~replace:80 ()

  let to_string m =
    let parts =
      List.filter
        (fun (_, p) -> p > 0)
        [ ("i", m.insert); ("d", m.delete); ("f", m.find); ("r", m.replace) ]
    in
    String.concat "-" (List.map (fun (n, p) -> Printf.sprintf "%s%d" n p) parts)
end

(** Key distribution: uniform over the range, or the paper's non-uniform
    workload — operations on runs of [run_length] consecutive keys
    starting from a random key (Section V uses 50). *)
type distribution = Uniform | Clustered of int

type workload = {
  universe : int;
  mix : Mix.t;
  dist : distribution;
}

type config = {
  threads : int;
  seconds : float; (* length of each timed trial *)
  trials : int;
  warmup_seconds : float;
  seed : int;
}

let default_config =
  { threads = 4; seconds = 1.0; trials = 3; warmup_seconds = 0.3; seed = 2013 }

(** The operations of one structure instance, as closures so the runner is
    agnostic to the concrete module (and to whether replace exists).
    [stats], when present, snapshots the structure's internal contention
    counters (cumulative since creation); the runner diffs snapshots
    around the timed window. *)
type ops = {
  insert : int -> bool;
  delete : int -> bool;
  member : int -> bool;
  replace : (int -> int -> bool) option; (* remove add *)
  stats : (unit -> (string * int) list) option;
}

type datapoint = {
  mean : float; (* ops per second *)
  stddev : float;
  samples : float list;
}

(* Deltas of [Gc.quick_stat] around the timed window.  quick_stat is
   cheap and never stops the world, at the price of per-domain fields
   ([minor_words], [promoted_words]) reflecting mostly the coordinating
   domain; the collection counts and major words are global.  Good
   enough to spot an allocation regression between two runs of the same
   benchmark, which is what the metrics files are for. *)
type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let gc_delta_between (a : Gc.stat) (b : Gc.stat) =
  {
    minor_words = b.Gc.minor_words -. a.Gc.minor_words;
    promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
    major_words = b.Gc.major_words -. a.Gc.major_words;
    minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
    major_collections = b.Gc.major_collections - a.Gc.major_collections;
  }

let gc_delta_add x y =
  {
    minor_words = x.minor_words +. y.minor_words;
    promoted_words = x.promoted_words +. y.promoted_words;
    major_words = x.major_words +. y.major_words;
    minor_collections = x.minor_collections + y.minor_collections;
    major_collections = x.major_collections + y.major_collections;
  }

let gc_delta_zero =
  {
    minor_words = 0.0;
    promoted_words = 0.0;
    major_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
  }

(** Everything one timed trial can report beyond raw throughput. *)
type trial_metrics = {
  ops_per_sec : float;
  latency : Obs.Histogram.summary option;
      (* per-operation latency over the timed window, all domains *)
  counters : (string * int) list;
      (* structure-internal counter deltas over the timed window *)
  gc : gc_delta;
}

(* ------------------------------------------------------------------ *)
(* Live telemetry: the state behind the scrape endpoint (Obs.Serve).

   The run loops below bump a striped ops counter and (on the latency
   path) a sharded histogram whenever live mode is on; the [prometheus]
   producer renders those together with the retry attribution, chaos
   crossings, trace-ring drops, trie-internal counters and GC state into
   one text exposition.  Same hot-path discipline as everything else in
   this file: live mode off costs one atomic load and an untaken branch
   per operation. *)

module Live = struct
  let active = Atomic.make false
  let ops_done = Obs.Counter.create ()
  let latency = Obs.Histogram.create ()
  let started_ns = ref 0

  (* The current structure's cumulative counter snapshot function
     ([ops.stats] of the instance under test), registered by the trial
     runner so a scrape can expose trie-internal counters.  Read only on
     scrape. *)
  let stats_source : (unit -> (string * int) list) option Atomic.t =
    Atomic.make None

  let set_stats_source f = Atomic.set stats_source f

  (* Extra metric producers appended to the exposition — how the
     patserve server, the durability layer, the runtime-events
     collector and the watchdog (none of which this library may depend
     on) get their families into the same scrape.  [set_extra_producer]
     replaces the whole list (the pre-existing single-producer API);
     [add_extra_producer] appends, so independent subsystems can
     register without knowing about each other. *)
  let extra_producers : (Obs.Prometheus.t -> unit) list Atomic.t =
    Atomic.make []

  let set_extra_producer = function
    | Some f -> Atomic.set extra_producers [ f ]
    | None -> Atomic.set extra_producers []

  let add_extra_producer f =
    let rec go () =
      let cur = Atomic.get extra_producers in
      if not (Atomic.compare_and_set extra_producers cur (cur @ [ f ])) then
        go ()
    in
    go ()

  let clear_extra_producers () = Atomic.set extra_producers []

  let set_enabled b =
    if b && not (Atomic.get active) then begin
      Obs.Counter.reset ops_done;
      Obs.Histogram.reset latency;
      started_ns := Obs.Clock.now_ns ()
    end;
    Atomic.set active b

  let enabled () = Atomic.get active

  (* Count one completed operation; [op] also records its latency. *)
  let[@inline] tick () = if Atomic.get active then Obs.Counter.incr ops_done

  let[@inline] op ns =
    if Atomic.get active then begin
      Obs.Counter.incr ops_done;
      Obs.Histogram.record latency ns
    end

  let prometheus () =
    let b = Obs.Prometheus.create () in
    let open Obs.Prometheus in
    gauge b ~name:"repro_up" ~help:"Benchmark process is serving metrics" 1.0;
    gauge b ~name:"repro_uptime_seconds"
      ~help:"Seconds since live telemetry was enabled"
      (float_of_int (Obs.Clock.now_ns () - !started_ns) /. 1e9);
    counter b ~name:"repro_ops_total"
      ~help:"Operations completed by benchmark workers since live start"
      (float_of_int (Obs.Counter.sum ops_done));
    histogram_summary b ~name:"repro_op_latency_ns"
      ~help:"Per-operation latency over the live window, nanoseconds"
      (Obs.Histogram.snapshot latency);
    (* Two passes: the exposition format wants each metric family's
       samples contiguous, so all cause counters come before all
       attempt-depth summaries. *)
    let attribution = Obs.Attribution.snapshot () in
    List.iter
      (fun (s : Obs.Attribution.summary) ->
        counter b ~name:"repro_retry_cause_total"
          ~help:"Update-attempt retries by cause"
          ~labels:[ ("cause", s.Obs.Attribution.name) ]
          (float_of_int s.Obs.Attribution.count))
      attribution;
    List.iter
      (fun (s : Obs.Attribution.summary) ->
        histogram_summary b ~name:"repro_retry_attempt_depth"
          ~help:"Attempt number at which each retry cause struck"
          ~labels:[ ("cause", s.Obs.Attribution.name) ]
          s.Obs.Attribution.attempts)
      attribution;
    histogram_summary b ~name:"repro_help_chain_depth"
      ~help:"Foreign descriptors helped per completed operation"
      (Obs.Attribution.help_depth_summary ());
    (match Obs.Trace.recorder () with
    | Some tr ->
        counter b ~name:"repro_trace_dropped_events_total"
          ~help:"Flight-recorder events lost to ring overwrites"
          (float_of_int (Obs.Trace.dropped tr))
    | None -> ());
    List.iter
      (fun (site, n) ->
        counter b ~name:"repro_chaos_crossings_total"
          ~help:"Chaos injection-site crossings"
          ~labels:[ ("site", site) ]
          (float_of_int n))
      (Chaos.site_crossings ());
    (match Atomic.get stats_source with
    | Some f ->
        List.iter
          (fun (n, v) ->
            counter b
              ~name:("repro_trie_" ^ n ^ "_total")
              ~help:"Trie-internal contention counter (cumulative)"
              (float_of_int v))
          (f ())
    | None -> ());
    List.iter (fun f -> f b) (Atomic.get extra_producers);
    let g = Gc.quick_stat () in
    gauge b ~name:"repro_gc_minor_collections"
      ~help:"Cumulative minor collections"
      (float_of_int g.Gc.minor_collections);
    gauge b ~name:"repro_gc_major_collections"
      ~help:"Cumulative major collections"
      (float_of_int g.Gc.major_collections);
    gauge b ~name:"repro_gc_minor_words" ~help:"Cumulative minor words"
      g.Gc.minor_words;
    gauge b ~name:"repro_gc_major_words" ~help:"Cumulative major words"
      g.Gc.major_words;
    gauge b ~name:"repro_gc_heap_words" ~help:"Major heap size in words"
      (float_of_int g.Gc.heap_words);
    to_string b
end

let mean_stddev samples =
  let n = float_of_int (List.length samples) in
  let mean = List.fold_left ( +. ) 0.0 samples /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples /. n
  in
  { mean; stddev = sqrt var; samples }

(* ------------------------------------------------------------------ *)
(* Key generators *)

let key_stream dist universe rng =
  match dist with
  | Uniform -> fun () -> Rng.int rng universe
  | Clustered run_length ->
      let base = ref (Rng.int rng universe) in
      let off = ref 0 in
      fun () ->
        if !off >= run_length then begin
          base := Rng.int rng universe;
          off := 0
        end;
        let k = (!base + !off) mod universe in
        incr off;
        k

(* ------------------------------------------------------------------ *)
(* One timed trial *)

let run_loop ?latency ops workload stop rng =
  let next_key = key_stream workload.dist workload.universe rng in
  let m = workload.mix in
  let t_ins = m.Mix.insert in
  let t_del = t_ins + m.Mix.delete in
  let t_find = t_del + m.Mix.find in
  let do_op r k =
    if r < t_ins then ignore (ops.insert k)
    else if r < t_del then ignore (ops.delete k)
    else if r < t_find then ignore (ops.member k)
    else begin
      match ops.replace with
      | Some replace -> ignore (replace k (next_key ()))
      | None -> ignore (ops.member k)
    end
  in
  let count = ref 0 in
  (* Two loop bodies so the un-instrumented path pays no clock reads and
     no option test per operation. *)
  (match latency with
  | None ->
      while not (Atomic.get stop) do
        let r = Rng.int rng 100 in
        let k = next_key () in
        do_op r k;
        Live.tick ();
        incr count
      done
  | Some hist ->
      while not (Atomic.get stop) do
        let r = Rng.int rng 100 in
        let k = next_key () in
        let t0 = Obs.Clock.now_ns () in
        do_op r k;
        let dt = Obs.Clock.now_ns () - t0 in
        Obs.Histogram.record hist dt;
        Live.op dt;
        incr count
      done);
  !count

(* Prefill to half-full: insert a uniformly random half of the universe
   in random order — the steady state of the paper's i50-d50 prefill run.
   Insertion order matters: a sorted sweep would degenerate the
   non-rebalancing trees (BST, 4-ST) into linear lists and bias every
   measurement, which is why the paper prefills with random updates. *)
let prefill ops universe rng =
  let perm = Array.init universe Fun.id in
  for i = universe - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  for i = 0 to (universe / 2) - 1 do
    ignore (ops.insert perm.(i))
  done

let counters_of ops = match ops.stats with Some f -> f () | None -> []

(* Delta of two cumulative counter snapshots, keyed by the first. *)
let counter_deltas before after =
  List.map
    (fun (name, v0) ->
      match List.assoc_opt name after with
      | Some v1 -> (name, v1 - v0)
      | None -> (name, 0))
    before

(* One prefill + warm-up + timed trial.  Returns the trial's metrics and
   the latency histogram (when [record_latency]) so callers can merge
   histograms across trials for whole-datapoint percentiles. *)
let run_trial_full ?(before_timed = fun () -> ()) ?(record_latency = false)
    ~make_ops workload config trial_idx =
  let ops = make_ops () in
  (* Let a live scrape see this instance's internal counters.  Once per
     trial, not per operation, so no gating needed. *)
  (match ops.stats with Some _ -> Live.set_stats_source ops.stats | None -> ());
  let rng = Rng.of_int_seed (config.seed + (trial_idx * 7919)) in
  prefill ops workload.universe rng;
  let run_phase ?latency seconds =
    let stop = Atomic.make false in
    let ready = Atomic.make 0 in
    let go = Atomic.make false in
    let worker d =
      Domain.spawn (fun () ->
          let rng = Rng.of_int_seed (config.seed + (trial_idx * 7919) + (d * 104729) + 1) in
          Atomic.incr ready;
          while not (Atomic.get go) do
            Domain.cpu_relax ()
          done;
          run_loop ?latency ops workload stop rng)
    in
    let domains = List.init config.threads worker in
    (* Start barrier with a deadline: a worker that dies before checking
       in (OOM, uncaught exception in spawn) must fail the trial with a
       diagnostic, not wedge the whole benchmark in a silent spin. *)
    if
      not
        (Chaos.Backoff.wait_until ~timeout_s:30.0 (fun () ->
             Atomic.get ready >= config.threads))
    then begin
      (* Unblock any workers that did park on the barrier so they exit,
         then fail loudly.  Domains that never reached the barrier cannot
         be joined safely, so we don't try. *)
      Atomic.set go true;
      Atomic.set stop true;
      failwith
        (Printf.sprintf
           "harness: start barrier timed out after 30s: %d of %d workers \
            checked in"
           (Atomic.get ready) config.threads)
    end;
    let t0 = Unix.gettimeofday () in
    Atomic.set go true;
    Unix.sleepf seconds;
    Atomic.set stop true;
    let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
    let elapsed = Unix.gettimeofday () -. t0 in
    float_of_int total /. elapsed
  in
  if config.warmup_seconds > 0.0 then ignore (run_phase config.warmup_seconds);
  before_timed ();
  (* Latency, counters and GC are all measured over the timed window
     only: the histogram is created after warm-up and the cumulative
     counters are diffed around the phase. *)
  let hist = if record_latency then Some (Obs.Histogram.create ()) else None in
  let counters0 = counters_of ops in
  let gc0 = Gc.quick_stat () in
  let ops_per_sec = run_phase ?latency:hist config.seconds in
  let gc1 = Gc.quick_stat () in
  let counters1 = counters_of ops in
  ( {
      ops_per_sec;
      latency = Option.map Obs.Histogram.snapshot hist;
      counters = counter_deltas counters0 counters1;
      gc = gc_delta_between gc0 gc1;
    },
    hist )

let run_trial ?before_timed ~make_ops workload config trial_idx =
  let m, _ = run_trial_full ?before_timed ~make_ops workload config trial_idx in
  m.ops_per_sec

(** A whole data point with observability: the throughput statistics of
    [run] plus per-trial metrics, the latency summary of all trials'
    samples merged, and counter/GC totals across trials. *)
type datapoint_full = {
  dp : datapoint;
  trial_metrics : trial_metrics list;
  latency : Obs.Histogram.summary option;
  counters : (string * int) list;
  gc : gc_delta;
}

let run_full ?before_timed ?(record_latency = false) ~make_ops workload config =
  let combined =
    if record_latency then Some (Obs.Histogram.create ()) else None
  in
  let trial_metrics =
    List.init config.trials (fun i ->
        let m, h =
          run_trial_full ?before_timed ~record_latency ~make_ops workload config
            i
        in
        (match (combined, h) with
        | Some into, Some h -> Obs.Histogram.merge_into ~into h
        | _ -> ());
        m)
  in
  let dp = mean_stddev (List.map (fun m -> m.ops_per_sec) trial_metrics) in
  let counters =
    match trial_metrics with
    | [] -> []
    | (first : trial_metrics) :: rest ->
        List.fold_left
          (fun acc (m : trial_metrics) ->
            List.map
              (fun (name, v) ->
                (name, v + Option.value ~default:0 (List.assoc_opt name m.counters)))
              acc)
          first.counters rest
  in
  let gc =
    List.fold_left
      (fun acc (m : trial_metrics) -> gc_delta_add acc m.gc)
      gc_delta_zero trial_metrics
  in
  {
    dp;
    trial_metrics;
    latency = Option.map Obs.Histogram.snapshot combined;
    counters;
    gc;
  }

let run ?before_timed ~make_ops workload config =
  (run_full ?before_timed ~make_ops workload config).dp

(* ------------------------------------------------------------------ *)
(* The six structures of the paper's evaluation, packaged uniformly. *)

type subject = { label : string; make : universe:int -> ops }

let pat_subject =
  {
    label = Core.Patricia.name;
    make =
      (fun ~universe ->
        let t = Core.Patricia.create ~universe () in
        {
          insert = Core.Patricia.insert t;
          delete = Core.Patricia.delete t;
          member = Core.Patricia.member t;
          replace =
            Some (fun remove add -> Core.Patricia.replace t ~remove ~add);
          stats = None;
        });
  }

let bst_subject =
  {
    label = Nbbst.name;
    make =
      (fun ~universe ->
        let t = Nbbst.create ~universe () in
        {
          insert = Nbbst.insert t;
          delete = Nbbst.delete t;
          member = Nbbst.member t;
          replace = None;
          stats = None;
        });
  }

let kary_subject =
  {
    label = Kary.name;
    make =
      (fun ~universe ->
        let t = Kary.create ~universe () in
        {
          insert = Kary.insert t;
          delete = Kary.delete t;
          member = Kary.member t;
          replace = None;
          stats = None;
        });
  }

let skiplist_subject =
  {
    label = Skiplist.name;
    make =
      (fun ~universe ->
        let t = Skiplist.create ~universe () in
        {
          insert = Skiplist.insert t;
          delete = Skiplist.delete t;
          member = Skiplist.member t;
          replace = None;
          stats = None;
        });
  }

let avl_subject =
  {
    label = Avl.name;
    make =
      (fun ~universe ->
        let t = Avl.create ~universe () in
        {
          insert = Avl.insert t;
          delete = Avl.delete t;
          member = Avl.member t;
          replace = None;
          stats = None;
        });
  }

let ctrie_subject =
  {
    label = Ctrie.name;
    make =
      (fun ~universe ->
        let t = Ctrie.create ~universe () in
        {
          insert = Ctrie.insert t;
          delete = Ctrie.delete t;
          member = Ctrie.member t;
          replace = None;
          stats = None;
        });
  }

(** PAT with its internal contention counters enabled (per-domain
    sharded, so the counters do not serialize the hot path).  Used when
    a metrics file is requested; the plain {!pat_subject} stays
    completely uninstrumented for like-for-like figure reproduction. *)
let pat_subject_stats =
  {
    label = Core.Patricia.name;
    make =
      (fun ~universe ->
        let t = Core.Patricia.create ~universe ~record_stats:true () in
        {
          insert = Core.Patricia.insert t;
          delete = Core.Patricia.delete t;
          member = Core.Patricia.member t;
          replace =
            Some (fun remove add -> Core.Patricia.replace t ~remove ~add);
          stats =
            Some
              (fun () ->
                match Core.Patricia.stats_snapshot t with
                | Some s -> Core.Patricia.stats_to_alist s
                | None -> []);
        });
  }

(** In the order the paper's legends list them. *)
let all_subjects =
  [
    pat_subject;
    kary_subject;
    bst_subject;
    avl_subject;
    skiplist_subject;
    ctrie_subject;
  ]

let run_subject subject workload config =
  run ~make_ops:(fun () -> subject.make ~universe:workload.universe) workload config

let run_subject_full ?record_latency subject workload config =
  run_full ?record_latency
    ~make_ops:(fun () -> subject.make ~universe:workload.universe)
    workload config

(* ------------------------------------------------------------------ *)
(* Metrics-file assembly: one JSON object per (structure, workload,
   threads) data point — the schema documented in EXPERIMENTS.md under
   "Observability" and validated by test/validate_metrics.ml. *)

let dist_string = function
  | Uniform -> "uniform"
  | Clustered n -> Printf.sprintf "clustered-%d" n

let gc_delta_to_json (g : gc_delta) =
  Obs.Json.Obj
    [
      ("minor_words", Obs.Json.Float g.minor_words);
      ("promoted_words", Obs.Json.Float g.promoted_words);
      ("major_words", Obs.Json.Float g.major_words);
      ("minor_collections", Obs.Json.Int g.minor_collections);
      ("major_collections", Obs.Json.Int g.major_collections);
    ]

(* Mean descent depth over a timed window, derived from the cumulative
   descent counters when the subject records them: nodes visited across
   all opcodes divided by completed searches. *)
let descent_mean counters =
  match List.assoc_opt "descent_searches" counters with
  | Some searches when searches > 0 ->
      let prefix = "descent_nodes_" in
      let plen = String.length prefix in
      let nodes =
        List.fold_left
          (fun acc (n, v) ->
            if String.length n >= plen && String.sub n 0 plen = prefix then
              acc + v
            else acc)
          0 counters
      in
      Some (float_of_int nodes /. float_of_int searches)
  | _ -> None

let datapoint_full_to_json ~section ~label workload ~threads
    (full : datapoint_full) =
  let open Obs.Json in
  Obj
    [
      ("figure", Str section);
      ("structure", Str label);
      ("mix", Str (Mix.to_string workload.mix));
      ("distribution", Str (dist_string workload.dist));
      ("universe", Int workload.universe);
      ("threads", Int threads);
      ("trials", Int (List.length full.dp.samples));
      ("throughput_mean_ops_s", Float full.dp.mean);
      ("throughput_stddev_ops_s", Float full.dp.stddev);
      ( "throughput_samples_ops_s",
        Arr (List.map (fun s -> Float s) full.dp.samples) );
      ( "latency",
        match full.latency with
        | Some s -> Obs.Histogram.summary_to_json s
        | None -> Null );
      ("counters", Obj (List.map (fun (n, v) -> (n, Int v)) full.counters));
      ( "descent_mean_nodes",
        match descent_mean full.counters with Some m -> Float m | None -> Null
      );
      ("gc", gc_delta_to_json full.gc);
    ]

(* ------------------------------------------------------------------ *)
(* Figure-style reporting *)

let pp_series fmt ~title ~threads_list (rows : (string * datapoint list) list) =
  Format.fprintf fmt "## %s@." title;
  Format.fprintf fmt "%-8s" "threads";
  List.iter (fun t -> Format.fprintf fmt "%14d" t) threads_list;
  Format.fprintf fmt "@.";
  List.iter
    (fun (label, points) ->
      Format.fprintf fmt "%-8s" label;
      List.iter (fun p -> Format.fprintf fmt "%14.0f" p.mean) points;
      Format.fprintf fmt "@.";
      Format.fprintf fmt "%-8s" "  ±";
      List.iter (fun p -> Format.fprintf fmt "%14.0f" p.stddev) points;
      Format.fprintf fmt "@.")
    rows

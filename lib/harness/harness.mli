(** Concurrent-set benchmark harness reproducing the methodology of the
    paper's Section V: percentage operation mixes, uniform or clustered
    key distributions, half-full prefill, warm-up, timed trials on
    parallel domains, and mean/stddev reporting (the paper's error
    bars). *)

(** Operation mix in percent; components must sum to 100. *)
module Mix : sig
  type t = { insert : int; delete : int; find : int; replace : int }

  val v :
    ?insert:int -> ?delete:int -> ?find:int -> ?replace:int -> unit -> t
  (** @raise Invalid_argument unless the percentages sum to 100. *)

  val i5_d5_f90 : t  (** Figures 8 and 9 (top). *)

  val i50_d50_f0 : t  (** Figures 8 and 9 (bottom). *)

  val i15_d15_f70 : t  (** Figure 11. *)

  val i10_d10_r80 : t  (** Figure 10 (replace workload). *)

  val to_string : t -> string
  (** e.g. ["i5-d5-f90"], the paper's naming. *)
end

(** Uniform keys, or the paper's non-uniform workload: operations on
    runs of [n] consecutive keys from random starting points (the paper
    uses runs of 50). *)
type distribution = Uniform | Clustered of int

type workload = { universe : int; mix : Mix.t; dist : distribution }

type config = {
  threads : int;
  seconds : float;  (** length of each timed trial *)
  trials : int;
  warmup_seconds : float;
  seed : int;
}

val default_config : config

(** Operations of one structure instance, as closures so the runner is
    agnostic to the module behind them ([replace] is [None] for the five
    comparison structures, which is why Figure 10 is PAT-only).
    [stats], when present, returns a snapshot of the structure's internal
    contention counters, cumulative since creation; the runner diffs two
    snapshots around the timed window. *)
type ops = {
  insert : int -> bool;
  delete : int -> bool;
  member : int -> bool;
  replace : (int -> int -> bool) option;  (** remove, add *)
  stats : (unit -> (string * int) list) option;
}

type datapoint = { mean : float; stddev : float; samples : float list }

(** Deltas of [Gc.quick_stat] taken around the timed window (cheap, no
    stop-the-world; the per-domain fields reflect mostly the
    coordinating domain, the collection counts are global). *)
type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

(** What one timed trial reports beyond raw throughput: latency
    percentiles over the timed window (when latency recording was on),
    structure-internal counter deltas, and GC deltas. *)
type trial_metrics = {
  ops_per_sec : float;
  latency : Obs.Histogram.summary option;
  counters : (string * int) list;
  gc : gc_delta;
}

val mean_stddev : float list -> datapoint

(** Live telemetry behind the scrape endpoint ([Obs.Serve]): a striped
    counter of completed operations and a sharded latency histogram the
    run loops bump while enabled, plus a [prometheus] producer rendering
    them together with the retry attribution, chaos crossings,
    trace-ring drops, trie-internal counters and GC state.  Disabled
    (the default), each operation pays one atomic load and an untaken
    branch. *)
module Live : sig
  val set_enabled : bool -> unit
  (** Enabling from the disabled state resets the live counter,
      histogram and start time. *)

  val enabled : unit -> bool

  val tick : unit -> unit
  (** Count one completed operation (no latency sample). *)

  val op : int -> unit
  (** Count one completed operation with its latency in nanoseconds. *)

  val set_stats_source : (unit -> (string * int) list) option -> unit
  (** Register the structure-internal cumulative counter snapshot a
      scrape should expose; the trial runner does this automatically for
      subjects with [ops.stats]. *)

  val set_extra_producer : (Obs.Prometheus.t -> unit) option -> unit
  (** Replace the extra-producer list with exactly this producer (or
      none).  Producers are appended to the exposition between the
      harness families and the GC gauges; each must emit complete
      metric families of its own (the exposition format wants each
      family's samples contiguous). *)

  val add_extra_producer : (Obs.Prometheus.t -> unit) -> unit
  (** Append one producer without disturbing the others — how the
      patserve server, the WAL metrics, the runtime-events collector
      and the watchdog each register independently for [patbench
      serve]'s single scrape endpoint. *)

  val clear_extra_producers : unit -> unit
  (** Remove every registered extra producer. *)

  val prometheus : unit -> string
  (** Render the full exposition (Prometheus text format 0.0.4). *)
end

val key_stream : distribution -> int -> Rng.t -> unit -> int
(** A generator of keys in [\[0, universe)] under the distribution. *)

val prefill : ops -> int -> Rng.t -> unit
(** Insert a uniformly random half of the universe in random order (the
    steady state of the paper's i50-d50 prefill; randomizing the order
    matters — a sorted sweep would degenerate the unbalanced trees). *)

val run_trial :
  ?before_timed:(unit -> unit) ->
  make_ops:(unit -> ops) ->
  workload ->
  config ->
  int ->
  float
(** One prefill + warm-up + timed trial; returns ops/second.
    [before_timed] runs after warm-up (used to snapshot ablation
    counters). *)

val run_trial_full :
  ?before_timed:(unit -> unit) ->
  ?record_latency:bool ->
  make_ops:(unit -> ops) ->
  workload ->
  config ->
  int ->
  trial_metrics * Obs.Histogram.t option
(** Like {!run_trial} but also measuring the timed window: per-operation
    latency (when [record_latency], default [false]), counter deltas via
    [ops.stats], and [Gc.quick_stat] deltas.  The returned histogram is
    the trial's raw latency data, for merging across trials. *)

val run :
  ?before_timed:(unit -> unit) ->
  make_ops:(unit -> ops) ->
  workload ->
  config ->
  datapoint
(** [config.trials] independent trials on fresh structures. *)

(** A data point plus observability: per-trial metrics, latency summary
    over all trials' samples, counter and GC totals across trials. *)
type datapoint_full = {
  dp : datapoint;
  trial_metrics : trial_metrics list;
  latency : Obs.Histogram.summary option;
  counters : (string * int) list;
  gc : gc_delta;
}

val run_full :
  ?before_timed:(unit -> unit) ->
  ?record_latency:bool ->
  make_ops:(unit -> ops) ->
  workload ->
  config ->
  datapoint_full
(** [config.trials] independent trials with full metrics collection. *)

(** One of the six structures of the paper's evaluation. *)
type subject = { label : string; make : universe:int -> ops }

val pat_subject : subject

val pat_subject_stats : subject
(** PAT with [record_stats:true] and an [ops.stats] snapshot closure —
    the subject used when a metrics file is requested.  The counters are
    per-domain sharded, so enabling them does not add a shared CAS to
    the update path. *)

val bst_subject : subject
val kary_subject : subject
val skiplist_subject : subject
val avl_subject : subject
val ctrie_subject : subject

val all_subjects : subject list
(** In the order of the paper's chart legends:
    PAT, 4-ST, BST, AVL, SL, Ctrie. *)

val run_subject : subject -> workload -> config -> datapoint

val run_subject_full :
  ?record_latency:bool -> subject -> workload -> config -> datapoint_full

val gc_delta_to_json : gc_delta -> Obs.Json.t

val descent_mean : (string * int) list -> float option
(** Mean descent depth (nodes visited per search) derived from a
    counter alist containing the [descent_nodes_*]/[descent_searches]
    deltas of a timed window; [None] when the subject records no
    descent counters. *)

val datapoint_full_to_json :
  section:string ->
  label:string ->
  workload ->
  threads:int ->
  datapoint_full ->
  Obs.Json.t
(** One metrics-file data point: identification (section/figure,
    structure label, workload, thread count), throughput mean/stddev and
    raw samples, the latency percentile summary, the structure's counter
    deltas, and the GC deltas.  Schema documented in EXPERIMENTS.md. *)

val pp_series :
  Format.formatter ->
  title:string ->
  threads_list:int list ->
  (string * datapoint list) list ->
  unit
(** Print one figure's series as a table: a row of means and a row of
    standard deviations per structure. *)

(** Common interface implemented by every concurrent set in this repository.

    All six data structures of the paper's evaluation (PAT, BST, 4-ST, SL,
    AVL, Ctrie) store sets of integer keys drawn from a bounded universe
    [0, universe).  The harness and the benchmarks are written against this
    signature so the same workload code drives every structure. *)

(** Summary statistics of one structural quantity (leaf depths, label
    lengths, ...) collected by a census walk.  Percentiles are exact:
    the census accumulates full count arrays, not samples. *)
type dist = {
  d_count : int;
  d_min : int;
  d_max : int;
  d_mean : float;
  d_p50 : int;
  d_p90 : int;
  d_p99 : int;
}

(** A read-only census of a structure's current shape — the raw
    material for explaining throughput differences in terms of pointer
    dereferences and footprint (see [Obs.Shape]).  Quiescent accuracy:
    the walk is weakly consistent, like [to_list].

    Depth counts child-pointer dereferences from the root ([max_depth]
    is the deepest leaf).  [est_words] is a per-node size estimate from
    documented layout accounting; [measured_words] is
    [Obj.reachable_words] from the root node (0 when not measured).
    [bytes_per_key] derives from the measured figure when available,
    the estimate otherwise. *)
type census = {
  structure : string;
  internals : int;
  leaves : int;  (** leaf nodes, including sentinels *)
  sentinels : int;
  keys : int;  (** user keys stored *)
  max_depth : int;
  leaf_depth : dist;  (** depth of each user-key leaf *)
  leaf_depth_hist : (int * int) list;  (** (depth, leaves-at-depth) *)
  prefix_len : dist;  (** label / prefix length of internal nodes *)
  prefix_len_hist : (int * int) list;
  branching : dist;  (** non-empty children per internal node *)
  keys_per_leaf : dist;  (** user keys packed per non-sentinel leaf *)
  est_words : int;
  measured_words : int;
  bytes_per_key : float;
}

(** A frozen, immutable version of a structure's contents, produced by
    an atomic snapshot (see [CONCURRENT_SET.snapshot]).  The record
    carries first-class polymorphic traversals so a [view] is the same
    concrete type for every structure — the harness and the server scan
    path consume it without knowing which implementation made it. *)
type view = {
  v_epoch : int;
      (** Generation number: strictly increasing per structure, equal
          epochs denote the same frozen version. *)
  v_fold : 'a. init:'a -> f:('a -> int -> 'a) -> 'a;
      (** In-order (ascending-key) fold over the frozen keys. *)
  v_fold_range : 'a. lo:int -> hi:int -> init:'a -> f:('a -> int -> 'a) -> 'a;
      (** Ascending fold over frozen keys within [\[lo, hi\]]. *)
  v_to_seq : unit -> int Seq.t;
      (** Lazy ascending sequence; safe to consume at any pace. *)
}

module type CONCURRENT_SET = sig
  type t

  (** Human-readable name used in benchmark output ("PAT", "BST", ...). *)
  val name : string

  (** [create ~universe ()] makes an empty set accepting keys in
      [0, universe).  Raises [Invalid_argument] if [universe < 1]. *)
  val create : universe:int -> unit -> t

  (** [insert t k] adds [k]; returns [true] iff [k] was absent. *)
  val insert : t -> int -> bool

  (** [delete t k] removes [k]; returns [true] iff [k] was present. *)
  val delete : t -> int -> bool

  (** [member t k] — wait-free on PAT; read-only everywhere. *)
  val member : t -> int -> bool

  (** Linearizable snapshot of the current contents, sorted ascending.
      Only required to be accurate in quiescent states; used by tests. *)
  val to_list : t -> int list

  (** Number of keys currently stored (quiescent accuracy suffices). *)
  val size : t -> int

  (** {2 Structure-forensics capabilities}

      Optional on purpose: every registry entry answers, and [None] is
      the explicit "unsupported" marker that keeps all six structures
      comparable (a structure that cannot be audited says so, rather
      than silently vanishing from shape reports). *)

  (** Shape census of the current contents (quiescent accuracy).
      [None] when the structure has no census walker. *)
  val census : t -> census option

  (** Cumulative descent-cost counters as an alist — monotone counts
      only (nodes visited per opcode, searches performed), so callers
      may difference two snapshots across a timed window.  [None] when
      the instance records no descent stats (not created with
      [~record_stats:true], or the structure has no accounting). *)
  val descent_stats : t -> (string * int) list option

  (** Atomic snapshot: a frozen view of the contents that is a
      linearization point of the concurrent history and never observes
      later updates.  [None] is the explicit "unsupported" marker — the
      baselines have no snapshot mechanism, and their weakly-consistent
      folds must not masquerade as one. *)
  val snapshot : t -> view option
end

(** Structures that additionally support the paper's atomic replace. *)
module type CONCURRENT_SET_WITH_REPLACE = sig
  include CONCURRENT_SET

  (** [replace t ~remove ~add] atomically deletes [remove] and inserts [add].
      Returns [true] iff [remove] was present and [add] absent; in that case
      both changes become visible at a single linearization point. *)
  val replace : t -> remove:int -> add:int -> bool
end

(** First-class packaging so the harness can iterate over structures. *)
type packed = Packed : (module CONCURRENT_SET with type t = 'a) -> packed

type packed_replace =
  | Packed_replace :
      (module CONCURRENT_SET_WITH_REPLACE with type t = 'a)
      -> packed_replace

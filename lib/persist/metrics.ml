(** Observability for the durability layer.

    Global rather than per-store, like [Server.Metrics]: a process hosts
    one logical store; tests reset between runs.  Counters are striped
    ([Obs.Counter]) because the append path is crossed by every server
    worker domain; the fsync/batch histograms are only written by the
    single log domain but share the same sharded type for uniformity. *)

let records = Obs.Counter.create ()
let bytes = Obs.Counter.create ()
let fsyncs = Obs.Counter.create ()
let rotations = Obs.Counter.create ()
let checkpoints = Obs.Counter.create ()
let checkpoint_keys = Obs.Counter.create ()
let segments_truncated = Obs.Counter.create ()
let torn_tails = Obs.Counter.create ()
let records_replayed = Obs.Counter.create ()
let sync_waits = Obs.Counter.create ()

let fsync_ns = Obs.Histogram.create ()
let batch_size = Obs.Histogram.create ()

(* The group-commit queue depth is instantaneous state of the live
   writer, not a cumulative counter; the store (or patbench) registers
   a sampling closure so the global exposition can include it. *)
let queue_depth_source : (unit -> int) option Atomic.t = Atomic.make None
let set_queue_depth_source f = Atomic.set queue_depth_source f

let queue_depth () =
  match Atomic.get queue_depth_source with
  | Some f -> ( try f () with _ -> 0)
  | None -> 0

let reset () =
  List.iter Obs.Counter.reset
    [
      records;
      bytes;
      fsyncs;
      rotations;
      checkpoints;
      checkpoint_keys;
      segments_truncated;
      torn_tails;
      records_replayed;
      sync_waits;
    ];
  Obs.Histogram.reset fsync_ns;
  Obs.Histogram.reset batch_size

(** Cumulative counters as an alist (tests, JSON reports). *)
let snapshot () =
  [
    ("records", Obs.Counter.sum records);
    ("bytes", Obs.Counter.sum bytes);
    ("fsyncs", Obs.Counter.sum fsyncs);
    ("rotations", Obs.Counter.sum rotations);
    ("checkpoints", Obs.Counter.sum checkpoints);
    ("checkpoint_keys", Obs.Counter.sum checkpoint_keys);
    ("segments_truncated", Obs.Counter.sum segments_truncated);
    ("torn_tails", Obs.Counter.sum torn_tails);
    ("records_replayed", Obs.Counter.sum records_replayed);
    ("sync_waits", Obs.Counter.sum sync_waits);
  ]

(** Append the persist metric families to an exposition; the shape
    [Harness.Live.set_extra_producer]/[add_extra_producer] expects. *)
let emit b =
  let open Obs.Prometheus in
  let c name help v =
    counter b ~name ~help (float_of_int (Obs.Counter.sum v))
  in
  c "patserve_wal_records_total" "Mutation records appended to the WAL" records;
  c "patserve_wal_bytes_total" "Bytes appended to WAL segments" bytes;
  c "patserve_wal_fsyncs_total" "Group-commit fsync calls on the WAL" fsyncs;
  c "patserve_wal_rotations_total" "WAL segment rotations" rotations;
  c "patserve_checkpoints_total" "Checkpoint images written" checkpoints;
  c "patserve_checkpoint_keys_total" "Keys serialized into checkpoint images"
    checkpoint_keys;
  c "patserve_wal_segments_truncated_total"
    "Obsolete WAL segments deleted after a checkpoint" segments_truncated;
  c "patserve_wal_torn_tails_total"
    "Recoveries that truncated a torn WAL tail at a bad CRC" torn_tails;
  c "patserve_wal_records_replayed_total"
    "WAL records replayed during recovery" records_replayed;
  c "patserve_wal_sync_waits_total"
    "Operations that blocked awaiting group-commit durability" sync_waits;
  histogram_summary b ~name:"patserve_wal_fsync_ns"
    ~help:"WAL fsync latency per group commit, nanoseconds"
    (Obs.Histogram.snapshot fsync_ns);
  histogram_summary b ~name:"patserve_wal_batch_size"
    ~help:"Mutation records per group-commit batch"
    (Obs.Histogram.snapshot batch_size);
  gauge b ~name:"patserve_wal_queue_depth"
    ~help:"Records enqueued for group commit but not yet durable"
    (float_of_int (queue_depth ()))

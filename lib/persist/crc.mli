(** Pure-OCaml CRC-32 checksums shared by the durability layer.

    Both the WAL record framing and the checkpoint image trailer
    ({!Wal}, {!Checkpoint}) validate their bytes with the same
    implementation, so a torn or bit-rotted file is detected by one
    well-tested primitive rather than two ad-hoc ones.

    Two standard reflected polynomials are provided:

    - {!crc32}: CRC-32/ISO-HDLC (IEEE 802.3, polynomial [0xEDB88320]
      reflected) — the zlib/PNG/Ethernet checksum.  Check vector:
      [crc32_string "123456789" = 0xCBF43926].
    - {!crc32c}: CRC-32C (Castagnoli, polynomial [0x82F63B78]
      reflected) — the iSCSI/ext4/LevelDB checksum, better error
      detection at the record lengths a WAL writes.  Check vector:
      [crc32c_string "123456789" = 0xE3069283].

    The WAL and checkpoint formats use {!crc32c}.

    Checksums are returned as non-negative [int]s in [[0, 2^32)].  All
    functions are pure and never raise on any byte input; offsets and
    lengths outside the buffer raise [Invalid_argument]. *)

val crc32 : ?crc:int -> Bytes.t -> off:int -> len:int -> int
(** [crc32 b ~off ~len] is the CRC-32/ISO-HDLC of the [len] bytes of
    [b] starting at [off].  Pass the previous return value as [?crc] to
    checksum a logical stream incrementally:
    [crc32 ~crc:(crc32 a ~off ~len) b ~off ~len] equals the CRC of the
    concatenation. *)

val crc32c : ?crc:int -> Bytes.t -> off:int -> len:int -> int
(** Like {!crc32} with the Castagnoli polynomial. *)

val crc32_string : string -> int
(** [crc32_string s] is [crc32] over all of [s]. *)

val crc32c_string : string -> int
(** [crc32c_string s] is [crc32c] over all of [s]. *)

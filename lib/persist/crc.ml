(* Table-driven reflected CRC-32, one 256-entry table per polynomial;
   see crc.mli.  Tables are built once at module init — 2 KiB each,
   negligible against the I/O this library fronts. *)

let make_table poly =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 = 1 then c := poly lxor (!c lsr 1) else c := !c lsr 1
      done;
      !c)

(* Reflected forms of the generator polynomials. *)
let table_ieee = make_table 0xEDB88320
let table_castagnoli = make_table 0x82F63B78

let mask32 = 0xFFFFFFFF

let run table init b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc: offset/length outside buffer";
  (* Standard reflected update: init and final state are the checksum's
     one's complement, so incremental calls compose. *)
  let c = ref (init lxor mask32) in
  for i = off to off + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  !c lxor mask32

let crc32 ?(crc = 0) b ~off ~len = run table_ieee crc b ~off ~len
let crc32c ?(crc = 0) b ~off ~len = run table_castagnoli crc b ~off ~len

let crc32_string s =
  let b = Bytes.unsafe_of_string s in
  crc32 b ~off:0 ~len:(Bytes.length b)

let crc32c_string s =
  let b = Bytes.unsafe_of_string s in
  crc32c b ~off:0 ~len:(Bytes.length b)

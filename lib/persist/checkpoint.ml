(** Checkpoint images: a serialized key set plus the WAL cut it is
    consistent with.

    {2 Format}

    A checkpoint file [ckpt-<replay_from>.ckpt] is:

    {v
    magic "PATCKPT1" | universe:u64be | replay_from:u64be | count:u64be
    | key:i64be ^ count | crc32c:u32be (of every byte before it)
    v}

    [replay_from] is the WAL sequence number the image cuts against:
    recovery loads the image and replays only records with
    [seq > replay_from].  The image is written to a temp file, fsynced,
    and atomically renamed into place, so a crash mid-checkpoint leaves
    either the old image or the new one, never a half-written one — a
    torn temp file is ignored (and cleaned up) by the next open.

    {2 Consistency against live traffic}

    The checkpoint writer images a {e live} trie: it records the
    current WAL sequence [S] {e before} taking an atomic frozen
    snapshot of the structure and stamps the image [replay_from = S].
    Operations publish to the WAL {e after} applying to the structure,
    so every record with [seq <= S] had finished applying before [S]
    was read and is inside the snapshot; the only records the snapshot
    may additionally contain have [seq > S] and are replayed on
    recovery.  Replay runs each record with its {e exact} semantics
    (see {!Store.Make}): insert and delete are naturally idempotent,
    and a conditional Replace whose effect the image already holds
    fails its precondition and no-ops rather than double-applying.
    The recovered state therefore equals the linearization at the end
    of the replayed WAL, which is the same durable history a recovery
    without the checkpoint would have produced — the image only
    shortens the replay.  (Structures without a snapshot capability
    fall back to a weakly-consistent traversal, sound for
    insert/delete histories because replay overwrites any key the
    traversal raced with.) *)

let magic = "PATCKPT1"
let fixed_len = 8 + 8 + 8 + 8 (* magic, universe, replay_from, count *)

let name replay_from = Printf.sprintf "ckpt-%016x.ckpt" replay_from

let seq_of_name n =
  if
    String.length n = 5 + 16 + 5
    && String.sub n 0 5 = "ckpt-"
    && Filename.check_suffix n ".ckpt"
  then int_of_string_opt ("0x" ^ String.sub n 5 16)
  else None

let list_checkpoints dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun n ->
         Option.map (fun seq -> (seq, Filename.concat dir n)) (seq_of_name n))
  |> List.sort compare

(** [write ~dir ~universe ~replay_from ~keys] durably writes the image
    and removes every older checkpoint file (and stray temp files).
    Returns the new image's path. *)
let write ~dir ~universe ~replay_from ~keys =
  let buf = Buffer.create (fixed_len + (8 * List.length keys) + 4) in
  Buffer.add_string buf magic;
  Wal.put_u64 buf universe;
  Wal.put_u64 buf replay_from;
  Wal.put_u64 buf (List.length keys);
  List.iter (fun k -> Wal.put_u64 buf k) keys;
  let body = Buffer.to_bytes buf in
  Wal.put_u32 buf (Crc.crc32c body ~off:0 ~len:(Bytes.length body));
  let bytes = Buffer.to_bytes buf in
  let path = Filename.concat dir (name replay_from) in
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     Wal.write_all fd bytes 0 (Bytes.length bytes);
     Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with _ -> ());
     (try Sys.remove tmp with _ -> ());
     raise e);
  Unix.rename tmp path;
  Wal.fsync_dir dir;
  (* Older images are now dead weight; so are temp files from crashed
     checkpoint attempts. *)
  List.iter
    (fun (seq, p) -> if seq < replay_from then try Sys.remove p with _ -> ())
    (list_checkpoints dir);
  Array.iter
    (fun n ->
      if Filename.check_suffix n ".ckpt.tmp" then
        try Sys.remove (Filename.concat dir n) with _ -> ())
    (Sys.readdir dir);
  Obs.Counter.incr Metrics.checkpoints;
  Obs.Counter.add Metrics.checkpoint_keys (List.length keys);
  path

type loaded = {
  replay_from : int;
  keys : int list;  (** ascending, as serialized *)
  skipped : int;  (** newer-but-invalid images passed over *)
}

let validate ~universe path =
  let b = Wal.read_file path in
  let len = Bytes.length b in
  if len < fixed_len + 4 then Result.Error "checkpoint file too short"
  else if Bytes.sub_string b 0 8 <> magic then
    Result.Error "bad checkpoint magic"
  else if
    Wal.get_u32 b (len - 4) <> Crc.crc32c b ~off:0 ~len:(len - 4)
  then Result.Error "checkpoint CRC mismatch"
  else
    let file_universe = Wal.get_u64 b 8 in
    let replay_from = Wal.get_u64 b 16 in
    let count = Wal.get_u64 b 24 in
    if len <> fixed_len + (8 * count) + 4 then
      Result.Error "checkpoint length disagrees with key count"
    else if file_universe <> universe then
      Result.Error
        (Printf.sprintf
           "checkpoint universe %d does not match the store's %d (refusing to \
            recover into a differently-shaped trie)"
           file_universe universe)
    else
      let keys =
        List.init count (fun i -> Wal.get_u64 b (fixed_len + (8 * i)))
      in
      Result.Ok { replay_from; keys; skipped = 0 }

(** Load the newest checkpoint that validates, skipping (but counting)
    corrupt ones; [Ok None] for a directory with no usable image.  A
    universe mismatch is an error, not a skip — silently recovering a
    differently-shaped store would lose data. *)
let load_newest ~dir ~universe =
  let rec go skipped = function
    | [] -> Result.Ok None
    | (_, path) :: older -> (
        match validate ~universe path with
        | Result.Ok l -> Result.Ok (Some { l with skipped })
        | Result.Error msg
          when String.length msg >= 19
               && String.sub msg 0 19 = "checkpoint universe" ->
            Result.Error (path ^ ": " ^ msg)
        | Result.Error _ -> go (skipped + 1) older)
  in
  go 0 (List.rev (list_checkpoints dir))

(** Segmented append-only write-ahead log with group commit.

    {2 On-disk format}

    A data directory holds numbered segment files [wal-<base>.seg]
    ([<base>] = 16 hex digits of the first sequence number the segment
    may contain).  Each segment is:

    {v
    header : magic "PATWALS1" | base_seq:u64be | crc32c:u32be (of the 16 bytes before it)
    record*: len:u32be | crc32c:u32be (of payload) | payload
    payload: seq:u64be | tag:u8 | key:i64be [ key2:i64be ]
    tag    : 1 INSERT | 2 DELETE | 3 REPLACE (remove, add)
    v}

    Sequence numbers are global, dense and strictly increasing across
    segments; they are what checkpoints cut against ({!Checkpoint}) and
    what recovery replays from.  A crash can leave the final segment
    with a torn tail — a record whose bytes are short or whose CRC does
    not match; {!scan} truncates the file at the first such record and
    reports it, so a recovered log is always well-formed for the next
    appender.  Torn bytes can only exist at the tail of the {e last}
    segment; a bad record in an earlier segment means real corruption
    and is reported as an error rather than silently dropped.

    {2 Group commit}

    {!Writer.append} may be called from any domain: it assigns the next
    sequence number, enqueues the record, and returns without touching
    the file.  A dedicated log domain drains the queue, writes the whole
    batch with one [write], and (in [~fsync:true] mode) issues one
    [fsync] for the batch — so synchronous durability costs one fsync
    per {e batch} of concurrent mutations, not one per operation.
    Callers needing sync semantics then block in {!Writer.wait_durable}
    until the batch containing their record is on disk.

    [Chaos] crossings: {!Chaos.Wal_append} before each batch write,
    {!Chaos.Wal_fsync} before each fsync, {!Chaos.Wal_rotate} before a
    segment rotation — stalling policies widen the windows in which a
    kill leaves torn or missing tails, which is exactly what the crash
    fuzzer drives. *)

type record =
  | Insert of int
  | Delete of int
  | Replace of { remove : int; add : int }

let magic = "PATWALS1"
let header_len = 8 + 8 + 4
let frame_overhead = 4 + 4 (* len + crc *)
let max_record_payload = 4096 (* sanity bound for the scanner *)
let default_segment_bytes = 8 * 1024 * 1024

let segment_name base = Printf.sprintf "wal-%016x.seg" base

let segment_base_of_name name =
  if
    String.length name = 4 + 16 + 4
    && String.sub name 0 4 = "wal-"
    && Filename.check_suffix name ".seg"
  then int_of_string_opt ("0x" ^ String.sub name 4 16)
  else None

(* ------------------------------------------------------------------ *)
(* Byte plumbing *)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u64 buf v =
  put_u32 buf ((v lsr 32) land 0xFFFFFFFF);
  put_u32 buf (v land 0xFFFFFFFF)

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let get_u64 b off = (get_u32 b off lsl 32) lor get_u32 b (off + 4)

let write_all fd b off len =
  let rec go off remaining =
    if remaining > 0 then
      match Unix.write fd b off remaining with
      | n -> go (off + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off remaining
  in
  go off len

let fsync_dir dir =
  (* Directory fsync pins renames/creates/unlinks for power-loss
     semantics; best effort — some filesystems reject it. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error (_, _, _) -> ());
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
  | exception Unix.Unix_error (_, _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Record framing *)

let payload_len = function
  | Insert _ | Delete _ -> 8 + 1 + 8
  | Replace _ -> 8 + 1 + 16

(** Append the full frame (length, CRC, payload) for [record] to [buf]. *)
let encode_record buf ~seq record =
  let plen = payload_len record in
  put_u32 buf plen;
  let payload = Buffer.create plen in
  put_u64 payload seq;
  (match record with
  | Insert k ->
      Buffer.add_char payload '\001';
      put_u64 payload k
  | Delete k ->
      Buffer.add_char payload '\002';
      put_u64 payload k
  | Replace { remove; add } ->
      Buffer.add_char payload '\003';
      put_u64 payload remove;
      put_u64 payload add);
  let pb = Buffer.to_bytes payload in
  put_u32 buf (Crc.crc32c pb ~off:0 ~len:plen);
  Buffer.add_bytes buf pb

(** Decode the payload at [b.(off), b.(off+len)); CRC already checked. *)
let decode_payload b ~off ~len =
  if len < 8 + 1 + 8 then Result.Error "record payload too short"
  else
    let seq = get_u64 b off in
    let key = get_u64 b (off + 9) in
    match Bytes.get b (off + 8) with
    | '\001' when len = 17 -> Result.Ok (seq, Insert key)
    | '\002' when len = 17 -> Result.Ok (seq, Delete key)
    | '\003' when len = 25 ->
        Result.Ok (seq, Replace { remove = key; add = get_u64 b (off + 17) })
    | _ -> Result.Error "unknown record tag or inconsistent length"

let encode_header buf ~base =
  Buffer.add_string buf magic;
  put_u64 buf base;
  let hb = Buffer.to_bytes buf in
  put_u32 buf (Crc.crc32c hb ~off:0 ~len:16)

(* ------------------------------------------------------------------ *)
(* Scanning (recovery read path) *)

type scan = {
  last_seq : int;  (** highest valid sequence number seen; -1 if none *)
  records : int;  (** valid records seen (before any [replay_from] filter) *)
  replayed : int;  (** records passed to [f] *)
  segments : int;
  torn : bool;  (** a torn tail was truncated *)
}

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         Option.map (fun base -> (base, Filename.concat dir name))
           (segment_base_of_name name))
  |> List.sort compare

let read_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  let size = (Unix.fstat fd).Unix.st_size in
  let b = Bytes.create size in
  let rec go off =
    if off >= size then off
    else
      match Unix.read fd b off (size - off) with
      | 0 -> off (* shrank under us; treat the rest as absent *)
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  let got = go 0 in
  if got = size then b else Bytes.sub b 0 got

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  Unix.ftruncate fd len;
  Unix.fsync fd

(** [scan ~dir ~replay_from ~f] walks every segment in sequence order,
    validates headers and record CRCs, calls [f ~seq record] for every
    valid record with [seq > replay_from], and truncates a torn tail of
    the last segment in place (a header too damaged to read in the last
    segment deletes the file).  Returns [Error] on corruption that is
    not a tail — a bad record followed by more segments means lost
    acknowledged data, which must not be silently skipped. *)
let scan ~dir ~replay_from ~f =
  let segs = list_segments dir in
  let n_segs = List.length segs in
  let torn = ref false in
  let last_seq = ref (-1) in
  let records = ref 0 in
  let replayed = ref 0 in
  let exception Corrupt of string in
  try
    List.iteri
      (fun i (base, path) ->
        let is_last = i = n_segs - 1 in
        let b = read_file path in
        let size = Bytes.length b in
        let header_ok =
          size >= header_len
          && Bytes.sub_string b 0 8 = magic
          && get_u64 b 8 = base
          && get_u32 b 16 = Crc.crc32c b ~off:0 ~len:16
        in
        if not header_ok then
          if is_last then begin
            (* A segment created during rotation but killed before its
               header hit the disk whole: nothing in it can be valid. *)
            torn := true;
            Sys.remove path;
            fsync_dir dir
          end
          else raise (Corrupt (Printf.sprintf "%s: bad segment header" path))
        else begin
          let off = ref header_len in
          let stop = ref false in
          while not !stop do
            if !off = size then stop := true
            else if size - !off < frame_overhead then begin
              (* short frame prefix: torn tail *)
              if not is_last then
                raise (Corrupt (Printf.sprintf "%s: short record frame" path));
              torn := true;
              truncate_file path !off;
              stop := true
            end
            else
              let plen = get_u32 b !off in
              let crc = get_u32 b (!off + 4) in
              if
                plen > max_record_payload
                || plen < 17
                || size - !off - frame_overhead < plen
                || Crc.crc32c b ~off:(!off + frame_overhead) ~len:plen <> crc
              then begin
                if not is_last then
                  raise
                    (Corrupt (Printf.sprintf "%s: bad record CRC or length" path));
                torn := true;
                truncate_file path !off;
                stop := true
              end
              else
                match decode_payload b ~off:(!off + frame_overhead) ~len:plen with
                | Result.Error _ when is_last ->
                    torn := true;
                    truncate_file path !off;
                    stop := true
                | Result.Error msg ->
                    raise (Corrupt (Printf.sprintf "%s: %s" path msg))
                | Result.Ok (seq, record) ->
                    if seq <= !last_seq then
                      raise
                        (Corrupt
                           (Printf.sprintf
                              "%s: sequence numbers not increasing (%d after %d)"
                              path seq !last_seq));
                    last_seq := seq;
                    incr records;
                    if seq > replay_from then begin
                      incr replayed;
                      f ~seq record
                    end;
                    off := !off + frame_overhead + plen
          done
        end)
      segs;
    if !torn then Obs.Counter.incr Metrics.torn_tails;
    Obs.Counter.add Metrics.records_replayed !replayed;
    Result.Ok
      {
        last_seq = !last_seq;
        records = !records;
        replayed = !replayed;
        segments = n_segs;
        torn = !torn;
      }
  with Corrupt msg -> Result.Error msg

(** Delete segments made obsolete by a checkpoint that replays from
    [upto]: a segment may go iff {e every} record it can contain is
    [<= upto], i.e. the next segment's base is [<= upto + 1].  The last
    (active) segment never goes.  [keep_from], if given, is a retention
    low-water mark: segments that may still contain records [>=
    keep_from] survive even below [upto] — an attached follower cursor
    ({!Tail}) positioned at [keep_from] must be able to keep streaming
    after the checkpoint.  Returns how many files were deleted. *)
let delete_obsolete_segments ~dir ~upto ?keep_from () =
  let upto =
    match keep_from with None -> upto | Some k -> min upto (k - 1)
  in
  let segs = list_segments dir in
  let rec go deleted = function
    | (_, path) :: ((next_base, _) :: _ as rest) when next_base <= upto + 1 ->
        Sys.remove path;
        go (deleted + 1) rest
    | _ -> deleted
  in
  let deleted = go 0 segs in
  if deleted > 0 then begin
    Obs.Counter.add Metrics.segments_truncated deleted;
    fsync_dir dir
  end;
  deleted

(* ------------------------------------------------------------------ *)
(* Writer *)

module Writer = struct
  type t = {
    dir : string;
    segment_bytes : int;
    fsync : bool;
    mu : Mutex.t;
    nonempty : Condition.t;
    durable : Condition.t;
    q : (int * record) Queue.t;
    mutable next_seq : int;
    mutable durable_upto : int;
    mutable stopping : bool;
    mutable cur_fd : Unix.file_descr;
    mutable cur_bytes : int;
    mutable dom : unit Domain.t option;
  }

  let open_segment dir base =
    let path = Filename.concat dir (segment_name base) in
    (* A pre-existing file with this base can only be a segment that
       holds no valid records (recovery computed [base] as last valid
       seq + 1), e.g. one created just before a crash; replace it. *)
    if Sys.file_exists path then Sys.remove path;
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
    in
    let buf = Buffer.create header_len in
    encode_header buf ~base;
    let hb = Buffer.to_bytes buf in
    write_all fd hb 0 (Bytes.length hb);
    Unix.fsync fd;
    fsync_dir dir;
    fd

  let rotate w ~first_seq =
    Chaos.point Chaos.Wal_rotate;
    Unix.fsync w.cur_fd;
    Unix.close w.cur_fd;
    w.cur_fd <- open_segment w.dir first_seq;
    w.cur_bytes <- header_len;
    Obs.Counter.incr Metrics.rotations

  (* One group commit: encode the whole batch, rotate if it would
     overflow the segment, single write, optional single fsync. *)
  let write_batch w batch =
    let t0 = Obs.Clock.now_ns () in
    let buf = Buffer.create 4096 in
    let n = ref 0 in
    let first = ref (-1) in
    List.iter
      (fun (seq, r) ->
        if !first < 0 then first := seq;
        encode_record buf ~seq r;
        incr n)
      batch;
    let bb = Buffer.to_bytes buf in
    let len = Bytes.length bb in
    if w.cur_bytes > header_len && w.cur_bytes + len > w.segment_bytes then
      rotate w ~first_seq:!first;
    Chaos.point Chaos.Wal_append;
    write_all w.cur_fd bb 0 len;
    w.cur_bytes <- w.cur_bytes + len;
    Obs.Counter.add Metrics.records !n;
    Obs.Counter.add Metrics.bytes len;
    Obs.Histogram.record Metrics.batch_size !n;
    if w.fsync then begin
      Chaos.point Chaos.Wal_fsync;
      let f0 = Obs.Clock.now_ns () in
      Unix.fsync w.cur_fd;
      Obs.Histogram.record Metrics.fsync_ns (Obs.Clock.now_ns () - f0);
      Obs.Counter.incr Metrics.fsyncs
    end;
    (match Obs.Trace.recorder () with
    | Some tr ->
        Obs.Trace.emit_span tr (Obs.Trace.Custom "group_commit") ~key:!n
          ~ok:true ~retries:0 ~attempt:1 ~site:"wal" ~t0_ns:t0
    | None -> ())

  (* The dedicated log domain: drain everything queued, commit it as one
     batch, publish durability, repeat.  Exits only on [stop] with an
     empty queue, so no accepted record is ever dropped by a clean
     shutdown. *)
  let log_loop w =
    let rec loop () =
      Mutex.lock w.mu;
      while Queue.is_empty w.q && not w.stopping do
        Condition.wait w.nonempty w.mu
      done;
      if Queue.is_empty w.q then begin
        Mutex.unlock w.mu;
        Unix.fsync w.cur_fd;
        Unix.close w.cur_fd
      end
      else begin
        let batch = List.of_seq (Queue.to_seq w.q) in
        Queue.clear w.q;
        Mutex.unlock w.mu;
        write_batch w batch;
        let last = fst (List.nth batch (List.length batch - 1)) in
        Mutex.lock w.mu;
        w.durable_upto <- last;
        Condition.broadcast w.durable;
        Mutex.unlock w.mu;
        loop ()
      end
    in
    loop ()

  (** [create ~dir ~start_seq ~fsync ()] opens a fresh segment with base
      [start_seq] and spawns the log domain.  [fsync] selects whether
      each group commit is fsynced (sync/async durability); rotation
      always seals the outgoing segment with an fsync. *)
  let create ~dir ~start_seq ?(segment_bytes = default_segment_bytes) ~fsync ()
      =
    if segment_bytes < header_len + frame_overhead + max_record_payload then
      invalid_arg "Wal.Writer.create: segment_bytes too small";
    let fd = open_segment dir start_seq in
    let w =
      {
        dir;
        segment_bytes;
        fsync;
        mu = Mutex.create ();
        nonempty = Condition.create ();
        durable = Condition.create ();
        q = Queue.create ();
        next_seq = start_seq;
        durable_upto = start_seq - 1;
        stopping = false;
        cur_fd = fd;
        cur_bytes = header_len;
        dom = None;
      }
    in
    w.dom <- Some (Domain.spawn (fun () -> log_loop w));
    w

  (** Publish one mutation; returns its sequence number.  Never blocks
      on I/O — the log domain does the writing. *)
  let append w r =
    Mutex.lock w.mu;
    if w.stopping then begin
      Mutex.unlock w.mu;
      invalid_arg "Wal.Writer.append: writer is stopped"
    end;
    let seq = w.next_seq in
    w.next_seq <- seq + 1;
    Queue.add (seq, r) w.q;
    Condition.signal w.nonempty;
    Mutex.unlock w.mu;
    seq

  (** Block until the batch containing [seq] has committed (written, and
      fsynced when the writer is in fsync mode). *)
  let wait_durable w seq =
    Mutex.lock w.mu;
    if w.durable_upto < seq then begin
      Obs.Counter.incr Metrics.sync_waits;
      while w.durable_upto < seq && not w.stopping do
        Condition.wait w.durable w.mu
      done
    end;
    Mutex.unlock w.mu

  let last_assigned w =
    Mutex.lock w.mu;
    let s = w.next_seq - 1 in
    Mutex.unlock w.mu;
    s

  let stopped w =
    Mutex.lock w.mu;
    let s = w.stopping in
    Mutex.unlock w.mu;
    s

  (** Block until group commit advances past [known] (i.e. [durable_upto
      > known]), the writer stops, or [timeout_s] elapses; returns the
      current [durable_upto].  Polling rather than a timed condition
      wait — the stdlib [Condition] has no deadline — at a 1ms grain,
      which only costs while a tailer is idle at the head of the log. *)
  let wait_new_durable w ~known ~timeout_s =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go () =
      Mutex.lock w.mu;
      let d = w.durable_upto and stopping = w.stopping in
      Mutex.unlock w.mu;
      if d > known || stopping || Unix.gettimeofday () >= deadline then d
      else begin
        Unix.sleepf 0.001;
        go ()
      end
    in
    go ()

  let durable_upto w =
    Mutex.lock w.mu;
    let s = w.durable_upto in
    Mutex.unlock w.mu;
    s

  (** Records enqueued but not yet on disk — the group-commit backlog.
      A depth that keeps growing means the log domain is not keeping up
      (sick disk, fsync storms); the progress watchdog alarms on it. *)
  let queue_depth w =
    Mutex.lock w.mu;
    let n = Queue.length w.q in
    Mutex.unlock w.mu;
    n

  (** Drain the queue, seal the segment with a final fsync, join the log
      domain.  Idempotent. *)
  let stop w =
    Mutex.lock w.mu;
    let d = w.dom in
    w.dom <- None;
    w.stopping <- true;
    Condition.broadcast w.nonempty;
    Condition.broadcast w.durable;
    Mutex.unlock w.mu;
    Option.iter Domain.join d
end

(* ------------------------------------------------------------------ *)
(* Tail cursor (replication read path) *)

(** A read cursor over the segments of a WAL directory, in sequence
    order, across rotations.  Two modes:

    - {e live} ([~writer] given): the cursor follows the directory's
      active writer and never delivers a record beyond
      {!Writer.durable_upto} — the bytes it reads are always part of a
      completed (and, in fsync mode, synced) group commit, so a torn or
      half-written tail is unreachable by construction.
      {!Tail.next_batch} blocks (bounded) on group-commit progress when
      it has drained the durable prefix.
    - {e offline} (no writer): the cursor reads until the end of the
      log and stops quietly at a torn final record — the same bytes
      {!scan} would truncate — so a recovery-side consumer sees exactly
      the replayable history.

    A cursor positioned at [from_seq] pins segments from the one
    containing [from_seq] onward; {!delete_obsolete_segments}'s
    [keep_from] is how an owner keeps checkpoint GC from deleting them
    underneath it. *)
module Tail = struct
  type t = {
    dir : string;
    writer : Writer.t option;
    mutable cur_base : int;
    mutable fd : Unix.file_descr option;
    mutable off : int;  (** next unread byte offset in the segment *)
    mutable next_seq : int;  (** next sequence number to deliver *)
  }

  let pread fd ~off b ~len =
    ignore (Unix.lseek fd off Unix.SEEK_SET : int);
    let rec go got =
      if got >= len then got
      else
        match Unix.read fd b got (len - got) with
        | 0 -> got
        | n -> go (got + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go got
    in
    go 0

  let header_valid fd ~base =
    let b = Bytes.create header_len in
    pread fd ~off:0 b ~len:header_len = header_len
    && Bytes.sub_string b 0 8 = magic
    && get_u64 b 8 = base
    && get_u32 b 16 = Crc.crc32c b ~off:0 ~len:16

  let close t =
    (match t.fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    | None -> ());
    t.fd <- None

  let open_segment t base =
    close t;
    let path = Filename.concat t.dir (segment_name base) in
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    t.fd <- Some fd;
    t.cur_base <- base;
    t.off <- header_len;
    if not (header_valid fd ~base) then begin
      (* Only the last segment can legitimately have a torn header (a
         rotation killed before the header hit disk); position at its
         end so the cursor reports no records from it. *)
      t.off <- max_int
    end

  (** [open_ ~dir ~from_seq ()] positions a cursor so the next record it
      delivers is the first one with [seq >= from_seq].  Errors loudly
      when the history at [from_seq] is no longer retained (the oldest
      segment's base is newer) — streaming from such a cursor would
      silently skip acknowledged operations, which a replication
      consumer must treat as "resync from a checkpoint", never as an
      empty diff. *)
  let open_ ~dir ?writer ~from_seq () =
    if from_seq < 0 then Result.Error "Wal.Tail: from_seq must be >= 0"
    else
      match list_segments dir with
      | [] -> Result.Error (Printf.sprintf "Wal.Tail: no segments in %s" dir)
      | (oldest, _) :: _ as segs ->
          if from_seq < oldest then
            Result.Error
              (Printf.sprintf
                 "Wal.Tail: seq %d predates the oldest retained segment \
                  (base %d): history was checkpointed away, resync required"
                 from_seq oldest)
          else begin
            let start_base =
              List.fold_left
                (fun acc (base, _) -> if base <= from_seq then base else acc)
                oldest segs
            in
            let t =
              {
                dir;
                writer;
                cur_base = start_base;
                fd = None;
                off = header_len;
                next_seq = from_seq;
              }
            in
            match open_segment t start_base with
            | () -> Result.Ok t
            | exception Unix.Unix_error (e, _, _) ->
                Result.Error
                  (Printf.sprintf "Wal.Tail: cannot open segment %016x: %s"
                     start_base (Unix.error_message e))
          end

  let pos_seq t = t.next_seq

  (* The next segment to move to once the current one is exhausted:
     smallest base strictly above the current.  [None] while the cursor
     is inside the active (or last) segment. *)
  let next_segment t =
    List.fold_left
      (fun acc (base, _) ->
        if base > t.cur_base then
          match acc with Some b when b <= base -> acc | _ -> Some base
        else acc)
      None (list_segments t.dir)

  (** Bytes of log the cursor has not yet consumed: the unread remainder
      of its current segment plus every whole segment after it.  The
      primary's per-subscription [repl_lag_bytes] gauge. *)
  let lag_bytes t =
    let cur_remaining =
      match t.fd with
      | Some fd ->
          let size = (Unix.fstat fd).Unix.st_size in
          if t.off >= size then 0 else size - t.off
      | None -> 0
    in
    List.fold_left
      (fun acc (base, path) ->
        if base > t.cur_base then
          acc
          + (try (Unix.stat path).Unix.st_size - header_len
             with Unix.Unix_error (_, _, _) -> 0)
        else acc)
      cur_remaining (list_segments t.dir)

  (* Read one frame at the current offset.  [`Record] advances past it;
     [`Skip] advanced past a record older than the cursor position;
     [`End] means no complete, valid frame is readable here — end of
     durable data (live), torn tail (offline), or a frame beyond the
     durability limit. *)
  let read_frame t ~limit =
    match t.fd with
    | None -> `End
    | Some fd -> (
        let hd = Bytes.create frame_overhead in
        if t.off = max_int || pread fd ~off:t.off hd ~len:frame_overhead <> frame_overhead
        then `End
        else
          let plen = get_u32 hd 0 in
          let crc = get_u32 hd 4 in
          if plen > max_record_payload || plen < 17 then `End
          else
            let pb = Bytes.create plen in
            if pread fd ~off:(t.off + frame_overhead) pb ~len:plen <> plen then
              `End
            else if Crc.crc32c pb ~off:0 ~len:plen <> crc then `End
            else
              match decode_payload pb ~off:0 ~len:plen with
              | Result.Error _ -> `End
              | Result.Ok (seq, record) ->
                  if seq > limit then `End
                  else begin
                    t.off <- t.off + frame_overhead + plen;
                    if seq < t.next_seq then `Skip
                    else begin
                      t.next_seq <- seq + 1;
                      `Record (seq, record)
                    end
                  end)

  (** [next_batch t ~max_records ~timeout_s] returns the next run of
      records in sequence order, at most [max_records].  A live cursor
      that has drained the durable prefix blocks on group-commit
      progress for up to [timeout_s] and returns [[]] if nothing new
      committed (also when the writer stopped); an offline cursor
      returns [[]] at the end of the log.  Rotation is followed
      transparently. *)
  let next_batch t ~max_records ~timeout_s =
    let limit =
      match t.writer with
      | Some w ->
          let d = Writer.durable_upto w in
          if d < t.next_seq && not (Writer.stopped w) then
            Writer.wait_new_durable w ~known:(t.next_seq - 1) ~timeout_s
          else d
      | None -> max_int
    in
    let acc = ref [] in
    let n = ref 0 in
    let continue = ref true in
    while !continue && !n < max_records do
      match read_frame t ~limit with
      | `Record (seq, r) ->
          acc := (seq, r) :: !acc;
          incr n
      | `Skip -> ()
      | `End -> (
          (* Exhausted the readable part of this segment: follow a
             rotation when the next segment starts exactly where the
             cursor stands; otherwise there is nothing more (yet). *)
          match next_segment t with
          | Some base when base <= t.next_seq && base > t.cur_base ->
              open_segment t base
          | _ -> continue := false)
    done;
    List.rev !acc
end

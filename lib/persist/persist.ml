(** Durability layer for the Patricia-trie set server: write-ahead
    logging, checkpoints, and crash recovery.

    PR 4 put the paper's non-blocking trie behind a socket; this library
    makes that server's state survive the process.  The design is the
    classic log-structured pair, adapted to a {e lock-free} structure
    serving live traffic:

    - {!Wal}: a segmented append-only log with CRC32C-framed records and
      {e group commit} — worker domains publish acknowledged mutations
      to a shared queue and a dedicated log domain batches them per
      fsync, so synchronous durability costs one fsync per batch of
      concurrent operations rather than one per operation;
    - {!Checkpoint}: consistent images of a live trie, written
      side-by-side with concurrent inserts/deletes/replaces by pairing
      a WAL-cut stamp with an atomic frozen snapshot of the structure
      (the trie's own snapshot capability — the problem Prokopec et
      al. solve for Ctries, solved here inside the trie and stitched
      to the log by exact, idempotent tail replay);
    - {!Store}: a functor packaging any [CONCURRENT_SET_WITH_REPLACE]
      with open-time recovery (newest valid checkpoint + WAL tail
      replay, torn tails truncated at the first bad CRC, idempotent
      under double replay), the sync-ack {!Store.Make.barrier}, and
      live checkpointing with segment truncation;
    - {!Crc}: the shared, check-vector-tested CRC-32/CRC-32C
      implementation both file formats validate with;
    - {!Metrics}: fsync-latency and batch-size histograms plus
      byte/record/segment counters, exported through the same live
      scrape endpoint as everything else.

    Fault injection rides along: the log domain crosses
    [Chaos.Wal_append], [Chaos.Wal_fsync] and [Chaos.Wal_rotate], so
    chaos policies can widen crash windows exactly like they perturb
    the trie's CAS sites — the crash-recovery fuzzer
    ([test/crash_fuzzer.exe]) drives kills through those windows. *)

module Crc = Crc
module Wal = Wal
module Checkpoint = Checkpoint
module Store = Store
module Metrics = Metrics

(** A durable concurrent set: any [CONCURRENT_SET_WITH_REPLACE] fronted
    by the segmented WAL ({!Wal}) and checkpoint images
    ({!Checkpoint}).

    Opening a store recovers: load the newest valid checkpoint, replay
    the WAL tail ([seq > replay_from]) with the operations' {e exact}
    semantics, truncating a torn tail at the first bad CRC, then start
    a fresh segment for new appends.  Exact replay is idempotent over a
    snapshot image: insert and delete converge regardless of whether
    the image already holds their effect, and a conditional
    [S.replace] of a record the image already contains finds its
    [remove] key gone (or its [add] key present) and no-ops — so
    replaying the same log twice, or over a state that already
    contains a suffix of its effects, converges to the same set.  (The
    older design forced Replace records as delete+insert to overwrite
    keys a weakly-consistent traversal might have half-seen; with
    checkpoint images drawn from an atomic frozen {!snapshot} there is
    nothing half-seen left to overwrite, and the forced path is gone.)

    {2 Durability contract}

    Mutations are applied to the in-memory structure first and published
    to the log after; acknowledgements gated on {!barrier} (mode
    {!Sync}) are only released once the group commit holding the
    operation is on disk.  Recovery therefore restores {e every
    synchronously-acknowledged operation}, and restores operations in
    their per-session (per-connection) order — an acknowledged operation
    also orders before anything issued after its ack was observed,
    because the ack itself waited for the fsync.  Two {e concurrent,
    unacknowledged} mutations of the same key from different sessions
    may be recovered in either order (the WAL records them in publish
    order, which can differ from the structure's internal linearization
    of that race); sessions that need cross-session ordering must wait
    for acks, which is the usual contract of a replicated log.  Under
    process crash ([kill -9]) every completed [write] survives; under
    power loss the guarantee covers operations up to the last completed
    fsync. *)

module Make (S : Dset_intf.CONCURRENT_SET_WITH_REPLACE) = struct
  type mode =
    | Ephemeral  (** recover at open, log nothing (read-only durability) *)
    | Async  (** log every mutation, never fsync, never wait *)
    | Sync  (** log + group-commit fsync; {!barrier} gates acks *)

  let mode_name = function
    | Ephemeral -> "none"
    | Async -> "async"
    | Sync -> "sync"

  type recovery_info = {
    checkpoint_seq : int option;  (** [replay_from] of the loaded image *)
    checkpoint_keys : int;
    checkpoints_skipped : int;  (** newer-but-corrupt images passed over *)
    wal_records : int;  (** valid records found in the log *)
    wal_replayed : int;  (** records actually applied (past the cut) *)
    wal_segments : int;
    torn_tail : bool;  (** a torn tail was truncated at a bad CRC *)
    last_seq : int;  (** highest durable sequence number recovered *)
  }

  type t = {
    dir : string;
    universe : int;
    mode : mode;
    set : S.t;
    writer : Wal.Writer.t option;
    info : recovery_info;
    last_logged : int ref Domain.DLS.key;
    ckpt_mu : Mutex.t;
    retention : (unit -> int option) Atomic.t;
        (* checkpoint GC floor: lowest WAL seq some attached consumer
           (a replication tailer) still needs; [None] = unconstrained *)
  }

  let rec mkdirs dir =
    if dir <> "" && not (Sys.file_exists dir) then begin
      mkdirs (Filename.dirname dir);
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  (* Exact replay: each record re-runs as the operation it logged.
     Over a snapshot-consistent image this is idempotent — a Replace
     whose effect is already in the image fails its conditional check
     and no-ops instead of being forced through as delete+insert. *)
  let apply set = function
    | Wal.Insert k -> ignore (S.insert set k : bool)
    | Wal.Delete k -> ignore (S.delete set k : bool)
    | Wal.Replace { remove; add } -> ignore (S.replace set ~remove ~add : bool)

  (** [open_ ~dir ~universe ~mode ()] recovers the state persisted in
      [dir] (creating it if absent) into a fresh [S.t] and, in the
      logging modes, starts the group-commit writer on a new segment.
      @raise Failure on corruption that is not a recoverable torn tail
      (a bad record with more log after it, or a checkpoint for a
      different universe). *)
  let open_ ~dir ~universe ~mode ?segment_bytes () =
    mkdirs dir;
    let set = S.create ~universe () in
    let ckpt =
      match Checkpoint.load_newest ~dir ~universe with
      | Result.Ok c -> c
      | Result.Error msg -> failwith ("Persist.Store: " ^ msg)
    in
    let replay_from =
      match ckpt with
      | Some c ->
          List.iter (fun k -> ignore (S.insert set k : bool)) c.Checkpoint.keys;
          c.Checkpoint.replay_from
      | None -> -1
    in
    let scan =
      match Wal.scan ~dir ~replay_from ~f:(fun ~seq:_ r -> apply set r) with
      | Result.Ok s -> s
      | Result.Error msg -> failwith ("Persist.Store: " ^ msg)
    in
    let last_seq = max scan.Wal.last_seq replay_from in
    let info =
      {
        checkpoint_seq = Option.map (fun c -> c.Checkpoint.replay_from) ckpt;
        checkpoint_keys =
          (match ckpt with Some c -> List.length c.Checkpoint.keys | None -> 0);
        checkpoints_skipped =
          (match ckpt with Some c -> c.Checkpoint.skipped | None -> 0);
        wal_records = scan.Wal.records;
        wal_replayed = scan.Wal.replayed;
        wal_segments = scan.Wal.segments;
        torn_tail = scan.Wal.torn;
        last_seq;
      }
    in
    let writer =
      match mode with
      | Ephemeral -> None
      | Async | Sync ->
          Some
            (Wal.Writer.create ~dir ~start_seq:(last_seq + 1) ?segment_bytes
               ~fsync:(mode = Sync) ())
    in
    {
      dir;
      universe;
      mode;
      set;
      writer;
      info;
      last_logged = Domain.DLS.new_key (fun () -> ref (-1));
      ckpt_mu = Mutex.create ();
      retention = Atomic.make (fun () -> None);
    }

  let recovery_info t = t.info
  let mode t = t.mode
  let underlying t = t.set
  let dir t = t.dir

  (** The store's WAL writer, for consumers that stream or pin the log
      (the replication primary's tailer).  [None] in {!Ephemeral}. *)
  let wal_writer t = t.writer

  (** Highest WAL sequence number logged by the {e calling} domain —
      the per-domain stamp {!barrier} waits on.  A replication layer
      running a sync-ack barrier needs the same stamp to know which
      sequence its followers must acknowledge. *)
  let last_logged_here t = !(Domain.DLS.get t.last_logged)

  (** Install the checkpoint-GC retention hook: a closure returning the
      lowest WAL sequence number still needed by an attached log
      consumer ([None] = no constraint).  Segments that may contain
      records at or past the returned floor survive checkpointing. *)
  let set_retention_hook t f = Atomic.set t.retention f

  let log t r =
    match t.writer with
    | None -> ()
    | Some w -> (Domain.DLS.get t.last_logged) := Wal.Writer.append w r

  (* Mutations: apply to the structure, then publish the acknowledged
     effect.  A [false] result changed nothing and is not logged. *)

  let insert t k =
    let ok = S.insert t.set k in
    if ok then log t (Wal.Insert k);
    ok

  let delete t k =
    let ok = S.delete t.set k in
    if ok then log t (Wal.Delete k);
    ok

  let replace t ~remove ~add =
    let ok = S.replace t.set ~remove ~add in
    if ok then log t (Wal.Replace { remove; add });
    ok

  let member t k = S.member t.set k
  let size t = S.size t.set
  let to_list t = S.to_list t.set

  (** Atomic frozen view of the current contents (the structure's
      snapshot capability, untouched by the WAL layer). *)
  let snapshot t = S.snapshot t.set

  (** Newest {e assigned} WAL sequence number — the [cut] a scan page
      or checkpoint taken {e after} reading it may be paired with:
      mutations apply to the structure before they log, so every record
      [<= scan_cut t] is already visible to a snapshot taken later.
      Falls back to the recovered [last_seq] when the store does not
      log (Ephemeral). *)
  let scan_cut t =
    match t.writer with
    | Some w -> Wal.Writer.last_assigned w
    | None -> t.info.last_seq

  (** Block until this domain's most recent logged mutation is durable.
      In {!Sync} mode an acknowledgement must not be released before
      this returns; the patserve server calls it once per processed
      frame window, which is what makes group commit pay (one fsync per
      window of pipelined requests, not per request).  No-op in the
      other modes. *)
  let barrier t =
    match t.writer with
    | Some w when t.mode = Sync ->
        let last = !(Domain.DLS.get t.last_logged) in
        if last >= 0 then Wal.Writer.wait_durable w last
    | _ -> ()

  (** Group-commit backlog: records enqueued for the log domain but not
      yet durable.  0 when the store does not log.  Cheap enough to be
      sampled by the progress watchdog on every health evaluation. *)
  let queue_depth t =
    match t.writer with Some w -> Wal.Writer.queue_depth w | None -> 0

  (** Write a checkpoint of the current contents beside live traffic and
      delete WAL segments it makes obsolete.  Returns
      [(keys_serialized, segments_deleted)].  Serialized against itself
      with a mutex; safe against concurrent mutations (see
      {!Checkpoint} on why the image + tail replay is consistent).

      The image is drawn from an atomic frozen {!S.snapshot} taken
      {e after} the WAL cut [s0] is read — mutations apply to the
      structure before they log, so every record [<= s0] is inside the
      view and every record the view might additionally contain has
      [seq > s0] and is replayed (idempotently) on recovery.  A
      structure without the snapshot capability falls back to the
      weakly-consistent [S.to_list] walk, which is exact when the
      store is quiescent and sound under live insert/delete traffic
      (replay overwrites anything the walk half-saw); only live
      Replace traffic needs the frozen view. *)
  let checkpoint t =
    Mutex.lock t.ckpt_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.ckpt_mu) @@ fun () ->
    let s0 =
      match t.writer with
      | Some w -> Wal.Writer.last_assigned w
      | None -> t.info.last_seq
    in
    (* The image supersedes everything <= s0; make sure that prefix is
       on disk before segments carrying it can be deleted. *)
    (match t.writer with Some w -> Wal.Writer.wait_durable w s0 | None -> ());
    let keys =
      match S.snapshot t.set with
      | Some v ->
          List.rev (v.Dset_intf.v_fold ~init:[] ~f:(fun acc k -> k :: acc))
      | None -> S.to_list t.set
    in
    ignore
      (Checkpoint.write ~dir:t.dir ~universe:t.universe ~replay_from:s0 ~keys
        : string);
    let keep_from = (Atomic.get t.retention) () in
    let deleted =
      Wal.delete_obsolete_segments ~dir:t.dir ~upto:s0 ?keep_from ()
    in
    (List.length keys, deleted)

  (** Stop the log domain after draining every accepted record (final
      fsync included).  The store must not be mutated afterwards. *)
  let close t = Option.iter Wal.Writer.stop t.writer
end

(** First-class registry of every concurrent set in the repository,
    packaged behind the common {!Dset_intf.CONCURRENT_SET} signature.

    Generic client code (tests, tools) can iterate over {!all} without
    naming concrete modules; the Patricia trie additionally satisfies
    {!Dset_intf.CONCURRENT_SET_WITH_REPLACE} through {!Pat}. *)

(** The paper's trie, adapted to the plain signature (the stats switch
    of [Core.Patricia.create] is dropped). *)
module Pat : Dset_intf.CONCURRENT_SET_WITH_REPLACE with type t = Core.Patricia.t =
struct
  type t = Core.Patricia.t

  let name = Core.Patricia.name
  let create ~universe () = Core.Patricia.create ~universe ()
  let insert = Core.Patricia.insert
  let delete = Core.Patricia.delete
  let member = Core.Patricia.member
  let to_list = Core.Patricia.to_list
  let size = Core.Patricia.size
  let replace = Core.Patricia.replace
  let census = Core.Patricia.census
  let descent_stats = Core.Patricia.descent_stats

  (* The one real snapshot capability in the registry: an O(1) frozen
     view from [Core.Patricia.snapshot], repackaged as the first-class
     traversal record of the common signature. *)
  let snapshot = Core.Patricia.snapshot_capability
end

module Bst : Dset_intf.CONCURRENT_SET with type t = Nbbst.t = Nbbst

(** 4-ST behind the plain signature (the stats switch of [Kary.create]
    is dropped, as for {!Pat}). *)
module Kary_st : Dset_intf.CONCURRENT_SET with type t = Kary.t = struct
  include Kary

  let create ~universe () = Kary.create ~universe ()
end
module Sl : Dset_intf.CONCURRENT_SET with type t = Skiplist.t = Skiplist
module Avl_tree : Dset_intf.CONCURRENT_SET with type t = Avl.t = Avl
module Hash_trie : Dset_intf.CONCURRENT_SET with type t = Ctrie.t = Ctrie

(** All six structures of the paper's evaluation, in legend order. *)
let all : Dset_intf.packed list =
  [
    Dset_intf.Packed (module Pat);
    Dset_intf.Packed (module Kary_st);
    Dset_intf.Packed (module Bst);
    Dset_intf.Packed (module Avl_tree);
    Dset_intf.Packed (module Sl);
    Dset_intf.Packed (module Hash_trie);
  ]

(** PAT behind the patserve network protocol: every operation is a
    round trip to an in-process loopback server, so the generic test
    batteries (including the linearizability checker) exercise the
    whole serving path — framing, pipelining, worker domains — with no
    test written specifically for it. *)
module Served_pat = Server.Loopback (Pat)

(** The structures supporting the paper's atomic replace — only PAT, as
    the evaluation notes ("we could not compare these results with other
    data structures since none provide atomic replace operations") —
    plus PAT served over the loopback network path. *)
let with_replace : Dset_intf.packed_replace list =
  [
    Dset_intf.Packed_replace (module Pat);
    Dset_intf.Packed_replace (module Served_pat);
  ]

(* Fault injection and contention-robustness layer; see chaos.mli.

   Hot-path discipline: with no policy installed the only cost an
   instrumented structure pays per site is [Atomic.get active] plus an
   untaken branch (callers inline that test themselves and call [hit]
   only on the slow path).  Everything else here — counters, PRNG
   state, stall bookkeeping — is touched only while a policy is
   active, so it is allowed to be striped-but-ordinary code. *)

type site =
  | Flag_cas
  | Child_cas
  | After_child_cas
  | Unflag
  | Backtrack
  | Retry
  | Net_accept
  | Net_read
  | Net_write
  | Net_decode
  | Wal_append
  | Wal_fsync
  | Wal_rotate
  | Repl_apply

let all_sites =
  [
    Flag_cas;
    Child_cas;
    After_child_cas;
    Unflag;
    Backtrack;
    Retry;
    Net_accept;
    Net_read;
    Net_write;
    Net_decode;
    Wal_append;
    Wal_fsync;
    Wal_rotate;
    Repl_apply;
  ]

let site_name = function
  | Flag_cas -> "flag_cas"
  | Child_cas -> "child_cas"
  | After_child_cas -> "after_child_cas"
  | Unflag -> "unflag"
  | Backtrack -> "backtrack"
  | Retry -> "retry"
  | Net_accept -> "net_accept"
  | Net_read -> "net_read"
  | Net_write -> "net_write"
  | Net_decode -> "net_decode"
  | Wal_append -> "wal_append"
  | Wal_fsync -> "wal_fsync"
  | Wal_rotate -> "wal_rotate"
  | Repl_apply -> "repl_apply"

let site_index = function
  | Flag_cas -> 0
  | Child_cas -> 1
  | After_child_cas -> 2
  | Unflag -> 3
  | Backtrack -> 4
  | Retry -> 5
  | Net_accept -> 6
  | Net_read -> 7
  | Net_write -> 8
  | Net_decode -> 9
  | Wal_append -> 10
  | Wal_fsync -> 11
  | Wal_rotate -> 12
  | Repl_apply -> 13

let n_sites = List.length all_sites

(* ------------------------------------------------------------------ *)
(* Global policy state *)

let active = Atomic.make false
let hook : (site -> unit) Atomic.t = Atomic.make (fun _ -> ())
let installed_name = Atomic.make "none"
let crossings = Array.init n_sites (fun _ -> Obs.Counter.create ())

let reset_counters () = Array.iter Obs.Counter.reset crossings

let hit s =
  Obs.Counter.incr crossings.(site_index s);
  (Atomic.get hook) s

let[@inline] point s = if Atomic.get active then hit s

let set_policy ?(name = "custom") = function
  | None ->
      Atomic.set active false;
      Atomic.set hook (fun _ -> ());
      Atomic.set installed_name "none"
  | Some h ->
      reset_counters ();
      Atomic.set installed_name name;
      Atomic.set hook h;
      Atomic.set active true

let with_policy ?name h f =
  set_policy ?name (Some h);
  Fun.protect ~finally:(fun () -> set_policy None) f

let enabled () = Atomic.get active
let policy_name () = Atomic.get installed_name

let points_crossed () =
  Array.fold_left (fun acc c -> acc + Obs.Counter.sum c) 0 crossings

let site_crossings () =
  List.map (fun s -> (site_name s, Obs.Counter.sum crossings.(site_index s))) all_sites

(* ------------------------------------------------------------------ *)
(* Per-domain PRNG state, shared by jittered backoff and delay policies.
   One generator per stripe (see Obs.Stripe): uncontended in the common
   case, merely correlated — never unsafe — if domain ids wrap. *)

let stripe_rngs seed =
  Array.init Obs.Stripe.count (fun i -> Rng.of_int_seed (seed + (i * 0x9E37)))

let[@inline] stripe_rng rngs = Array.unsafe_get rngs (Obs.Stripe.index ())

(* ------------------------------------------------------------------ *)

module Policy = struct
  let delays ?sites ?(prob_per_mille = 250) ?(max_spins = 400) ~seed () =
    if prob_per_mille < 0 || prob_per_mille > 1000 then
      invalid_arg "Chaos.Policy.delays: prob_per_mille must be in [0, 1000]";
    if max_spins < 1 then invalid_arg "Chaos.Policy.delays: max_spins must be >= 1";
    let wanted =
      match sites with
      | None -> fun _ -> true
      | Some l ->
          let mask =
            List.fold_left (fun m s -> m lor (1 lsl site_index s)) 0 l
          in
          fun s -> mask land (1 lsl site_index s) <> 0
    in
    let rngs = stripe_rngs seed in
    fun s ->
      if wanted s then begin
        let r = stripe_rng rngs in
        if Rng.int r 1000 < prob_per_mille then
          for _ = 1 to 1 + Rng.int r max_spins do
            Domain.cpu_relax ()
          done
      end
end

module Stall = struct
  (* State machine: Armed --capture--> Stalled --release--> Released.
     [remaining] counts the crossings to let pass before capturing; the
     arrival that fetches it at zero wins the capture CAS (there is at
     most one such arrival per armed stall, but the CAS keeps a
     concurrently released stall from re-capturing). *)
  let armed = 0
  and stalled_st = 1
  and released = 2

  type t = { at : site; remaining : int Atomic.t; state : int Atomic.t }

  let install ?(after = 0) at =
    if after < 0 then invalid_arg "Chaos.Stall.install: after must be >= 0";
    { at; remaining = Atomic.make after; state = Atomic.make armed }

  let hook t s =
    if s = t.at && Atomic.get t.state = armed then
      if Atomic.fetch_and_add t.remaining (-1) = 0 then
        if Atomic.compare_and_set t.state armed stalled_st then
          (* Captured: this domain now simulates a process descheduled
             mid-update.  Plain spin — the whole point is that it makes
             no further progress until released. *)
          while Atomic.get t.state = stalled_st do
            Domain.cpu_relax ()
          done

  let stalled t = Atomic.get t.state = stalled_st

  let release t = Atomic.set t.state released

  (* forward declaration dance avoided: Backoff is defined below, so use
     a local spin loop with the same shape for wait_stalled. *)
  let wait_stalled ?(timeout_s = 10.0) t =
    let deadline =
      Obs.Clock.now_ns () + int_of_float (timeout_s *. 1e9)
    in
    let rec go spins =
      if stalled t then true
      else if Obs.Clock.now_ns () > deadline then stalled t
      else begin
        for _ = 1 to spins do
          Domain.cpu_relax ()
        done;
        go (min (spins * 2) 4096)
      end
    in
    go 1
end

module Backoff = struct
  let on = Atomic.make false
  let enabled () = Atomic.get on
  let set_enabled b = Atomic.set on b

  type t = int

  let min_spins = 8
  let max_spins = 4096
  let init = min_spins
  let rngs = stripe_rngs 0x0ff5e7

  let wait cap =
    let r = stripe_rng rngs in
    let spins = (cap / 2) + Rng.int r ((cap / 2) + 1) in
    for _ = 1 to spins do
      Domain.cpu_relax ()
    done;
    if cap >= max_spins then max_spins else cap * 2

  let wait_until ?(timeout_s = 10.0) pred =
    let deadline = Obs.Clock.now_ns () + int_of_float (timeout_s *. 1e9) in
    let rec go cap =
      if pred () then true
      else if Obs.Clock.now_ns () > deadline then pred ()
      else go (wait cap)
    in
    go init

  (* Sleeping twin of [wait] for waits measured in milliseconds rather
     than cache misses: a network client backing off from an overloaded
     server must release the CPU, not spin on it.  The state is the same
     doubling [int] cap, reinterpreted as a duration scale, so the jitter
     and bounded-doubling behaviour match the spinning variant. *)
  let sleep ?(base_s = 0.001) ?(cap_s = 0.5) ?(floor_s = 0.0) cap =
    let r = stripe_rng rngs in
    let scale = float_of_int cap /. float_of_int min_spins in
    let full = Float.min cap_s (base_s *. scale) in
    (* Jitter in [full/2, full], never below the caller's floor (a
       server-provided retry-after hint). *)
    let jittered = (full /. 2.) +. (Rng.float r *. (full /. 2.)) in
    let d = Float.max floor_s jittered in
    if d > 0. then Unix.sleepf d;
    if cap >= max_spins then max_spins else cap * 2
end

(** Fault injection and contention-robustness layer.

    The paper's central claim is that the trie is {e non-blocking}: a
    process stalled in the middle of an update — even one holding flags
    — can never prevent other processes from completing, because anyone
    who encounters a flagged node helps the owner's descriptor to
    completion (Section IV).  Happy-path concurrency tests exercise the
    helping machinery only by luck; this module makes the adversarial
    schedules deliberate and reproducible.

    Every CAS/flag/unflag/child-swap site in [Core.Patricia] (and
    [Core.Patricia_vlk]) is labelled with a {!site} and routed through
    {!point}.  With no policy installed, a crossing costs one atomic
    load and an untaken branch — the same pattern as the trie's disabled
    stats path.  A test installs a policy ({!set_policy} /
    {!with_policy}) to inject deterministic PRNG-driven delays
    ({!Policy.delays}) or to freeze a domain at a chosen site
    ({!Stall}), then audits the structure afterwards.

    The module also provides the bounded exponential backoff used by the
    trie's retry loops and the harness's start barrier ({!Backoff}) —
    graceful behaviour under contention instead of bare spinning. *)

(** Labels for the synchronization points of the trie's update protocol,
    in the order an update crosses them (figure/line references are to
    Shafiei's pseudocode), followed by the network-path sites of the
    patserve set server ([lib/server]). *)
type site =
  | Flag_cas  (** about to attempt a flag CAS on an internal node's
                  [info] field (help, lines 87-92) *)
  | Child_cas  (** all flags acquired, [flag_done] set; about to swing
                   one child pointer (lines 93-98).  For a general-case
                   replace this site is crossed twice: stalling on the
                   second crossing freezes the window between the two
                   child CASes, after the linearization point. *)
  | After_child_cas  (** one child CAS just performed *)
  | Unflag  (** update applied; about to release the flags in reverse
                order (lines 99-102) *)
  | Backtrack  (** flagging failed; about to back the flags out
                   (lines 103-106) *)
  | Retry  (** an update attempt failed and is about to restart from a
               fresh search — the site where contention backoff waits *)
  | Net_accept  (** patserve: a connection was just accepted *)
  | Net_read  (** patserve: about to read from a connection socket *)
  | Net_write  (** patserve: about to write buffered responses *)
  | Net_decode  (** patserve: about to decode a complete request frame *)
  | Wal_append
      (** persist: the log domain is about to write a group-commit batch
          to the active WAL segment.  A policy stalling here widens the
          window in which a crash leaves a torn or missing tail. *)
  | Wal_fsync  (** persist: about to fsync the active WAL segment *)
  | Wal_rotate
      (** persist: about to rotate to a fresh WAL segment (close + fsync
          the old one, create and header-stamp the new one) *)
  | Repl_apply
      (** replica: a follower is about to apply one streamed log record
          to its local store.  A policy stalling here makes the
          follower's [applied_seq] fall behind the primary's head — the
          lag-injection lever behind the staleness-bound tests. *)

val all_sites : site list
val site_name : site -> string
(** Stable lower-snake names, used in metrics and test output. *)

val active : bool Atomic.t
(** Whether a policy is installed.  Exposed so instrumented structures
    can gate their crossings on a single inlined atomic load; treat as
    read-only and use {!set_policy} to change it. *)

val hit : site -> unit
(** Count the crossing and run the installed policy.  Call only when
    {!active} was observed true; {!point} is the safe wrapper. *)

val point : site -> unit
(** [point s] is [if Atomic.get active then hit s] — the entry point an
    instrumented structure calls at each labelled site. *)

val set_policy : ?name:string -> (site -> unit) option -> unit
(** Install ([Some hook]) or remove ([None]) the global injection
    policy.  The hook runs on the crossing domain and may spin, yield or
    block; it must not itself operate on the structure under test.
    Installing a policy resets the crossing counters. *)

val with_policy : ?name:string -> (site -> unit) -> (unit -> 'a) -> 'a
(** [with_policy h f] installs [h], runs [f ()], and removes the policy
    even if [f] raises. *)

val enabled : unit -> bool
(** [Atomic.get active]. *)

val policy_name : unit -> string
(** Name of the installed policy, or ["none"] — recorded as chaos-mode
    metadata in the benchmark metrics files. *)

val points_crossed : unit -> int
(** Total site crossings since the current policy was installed. *)

val site_crossings : unit -> (string * int) list
(** Per-site crossing counts (name, count) since the current policy was
    installed, in declaration order. *)

(** Deterministic schedule perturbation: PRNG-driven delay bursts at
    injection points.  Per-domain SplitMix64 generators derived from the
    seed keep runs reproducible for a fixed domain/operation layout. *)
module Policy : sig
  val delays :
    ?sites:site list ->
    ?prob_per_mille:int ->
    ?max_spins:int ->
    seed:int ->
    unit ->
    site -> unit
  (** [delays ~seed ()] is a hook that, at each crossing of one of
      [sites] (default: all), spins for a random burst of up to
      [max_spins] (default 400) [Domain.cpu_relax] calls with
      probability [prob_per_mille]/1000 (default 250).  On an
      oversubscribed machine the bursts also invite preemption, widening
      the CAS windows they land in. *)
end

(** Sticky stalls: freeze the first domain that crosses a chosen site,
    simulating a process descheduled (or dead) in the middle of an
    update.  The stalled domain spins inside the hook until
    {!Stall.release}; every other domain passes the site freely, which
    is exactly the scenario the non-blocking property is about. *)
module Stall : sig
  type t

  val install : ?after:int -> site -> t
  (** [install ~after s] arms a stall that captures the domain making
      the [(after+1)]-th crossing of [s] (default: the first).  The
      returned handle is meant to be composed into the policy via
      {!hook}. *)

  val hook : t -> site -> unit
  (** The injection hook enforcing the stall; pass to {!set_policy}. *)

  val wait_stalled : ?timeout_s:float -> t -> bool
  (** Block (with backoff) until some domain is captured; [false] on
      timeout (default 10s). *)

  val stalled : t -> bool

  val release : t -> unit
  (** Let the captured domain resume.  Idempotent; also disarms an
      uncaptured stall. *)
end

(** Bounded exponential backoff with jitter for retry loops.

    The state is a plain [int] (the current spin cap), so threading it
    through a retry loop allocates nothing.  Jitter draws from a
    per-domain SplitMix64 generator: synchronized retry herds decorrelate
    instead of re-colliding, which is what flattens the contention
    cliff. *)
module Backoff : sig
  val enabled : unit -> bool

  val set_enabled : bool -> unit
  (** Toggle the trie's retry backoff globally (default [false], so the
      default benchmark configuration is byte-for-byte the paper's bare
      retry loop).  The benchmark drivers expose this as
      [patbench --backoff] / [REPRO_BACKOFF=1]. *)

  type t = int

  val init : t
  (** Initial spin cap. *)

  val wait : t -> t
  (** Spin for a jittered burst in [[cap/2, cap]] and return the doubled
      (bounded) cap.  Waits unconditionally — callers gate on
      {!enabled} so they can count the wait. *)

  val wait_until : ?timeout_s:float -> (unit -> bool) -> bool
  (** [wait_until pred] spins with exponential backoff until [pred ()]
      holds or [timeout_s] (default 10s) elapses; returns the final
      value of [pred ()].  Independent of {!enabled} — this is the
      deadline-guarded barrier wait used by the harness. *)

  val sleep : ?base_s:float -> ?cap_s:float -> ?floor_s:float -> t -> t
  (** [sleep cap] is {!wait}'s sleeping twin for waits measured in
      milliseconds: sleep a jittered duration in [[d/2, d]] where [d]
      grows from [base_s] (default 1ms) with the same doubling cap,
      bounded by [cap_s] (default 0.5s) and never below [floor_s]
      (default 0 — pass a server-provided retry-after hint here).
      Returns the doubled (bounded) state.  Used by the patserve
      client's BUSY/reconnect retry loop, where spinning would burn the
      very CPU the overloaded server needs.  Independent of
      {!enabled}. *)
end

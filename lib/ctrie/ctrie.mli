(** Concurrent hash trie (Ctrie) of Prokopec, Bronson, Bagwell & Odersky
    (PPoPP 2012), snapshot-free variant — the "Ctrie" baseline of the
    Patricia-trie paper's evaluation.

    32-way bitmap-compressed nodes behind INode indirections, updated by
    CAS; removal tombs single-entry nodes and folds them into parents.
    As the paper notes, a Ctrie search may itself perform CAS steps
    (helping compress tombs) — unlike the Patricia trie's wait-free,
    read-only find. *)

type t

val w : int
(** Bits per level (5, i.e. 32 children — the configuration the paper
    benchmarks). *)

val name : string
(** ["Ctrie"]. *)

val create : universe:int -> unit -> t
val insert : t -> int -> bool
val delete : t -> int -> bool
val member : t -> int -> bool
val to_list : t -> int list
val size : t -> int

val check_invariants : t -> (unit, string) result
(** Bitmap/array agreement and hash-prefix placement of every entry. *)

val census : t -> Dset_intf.census option
(** Always [None] — the explicit "unsupported" marker of the registry's
    shape-census capability; this baseline has no census walker. *)

val descent_stats : t -> (string * int) list option
(** Always [None] — descent-cost accounting is not wired into this
    baseline's search loop. *)

val snapshot : t -> Dset_intf.view option
(** Always [None] — the explicit "unsupported" marker of the atomic
    snapshot capability; this baseline's weakly-consistent traversals
    cannot masquerade as a frozen linearizable view. *)

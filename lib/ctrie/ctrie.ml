(* Concurrent hash trie (Ctrie) of

     A. Prokopec, N. Bronson, P. Bagwell, M. Odersky,
     "Concurrent tries with efficient non-blocking snapshots", PPoPP 2012,

   the "Ctrie" baseline of the Patricia-trie paper's evaluation.

   Structure: indirection nodes (INodes) point to main nodes; a main node
   is either a CNode — a bitmap-compressed array of up to 32 branches,
   each an INode or a singleton key (SNode) — or a TNode (tombed
   singleton) awaiting compression.  Keys are spread by a bijective
   62-bit hash, so two distinct keys never share all hash bits and no
   collision lists (LNodes) are needed.

   The paper's evaluation never uses snapshots, so this is the
   snapshot-free variant: plain CAS on INode.main instead of GCAS, which
   is exactly the PPoPP paper's algorithm with the snapshot machinery
   stripped.  Note the paper's remark that Ctrie searches may perform CAS
   steps: a lookup that encounters a TNode helps compress before retrying
   — ours does too. *)

let w = 5 (* branching 2^w = 32, as in the paper's evaluation *)

type t = { root : inode; universe : int }

and inode = { main : main Atomic.t }

and main = C of cnode | T of int (* tombed singleton *)

and cnode = { bmp : int; arr : branch array }

and branch = B_inode of inode | B_snode of int

let name = "Ctrie"

(* Bijective mixing hash on 62-bit ints (odd multiplier and xor-shift are
   both invertible), so distinct keys always eventually diverge. *)
let hash k =
  let h = k * 0x2545F4914F6CDD1 land max_int in
  h lxor (h lsr 31)

let empty_cnode = C { bmp = 0; arr = [||] }

let create ~universe () =
  if universe < 1 then invalid_arg "Ctrie.create: universe must be >= 1";
  { root = { main = Atomic.make empty_cnode }; universe }

let flag_pos cn hc lvl =
  let idx = (hc lsr lvl) land 31 in
  let flag = 1 lsl idx in
  let pos = Bitkey.popcount (cn.bmp land (flag - 1)) in
  (flag, pos)

let cnode_inserted cn pos flag branch =
  let n = Array.length cn.arr in
  let arr = Array.make (n + 1) branch in
  Array.blit cn.arr 0 arr 0 pos;
  Array.blit cn.arr pos arr (pos + 1) (n - pos);
  { bmp = cn.bmp lor flag; arr }

let cnode_updated cn pos branch =
  let arr = Array.copy cn.arr in
  arr.(pos) <- branch;
  { cn with arr }

let cnode_removed cn pos flag =
  let n = Array.length cn.arr in
  let arr = Array.make (n - 1) (B_snode 0) in
  Array.blit cn.arr 0 arr 0 pos;
  Array.blit cn.arr (pos + 1) arr pos (n - 1 - pos);
  { bmp = cn.bmp lxor flag; arr }

(* A non-root CNode left with a single singleton entry becomes a tomb. *)
let to_contracted cn lvl =
  if lvl > 0 && Array.length cn.arr = 1 then
    match cn.arr.(0) with B_snode s -> T s | B_inode _ -> C cn
  else C cn

(* Resurrect tombed sub-INodes into inline singletons, then contract. *)
let to_compressed cn lvl =
  let arr =
    Array.map
      (fun b ->
        match b with
        | B_inode si -> (
            match Atomic.get si.main with T s -> B_snode s | C _ -> b)
        | B_snode _ -> b)
      cn.arr
  in
  to_contracted { cn with arr } lvl

let clean (p : inode) lvl =
  let m = Atomic.get p.main in
  match m with
  | C cn -> ignore (Atomic.compare_and_set p.main m (to_compressed cn lvl))
  | T _ -> ()

(* Propagate a tomb in [i] into its parent [p] (at level [lvl]). *)
let rec clean_parent (p : inode) (i : inode) hc lvl =
  let m = Atomic.get i.main in
  let pm = Atomic.get p.main in
  match pm with
  | C cn -> (
      let flag, pos = flag_pos cn hc lvl in
      if cn.bmp land flag <> 0 then
        match cn.arr.(pos) with
        | B_inode x when x == i -> (
            match m with
            | T s ->
                let ncn = cnode_updated cn pos (B_snode s) in
                if not (Atomic.compare_and_set p.main pm (to_contracted ncn lvl))
                then clean_parent p i hc lvl
            | C _ -> ())
        | _ -> ())
  | T _ -> ()

(* Expand two colliding singletons into nested CNodes until their hash
   bits diverge. *)
let rec pair_main k1 h1 k2 h2 lvl =
  let i1 = (h1 lsr lvl) land 31 and i2 = (h2 lsr lvl) land 31 in
  if i1 = i2 then
    let inner = { main = Atomic.make (pair_main k1 h1 k2 h2 (lvl + w)) } in
    C { bmp = 1 lsl i1; arr = [| B_inode inner |] }
  else
    let arr =
      if i1 < i2 then [| B_snode k1; B_snode k2 |] else [| B_snode k2; B_snode k1 |]
    in
    C { bmp = (1 lsl i1) lor (1 lsl i2); arr }

type 'a outcome = Done of 'a | Restart

let member t k =
  if k < 0 || k >= t.universe then invalid_arg "Ctrie.member: key out of universe";
  let hc = hash k in
  let rec go (i : inode) lvl parent =
    match Atomic.get i.main with
    | C cn -> (
        let flag, pos = flag_pos cn hc lvl in
        if cn.bmp land flag = 0 then Done false
        else
          match cn.arr.(pos) with
          | B_inode si -> go si (lvl + w) (Some i)
          | B_snode k' -> Done (k' = k))
    | T _ ->
        (match parent with Some p -> clean p (lvl - w) | None -> ());
        Restart
  in
  let rec loop () =
    match go t.root 0 None with Done r -> r | Restart -> loop ()
  in
  loop ()

let insert t k =
  if k < 0 || k >= t.universe then invalid_arg "Ctrie.insert: key out of universe";
  let hc = hash k in
  let rec go (i : inode) lvl parent =
    let m = Atomic.get i.main in
    match m with
    | C cn -> (
        let flag, pos = flag_pos cn hc lvl in
        if cn.bmp land flag = 0 then
          let ncn = cnode_inserted cn pos flag (B_snode k) in
          if Atomic.compare_and_set i.main m (C ncn) then Done true else Restart
        else
          match cn.arr.(pos) with
          | B_inode si -> go si (lvl + w) (Some i)
          | B_snode k' when k' = k -> Done false
          | B_snode k' ->
              let inner =
                { main = Atomic.make (pair_main k' (hash k') k hc (lvl + w)) }
              in
              let ncn = cnode_updated cn pos (B_inode inner) in
              if Atomic.compare_and_set i.main m (C ncn) then Done true
              else Restart)
    | T _ ->
        (match parent with Some p -> clean p (lvl - w) | None -> ());
        Restart
  in
  let rec loop () =
    match go t.root 0 None with Done r -> r | Restart -> loop ()
  in
  loop ()

let delete t k =
  if k < 0 || k >= t.universe then invalid_arg "Ctrie.delete: key out of universe";
  let hc = hash k in
  let rec go (i : inode) lvl parent =
    let m = Atomic.get i.main in
    match m with
    | C cn -> (
        let flag, pos = flag_pos cn hc lvl in
        if cn.bmp land flag = 0 then Done false
        else
          match cn.arr.(pos) with
          | B_inode si -> go si (lvl + w) (Some i)
          | B_snode k' when k' = k ->
              let ncn = cnode_removed cn pos flag in
              if Atomic.compare_and_set i.main m (to_contracted ncn lvl) then begin
                (* If we just tombed this INode, fold it into the parent. *)
                (match parent with
                | Some p -> (
                    match Atomic.get i.main with
                    | T _ -> clean_parent p i hc (lvl - w)
                    | C _ -> ())
                | None -> ());
                Done true
              end
              else Restart
          | B_snode _ -> Done false)
    | T _ ->
        (match parent with Some p -> clean p (lvl - w) | None -> ());
        Restart
  in
  let rec loop () =
    match go t.root 0 None with Done r -> r | Restart -> loop ()
  in
  loop ()

let fold t ~init ~f =
  let rec go acc (m : main) =
    match m with
    | T s -> f acc s
    | C cn ->
        Array.fold_left
          (fun acc b ->
            match b with
            | B_snode s -> f acc s
            | B_inode si -> go acc (Atomic.get si.main))
          acc cn.arr
  in
  go init (Atomic.get t.root.main)

let to_list t = fold t ~init:[] ~f:(fun acc k -> k :: acc) |> List.sort Int.compare
let size t = fold t ~init:0 ~f:(fun acc _ -> acc + 1)

let check_invariants t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let rec go (m : main) lvl prefix =
    match m with
    | T s ->
        if lvl = 0 then err "tomb at root";
        if (hash s) land ((1 lsl lvl) - 1) <> prefix then err "tomb %d misplaced" s
    | C cn ->
        if Bitkey.popcount cn.bmp <> Array.length cn.arr then
          err "bitmap/array mismatch at level %d" lvl;
        let pos = ref 0 in
        for idx = 0 to 31 do
          if cn.bmp land (1 lsl idx) <> 0 then begin
            let sub_prefix = prefix lor (idx lsl lvl) in
            (match cn.arr.(!pos) with
            | B_snode s ->
                if (hash s) land ((1 lsl (lvl + w)) - 1) <> sub_prefix then
                  err "singleton %d misplaced at level %d" s lvl
            | B_inode si -> go (Atomic.get si.main) (lvl + w) sub_prefix);
            incr pos
          end
        done
  in
  go (Atomic.get t.root.main) 0 0;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

(* Structure forensics: this baseline is not instrumented; [None] is
   the registry's explicit "unsupported" marker for the census and
   descent-cost capabilities. *)
let census _ = None
let descent_stats _ = None

let snapshot _ = None

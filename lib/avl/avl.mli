(** Lock-based relaxed-balance AVL tree in the style of Bronson, Casper,
    Chafi & Olukotun (PPoPP 2010) — the "AVL" baseline of the
    Patricia-trie paper's evaluation.

    Partially external (a deleted node with two children remains as a
    routing node), optimistically traversed (readers validate per-node
    seqlock versions and take no locks on the fast path, with a
    lock-coupling fallback), and relaxed-balance (writers repair heights
    and rotate under fine-grained per-node mutexes on the way up).  See
    DESIGN.md for the deltas against Bronson's full OVL protocol. *)

type t

val name : string
(** ["AVL"]. *)

val create : universe:int -> unit -> t
val insert : t -> int -> bool
val delete : t -> int -> bool
val member : t -> int -> bool
val to_list : t -> int list
val size : t -> int

val check_invariants : t -> (unit, string) result
(** BST order (strict), no egregious per-node skew, and a logarithmic
    bound on the total height — the relaxed-balance guarantee. *)

val census : t -> Dset_intf.census option
(** Always [None] — the explicit "unsupported" marker of the registry's
    shape-census capability; this baseline has no census walker. *)

val descent_stats : t -> (string * int) list option
(** Always [None] — descent-cost accounting is not wired into this
    baseline's search loop. *)

val snapshot : t -> Dset_intf.view option
(** Always [None] — the explicit "unsupported" marker of the atomic
    snapshot capability; this baseline's weakly-consistent traversals
    cannot masquerade as a frozen linearizable view. *)

(* Lock-based relaxed-balance AVL tree in the style of

     N. Bronson, J. Casper, H. Chafi, K. Olukotun,
     "A practical concurrent binary search tree", PPoPP 2010,

   the "AVL" baseline of the Patricia-trie paper's evaluation.

   Faithful-shape reproduction (see DESIGN.md): like Bronson's tree it is

   - partially external: a deleted node with two children stays in the
     tree as an unmarked routing node ([present = false]); nodes with at
     most one child are physically unlinked;
   - optimistically traversed: readers take no locks, validating a
     per-node version (seqlock style) around every child-pointer read and
     restarting on interference, with a lock-coupling fallback after
     repeated interference so reads always terminate;
   - relaxed-balance: writers fix heights and rotate on the way back up
     under fine-grained per-node mutexes, so the tree is approximately
     height-balanced rather than strictly AVL at every instant.

   Simplification vs. Bronson: a single version counter per node is
   bumped on any structural change (Bronson distinguishes grow/shrink to
   let some readers continue); this is conservative, never unsafe. *)

type node = {
  key : int;
  mutable present : bool; (* guarded by [lock] for writes *)
  left : node option Atomic.t;
  right : node option Atomic.t;
  parent : node option Atomic.t;
  mutable height : int;
  version : int Atomic.t;
  mutable unlinked : bool; (* set under [lock] when removed from the tree *)
  lock : Mutex.t;
}

type t = { header : node; universe : int }
(* [header] is a permanent pseudo-root with key = max_int; the real tree
   hangs off header.left and the header is never rotated or unlinked. *)

let name = "AVL"

let mk_node ?parent key present =
  {
    key;
    present;
    left = Atomic.make None;
    right = Atomic.make None;
    parent = Atomic.make parent;
    height = 1;
    version = Atomic.make 0;
    unlinked = false;
    lock = Mutex.create ();
  }

let create ~universe () =
  if universe < 1 then invalid_arg "Avl.create: universe must be >= 1";
  { header = mk_node max_int false; universe }

let height = function None -> 0 | Some n -> n.height

let child n dir = if dir < 0 then n.left else n.right

(* Seqlock protocol on node versions: a mutator (holding the node's lock)
   makes the version odd *before* touching the node's links and even again
   after, so an optimistic reader that sees the same even version on both
   sides of a read knows it saw a consistent state — a bump-after-mutate
   scheme would let a reader validate against a half-applied rotation. *)
let begin_change n = Atomic.incr n.version
let end_change n = Atomic.incr n.version
let changing v = v land 1 = 1

(* ------------------------------------------------------------------ *)
(* Reads *)

(* Optimistic descent with Bronson-style overlapping version validation.
   The invariant carried by a call [descend key n v] is: at the moment [v]
   was read from [n.version], the key belonged to n's subtree.  Because a
   node's version is bumped whenever its children change (in particular
   whenever a rotation changes the key range it is responsible for), an
   unchanged version extends that moment forward.  The child's version is
   captured *while the parent edge is still valid* — that overlap is what
   makes the chain of certificates continuous. *)
type descent =
  | Found of node
  | Absent_at of node * int * int (* attach parent, direction, its version *)
  | Retry

let rec descend key (n : node) v =
  let dir = compare key n.key in
  if dir = 0 then Found n
  else
    let rec loop () =
      let c = Atomic.get (child n dir) in
      if Atomic.get n.version <> v then Retry
      else
        match c with
        | None -> Absent_at (n, dir, v)
        | Some c ->
            let cv = Atomic.get c.version in
            let edge_still =
              (match Atomic.get (child n dir) with
              | Some c' -> c' == c
              | None -> false)
              && Atomic.get n.version = v
            in
            if not edge_still then Retry
            else if changing cv then
              (* c is mid-mutation: wait it out by re-reading from n. *)
              if Atomic.get n.version = v then loop () else Retry
            else (
              match descend key c cv with
              | Retry -> if Atomic.get n.version = v then loop () else Retry
              | r -> r)
    in
    loop ()

let opt_descend t key =
  let rec start () =
    let v = Atomic.get t.header.version in
    if changing v then start () else descend key t.header v
  in
  start ()

(* Lock-coupling fallback: always terminates, used when the optimistic
   path keeps getting interfered with.  Returns with the terminal node
   still locked; every structural change locks all nodes whose child
   pointers it alters, so the coupled descent needs no validation. *)
type locked_descent = L_found of node | L_absent of node * int

let locked_descend t key =
  let rec go (n : node) =
    if n.key = key then L_found n
    else
      match Atomic.get (child n (compare key n.key)) with
      | None -> L_absent (n, compare key n.key)
      | Some c ->
          Mutex.lock c.lock;
          Mutex.unlock n.lock;
          go c
  in
  Mutex.lock t.header.lock;
  go t.header

let member t key =
  if key < 0 || key >= t.universe then invalid_arg "Avl.member: key out of universe";
  let rec attempt tries =
    if tries = 0 then begin
      match locked_descend t key with
      | L_found n ->
          let r = n.present in
          Mutex.unlock n.lock;
          r
      | L_absent (n, _) ->
          Mutex.unlock n.lock;
          false
    end
    else
      match opt_descend t key with
      | Found n ->
          (* A node that was reached while unlinked has present = false
             (unlinking requires it), so reading [present] alone is a
             valid linearization either way. *)
          n.present
      | Absent_at _ -> false
      | Retry -> attempt (tries - 1)
  in
  attempt 64

(* ------------------------------------------------------------------ *)
(* Rebalancing.  Writers walk from the point of change toward the header,
   fixing heights and rotating.  All lock acquisitions go parent-first
   (top-down), so the lock order is acyclic and deadlock-free. *)

let recompute_height n =
  let h = 1 + max (height (Atomic.get n.left)) (height (Atomic.get n.right)) in
  if h <> n.height then begin
    n.height <- h;
    true
  end
  else false

(* Nodes form cycles through their parent pointers, so options of nodes
   must only ever be compared by the physical identity of the node inside
   — structural (=/<>) comparison would diverge. *)
let replace_child (p : node) (old_c : node) (new_c : node option) =
  (match Atomic.get p.left with
  | Some l when l == old_c -> Atomic.set p.left new_c
  | _ -> Atomic.set p.right new_c);
  match new_c with Some c -> Atomic.set c.parent (Some p) | None -> ()

(* Rotate right around [n] (mirrored for [rotate_left]).  Caller holds the
   locks of p and n; we additionally lock the pivot child. *)
let rotate_right (p : node) (n : node) =
  match Atomic.get n.left with
  | None -> ()
  | Some l ->
      Mutex.lock l.lock;
      begin_change p;
      begin_change n;
      begin_change l;
      let lr = Atomic.get l.right in
      Atomic.set n.left lr;
      (match lr with Some x -> Atomic.set x.parent (Some n) | None -> ());
      Atomic.set l.right (Some n);
      Atomic.set n.parent (Some l);
      replace_child p n (Some l);
      ignore (recompute_height n);
      ignore (recompute_height l);
      end_change l;
      end_change n;
      end_change p;
      Mutex.unlock l.lock

let rotate_left (p : node) (n : node) =
  match Atomic.get n.right with
  | None -> ()
  | Some r ->
      Mutex.lock r.lock;
      begin_change p;
      begin_change n;
      begin_change r;
      let rl = Atomic.get r.left in
      Atomic.set n.right rl;
      (match rl with Some x -> Atomic.set x.parent (Some n) | None -> ());
      Atomic.set r.left (Some n);
      Atomic.set n.parent (Some r);
      replace_child p n (Some r);
      ignore (recompute_height n);
      ignore (recompute_height r);
      end_change r;
      end_change n;
      end_change p;
      Mutex.unlock r.lock

let balance_factor n = height (Atomic.get n.left) - height (Atomic.get n.right)

(* Fix one node under the locks of (p, n); returns whether anything moved.
   Double rotations lock the inner child before rotating through it; the
   acquisition stays strictly top-down (p, n, child, grandchild). *)
let fix_node (p : node) (n : node) =
  let changed = recompute_height n in
  let bf = balance_factor n in
  if bf > 1 then begin
    (match Atomic.get n.left with
    | Some l when balance_factor l < 0 ->
        Mutex.lock l.lock;
        rotate_left n l;
        Mutex.unlock l.lock
    | _ -> ());
    rotate_right p n;
    true
  end
  else if bf < -1 then begin
    (match Atomic.get n.right with
    | Some r when balance_factor r > 0 ->
        Mutex.lock r.lock;
        rotate_right n r;
        Mutex.unlock r.lock
    | _ -> ());
    rotate_left p n;
    true
  end
  else changed

(* Walk upward from [start], locking parent-then-node at each step and
   re-validating the edge, until heights stop changing. *)
let rec rebalance_up t (n : node) =
  if n != t.header && not n.unlinked then begin
    match Atomic.get n.parent with
    | None -> ()
    | Some p ->
        Mutex.lock p.lock;
        let still_parent =
          match Atomic.get n.parent with Some p' -> p' == p | None -> false
        in
        if p.unlinked || not still_parent then begin
          Mutex.unlock p.lock;
          rebalance_up t n (* parent changed under us: re-read and retry *)
        end
        else begin
          Mutex.lock n.lock;
          let continue_at =
            if n.unlinked then None
            else begin
              let moved = fix_node p n in
              if moved then Some p else None
            end
          in
          Mutex.unlock n.lock;
          Mutex.unlock p.lock;
          match continue_at with Some p -> rebalance_up t p | None -> ()
        end
  end

(* ------------------------------------------------------------------ *)
(* Updates *)

let attach t (n : node) dir key =
  (* Caller holds n.lock and has validated the slot. *)
  let c = mk_node ~parent:n key true in
  begin_change n;
  Atomic.set (child n dir) (Some c);
  end_change n;
  Mutex.unlock n.lock;
  (* Heights are fixed by the walk itself: it continues upward exactly as
     long as a height changes or a rotation fires. *)
  rebalance_up t n

let insert t key =
  if key < 0 || key >= t.universe then invalid_arg "Avl.insert: key out of universe";
  let rec attempt tries =
    if tries = 0 then begin
      (* Contention fallback: lock-coupled descent, act under the lock. *)
      match locked_descend t key with
      | L_found n ->
          if n.present then begin
            Mutex.unlock n.lock;
            false
          end
          else begin
            n.present <- true;
            Mutex.unlock n.lock;
            true
          end
      | L_absent (n, dir) ->
          attach t n dir key;
          true
    end
    else
      match opt_descend t key with
      | Retry -> attempt (tries - 1)
      | Found n ->
          Mutex.lock n.lock;
          if n.unlinked then begin
            Mutex.unlock n.lock;
            attempt (tries - 1)
          end
          else if n.present then begin
            Mutex.unlock n.lock;
            false
          end
          else begin
            n.present <- true;
            Mutex.unlock n.lock;
            true
          end
      | Absent_at (n, dir, v) ->
          Mutex.lock n.lock;
          if
            n.unlinked
            || Atomic.get n.version <> v
            || Atomic.get (child n dir) <> None
          then begin
            Mutex.unlock n.lock;
            attempt (tries - 1)
          end
          else begin
            attach t n dir key;
            true
          end
  in
  attempt 256

(* Physically unlink [n] (which has at most one child) from [p]; caller
   holds both locks.  Returns false if n grew a second child meanwhile. *)
let try_unlink (p : node) (n : node) =
  let l = Atomic.get n.left and r = Atomic.get n.right in
  match (l, r) with
  | Some _, Some _ -> false
  | _ ->
      let repl = match l with Some _ -> l | None -> r in
      begin_change p;
      begin_change n;
      replace_child p n repl;
      n.unlinked <- true;
      end_change n;
      end_change p;
      true

let rec delete t key =
  if key < 0 || key >= t.universe then invalid_arg "Avl.delete: key out of universe";
  let logically_remove t (n : node) =
    (* Caller holds n.lock with n linked and present. *)
    n.present <- false;
    let needs_unlink = Atomic.get n.left = None || Atomic.get n.right = None in
    Mutex.unlock n.lock;
    (* A node with two children stays as an unmarked routing node, the
       partially-external discipline of Bronson et al. *)
    if needs_unlink then unlink_routing t n
  in
  let rec attempt tries =
    if tries = 0 then begin
      match locked_descend t key with
      | L_absent (n, _) ->
          Mutex.unlock n.lock;
          false
      | L_found n ->
          if not n.present then begin
            Mutex.unlock n.lock;
            false
          end
          else begin
            logically_remove t n;
            true
          end
    end
    else
      match opt_descend t key with
      | Retry -> attempt (tries - 1)
      | Absent_at _ -> false
      | Found n ->
          Mutex.lock n.lock;
          if n.unlinked then begin
            Mutex.unlock n.lock;
            attempt (tries - 1)
          end
          else if not n.present then begin
            Mutex.unlock n.lock;
            false
          end
          else begin
            logically_remove t n;
            true
          end
  in
  attempt 256

(* Remove a non-present node with at most one child; also called to clean
   up routing nodes that lost a child.  Locks parent-then-node. *)
and unlink_routing t (n : node) =
  if (not n.unlinked) && n != t.header then begin
    match Atomic.get n.parent with
    | None -> ()
    | Some p ->
        Mutex.lock p.lock;
        let still_parent =
          match Atomic.get n.parent with Some p' -> p' == p | None -> false
        in
        if p.unlinked || not still_parent then begin
          Mutex.unlock p.lock;
          unlink_routing t n
        end
        else begin
          Mutex.lock n.lock;
          let unlinked =
            (not n.unlinked) && (not n.present) && try_unlink p n
          in
          Mutex.unlock n.lock;
          Mutex.unlock p.lock;
          if unlinked then rebalance_up t p
        end
  end

(* ------------------------------------------------------------------ *)
(* Quiescent traversals *)

let fold t ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some n ->
        let acc = go acc (Atomic.get n.left) in
        let acc = if n.present then f acc n.key else acc in
        go acc (Atomic.get n.right)
  in
  go init (Atomic.get t.header.left)

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k -> k :: acc))
let size t = fold t ~init:0 ~f:(fun acc _ -> acc + 1)

let check_invariants t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let count = ref 0 in
  let rec go lo hi = function
    | None -> 0
    | Some n ->
        if not (lo < n.key && n.key < hi) then
          err "key %d outside (%d, %d)" n.key lo hi;
        incr count;
        let hl = go lo n.key (Atomic.get n.left) in
        let hr = go n.key hi (Atomic.get n.right) in
        (* The balance is relaxed: concurrent updates can leave a node a
           few units out of AVL shape until the next walk repairs it, so
           per-node we only flag egregious skew and globally we bound the
           height logarithmically, which is the property the tree is paid
           to maintain. *)
        if abs (hl - hr) > 4 then err "imbalance %d at key %d" (hl - hr) n.key;
        1 + max hl hr
  in
  let h = go min_int max_int (Atomic.get t.header.left) in
  let n = !count in
  let bound =
    let rec log2 acc x = if x <= 1 then acc else log2 (acc + 1) (x / 2) in
    max 6 (2 * log2 0 (n + 2))
  in
  if h > bound then err "height %d exceeds bound %d for %d nodes" h bound n;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

(* Structure forensics: this baseline is not instrumented; [None] is
   the registry's explicit "unsupported" marker for the census and
   descent-cost capabilities. *)
let census _ = None
let descent_stats _ = None

let snapshot _ = None

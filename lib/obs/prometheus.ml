(** Prometheus text exposition format (version 0.0.4) renderer.

    The live scrape endpoint ({!Serve}) returns this format from
    [/metrics] so a running benchmark can be watched by anything that
    speaks Prometheus — or just [curl].  Only the emitting half of the
    format is implemented (counters, gauges, and quantile-labelled gauge
    families for histogram summaries); nothing here is on a measured
    path, so it is plain Buffer code. *)

type t = { buf : Buffer.t; mutable typed : string list }

let create () = { buf = Buffer.create 1024; typed = [] }

let content_type = "text/plain; version=0.0.4; charset=utf-8"

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  We sanitize rather than
   reject so callers can pass counter names straight through. *)
let sanitize_name name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* TYPE/HELP headers are emitted once per metric family, on its first
   sample — Prometheus rejects duplicated headers within an exposition. *)
let header t ~name ~typ ~help =
  if not (List.mem name t.typed) then begin
    t.typed <- name :: t.typed;
    (match help with
    | Some h -> Buffer.add_string t.buf (Printf.sprintf "# HELP %s %s\n" name h)
    | None -> ());
    Buffer.add_string t.buf (Printf.sprintf "# TYPE %s %s\n" name typ)
  end

let sample t ~name ~labels v =
  Buffer.add_string t.buf name;
  (match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char t.buf '{';
      List.iteri
        (fun i (k, lv) ->
          if i > 0 then Buffer.add_char t.buf ',';
          Buffer.add_string t.buf
            (Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value lv)))
        labels;
      Buffer.add_char t.buf '}');
  Buffer.add_char t.buf ' ';
  Buffer.add_string t.buf (number v);
  Buffer.add_char t.buf '\n'

let counter t ~name ?help ?(labels = []) v =
  let name = sanitize_name name in
  header t ~name ~typ:"counter" ~help;
  sample t ~name ~labels v

let gauge t ~name ?help ?(labels = []) v =
  let name = sanitize_name name in
  header t ~name ~typ:"gauge" ~help;
  sample t ~name ~labels v

(** Render a {!Histogram.summary} as a quantile-labelled gauge family
    plus [_count]/[_sum] counters — the shape of a Prometheus summary
    metric.  Quantiles are in nanosecond units as recorded. *)
let histogram_summary t ~name ?help ?(labels = []) (s : Histogram.summary) =
  let name = sanitize_name name in
  header t ~name ~typ:"summary" ~help;
  List.iter
    (fun (q, v) ->
      sample t ~name ~labels:(labels @ [ ("quantile", q) ]) (float_of_int v))
    [
      ("0.5", s.Histogram.p50);
      ("0.9", s.Histogram.p90);
      ("0.99", s.Histogram.p99);
      ("0.999", s.Histogram.p999);
    ];
  sample t ~name:(name ^ "_count") ~labels (float_of_int s.Histogram.count);
  sample t ~name:(name ^ "_sum") ~labels (float_of_int s.Histogram.sum)

let to_string t = Buffer.contents t.buf

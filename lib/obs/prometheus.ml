(** Prometheus text exposition format (version 0.0.4) renderer.

    The live scrape endpoint ({!Serve}) returns this format from
    [/metrics] so a running benchmark can be watched by anything that
    speaks Prometheus — or just [curl].  Only the emitting half of the
    format is implemented (counters, gauges, and quantile-labelled gauge
    families for histogram summaries); nothing here is on a measured
    path, so it is plain Buffer code. *)

type t = { buf : Buffer.t; mutable typed : string list }

let create () = { buf = Buffer.create 1024; typed = [] }

let content_type = "text/plain; version=0.0.4; charset=utf-8"

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  We sanitize rather than
   reject so callers can pass counter names straight through. *)
let sanitize_name name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* TYPE/HELP headers are emitted once per metric family, on its first
   sample — Prometheus rejects duplicated headers within an exposition. *)
let header t ~name ~typ ~help =
  if not (List.mem name t.typed) then begin
    t.typed <- name :: t.typed;
    (match help with
    | Some h -> Buffer.add_string t.buf (Printf.sprintf "# HELP %s %s\n" name h)
    | None -> ());
    Buffer.add_string t.buf (Printf.sprintf "# TYPE %s %s\n" name typ)
  end

let sample t ~name ~labels v =
  Buffer.add_string t.buf name;
  (match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char t.buf '{';
      List.iteri
        (fun i (k, lv) ->
          if i > 0 then Buffer.add_char t.buf ',';
          Buffer.add_string t.buf
            (Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value lv)))
        labels;
      Buffer.add_char t.buf '}');
  Buffer.add_char t.buf ' ';
  Buffer.add_string t.buf (number v);
  Buffer.add_char t.buf '\n'

let counter t ~name ?help ?(labels = []) v =
  let name = sanitize_name name in
  header t ~name ~typ:"counter" ~help;
  sample t ~name ~labels v

let gauge t ~name ?help ?(labels = []) v =
  let name = sanitize_name name in
  header t ~name ~typ:"gauge" ~help;
  sample t ~name ~labels v

(** Render a {!Histogram.summary} as a quantile-labelled gauge family
    plus [_count]/[_sum] counters — the shape of a Prometheus summary
    metric.  Quantiles are in nanosecond units as recorded. *)
let histogram_summary t ~name ?help ?(labels = []) (s : Histogram.summary) =
  let name = sanitize_name name in
  header t ~name ~typ:"summary" ~help;
  List.iter
    (fun (q, v) ->
      sample t ~name ~labels:(labels @ [ ("quantile", q) ]) (float_of_int v))
    [
      ("0.5", s.Histogram.p50);
      ("0.9", s.Histogram.p90);
      ("0.99", s.Histogram.p99);
      ("0.999", s.Histogram.p999);
    ];
  sample t ~name:(name ^ "_count") ~labels (float_of_int s.Histogram.count);
  sample t ~name:(name ^ "_sum") ~labels (float_of_int s.Histogram.sum)

let to_string t = Buffer.contents t.buf

(* ------------------------------------------------------------------ *)
(* Exposition parsing — the reading half, used by the loadgen's
   end-of-run server-side cross-check and by validate_metrics'
   [--prometheus] mode.  Parses the subset this module emits (names,
   label sets with escapes, float values, optional trailing timestamp);
   comment lines are skipped. *)

type parsed_sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

let parse_label_set s i0 =
  (* [s.[i0]] is the char after '{'.  Returns (labels, index after '}'). *)
  let labels = ref [] in
  let n = String.length s in
  let rec skip_ws i = if i < n && s.[i] = ' ' then skip_ws (i + 1) else i in
  let rec pairs i =
    let i = skip_ws i in
    if i >= n then failwith "unterminated label set"
    else if s.[i] = '}' then i + 1
    else begin
      let eq =
        match String.index_from_opt s i '=' with
        | Some e -> e
        | None -> failwith "label without '='"
      in
      let key = String.trim (String.sub s i (eq - i)) in
      if eq + 1 >= n || s.[eq + 1] <> '"' then failwith "unquoted label value";
      let buf = Buffer.create 16 in
      let rec value j =
        if j >= n then failwith "unterminated label value"
        else
          match s.[j] with
          | '"' -> j + 1
          | '\\' when j + 1 < n ->
              (match s.[j + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | c -> Buffer.add_char buf c);
              value (j + 2)
          | c ->
              Buffer.add_char buf c;
              value (j + 1)
      in
      let after = value (eq + 2) in
      labels := (key, Buffer.contents buf) :: !labels;
      let after = skip_ws after in
      if after < n && s.[after] = ',' then pairs (after + 1)
      else if after < n && s.[after] = '}' then after + 1
      else failwith "malformed label set"
    end
  in
  let after = pairs i0 in
  (List.rev !labels, after)

let parse_sample_line line =
  let line =
    if line <> "" && line.[String.length line - 1] = '\r' then
      String.sub line 0 (String.length line - 1)
    else line
  in
  if line = "" || line.[0] = '#' then None
  else
    let brace = String.index_opt line '{' in
    let space = String.index_opt line ' ' in
    let name_end, labels, rest_at =
      match (brace, space) with
      | Some b, Some sp when b < sp ->
          let labels, after = parse_label_set line (b + 1) in
          (b, labels, after)
      | _, Some sp -> (sp, [], sp)
      | _, None -> failwith "sample without value"
    in
    let name = String.sub line 0 name_end in
    if name = "" then failwith "empty metric name";
    let rest =
      String.trim
        (String.sub line rest_at (String.length line - rest_at))
    in
    let value_str =
      match String.index_opt rest ' ' with
      | Some i -> String.sub rest 0 i (* trailing timestamp ignored *)
      | None -> rest
    in
    match float_of_string_opt value_str with
    | Some v -> Some { s_name = name; s_labels = labels; s_value = v }
    | None -> failwith (Printf.sprintf "unparseable value %S" value_str)

(** Parse a full text exposition: returns the samples plus one error
    message per malformed line (malformed lines are skipped, so a
    partially readable scrape still yields its good samples). *)
let parse_samples text =
  let samples = ref [] and errs = ref [] in
  List.iteri
    (fun i line ->
      match parse_sample_line line with
      | Some s -> samples := s :: !samples
      | None -> ()
      | exception Failure m ->
          errs := Printf.sprintf "line %d: %s" (i + 1) m :: !errs)
    (String.split_on_char '\n' text);
  (List.rev !samples, List.rev !errs)

(** First sample matching [name] whose label set includes all of
    [labels]. *)
let find_sample samples ~name ~labels =
  List.find_opt
    (fun s ->
      s.s_name = name
      && List.for_all
           (fun (k, v) -> List.assoc_opt k s.s_labels = Some v)
           labels)
    samples
  |> Option.map (fun s -> s.s_value)


(** HDR-style log-bucketed histogram with per-domain shards.

    Values (latencies in nanoseconds, retry counts, ...) are
    non-negative ints.  Buckets are exact below 32 and afterwards split
    each power-of-two range into 32 sub-buckets, bounding the relative
    quantization error at ~3% — the scheme of HdrHistogram with
    [significant_figures ≈ 1.5].  Recording into a shard is two plain
    array/int writes on the calling domain's own stripe: no CAS, no
    allocation, so instrumenting an operation does not perturb the
    contention behaviour being measured.  Shards are merged on
    snapshot.

    Single-writer discipline: a shard is only written by domains mapping
    to its stripe (see {!Stripe}).  If domain ids ever wrap past the
    stripe count, two domains may share a stripe and racy increments can
    drop a sample — an accepted, documented inaccuracy for a statistics
    container (reads never crash, totals only undercount). *)

let sub_bits = 5
let sub = 1 lsl sub_bits (* 32 sub-buckets per power of two *)

(* Highest shift is 62 - sub_bits = 57 for values up to [max_int]
   (2^62 - 1); index = shift * 32 + (v lsr shift) < 59 * 32. *)
let num_buckets = 59 * sub

let msb v =
  (* Position of the most significant set bit; v >= 1. *)
  let v, n = if v lsr 32 <> 0 then (v lsr 32, 32) else (v, 0) in
  let v, n = if v lsr 16 <> 0 then (v lsr 16, n + 16) else (v, n) in
  let v, n = if v lsr 8 <> 0 then (v lsr 8, n + 8) else (v, n) in
  let v, n = if v lsr 4 <> 0 then (v lsr 4, n + 4) else (v, n) in
  let v, n = if v lsr 2 <> 0 then (v lsr 2, n + 2) else (v, n) in
  if v lsr 1 <> 0 then n + 1 else n

let bucket_of_value v =
  let v = if v < 0 then 0 else v in
  if v < sub then v
  else
    let shift = msb v - sub_bits in
    (shift lsl sub_bits) + (v lsr shift)

(** Inclusive value range [(lo, hi)] covered by bucket [idx]. *)
let bucket_bounds idx =
  if idx < sub then (idx, idx)
  else
    let shift = (idx lsr sub_bits) - 1 in
    let lo = (idx - (shift lsl sub_bits)) lsl shift in
    (lo, lo + (1 lsl shift) - 1)

type shard = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array;
}

type t = shard array

let make_shard () =
  { count = 0; sum = 0; vmin = max_int; vmax = 0; buckets = Array.make num_buckets 0 }

let create () : t = Array.init Stripe.count (fun _ -> make_shard ())

let[@inline] record (t : t) v =
  let v = if v < 0 then 0 else v in
  let s = Array.unsafe_get t (Stripe.index ()) in
  let idx = bucket_of_value v in
  Array.unsafe_set s.buckets idx (Array.unsafe_get s.buckets idx + 1);
  s.count <- s.count + 1;
  s.sum <- s.sum + v;
  if v < s.vmin then s.vmin <- v;
  if v > s.vmax then s.vmax <- v

let reset (t : t) =
  Array.iter
    (fun s ->
      s.count <- 0;
      s.sum <- 0;
      s.vmin <- max_int;
      s.vmax <- 0;
      Array.fill s.buckets 0 num_buckets 0)
    t

(* ------------------------------------------------------------------ *)
(* Snapshot *)

type summary = {
  count : int;
  sum : int;
  min : int; (* 0 when count = 0 *)
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
}

let empty_summary =
  { count = 0; sum = 0; min = 0; max = 0; mean = 0.0; p50 = 0; p90 = 0; p99 = 0; p999 = 0 }

(* Merge all shards into one bucket array (allocates; snapshot path only). *)
let merged (t : t) =
  let b = Array.make num_buckets 0 in
  let count = ref 0 and sum = ref 0 and vmin = ref max_int and vmax = ref 0 in
  Array.iter
    (fun (s : shard) ->
      if s.count > 0 then begin
        count := !count + s.count;
        sum := !sum + s.sum;
        if s.vmin < !vmin then vmin := s.vmin;
        if s.vmax > !vmax then vmax := s.vmax;
        Array.iteri (fun i c -> b.(i) <- b.(i) + c) s.buckets
      end)
    t;
  (b, !count, !sum, (if !count = 0 then 0 else !vmin), !vmax)

let percentile_of_merged b total vmax p =
  if total = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int total)) in
      if r < 1 then 1 else if r > total then total else r
    in
    let idx = ref 0 and cum = ref 0 in
    (try
       for i = 0 to num_buckets - 1 do
         cum := !cum + b.(i);
         if !cum >= rank then begin
           idx := i;
           raise_notrace Exit
         end
       done
     with Exit -> ());
    (* Report the bucket's upper bound (conservative for latency),
       clamped by the exact maximum seen. *)
    let _, hi = bucket_bounds !idx in
    if hi > vmax then vmax else hi
  end

let percentile (t : t) p =
  let b, total, _, _, vmax = merged t in
  percentile_of_merged b total vmax p

let snapshot (t : t) : summary =
  let b, count, sum, vmin, vmax = merged t in
  if count = 0 then empty_summary
  else
    let pct = percentile_of_merged b count vmax in
    {
      count;
      sum;
      min = vmin;
      max = vmax;
      mean = float_of_int sum /. float_of_int count;
      p50 = pct 50.0;
      p90 = pct 90.0;
      p99 = pct 99.0;
      p999 = pct 99.9;
    }

(** [merge_into ~into src] adds every sample of [src] to [into]'s shard
    for the calling domain.  Quiescent use only (aggregation across
    trials); not safe against concurrent recording into [src]. *)
let merge_into ~(into : t) (src : t) =
  let dst = into.(Stripe.index ()) in
  Array.iter
    (fun (s : shard) ->
      if s.count > 0 then begin
        dst.count <- dst.count + s.count;
        dst.sum <- dst.sum + s.sum;
        if s.vmin < dst.vmin then dst.vmin <- s.vmin;
        if s.vmax > dst.vmax then dst.vmax <- s.vmax;
        Array.iteri
          (fun i c -> if c <> 0 then dst.buckets.(i) <- dst.buckets.(i) + c)
          s.buckets
      end)
    src

let summary_to_json (s : summary) : Json.t =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("min_ns", Json.Int s.min);
      ("max_ns", Json.Int s.max);
      ("mean_ns", Json.Float s.mean);
      ("p50_ns", Json.Int s.p50);
      ("p90_ns", Json.Int s.p90);
      ("p99_ns", Json.Int s.p99);
      ("p999_ns", Json.Int s.p999);
    ]

(** Minimal JSON tree, emitter and parser.

    The benchmark drivers emit machine-readable metrics files and the CI
    smoke test parses them back; depending on yojson for that would drag
    a parsing stack into every executable, so this ~150-line module does
    both directions for the small subset of JSON we produce: [\uXXXX]
    escapes are decoded to UTF-8 (surrogate pairs combined, lone
    surrogates and malformed hex rejected with {!Parse_error}), numbers
    are OCaml [int] when they round-trip exactly and [float]
    otherwise. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  (* JSON has no NaN/Infinity; map them to null like most emitters. *)
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | _ ->
      let s = Printf.sprintf "%.12g" f in
      (* Ensure the token reads back as a float, not an int. *)
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
      else s ^ ".0"

let rec to_buffer ?(indent = 0) buf j =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | Str s -> escape_string buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          to_buffer ~indent:(indent + 2) buf x)
        xs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          escape_string buf k;
          Buffer.add_string buf ": ";
          to_buffer ~indent:(indent + 2) buf v)
        kvs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  to_buffer buf j;
  Buffer.contents buf

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Access helpers *)

let member j key =
  match j with Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_list_opt = function Arr xs -> Some xs | _ -> None

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over a string cursor. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  (* Four hex digits after a "\u"; [int_of_string "0x..."] is not usable
     here because it accepts signs and underscores ("\u12_3") and raises
     [Failure] instead of [Parse_error] on garbage. *)
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "bad hex digit in \\u escape"
    in
    let v =
      (digit s.[!pos] lsl 12)
      lor (digit s.[!pos + 1] lsl 8)
      lor (digit s.[!pos + 2] lsl 4)
      lor digit s.[!pos + 3]
    in
    pos := !pos + 4;
    v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some ('"' | '\\' | '/') ->
              Buffer.add_char buf (Option.get (peek ()));
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              let code = hex4 () in
              if code >= 0xD800 && code <= 0xDBFF then begin
                (* High surrogate: must be followed by a \uDC00-\uDFFF
                   low surrogate, the pair encoding one astral code
                   point. *)
                if
                  not
                    (!pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
                then fail "high surrogate not followed by \\u escape";
                pos := !pos + 2;
                let low = hex4 () in
                if not (low >= 0xDC00 && low <= 0xDFFF) then
                  fail "high surrogate not followed by low surrogate";
                add_utf8 buf
                  (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
              end
              else if code >= 0xDC00 && code <= 0xDFFF then
                fail "lone low surrogate"
              else add_utf8 buf code;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(** Trie shape census: the accumulator structures walk their nodes
    into, and the JSON / Prometheus renderings of the resulting
    {!Dset_intf.census}.

    The walkers themselves live with the structures (they need the
    private node types); this module owns everything shape-generic —
    exact distribution accounting, [pat_shape_*] metric families, and
    the census JSON document served at [/debug/shape] and written by
    [patbench analyze].

    Depth convention: the root node is at depth 0 and each child
    pointer followed adds one, so a leaf's depth is exactly the number
    of pointer dereferences (≈ potential cache misses) a search pays
    to reach it. *)

(* Exact per-value counts for one structural quantity.  Values are
   small non-negative ints (depths ≤ key width, branching ≤ arity), so
   a plain count array is exact where a sampled histogram would only
   estimate; [cap] is a safety net, far above any real trie depth. *)
type series = {
  mutable s_count : int;
  mutable s_sum : int;
  mutable s_min : int;
  mutable s_max : int;
  counts : int array;
}

let cap = 4096

let series () =
  { s_count = 0; s_sum = 0; s_min = max_int; s_max = 0; counts = Array.make cap 0 }

let observe s v =
  let v = if v < 0 then 0 else v in
  s.s_count <- s.s_count + 1;
  s.s_sum <- s.s_sum + v;
  if v < s.s_min then s.s_min <- v;
  if v > s.s_max then s.s_max <- v;
  let i = if v >= cap then cap - 1 else v in
  s.counts.(i) <- s.counts.(i) + 1

(* Exact percentile: smallest value whose cumulative count reaches
   [ceil (p * count)]. *)
let percentile s p =
  if s.s_count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p *. float_of_int s.s_count)) in
      if r < 1 then 1 else r
    in
    let acc = ref 0 and ans = ref s.s_max in
    (try
       for v = 0 to cap - 1 do
         acc := !acc + s.counts.(v);
         if !acc >= rank then begin
           ans := v;
           raise Exit
         end
       done
     with Exit -> ());
    !ans
  end

let dist s : Dset_intf.dist =
  if s.s_count = 0 then
    {
      Dset_intf.d_count = 0;
      d_min = 0;
      d_max = 0;
      d_mean = 0.;
      d_p50 = 0;
      d_p90 = 0;
      d_p99 = 0;
    }
  else
    {
      Dset_intf.d_count = s.s_count;
      d_min = s.s_min;
      d_max = s.s_max;
      d_mean = float_of_int s.s_sum /. float_of_int s.s_count;
      d_p50 = percentile s 0.50;
      d_p90 = percentile s 0.90;
      d_p99 = percentile s 0.99;
    }

let hist s =
  let acc = ref [] in
  for v = cap - 1 downto 0 do
    if s.counts.(v) > 0 then acc := (v, s.counts.(v)) :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* The accumulator a census walker feeds. *)

type acc = {
  structure : string;
  mutable internals : int;
  mutable leaves : int;
  mutable sentinels : int;
  mutable keys : int;
  mutable max_depth : int;
  mutable est_words : int;
  leaf_depth : series;
  prefix_len : series;
  branching : series;
  keys_per_leaf : series;
}

let acc ~structure =
  {
    structure;
    internals = 0;
    leaves = 0;
    sentinels = 0;
    keys = 0;
    max_depth = 0;
    est_words = 0;
    leaf_depth = series ();
    prefix_len = series ();
    branching = series ();
    keys_per_leaf = series ();
  }

(** One internal node: [children] is its count of non-empty child
    pointers, [prefix_len] its label length in bits, [words] the
    documented layout estimate of its footprint. *)
let internal a ~depth ~prefix_len ~children ~words =
  a.internals <- a.internals + 1;
  if depth > a.max_depth then a.max_depth <- depth;
  observe a.prefix_len prefix_len;
  observe a.branching children;
  a.est_words <- a.est_words + words

(** One leaf: [keys] user keys stored in it (0 for a sentinel). *)
let leaf a ~depth ~keys ~sentinel ~words =
  a.leaves <- a.leaves + 1;
  if depth > a.max_depth then a.max_depth <- depth;
  if sentinel then a.sentinels <- a.sentinels + 1
  else begin
    a.keys <- a.keys + keys;
    observe a.keys_per_leaf keys;
    (* one depth observation per key, so the leaf-depth distribution
       weights a packed multi-key leaf by the searches that end there *)
    for _ = 1 to keys do
      observe a.leaf_depth depth
    done
  end;
  a.est_words <- a.est_words + words

let word_bytes = Sys.word_size / 8

let finish ?(measured_words = 0) a : Dset_intf.census =
  let words = if measured_words > 0 then measured_words else a.est_words in
  let bytes_per_key =
    if a.keys = 0 then 0.
    else float_of_int (words * word_bytes) /. float_of_int a.keys
  in
  {
    Dset_intf.structure = a.structure;
    internals = a.internals;
    leaves = a.leaves;
    sentinels = a.sentinels;
    keys = a.keys;
    max_depth = a.max_depth;
    leaf_depth = dist a.leaf_depth;
    leaf_depth_hist = hist a.leaf_depth;
    prefix_len = dist a.prefix_len;
    prefix_len_hist = hist a.prefix_len;
    branching = dist a.branching;
    keys_per_leaf = dist a.keys_per_leaf;
    est_words = a.est_words;
    measured_words;
    bytes_per_key;
  }

(* ------------------------------------------------------------------ *)
(* Renderings *)

let dist_to_json (d : Dset_intf.dist) =
  Json.Obj
    [
      ("count", Json.Int d.Dset_intf.d_count);
      ("min", Json.Int d.d_min);
      ("max", Json.Int d.d_max);
      ("mean", Json.Float d.d_mean);
      ("p50", Json.Int d.d_p50);
      ("p90", Json.Int d.d_p90);
      ("p99", Json.Int d.d_p99);
    ]

let hist_to_json h =
  Json.Arr (List.map (fun (v, n) -> Json.Arr [ Json.Int v; Json.Int n ]) h)

let to_json (c : Dset_intf.census) =
  Json.Obj
    [
      ("structure", Json.Str c.Dset_intf.structure);
      ("internals", Json.Int c.internals);
      ("leaves", Json.Int c.leaves);
      ("sentinels", Json.Int c.sentinels);
      ("keys", Json.Int c.keys);
      ("max_depth", Json.Int c.max_depth);
      ("leaf_depth", dist_to_json c.leaf_depth);
      ("leaf_depth_hist", hist_to_json c.leaf_depth_hist);
      ("prefix_len", dist_to_json c.prefix_len);
      ("prefix_len_hist", hist_to_json c.prefix_len_hist);
      ("branching", dist_to_json c.branching);
      ("keys_per_leaf", dist_to_json c.keys_per_leaf);
      ("est_words", Json.Int c.est_words);
      ("measured_words", Json.Int c.measured_words);
      ("est_bytes", Json.Int (c.est_words * word_bytes));
      ("measured_bytes", Json.Int (c.measured_words * word_bytes));
      ("bytes_per_key", Json.Float c.bytes_per_key);
    ]

(** Append the [pat_shape_*] families for one census to an exposition.
    All samples carry a [structure] label so censuses of several
    structures coexist in one scrape. *)
let emit b (c : Dset_intf.census) =
  let s = [ ("structure", c.Dset_intf.structure) ] in
  let g name ?help v =
    Prometheus.gauge b ~name ?help ~labels:s (float_of_int v)
  in
  let kind k v =
    Prometheus.gauge b ~name:"pat_shape_nodes"
      ~help:"Census node counts, by kind"
      ~labels:(s @ [ ("kind", k) ])
      (float_of_int v)
  in
  kind "internal" c.internals;
  kind "leaf" (c.leaves - c.sentinels);
  kind "sentinel" c.sentinels;
  g "pat_shape_keys" ~help:"User keys found by the census walk" c.keys;
  g "pat_shape_max_depth" ~help:"Deepest leaf (pointer dereferences from root)"
    c.max_depth;
  let d name ?help (dd : Dset_intf.dist) =
    let stat k v =
      Prometheus.gauge b ~name ?help ~labels:(s @ [ ("stat", k) ]) v
    in
    stat "min" (float_of_int dd.Dset_intf.d_min);
    stat "mean" dd.d_mean;
    stat "p50" (float_of_int dd.d_p50);
    stat "p90" (float_of_int dd.d_p90);
    stat "p99" (float_of_int dd.d_p99);
    stat "max" (float_of_int dd.d_max)
  in
  d "pat_shape_leaf_depth" ~help:"Depth of user-key leaves" c.leaf_depth;
  d "pat_shape_prefix_len" ~help:"Internal-node label length, bits"
    c.prefix_len;
  d "pat_shape_branching" ~help:"Non-empty children per internal node"
    c.branching;
  d "pat_shape_keys_per_leaf" ~help:"User keys packed per leaf"
    c.keys_per_leaf;
  g "pat_shape_est_bytes" ~help:"Estimated structure footprint (layout accounting)"
    (c.est_words * word_bytes);
  g "pat_shape_measured_bytes"
    ~help:"Measured structure footprint (Obj.reachable_words; 0 = not measured)"
    (c.measured_words * word_bytes);
  Prometheus.gauge b ~name:"pat_shape_bytes_per_key"
    ~help:"Structure bytes per stored key (measured when available)" ~labels:s
    c.bytes_per_key

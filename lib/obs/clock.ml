(** Monotonic nanosecond clock.

    [Unix.gettimeofday] has microsecond resolution and can move backwards
    under NTP adjustment, so every latency measurement in the repository
    goes through this shim instead.  It reads CLOCK_MONOTONIC via the
    noalloc C stub shipped with Bechamel (the same clock its
    micro-benchmarks use), which costs ~25 ns per call and never
    allocates — cheap enough to wrap individual set operations. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(** Elapsed nanoseconds since [start_ns], clamped to be non-negative. *)
let elapsed_ns start_ns =
  let d = now_ns () - start_ns in
  if d < 0 then 0 else d

(** Sampling allocation profiler: [Gc.Memprof] statistics attributed to
    DLS-labeled regions.

    Throughput differences between the tries are part pointer-chasing
    (measured by the descent accounting) and part allocation pressure —
    every CAS-published node is a fresh block, and the GC bill lands on
    whichever opcode allocated it.  This profiler samples allocations at
    a configurable per-word rate and attributes each sample to the
    {e region} the allocating domain had declared via {!set_region}
    (opcode regions in the trie server, stage regions on the event
    loop), plus a lock-free top-sites table keyed by callstack.

    Exported as [patserve_alloc_*] families ({!emit}) and a top-sites
    JSON dump ({!sites_json}, served at [/debug/allocs]).

    Start is fallible by the same contract as {!Runtime}: on a runtime
    without memprof support (OCaml 5.1's multicore runtime ships the
    API but [Gc.Memprof.start] raises) {!start} returns [Error] and the
    caller logs a warning and carries on — {!emit} still renders every
    family, with [patserve_alloc_up 0] saying why they stay flat.

    The allocation callbacks are lock-free and allocation-light: striped
    counter bumps, one DLS read, and a CAS-claimed slot in a fixed
    open-addressing table.  Sampling is disabled during a callback for
    the running thread, so the table update cannot re-enter. *)

(* ------------------------------------------------------------------ *)
(* Regions: small interned table of labels.  Registration ([region]) is
   rare and CAS-retries; [set_region] is the hot call — one atomic load
   when profiling is off, plus a DLS store when on. *)

let max_regions = 32
let region_names = Array.make max_regions "other"
let region_count = Atomic.make 1 (* slot 0 = "other", the default *)
let active = Atomic.make false

(** Intern [name] and return its region id (stable for the process).
    Falls back to region 0 ("other") if the table is full. *)
let rec region name =
  let n = Atomic.get region_count in
  let rec find i = if i >= n then None else if region_names.(i) = name then Some i else find (i + 1) in
  match find 0 with
  | Some i -> i
  | None ->
      if n >= max_regions then 0
      else if Atomic.compare_and_set region_count n (n + 1) then begin
        region_names.(n) <- name;
        n
      end
      else region name

let current_region : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

(** Declare that subsequent allocations on this domain belong to region
    [id] (from {!region}).  No-op while the profiler is down. *)
let[@inline] set_region id =
  if Atomic.get active then Domain.DLS.get current_region := id

(* ------------------------------------------------------------------ *)
(* Metrics.  Striped per-region counters for the write path; [up] says
   whether samples can arrive at all. *)

let up = Atomic.make 0
let samples_by_region = Array.init max_regions (fun _ -> Counter.create ())
let words_by_region = Array.init max_regions (fun _ -> Counter.create ())
let major_samples = Counter.create ()
let sites_dropped = Counter.create ()

(* Top allocation sites: fixed-size open-addressing table keyed by a
   hash of (region, callstack).  A slot is claimed with one CAS on
   [skey]; losers probe on.  The claimed backtrace is stored for the
   dump — the hash only buckets.  Full table = counted drops. *)
type site = {
  skey : int Atomic.t; (* 0 = free; else the packed nonzero hash key *)
  sregion : int Atomic.t;
  ssamples : int Atomic.t;
  swords : int Atomic.t;
  sstack : Printexc.raw_backtrace Atomic.t;
}

let site_slots = 512 (* power of two *)

let sites =
  Array.init site_slots (fun _ ->
      {
        skey = Atomic.make 0;
        sregion = Atomic.make 0;
        ssamples = Atomic.make 0;
        swords = Atomic.make 0;
        sstack = Atomic.make (Printexc.get_callstack 0);
      })

let note_site ~region_id ~samples ~words stack =
  let h = Hashtbl.hash (region_id, Printexc.raw_backtrace_to_string stack) in
  let key = (h lor 1) land max_int in
  (* nonzero *)
  let rec probe i tries =
    if tries >= 8 then Counter.incr sites_dropped
    else
      let s = sites.(i land (site_slots - 1)) in
      let k = Atomic.get s.skey in
      if k = key then begin
        ignore (Atomic.fetch_and_add s.ssamples samples);
        ignore (Atomic.fetch_and_add s.swords words)
      end
      else if k = 0 && Atomic.compare_and_set s.skey 0 key then begin
        Atomic.set s.sregion region_id;
        Atomic.set s.sstack stack;
        ignore (Atomic.fetch_and_add s.ssamples samples);
        ignore (Atomic.fetch_and_add s.swords words)
      end
      else probe (i + 1) (tries + 1)
  in
  probe key 0

let note ~major (a : Gc.Memprof.allocation) =
  let region_id = !(Domain.DLS.get current_region) in
  let samples = a.Gc.Memprof.n_samples in
  (* Each sample stands for ~1/rate allocated words; weighting the
     block size by its sample count keeps the estimator unbiased. *)
  let words = a.Gc.Memprof.size * samples in
  Counter.add samples_by_region.(region_id) samples;
  Counter.add words_by_region.(region_id) words;
  if major then Counter.add major_samples samples;
  note_site ~region_id ~samples ~words a.Gc.Memprof.callstack

let reset () =
  Atomic.set up 0;
  Array.iter Counter.reset samples_by_region;
  Array.iter Counter.reset words_by_region;
  Counter.reset major_samples;
  Counter.reset sites_dropped;
  Array.iter
    (fun s ->
      Atomic.set s.skey 0;
      Atomic.set s.sregion 0;
      Atomic.set s.ssamples 0;
      Atomic.set s.swords 0)
    sites

let total c_arr = Array.fold_left (fun acc c -> acc + Counter.sum c) 0 c_arr

(** Cumulative totals as an alist (tests, JSON reports). *)
let snapshot () =
  let live_sites =
    Array.fold_left
      (fun acc s -> if Atomic.get s.skey <> 0 then acc + 1 else acc)
      0 sites
  in
  [
    ("up", Atomic.get up);
    ("samples", total samples_by_region);
    ("words", total words_by_region);
    ("major_samples", Counter.sum major_samples);
    ("sites", live_sites);
    ("sites_dropped", Counter.sum sites_dropped);
  ]

(** [patserve_alloc_*] families; shaped for
    [Harness.Live.add_extra_producer].  Every family renders even when
    the profiler never started — [patserve_alloc_up 0] marks the flat
    counters as "unsupported runtime", not "no allocations". *)
let emit b =
  let open Prometheus in
  gauge b ~name:"patserve_alloc_up"
    ~help:"1 while the Gc.Memprof sampler is running, 0 otherwise"
    (float_of_int (Atomic.get up));
  counter b ~name:"patserve_alloc_samples_total"
    ~help:"Sampled allocations (all regions)"
    (float_of_int (total samples_by_region));
  counter b ~name:"patserve_alloc_words_total"
    ~help:"Sample-weighted allocated words (all regions)"
    (float_of_int (total words_by_region));
  counter b ~name:"patserve_alloc_major_samples_total"
    ~help:"Sampled allocations landing directly in the major heap"
    (float_of_int (Counter.sum major_samples));
  counter b ~name:"patserve_alloc_sites_dropped_total"
    ~help:"Samples whose callsite missed the fixed-size top-sites table"
    (float_of_int (Counter.sum sites_dropped));
  let n = Atomic.get region_count in
  for i = 0 to n - 1 do
    let labels = [ ("region", region_names.(i)) ] in
    counter b ~name:"patserve_alloc_samples_total"
      ~help:"Sampled allocations (all regions)" ~labels
      (float_of_int (Counter.sum samples_by_region.(i)));
    counter b ~name:"patserve_alloc_words_total"
      ~help:"Sample-weighted allocated words (all regions)" ~labels
      (float_of_int (Counter.sum words_by_region.(i)))
  done

(* One line per frame keeps the dump greppable. *)
let stack_lines stack =
  String.split_on_char '\n' (Printexc.raw_backtrace_to_string stack)
  |> List.filter (fun l -> String.trim l <> "")

(** Top allocation sites by sample-weighted words, as the JSON document
    served at [/debug/allocs]. *)
let sites_json ?(top = 20) () =
  let live =
    Array.to_list sites
    |> List.filter (fun s -> Atomic.get s.skey <> 0)
    |> List.map (fun s ->
           ( Atomic.get s.swords,
             Atomic.get s.ssamples,
             Atomic.get s.sregion,
             Atomic.get s.sstack ))
    |> List.sort (fun (w1, _, _, _) (w2, _, _, _) -> compare w2 w1)
  in
  let take =
    List.filteri (fun i _ -> i < top) live
    |> List.map (fun (words, samples, region_id, stack) ->
           Json.Obj
             [
               ("region", Json.Str region_names.(region_id));
               ("samples", Json.Int samples);
               ("words", Json.Int words);
               ( "stack",
                 Json.Arr (List.map (fun l -> Json.Str l) (stack_lines stack))
               );
             ])
  in
  Json.Obj
    [
      ("up", Json.Int (Atomic.get up));
      ("samples", Json.Int (total samples_by_region));
      ("words", Json.Int (total words_by_region));
      ("sites_dropped", Json.Int (Counter.sum sites_dropped));
      ("sites", Json.Arr take);
    ]

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

type t = { mutable running : bool }

let default_sampling_rate = 1e-4

(** Start sampling.  [Error msg] when the runtime refuses (no memprof
    in this runtime, or a sampler already active); the caller is
    expected to log the message and carry on without. *)
let start ?(sampling_rate = default_sampling_rate) () =
  match
    Gc.Memprof.start ~sampling_rate ~callstack_size:16
      {
        Gc.Memprof.null_tracker with
        alloc_minor =
          (fun a ->
            note ~major:false a;
            None);
        alloc_major =
          (fun a ->
            note ~major:true a;
            None);
      }
  with
  | () ->
      Atomic.set active true;
      Atomic.set up 1;
      Ok { running = true }
  | exception e -> Error (Printexc.to_string e)

let stop t =
  if t.running then begin
    t.running <- false;
    Atomic.set up 0;
    Atomic.set active false;
    try Gc.Memprof.stop () with _ -> ()
  end

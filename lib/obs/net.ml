(** Shared socket/listener plumbing for the in-process network
    endpoints ({!Serve}'s metrics scraper and the patserve set server).

    Both endpoints want the same skeleton: bind a loopback TCP socket
    (port 0 for an ephemeral one, reported back), run one or more
    listener domains that poll with [select] instead of parking in
    [accept] — a domain blocked in [accept] is not reliably woken by
    another domain closing the socket, whereas a polling loop re-checks
    a stop flag on every timeout — and stop idempotently by setting the
    flag, joining the domains, and only then closing the socket so no
    listener ever selects on a dead fd.

    Built on stdlib [Unix] only; loopback-oriented (no TLS, no
    keep-alive management beyond what callers do themselves). *)

let close_noerr fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

(** [write_all fd s] writes the whole string, retrying on short writes;
    silently gives up on a connection error (the peer is gone — there is
    nobody left to report it to). *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  go 0

(** [listen_tcp ~addr ~port ~backlog] binds and listens a TCP socket on
    [addr:port] ([port = 0] binds an ephemeral port) and returns the
    socket together with the actually-bound port.  The socket is closed
    again if any step after creation fails. *)
let listen_tcp ?(nonblocking = false) ~addr ~port ~backlog () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     if nonblocking then Unix.set_nonblock sock;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock backlog
   with e ->
     close_noerr sock;
     raise e);
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (sock, bound_port)

(** A listener: one shared listening socket and [domains] loop domains
    driving it, stoppable exactly once. *)
type t = {
  sock : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  listeners : unit Domain.t list;
}

(** [start ~addr ~port ~backlog ~domains loop] binds the socket and
    spawns [domains] domains each running [loop ~stopping sock].  The
    loop owns its accept strategy (poll-accept-serve for {!Serve}, a
    full event loop for the set server); it must return soon after
    [stopping ()] becomes true and must never close [sock].  With
    [domains > 1] the socket is set non-blocking so concurrent
    accepts race benignly ([EAGAIN]) instead of blocking. *)
let start ?(addr = "127.0.0.1") ?(backlog = 64) ?(domains = 1) ~port loop =
  if domains < 1 then invalid_arg "Net.start: domains must be >= 1";
  let sock, bound_port =
    listen_tcp ~nonblocking:(domains > 1) ~addr ~port ~backlog ()
  in
  let stopping = Atomic.make false in
  let is_stopping () = Atomic.get stopping in
  let listeners =
    List.init domains (fun _ ->
        Domain.spawn (fun () -> loop ~stopping:is_stopping sock))
  in
  { sock; bound_port; stopping; listeners }

let port t = t.bound_port

(** Stop accepting and join every listener domain; idempotent.  The
    socket is closed only after the join so no loop ever selects on a
    dead fd. *)
let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    List.iter Domain.join t.listeners;
    close_noerr t.sock
  end

(** [http_get ~addr ~port ~path] performs one blocking HTTP/1.1 GET
    against a loopback endpoint ({!Serve}, or anything speaking
    Connection: close) and returns [(status, body)].  Minimal by
    design — the loadgen's end-of-run metrics scrape and the tests need
    exactly this, not an HTTP client library. *)
let http_get ?(timeout_s = 5.0) ~addr ~port ~path () =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
      Fun.protect ~finally:(fun () -> close_noerr fd) @@ fun () ->
      match
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
        write_all fd
          (Printf.sprintf
             "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
             path);
        let buf = Bytes.create 65536 in
        let out = Buffer.create 65536 in
        let rec recv () =
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes out buf 0 n;
              recv ()
        in
        recv ();
        Buffer.contents out
      with
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | raw -> (
          let split =
            let rec find i =
              if i + 3 >= String.length raw then None
              else if String.sub raw i 4 = "\r\n\r\n" then Some i
              else find (i + 1)
            in
            find 0
          in
          match split with
          | None -> Error "malformed HTTP response"
          | Some i -> (
              let headers = String.sub raw 0 i in
              let body =
                String.sub raw (i + 4) (String.length raw - i - 4)
              in
              match String.split_on_char ' ' headers with
              | _ :: code :: _ -> (
                  match int_of_string_opt code with
                  | Some status -> Ok (status, body)
                  | None -> Error "malformed HTTP status line")
              | _ -> Error "malformed HTTP status line")))

(** [accept_poll ~stopping ?timeout_s sock] selects on [sock] for up to
    [timeout_s] and accepts one pending connection.  Returns [None] when
    the stop flag is up, nothing arrived within the timeout, or the
    accept itself failed (racing accepters see [EAGAIN] here). *)
let accept_poll ~stopping ?(timeout_s = 0.25) sock =
  if stopping () then None
  else
    match Unix.select [ sock ] [] [] timeout_s with
    | [ _ ], _, _ -> (
        match Unix.accept sock with
        | fd, _ -> Some fd
        | exception Unix.Unix_error (_, _, _) -> None)
    | _ -> None
    | exception Unix.Unix_error (_, _, _) -> None

(** Domain-id striping shared by the sharded metric containers.

    Every container in this library keeps one shard per stripe and maps
    the calling domain to a stripe with [index ()].  The stripe count is
    a power of two at least [Domain.recommended_domain_count], fixed at
    program start: domains alive at the same time then get distinct
    stripes in the common case (OCaml domain ids grow monotonically, so
    two concurrently live domains only collide once more than [count]
    domains have been spawned in total — harness trials spawn fresh
    domains, so long benchmark runs can wrap; the containers are written
    to stay safe, merely approximate, under such collisions unless they
    use atomics). *)

let count =
  let want = max 8 (Domain.recommended_domain_count ()) in
  let rec pow2 n = if n >= want then n else pow2 (n * 2) in
  pow2 8

let mask = count - 1
let index () = (Domain.self () :> int) land mask

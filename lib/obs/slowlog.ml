(** Lock-free "slowest K requests" table with full stage breakdowns.

    The stage histograms say {e how much} tail there is; this table
    keeps the K worst offenders with their complete per-stage
    decomposition (queue wait, decode, trie op, durability barrier,
    reply write) so a p99 spike can be read request-by-request — which
    stage ate the time, on which connection, for which key.

    The table is a fixed array of [entry option Atomic.t] slots plus a
    cached admission floor.  The hot path for a fast request is a
    single [Atomic.get] and compare: only requests slower than the
    current minimum of a full table scan for a victim slot.  Insertion
    replaces the minimum entry via compare-and-set; a failed CAS means
    a concurrent insert succeeded, so retrying is lock-free (some
    insert always makes progress).  A slot's resident total only ever
    grows until {!clear}, so once K entries at least as slow as [x]
    exist, an [x]-or-faster request can never displace them — the
    quiescent table is the exact top-K by total latency. *)

type entry = {
  op : string;  (** opcode name *)
  key : int;
  conn : int;  (** server-side connection id *)
  seq : int;  (** client sequence number *)
  start_ns : int;  (** arrival timestamp, monotonic *)
  total_ns : int;  (** arrival -> reply flushed *)
  stages : (string * int) list;  (** stage name -> duration ns *)
}

type t = {
  slots : entry option Atomic.t array;
  (* Cached minimum total of a full table; -1 while any slot is empty.
     May lag below the true minimum (harmless: one wasted scan) but
     never exceeds it, because resident totals only grow. *)
  floor : int Atomic.t;
  inserted : int Atomic.t;  (** admissions, including replacements *)
}

let create ?(k = 32) () =
  if k < 1 then invalid_arg "Slowlog.create: k must be >= 1";
  {
    slots = Array.init k (fun _ -> Atomic.make None);
    floor = Atomic.make (-1);
    inserted = Atomic.make 0;
  }

let capacity t = Array.length t.slots
let inserted t = Atomic.get t.inserted

(** Current admission floor: a request whose total is [<=] this cannot
    enter the table (-1 while any slot is empty).  Callers on a hot
    path may consult it to skip building an [entry] at all. *)
let admission_floor t = Atomic.get t.floor

(* Scan for the emptiest/minimum slot.  Returns (empty_idx, min_idx,
   min_total); empty_idx = -1 when the table is full. *)
let scan t =
  let empty = ref (-1) and min_idx = ref 0 and min_total = ref max_int in
  Array.iteri
    (fun i slot ->
      match Atomic.get slot with
      | None -> if !empty < 0 then empty := i
      | Some e ->
          if e.total_ns < !min_total then begin
            min_total := e.total_ns;
            min_idx := i
          end)
    t.slots;
  (!empty, !min_idx, !min_total)

let refresh_floor t =
  let empty, _, min_total = scan t in
  if empty < 0 then Atomic.set t.floor min_total

let note t (e : entry) =
  if e.total_ns > Atomic.get t.floor then begin
    let rec attempt () =
      let empty, min_idx, min_total = scan t in
      if empty >= 0 then begin
        let slot = t.slots.(empty) in
        if Atomic.compare_and_set slot None (Some e) then
          Atomic.incr t.inserted
        else attempt ()
      end
      else if e.total_ns > min_total then begin
        let slot = t.slots.(min_idx) in
        match Atomic.get slot with
        (* Only displace the slot if it still holds the scanned minimum:
           since slot values never shrink, that value is still a global
           minimum at CAS time, so the eviction preserves top-K
           exactness.  Replacing any value merely <= e could evict an
           entry that another insert had just promoted into the top-K. *)
        | Some cur as observed when cur.total_ns = min_total ->
            if Atomic.compare_and_set slot observed (Some e) then begin
              Atomic.incr t.inserted;
              refresh_floor t
            end
            else attempt ()
        | _ -> attempt ()
      end
      else
        (* Not slow enough after all; cache the now-known floor so the
           next fast request takes the one-load exit. *)
        Atomic.set t.floor min_total
    in
    attempt ()
  end

(** Resident entries, slowest first.  Quiescent-exact: concurrent
    [note] calls may race the reads but each slot read is atomic. *)
let dump t =
  Array.to_list t.slots
  |> List.filter_map Atomic.get
  |> List.sort (fun a b -> compare b.total_ns a.total_ns)

let clear t =
  Array.iter (fun slot -> Atomic.set slot None) t.slots;
  Atomic.set t.floor (-1);
  Atomic.set t.inserted 0

let entry_to_json (e : entry) =
  Json.Obj
    [
      ("op", Json.Str e.op);
      ("key", Json.Int e.key);
      ("conn", Json.Int e.conn);
      ("seq", Json.Int e.seq);
      ("start_ns", Json.Int e.start_ns);
      ("total_ns", Json.Int e.total_ns);
      ( "stages",
        Json.Obj (List.map (fun (n, d) -> (n, Json.Int d)) e.stages) );
    ]

let to_json t =
  Json.Obj
    [
      ("capacity", Json.Int (capacity t));
      ("inserted", Json.Int (inserted t));
      ("entries", Json.Arr (List.map entry_to_json (dump t)));
    ]

let pp_entry fmt (e : entry) =
  Format.fprintf fmt "%-8s key=%-8d conn=%-4d seq=%-6d total=%9dns  %s" e.op
    e.key e.conn e.seq e.total_ns
    (String.concat " "
       (List.map (fun (n, d) -> Printf.sprintf "%s=%dns" n d) e.stages))

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) (dump t)

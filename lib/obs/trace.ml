(** Fixed-capacity per-domain ring buffer of operation events.

    Post-mortem debugging aid for linearizability-test failures and the
    raw storage of the flight recorder ({!Perfetto}): each domain
    appends events (operation kind, key, outcome, retry count, monotonic
    timestamp — and, for attempt {e spans}, the attempt number, the
    retry cause / CAS site label and a duration) to its own ring with
    plain writes — no synchronization on the hot path — and [dump]
    stitches the rings back together in timestamp order once the run is
    quiescent.  With the default capacity of 1024 events per stripe a
    failing schedule's last few thousand operations are always available
    without the tracing itself changing the schedule much.

    A full ring overwrites its oldest slot; each overwrite is counted in
    a per-ring [dropped] counter (plain single-writer int, like the ring
    itself) so loss is never silent: {!dropped} totals the overwrites
    and both {!to_json} and the benchmark drivers surface it. *)

type kind = Insert | Delete | Member | Replace | Custom of string

let kind_to_string = function
  | Insert -> "insert"
  | Delete -> "delete"
  | Member -> "member"
  | Replace -> "replace"
  | Custom s -> s

type event = {
  kind : kind;
  key : int;
  ok : bool;
  retries : int;
  t_ns : int; (* Clock.now_ns at emission (span start for spans) *)
  domain : int; (* display track id: raw domain id, or a base-offset
                   track for connections / runtime-events rings *)
  attempt : int; (* attempt number within the operation; 0 for instants *)
  site : string; (* retry cause / CAS site label; "" for instants *)
  dur_ns : int; (* span duration; 0 marks an instant event *)
}

(* Track-id namespaces for the Perfetto export.  Plain domain tracks
   use the raw domain id; per-connection request-stage tracks and
   runtime-events (GC) tracks live at high offsets so they can never
   collide with a domain id. *)
let conn_track_base = 10_000
let runtime_track_base = 20_000

let is_span e = e.dur_ns > 0

type ring = {
  mutable next : int; (* slot for the next write *)
  mutable filled : int; (* number of valid slots, <= capacity *)
  mutable dropped : int; (* events overwritten after the ring filled *)
  buf : event array;
}

type t = { rings : ring array; capacity : int }

let default_capacity = 1024

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  (* Round up to a power of two so the wrap is a mask. *)
  let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
  let capacity = pow2 1 in
  let dummy =
    {
      kind = Custom "none";
      key = 0;
      ok = false;
      retries = 0;
      t_ns = 0;
      domain = 0;
      attempt = 0;
      site = "";
      dur_ns = 0;
    }
  in
  {
    rings =
      Array.init Stripe.count (fun _ ->
          { next = 0; filled = 0; dropped = 0; buf = Array.make capacity dummy });
    capacity;
  }

let capacity t = t.capacity

(* The ring is selected by the *writing* domain, not by [e.domain]:
   the event's [domain] field is a display track id that collectors
   (e.g. the runtime-events domain) may set to another domain's track
   while still being the sole writer of their own ring. *)
let[@inline] push t (e : event) =
  let r = Array.unsafe_get t.rings (Stripe.index ()) in
  Array.unsafe_set r.buf r.next e;
  r.next <- (r.next + 1) land (t.capacity - 1);
  if r.filled < t.capacity then r.filled <- r.filled + 1
  else r.dropped <- r.dropped + 1

let emit t kind ~key ~ok ~retries =
  push t
    {
      kind;
      key;
      ok;
      retries;
      t_ns = Clock.now_ns ();
      domain = (Domain.self () :> int);
      attempt = 0;
      site = "";
      dur_ns = 0;
    }

(** [emit_span t kind ~key ~ok ~retries ~attempt ~site ~t0_ns] records
    one completed operation attempt as a closed span: the span starts at
    [t0_ns] (read by the caller when the attempt began) and ends now.
    Recording closed spans instead of separate begin/end events keeps
    the ring overwrite-safe: a span can be dropped whole but never end
    up half-matched. *)
let emit_span t kind ~key ~ok ~retries ~attempt ~site ~t0_ns =
  let dur = Clock.now_ns () - t0_ns in
  push t
    {
      kind;
      key;
      ok;
      retries;
      t_ns = t0_ns;
      domain = (Domain.self () :> int);
      attempt;
      site;
      dur_ns = (if dur < 1 then 1 else dur);
    }

(** [add_span t kind ~track ~key ~ok ~retries ~attempt ~site ~t0_ns
    ~dur_ns] records a closed span with an explicit display track and an
    explicit duration.  Used by collectors that learn both endpoints
    from elsewhere (runtime-events timestamps, request stage stamps)
    and by emitters whose display track is not their own domain id
    (per-connection tracks, GC tracks).  The event still lands in the
    {e writer's} ring, preserving the single-writer discipline. *)
let add_span t kind ~track ~key ~ok ~retries ~attempt ~site ~t0_ns ~dur_ns =
  push t
    {
      kind;
      key;
      ok;
      retries;
      t_ns = t0_ns;
      domain = track;
      attempt;
      site;
      dur_ns = (if dur_ns < 1 then 1 else dur_ns);
    }

(** Total events lost to ring overwrites since creation (or {!clear}). *)
let dropped t =
  Array.fold_left (fun acc r -> acc + r.dropped) 0 t.rings

(** All retained events, oldest first (merged across domains by
    timestamp).  Quiescent use: concurrent emitters may tear the very
    newest slots of their own ring, never older ones. *)
let dump t =
  let per_ring r =
    if r.filled = 0 then []
    else
      let start =
        if r.filled < t.capacity then 0
        else r.next (* full ring: oldest slot is the next overwrite target *)
      in
      List.init r.filled (fun i ->
          r.buf.((start + i) land (t.capacity - 1)))
  in
  Array.to_list t.rings
  |> List.concat_map per_ring
  |> List.stable_sort (fun a b -> compare a.t_ns b.t_ns)

let clear t =
  Array.iter
    (fun r ->
      r.next <- 0;
      r.filled <- 0;
      r.dropped <- 0)
    t.rings

let event_to_json e =
  let base =
    [
      ("t_ns", Json.Int e.t_ns);
      ("domain", Json.Int e.domain);
      ("op", Json.Str (kind_to_string e.kind));
      ("key", Json.Int e.key);
      ("ok", Json.Bool e.ok);
      ("retries", Json.Int e.retries);
    ]
  in
  Json.Obj
    (if is_span e then
       base
       @ [
           ("attempt", Json.Int e.attempt);
           ("site", Json.Str e.site);
           ("dur_ns", Json.Int e.dur_ns);
         ]
     else base)

let to_json t =
  Json.Obj
    [
      ("dropped", Json.Int (dropped t));
      ("events", Json.Arr (List.map event_to_json (dump t)));
    ]

let pp_event fmt e =
  if is_span e then
    Format.fprintf fmt "[%d] d%d %s(%d) attempt %d %s -> %b dur=%dns" e.t_ns
      e.domain (kind_to_string e.kind) e.key e.attempt e.site e.ok e.dur_ns
  else
    Format.fprintf fmt "[%d] d%d %s(%d) -> %b retries=%d" e.t_ns e.domain
      (kind_to_string e.kind) e.key e.ok e.retries

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) (dump t)

(* ------------------------------------------------------------------ *)
(* Global recorder: the flight-recorder sink the instrumented tries
   write attempt spans into.  Same hot-path discipline as the chaos
   sites: with no recorder installed an instrumented code path pays one
   [Atomic.get active] and an untaken branch; [recorder ()] is only
   consulted behind that gate. *)

let active = Atomic.make false
let current : t option Atomic.t = Atomic.make None

let set_recorder = function
  | None ->
      Atomic.set active false;
      Atomic.set current None
  | Some t ->
      Atomic.set current (Some t);
      Atomic.set active true

let recorder () = Atomic.get current

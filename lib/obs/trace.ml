(** Fixed-capacity per-domain ring buffer of operation events.

    Post-mortem debugging aid for linearizability-test failures: each
    domain appends events (operation kind, key, outcome, retry count,
    monotonic timestamp) to its own ring with plain writes — no
    synchronization on the hot path — and [dump] stitches the rings back
    together in timestamp order once the run is quiescent.  With the
    default capacity of 1024 events per stripe a failing schedule's last
    few thousand operations are always available without the tracing
    itself changing the schedule much. *)

type kind = Insert | Delete | Member | Replace | Custom of string

let kind_to_string = function
  | Insert -> "insert"
  | Delete -> "delete"
  | Member -> "member"
  | Replace -> "replace"
  | Custom s -> s

type event = {
  kind : kind;
  key : int;
  ok : bool;
  retries : int;
  t_ns : int; (* Clock.now_ns at emission *)
  domain : int; (* raw domain id of the emitter *)
}

type ring = {
  mutable next : int; (* slot for the next write *)
  mutable filled : int; (* number of valid slots, <= capacity *)
  buf : event array;
}

type t = { rings : ring array; capacity : int }

let default_capacity = 1024

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  (* Round up to a power of two so the wrap is a mask. *)
  let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
  let capacity = pow2 1 in
  let dummy =
    { kind = Custom "none"; key = 0; ok = false; retries = 0; t_ns = 0; domain = 0 }
  in
  {
    rings =
      Array.init Stripe.count (fun _ ->
          { next = 0; filled = 0; buf = Array.make capacity dummy });
    capacity;
  }

let capacity t = t.capacity

let emit t kind ~key ~ok ~retries =
  let d = (Domain.self () :> int) in
  let r = Array.unsafe_get t.rings (d land Stripe.mask) in
  Array.unsafe_set r.buf r.next
    { kind; key; ok; retries; t_ns = Clock.now_ns (); domain = d };
  r.next <- (r.next + 1) land (t.capacity - 1);
  if r.filled < t.capacity then r.filled <- r.filled + 1

(** All retained events, oldest first (merged across domains by
    timestamp).  Quiescent use: concurrent emitters may tear the very
    newest slots of their own ring, never older ones. *)
let dump t =
  let per_ring r =
    if r.filled = 0 then []
    else
      let start =
        if r.filled < t.capacity then 0
        else r.next (* full ring: oldest slot is the next overwrite target *)
      in
      List.init r.filled (fun i ->
          r.buf.((start + i) land (t.capacity - 1)))
  in
  Array.to_list t.rings
  |> List.concat_map per_ring
  |> List.stable_sort (fun a b -> compare a.t_ns b.t_ns)

let clear t =
  Array.iter
    (fun r ->
      r.next <- 0;
      r.filled <- 0)
    t.rings

let event_to_json e =
  Json.Obj
    [
      ("t_ns", Json.Int e.t_ns);
      ("domain", Json.Int e.domain);
      ("op", Json.Str (kind_to_string e.kind));
      ("key", Json.Int e.key);
      ("ok", Json.Bool e.ok);
      ("retries", Json.Int e.retries);
    ]

let to_json t = Json.Arr (List.map event_to_json (dump t))

let pp_event fmt e =
  Format.fprintf fmt "[%d] d%d %s(%d) -> %b retries=%d" e.t_ns e.domain
    (kind_to_string e.kind) e.key e.ok e.retries

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) (dump t)

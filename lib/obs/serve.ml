(** Live metrics scrape endpoint: a dependency-free HTTP/1.1 listener
    on a background domain.

    Serves [GET /metrics] (Prometheus text exposition produced by a
    caller-supplied snapshot closure) and [GET /healthz]; everything
    else is 404.  The producer runs on the listener's own domain and
    reads only merge-on-snapshot state ({!Counter.sum},
    {!Histogram.snapshot}, ...), so scraping a running benchmark
    perturbs the measured domains no more than their existing striped
    writes.

    Built on the shared {!Net} listener plumbing (stdlib [Unix] only):
    one accept loop, one request per connection (Connection: close), no
    keep-alive, no TLS — the target is [curl] and a Prometheus scraper
    on localhost, not the open internet.  [start ~port:0] binds an
    ephemeral port; {!port} reports the bound one (the test-suite
    relies on this). *)

type t = Net.t

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status content_type (String.length body) body

(* Read at most one request's worth of bytes; we only need the request
   line.  A torn read that misses the line yields a 400, never a hang:
   the socket has a receive timeout. *)
let read_request_line fd =
  let buf = Bytes.create 4096 in
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> None
  | n -> (
      let s = Bytes.sub_string buf 0 n in
      match String.index_opt s '\r' with
      | Some i -> Some (String.sub s 0 i)
      | None -> (
          match String.index_opt s '\n' with
          | Some i -> Some (String.sub s 0 i)
          | None -> Some s))
  | exception Unix.Unix_error (_, _, _) -> None

let status_line = function
  | 200 -> "200 OK"
  | 404 -> "404 Not Found"
  | 500 -> "500 Internal Server Error"
  | 503 -> "503 Service Unavailable"
  | c -> Printf.sprintf "%d Status" c

let route ?(routes = []) ?health produce line =
  match String.split_on_char ' ' line with
  | meth :: path :: _ ->
      if meth <> "GET" then
        http_response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
          "method not allowed\n"
      else begin
        (* Strip any query string; scrapers add none but curl users may. *)
        let path =
          match String.index_opt path '?' with
          | Some i -> String.sub path 0 i
          | None -> path
        in
        match path with
        | "/metrics" -> (
            match produce () with
            | body ->
                http_response ~status:"200 OK"
                  ~content_type:Prometheus.content_type body
            | exception e ->
                http_response ~status:"500 Internal Server Error"
                  ~content_type:"text/plain"
                  (Printf.sprintf "snapshot failed: %s\n" (Printexc.to_string e)))
        | "/healthz" -> (
            (* Without a health hook the endpoint is a liveness probe of
               the listener itself; with one it reports the watchdog
               verdict (200 ok / 200 degraded / 503 stalled). *)
            match health with
            | None ->
                http_response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
            | Some h -> (
                match h () with
                | code, body ->
                    http_response ~status:(status_line code)
                      ~content_type:"text/plain" body
                | exception e ->
                    http_response ~status:"500 Internal Server Error"
                      ~content_type:"text/plain"
                      (Printf.sprintf "health check failed: %s\n"
                         (Printexc.to_string e))))
        | p -> (
            match List.assoc_opt p routes with
            | Some f -> (
                match f () with
                | content_type, body ->
                    http_response ~status:"200 OK" ~content_type body
                | exception e ->
                    http_response ~status:"500 Internal Server Error"
                      ~content_type:"text/plain"
                      (Printf.sprintf "route failed: %s\n" (Printexc.to_string e)))
            | None ->
                http_response ~status:"404 Not Found" ~content_type:"text/plain"
                  "not found\n")
      end
  | _ -> http_response ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"

let serve_client ?routes ?health produce fd =
  Fun.protect
    ~finally:(fun () -> Net.close_noerr fd)
    (fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
      match read_request_line fd with
      | None -> ()
      | Some line -> Net.write_all fd (route ?routes ?health produce line))

(* One accepted connection at a time, served inline: scrapes are rare
   (seconds apart) and short, so a per-connection domain would only add
   noise to the very runs the endpoint exists to observe.  The
   select-poll/stop/join skeleton lives in {!Net}. *)
let accept_loop ?routes ?health produce ~stopping sock =
  let rec go () =
    if not (stopping ()) then begin
      (match Net.accept_poll ~stopping sock with
      | Some fd -> ( try serve_client ?routes ?health produce fd with _ -> ())
      | None -> ());
      go ()
    end
  in
  go ()

let start ?(addr = "127.0.0.1") ?routes ?health ~port produce =
  Net.start ~addr ~backlog:16 ~port (accept_loop ?routes ?health produce)

let port = Net.port
let stop = Net.stop

(** Progress watchdog: heartbeats, gauge thresholds, and a structured
    health verdict.

    The paper's structures are non-blocking — some domain always makes
    progress — but the {e server} around them can still stall: a worker
    wedged in a syscall, a WAL group-commit queue backing up behind a
    sick disk, an event loop that stopped iterating.  The watchdog
    turns "is it making progress?" into a machine-readable verdict:

    - {e heartbeats}: each monitored loop registers once and calls the
      returned closure every iteration (one [Atomic.set] — cheap enough
      for a hot event loop).  A heartbeat older than the degraded /
      stalled threshold contributes a reason naming the source.
    - {e gauges}: sampled on evaluation (e.g. WAL queue depth) and
      compared against per-source thresholds.

    [verdict] folds all sources into [Ok], [Degraded reasons] or
    [Stalled reasons]; {!healthz} shapes that for {!Serve}'s [/healthz]
    hook (200 [ok] / 200 [degraded: ...] / 503 [stalled: ...]) with no
    allocation beyond the reason strings on the unhealthy paths.  The
    never-silent {!warnings} counter increments on every transition
    into (or between) unhealthy states, so a stall that recovered
    before anyone scraped still leaves a trace.

    The clock is injectable ([?now]) so the state machine is testable
    with a fake clock; production uses {!Clock.now_ns}. *)

type verdict = Ok | Degraded of string list | Stalled of string list

type source =
  | Heartbeat of { name : string; last_ns : int Atomic.t }
  | Gauge of {
      name : string;
      read : unit -> int;
      degraded_above : int option;
      stalled_above : int option;
    }

type t = {
  now : unit -> int;
  degraded_after_ns : int;
  stalled_after_ns : int;
  sources : source list Atomic.t;
  state : int Atomic.t; (* 0 = ok, 1 = degraded, 2 = stalled *)
  warnings : int Atomic.t;
  monitor_stop : bool Atomic.t;
  mutable monitor : unit Domain.t option;
}

let create ?(degraded_after_s = 1.0) ?(stalled_after_s = 5.0)
    ?(now = Clock.now_ns) () =
  if stalled_after_s < degraded_after_s then
    invalid_arg "Watchdog.create: stalled threshold below degraded";
  {
    now;
    degraded_after_ns = int_of_float (degraded_after_s *. 1e9);
    stalled_after_ns = int_of_float (stalled_after_s *. 1e9);
    sources = Atomic.make [];
    state = Atomic.make 0;
    warnings = Atomic.make 0;
    monitor_stop = Atomic.make false;
    monitor = None;
  }

let add_source t s =
  let rec go () =
    let cur = Atomic.get t.sources in
    if not (Atomic.compare_and_set t.sources cur (s :: cur)) then go ()
  in
  go ()

(** Register a heartbeat source; the returned closure is the beat.
    Registration may happen from any domain (e.g. a worker registering
    itself on its first loop iteration). *)
let heartbeat t ~name =
  let last_ns = Atomic.make (t.now ()) in
  add_source t (Heartbeat { name; last_ns });
  fun () -> Atomic.set last_ns (t.now ())

(** Register a sampled gauge with optional degraded/stalled thresholds
    (strictly-above semantics).  [read] runs on the evaluating domain;
    exceptions count as a stalled reason rather than propagating. *)
let gauge t ~name ?degraded_above ?stalled_above read =
  add_source t (Gauge { name; read; degraded_above; stalled_above })

let verdict t =
  let now = t.now () in
  let degraded = ref [] and stalled = ref [] in
  List.iter
    (fun s ->
      match s with
      | Heartbeat { name; last_ns } ->
          let age = now - Atomic.get last_ns in
          if age > t.stalled_after_ns then
            stalled :=
              Printf.sprintf "%s stalled for %.1fs" name
                (float_of_int age /. 1e9)
              :: !stalled
          else if age > t.degraded_after_ns then
            degraded :=
              Printf.sprintf "%s slow for %.1fs" name
                (float_of_int age /. 1e9)
              :: !degraded
      | Gauge { name; read; degraded_above; stalled_above } -> (
          match read () with
          | v -> (
              match stalled_above with
              | Some s when v > s ->
                  stalled :=
                    Printf.sprintf "%s=%d above stalled threshold %d" name v s
                    :: !stalled
              | _ -> (
                  match degraded_above with
                  | Some d when v > d ->
                      degraded :=
                        Printf.sprintf "%s=%d above degraded threshold %d"
                          name v d
                        :: !degraded
                  | _ -> ()))
          | exception e ->
              stalled :=
                Printf.sprintf "%s probe failed: %s" name (Printexc.to_string e)
                :: !stalled))
    (Atomic.get t.sources);
  let v =
    match (!stalled, !degraded) with
    | [], [] -> Ok
    | [], d -> Degraded (List.rev d)
    | s, _ -> Stalled (List.rev s)
  in
  let level = match v with Ok -> 0 | Degraded _ -> 1 | Stalled _ -> 2 in
  let prev = Atomic.exchange t.state level in
  (* Never-silent: every transition into or between unhealthy states
     bumps the warning counter, even if nobody was scraping. *)
  if level > 0 && level <> prev then Atomic.incr t.warnings;
  v

let state t = Atomic.get t.state
let warnings t = Atomic.get t.warnings

(** [/healthz] hook for {!Serve.start}: status code plus a one-line
    structured body.  The healthy path allocates only the verdict
    evaluation; reason strings are built on unhealthy paths alone. *)
let healthz t () =
  match verdict t with
  | Ok -> (200, "ok\n")
  | Degraded reasons -> (200, "degraded: " ^ String.concat "; " reasons ^ "\n")
  | Stalled reasons -> (503, "stalled: " ^ String.concat "; " reasons ^ "\n")

(* ------------------------------------------------------------------ *)
(* Background monitor: keeps the verdict (and the warnings counter)
   advancing even when no scraper is attached. *)

let start_monitor ?(period_s = 0.25) t =
  if t.monitor = None then begin
    Atomic.set t.monitor_stop false;
    t.monitor <-
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get t.monitor_stop) do
               (try ignore (verdict t) with _ -> ());
               Unix.sleepf period_s
             done))
  end

let stop_monitor t =
  match t.monitor with
  | None -> ()
  | Some d ->
      Atomic.set t.monitor_stop true;
      Domain.join d;
      t.monitor <- None

(* ------------------------------------------------------------------ *)
(* Prometheus families *)

let emit t b =
  (* Refresh before exporting so a scrape never reports a stale state. *)
  ignore (verdict t);
  Prometheus.gauge b ~name:"patserve_watchdog_state"
    ~help:"Current watchdog verdict (0 = ok, 1 = degraded, 2 = stalled)"
    (float_of_int (state t));
  Prometheus.counter b ~name:"patserve_watchdog_warnings_total"
    ~help:"Transitions into degraded or stalled states since start"
    (float_of_int (warnings t));
  let now = t.now () in
  List.iter
    (fun s ->
      match s with
      | Heartbeat { name; last_ns } ->
          Prometheus.gauge b ~name:"patserve_watchdog_heartbeat_age_ns"
            ~labels:[ ("source", name) ]
            (float_of_int (now - Atomic.get last_ns))
      | Gauge _ -> ())
    (Atomic.get t.sources);
  List.iter
    (fun s ->
      match s with
      | Gauge { name; read; _ } ->
          let v = try float_of_int (read ()) with _ -> Float.nan in
          Prometheus.gauge b ~name:"patserve_watchdog_gauge"
            ~labels:[ ("source", name) ]
            v
      | Heartbeat _ -> ())
    (Atomic.get t.sources)

(** CAS-retry attribution profiler.

    The paper explains PAT's contention cliff (Section V, Figure 10) by
    {e where} updates lose time — failed flag CASes, helping flagged
    ancestors, backtracking — but aggregate counters cannot say which
    cause dominates at which attempt depth.  This module histograms
    every retry {e per cause}, using the same code points as the chaos
    injection sites compiled into the tries:

    - {!Flag_cas_lost}: an attempt abandoned because one of its flag
      CASes lost the race (paper lines 87-92 failing);
    - {!Child_cas_lost}: a child CAS whose expected old child was
      already gone (a helper or a conflicting update got there first);
    - {!Flagged_ancestor}: an attempt restarted after helping someone
      else's pending descriptor (lines 109-111);
    - {!Backtrack}: a failed flag phase backed out inside [help]
      (lines 103-106);
    - {!Conflict}: a structural conflict with no descriptor to help
      ([createNode] prefix clash, or a node's info changed between two
      reads of the same attempt).

    For each cause a striped counter totals occurrences and a sharded
    histogram records the attempt number at which the cause struck —
    the "how deep do retry chains go, and why" decomposition quoted in
    EXPERIMENTS.md.  A separate histogram tracks help-chain depth: how
    many consecutive foreign descriptors one operation helped before it
    finally applied (recorded at operation completion, per domain).

    Hot-path discipline (same as [Chaos.point]): with attribution
    disabled, an instrumented site costs one [Atomic.get active] plus an
    untaken branch; all recording state is striped per domain, so
    enabling it adds no shared-memory contention either. *)

type cause =
  | Flag_cas_lost
  | Child_cas_lost
  | Flagged_ancestor
  | Backtrack
  | Conflict

let all_causes =
  [ Flag_cas_lost; Child_cas_lost; Flagged_ancestor; Backtrack; Conflict ]

let cause_name = function
  | Flag_cas_lost -> "flag_cas_lost"
  | Child_cas_lost -> "child_cas_lost"
  | Flagged_ancestor -> "flagged_ancestor"
  | Backtrack -> "backtrack"
  | Conflict -> "conflict"

let cause_index = function
  | Flag_cas_lost -> 0
  | Child_cas_lost -> 1
  | Flagged_ancestor -> 2
  | Backtrack -> 3
  | Conflict -> 4

let n_causes = List.length all_causes

(* ------------------------------------------------------------------ *)
(* Global recording state *)

let active = Atomic.make false
let counts = Array.init n_causes (fun _ -> Counter.create ())
let attempt_hists = Array.init n_causes (fun _ -> Histogram.create ())
let help_depth_hist = Histogram.create ()

(* Per-stripe help-chain depth scratch: helps performed by the current
   operation on this domain.  One padded slot per stripe, single-writer
   like the histogram shards (a domain-id wrap can at worst misattribute
   a depth sample, never crash). *)
let pad = 16
let chain_depth = Array.make (Stripe.count * pad) 0

let reset () =
  Array.iter Counter.reset counts;
  Array.iter Histogram.reset attempt_hists;
  Histogram.reset help_depth_hist;
  Array.fill chain_depth 0 (Array.length chain_depth) 0

let set_enabled b =
  if b && not (Atomic.get active) then reset ();
  Atomic.set active b

let enabled () = Atomic.get active

(* Count the cause and record the attempt number it struck at.  Call
   only when {!active} was observed true; {!mark} is the safe wrapper. *)
let hit c ~attempt =
  let i = cause_index c in
  Counter.incr counts.(i);
  Histogram.record attempt_hists.(i) attempt;
  if c = Flagged_ancestor then begin
    let s = Stripe.index () * pad in
    Array.unsafe_set chain_depth s (Array.unsafe_get chain_depth s + 1)
  end

let[@inline] mark c ~attempt = if Atomic.get active then hit c ~attempt

(* Operation completed (successfully or not): close out this domain's
   help chain.  Depth 0 chains are not recorded — the histogram answers
   "when an operation did help, how long did the chain get". *)
let op_hit () =
  let s = Stripe.index () * pad in
  let d = Array.unsafe_get chain_depth s in
  if d > 0 then begin
    Histogram.record help_depth_hist d;
    Array.unsafe_set chain_depth s 0
  end

let[@inline] op_complete () = if Atomic.get active then op_hit ()

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type summary = {
  cause : cause;
  name : string;
  count : int;
  attempts : Histogram.summary;
      (* distribution of the attempt number at which the cause struck *)
}

let snapshot () =
  List.map
    (fun c ->
      let i = cause_index c in
      {
        cause = c;
        name = cause_name c;
        count = Counter.sum counts.(i);
        attempts = Histogram.snapshot attempt_hists.(i);
      })
    all_causes

let help_depth_summary () = Histogram.snapshot help_depth_hist

let total () =
  List.fold_left (fun acc c -> acc + Counter.sum counts.(cause_index c)) 0
    all_causes

let summary_to_json (s : summary) =
  Json.Obj
    [
      ("cause", Json.Str s.name);
      ("count", Json.Int s.count);
      ( "attempt_depth",
        Json.Obj
          [
            ("count", Json.Int s.attempts.Histogram.count);
            ("max", Json.Int s.attempts.Histogram.max);
            ("mean", Json.Float s.attempts.Histogram.mean);
            ("p50", Json.Int s.attempts.Histogram.p50);
            ("p90", Json.Int s.attempts.Histogram.p90);
            ("p99", Json.Int s.attempts.Histogram.p99);
          ] );
    ]

let to_json () =
  let hd = help_depth_summary () in
  Json.Obj
    [
      ("enabled", Json.Bool (enabled ()));
      ("total_retry_causes", Json.Int (total ()));
      ("by_cause", Json.Arr (List.map summary_to_json (snapshot ())));
      ( "help_chain_depth",
        Json.Obj
          [
            ("count", Json.Int hd.Histogram.count);
            ("max", Json.Int hd.Histogram.max);
            ("mean", Json.Float hd.Histogram.mean);
            ("p50", Json.Int hd.Histogram.p50);
            ("p99", Json.Int hd.Histogram.p99);
          ] );
    ]

let pp fmt () =
  Format.fprintf fmt "%-18s %10s %8s %8s %8s@." "cause" "count" "p50" "p90"
    "max";
  List.iter
    (fun s ->
      Format.fprintf fmt "%-18s %10d %8d %8d %8d@." s.name s.count
        s.attempts.Histogram.p50 s.attempts.Histogram.p90
        s.attempts.Histogram.max)
    (snapshot ());
  let hd = help_depth_summary () in
  Format.fprintf fmt "%-18s %10d %8d %8d %8d@." "help_chain_depth"
    hd.Histogram.count hd.Histogram.p50 hd.Histogram.p90 hd.Histogram.max

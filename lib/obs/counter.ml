(** Cache-line-padded, per-domain striped counter.

    The previous instrumentation shared one [Atomic.t] between all
    domains, so enabling stats created the very contention hotspot the
    stats were meant to measure.  Here each domain bumps its own stripe
    (selected by domain id, see {!Stripe}) with an uncontended
    fetch-and-add; readers merge the stripes on snapshot.

    Padding: an [int Atomic.t] is a two-word block, so atomics allocated
    back to back share cache lines.  Each stripe therefore keeps its
    atomic alive next to a 14-word pad array allocated immediately after
    it; the pair fills ≥ 2 cache lines, which keeps the atomics of
    different stripes apart both in the minor heap and after they are
    promoted together. *)

type slot = { value : int Atomic.t; _pad : int array }

type t = slot array

let make_slot () =
  let value = Atomic.make 0 in
  { value; _pad = Array.make 14 0 }

let create () : t = Array.init Stripe.count (fun _ -> make_slot ())

let[@inline] incr (t : t) =
  ignore (Atomic.fetch_and_add (Array.unsafe_get t (Stripe.index ())).value 1)

let[@inline] add (t : t) n =
  ignore (Atomic.fetch_and_add (Array.unsafe_get t (Stripe.index ())).value n)

(** Merge-on-snapshot sum of all stripes.  Linearizable per stripe; the
    total is a consistent-enough view for statistics (exact in quiescent
    states). *)
let sum (t : t) = Array.fold_left (fun acc s -> acc + Atomic.get s.value) 0 t

let reset (t : t) = Array.iter (fun s -> Atomic.set s.value 0) t

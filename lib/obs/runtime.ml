(** OCaml 5 runtime-events fusion: GC and stop-the-world pauses as
    Perfetto spans and Prometheus families.

    A latency spike in a non-blocking structure has three candidate
    culprits — contention (visible as trie attempt spans), durability
    (WAL group-commit spans) and the runtime itself (GC pauses, which
    until now were invisible).  This collector closes the gap: a
    dedicated domain subscribes to the process's own [Runtime_events]
    ring buffers and converts minor collections, major slices and STW
    barriers into

    - closed spans pushed into the global {!Trace} recorder on
      per-ring-domain tracks ([runtime-N], see
      {!Trace.runtime_track_base}), so they land in the {e same}
      Perfetto file as trie attempts and request stages — one
      timeline, three layers;
    - {!Histogram}/counter families exported as [patserve_gc_*].

    [Runtime_events] timestamps are monotonic-clock nanoseconds, the
    same timebase as {!Clock.now_ns}, so no re-anchoring is needed.

    Start is fallible by design ([start : unit -> (t, string) result]):
    a runtime built without events support, a full tmpdir, or a second
    consumer must degrade to a logged warning, never crash the server.
    Ring-buffer overruns surface through the [lost_events] callback and
    are exported as [patserve_gc_events_lost_total] — loss is counted,
    never silent. *)

module RE = Runtime_events

(* ------------------------------------------------------------------ *)
(* Global metrics, [Server.Metrics]-style: one collector per process,
   tests reset between runs.  Histograms are only written by the
   collector domain; the striped type is reused for uniformity. *)

let minor_pause_ns = Histogram.create ()
let major_slice_ns = Histogram.create ()
let stw_pause_ns = Histogram.create ()
let minor_collections = Atomic.make 0
let major_slices = Atomic.make 0
let stw_pauses = Atomic.make 0
let minor_allocated_words = Atomic.make 0
let minor_promoted_words = Atomic.make 0
let events_lost = Atomic.make 0

let reset () =
  Histogram.reset minor_pause_ns;
  Histogram.reset major_slice_ns;
  Histogram.reset stw_pause_ns;
  List.iter
    (fun a -> Atomic.set a 0)
    [
      minor_collections; major_slices; stw_pauses; minor_allocated_words;
      minor_promoted_words; events_lost;
    ]

let snapshot () =
  [
    ("minor_collections", Atomic.get minor_collections);
    ("major_slices", Atomic.get major_slices);
    ("stw_pauses", Atomic.get stw_pauses);
    ("minor_allocated_words", Atomic.get minor_allocated_words);
    ("minor_promoted_words", Atomic.get minor_promoted_words);
    ("events_lost", Atomic.get events_lost);
  ]

(** [patserve_gc_*] families; shaped for
    [Harness.Live.add_extra_producer]. *)
let emit b =
  let open Prometheus in
  histogram_summary b ~name:"patserve_gc_minor_pause_ns"
    ~help:"Minor collection pause, nanoseconds (runtime events)"
    (Histogram.snapshot minor_pause_ns);
  histogram_summary b ~name:"patserve_gc_major_slice_ns"
    ~help:"Major GC slice duration, nanoseconds (runtime events)"
    (Histogram.snapshot major_slice_ns);
  histogram_summary b ~name:"patserve_gc_stw_pause_ns"
    ~help:"Stop-the-world phase duration, nanoseconds (runtime events)"
    (Histogram.snapshot stw_pause_ns);
  counter b ~name:"patserve_gc_minor_collections_total"
    ~help:"Minor collections observed via runtime events"
    (float_of_int (Atomic.get minor_collections));
  counter b ~name:"patserve_gc_major_slices_total"
    ~help:"Major GC slices observed via runtime events"
    (float_of_int (Atomic.get major_slices));
  counter b ~name:"patserve_gc_stw_pauses_total"
    ~help:"Stop-the-world phases observed via runtime events"
    (float_of_int (Atomic.get stw_pauses));
  counter b ~name:"patserve_gc_minor_allocated_words_total"
    ~help:"Words allocated in minor heaps (runtime events counter)"
    (float_of_int (Atomic.get minor_allocated_words));
  counter b ~name:"patserve_gc_minor_promoted_words_total"
    ~help:"Words promoted out of minor heaps (runtime events counter)"
    (float_of_int (Atomic.get minor_promoted_words));
  counter b ~name:"patserve_gc_events_lost_total"
    ~help:"Runtime events dropped to ring-buffer overrun (never silent)"
    (float_of_int (Atomic.get events_lost))

(* ------------------------------------------------------------------ *)
(* Phase classification by name, so the interesting set is explicit and
   additions to the runtime's phase enum are ignored rather than
   mis-binned. *)

type cls = Minor | Major_slice | Stw

let classify phase =
  match RE.runtime_phase_name phase with
  | "minor" -> Some Minor
  | "major_slice" -> Some Major_slice
  | name
    when String.length name >= 4
         && (String.sub name 0 4 = "stw_" || name = "stw") ->
      Some Stw
  | "major_gc_stw" | "minor_gc_stw" -> Some Stw
  | _ -> None

let record_span cls ~ring ~name ~t0_ns ~dur_ns =
  (match cls with
  | Minor ->
      Histogram.record minor_pause_ns dur_ns;
      Atomic.incr minor_collections
  | Major_slice ->
      Histogram.record major_slice_ns dur_ns;
      Atomic.incr major_slices
  | Stw ->
      Histogram.record stw_pause_ns dur_ns;
      Atomic.incr stw_pauses);
  match Trace.recorder () with
  | Some rec_ ->
      Trace.add_span rec_ (Trace.Custom name)
        ~track:(Trace.runtime_track_base + ring)
        ~key:0 ~ok:true ~retries:0 ~attempt:0 ~site:("rt:" ^ name) ~t0_ns
        ~dur_ns
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Collector *)

type t = {
  cursor : RE.cursor;
  stopping : bool Atomic.t;
  dom : unit Domain.t;
}

let ns_of_ts ts = Int64.to_int (RE.Timestamp.to_int64 ts)

let make_callbacks () =
  (* Open-phase begin timestamps, keyed by (ring domain, phase name).
     Only the collector domain touches this table. *)
  let open_phases : (int * string, int) Hashtbl.t = Hashtbl.create 64 in
  let runtime_begin ring ts phase =
    match classify phase with
    | Some _ ->
        Hashtbl.replace open_phases (ring, RE.runtime_phase_name phase)
          (ns_of_ts ts)
    | None -> ()
  in
  let runtime_end ring ts phase =
    match classify phase with
    | Some cls -> (
        let name = RE.runtime_phase_name phase in
        match Hashtbl.find_opt open_phases (ring, name) with
        | Some t0_ns ->
            Hashtbl.remove open_phases (ring, name);
            let dur_ns = ns_of_ts ts - t0_ns in
            record_span cls ~ring ~name ~t0_ns ~dur_ns
        | None -> () (* begin predates the cursor; drop the half-span *))
    | None -> ()
  in
  let runtime_counter _ring _ts counter v =
    match RE.runtime_counter_name counter with
    | "minor_allocated" ->
        ignore (Atomic.fetch_and_add minor_allocated_words v)
    | "minor_promoted" -> ignore (Atomic.fetch_and_add minor_promoted_words v)
    | _ -> ()
  in
  let lost_events _ring n = ignore (Atomic.fetch_and_add events_lost n) in
  RE.Callbacks.create ~runtime_begin ~runtime_end ~runtime_counter
    ~lost_events ()

let default_poll_interval_s = 0.005

(** Start the runtime-events subscription and the collector domain.
    [Error msg] when the runtime refuses ([start] or cursor creation
    raised); the caller is expected to log and carry on. *)
let start ?(poll_interval_s = default_poll_interval_s) () =
  match
    RE.start ();
    RE.create_cursor None
  with
  | cursor ->
      let stopping = Atomic.make false in
      let dom =
        Domain.spawn (fun () ->
            let callbacks = make_callbacks () in
            while not (Atomic.get stopping) do
              (try ignore (RE.read_poll cursor callbacks None)
               with _ -> ());
              Unix.sleepf poll_interval_s
            done;
            (* Final drain so spans emitted while stopping are kept. *)
            try ignore (RE.read_poll cursor callbacks None) with _ -> ())
      in
      Ok { cursor; stopping; dom }
  | exception e -> Error (Printexc.to_string e)

let stop t =
  Atomic.set t.stopping true;
  Domain.join t.dom;
  (try RE.free_cursor t.cursor with _ -> ());
  try RE.pause () with _ -> ()

(** Chrome trace-event serialization of {!Trace} rings.

    Converts the flight recorder's merged per-domain rings into the
    Trace Event Format JSON that Perfetto and [chrome://tracing] load
    directly: one track (tid) per OCaml domain, one complete ("X") event
    per recorded operation-attempt span, and instant ("i") events for
    the point records.  Timestamps in the format are {e microseconds};
    we emit fractional microseconds to keep the nanosecond resolution of
    {!Clock}.

    The emitted document is an object (not the bare array variant of the
    format) so it can also carry [displayTimeUnit] and the ring-overflow
    drop count as top-level metadata. *)

let us_of_ns ns = float_of_int ns /. 1000.0

let span_name (e : Trace.event) =
  (* Trie attempt spans carry attempt >= 1; stage / runtime spans use
     attempt 0 and read better without the "#0" suffix. *)
  if e.Trace.attempt = 0 then Trace.kind_to_string e.Trace.kind
  else Printf.sprintf "%s#%d" (Trace.kind_to_string e.Trace.kind) e.Trace.attempt

(* The category groups the three span layers so Perfetto can filter
   them independently: trie [attempt] spans, per-request [stage] spans
   on connection tracks, [runtime] GC/STW spans, and [wal] group-commit
   spans.  Derived from the site label the emitters already set. *)
let category (e : Trace.event) =
  if not (Trace.is_span e) then "event"
  else
    let site = e.Trace.site in
    let prefixed p =
      String.length site >= String.length p
      && String.sub site 0 (String.length p) = p
    in
    if prefixed "rt:" then "runtime"
    else if prefixed "stage:" then "stage"
    else if site = "request" then "request"
    else if site = "wal" then "wal"
    else "attempt"

let event_to_json (e : Trace.event) =
  let common =
    [
      ("cat", Json.Str (category e));
      ("ts", Json.Float (us_of_ns e.Trace.t_ns));
      ("pid", Json.Int 0);
      ("tid", Json.Int e.Trace.domain);
      ( "args",
        Json.Obj
          [
            ("key", Json.Int e.Trace.key);
            ("ok", Json.Bool e.Trace.ok);
            ("retries", Json.Int e.Trace.retries);
            ("site", Json.Str e.Trace.site);
          ] );
    ]
  in
  if Trace.is_span e then
    Json.Obj
      (("name", Json.Str (span_name e))
      :: ("ph", Json.Str "X")
      :: ("dur", Json.Float (us_of_ns e.Trace.dur_ns))
      :: common)
  else
    Json.Obj
      (("name", Json.Str (Trace.kind_to_string e.Trace.kind))
      :: ("ph", Json.Str "i")
      :: ("s", Json.Str "t")
      :: common)

(* One metadata event per distinct track names it, which is what makes
   Perfetto render named tracks instead of bare tids.  Low tids are
   OCaml domains; the offset namespaces ({!Trace.conn_track_base},
   {!Trace.runtime_track_base}) hold per-connection request-stage
   tracks and per-ring runtime-events (GC) tracks. *)
let track_name tid =
  if tid >= Trace.runtime_track_base then
    Printf.sprintf "runtime-%d" (tid - Trace.runtime_track_base)
  else if tid >= Trace.conn_track_base then
    Printf.sprintf "conn-%d" (tid - Trace.conn_track_base)
  else Printf.sprintf "domain-%d" tid

let thread_name_event tid =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str (track_name tid)) ]);
    ]

let to_json t =
  let events = Trace.dump t in
  let domains =
    List.sort_uniq compare (List.map (fun e -> e.Trace.domain) events)
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr
          (List.map thread_name_event domains @ List.map event_to_json events)
      );
      ("displayTimeUnit", Json.Str "ns");
      ("otherData", Json.Obj [ ("dropped_events", Json.Int (Trace.dropped t)) ]);
    ]

let write ~path t = Json.to_file path (to_json t)

(* ------------------------------------------------------------------ *)
(* Schema validation, shared by the test-suite and the CI trace step:
   checks the structural subset of the Trace Event Format we rely on
   Perfetto accepting. *)

let validate (doc : Json.t) : (unit, string) result =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let num = function Json.Int _ | Json.Float _ -> true | _ -> false in
  let check_event i e =
    let ctx = Printf.sprintf "traceEvents[%d]" i in
    match e with
    | Json.Obj _ -> (
        (match Json.member e "name" with
        | Some (Json.Str _) -> ()
        | _ -> err "%s: missing string \"name\"" ctx);
        (match Json.member e "pid" with
        | Some (Json.Int _) -> ()
        | _ -> err "%s: missing int \"pid\"" ctx);
        (match Json.member e "tid" with
        | Some (Json.Int _) -> ()
        | _ -> err "%s: missing int \"tid\"" ctx);
        match Json.member e "ph" with
        | Some (Json.Str "M") -> () (* metadata events carry no ts *)
        | Some (Json.Str ph) -> (
            (match Json.member e "ts" with
            | Some ts when num ts -> ()
            | _ -> err "%s: missing numeric \"ts\"" ctx);
            match ph with
            | "X" -> (
                match Json.member e "dur" with
                | Some (Json.Int d) when d >= 0 -> ()
                | Some (Json.Float d) when d >= 0.0 -> ()
                | _ -> err "%s: \"X\" event lacks non-negative \"dur\"" ctx)
            | "i" | "B" | "E" | "C" -> ()
            | ph -> err "%s: unknown phase %S" ctx ph)
        | _ -> err "%s: missing string \"ph\"" ctx)
    | _ -> err "%s: not an object" ctx
  in
  (match Json.member doc "traceEvents" with
  | Some (Json.Arr events) -> List.iteri check_event events
  | Some _ -> err "\"traceEvents\" is not an array"
  | None -> err "missing \"traceEvents\"");
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

(** Observability toolkit for the Patricia-trie reproduction.

    The paper's whole story is contention behaviour — help rates, CAS
    retries, tail latencies under flag conflicts — yet naive
    instrumentation (shared atomic counters, timestamped logs behind a
    lock) becomes the hotspot it is supposed to measure.  Everything in
    this library is therefore sharded per domain on the write path and
    merged only on snapshot:

    - {!Counter}: cache-line-padded striped counters;
    - {!Histogram}: log-bucketed latency/retry histograms with
      p50/p90/p99/p99.9 extraction;
    - {!Trace}: fixed-capacity per-domain ring buffers of operation
      events and attempt spans for post-mortem debugging and the flight
      recorder (overflow is counted, never silent);
    - {!Perfetto}: Chrome trace-event JSON export of the trace rings,
      viewable in Perfetto / [chrome://tracing], one track per domain;
    - {!Attribution}: CAS-retry attribution — per-cause retry counters
      and attempt-depth histograms plus help-chain depth;
    - {!Prometheus}: text exposition (0.0.4) renderer for counters,
      gauges and histogram quantiles;
    - {!Net}: shared loopback TCP listener plumbing (ephemeral-port
      bind, select-polled accept, idempotent stop) used by {!Serve} and
      the patserve set server;
    - {!Serve}: dependency-free HTTP listener on a background domain
      serving [/metrics], [/healthz] (optionally wired to a
      {!Watchdog} verdict) and caller-supplied debug routes from a
      snapshot;
    - {!Slowlog}: lock-free slowest-K request table with per-stage
      latency breakdowns;
    - {!Watchdog}: heartbeat/gauge progress watchdog producing the
      structured ok/degraded/stalled health verdict;
    - {!Runtime}: OCaml 5 runtime-events collector fusing GC/STW
      pauses into the flight-recorder trace and [patserve_gc_*]
      metric families;
    - {!Shape}: trie shape census — exact depth/branching/footprint
      distributions accumulated by per-structure walkers, rendered as
      [pat_shape_*] families and the [/debug/shape] JSON document;
    - {!Memprof}: [Gc.Memprof] sampling allocation profiler attributing
      samples to DLS-labeled regions, rendered as [patserve_alloc_*]
      families and the [/debug/allocs] top-sites dump (start degrades
      to a warning on runtimes without memprof support);
    - {!Instrument}: a functor adding latency histograms to any
      [Dset_intf.CONCURRENT_SET] without touching its internals;
    - {!Json}: a dependency-free JSON emitter/parser for the
      machine-readable metrics files written by the benchmark drivers;
    - {!Clock}: the monotonic nanosecond clock behind all timestamps. *)

module Clock = Clock
module Json = Json
module Stripe = Stripe
module Counter = Counter
module Histogram = Histogram
module Trace = Trace
module Perfetto = Perfetto
module Attribution = Attribution
module Prometheus = Prometheus
module Net = Net
module Serve = Serve
module Slowlog = Slowlog
module Watchdog = Watchdog
module Runtime = Runtime
module Shape = Shape
module Memprof = Memprof

module type INSTRUMENTED = Instrument_impl.INSTRUMENTED

module Instrument (S : Dset_intf.CONCURRENT_SET) :
  INSTRUMENTED with type underlying = S.t =
  Instrument_impl.Make (S)

(** Latency instrumentation for any [Dset_intf.CONCURRENT_SET].

    [Make (S)] is a drop-in concurrent set that times every [insert],
    [delete] and [member] with the monotonic clock and records the
    nanosecond latency into a per-operation sharded {!Histogram} — the
    structure's internals are untouched, so all six structures of the
    paper's evaluation (PAT, BST, 4-ST, SL, AVL, Ctrie) gain latency
    percentiles through the one signature they already share. *)

type op = [ `Insert | `Delete | `Member ]

let op_to_string = function
  | `Insert -> "insert"
  | `Delete -> "delete"
  | `Member -> "member"

module type INSTRUMENTED = sig
  include Dset_intf.CONCURRENT_SET

  type underlying

  val inner : t -> underlying
  (** The wrapped structure, for operations outside the common signature. *)

  val latency : t -> op -> Histogram.t
  (** The live histogram of one operation's latencies, in nanoseconds. *)

  val latency_summary : t -> op -> Histogram.summary

  val latency_summaries : t -> (string * Histogram.summary) list
  (** [("insert", s); ("delete", s); ("member", s)] — snapshot of all
      three operation histograms. *)

  val reset_latencies : t -> unit
  (** Zero all histograms, e.g. after prefill/warm-up so percentiles
      reflect only the timed window. *)
end

module Make (S : Dset_intf.CONCURRENT_SET) :
  INSTRUMENTED with type underlying = S.t = struct
  type underlying = S.t

  type t = {
    inner : S.t;
    ins : Histogram.t;
    del : Histogram.t;
    mem : Histogram.t;
  }

  let name = S.name

  let create ~universe () =
    {
      inner = S.create ~universe ();
      ins = Histogram.create ();
      del = Histogram.create ();
      mem = Histogram.create ();
    }

  let[@inline] timed h f x k =
    let t0 = Clock.now_ns () in
    let r = f x k in
    Histogram.record h (Clock.now_ns () - t0);
    r

  let insert t k = timed t.ins S.insert t.inner k
  let delete t k = timed t.del S.delete t.inner k
  let member t k = timed t.mem S.member t.inner k
  let to_list t = S.to_list t.inner
  let size t = S.size t.inner
  let census t = S.census t.inner
  let descent_stats t = S.descent_stats t.inner
  let snapshot t = S.snapshot t.inner
  let inner t = t.inner

  let latency t = function
    | `Insert -> t.ins
    | `Delete -> t.del
    | `Member -> t.mem

  let latency_summary t op = Histogram.snapshot (latency t op)

  let latency_summaries t =
    List.map
      (fun op -> (op_to_string op, latency_summary t op))
      [ `Insert; `Delete; `Member ]

  let reset_latencies t =
    Histogram.reset t.ins;
    Histogram.reset t.del;
    Histogram.reset t.mem
end

(** patserve: a pipelined binary-protocol set server over any
    {!Dset_intf.CONCURRENT_SET_WITH_REPLACE}.

    The ROADMAP's north star is a system that serves heavy traffic, and
    a non-blocking trie earns its keep precisely when many clients hit
    it at once: this module puts the paper's structure behind a socket.
    [start] runs N worker domains sharing one listening socket; each
    worker drives its accepted connections with a select-based event
    loop — per-connection read buffering (the {!Protocol.Reader}
    defragmenter), opportunistic batched writes, and as many pipelined
    requests per read as the client managed to put on the wire.  All
    workers call straight into the same structure instance; the trie's
    lock-freedom is what makes that safe without a lock around the
    store.

    Observability and fault injection ride along: per-opcode striped
    counters and latency histograms ({!Metrics}, exported through
    [Harness.Live.set_extra_producer]), a flight-recorder span per
    request, and [Chaos] crossings at the four network-path sites
    (accept, read, write, decode) so the chaos policies can perturb the
    serving path exactly like they perturb the trie's CAS sites.

    Submodules: {!Protocol} (the wire format), {!Client} (a blocking
    pipelined client), {!Loadgen} (a multi-domain closed-loop load
    generator), {!Loopback} (an adapter that makes a served set look
    like an ordinary [CONCURRENT_SET_WITH_REPLACE] again, for running
    generic tests over the network path). *)

module Protocol = Protocol
module Client = Client
module Loadgen = Loadgen

(* ------------------------------------------------------------------ *)
(* Per-opcode serving metrics.  Global rather than per-server — a
   process hosts one logical server; tests reset between runs.  Striped
   on the write path like every other hot-path counter in the repo. *)

module Metrics = struct
  let op_names =
    [|
      "insert"; "delete"; "member"; "replace"; "size"; "batch"; "subscribe";
      "logack"; "hashcheck"; "promote"; "scan"; "range";
    |]
  let requests = Array.init Protocol.op_count (fun _ -> Obs.Counter.create ())
  let latency = Array.init Protocol.op_count (fun _ -> Obs.Histogram.create ())
  let accepted = Obs.Counter.create ()
  let op_errors = Obs.Counter.create ()
  let protocol_errors = Obs.Counter.create ()

  (* Overload-protection counters: connections shed at accept
     (BUSY-and-close at --max-conns), slow readers evicted at the hard
     buffer cap, BUSY replies of either kind, idle connections reaped,
     and connections closed on a write error (EPIPE/ECONNRESET from a
     peer that went away mid-reply). *)
  let shed = Obs.Counter.create ()
  let evicted_slow = Obs.Counter.create ()
  let busy_replies = Obs.Counter.create ()
  let idle_reaped = Obs.Counter.create ()
  let conn_errors = Obs.Counter.create ()

  (* Streaming-scan counters: pages served (one per SCAN/RANGE
     request), keys streamed inside them, and pages that exhausted the
     walk (complete flag set — the end of one logical scan). *)
  let scan_pages = Obs.Counter.create ()
  let scan_keys = Obs.Counter.create ()
  let scan_complete = Obs.Counter.create ()

  (* Buffered-output gauge: each worker publishes the total unflushed
     response bytes across its connections once per event-loop
     iteration; the exposition reports the sum.  Slots are registered
     once per worker (mutex) and written with one atomic store. *)
  let buffer_slots : int Atomic.t list ref = ref []
  let buffer_slots_mu = Mutex.create ()

  let register_buffer_slot () =
    let slot = Atomic.make 0 in
    Mutex.lock buffer_slots_mu;
    buffer_slots := slot :: !buffer_slots;
    Mutex.unlock buffer_slots_mu;
    slot

  let conn_buffer_bytes () =
    Mutex.lock buffer_slots_mu;
    let total =
      List.fold_left (fun acc a -> acc + Atomic.get a) 0 !buffer_slots
    in
    Mutex.unlock buffer_slots_mu;
    total

  (* Per-request latency decomposition (the "latency forensics" layer):
     queue wait (arrival -> decode start, which for pipelined frames
     includes time spent behind earlier frames of the same window),
     frame decode, trie op (incl. reply encode), durability barrier,
     reply write, and end-to-end total (arrival -> reply flushed).  The
     five stages telescope: their sum equals the total exactly, so
     per-request stage sums are <= any client-observed round trip. *)
  let stage_names = [| "queue"; "decode"; "trie"; "barrier"; "write"; "total" |]
  let stage_count = Array.length stage_names

  let stages =
    Array.init Protocol.op_count (fun _ ->
        Array.init stage_count (fun _ -> Obs.Histogram.create ()))

  let record_stages idx ~queue ~decode ~trie ~barrier ~write ~total =
    let h = stages.(idx) in
    Obs.Histogram.record h.(0) queue;
    Obs.Histogram.record h.(1) decode;
    Obs.Histogram.record h.(2) trie;
    Obs.Histogram.record h.(3) barrier;
    Obs.Histogram.record h.(4) write;
    Obs.Histogram.record h.(5) total

  let record idx dt =
    Obs.Counter.incr requests.(idx);
    Obs.Histogram.record latency.(idx) dt

  let reset () =
    Array.iter Obs.Counter.reset requests;
    Array.iter Obs.Histogram.reset latency;
    Array.iter (Array.iter Obs.Histogram.reset) stages;
    Obs.Counter.reset accepted;
    Obs.Counter.reset op_errors;
    Obs.Counter.reset protocol_errors;
    Obs.Counter.reset shed;
    Obs.Counter.reset evicted_slow;
    Obs.Counter.reset busy_replies;
    Obs.Counter.reset idle_reaped;
    Obs.Counter.reset conn_errors;
    Obs.Counter.reset scan_pages;
    Obs.Counter.reset scan_keys;
    Obs.Counter.reset scan_complete;
    Mutex.lock buffer_slots_mu;
    buffer_slots := [];
    Mutex.unlock buffer_slots_mu

  (** Cumulative counters as an alist (tests, JSON reports). *)
  let snapshot () =
    let per_op =
      Array.to_list
        (Array.mapi
           (fun i name -> (name, Obs.Counter.sum requests.(i)))
           op_names)
    in
    per_op
    @ [
        ("accepted", Obs.Counter.sum accepted);
        ("op_errors", Obs.Counter.sum op_errors);
        ("protocol_errors", Obs.Counter.sum protocol_errors);
        ("shed", Obs.Counter.sum shed);
        ("evicted_slow", Obs.Counter.sum evicted_slow);
        ("busy_replies", Obs.Counter.sum busy_replies);
        ("idle_reaped", Obs.Counter.sum idle_reaped);
        ("conn_errors", Obs.Counter.sum conn_errors);
        ("conn_buffer_bytes", conn_buffer_bytes ());
        ("scan_pages", Obs.Counter.sum scan_pages);
        ("scan_keys", Obs.Counter.sum scan_keys);
        ("scan_complete", Obs.Counter.sum scan_complete);
      ]

  (** Append the patserve metric families to an exposition; the shape
      [Harness.Live.set_extra_producer] expects. *)
  let emit b =
    let open Obs.Prometheus in
    Array.iteri
      (fun i name ->
        counter b ~name:"patserve_requests_total"
          ~help:"Requests served, by opcode" ~labels:[ ("op", name) ]
          (float_of_int (Obs.Counter.sum requests.(i))))
      op_names;
    Array.iteri
      (fun i name ->
        histogram_summary b ~name:"patserve_request_latency_ns"
          ~help:"Server-side request handling latency, by opcode"
          ~labels:[ ("op", name) ]
          (Obs.Histogram.snapshot latency.(i)))
      op_names;
    counter b ~name:"patserve_connections_accepted_total"
      ~help:"Connections accepted"
      (float_of_int (Obs.Counter.sum accepted));
    counter b ~name:"patserve_op_errors_total"
      ~help:"Requests that failed at the application level"
      (float_of_int (Obs.Counter.sum op_errors));
    counter b ~name:"patserve_protocol_errors_total"
      ~help:"Connections torn down for protocol violations"
      (float_of_int (Obs.Counter.sum protocol_errors));
    counter b ~name:"patserve_shed_total"
      ~help:"Connections shed at accept time (BUSY reply at --max-conns)"
      (float_of_int (Obs.Counter.sum shed));
    counter b ~name:"patserve_evicted_slow_total"
      ~help:"Slow-reading connections evicted at the hard output-buffer cap"
      (float_of_int (Obs.Counter.sum evicted_slow));
    counter b ~name:"patserve_busy_replies_total"
      ~help:"BUSY replies sent (accept-time shed + queue-deadline declines)"
      (float_of_int (Obs.Counter.sum busy_replies));
    counter b ~name:"patserve_idle_reaped_total"
      ~help:"Idle connections closed by the reaper"
      (float_of_int (Obs.Counter.sum idle_reaped));
    counter b ~name:"patserve_scan_pages_total"
      ~help:"SCAN/RANGE pages served"
      (float_of_int (Obs.Counter.sum scan_pages));
    counter b ~name:"patserve_scan_keys_total"
      ~help:"Keys streamed inside SCAN/RANGE pages"
      (float_of_int (Obs.Counter.sum scan_keys));
    counter b ~name:"patserve_scan_complete_total"
      ~help:"SCAN/RANGE pages that exhausted the walk (complete flag)"
      (float_of_int (Obs.Counter.sum scan_complete));
    counter b ~name:"patserve_conn_errors_total"
      ~help:
        "Connections closed on a read/write error (EPIPE, ECONNRESET, ...)"
      (float_of_int (Obs.Counter.sum conn_errors));
    gauge b ~name:"patserve_conn_buffer_bytes"
      ~help:"Buffered (unflushed) response bytes across all connections"
      (float_of_int (conn_buffer_bytes ()));
    Array.iteri
      (fun i op ->
        Array.iteri
          (fun s stage ->
            histogram_summary b ~name:"patserve_request_stage_ns"
              ~help:
                "Per-request latency decomposition, nanoseconds, by opcode \
                 and stage"
              ~labels:[ ("op", op); ("stage", stage) ]
              (Obs.Histogram.snapshot stages.(i).(s)))
          stage_names)
      op_names
end

(* The process-global slowest-K request table, fed by every worker and
   dumped by `patbench serve` and the /debug/slowlog endpoint. *)
let slowlog = Obs.Slowlog.create ~k:64 ()

(* ------------------------------------------------------------------ *)
(* The served operations, as closures (same pattern as Harness.ops) so
   the server is agnostic to the module behind them. *)

type ops = {
  insert : int -> bool;
  delete : int -> bool;
  member : int -> bool;
  replace : remove:int -> add:int -> bool;
  size : unit -> int;
  snapshot : unit -> Dset_intf.view option;
      (* atomic frozen view for SCAN/RANGE; [None] = structure does not
         support snapshots and scans answer ERROR *)
  scan_cut : unit -> int;
      (* newest assigned WAL sequence number, stamped into every PAGE
         as the replica-bootstrap subscription point; -1 without a WAL.
         Read BEFORE the page's snapshot so every record <= cut is
         already inside the view (mutations apply before they log). *)
}

let ops_of_set (type a)
    (module S : Dset_intf.CONCURRENT_SET_WITH_REPLACE with type t = a)
    (t : a) =
  {
    insert = S.insert t;
    delete = S.delete t;
    member = S.member t;
    replace = (fun ~remove ~add -> S.replace t ~remove ~add);
    size = (fun () -> S.size t);
    snapshot = (fun () -> S.snapshot t);
    scan_cut = (fun () -> -1);
  }

(* ------------------------------------------------------------------ *)
(* Request execution *)

exception Page_full

(* One SCAN/RANGE page: freeze a fresh snapshot, walk it from just past
   the cursor, stop after [count] keys.  The cursor is stateless (the
   last key returned), so the server holds nothing between pages; each
   page is an exact frozen version on its own, and a multi-page scan is
   a sequence of per-page linearization points stitched by the cursor
   (the staleness contract documented in protocol.mli). *)
let exec_scan ops ~lo ~hi ~cursor ~count =
  let cut = ops.scan_cut () in
  match ops.snapshot () with
  | None -> Protocol.Error "scan is not supported by the served structure"
  | Some v ->
      let lo = max lo (cursor + 1) in
      let acc = ref [] and n = ref 0 and more = ref false in
      (try
         v.Dset_intf.v_fold_range ~lo ~hi ~init:() ~f:(fun () k ->
             if !n = count then begin
               more := true;
               raise_notrace Page_full
             end;
             acc := k :: !acc;
             incr n)
       with Page_full -> ());
      let next_cursor = match !acc with [] -> cursor | k :: _ -> k in
      let complete = not !more in
      Obs.Counter.incr Metrics.scan_pages;
      Obs.Counter.add Metrics.scan_keys !n;
      if complete then Obs.Counter.incr Metrics.scan_complete;
      Protocol.Page
        { cut; next_cursor; complete; keys = List.rev !acc }

let rec exec ops op =
  match op with
  | Protocol.Insert k -> Protocol.Bool (ops.insert k)
  | Protocol.Delete k -> Protocol.Bool (ops.delete k)
  | Protocol.Member k -> Protocol.Bool (ops.member k)
  | Protocol.Replace { remove; add } -> Protocol.Bool (ops.replace ~remove ~add)
  | Protocol.Size -> Protocol.Count (ops.size ())
  | Protocol.Batch l ->
      Protocol.Many
        (List.map
           (fun o ->
             match exec ops o with
             | Protocol.Bool b -> b
             | _ ->
                 (* The decoder rejects SIZE/BATCH inside BATCH. *)
                 assert false)
           l)
  | Protocol.Scan { cursor; count } ->
      exec_scan ops ~lo:0 ~hi:max_int ~cursor ~count
  | Protocol.Range { lo; hi; cursor; count } ->
      if lo > hi then Protocol.Error "RANGE lo greater than hi"
      else exec_scan ops ~lo ~hi ~cursor ~count
  | Protocol.Subscribe _ | Protocol.Logack _ | Protocol.Hashcheck _
  | Protocol.Promote ->
      (* Intercepted in [handle_request] when a replication context is
         installed; reaching exec means there is none. *)
      Protocol.Error "replication is not enabled on this server"

let trace_kind = function
  | Protocol.Insert _ -> Obs.Trace.Insert
  | Protocol.Delete _ -> Obs.Trace.Delete
  | Protocol.Member _ -> Obs.Trace.Member
  | Protocol.Replace _ -> Obs.Trace.Replace
  | Protocol.Size -> Obs.Trace.Custom "size"
  | Protocol.Batch _ -> Obs.Trace.Custom "batch"
  | Protocol.Subscribe _ -> Obs.Trace.Custom "subscribe"
  | Protocol.Logack _ -> Obs.Trace.Custom "logack"
  | Protocol.Hashcheck _ -> Obs.Trace.Custom "hashcheck"
  | Protocol.Promote -> Obs.Trace.Custom "promote"
  | Protocol.Scan _ -> Obs.Trace.Custom "scan"
  | Protocol.Range _ -> Obs.Trace.Custom "range"

let trace_key = function
  | Protocol.Insert k | Protocol.Delete k | Protocol.Member k -> k
  | Protocol.Replace { remove; _ } -> remove
  | Protocol.Scan { cursor; _ } | Protocol.Range { cursor; _ } -> cursor
  | Protocol.Size | Protocol.Batch _ | Protocol.Subscribe _
  | Protocol.Logack _ | Protocol.Hashcheck _ | Protocol.Promote ->
      0

(* ------------------------------------------------------------------ *)
(* Overload-protection limits.

   The trie under the server is non-blocking — no slow domain can wedge
   another — but the socket layer can lose that property on its own: a
   client that stops reading grows an unbounded output buffer, and an
   unbounded accept queue lets offered load overwhelm every connection
   at once.  These limits make degradation deliberate: stall slow
   readers (soft cap), evict them (hard cap), shed connections beyond
   [max_conns] with a BUSY reply, reap idle connections, and decline
   requests whose queue wait already blew the deadline. *)

type limits = {
  max_conns : int option;
      (** accept-time admission limit across all workers; beyond it new
          connections get one BUSY frame (retry-after hint) and are
          closed.  [None] = unlimited. *)
  soft_buffer_bytes : int;
      (** per-connection output-buffer soft cap: above it the fd is no
          longer selected for read, so the client's pipelining stalls
          instead of growing the buffer. *)
  hard_buffer_bytes : int;
      (** per-connection output-buffer hard cap: above it the
          connection is evicted (counted, logged close).  Must be
          [>= soft_buffer_bytes]. *)
  idle_timeout_s : float option;
      (** reap connections with no traffic and no pending output for
          this long.  [None] = never. *)
  queue_deadline_ns : int option;
      (** per-request queue-stage budget: a request that waited longer
          than this behind earlier frames of its pipeline window is
          answered BUSY instead of executed.  [None] = no deadline. *)
  retry_after_ms : int;  (** hint carried in BUSY replies *)
  overload_hold_s : float;
      (** how long after the last shed/eviction/BUSY the server keeps
          reporting overload to the watchdog — the hysteresis that
          makes /healthz's [degraded:overload] readable by a poller *)
}

let default_limits =
  {
    max_conns = None;
    soft_buffer_bytes = 256 * 1024;
    hard_buffer_bytes = 4 * 1024 * 1024;
    idle_timeout_s = None;
    queue_deadline_ns = None;
    retry_after_ms = 50;
    overload_hold_s = 2.0;
  }

(* ------------------------------------------------------------------ *)
(* Replication hooks.

   The server itself knows nothing about WALs or followers; a
   replication layer (lib/replica) plugs in through these closures.
   [subscribe] is special: it takes {e ownership} of the connection's
   file descriptor — the server stops tracking the fd entirely and the
   replication streamer (its own domain, blocking I/O) answers the
   SUBSCRIBE request and pushes LOGRECS / reads LOGACKs from then on.
   Pumping the stream from the select loop would deadlock under
   sync-ack replication: the worker blocked in the window barrier
   waiting for a follower ack can be the very worker that owns the
   follower's subscription connection. *)

type repl = {
  subscribe : fd:Unix.file_descr -> seq:int -> from_seq:int -> unit;
      (** Take ownership of [fd] (blocking mode, nothing buffered in
          either direction) and serve the log stream for a follower
          positioned at [from_seq].  Must answer the SUBSCRIBE request
          (tag [seq]) itself — TRUE, or ERROR when [from_seq] is no
          longer retained — and must eventually close the fd. *)
  hashcheck : prefix:int -> len:int -> (int * int * int, string) result;
      (** Anti-entropy: [(node, left, right)] hashes of the subtree at
          the [len]-bit key prefix [prefix]. *)
  promote : unit -> (unit, string) result;
      (** Seal the local WAL and flip this node to primary (idempotent
          on a node that is already primary). *)
}

(* Per-request admission verdict from the replication role: a follower
   refuses mutations outright (read-only replica) and answers BUSY on
   reads while its applied position lags the staleness bound. *)
type gate_verdict =
  [ `Proceed | `Busy_gate of int (* retry_after_ms *) | `Refuse of string ]

(* State shared by all workers of one server: the admission counter,
   the limits, and the overload stamp behind the watchdog gauge. *)
type shared = {
  limits : limits;
  live : int Atomic.t; (* connections currently registered *)
  overload_ns : int Atomic.t; (* last shed/eviction/BUSY stamp *)
  repl : repl option;
  gate : (Protocol.op -> gate_verdict) option;
}

let note_overload sh = Atomic.set sh.overload_ns (Obs.Clock.now_ns ())

let overloaded sh =
  let last = Atomic.get sh.overload_ns in
  last > 0
  && Obs.Clock.now_ns () - last
     < int_of_float (sh.limits.overload_hold_s *. 1e9)

(* ------------------------------------------------------------------ *)
(* Connection state and the per-worker event loop *)

(* One executed-but-unflushed request: the stage stamps collected while
   processing its window, finalized (histograms, slowlog, trace) once
   the window's barrier and flush have run. *)
type pending = {
  p_op : int; (* opcode index *)
  p_kind : Obs.Trace.kind;
  p_key : int;
  p_seq : int;
  p_arrival : int; (* read-batch arrival stamp *)
  p_d0 : int; (* decode start *)
  p_d1 : int; (* decode done / trie op start *)
  p_d2 : int; (* reply encoded *)
}

type conn = {
  fd : Unix.file_descr;
  id : int; (* process-unique, names the Perfetto conn track *)
  reader : Protocol.Reader.t;
  out : Buffer.t;
  mutable out_off : int; (* bytes of [out] already on the wire *)
  mutable closing : bool; (* EOF seen or protocol error sent *)
  mutable window : pending list; (* newest first; emptied on finalize *)
  mutable last_ns : int; (* last inbound traffic, for the idle reaper *)
  mutable handoff : (int * int) option;
      (* a decoded SUBSCRIBE (seq, from_seq) awaiting fd handoff to the
         replication streamer — set in handle_request, consumed by
         [maybe_handoff] once the pre-subscribe output is flushed *)
}

let next_conn_id = Atomic.make 0

(* Allocation-profiler regions ({!Obs.Memprof}): sampled allocations
   are attributed to the operation being executed or to the serving
   stage around it.  [set_region] costs one atomic load while the
   profiler is off. *)
let alloc_op_regions =
  Array.map (fun n -> Obs.Memprof.region ("op:" ^ n)) Metrics.op_names

let alloc_decode = Obs.Memprof.region "stage:decode"
let alloc_write = Obs.Memprof.region "stage:write"
let alloc_barrier = Obs.Memprof.region "stage:barrier"

let handle_request sh ops c ~arrival ~d0 ~d1 { Protocol.seq; op } =
  let idx = Protocol.op_index op in
  Obs.Memprof.set_region alloc_op_regions.(idx);
  let op_error msg =
    Obs.Counter.incr Metrics.op_errors;
    Protocol.Error msg
  in
  let result =
    match (op, sh.repl) with
    | Protocol.Subscribe { from_seq }, Some _ ->
        (* The streamer answers this request after the handoff; nothing
           is encoded here.  [maybe_handoff] completes the transfer once
           the frames before this one have been flushed. *)
        c.handoff <- Some (seq, from_seq);
        Protocol.Bool true
    | Protocol.Hashcheck { prefix; len }, Some r -> (
        match r.hashcheck ~prefix ~len with
        | Result.Ok (node, left, right) -> Protocol.Hashes { node; left; right }
        | Result.Error msg -> op_error msg
        | exception e -> op_error (Printexc.to_string e))
    | Protocol.Promote, Some r -> (
        match r.promote () with
        | Result.Ok () -> Protocol.Bool true
        | Result.Error msg -> op_error msg
        | exception e -> op_error (Printexc.to_string e))
    | Protocol.Logack _, Some _ ->
        op_error "LOGACK is only valid on a subscription stream"
    | _ -> (
        match match sh.gate with None -> `Proceed | Some g -> g op with
        | `Busy_gate retry_after_ms ->
            (* Staleness-bound decline on a lagging follower: the read
               was not executed; retrying (here or at the primary) is
               safe.  Counted with the other BUSY replies but not
               stamped as overload — the watchdog's [repl_lag] gauge is
               the signal for this condition. *)
            Obs.Counter.incr Metrics.busy_replies;
            Protocol.Busy { retry_after_ms }
        | `Refuse msg -> op_error msg
        | `Proceed -> (
            (* An operation raising (key outside the structure's
               universe, a buggy served module) must answer this
               request, not kill the worker domain serving every other
               connection. *)
            match exec ops op with
            | r -> r
            | exception e -> op_error (Printexc.to_string e)))
  in
  match c.handoff with
  | Some _ ->
      (* No response encoded and no window entry: the subscription
         streamer owns the reply from here on. *)
      ignore (result : Protocol.result_)
  | None ->
  let dt = Obs.Clock.now_ns () - d1 in
  Obs.Memprof.set_region alloc_decode;
  Metrics.record idx dt;
  Harness.Live.op dt;
  (match Obs.Trace.recorder () with
  | Some tr ->
      let ok = match result with Protocol.Error _ -> false | _ -> true in
      Obs.Trace.emit_span tr (trace_kind op) ~key:(trace_key op) ~ok ~retries:0
        ~attempt:1 ~site:"serve" ~t0_ns:d1
  | None -> ());
  Protocol.encode_response c.out { Protocol.seq; result };
  c.window <-
    {
      p_op = idx;
      p_kind = trace_kind op;
      p_key = trace_key op;
      p_seq = seq;
      p_arrival = arrival;
      p_d0 = d0;
      p_d1 = d1;
      p_d2 = Obs.Clock.now_ns ();
    }
    :: c.window

let pending c = Buffer.length c.out - c.out_off

let force_close sh conns c =
  if Hashtbl.mem conns c.fd then begin
    Hashtbl.remove conns c.fd;
    Atomic.decr sh.live
  end;
  (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error (_, _, _) -> ());
  Obs.Net.close_noerr c.fd

(* Flush as much buffered output as the socket accepts; true while the
   connection is still usable.  A write error (EPIPE from a peer that
   closed mid-reply, ECONNRESET, ...) closes only this connection —
   with SIGPIPE ignored at [start], a vanished client can never take
   down the worker serving everyone else. *)
let flush_out sh conns c =
  let n = pending c in
  if n = 0 then true
  else begin
    Obs.Memprof.set_region alloc_write;
    Chaos.point Chaos.Net_write;
    let b = Buffer.to_bytes c.out in
    match Unix.write c.fd b c.out_off n with
    | written ->
        c.out_off <- c.out_off + written;
        if pending c = 0 then begin
          Buffer.clear c.out;
          c.out_off <- 0
        end;
        true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        true
    | exception Unix.Unix_error (_, _, _) ->
        Obs.Counter.incr Metrics.conn_errors;
        force_close sh conns c;
        false
  end

(* Hard-cap eviction: a connection whose unflushed output is still
   above the hard cap after a flush attempt belongs to a reader too
   slow to keep (or one that stopped reading entirely).  Counted and
   logged — a silent eviction would look like a server bug from the
   client side. *)
let check_evict sh conns c =
  if Hashtbl.mem conns c.fd && pending c > sh.limits.hard_buffer_bytes then begin
    Obs.Counter.incr Metrics.evicted_slow;
    note_overload sh;
    Printf.eprintf
      "patserve: evicting slow reader conn-%d (%d bytes buffered > hard cap \
       %d)\n\
       %!"
      c.id (pending c) sh.limits.hard_buffer_bytes;
    force_close sh conns c
  end

let protocol_failure c msg =
  Obs.Counter.incr Metrics.protocol_errors;
  Protocol.encode_response c.out { Protocol.seq = 0; result = Protocol.Error msg };
  c.closing <- true

(* Decode and execute every complete frame buffered on [c] — this inner
   loop is where pipelining pays: one read syscall can carry a whole
   window of requests, answered with one write.  [arrival] is the read
   stamp shared by the window; the per-frame decode stamps bracket
   [next_payload] + [decode_request].

   Two overload gates ride on the loop: decoding pauses once the
   connection's unflushed output crosses the hard buffer cap (leftover
   frames stay in the reader and are resumed by the event loop once the
   client drains — or the connection is evicted), and a request whose
   queue wait already exceeded the deadline is answered BUSY instead of
   executed: the stage stamps the forensics layer collects anyway make
   the admission decision a single subtraction. *)
let process_frames sh ops c ~arrival =
  Obs.Memprof.set_region alloc_decode;
  let rec go () =
    if
      (not c.closing)
      && c.handoff = None
      && pending c <= sh.limits.hard_buffer_bytes
    then begin
      let d0 = Obs.Clock.now_ns () in
      match Protocol.Reader.next_payload c.reader with
      | `None -> ()
      | `Bad msg -> protocol_failure c msg
      | `Payload (buf, off, len) -> (
          Chaos.point Chaos.Net_decode;
          match Protocol.decode_request buf ~off ~len with
          | Result.Error msg -> protocol_failure c msg
          | Result.Ok req ->
              (match sh.limits.queue_deadline_ns with
              | Some budget when d0 - arrival > budget ->
                  Obs.Counter.incr Metrics.busy_replies;
                  note_overload sh;
                  Protocol.encode_response c.out
                    {
                      Protocol.seq = req.Protocol.seq;
                      result =
                        Protocol.Busy
                          { retry_after_ms = sh.limits.retry_after_ms };
                    }
              | _ ->
                  let d1 = Obs.Clock.now_ns () in
                  handle_request sh ops c ~arrival ~d0 ~d1 req);
              go ())
    end
  in
  go ()

(* Close out a window's stage accounting once its barrier and flush
   stamps are known: per-opcode stage histograms, slowlog admission,
   and — when the flight recorder is live — stage spans on the
   connection's own Perfetto track.  The barrier and write stages are
   per-window (one group commit, one flush cover all its requests) and
   are attributed to every request they gated. *)
let finalize_window c ~b0 ~b1 ~w1 =
  match c.window with
  | [] -> ()
  | entries ->
      c.window <- [];
      let barrier_ns = b1 - b0 and write_ns = w1 - b1 in
      let tr = Obs.Trace.recorder () in
      let track = Obs.Trace.conn_track_base + (c.id mod 10_000) in
      (match tr with
      | Some tr ->
          let span kind ~t0 ~dur ~site =
            Obs.Trace.add_span tr kind ~track ~key:0 ~ok:true ~retries:0
              ~attempt:0 ~site ~t0_ns:t0 ~dur_ns:dur
          in
          span (Obs.Trace.Custom "barrier") ~t0:b0 ~dur:barrier_ns
            ~site:"stage:barrier";
          span (Obs.Trace.Custom "write") ~t0:b1 ~dur:write_ns
            ~site:"stage:write"
      | None -> ());
      List.iter
        (fun p ->
          let queue = p.p_d0 - p.p_arrival in
          let decode = p.p_d1 - p.p_d0 in
          let trie = p.p_d2 - p.p_d1 in
          let total = w1 - p.p_arrival in
          Metrics.record_stages p.p_op ~queue ~decode ~trie ~barrier:barrier_ns
            ~write:write_ns ~total;
          if total > Obs.Slowlog.admission_floor slowlog then
            Obs.Slowlog.note slowlog
              {
                Obs.Slowlog.op = Metrics.op_names.(p.p_op);
                key = p.p_key;
                conn = c.id;
                seq = p.p_seq;
                start_ns = p.p_arrival;
                total_ns = total;
                stages =
                  [
                    ("queue", queue); ("decode", decode); ("trie", trie);
                    ("barrier", barrier_ns); ("write", write_ns);
                  ];
              };
          match tr with
          | Some tr ->
              let span kind ~key ~t0 ~dur ~site =
                Obs.Trace.add_span tr kind ~track ~key ~ok:true ~retries:0
                  ~attempt:0 ~site ~t0_ns:t0 ~dur_ns:dur
              in
              span p.p_kind ~key:p.p_key ~t0:p.p_arrival ~dur:total
                ~site:"request";
              span (Obs.Trace.Custom "queue") ~key:0 ~t0:p.p_arrival ~dur:queue
                ~site:"stage:queue";
              span (Obs.Trace.Custom "decode") ~key:0 ~t0:p.p_d0 ~dur:decode
                ~site:"stage:decode";
              span (Obs.Trace.Custom "trie") ~key:p.p_key ~t0:p.p_d1 ~dur:trie
                ~site:"stage:trie"
          | None -> ())
        (List.rev entries)

(* Complete a pending SUBSCRIBE handoff: flush everything the server
   still owes on the socket (responses to frames pipelined before the
   SUBSCRIBE), deregister the fd without closing it, restore blocking
   mode, and pass ownership to the replication streamer.  A socket that
   cannot be drained here (stalled peer mid-subscribe) is torn down
   instead — handing off buffered bytes would interleave the streamer's
   frames into half-written ones. *)
let maybe_handoff sh conns c =
  match c.handoff with
  | None -> ()
  | Some (seq, from_seq) ->
      c.handoff <- None;
      if Hashtbl.mem conns c.fd then
        if flush_out sh conns c then begin
          if pending c > 0 then begin
            Obs.Counter.incr Metrics.conn_errors;
            force_close sh conns c
          end
          else begin
            Hashtbl.remove conns c.fd;
            Atomic.decr sh.live;
            (try Unix.clear_nonblock c.fd
             with Unix.Unix_error (_, _, _) -> ());
            match sh.repl with
            | Some r -> r.subscribe ~fd:c.fd ~seq ~from_seq
            | None ->
                (* handle_request only sets handoff when repl is on *)
                Obs.Net.close_noerr c.fd
          end
        end

(* [barrier] runs between executing a window of pipelined requests and
   flushing their responses: the durability layer uses it to hold acks
   until the group commit covering the window is on disk, so one fsync
   covers the whole window rather than each request.  Responses already
   buffered from earlier windows re-flushed by the select loop passed
   their barrier when they were produced. *)
let finish_window sh barrier conns c =
  Obs.Memprof.set_region alloc_barrier;
  let b0 = Obs.Clock.now_ns () in
  barrier ();
  let b1 = Obs.Clock.now_ns () in
  ignore (flush_out sh conns c);
  let w1 = Obs.Clock.now_ns () in
  finalize_window c ~b0 ~b1 ~w1;
  check_evict sh conns c

let handle_read sh ops barrier conns scratch c =
  Chaos.point Chaos.Net_read;
  match Unix.read c.fd scratch 0 (Bytes.length scratch) with
  | 0 ->
      (* Orderly EOF: answer whatever complete frames are already
         buffered, flush, then close. *)
      process_frames sh ops c ~arrival:(Obs.Clock.now_ns ());
      c.closing <- true;
      finish_window sh barrier conns c
  | n ->
      let arrival = Obs.Clock.now_ns () in
      c.last_ns <- arrival;
      Protocol.Reader.feed c.reader scratch n;
      process_frames sh ops c ~arrival;
      finish_window sh barrier conns c;
      maybe_handoff sh conns c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error (_, _, _) ->
      Obs.Counter.incr Metrics.conn_errors;
      force_close sh conns c

(* Frames left in the reader by the hard-cap decode gate: once the
   client has drained enough output, pick the window back up without
   waiting for new bytes on the wire. *)
let resume_buffered sh ops barrier conns c =
  if
    (not c.closing)
    && pending c <= sh.limits.soft_buffer_bytes
    && Protocol.Reader.buffered c.reader > 4
  then begin
    let arrival = Obs.Clock.now_ns () in
    process_frames sh ops c ~arrival;
    if c.window <> [] then finish_window sh barrier conns c;
    maybe_handoff sh conns c
  end

(* One BUSY frame (retry-after hint), then close: the admission-control
   shed path for a connection beyond --max-conns.  Best-effort — if
   even the 13-byte write can't be afforded the close alone must do. *)
let shed_connection sh fd =
  Obs.Counter.incr Metrics.shed;
  Obs.Counter.incr Metrics.busy_replies;
  note_overload sh;
  let b = Buffer.create 16 in
  Protocol.encode_response b
    {
      Protocol.seq = 0;
      result = Protocol.Busy { retry_after_ms = sh.limits.retry_after_ms };
    };
  let bytes = Buffer.to_bytes b in
  (try ignore (Unix.write fd bytes 0 (Bytes.length bytes))
   with Unix.Unix_error (_, _, _) -> ());
  Obs.Net.close_noerr fd

let accept_new sh conns lsock =
  match Unix.accept lsock with
  | fd, _ ->
      Chaos.point Chaos.Net_accept;
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error (_, _, _) -> ());
      let admitted =
        match sh.limits.max_conns with
        | None ->
            Atomic.incr sh.live;
            true
        | Some m ->
            (* fetch_and_add makes the check exact across workers racing
               on the shared listening socket: the loser decrements and
               sheds instead of sneaking past the limit. *)
            if Atomic.fetch_and_add sh.live 1 >= m then begin
              Atomic.decr sh.live;
              false
            end
            else true
      in
      if not admitted then shed_connection sh fd
      else begin
        Obs.Counter.incr Metrics.accepted;
        Hashtbl.replace conns fd
          {
            fd;
            id = Atomic.fetch_and_add next_conn_id 1;
            reader = Protocol.Reader.create ();
            out = Buffer.create 4096;
            out_off = 0;
            closing = false;
            window = [];
            last_ns = Obs.Clock.now_ns ();
            handoff = None;
          }
      end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error (_, _, _) -> ()

let worker_loop sh ops barrier drain_s watchdog ~stopping lsock =
  (* Idempotent across workers; guarantees accept never blocks the
     event loop even in a single-worker configuration. *)
  Unix.set_nonblock lsock;
  (* The watchdog heartbeat is the event-loop iteration age: beaten
     once per select iteration, so a worker wedged in a syscall (or a
     chaos stall) stops beating and the verdict names it. *)
  let beat =
    match watchdog with
    | Some wd ->
        Obs.Watchdog.heartbeat wd
          ~name:(Printf.sprintf "worker-%d" (Domain.self () :> int))
    | None -> fun () -> ()
  in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let scratch = Bytes.create 65536 in
  let buffer_slot = Metrics.register_buffer_slot () in
  let drain_deadline = ref None in
  (* Completed select passes since the drain began; idle connections
     are only cut from the second pass on, so bytes a client managed to
     send just before [stop] still get one full select round to show up
     readable and be answered. *)
  let drain_iters = ref 0 in
  let all_conns () = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
  let rec loop () =
    beat ();
    let stop = stopping () in
    (match (!drain_deadline, stop) with
    | None, true ->
        (* Graceful drain: stop accepting, keep serving live
           connections for up to [drain_s], then cut them off. *)
        drain_deadline :=
          Some (Unix.gettimeofday () +. Atomic.get drain_s)
    | _ -> ());
    let expired =
      match !drain_deadline with
      | Some d -> Hashtbl.length conns = 0 || Unix.gettimeofday () > d
      | None -> false
    in
    if expired then begin
      List.iter (force_close sh conns) (all_conns ());
      Atomic.set buffer_slot 0
    end
    else begin
      (* Idle reaper: no inbound traffic, nothing owed, nothing half
         read — a connection costing a select slot for free. *)
      (match sh.limits.idle_timeout_s with
      | Some t when not stop ->
          let cutoff = Obs.Clock.now_ns () - int_of_float (t *. 1e9) in
          List.iter
            (fun c ->
              if
                (not c.closing)
                && pending c = 0
                && Protocol.Reader.buffered c.reader = 0
                && c.last_ns < cutoff
              then begin
                Obs.Counter.incr Metrics.idle_reaped;
                force_close sh conns c
              end)
            (all_conns ())
      | _ -> ());
      let cs = all_conns () in
      Atomic.set buffer_slot (List.fold_left (fun a c -> a + pending c) 0 cs);
      let rds =
        (if stop then [] else [ lsock ])
        @ List.filter_map
            (fun c ->
              (* Soft-cap backpressure: a connection owing more output
                 than the soft cap is not selected for read, so its
                 pipelining stalls at the TCP window instead of growing
                 the buffer toward the hard cap. *)
              if c.closing || pending c > sh.limits.soft_buffer_bytes then None
              else Some c.fd)
            cs
      in
      let wrs = List.filter_map (fun c -> if pending c > 0 then Some c.fd else None) cs in
      (match Unix.select rds wrs [] 0.1 with
      | rd, wr, _ ->
          if (not stop) && List.memq lsock rd then accept_new sh conns lsock;
          List.iter
            (fun fd ->
              if fd != lsock then
                match Hashtbl.find_opt conns fd with
                | Some c -> handle_read sh ops barrier conns scratch c
                | None -> ())
            rd;
          List.iter
            (fun fd ->
              match Hashtbl.find_opt conns fd with
              | Some c ->
                  ignore (flush_out sh conns c);
                  check_evict sh conns c
              | None -> ())
            wr;
          (* Frames parked behind the hard-cap decode gate resume once
             the flushes above drained the buffer back under the soft
             cap. *)
          List.iter
            (fun c ->
              if Hashtbl.mem conns c.fd then
                resume_buffered sh ops barrier conns c)
            cs;
          (* Reap connections that have said goodbye and been fully
             answered. *)
          List.iter
            (fun c ->
              if c.closing && pending c = 0 && Hashtbl.mem conns c.fd then
                force_close sh conns c)
            (all_conns ());
          (* Drain shortcut: once every connection with buffered input
             has had a select round, anything owing nothing and saying
             nothing is idle — close it now rather than sitting out the
             rest of [drain_s]. *)
          if stop then begin
            if !drain_iters >= 1 then
              List.iter
                (fun c ->
                  if
                    Hashtbl.mem conns c.fd
                    && pending c = 0
                    && Protocol.Reader.buffered c.reader = 0
                    && not (List.memq c.fd rd)
                  then force_close sh conns c)
                (all_conns ());
            incr drain_iters
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

type t = { net : Obs.Net.t; drain_s : float Atomic.t; shared : shared }

(** [start ops] binds [addr:port] ([port = 0] for ephemeral; see
    {!port}) and serves on [domains] worker domains.  All workers share
    the listening socket (non-blocking, so racing accepts are benign)
    and the same [ops] — the served structure must tolerate concurrent
    calls, which is the entire point of serving a non-blocking trie.

    [barrier], if given, runs on the worker after executing each window
    of pipelined requests and before their responses are flushed; a
    durability layer passes [Persist.Store.barrier] here so
    acknowledgements wait for the group commit that covers them.

    [watchdog], if given, receives one heartbeat source per worker
    domain (named [worker-<domain id>]), beaten every event-loop
    iteration — the progress signal behind the /healthz verdict — plus
    an [overload] gauge that reports degraded while the server is
    shedding/evicting/declining (with [limits.overload_hold_s] of
    hysteresis), so /healthz says [degraded: overload=...] during a
    flood and recovers to [ok] after it.

    [limits] installs the overload-protection envelope
    ({!default_limits}: no admission limit, no idle reaper, no queue
    deadline — only the buffer caps).

    SIGPIPE is ignored process-wide on the first call: a peer that
    vanishes mid-write must surface as [EPIPE] on that connection, not
    kill the process. *)
let start ?(addr = "127.0.0.1") ?(port = 0) ?(domains = 2) ?(backlog = 64)
    ?(barrier = fun () -> ()) ?watchdog ?(limits = default_limits) ?repl ?gate
    ops =
  if limits.hard_buffer_bytes < limits.soft_buffer_bytes then
    invalid_arg "Server.start: hard buffer cap below soft cap";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sh =
    { limits; live = Atomic.make 0; overload_ns = Atomic.make 0; repl; gate }
  in
  (match watchdog with
  | Some wd ->
      Obs.Watchdog.gauge wd ~name:"overload" ~degraded_above:0 (fun () ->
          if overloaded sh then 1 else 0)
  | None -> ());
  let drain_s = Atomic.make 1.0 in
  let net =
    Obs.Net.start ~addr ~backlog ~domains ~port
      (worker_loop sh ops barrier drain_s watchdog)
  in
  { net; drain_s; shared = sh }

let port t = Obs.Net.port t.net

(** Connections currently registered across all workers (diagnostics,
    tests). *)
let live_conns t = Atomic.get t.shared.live

(** Whether the server is inside the overload-hysteresis window — the
    same signal the watchdog gauge reports. *)
let overloaded t = overloaded t.shared

(** Graceful-drain stop, idempotent: stop accepting, give in-flight
    connections up to [drain_s] (default 1s) to be answered and closed,
    then join the workers and close the listening socket. *)
let stop ?(drain_s = 1.0) t =
  Atomic.set t.drain_s drain_s;
  Obs.Net.stop t.net

(* ------------------------------------------------------------------ *)
(* Loopback adapter: a served set re-packaged as an ordinary
   CONCURRENT_SET_WITH_REPLACE, so generic tests (the registry
   batteries, the linearizability checker) run unmodified with every
   operation making a real protocol round trip over localhost. *)

module Loopback (S : Dset_intf.CONCURRENT_SET_WITH_REPLACE) : sig
  include Dset_intf.CONCURRENT_SET_WITH_REPLACE

  val shutdown : t -> unit
  (** Stop the instance's server (also registered via [at_exit]). *)
end = struct
  type server = t (* the enclosing module's server handle *)

  type t = {
    id : int;
    universe : int;
    server : server;
    port : int;
    inner : S.t; (* keeps the served structure alive *)
  }

  let name = S.name ^ "/net"

  let next_id = Atomic.make 0

  (* Every domain talks to a given instance over its own connection
     (the client is not domain-safe); lazily established, keyed by
     instance id.  Connections are reclaimed with the domain. *)
  let clients_key : (int, Client.t) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 8)

  let client inst =
    let tbl = Domain.DLS.get clients_key in
    match Hashtbl.find_opt tbl inst.id with
    | Some c -> c
    | None ->
        let c = Client.connect ~port:inst.port () in
        Hashtbl.add tbl inst.id c;
        c

  (* Stop the leaked servers of instances nobody shut down explicitly —
     generic test code has no close hook in the signature. *)
  let live : (int, t) Hashtbl.t = Hashtbl.create 8
  let live_mu = Mutex.create ()
  let at_exit_registered = ref false
  let stop_instance inst = stop ~drain_s:0.2 inst.server

  let shutdown inst =
    Mutex.lock live_mu;
    Hashtbl.remove live inst.id;
    Mutex.unlock live_mu;
    stop_instance inst

  let register inst =
    Mutex.lock live_mu;
    if not !at_exit_registered then begin
      at_exit_registered := true;
      at_exit (fun () ->
          Mutex.lock live_mu;
          let all = Hashtbl.fold (fun _ i acc -> i :: acc) live [] in
          Hashtbl.reset live;
          Mutex.unlock live_mu;
          List.iter stop_instance all)
    end;
    Hashtbl.replace live inst.id inst;
    Mutex.unlock live_mu

  let create ~universe () =
    let inner = S.create ~universe () in
    let server = start ~port:0 ~domains:2 (ops_of_set (module S) inner) in
    let inst =
      {
        id = Atomic.fetch_and_add next_id 1;
        universe;
        server;
        port = port server;
        inner;
      }
    in
    register inst;
    inst

  let insert t k = Client.insert (client t) k
  let delete t k = Client.delete (client t) k
  let member t k = Client.member (client t) k
  let replace t ~remove ~add = Client.replace (client t) ~remove ~add
  let size t = Client.size (client t)

  (* The served structure lives in this process, so the shape/descent
     capabilities read it directly rather than over the wire. *)
  let census t = S.census t.inner
  let descent_stats t = S.descent_stats t.inner

  (* Loopback epochs are client-side: each snapshot gets a fresh one,
     which never claims two distinct versions equal. *)
  let snapshot_epoch = Atomic.make 0

  (* Over the wire when one page covers the whole universe — a single
     SCAN request is answered from one frozen server-side snapshot, so
     the page itself is atomic and the linearizability battery
     exercises the real scan path.  Universes too big for one page
     delegate to the in-process structure's snapshot (still a true
     frozen view, just not a wire round trip). *)
  let snapshot t =
    if t.universe > Protocol.max_page_keys then S.snapshot t.inner
    else
      let p = Client.scan_page ~count:t.universe (client t) ~cursor:(-1) in
      if not p.Client.complete then
        raise
          (Client.Protocol_error
             "single-page SCAN of the whole universe came back incomplete")
      else
        let keys = Array.of_list p.Client.keys in
        Some
          Dset_intf.
            {
              v_epoch = Atomic.fetch_and_add snapshot_epoch 1;
              v_fold =
                (fun ~init ~f -> Array.fold_left f init keys);
              v_fold_range =
                (fun ~lo ~hi ~init ~f ->
                  Array.fold_left
                    (fun acc k -> if k >= lo && k <= hi then f acc k else acc)
                    init keys);
              v_to_seq = (fun () -> Array.to_seq keys);
            }

  (* The protocol deliberately has no LIST bulk dump; enumerate the
     bounded universe with pipelined MEMBER batches instead (quiescent
     accuracy, which is all the signature promises). *)
  let to_list t =
    let c = client t in
    let acc = ref [] in
    let k = ref 0 in
    while !k < t.universe do
      let hi = min t.universe (!k + 512) in
      let ops = List.init (hi - !k) (fun i -> Protocol.Member (!k + i)) in
      let base = !k in
      List.iteri
        (fun i b -> if b then acc := (base + i) :: !acc)
        (Client.batch c ops);
      k := hi
    done;
    List.rev !acc
end

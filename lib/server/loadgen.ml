(** Closed-loop, multi-domain load generator for a patserve server.

    Each generator domain owns one connection and keeps a fixed number
    of requests in flight ([depth]): it tops the pipeline window up,
    then blocks on the next in-order response — the classic closed loop,
    so offered load self-regulates to what the server sustains and
    latency is measured per request (send-to-ack) rather than inferred.

    Correctness riding along with the benchmark: every acknowledged
    [true] to INSERT is +1 to the eventual set size and every
    acknowledged [true] to DELETE is -1 (REPLACE is size-neutral, and a
    [false] never changed anything), so after draining, the expected
    final SIZE is prefill + Σ delta regardless of interleaving.  The
    [size_delta] in the report is that sum; the caller checks it
    against a SIZE request.  A mismatch means an acknowledged operation
    did not happen — exactly the kind of lost-update a broken
    linearization point would produce. *)

type config = {
  addr : string;
  port : int;
  domains : int;
  depth : int;  (** pipeline window per connection *)
  seconds : float;
  mix : Harness.Mix.t;
  universe : int;
  dist : Harness.distribution;
  seed : int;
  journal : bool;
      (** record every acknowledged operation (and its result) per
          connection — the durability model the crash fuzzer replays *)
  tolerate_disconnect : bool;
      (** a dropped connection ends that generator's run (returning its
          journal so far) instead of failing the whole load — what a
          crash test killing the server mid-run needs *)
  partition : bool;
      (** give each generator domain a disjoint slice of the universe,
          so per-key operation order is total (one connection's order)
          and the journal is an unambiguous durability model *)
  scrape_port : int option;
      (** scrape [http://addr:port/metrics] at end of run and embed the
          server-side latency view (per-opcode p50/p99 and the WAL
          fsync p99) next to the client-side numbers — the cross-check
          that a client-observed tail is (or is not) server time *)
}

let default_config =
  {
    addr = "127.0.0.1";
    port = 7113;
    domains = 4;
    depth = 16;
    seconds = 5.0;
    mix = Harness.Mix.i10_d10_r80;
    universe = 1 lsl 16;
    dist = Harness.Uniform;
    seed = 42;
    journal = false;
    tolerate_disconnect = false;
    partition = false;
    scrape_port = None;
  }

(** One connection's acknowledged-operation journal: [acked] in ack
    order with each operation's boolean result, then the operations
    still in flight (sent, unacknowledged — each {e may} have executed)
    when the run ended, in send order.  Empty unless [config.journal]. *)
type journal = {
  acked : (Protocol.op * bool) list;
  in_flight : Protocol.op list;
}

type report = {
  ops : int;  (** acknowledged requests *)
  errors : int;  (** [Error] results (app-level; framing errors raise) *)
  elapsed_s : float;
  throughput : float;  (** acknowledged requests per second *)
  latency : Obs.Histogram.summary;  (** send-to-ack, nanoseconds *)
  per_op : (string * int) list;
  size_delta : int;
  disconnects : int;  (** generators that lost their connection *)
  journals : journal list;  (** one per generator domain, in order *)
  server_metrics : (string * float) list;
      (** server-side cross-check scraped from the metrics endpoint at
          end of run ([config.scrape_port]); empty when not scraped or
          the scrape failed *)
}

(* One generator domain's tally. *)
type tally = {
  mutable acked : int;
  mutable errs : int;
  mutable delta : int;
  counts : int array;
  mutable journal : (Protocol.op * bool) list; (* newest first *)
  mutable in_flight : Protocol.op list; (* oldest first *)
  mutable disconnected : bool;
}

let in_flight_op (cfg : config) (t : tally) hist q (resp : Protocol.response) =
  let seq, op, t0 = Queue.pop q in
  if resp.Protocol.seq <> seq then
    raise
      (Client.Protocol_error
         (Printf.sprintf "pipelined response out of order: expected %d, got %d"
            seq resp.Protocol.seq));
  let dt = Obs.Clock.now_ns () - t0 in
  Obs.Histogram.record hist dt;
  Harness.Live.op dt;
  t.acked <- t.acked + 1;
  let i = Protocol.op_index op in
  t.counts.(i) <- t.counts.(i) + 1;
  (if cfg.journal then
     match resp.Protocol.result with
     | Protocol.Bool b -> t.journal <- (op, b) :: t.journal
     | _ -> ());
  match (resp.Protocol.result, op) with
  | Protocol.Bool true, Protocol.Insert _ -> t.delta <- t.delta + 1
  | Protocol.Bool true, Protocol.Delete _ -> t.delta <- t.delta - 1
  | Protocol.Bool _, _ -> ()
  | Protocol.Error _, _ -> t.errs <- t.errs + 1
  | (Protocol.Count _ | Protocol.Many _), _ -> t.errs <- t.errs + 1

let worker (cfg : config) hist go d =
  let c = Client.connect ~addr:cfg.addr ~port:cfg.port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rng = Rng.of_int_seed (cfg.seed + (d * 104729) + 1) in
  let raw_key = Harness.key_stream cfg.dist cfg.universe rng in
  let next_key =
    if not cfg.partition then raw_key
    else begin
      (* Slice d of the universe; the remainder keys go unused so every
         slice is the same size and slices never overlap. *)
      let span = max 1 (cfg.universe / cfg.domains) in
      let base = d * span in
      fun () -> base + (raw_key () mod span)
    end
  in
  let m = cfg.mix in
  let t_ins = m.Harness.Mix.insert in
  let t_del = t_ins + m.Harness.Mix.delete in
  let t_find = t_del + m.Harness.Mix.find in
  let q = Queue.create () in
  let t =
    {
      acked = 0;
      errs = 0;
      delta = 0;
      counts = Array.make Protocol.op_count 0;
      journal = [];
      in_flight = [];
      disconnected = false;
    }
  in
  (* The operation being transmitted when a send fails never reached the
     queue but may have reached the server — it belongs in [in_flight]. *)
  let sending = ref None in
  let send_one () =
    let r = Rng.int rng 100 in
    let k = next_key () in
    let op =
      if r < t_ins then Protocol.Insert k
      else if r < t_del then Protocol.Delete k
      else if r < t_find then Protocol.Member k
      else Protocol.Replace { remove = k; add = next_key () }
    in
    sending := Some op;
    let seq = Client.send c op in
    sending := None;
    Queue.add (seq, op, Obs.Clock.now_ns ()) q
  in
  try
    while not (Atomic.get go) do Domain.cpu_relax () done;
    let deadline = Unix.gettimeofday () +. cfg.seconds in
    while Unix.gettimeofday () < deadline do
      while Queue.length q < cfg.depth do send_one () done;
      in_flight_op cfg t hist q (Client.recv c)
    done;
    (* Drain: every request sent must be acknowledged, or the size
       accounting would be meaningless. *)
    while not (Queue.is_empty q) do in_flight_op cfg t hist q (Client.recv c) done;
    t.journal <- List.rev t.journal;
    t
  with
  | (Client.Protocol_error _ | Unix.Unix_error (_, _, _)) as e
    when cfg.tolerate_disconnect ->
      (* The server went away mid-run (e.g. a crash test killed it).
         Everything still queued was sent but never acknowledged. *)
      ignore e;
      t.disconnected <- true;
      t.journal <- List.rev t.journal;
      t.in_flight <-
        List.rev
          (Queue.fold (fun acc (_, op, _) -> op :: acc) [] q)
        @ (match !sending with Some op -> [ op ] | None -> []);
      t

(* End-of-run server-side cross-check: one GET /metrics, then pull the
   per-opcode end-to-end server latency (stage="total" of the request
   stage decomposition) and the WAL fsync tail out of the exposition.
   Any failure yields an empty list — the load numbers stand on their
   own; the cross-check is advisory. *)
let scrape_server_metrics ~addr ~port =
  match Obs.Net.http_get ~addr ~port ~path:"/metrics" () with
  | Error _ | Ok (0, _) -> []
  | Ok (status, _) when status <> 200 -> []
  | Ok (_, body) ->
      let samples, _errs = Obs.Prometheus.parse_samples body in
      let take acc key name labels =
        match Obs.Prometheus.find_sample samples ~name ~labels with
        | Some v -> (key, v) :: acc
        | None -> acc
      in
      let acc =
        List.fold_left
          (fun acc op ->
            let acc =
              take acc
                (Printf.sprintf "server_%s_p50_ns" op)
                "patserve_request_stage_ns"
                [ ("op", op); ("stage", "total"); ("quantile", "0.5") ]
            in
            take acc
              (Printf.sprintf "server_%s_p99_ns" op)
              "patserve_request_stage_ns"
              [ ("op", op); ("stage", "total"); ("quantile", "0.99") ])
          []
          [ "insert"; "delete"; "member"; "replace" ]
      in
      let acc =
        take acc "server_wal_fsync_p99_ns" "patserve_wal_fsync_ns"
          [ ("quantile", "0.99") ]
      in
      List.rev acc

(** Run the configured load.  Raises [Client.Protocol_error] (or a
    connect failure) if any generator domain hits a framing-level
    problem; application-level [Error] results are only counted. *)
let run cfg =
  if cfg.domains < 1 then invalid_arg "Loadgen: domains must be >= 1";
  if cfg.depth < 1 then invalid_arg "Loadgen: depth must be >= 1";
  let hist = Obs.Histogram.create () in
  let go = Atomic.make false in
  let doms =
    List.init cfg.domains (fun d ->
        Domain.spawn (fun () -> worker cfg hist go d))
  in
  let t0 = Unix.gettimeofday () in
  Atomic.set go true;
  let tallies = List.map Domain.join doms in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let ops = List.fold_left (fun a t -> a + t.acked) 0 tallies in
  let errors = List.fold_left (fun a t -> a + t.errs) 0 tallies in
  let size_delta = List.fold_left (fun a t -> a + t.delta) 0 tallies in
  let per_op =
    List.init Protocol.op_count (fun i ->
        ( [| "insert"; "delete"; "member"; "replace"; "size"; "batch" |].(i),
          List.fold_left (fun a t -> a + t.counts.(i)) 0 tallies ))
  in
  let disconnects =
    List.fold_left (fun a t -> a + if t.disconnected then 1 else 0) 0 tallies
  in
  let journals =
    List.map (fun t -> { acked = t.journal; in_flight = t.in_flight }) tallies
  in
  let server_metrics =
    match cfg.scrape_port with
    | None -> []
    | Some p -> scrape_server_metrics ~addr:cfg.addr ~port:p
  in
  {
    ops;
    errors;
    elapsed_s;
    throughput = (if elapsed_s > 0. then float_of_int ops /. elapsed_s else 0.);
    latency = Obs.Histogram.snapshot hist;
    per_op;
    size_delta;
    disconnects;
    journals;
    server_metrics;
  }

(** Insert a random half of the universe through BATCH frames; returns
    how many inserts were acknowledged [true] (= the set's size if it
    started empty).  Deterministic in [seed]. *)
let prefill ?(addr = "127.0.0.1") ~port ~universe ~seed () =
  let c = Client.connect ~addr ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rng = Rng.of_int_seed seed in
  let keys = Array.init universe Fun.id in
  for i = universe - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- tmp
  done;
  let target = universe / 2 in
  let inserted = ref 0 in
  let k = ref 0 in
  while !k < target do
    let hi = min target (!k + 512) in
    let ops = List.init (hi - !k) (fun i -> Protocol.Insert keys.(!k + i)) in
    List.iter (fun b -> if b then incr inserted) (Client.batch c ops);
    k := hi
  done;
  !inserted

let report_to_json cfg (r : report) : Obs.Json.t =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 1);
      ("benchmark", Obs.Json.Str "patbench load");
      ( "config",
        Obs.Json.Obj
          [
            ("addr", Obs.Json.Str cfg.addr);
            ("port", Obs.Json.Int cfg.port);
            ("domains", Obs.Json.Int cfg.domains);
            ("depth", Obs.Json.Int cfg.depth);
            ("seconds", Obs.Json.Float cfg.seconds);
            ("mix", Obs.Json.Str (Harness.Mix.to_string cfg.mix));
            ("universe", Obs.Json.Int cfg.universe);
            ("seed", Obs.Json.Int cfg.seed);
          ] );
      ( "results",
        Obs.Json.Obj
          [
            ("ops", Obs.Json.Int r.ops);
            ("errors", Obs.Json.Int r.errors);
            ("elapsed_s", Obs.Json.Float r.elapsed_s);
            ("throughput_ops_per_sec", Obs.Json.Float r.throughput);
            ("latency_ns", Obs.Histogram.summary_to_json r.latency);
            ( "per_op",
              Obs.Json.Obj
                (List.map (fun (k, v) -> (k, Obs.Json.Int v)) r.per_op) );
            ("size_delta", Obs.Json.Int r.size_delta);
            ("disconnects", Obs.Json.Int r.disconnects);
            ( "server",
              match r.server_metrics with
              | [] -> Obs.Json.Null
              | kvs ->
                  Obs.Json.Obj
                    (List.map (fun (k, v) -> (k, Obs.Json.Float v)) kvs) );
          ] );
    ]

(** Closed-loop, multi-domain load generator for a patserve server.

    Each generator domain owns one connection and keeps a fixed number
    of requests in flight ([depth]): it tops the pipeline window up,
    then blocks on the next in-order response — the classic closed loop,
    so offered load self-regulates to what the server sustains and
    latency is measured per request (send-to-ack) rather than inferred.

    Correctness riding along with the benchmark: every acknowledged
    [true] to INSERT is +1 to the eventual set size and every
    acknowledged [true] to DELETE is -1 (REPLACE is size-neutral, and a
    [false] never changed anything), so after draining, the expected
    final SIZE is prefill + Σ delta regardless of interleaving.  The
    [size_delta] in the report is that sum; the caller checks it
    against a SIZE request.  A mismatch means an acknowledged operation
    did not happen — exactly the kind of lost-update a broken
    linearization point would produce. *)

type config = {
  addr : string;
  port : int;
  domains : int;
  depth : int;  (** pipeline window per connection *)
  seconds : float;
  mix : Harness.Mix.t;
  universe : int;
  dist : Harness.distribution;
  seed : int;
  journal : bool;
      (** record every acknowledged operation (and its result) per
          connection — the durability model the crash fuzzer replays *)
  tolerate_disconnect : bool;
      (** a dropped connection ends that generator's run (returning its
          journal so far) instead of failing the whole load — what a
          crash test killing the server mid-run needs *)
  partition : bool;
      (** give each generator domain a disjoint slice of the universe,
          so per-key operation order is total (one connection's order)
          and the journal is an unambiguous durability model *)
  scrape_port : int option;
      (** scrape [http://addr:port/metrics] at end of run and embed the
          server-side latency view (per-opcode p50/p99 and the WAL
          fsync p99) next to the client-side numbers — the cross-check
          that a client-observed tail is (or is not) server time *)
  scan_every : int;
      (** issue one SCAN page per this many generated requests (0 =
          never).  Each generator runs its own resumable cursor and
          verifies every page on receipt: keys strictly ascending, all
          past the cursor, all inside the universe — replaying the
          cursor contract the server promises.  A violation raises
          [Client.Protocol_error] and fails the run. *)
  scan_count : int;  (** page size for generated SCANs *)
}

let default_config =
  {
    addr = "127.0.0.1";
    port = 7113;
    domains = 4;
    depth = 16;
    seconds = 5.0;
    mix = Harness.Mix.i10_d10_r80;
    universe = 1 lsl 16;
    dist = Harness.Uniform;
    seed = 42;
    journal = false;
    tolerate_disconnect = false;
    partition = false;
    scrape_port = None;
    scan_every = 0;
    scan_count = 256;
  }

(** One connection's acknowledged-operation journal: [acked] in ack
    order with each operation's boolean result, then the operations
    still in flight (sent, unacknowledged — each {e may} have executed)
    when the run ended, in send order.  Empty unless [config.journal]. *)
type journal = {
  acked : (Protocol.op * bool) list;
  in_flight : Protocol.op list;
}

type report = {
  ops : int;  (** acknowledged requests *)
  scan_pages : int;  (** SCAN pages received (all verified) *)
  scan_keys : int;  (** keys streamed inside them *)
  errors : int;  (** [Error] results (app-level; framing errors raise) *)
  busy : int;  (** [Busy] declines (queue deadline) — not executed *)
  elapsed_s : float;
  throughput : float;  (** acknowledged requests per second *)
  latency : Obs.Histogram.summary;  (** send-to-ack, nanoseconds *)
  per_op : (string * int) list;
  size_delta : int;
  disconnects : int;  (** generators that lost their connection *)
  journals : journal list;  (** one per generator domain, in order *)
  server_metrics : (string * float) list;
      (** server-side cross-check scraped from the metrics endpoint at
          end of run ([config.scrape_port]); empty when not scraped or
          the scrape failed *)
}

(* One generator domain's tally. *)
type tally = {
  mutable acked : int;
  mutable errs : int;
  mutable busy : int;
  mutable delta : int;
  counts : int array;
  mutable journal : (Protocol.op * bool) list; (* newest first *)
  mutable in_flight : Protocol.op list; (* oldest first *)
  mutable disconnected : bool;
  mutable cursor : int; (* resumable scan position, -1 = start over *)
  mutable scan_pages : int;
  mutable scan_keys : int;
}

let in_flight_op (cfg : config) (t : tally) hist q (resp : Protocol.response) =
  let seq, op, t0 = Queue.pop q in
  if resp.Protocol.seq <> seq then
    raise
      (Client.Protocol_error
         (Printf.sprintf "pipelined response out of order: expected %d, got %d"
            seq resp.Protocol.seq));
  let dt = Obs.Clock.now_ns () - t0 in
  Obs.Histogram.record hist dt;
  Harness.Live.op dt;
  t.acked <- t.acked + 1;
  let i = Protocol.op_index op in
  t.counts.(i) <- t.counts.(i) + 1;
  (if cfg.journal then
     match resp.Protocol.result with
     | Protocol.Bool b -> t.journal <- (op, b) :: t.journal
     | _ -> ());
  match (resp.Protocol.result, op) with
  | Protocol.Bool true, Protocol.Insert _ -> t.delta <- t.delta + 1
  | Protocol.Bool true, Protocol.Delete _ -> t.delta <- t.delta - 1
  | Protocol.Bool _, _ -> ()
  | Protocol.Busy _, _ ->
      (* Declined under the server's queue deadline: not executed, so
         size-neutral by definition. *)
      t.busy <- t.busy + 1
  | Protocol.Page { next_cursor; complete; keys; _ }, Protocol.Scan { cursor; _ }
    ->
      (* Scan-result replay verification: the page must honor the
         cursor contract — strictly ascending keys, all past the
         cursor we sent, all inside the universe. *)
      let rec check prev = function
        | [] -> ()
        | k :: rest ->
            if k <= prev then
              raise
                (Client.Protocol_error
                   (Printf.sprintf
                      "scan page violates cursor contract: %d after %d" k prev));
            if k < 0 || k >= cfg.universe then
              raise
                (Client.Protocol_error
                   (Printf.sprintf "scan page key %d outside universe" k));
            check k rest
      in
      check cursor keys;
      (match (complete, keys) with
      | false, [] ->
          raise (Client.Protocol_error "incomplete scan page with no keys")
      | false, _ ->
          if next_cursor <> List.nth keys (List.length keys - 1) then
            raise
              (Client.Protocol_error "scan page cursor is not the last key")
      | true, _ -> ());
      t.scan_pages <- t.scan_pages + 1;
      t.scan_keys <- t.scan_keys + List.length keys;
      (* Resume from this page, wrap around when the walk is done. *)
      t.cursor <- (if complete then -1 else next_cursor)
  | Protocol.Page _, _ -> () (* scan pages are size-neutral *)
  | Protocol.Error _, _ -> t.errs <- t.errs + 1
  | (Protocol.Count _ | Protocol.Many _ | Protocol.Logrecs _ | Protocol.Hashes _), _ ->
      t.errs <- t.errs + 1

let worker (cfg : config) hist go d =
  let c = Client.connect ~addr:cfg.addr ~port:cfg.port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rng = Rng.of_int_seed (cfg.seed + (d * 104729) + 1) in
  let raw_key = Harness.key_stream cfg.dist cfg.universe rng in
  let next_key =
    if not cfg.partition then raw_key
    else begin
      (* Slice d of the universe; the remainder keys go unused so every
         slice is the same size and slices never overlap. *)
      let span = max 1 (cfg.universe / cfg.domains) in
      let base = d * span in
      fun () -> base + (raw_key () mod span)
    end
  in
  let m = cfg.mix in
  let t_ins = m.Harness.Mix.insert in
  let t_del = t_ins + m.Harness.Mix.delete in
  let t_find = t_del + m.Harness.Mix.find in
  let q = Queue.create () in
  let t =
    {
      acked = 0;
      errs = 0;
      busy = 0;
      delta = 0;
      counts = Array.make Protocol.op_count 0;
      journal = [];
      in_flight = [];
      disconnected = false;
      cursor = -1;
      scan_pages = 0;
      scan_keys = 0;
    }
  in
  (* The operation being transmitted when a send fails never reached the
     queue but may have reached the server — it belongs in [in_flight]. *)
  let sending = ref None in
  let sent = ref 0 in
  let send_one () =
    incr sent;
    let op =
      if cfg.scan_every > 0 && !sent mod cfg.scan_every = 0 then
        Protocol.Scan { cursor = t.cursor; count = cfg.scan_count }
      else
        let r = Rng.int rng 100 in
        let k = next_key () in
        if r < t_ins then Protocol.Insert k
        else if r < t_del then Protocol.Delete k
        else if r < t_find then Protocol.Member k
        else Protocol.Replace { remove = k; add = next_key () }
    in
    sending := Some op;
    let seq = Client.send c op in
    sending := None;
    Queue.add (seq, op, Obs.Clock.now_ns ()) q
  in
  try
    while not (Atomic.get go) do Domain.cpu_relax () done;
    let deadline = Unix.gettimeofday () +. cfg.seconds in
    while Unix.gettimeofday () < deadline do
      while Queue.length q < cfg.depth do send_one () done;
      in_flight_op cfg t hist q (Client.recv c)
    done;
    (* Drain: every request sent must be acknowledged, or the size
       accounting would be meaningless. *)
    while not (Queue.is_empty q) do in_flight_op cfg t hist q (Client.recv c) done;
    t.journal <- List.rev t.journal;
    t
  with
  | (Client.Protocol_error _ | Unix.Unix_error (_, _, _)) as e
    when cfg.tolerate_disconnect ->
      (* The server went away mid-run (e.g. a crash test killed it).
         Everything still queued was sent but never acknowledged. *)
      ignore e;
      t.disconnected <- true;
      t.journal <- List.rev t.journal;
      t.in_flight <-
        List.rev
          (Queue.fold (fun acc (_, op, _) -> op :: acc) [] q)
        @ (match !sending with Some op -> [ op ] | None -> []);
      t

(* End-of-run server-side cross-check: one GET /metrics, then pull the
   per-opcode end-to-end server latency (stage="total" of the request
   stage decomposition) and the WAL fsync tail out of the exposition.
   Any failure yields an empty list — the load numbers stand on their
   own; the cross-check is advisory. *)
let scrape_server_metrics ~addr ~port =
  match Obs.Net.http_get ~addr ~port ~path:"/metrics" () with
  | Error _ | Ok (0, _) -> []
  | Ok (status, _) when status <> 200 -> []
  | Ok (_, body) ->
      let samples, _errs = Obs.Prometheus.parse_samples body in
      let take acc key name labels =
        match Obs.Prometheus.find_sample samples ~name ~labels with
        | Some v -> (key, v) :: acc
        | None -> acc
      in
      let acc =
        List.fold_left
          (fun acc op ->
            let acc =
              take acc
                (Printf.sprintf "server_%s_p50_ns" op)
                "patserve_request_stage_ns"
                [ ("op", op); ("stage", "total"); ("quantile", "0.5") ]
            in
            take acc
              (Printf.sprintf "server_%s_p99_ns" op)
              "patserve_request_stage_ns"
              [ ("op", op); ("stage", "total"); ("quantile", "0.99") ])
          []
          [ "insert"; "delete"; "member"; "replace" ]
      in
      let acc =
        take acc "server_wal_fsync_p99_ns" "patserve_wal_fsync_ns"
          [ ("quantile", "0.99") ]
      in
      (* Descent-cost cross-check: the served trie's depth histogram
         (nodes visited per search), present when the server records
         stats — throughput next to the pointer chases explaining it. *)
      let acc =
        take acc "server_descent_depth_p50" "pat_descent_depth"
          [ ("quantile", "0.5") ]
      in
      let acc =
        take acc "server_descent_depth_p99" "pat_descent_depth"
          [ ("quantile", "0.99") ]
      in
      (* Replication lag at end of run: present when the server is a
         replication primary (slowest attached follower) or follower
         (behind its primary); absent on an unreplicated server. *)
      let acc = take acc "server_repl_lag_records" "patserve_repl_lag_records" [] in
      let acc = take acc "server_repl_lag_bytes" "patserve_repl_lag_bytes" [] in
      List.rev acc

(** Run the configured load.  Raises [Client.Protocol_error] (or a
    connect failure) if any generator domain hits a framing-level
    problem; application-level [Error] results are only counted. *)
let run cfg =
  if cfg.domains < 1 then invalid_arg "Loadgen: domains must be >= 1";
  if cfg.depth < 1 then invalid_arg "Loadgen: depth must be >= 1";
  let hist = Obs.Histogram.create () in
  let go = Atomic.make false in
  let doms =
    List.init cfg.domains (fun d ->
        Domain.spawn (fun () -> worker cfg hist go d))
  in
  let t0 = Unix.gettimeofday () in
  Atomic.set go true;
  let tallies = List.map Domain.join doms in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let ops = List.fold_left (fun a t -> a + t.acked) 0 tallies in
  let errors = List.fold_left (fun a t -> a + t.errs) 0 tallies in
  let busy = List.fold_left (fun a t -> a + t.busy) 0 tallies in
  let size_delta = List.fold_left (fun a t -> a + t.delta) 0 tallies in
  let scan_pages = List.fold_left (fun a t -> a + t.scan_pages) 0 tallies in
  let scan_keys = List.fold_left (fun a t -> a + t.scan_keys) 0 tallies in
  let per_op =
    List.init Protocol.op_count (fun i ->
        ( [|
            "insert"; "delete"; "member"; "replace"; "size"; "batch";
            "subscribe"; "logack"; "hashcheck"; "promote"; "scan"; "range";
          |].(i),
          List.fold_left (fun a t -> a + t.counts.(i)) 0 tallies ))
  in
  let disconnects =
    List.fold_left (fun a t -> a + if t.disconnected then 1 else 0) 0 tallies
  in
  let journals =
    List.map (fun t -> { acked = t.journal; in_flight = t.in_flight }) tallies
  in
  let server_metrics =
    match cfg.scrape_port with
    | None -> []
    | Some p -> scrape_server_metrics ~addr:cfg.addr ~port:p
  in
  {
    ops;
    scan_pages;
    scan_keys;
    errors;
    busy;
    elapsed_s;
    throughput = (if elapsed_s > 0. then float_of_int ops /. elapsed_s else 0.);
    latency = Obs.Histogram.snapshot hist;
    per_op;
    size_delta;
    disconnects;
    journals;
    server_metrics;
  }

(** Insert a random half of the universe through BATCH frames; returns
    how many inserts were acknowledged [true] (= the set's size if it
    started empty).  Deterministic in [seed]. *)
let prefill ?(addr = "127.0.0.1") ~port ~universe ~seed () =
  let c = Client.connect ~addr ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rng = Rng.of_int_seed seed in
  let keys = Array.init universe Fun.id in
  for i = universe - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- tmp
  done;
  let target = universe / 2 in
  let inserted = ref 0 in
  let k = ref 0 in
  while !k < target do
    let hi = min target (!k + 512) in
    let ops = List.init (hi - !k) (fun i -> Protocol.Insert keys.(!k + i)) in
    List.iter (fun b -> if b then incr inserted) (Client.batch c ops);
    k := hi
  done;
  !inserted

(* ------------------------------------------------------------------ *)
(* Open-loop mode.

   The closed loop above can never overload a server: its offered load
   self-regulates to whatever the server sustains, which is exactly the
   wrong instrument for measuring overload behaviour.  The open loop
   offers arrivals on a fixed schedule regardless of how the server is
   doing — what real traffic does — so when capacity is exceeded, the
   difference between [offered] and [acked] is visible instead of
   silently absorbed by the generator slowing down.

   Each generator domain owns one (non-blocking) connection and a
   deterministic arrival schedule at [rate / domains] per second.  An
   arrival encodes a request into the connection's outbox; select
   drives outbox writes and response reads between arrivals.  The
   generator never blocks on the server: if the server sheds the
   connection (seq-0 BUSY + close), is evicted from, or drops it, the
   generator counts the in-flight requests as [lost], backs off
   [reconnect_s], and keeps offering — arrivals with no connection are
   [lost] at the client, exactly like a user getting connection
   refused. *)

type open_config = {
  addr : string;
  port : int;
  domains : int;
  rate : float;  (** offered arrivals per second, across all domains *)
  seconds : float;
  mix : Harness.Mix.t;
  universe : int;
  dist : Harness.distribution;
  seed : int;
  reconnect_s : float;
      (** pause after losing the connection before dialing again *)
}

let default_open_config =
  {
    addr = "127.0.0.1";
    port = 7113;
    domains = 4;
    rate = 50_000.0;
    seconds = 5.0;
    mix = Harness.Mix.i10_d10_r80;
    universe = 1 lsl 16;
    dist = Harness.Uniform;
    seed = 42;
    reconnect_s = 0.05;
  }

type open_report = {
  offered : int;  (** arrivals the schedule produced *)
  sent : int;  (** requests that made it onto a connection *)
  acked : int;  (** requests answered with a real result — the goodput *)
  busy : int;  (** BUSY replies: accept-time sheds + queue-deadline declines *)
  errors : int;  (** [Error] results *)
  lost : int;
      (** arrivals dropped at the client (no connection) plus requests
          in flight when a connection died — each may or may not have
          executed *)
  disconnects : int;  (** connections lost (shed, evicted, or errored) *)
  elapsed_s : float;
  goodput : float;  (** acked per second *)
  shed_rate : float;  (** busy / offered *)
  latency : Obs.Histogram.summary;  (** send-to-ack of acked requests *)
}

type open_tally = {
  mutable o_offered : int;
  mutable o_sent : int;
  mutable o_acked : int;
  mutable o_busy : int;
  mutable o_errs : int;
  mutable o_lost : int;
  mutable o_disc : int;
}

let open_worker (cfg : open_config) hist go d =
  let rng = Rng.of_int_seed (cfg.seed + (d * 104729) + 7) in
  let next_key = Harness.key_stream cfg.dist cfg.universe rng in
  let m = cfg.mix in
  let t_ins = m.Harness.Mix.insert in
  let t_del = t_ins + m.Harness.Mix.delete in
  let t_find = t_del + m.Harness.Mix.find in
  let gen_op () =
    let r = Rng.int rng 100 in
    let k = next_key () in
    if r < t_ins then Protocol.Insert k
    else if r < t_del then Protocol.Delete k
    else if r < t_find then Protocol.Member k
    else Protocol.Replace { remove = k; add = next_key () }
  in
  let t =
    { o_offered = 0; o_sent = 0; o_acked = 0; o_busy = 0; o_errs = 0;
      o_lost = 0; o_disc = 0 }
  in
  let fd = ref None in
  let reader = ref (Protocol.Reader.create ()) in
  let outbox = Buffer.create 4096 in
  let out_off = ref 0 in
  let q : (int * int) Queue.t = Queue.create () in
  let next_seq = ref 1 in
  let scratch = Bytes.create 65536 in
  let reconnect_at = ref 0.0 in
  let drop_conn now =
    (match !fd with
    | Some f ->
        Obs.Net.close_noerr f;
        t.o_disc <- t.o_disc + 1
    | None -> ());
    fd := None;
    t.o_lost <- t.o_lost + Queue.length q;
    Queue.clear q;
    Buffer.clear outbox;
    out_off := 0;
    reader := Protocol.Reader.create ();
    reconnect_at := now +. cfg.reconnect_s
  in
  let try_connect now =
    if !fd = None && now >= !reconnect_at then begin
      let f = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.connect f
          (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.addr, cfg.port));
        Unix.setsockopt f Unix.TCP_NODELAY true;
        Unix.set_nonblock f
      with
      | () -> fd := Some f
      | exception Unix.Unix_error (_, _, _) ->
          Obs.Net.close_noerr f;
          reconnect_at := now +. cfg.reconnect_s
    end
  in
  let flush_outbox now =
    match !fd with
    | None -> ()
    | Some f ->
        let n = Buffer.length outbox - !out_off in
        if n > 0 then (
          let b = Buffer.to_bytes outbox in
          match Unix.write f b !out_off n with
          | w ->
              out_off := !out_off + w;
              if Buffer.length outbox - !out_off = 0 then begin
                Buffer.clear outbox;
                out_off := 0
              end
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              ()
          | exception Unix.Unix_error (_, _, _) -> drop_conn now)
  in
  let rec drain_responses now =
    match Protocol.Reader.next_payload !reader with
    | `None -> ()
    | `Bad _ -> drop_conn now
    | `Payload (buf, off, len) -> (
        match Protocol.decode_response buf ~off ~len with
        | Result.Error _ -> drop_conn now
        | Result.Ok resp ->
            (if resp.Protocol.seq = 0 then begin
               (* Accept-time shed (BUSY) or framing-level error: the
                  server is closing this connection either way. *)
               (match resp.Protocol.result with
               | Protocol.Busy _ -> t.o_busy <- t.o_busy + 1
               | _ -> t.o_errs <- t.o_errs + 1);
               drop_conn now
             end
             else
               match Queue.take_opt q with
               | None -> drop_conn now (* response with nothing in flight *)
               | Some (seq, t0) ->
                   if seq <> resp.Protocol.seq then drop_conn now
                   else (
                     match resp.Protocol.result with
                     | Protocol.Busy _ -> t.o_busy <- t.o_busy + 1
                     | Protocol.Error _ -> t.o_errs <- t.o_errs + 1
                     | _ ->
                         let dt = Obs.Clock.now_ns () - t0 in
                         Obs.Histogram.record hist dt;
                         Harness.Live.op dt;
                         t.o_acked <- t.o_acked + 1));
            if !fd <> None then drain_responses now)
  in
  let read_ready now =
    match !fd with
    | None -> ()
    | Some f -> (
        match Unix.read f scratch 0 (Bytes.length scratch) with
        | 0 -> drop_conn now
        | n ->
            Protocol.Reader.feed !reader scratch n;
            drain_responses now
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ()
        | exception Unix.Unix_error (_, _, _) -> drop_conn now)
  in
  while not (Atomic.get go) do Domain.cpu_relax () done;
  let start = Unix.gettimeofday () in
  let deadline = start +. cfg.seconds in
  let dt = float_of_int cfg.domains /. cfg.rate in
  (* Random phase so the domains' schedules interleave instead of
     thundering in lockstep. *)
  let next_arrival = ref (start +. (Rng.float rng *. dt)) in
  let finished = ref false in
  while not !finished do
    let now = Unix.gettimeofday () in
    while !next_arrival <= now && !next_arrival < deadline do
      t.o_offered <- t.o_offered + 1;
      try_connect now;
      (match !fd with
      | None -> t.o_lost <- t.o_lost + 1
      | Some _ ->
          let seq = !next_seq in
          next_seq := (if seq >= 0xFFFFFFFF then 1 else seq + 1);
          Protocol.encode_request outbox { Protocol.seq; op = gen_op () };
          Queue.add (seq, Obs.Clock.now_ns ()) q;
          t.o_sent <- t.o_sent + 1);
      next_arrival := !next_arrival +. dt
    done;
    let now = Unix.gettimeofday () in
    if now >= deadline && (Queue.is_empty q || now > deadline +. 1.0) then
      finished := true
    else begin
      let timeout =
        if now >= deadline then 0.01
        else Float.max 0.0 (Float.min 0.01 (!next_arrival -. now))
      in
      match !fd with
      | None -> if timeout > 0. then Unix.sleepf timeout
      | Some f -> (
          let wrs = if Buffer.length outbox - !out_off > 0 then [ f ] else [] in
          match Unix.select [ f ] wrs [] timeout with
          | rd, wr, _ ->
              let now = Unix.gettimeofday () in
              if wr <> [] then flush_outbox now;
              if rd <> [] then read_ready now
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    end
  done;
  (match !fd with Some f -> Obs.Net.close_noerr f | None -> ());
  t.o_lost <- t.o_lost + Queue.length q;
  t

(** Offer load on a fixed schedule (see the module comment above) and
    report what came back.  Never raises on server overload — sheds,
    evictions and disconnects are what it is built to measure. *)
let run_open (cfg : open_config) =
  if cfg.domains < 1 then invalid_arg "Loadgen: domains must be >= 1";
  if cfg.rate <= 0.0 then invalid_arg "Loadgen: rate must be > 0";
  (* Writing into a connection the server just shed or evicted must be
     an EPIPE (-> reconnect), not a fatal signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let hist = Obs.Histogram.create () in
  let go = Atomic.make false in
  let doms =
    List.init cfg.domains (fun d ->
        Domain.spawn (fun () -> open_worker cfg hist go d))
  in
  let t0 = Unix.gettimeofday () in
  Atomic.set go true;
  let tallies = List.map Domain.join doms in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let sum f = List.fold_left (fun a t -> a + f t) 0 tallies in
  let offered = sum (fun t -> t.o_offered) in
  let acked = sum (fun t -> t.o_acked) in
  let busy = sum (fun t -> t.o_busy) in
  {
    offered;
    sent = sum (fun t -> t.o_sent);
    acked;
    busy;
    errors = sum (fun t -> t.o_errs);
    lost = sum (fun t -> t.o_lost);
    disconnects = sum (fun t -> t.o_disc);
    elapsed_s;
    goodput =
      (if elapsed_s > 0. then float_of_int acked /. elapsed_s else 0.);
    shed_rate =
      (if offered > 0 then float_of_int busy /. float_of_int offered else 0.);
    latency = Obs.Histogram.snapshot hist;
  }

let open_report_to_json (cfg : open_config) (r : open_report) : Obs.Json.t =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 1);
      ("benchmark", Obs.Json.Str "patbench load --open-loop");
      ( "config",
        Obs.Json.Obj
          [
            ("addr", Obs.Json.Str cfg.addr);
            ("port", Obs.Json.Int cfg.port);
            ("domains", Obs.Json.Int cfg.domains);
            ("rate", Obs.Json.Float cfg.rate);
            ("seconds", Obs.Json.Float cfg.seconds);
            ("mix", Obs.Json.Str (Harness.Mix.to_string cfg.mix));
            ("universe", Obs.Json.Int cfg.universe);
            ("seed", Obs.Json.Int cfg.seed);
          ] );
      ( "results",
        Obs.Json.Obj
          [
            ("offered", Obs.Json.Int r.offered);
            ("sent", Obs.Json.Int r.sent);
            ("acked", Obs.Json.Int r.acked);
            ("busy", Obs.Json.Int r.busy);
            ("errors", Obs.Json.Int r.errors);
            ("lost", Obs.Json.Int r.lost);
            ("disconnects", Obs.Json.Int r.disconnects);
            ("elapsed_s", Obs.Json.Float r.elapsed_s);
            ("goodput_ops_per_sec", Obs.Json.Float r.goodput);
            ("shed_rate", Obs.Json.Float r.shed_rate);
            ("latency_ns", Obs.Histogram.summary_to_json r.latency);
          ] );
    ]

let report_to_json (cfg : config) (r : report) : Obs.Json.t =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 1);
      ("benchmark", Obs.Json.Str "patbench load");
      ( "config",
        Obs.Json.Obj
          [
            ("addr", Obs.Json.Str cfg.addr);
            ("port", Obs.Json.Int cfg.port);
            ("domains", Obs.Json.Int cfg.domains);
            ("depth", Obs.Json.Int cfg.depth);
            ("seconds", Obs.Json.Float cfg.seconds);
            ("mix", Obs.Json.Str (Harness.Mix.to_string cfg.mix));
            ("universe", Obs.Json.Int cfg.universe);
            ("seed", Obs.Json.Int cfg.seed);
          ] );
      ( "results",
        Obs.Json.Obj
          [
            ("ops", Obs.Json.Int r.ops);
            ("errors", Obs.Json.Int r.errors);
            ("busy", Obs.Json.Int r.busy);
            ("elapsed_s", Obs.Json.Float r.elapsed_s);
            ("throughput_ops_per_sec", Obs.Json.Float r.throughput);
            ("latency_ns", Obs.Histogram.summary_to_json r.latency);
            ( "per_op",
              Obs.Json.Obj
                (List.map (fun (k, v) -> (k, Obs.Json.Int v)) r.per_op) );
            ("size_delta", Obs.Json.Int r.size_delta);
            ("scan_pages", Obs.Json.Int r.scan_pages);
            ("scan_keys", Obs.Json.Int r.scan_keys);
            ("disconnects", Obs.Json.Int r.disconnects);
            ( "server",
              match r.server_metrics with
              | [] -> Obs.Json.Null
              | kvs ->
                  Obs.Json.Obj
                    (List.map (fun (k, v) -> (k, Obs.Json.Float v)) kvs) );
          ] );
    ]

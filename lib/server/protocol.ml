(* Wire protocol of the patserve set server; see protocol.mli for the
   frame grammar.  Decoders are written against hostile input: every
   read is bounds-checked and every malformed shape returns [Error],
   because a decode exception escaping a worker domain would kill the
   very thread of control the non-blocking structure keeps alive. *)

let max_frame_payload = 1 lsl 20
let max_batch = 0xFFFF

type op =
  | Insert of int
  | Delete of int
  | Member of int
  | Replace of { remove : int; add : int }
  | Size
  | Batch of op list
  | Subscribe of { from_seq : int }
  | Logack of { applied_seq : int }
  | Hashcheck of { prefix : int; len : int }
  | Promote
  | Scan of { cursor : int; count : int }
  | Range of { lo : int; hi : int; cursor : int; count : int }

(* One replicated log record as it crosses the wire inside a LOGRECS
   push: the primary's WAL sequence number plus the mutation, re-using
   the request op encoding (restricted to INSERT/DELETE/REPLACE). *)
type logrec = { rseq : int; rop : op }

type request = { seq : int; op : op }

type result_ =
  | Bool of bool
  | Count of int
  | Many of bool list
  | Logrecs of { head_seq : int; recs : logrec list }
  | Hashes of { node : int; left : int; right : int }
  | Page of { cut : int; next_cursor : int; complete : bool; keys : int list }
  | Busy of { retry_after_ms : int }
  | Error of string

type response = { seq : int; result : result_ }

let op_name = function
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Member _ -> "member"
  | Replace _ -> "replace"
  | Size -> "size"
  | Batch _ -> "batch"
  | Subscribe _ -> "subscribe"
  | Logack _ -> "logack"
  | Hashcheck _ -> "hashcheck"
  | Promote -> "promote"
  | Scan _ -> "scan"
  | Range _ -> "range"

let op_index = function
  | Insert _ -> 0
  | Delete _ -> 1
  | Member _ -> 2
  | Replace _ -> 3
  | Size -> 4
  | Batch _ -> 5
  | Subscribe _ -> 6
  | Logack _ -> 7
  | Hashcheck _ -> 8
  | Promote -> 9
  | Scan _ -> 10
  | Range _ -> 11

let op_count = 12

(* Opcode and status bytes. *)
let opc_insert = 1
and opc_delete = 2
and opc_member = 3
and opc_replace = 4
and opc_size = 5
and opc_batch = 6
and opc_subscribe = 7
and opc_logack = 8
and opc_hashcheck = 9
and opc_promote = 10
and opc_scan = 11
and opc_range = 12

let st_false = 0
and st_true = 1
and st_count = 2
and st_many = 3
and st_logrecs = 4
and st_hashes = 5
and st_page = 6
and st_busy = 254
and st_error = 255

let max_logrecs = 0xFFFF

(* A full page (8192 keys x 8 bytes) stays an order of magnitude under
   [max_frame_payload], so a PAGE frame can never trip the framing cap
   that protects the connection buffers. *)
let max_page_keys = 8192

(* ------------------------------------------------------------------ *)
(* Encoding.  Frames are assembled payload-first into the caller's
   buffer: reserve 4 bytes, write the payload, patch the length in.
   Buffer has no random access, so instead encode into a scratch and
   blit — payloads are small (<= a batch), this stays cheap. *)

let add_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u32 buf v = Buffer.add_int32_be buf (Int32.of_int v)
let add_i64 buf v = Buffer.add_int64_be buf (Int64.of_int v)

let check_seq seq =
  if seq < 0 || seq > 0xFFFFFFFF then
    invalid_arg "Protocol: seq out of u32 range"

let encode_simple_op buf op =
  match op with
  | Insert k ->
      Buffer.add_char buf (Char.chr opc_insert);
      add_i64 buf k
  | Delete k ->
      Buffer.add_char buf (Char.chr opc_delete);
      add_i64 buf k
  | Member k ->
      Buffer.add_char buf (Char.chr opc_member);
      add_i64 buf k
  | Replace { remove; add } ->
      Buffer.add_char buf (Char.chr opc_replace);
      add_i64 buf remove;
      add_i64 buf add
  | Size -> Buffer.add_char buf (Char.chr opc_size)
  | Batch _ -> invalid_arg "Protocol: nested BATCH"
  | Subscribe _ | Logack _ | Hashcheck _ | Promote ->
      invalid_arg "Protocol: replication op is not a simple op"
  | Scan _ | Range _ -> invalid_arg "Protocol: scan op is not a simple op"

let encode_op buf op =
  match op with
  | Batch ops ->
      let n = List.length ops in
      if n > max_batch then invalid_arg "Protocol: BATCH too large";
      Buffer.add_char buf (Char.chr opc_batch);
      add_u16 buf n;
      List.iter
        (fun o ->
          match o with
          | Size -> invalid_arg "Protocol: SIZE inside BATCH"
          | o -> encode_simple_op buf o)
        ops
  | Subscribe { from_seq } ->
      Buffer.add_char buf (Char.chr opc_subscribe);
      add_i64 buf from_seq
  | Logack { applied_seq } ->
      Buffer.add_char buf (Char.chr opc_logack);
      add_i64 buf applied_seq
  | Hashcheck { prefix; len } ->
      if len < 0 || len > 0xFF then
        invalid_arg "Protocol: HASHCHECK prefix length out of u8 range";
      Buffer.add_char buf (Char.chr opc_hashcheck);
      add_i64 buf prefix;
      Buffer.add_char buf (Char.chr len)
  | Promote -> Buffer.add_char buf (Char.chr opc_promote)
  | Scan { cursor; count } ->
      if count < 1 || count > max_page_keys then
        invalid_arg "Protocol: SCAN count out of range";
      Buffer.add_char buf (Char.chr opc_scan);
      add_i64 buf cursor;
      add_u16 buf count
  | Range { lo; hi; cursor; count } ->
      if count < 1 || count > max_page_keys then
        invalid_arg "Protocol: RANGE count out of range";
      Buffer.add_char buf (Char.chr opc_range);
      add_i64 buf lo;
      add_i64 buf hi;
      add_i64 buf cursor;
      add_u16 buf count
  | op -> encode_simple_op buf op

let frame buf payload =
  let len = Buffer.length payload in
  if len > max_frame_payload then invalid_arg "Protocol: frame too large";
  add_u32 buf len;
  Buffer.add_buffer buf payload

let encode_request buf { seq; op } =
  check_seq seq;
  let p = Buffer.create 32 in
  add_u32 p seq;
  encode_op p op;
  frame buf p

let encode_response buf { seq; result } =
  check_seq seq;
  let p = Buffer.create 32 in
  add_u32 p seq;
  (match result with
  | Bool false -> Buffer.add_char p (Char.chr st_false)
  | Bool true -> Buffer.add_char p (Char.chr st_true)
  | Count v ->
      Buffer.add_char p (Char.chr st_count);
      add_i64 p v
  | Many bs ->
      let n = List.length bs in
      if n > max_batch then invalid_arg "Protocol: MANY too large";
      Buffer.add_char p (Char.chr st_many);
      add_u16 p n;
      List.iter (fun b -> Buffer.add_char p (if b then '\001' else '\000')) bs
  | Logrecs { head_seq; recs } ->
      let n = List.length recs in
      if n > max_logrecs then invalid_arg "Protocol: LOGRECS too large";
      Buffer.add_char p (Char.chr st_logrecs);
      add_i64 p head_seq;
      add_u16 p n;
      List.iter
        (fun { rseq; rop } ->
          (match rop with
          | Insert _ | Delete _ | Replace _ -> ()
          | _ -> invalid_arg "Protocol: LOGRECS record must be a mutation");
          add_i64 p rseq;
          encode_simple_op p rop)
        recs
  | Hashes { node; left; right } ->
      Buffer.add_char p (Char.chr st_hashes);
      add_i64 p node;
      add_i64 p left;
      add_i64 p right
  | Page { cut; next_cursor; complete; keys } ->
      let n = List.length keys in
      if n > max_page_keys then invalid_arg "Protocol: PAGE too large";
      Buffer.add_char p (Char.chr st_page);
      add_i64 p cut;
      add_i64 p next_cursor;
      Buffer.add_char p (if complete then '\001' else '\000');
      add_u16 p n;
      List.iter (fun k -> add_i64 p k) keys
  | Busy { retry_after_ms } ->
      if retry_after_ms < 0 || retry_after_ms > 0xFFFFFFFF then
        invalid_arg "Protocol: retry_after_ms out of u32 range";
      Buffer.add_char p (Char.chr st_busy);
      add_u32 p retry_after_ms
  | Error msg ->
      Buffer.add_char p (Char.chr st_error);
      let room = max_frame_payload - Buffer.length p in
      Buffer.add_string p
        (if String.length msg <= room then msg else String.sub msg 0 room));
  frame buf p

(* ------------------------------------------------------------------ *)
(* Decoding: a bounds-checked cursor over one payload. *)

type cursor = { buf : Bytes.t; limit : int; mutable pos : int }

exception Bad of string

let need c n = if c.pos + n > c.limit then raise (Bad "truncated frame body")

let u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let u16 c =
  need c 2;
  let v =
    (Char.code (Bytes.get c.buf c.pos) lsl 8)
    lor Char.code (Bytes.get c.buf (c.pos + 1))
  in
  c.pos <- c.pos + 2;
  v

let u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_be c.buf c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let i64 c =
  need c 8;
  let v64 = Bytes.get_int64_be c.buf c.pos in
  c.pos <- c.pos + 8;
  let v = Int64.to_int v64 in
  (* OCaml ints are 63-bit; a wire value that does not round-trip was
     never produced by a well-behaved peer. *)
  if Int64.of_int v <> v64 then raise (Bad "integer out of range");
  v

let decode_simple_op c opc =
  if opc = opc_insert then Insert (i64 c)
  else if opc = opc_delete then Delete (i64 c)
  else if opc = opc_member then Member (i64 c)
  else if opc = opc_replace then
    let remove = i64 c in
    let add = i64 c in
    Replace { remove; add }
  else if opc = opc_size then Size
  else raise (Bad (Printf.sprintf "unknown opcode %d" opc))

let decode_op c =
  match u8 c with
  | opc when opc = opc_batch ->
      let n = u16 c in
      let rec go i acc =
        if i = n then List.rev acc
        else
          match u8 c with
          | opc when opc = opc_batch -> raise (Bad "nested BATCH")
          | opc when opc = opc_size -> raise (Bad "SIZE inside BATCH")
          | opc -> go (i + 1) (decode_simple_op c opc :: acc)
      in
      Batch (go 0 [])
  | opc when opc = opc_subscribe -> Subscribe { from_seq = i64 c }
  | opc when opc = opc_logack -> Logack { applied_seq = i64 c }
  | opc when opc = opc_hashcheck ->
      let prefix = i64 c in
      let len = u8 c in
      Hashcheck { prefix; len }
  | opc when opc = opc_promote -> Promote
  | opc when opc = opc_scan ->
      let cursor = i64 c in
      let count = u16 c in
      if count < 1 || count > max_page_keys then
        raise (Bad "SCAN count out of range");
      Scan { cursor; count }
  | opc when opc = opc_range ->
      let lo = i64 c in
      let hi = i64 c in
      let cursor = i64 c in
      let count = u16 c in
      if count < 1 || count > max_page_keys then
        raise (Bad "RANGE count out of range");
      Range { lo; hi; cursor; count }
  | opc -> decode_simple_op c opc

let finish c v =
  if c.pos <> c.limit then Result.Error "trailing bytes in frame"
  else Result.Ok v

let decode_request buf ~off ~len =
  if len < 5 then Result.Error "request payload shorter than seq+opcode"
  else
    let c = { buf; limit = off + len; pos = off } in
    match
      let seq = u32 c in
      let op = decode_op c in
      { seq; op }
    with
    | req -> finish c req
    | exception Bad msg -> Result.Error msg

let decode_response buf ~off ~len =
  if len < 5 then Result.Error "response payload shorter than seq+status"
  else
    let c = { buf; limit = off + len; pos = off } in
    match
      let seq = u32 c in
      let result =
        match u8 c with
        | st when st = st_false -> Bool false
        | st when st = st_true -> Bool true
        | st when st = st_count -> Count (i64 c)
        | st when st = st_many ->
            let n = u16 c in
            let rec go i acc =
              if i = n then List.rev acc
              else
                match u8 c with
                | 0 -> go (i + 1) (false :: acc)
                | 1 -> go (i + 1) (true :: acc)
                | _ -> raise (Bad "MANY element not a boolean")
            in
            Many (go 0 [])
        | st when st = st_logrecs ->
            let head_seq = i64 c in
            let n = u16 c in
            let rec go i acc =
              if i = n then List.rev acc
              else
                let rseq = i64 c in
                let rop = decode_simple_op c (u8 c) in
                (match rop with
                | Insert _ | Delete _ | Replace _ -> ()
                | _ -> raise (Bad "LOGRECS record is not a mutation"));
                go (i + 1) ({ rseq; rop } :: acc)
            in
            Logrecs { head_seq; recs = go 0 [] }
        | st when st = st_hashes ->
            let node = i64 c in
            let left = i64 c in
            let right = i64 c in
            Hashes { node; left; right }
        | st when st = st_page ->
            let cut = i64 c in
            let next_cursor = i64 c in
            let complete =
              match u8 c with
              | 0 -> false
              | 1 -> true
              | _ -> raise (Bad "PAGE complete flag not a boolean")
            in
            let n = u16 c in
            if n > max_page_keys then raise (Bad "PAGE too large");
            let rec go i acc =
              if i = n then List.rev acc else go (i + 1) (i64 c :: acc)
            in
            Page { cut; next_cursor; complete; keys = go 0 [] }
        | st when st = st_busy -> Busy { retry_after_ms = u32 c }
        | st when st = st_error ->
            let msg = Bytes.sub_string c.buf c.pos (c.limit - c.pos) in
            c.pos <- c.limit;
            Error msg
        | st -> raise (Bad (Printf.sprintf "unknown status %d" st))
      in
      { seq; result }
    with
    | resp -> finish c resp
    | exception Bad msg -> Result.Error msg

(* ------------------------------------------------------------------ *)
(* Incremental frame reader. *)

module Reader = struct
  type t = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

  let create () = { buf = Bytes.create 4096; start = 0; len = 0 }

  let buffered t = t.len

  (* Make room for [n] more bytes: compact in place when the dead
     prefix suffices, grow (doubling) otherwise. *)
  let reserve t n =
    let cap = Bytes.length t.buf in
    if t.start + t.len + n > cap then
      if t.len + n <= cap then begin
        Bytes.blit t.buf t.start t.buf 0 t.len;
        t.start <- 0
      end
      else begin
        let cap' = max (t.len + n) (cap * 2) in
        let buf' = Bytes.create cap' in
        Bytes.blit t.buf t.start buf' 0 t.len;
        t.buf <- buf';
        t.start <- 0
      end

  let feed t src n =
    reserve t n;
    Bytes.blit src 0 t.buf (t.start + t.len) n;
    t.len <- t.len + n

  let next_payload t =
    if t.len < 4 then `None
    else
      let plen =
        Int32.to_int (Bytes.get_int32_be t.buf t.start) land 0xFFFFFFFF
      in
      if plen < 5 then `Bad (Printf.sprintf "frame payload too short (%d)" plen)
      else if plen > max_frame_payload then
        `Bad (Printf.sprintf "frame payload too large (%d)" plen)
      else if t.len < 4 + plen then `None
      else begin
        let off = t.start + 4 in
        t.start <- t.start + 4 + plen;
        t.len <- t.len - 4 - plen;
        if t.len = 0 then t.start <- 0;
        `Payload (t.buf, off, plen)
      end
end

(** Blocking client for the patserve protocol, with explicit pipelining
    and an optional resilience layer.

    One connection, not domain-safe: create one client per domain (the
    loopback adapter and the load generator both do).  The two-level
    API mirrors the protocol: {!request} is one synchronous round trip;
    {!send}/{!recv} split the two halves so a caller can keep many
    requests in flight and match the (in-order) responses by tag, which
    is what the closed-loop load generator builds its window on.

    The resilience layer wraps only the synchronous helpers
    ({!insert} .. {!batch}).  With [retries > 0] they transparently
    survive the server's overload replies: a BUSY decline backs off
    (bounded exponential with jitter, floored at the server's
    retry-after hint — {!Chaos.Backoff.sleep}) and resends; an
    accept-time shed or dropped connection reconnects first.  BUSY
    always means the operation did {e not} execute, so those retries
    are exactly-once; a reconnect retry after a mid-flight disconnect
    is at-least-once (the lost reply may have been a completed
    operation) — same contract as any TCP client.  [op_timeout_s]
    bounds each socket operation; a deadline overrun raises {!Timeout}
    after resynchronizing the connection (the late reply must not be
    read as the answer to the next request). *)

exception Protocol_error of string

exception Busy of { retry_after_ms : int }
(** The server declined (or shed) the operation; it did not execute.
    Raised by the synchronous helpers once the retry budget (if any) is
    exhausted. *)

exception Timeout
(** A socket operation overran [op_timeout_s]. *)

(* Internal: a seq-0 BUSY frame — the server shed this connection at
   accept time and closed it.  Distinguished from a per-request BUSY
   because recovery differs: a shed needs a reconnect, a decline just a
   resend.  Converted to {!Busy} before escaping. *)
exception Shed of int

type t = {
  mutable fd : Unix.file_descr;
  mutable reader : Protocol.Reader.t;
  scratch : Bytes.t;
  sendbuf : Buffer.t;
  mutable next_seq : int;
  addr : string;
  port : int;
  retries : int;
  op_timeout_s : float option;
}

let open_conn ~addr ~port ~op_timeout_s =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     (* The protocol is request/response over small frames; Nagle would
        serialize the pipeline into 40ms lockstep. *)
     Unix.setsockopt fd Unix.TCP_NODELAY true;
     match op_timeout_s with
     | Some s ->
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
     | None -> ()
   with e ->
     Obs.Net.close_noerr fd;
     raise e);
  fd

let connect ?(addr = "127.0.0.1") ~port ?(retries = 0) ?op_timeout_s () =
  if retries < 0 then invalid_arg "Client.connect: retries must be >= 0";
  (* A server that evicts or sheds us closes mid-write; that must be an
     EPIPE on this connection, not a fatal signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  {
    fd = open_conn ~addr ~port ~op_timeout_s;
    reader = Protocol.Reader.create ();
    scratch = Bytes.create 65536;
    sendbuf = Buffer.create 256;
    next_seq = 1;
    addr;
    port;
    retries;
    op_timeout_s;
  }

let close t = Obs.Net.close_noerr t.fd

(* Drop the (possibly desynchronized) connection and establish a fresh
   one.  Any in-flight requests are forgotten — the retry layer only
   reconnects between synchronous operations, where the window is
   empty. *)
let reconnect t =
  Obs.Net.close_noerr t.fd;
  t.reader <- Protocol.Reader.create ();
  t.fd <- open_conn ~addr:t.addr ~port:t.port ~op_timeout_s:t.op_timeout_s

let write_all t buf =
  let b = Buffer.to_bytes buf in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write t.fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        when t.op_timeout_s <> None ->
          raise Timeout
      | exception Unix.Unix_error (e, _, _) ->
          raise (Protocol_error ("write: " ^ Unix.error_message e))
  in
  go 0

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- (if s >= 0xFFFFFFFF then 1 else s + 1);
  s

(** [send t op] transmits one request and returns its tag. *)
let send t op =
  let seq = fresh_seq t in
  Buffer.clear t.sendbuf;
  Protocol.encode_request t.sendbuf { seq; op };
  write_all t t.sendbuf;
  seq

(** [send_many t ops] transmits a whole pipeline window in one write;
    returns the tags in order. *)
let send_many t ops =
  Buffer.clear t.sendbuf;
  let seqs =
    List.map
      (fun op ->
        let seq = fresh_seq t in
        Protocol.encode_request t.sendbuf { seq; op };
        seq)
      ops
  in
  write_all t t.sendbuf;
  seqs

(** Next response off the wire (responses arrive in request order). *)
let rec recv t =
  match Protocol.Reader.next_payload t.reader with
  | `Bad msg -> raise (Protocol_error msg)
  | `Payload (buf, off, len) -> (
      match Protocol.decode_response buf ~off ~len with
      | Result.Ok r -> r
      | Result.Error msg -> raise (Protocol_error msg))
  | `None -> (
      match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
      | 0 -> raise (Protocol_error "connection closed by server")
      | n ->
          Protocol.Reader.feed t.reader t.scratch n;
          recv t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv t
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        when t.op_timeout_s <> None ->
          raise Timeout
      | exception Unix.Unix_error (e, _, _) ->
          raise (Protocol_error ("read: " ^ Unix.error_message e)))

let expect_seq seq (r : Protocol.response) =
  if r.Protocol.seq = 0 then
    match r.Protocol.result with
    | Protocol.Busy { retry_after_ms } -> raise (Shed retry_after_ms)
    | Protocol.Error msg ->
        raise (Protocol_error ("connection-level error: " ^ msg))
    | _ -> raise (Protocol_error "unexpected seq-0 response")
  else if r.Protocol.seq <> seq then
    raise
      (Protocol_error
         (Printf.sprintf "response out of order: expected seq %d, got %d" seq
            r.Protocol.seq));
  r.Protocol.result

(** One synchronous round trip; application-level [Error] raises.  No
    retries at this level — see the synchronous helpers. *)
let request t op =
  let seq = send t op in
  match expect_seq seq (recv t) with
  | Protocol.Error msg -> raise (Protocol_error ("server error: " ^ msg))
  | r -> r

(** [pipeline t ops] sends every request before reading any response:
    the whole window shares one round trip.  Results come back in
    order; [Error] (and [Busy]) results are returned, not raised, so
    one bad operation does not lose its siblings. *)
let pipeline t ops =
  let seqs = send_many t ops in
  List.map (fun seq -> expect_seq seq (recv t)) seqs

(* The retry loop behind the synchronous helpers.  Timeouts are never
   retried — the caller asked for a deadline, not persistence — but the
   connection is resynchronized first so the late reply cannot be
   matched to a later request. *)
let with_retry t f =
  let ms_floor hint = float_of_int hint /. 1000. in
  let rec go attempt cap =
    match f () with
    | r -> r
    | exception Busy { retry_after_ms } when attempt < t.retries ->
        let cap = Chaos.Backoff.sleep ~floor_s:(ms_floor retry_after_ms) cap in
        go (attempt + 1) cap
    | exception Shed hint ->
        if attempt < t.retries then begin
          let cap = Chaos.Backoff.sleep ~floor_s:(ms_floor hint) cap in
          (match reconnect t with
          | () -> ()
          | exception Unix.Unix_error (_, _, _) -> ());
          go (attempt + 1) cap
        end
        else raise (Busy { retry_after_ms = hint })
    | exception Protocol_error _ when attempt < t.retries ->
        let cap = Chaos.Backoff.sleep cap in
        (match reconnect t with
        | () -> ()
        | exception Unix.Unix_error (_, _, _) -> ());
        go (attempt + 1) cap
    | exception Timeout ->
        (match reconnect t with
        | () -> ()
        | exception Unix.Unix_error (_, _, _) -> ());
        raise Timeout
  in
  go 0 Chaos.Backoff.init

let bool_result = function
  | Protocol.Bool b -> b
  | Protocol.Busy { retry_after_ms } -> raise (Busy { retry_after_ms })
  | Protocol.Error msg -> raise (Protocol_error ("server error: " ^ msg))
  | _ -> raise (Protocol_error "expected boolean result")

let insert t k = with_retry t (fun () -> bool_result (request t (Protocol.Insert k)))
let delete t k = with_retry t (fun () -> bool_result (request t (Protocol.Delete k)))
let member t k = with_retry t (fun () -> bool_result (request t (Protocol.Member k)))

let replace t ~remove ~add =
  with_retry t (fun () ->
      bool_result (request t (Protocol.Replace { remove; add })))

let size t =
  with_retry t (fun () ->
      match request t Protocol.Size with
      | Protocol.Count n -> n
      | Protocol.Busy { retry_after_ms } -> raise (Busy { retry_after_ms })
      | _ -> raise (Protocol_error "expected count result"))

let batch t ops =
  with_retry t (fun () ->
      match request t (Protocol.Batch ops) with
      | Protocol.Many bs -> bs
      | Protocol.Busy { retry_after_ms } -> raise (Busy { retry_after_ms })
      | _ -> raise (Protocol_error "expected vector result"))

(** [promote t] asks the server (a replication follower) to seal its WAL
    and flip to primary; [true] on success.  Idempotent server-side. *)
let promote t = with_retry t (fun () -> bool_result (request t Protocol.Promote))

(** [hashcheck t ~prefix ~len] fetches the anti-entropy hashes
    [(node, left, right)] of the subtree at the [len]-bit key prefix. *)
let hashcheck t ~prefix ~len =
  with_retry t (fun () ->
      match request t (Protocol.Hashcheck { prefix; len }) with
      | Protocol.Hashes { node; left; right } -> (node, left, right)
      | Protocol.Busy { retry_after_ms } -> raise (Busy { retry_after_ms })
      | Protocol.Error msg -> raise (Protocol_error ("server error: " ^ msg))
      | _ -> raise (Protocol_error "expected hashes result"))

(** One SCAN/RANGE page as the client sees it; [keys] ascending.
    [next_cursor] feeds the follow-up {!scan_page}; [cut] is the
    server's WAL position for replica bootstrap (see protocol.mli). *)
type page = { cut : int; next_cursor : int; complete : bool; keys : int list }

let page_result = function
  | Protocol.Page { cut; next_cursor; complete; keys } ->
      { cut; next_cursor; complete; keys }
  | Protocol.Busy { retry_after_ms } -> raise (Busy { retry_after_ms })
  | Protocol.Error msg -> raise (Protocol_error ("server error: " ^ msg))
  | _ -> raise (Protocol_error "expected page result")

(** [scan_page t ~cursor] fetches up to [count] keys strictly greater
    than [cursor] ([-1] to start) — one frozen-snapshot page.  [range]
    restricts the walk to [(lo, hi)] inclusive.  Read-only, so the BUSY
    retry layer applies as usual. *)
let scan_page ?(count = Protocol.max_page_keys) ?range t ~cursor =
  let op =
    match range with
    | None -> Protocol.Scan { cursor; count }
    | Some (lo, hi) -> Protocol.Range { lo; hi; cursor; count }
  in
  with_retry t (fun () -> page_result (request t op))

(** [scan t] drives a resumable page sequence to completion and returns
    every key, ascending.  A single-page result is an exact frozen
    version; multi-page scans carry the cursor-stability contract of
    protocol.mli.  [f] (default ignore) sees each page as it lands. *)
let scan ?count ?range ?(f = fun (_ : page) -> ()) t =
  let rec go cursor acc =
    let p = scan_page ?count ?range t ~cursor in
    f p;
    let acc = List.rev_append p.keys acc in
    if p.complete then List.rev acc else go p.next_cursor acc
  in
  go (-1) []

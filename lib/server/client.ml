(** Blocking client for the patserve protocol, with explicit pipelining.

    One connection, not domain-safe: create one client per domain (the
    loopback adapter and the load generator both do).  The two-level
    API mirrors the protocol: {!request} is one synchronous round trip;
    {!send}/{!recv} split the two halves so a caller can keep many
    requests in flight and match the (in-order) responses by tag, which
    is what the closed-loop load generator builds its window on. *)

exception Protocol_error of string

type t = {
  fd : Unix.file_descr;
  reader : Protocol.Reader.t;
  scratch : Bytes.t;
  sendbuf : Buffer.t;
  mutable next_seq : int;
}

let connect ?(addr = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     (* The protocol is request/response over small frames; Nagle would
        serialize the pipeline into 40ms lockstep. *)
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     Obs.Net.close_noerr fd;
     raise e);
  {
    fd;
    reader = Protocol.Reader.create ();
    scratch = Bytes.create 65536;
    sendbuf = Buffer.create 256;
    next_seq = 1;
  }

let close t = Obs.Net.close_noerr t.fd

let write_all t buf =
  let b = Buffer.to_bytes buf in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write t.fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
          raise (Protocol_error ("write: " ^ Unix.error_message e))
  in
  go 0

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- (if s >= 0xFFFFFFFF then 1 else s + 1);
  s

(** [send t op] transmits one request and returns its tag. *)
let send t op =
  let seq = fresh_seq t in
  Buffer.clear t.sendbuf;
  Protocol.encode_request t.sendbuf { seq; op };
  write_all t t.sendbuf;
  seq

(** [send_many t ops] transmits a whole pipeline window in one write;
    returns the tags in order. *)
let send_many t ops =
  Buffer.clear t.sendbuf;
  let seqs =
    List.map
      (fun op ->
        let seq = fresh_seq t in
        Protocol.encode_request t.sendbuf { seq; op };
        seq)
      ops
  in
  write_all t t.sendbuf;
  seqs

(** Next response off the wire (responses arrive in request order). *)
let rec recv t =
  match Protocol.Reader.next_payload t.reader with
  | `Bad msg -> raise (Protocol_error msg)
  | `Payload (buf, off, len) -> (
      match Protocol.decode_response buf ~off ~len with
      | Result.Ok r -> r
      | Result.Error msg -> raise (Protocol_error msg))
  | `None -> (
      match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
      | 0 -> raise (Protocol_error "connection closed by server")
      | n ->
          Protocol.Reader.feed t.reader t.scratch n;
          recv t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv t
      | exception Unix.Unix_error (e, _, _) ->
          raise (Protocol_error ("read: " ^ Unix.error_message e)))

let expect_seq seq (r : Protocol.response) =
  if r.Protocol.seq <> seq then
    raise
      (Protocol_error
         (Printf.sprintf "response out of order: expected seq %d, got %d" seq
            r.Protocol.seq));
  r.Protocol.result

(** One synchronous round trip; application-level [Error] raises. *)
let request t op =
  let seq = send t op in
  match expect_seq seq (recv t) with
  | Protocol.Error msg -> raise (Protocol_error ("server error: " ^ msg))
  | r -> r

(** [pipeline t ops] sends every request before reading any response:
    the whole window shares one round trip.  Results come back in
    order; [Error] results are returned, not raised, so one bad
    operation does not lose its siblings. *)
let pipeline t ops =
  let seqs = send_many t ops in
  List.map (fun seq -> expect_seq seq (recv t)) seqs

let bool_result = function
  | Protocol.Bool b -> b
  | Protocol.Error msg -> raise (Protocol_error ("server error: " ^ msg))
  | _ -> raise (Protocol_error "expected boolean result")

let insert t k = bool_result (request t (Protocol.Insert k))
let delete t k = bool_result (request t (Protocol.Delete k))
let member t k = bool_result (request t (Protocol.Member k))

let replace t ~remove ~add =
  bool_result (request t (Protocol.Replace { remove; add }))

let size t =
  match request t Protocol.Size with
  | Protocol.Count n -> n
  | _ -> raise (Protocol_error "expected count result")

let batch t ops =
  match request t (Protocol.Batch ops) with
  | Protocol.Many bs -> bs
  | _ -> raise (Protocol_error "expected vector result")

(** Wire protocol of the patserve set server: length-prefixed binary
    frames carrying sequence-tagged requests and responses.

    {2 Framing}

    Every message — both directions — is one frame:

    {v
    u32be payload_length | payload
    v}

    [payload_length] must be in [[5, max_frame_payload]]; anything else
    is a protocol error and the connection is no longer synchronized
    (the server answers with an [Error] response tagged seq 0 and
    closes).

    {2 Requests}

    {v
    payload := seq:u32be  opcode:u8  body
    opcode  := 1 INSERT     body = key:i64be
             | 2 DELETE     body = key:i64be
             | 3 MEMBER     body = key:i64be
             | 4 REPLACE    body = remove:i64be add:i64be
             | 5 SIZE       body = (empty)
             | 6 BATCH      body = count:u16be (opcode:u8 body)^count
             | 7 SUBSCRIBE  body = from_seq:i64be
             | 8 LOGACK     body = applied_seq:i64be
             | 9 HASHCHECK  body = prefix:i64be len:u8
             | 10 PROMOTE   body = (empty)
             | 11 SCAN      body = cursor:i64be count:u16be
             | 12 RANGE     body = lo:i64be hi:i64be cursor:i64be count:u16be
    v}

    BATCH sub-operations are restricted to the four boolean-result
    opcodes (INSERT/DELETE/MEMBER/REPLACE) so the reply is a uniform
    vector of booleans; nesting is a protocol error.

    Opcodes 7-10 are the replication surface (see [lib/replica]):
    SUBSCRIBE turns the connection into a log stream (the server's
    answer is TRUE followed by LOGRECS pushes, all tagged with the
    SUBSCRIBE request's seq), LOGACK flows follower-to-primary {e on
    the subscription connection} to acknowledge application progress,
    HASHCHECK asks for the anti-entropy hashes of one key-prefix
    subtree, and PROMOTE seals a follower's WAL and flips it to
    primary.  None of them is valid inside a BATCH.

    Opcodes 11-12 are the streaming scan surface.  SCAN asks for up to
    [count] keys strictly greater than [cursor] (pass [-1] to start);
    RANGE restricts the walk to keys in [[lo, hi]].  Each request is
    answered with one PAGE drawn from a fresh atomic snapshot of the
    trie, so a single page is an exact frozen version; a multi-page
    scan resumes from the returned [next_cursor] and is the
    concatenation of per-page linearization points (every key returned
    existed at its page's snapshot; keys inserted behind the cursor
    mid-scan may be missed, keys removed ahead of it may be absent —
    the standard cursor-stability contract).  The cursor is stateless:
    the server keeps nothing between pages, so scans survive
    reconnects and cost the server O(page) memory.  [count] must be in
    [[1, max_page_keys]].  Not valid inside a BATCH.

    {2 Responses}

    {v
    payload := seq:u32be  status:u8  body
    status  := 0 FALSE    body = (empty)
             | 1 TRUE     body = (empty)
             | 2 COUNT    body = value:i64be          (SIZE)
             | 3 MANY     body = count:u16be bool:u8^count  (BATCH)
             | 4 LOGRECS  body = head_seq:i64be count:u16be
                                 (seq:i64be opcode:u8 body)^count
             | 5 HASHES   body = node:i64be left:i64be right:i64be
             | 6 PAGE     body = cut:i64be next_cursor:i64be complete:u8
                                 count:u16be key:i64be^count
             | 254 BUSY   body = retry_after_ms:u32be
             | 255 ERROR  body = utf-8 message
    v}

    PAGE answers SCAN/RANGE: [keys] are ascending, [next_cursor] is
    the value to pass in the follow-up request ([= the last key
    returned]; meaningless when [complete] is 1, i.e. the walk is
    exhausted), and [cut] is the server's newest {e assigned} WAL
    sequence number at the page's snapshot — a follower bootstrapping
    from scan pages subscribes from the first page's [cut] to catch
    every mutation the snapshot did not contain.  [cut] is [-1] on a
    server without a WAL.

    LOGRECS records re-use the INSERT/DELETE/REPLACE request encoding;
    [head_seq] is the primary's newest assigned sequence number at push
    time, which is what lets a follower compute its replication lag
    without a second round trip.  HASHES carries the anti-entropy hash
    of the requested prefix subtree plus the hashes of its two child
    prefixes, so a divergence hunt descends one trie level per round
    trip.  All hash values are masked to 62 bits — i64 fields reject
    values that do not round-trip through a 63-bit OCaml [int].

    [seq] echoes the request's tag, which is what makes pipelining
    work: a client may have any number of requests in flight and
    matches responses (delivered in request order per connection) by
    tag.  An [ERROR] tagged with the request's seq is an
    application-level failure (e.g. a key outside the server's
    universe) and leaves the stream usable; an [ERROR] tagged seq 0 is
    a framing-level failure after which the server closes.

    {2 Overload (BUSY, status 254)}

    [BUSY] is the server's admission-control reply: "not an error, not
    now".  The body carries a retry-after hint in milliseconds — a
    floor for the client's backoff, not a promise of capacity.  It is
    sent in two situations, distinguished by the tag:

    - tagged {e seq 0}, at accept time: the server is at its
      [--max-conns] connection limit and sheds the new connection —
      one BUSY frame, then close.  The request stream never started.
    - tagged with the {e request's seq}, per request: the request
      spent longer than the server's queue deadline
      ([--queue-deadline-ms]) waiting behind earlier frames of its
      pipeline window, so the server declines to execute it rather
      than add load it can no longer serve in time.  The stream stays
      usable and later requests are served normally.

    In both cases the operation was {e not} executed, so retrying is
    always safe.  {!Client}'s retry layer backs off (bounded
    exponential with jitter, floored at the hint) and retries
    transparently when enabled.  The server-side limits behind these
    replies — [--max-conns], [--queue-deadline-ms], and the
    per-connection output-buffer caps [--soft-buffer-kb] /
    [--hard-buffer-kb] that stall and then evict slow readers — are
    documented in README.md, "Overload protection".

    Decoders never raise on untrusted input — truncated bodies,
    unknown opcodes, oversized or undersized length prefixes and
    trailing garbage all come back as [Result.Error]. *)

val max_frame_payload : int
(** Upper bound on a frame's payload length (1 MiB).  A length prefix
    beyond it is rejected before any allocation, so a hostile 4 GiB
    prefix cannot balloon the connection buffer. *)

val max_batch : int
(** Upper bound on BATCH sub-operations (fits the u16 count). *)

val max_logrecs : int
(** Upper bound on records per LOGRECS push (fits the u16 count). *)

val max_page_keys : int
(** Upper bound on keys per SCAN/RANGE page (8192).  Well under what
    {!max_frame_payload} admits, so a full page frame always fits. *)

type op =
  | Insert of int
  | Delete of int
  | Member of int
  | Replace of { remove : int; add : int }
  | Size
  | Batch of op list
  | Subscribe of { from_seq : int }
  | Logack of { applied_seq : int }
  | Hashcheck of { prefix : int; len : int }
  | Promote
  | Scan of { cursor : int; count : int }
  | Range of { lo : int; hi : int; cursor : int; count : int }

type logrec = { rseq : int; rop : op }
(** One replicated WAL record: the primary's sequence number and the
    mutation ([rop] is always INSERT/DELETE/REPLACE). *)

type request = { seq : int; op : op }

type result_ =
  | Bool of bool
  | Count of int
  | Many of bool list
  | Logrecs of { head_seq : int; recs : logrec list }
  | Hashes of { node : int; left : int; right : int }
  | Page of { cut : int; next_cursor : int; complete : bool; keys : int list }
  | Busy of { retry_after_ms : int }
  | Error of string

type response = { seq : int; result : result_ }

val op_name : op -> string
(** ["insert"], ["delete"], ... — metrics labels. *)

val op_index : op -> int
(** Dense index in declaration order (0..11), for counter arrays. *)

val op_count : int

val encode_request : Buffer.t -> request -> unit
(** Append the full frame (length prefix included).
    @raise Invalid_argument on a [seq] outside u32, a nested or
    oversized [Batch], or a [Size] inside a [Batch] — caller bugs, not
    wire conditions. *)

val encode_response : Buffer.t -> response -> unit
(** Append the full frame.  Error messages are truncated to fit
    {!max_frame_payload}; [Many] beyond {!max_batch} raises
    [Invalid_argument]. *)

val decode_request : Bytes.t -> off:int -> len:int -> (request, string) result
(** Decode one request payload (the [len] bytes at [off], length prefix
    already stripped).  Never raises on wire data. *)

val decode_response : Bytes.t -> off:int -> len:int -> (response, string) result
(** Decode one response payload.  Never raises on wire data. *)

(** Incremental defragmenting frame reader: feed raw socket bytes in,
    take complete frame payloads out.  One per connection, both ends. *)
module Reader : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> int -> unit
  (** [feed r buf n] appends the first [n] bytes of [buf]. *)

  val next_payload : t -> [ `None | `Payload of Bytes.t * int * int | `Bad of string ]
  (** The next complete frame's payload as a [(buffer, offset, length)]
      view into the reader's internal storage, consumed from the
      stream.  The view is only valid until the next {!feed} (feeding
      may compact the buffer) — decode before reading more.  [`None]
      means more bytes are needed; [`Bad] means the stream carries an
      unframeable length prefix and must be torn down. *)

  val buffered : t -> int
  (** Bytes currently buffered (diagnostics). *)
end
